package pipemem

import (
	"fmt"
	"math"
	"strings"

	"pipemem/internal/analytic"
	"pipemem/internal/arb"
	"pipemem/internal/bench"
	"pipemem/internal/cell"
	"pipemem/internal/core"
	"pipemem/internal/sim"
	"pipemem/internal/traffic"
	"pipemem/internal/wormhole"
)

// Scale selects how much simulation an experiment spends: Quick for
// benchmarks and CI, Full for the EXPERIMENTS.md numbers.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// slots returns a scaled iteration count.
func (s Scale) slots(quick, full int64) int64 {
	if s == Full {
		return full
	}
	return quick
}

// ExpRow is one paper-vs-measured comparison line.
type ExpRow struct {
	Label    string
	Paper    string
	Measured string
	OK       bool
}

// ExpResult is the outcome of one experiment.
type ExpResult struct {
	ID, Title, Ref string
	Rows           []ExpRow
	Notes          string
}

// Pass reports whether every row's shape check held.
func (r ExpResult) Pass() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return true
}

// String renders the result as an aligned text table.
func (r ExpResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s): %s\n", r.ID, r.Title, r.Ref, passStr(r.Pass()))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-44s paper: %-22s measured: %-22s %s\n",
			row.Label, row.Paper, row.Measured, passStr(row.OK))
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", r.Notes)
	}
	return b.String()
}

// Markdown renders the result as a GitHub table section.
func (r ExpResult) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s (%s)\n\n", r.ID, r.Title, r.Ref)
	b.WriteString("| Quantity | Paper | Measured | Shape |\n|---|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", row.Label, row.Paper, row.Measured, passStr(row.OK))
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", r.Notes)
	}
	b.WriteString("\n")
	return b.String()
}

func passStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}

// Experiment is one reproducible claim of the paper.
type Experiment struct {
	ID, Title, Ref string
	Run            func(Scale) (ExpResult, error)
}

// Experiments returns the full per-experiment index of DESIGN.md.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", "Input-FIFO queueing saturation (head-of-line blocking)", "§2.1, [KaHM87]", E1InputQueueSaturation},
		{"E2", "Wormhole saturation with bursts exceeding buffers", "§2.1, [Dally90 fig.8]", E2WormholeSaturation},
		{"E3", "Buffer sizing for equal loss: shared vs output vs input smoothing", "§2.2, [HlKa88]", E3BufferSizing},
		{"E4", "Latency vs load: output/shared vs non-FIFO input buffering", "§2.2, [AOST93 fig.3]", E4LatencyVsLoad},
		{"E5", "Staggered-initiation cut-through latency", "§3.4", E5StaggeredInitiation},
		{"E6", "Packet-size quantum and half-quantum throughput", "§3.5", E6QuantumThroughput},
		{"E7", "Pipelined control: stage s repeats stage s-1 one cycle later", "§3.3, fig.5", E7ControlTrace},
		{"E8", "Telegraphos I/II/III derived specifications", "§4.1–§4.4", E8TelegraphosSpecs},
		{"E9", "Telegraphos III full-load RTL run", "§4.4", E9FullLoadRTL},
		{"E10", "Shared vs input buffering floorplan", "§5.1, fig.9", E10SharedVsInputArea},
		{"E11", "Pipelined vs wide-memory peripheral area", "§5.2", E11PeripheralArea},
		{"E12", "Pipelined vs PRIZMA interleaved buffering", "§5.3", E12PrizmaComparison},
		{"E13", "Full-custom vs standard-cell technology scaling", "§4.4", E13TechScaling},
		{"E14", "Hazard freedom: no double buffering needed", "§3.2/§3.3", E14HazardFreedom},
	}
}

// within reports |got-want|/want ≤ tol (want ≠ 0).
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// E1InputQueueSaturation measures the saturation throughput of FIFO input
// queueing across switch sizes and compares with [KaHM87]'s exact values
// and the 2-√2 asymptote — the "about 60%" of §2.1.
func E1InputQueueSaturation(s Scale) (ExpResult, error) {
	res := ExpResult{ID: "E1", Title: "Input-FIFO saturation", Ref: "§2.1 [KaHM87]"}
	measured := s.slots(100_000, 1_000_000)
	// Each size is an independent simulation with its own generator, so
	// the sweep fans across cores (bench.Map) without changing any value.
	rows, err := bench.Map(0, []int{2, 4, 8, 16, 32}, func(_ int, n int) (ExpRow, error) {
		a := sim.NewInputFIFO(n, 256, nil)
		g, err := traffic.NewGenerator(traffic.Config{Kind: traffic.Saturation, N: n, Seed: 1001})
		if err != nil {
			return ExpRow{}, err
		}
		r := sim.Run(a, g, measured/10, measured)
		want := analytic.HOLSaturation(n)
		return ExpRow{
			Label:    fmt.Sprintf("saturation throughput, n=%d", n),
			Paper:    fmt.Sprintf("%.4f", want),
			Measured: fmt.Sprintf("%.4f", r.Throughput),
			OK:       within(r.Throughput, want, 0.03),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.Notes = "paper values: exact [KaHM87] table for n ≤ 8, 2-√2 ≈ 0.5858 beyond"
	return res, nil
}

// E2WormholeSaturation reproduces the [Dally90] regime quoted in §2.1:
// 20-flit messages, 16-flit buffers, input-buffered wormhole fabric →
// saturation far below the fixed-cell HOL bound (the paper quotes ≈25%
// for the torus's "1 lane" curve). The lane sweep reproduces the rest of
// the cited figure: virtual-channel lanes lift the saturation at constant
// total buffer storage.
func E2WormholeSaturation(s Scale) (ExpResult, error) {
	res := ExpResult{ID: "E2", Title: "Wormhole saturation", Ref: "§2.1 [Dally90]"}
	warm, meas := s.slots(20_000, 50_000), s.slots(50_000, 150_000)
	terminals := int(s.slots(64, 256))
	type cfg struct {
		label       string
		n, buf, msg int
		wantLo      float64
		wantHi      float64
		paper       string
	}
	rows, err := bench.Map(0, []cfg{
		{"20-flit msgs, 16-flit buffers (quoted point)", terminals, 16, 20, 0.2, 0.47, "≈0.25 (torus, 1 lane)"},
		{"4-flit msgs (bursts fit buffers)", terminals, 16, 4, 0.45, 1.0, "recovers"},
		{"64-flit buffers (buffers exceed bursts)", terminals, 64, 20, 0.4, 1.0, "recovers"},
	}, func(_ int, c cfg) (ExpRow, error) {
		w, err := wormhole.New(wormhole.Config{Terminals: c.n, BufferFlits: c.buf, MsgFlits: c.msg, Saturate: true, Seed: 77})
		if err != nil {
			return ExpRow{}, err
		}
		r, err := wormhole.Run(w, warm, meas)
		if err != nil {
			return ExpRow{}, err
		}
		return ExpRow{
			Label:    c.label,
			Paper:    c.paper,
			Measured: fmt.Sprintf("%.3f", r.Throughput),
			OK:       r.Throughput >= c.wantLo && r.Throughput <= c.wantHi,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	// The lane sweep of the cited figure: saturation must rise with the
	// lane count at constant total storage. The points simulate in
	// parallel; the monotonicity comparison runs on the gathered values.
	laneCounts := []int{1, 2, 4}
	thr, err := bench.Map(0, laneCounts, func(_ int, lanes int) (float64, error) {
		w, err := wormhole.NewLanes(wormhole.LaneConfig{
			Terminals: terminals, BufferFlits: 16, MsgFlits: 20,
			Lanes: lanes, Saturate: true, Seed: 78,
		})
		if err != nil {
			return 0, err
		}
		r, err := wormhole.RunLanes(w, warm, meas)
		if err != nil {
			return 0, err
		}
		return r.Throughput, nil
	})
	if err != nil {
		return res, err
	}
	for i, lanes := range laneCounts {
		ok := i == 0 || thr[i] > thr[i-1]*1.02
		res.Rows = append(res.Rows, ExpRow{
			Label:    fmt.Sprintf("%d lane(s), same 16-flit total storage", lanes),
			Paper:    "saturation rises with lanes ([Dally90])",
			Measured: fmt.Sprintf("%.3f", thr[i]),
			OK:       ok,
		})
	}
	res.Notes = fmt.Sprintf("%d-terminal 2-ary butterfly of input-FIFO wormhole switches (DESIGN.md substitution for the torus)", terminals)
	return res, nil
}

// findBufferFor searches for the smallest buffer parameter b in [lo, hi]
// such that build(b) has loss ≤ target under the generator configuration,
// by bisection on the (statistically monotone) loss curve.
func findBufferFor(build func(b int) sim.Arch, gcfg traffic.Config, warm, meas int64, target float64, lo, hi int) (int, float64, error) {
	loss := func(b int) (float64, error) {
		g, err := traffic.NewGenerator(gcfg)
		if err != nil {
			return 0, err
		}
		r := sim.Run(build(b), g, warm, meas)
		return r.LossProb, nil
	}
	// Ensure hi is feasible.
	lHi, err := loss(hi)
	if err != nil {
		return 0, 0, err
	}
	if lHi > target {
		return hi, lHi, nil
	}
	best, bestLoss := hi, lHi
	for lo < hi {
		mid := (lo + hi) / 2
		l, err := loss(mid)
		if err != nil {
			return 0, 0, err
		}
		if l <= target {
			best, bestLoss = mid, l
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return best, bestLoss, nil
}

// E3BufferSizing reproduces the [HlKa88] comparison quoted in §2.2: the
// buffer capacity needed for loss probability 10⁻³ at a 16×16 switch
// under load 0.8 — 86 cells shared, 178 cells output-queued (11.1/port),
// 1300 cells input smoothing (80/input).
func E3BufferSizing(s Scale) (ExpResult, error) {
	res := ExpResult{ID: "E3", Title: "Buffer sizing for equal loss", Ref: "§2.2 [HlKa88]"}
	const n = 16
	const target = 1e-3
	gcfg := traffic.Config{Kind: traffic.Bernoulli, N: n, Load: 0.8, Seed: 2002}
	warm, meas := s.slots(5_000, 20_000), s.slots(120_000, 1_200_000)

	// The four organizations bisect independently; each bisection is
	// internally sequential, so the parallelism is across organizations.
	type sizing struct {
		build  func(b int) sim.Arch
		lo, hi int
	}
	type sized struct {
		b    int
		loss float64
	}
	found, err := bench.Map(0, []sizing{
		{func(b int) sim.Arch { return sim.NewSharedBuffer(n, b) }, 16, 256},
		{func(b int) sim.Arch { return sim.NewOutputQueue(n, b) }, 2, 64},
		{func(b int) sim.Arch { return sim.NewInputSmoothing(n, b) }, 8, 512},
		{func(b int) sim.Arch { return sim.NewCrosspoint(n, b) }, 1, 16},
	}, func(_ int, job sizing) (sized, error) {
		b, loss, err := findBufferFor(job.build, gcfg, warm, meas, target, job.lo, job.hi)
		return sized{b, loss}, err
	})
	if err != nil {
		return res, err
	}
	shared, lossS := found[0].b, found[0].loss
	outPort, lossO := found[1].b, found[1].loss
	smooth, lossI := found[2].b, found[2].loss
	crossCap, lossX := found[3].b, found[3].loss
	outTotal := outPort * n
	smoothTotal := smooth * n
	crossTotal := crossCap * n * n
	res.Rows = []ExpRow{
		{
			Label:    "shared buffer: total cells for loss ≤ 1e-3",
			Paper:    "86 (5.4/output)",
			Measured: fmt.Sprintf("%d (loss %.1e)", shared, lossS),
			OK:       shared >= 40 && shared <= 160,
		},
		{
			Label:    "output queueing: total cells",
			Paper:    "178 (11.1/output)",
			Measured: fmt.Sprintf("%d = %d/port (loss %.1e)", outTotal, outPort, lossO),
			OK:       outTotal >= 110 && outTotal <= 320,
		},
		{
			Label:    "input smoothing: total cells",
			Paper:    "1300 (80/input)",
			Measured: fmt.Sprintf("%d = %d/input (loss %.1e)", smoothTotal, smooth, lossI),
			OK:       smoothTotal >= 700 && smoothTotal <= 2600,
		},
		{
			Label:    "crosspoint queueing: total cells (n² queues)",
			Paper:    "\"considerably higher\" than shared (§2.1)",
			Measured: fmt.Sprintf("%d = %d per crosspoint (loss %.1e)", crossTotal, crossCap, lossX),
			OK:       crossTotal > 2*shared,
		},
		{
			Label:    "ordering shared < output ≪ input",
			Paper:    "86 < 178 ≪ 1300",
			Measured: fmt.Sprintf("%d < %d ≪ %d", shared, outTotal, smoothTotal),
			OK:       shared < outTotal && outTotal*3 < smoothTotal,
		},
	}
	return res, nil
}

// E4LatencyVsLoad reproduces the shape of [AOST93 fig. 3] quoted in §2.2:
// output queueing (equivalently shared buffering) is about twice as fast
// as (non-FIFO, scheduler-driven) input buffering at loads 0.6–0.9.
func E4LatencyVsLoad(s Scale) (ExpResult, error) {
	res := ExpResult{ID: "E4", Title: "Latency vs load", Ref: "§2.2 [AOST93]"}
	const n = 16
	warm, meas := s.slots(20_000, 50_000), s.slots(150_000, 1_000_000)
	rows, err := bench.Map(0, []float64{0.5, 0.6, 0.7, 0.8, 0.9}, func(_ int, p float64) (ExpRow, error) {
		gcfg := traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 3003}
		g1, err := traffic.NewGenerator(gcfg)
		if err != nil {
			return ExpRow{}, err
		}
		out := sim.Run(sim.NewOutputQueue(n, 0), g1, warm, meas)
		g2, err := traffic.NewGenerator(gcfg)
		if err != nil {
			return ExpRow{}, err
		}
		voq := sim.Run(sim.NewVOQ(n, 0, arb.NewISLIP(n, 1)), g2, warm, meas)
		// Latencies in cell times; +1 converts wait to sojourn so the
		// zero-wait light-load case stays finite.
		ratio := (voq.MeanLatency + 1) / (out.MeanLatency + 1)
		ok := ratio > 1.0
		if p >= 0.6 {
			ok = ratio >= 1.3 // "about twice", allow breadth
		}
		return ExpRow{
			Label:    fmt.Sprintf("sojourn ratio input/output at p=%.1f", p),
			Paper:    "≈2× at 0.6–0.9",
			Measured: fmt.Sprintf("%.2f (out %.2f, voq %.2f)", ratio, out.MeanLatency, voq.MeanLatency),
			OK:       ok,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.Notes = "VOQ uses single-iteration iSLIP, comparable to the schedulers of the cited study"
	return res, nil
}

// E5StaggeredInitiation reproduces §3.4: the expected extra cut-through
// latency from one-wave-per-cycle initiation is (p/4)·(n-1)/n cycles —
// e.g. one tenth of a cycle at 40% load, "i.e. negligible".
//
// Two quantities are measured on the RTL switch:
//
//   - the paper's modeled quantity: half the number of *other* packet
//     heads arriving in a tagged head's cycle (each pairwise collision
//     delays one of the two waves by a cycle), which must match the
//     closed form tightly; and
//   - the switch's actual stage-0 slot wait, which also includes
//     contention from read waves (read priority) and so runs above the
//     first-order model at moderate load while remaining negligible.
func E5StaggeredInitiation(s Scale) (ExpResult, error) {
	res := ExpResult{ID: "E5", Title: "Staggered-initiation delay", Ref: "§3.4"}
	const n = 8
	cycles := s.slots(400_000, 4_000_000)
	perLoad, err := bench.Map(0, []float64{0.1, 0.2, 0.4}, func(_ int, p float64) ([]ExpRow, error) {
		sw, err := core.New(core.Config{Ports: n, WordBits: 16, Cells: 512, CutThrough: true})
		if err != nil {
			return nil, err
		}
		k := sw.Config().Stages
		cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 4004}, k)
		if err != nil {
			return nil, err
		}
		pool := cell.NewPool(k)
		sw.SetDrainRecycle(true)
		heads := make([]int, n)
		hc := make([]*cell.Cell, n)
		var seq uint64
		var collisionSum float64
		var headCount int64
		for c := int64(0); c < cycles; c++ {
			nh := cs.Heads(heads)
			for i := range hc {
				hc[i] = nil
				if heads[i] != traffic.NoArrival {
					seq++
					hc[i] = pool.New(seq, i, heads[i], 16)
				}
			}
			if nh > 0 {
				// Each of the nh tagged heads sees nh-1 others; each
				// pairwise conflict costs ½ cycle in expectation.
				collisionSum += float64(nh) * float64(nh-1) / 2
				headCount += int64(nh)
			}
			sw.Tick(hc)
			for _, d := range sw.Drain() {
				pool.Put(d.Expected)
			}
		}
		want := analytic.StaggeredInitiationDelay(p, n)
		headModel := collisionSum / float64(headCount)
		slotWait := sw.InitDelay().Mean()
		return []ExpRow{
			{
				Label:    fmt.Sprintf("§3.4 head-collision delay, p=%.1f", p),
				Paper:    fmt.Sprintf("%.4f cycles", want),
				Measured: fmt.Sprintf("%.4f cycles", headModel),
				OK:       within(headModel, want, 0.10),
			},
			{
				Label:    fmt.Sprintf("RTL stage-0 slot wait, p=%.1f", p),
				Paper:    "negligible (≈ (p/4)(n-1)/n + read contention)",
				Measured: fmt.Sprintf("%.4f cycles (%.3f of a cell time)", slotWait, slotWait/float64(k)),
				OK:       slotWait < 0.25 && slotWait >= 0.5*want,
			},
		}, nil
	})
	if err != nil {
		return res, err
	}
	for _, rows := range perLoad {
		res.Rows = append(res.Rows, rows...)
	}
	res.Notes = "the closed form counts head-vs-head collisions only; the live switch also queues writes behind prioritized read waves, roughly doubling the (still negligible) wait at moderate load"
	return res, nil
}

// E6QuantumThroughput reproduces §3.5: the quantum arithmetic (widths of
// 256–1024 bits at 5 ns give 50–200 Gb/s aggregate) and the half-quantum
// organization's full-rate operation.
func E6QuantumThroughput(s Scale) (ExpResult, error) {
	res := ExpResult{ID: "E6", Title: "Quantum and half-quantum throughput", Ref: "§3.5"}
	for _, tc := range []struct {
		bits  int
		paper string
		want  float64
	}{
		{256, "≈50 Gb/s", 51.2},
		{512, "≈100 Gb/s", 102.4},
		{1024, "≈200 Gb/s", 204.8},
	} {
		got := analytic.AggregateGbps(tc.bits, 5)
		res.Rows = append(res.Rows, ExpRow{
			Label:    fmt.Sprintf("aggregate throughput, %d-bit buffer @ 5 ns", tc.bits),
			Paper:    tc.paper,
			Measured: fmt.Sprintf("%.1f Gb/s", got),
			OK:       got == tc.want,
		})
	}
	// Half-quantum RTL: cells of n words at 100% load, zero drops.
	const n = 8
	d, err := core.NewDual(core.Config{Ports: n, WordBits: 16, Cells: 128, CutThrough: true})
	if err != nil {
		return res, err
	}
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Permutation, N: n, Load: 1, Seed: 5005}, n)
	if err != nil {
		return res, err
	}
	r, err := core.RunDualTraffic(d, cs, s.slots(30_000, 300_000))
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, ExpRow{
		Label:    "half-quantum (n-word cells) utilization at full load",
		Paper:    "full rate (1 read + 1 write init/cycle)",
		Measured: fmt.Sprintf("%.3f, drops=%d", r.Utilization, r.Dropped),
		OK:       r.Utilization > 0.97 && r.Dropped == 0,
	})
	return res, nil
}

// E7ControlTrace verifies the fig. 5 control structure literally on a 2×2
// switch: a golden scenario's stage-0 control words, their delayed copies
// downstream, and the automatic cut-through timing.
func E7ControlTrace(Scale) (ExpResult, error) {
	res := ExpResult{ID: "E7", Title: "Pipelined control trace", Ref: "§3.3 fig.5"}
	sw, err := core.New(core.Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	if err != nil {
		return res, err
	}
	var events []core.TraceEvent
	sw.SetTracer(func(e core.TraceEvent) { events = append(events, e) })

	// Scenario: cycle 0 a cell arrives on input 0 for output 1; cycle 2 a
	// cell arrives on input 1 for output 1 (must queue behind the first).
	k := sw.Config().Stages // 4
	cellAt := map[int64][2]int{0: {0, 1}, 2: {1, 1}}
	var seq uint64
	for c := int64(0); c < int64(6*k); c++ {
		var heads []*cell.Cell
		if sd, ok := cellAt[c]; ok {
			heads = make([]*cell.Cell, 2)
			seq++
			heads[sd[0]] = cell.New(seq, sd[0], sd[1], k, 16)
		}
		sw.Tick(heads)
	}
	deps := sw.Drain()

	// Delayed-copy property over the whole trace.
	delayed := true
	for i := 1; i < len(events); i++ {
		for st := 1; st < k; st++ {
			if events[i].Ctrl[st] != events[i-1].Ctrl[st-1] {
				delayed = false
			}
		}
	}
	res.Rows = append(res.Rows, ExpRow{
		Label:    "ctrl(stage s, cycle c) = ctrl(stage s-1, cycle c-1)",
		Paper:    "identical, delayed (fig. 5)",
		Measured: fmt.Sprintf("holds over %d cycles: %v", len(events), delayed),
		OK:       delayed,
	})
	// First cell cuts through: write-through at cycle 1.
	wt := len(events) > 1 && events[1].Ctrl[0].Kind == core.OpWriteThrough
	res.Rows = append(res.Rows, ExpRow{
		Label:    "first cell upgrades to write-through at cycle 1",
		Paper:    "automatic cut-through (§3.3)",
		Measured: fmt.Sprintf("%v (%v)", wt, events[1].Ctrl[0]),
		OK:       wt,
	})
	// Second cell must be a plain write (output busy) and depart later.
	ok2 := len(deps) == 2 && deps[0].HeadOut < deps[1].HeadOut &&
		deps[0].Cell.Seq == 1 && deps[1].Cell.Seq == 2
	res.Rows = append(res.Rows, ExpRow{
		Label:    "second cell queues behind the first on output 1",
		Paper:    "FIFO per output",
		Measured: fmt.Sprintf("%d departures, in order: %v", len(deps), ok2),
		OK:       ok2,
	})
	// Both cells' data integrity on the wire.
	intact := len(deps) == 2 && deps[0].Cell.Equal(deps[0].Expected) && deps[1].Cell.Equal(deps[1].Expected)
	res.Rows = append(res.Rows, ExpRow{
		Label:    "both cells bit-exact on the outgoing link",
		Paper:    "lossless datapath",
		Measured: fmt.Sprintf("%v", intact),
		OK:       intact,
	})
	return res, nil
}
