package pipemem

import (
	"fmt"
	"time"

	"pipemem/internal/fabric"
	"pipemem/internal/traffic"
)

// FabricScaleExperiment returns X6 on its own — the pmexp -fabric
// shortcut, mirroring -bufpolicy's single-experiment mode.
func FabricScaleExperiment() Experiment {
	return Experiment{"X6", "Sharded parallel fabric engine: determinism and scale", "§2 ext", X6FabricScale}
}

// X6FabricScale exercises the sharded fabric engine: a 256-terminal
// radix-4 butterfly (256 nodes — four occupancy words, so worker counts
// 2 and 4 genuinely shard the node array) run under saturation at every
// worker count must produce bit-identical results — same cells, same
// cycles, same latency histogram — because the engine defers every
// cross-shard effect (credit releases, downstream head arrivals, drops,
// ejections) to the end-of-cycle barrier and merges in global node
// order. The aggregate switching rate is reported for the sequential
// reference; wall-clock scaling with workers is a multi-core observable
// and is not asserted here (single-CPU CI hosts would fail it).
func X6FabricScale(s Scale) (ExpResult, error) {
	res := ExpResult{ID: "X6", Title: "Sharded fabric engine", Ref: "§2 ext"}
	warm, meas := s.slots(2_000, 10_000), s.slots(8_000, 60_000)
	run := func(workers int) (fabric.Result, float64, error) {
		f, err := fabric.New(fabric.Config{
			Terminals: 256, Radix: 4, WordBits: 16, SwitchCells: 16,
			Credits: 4, CutThrough: true, Workers: workers,
		})
		if err != nil {
			return fabric.Result{}, 0, err
		}
		defer f.Close()
		start := time.Now()
		r, err := fabric.Run(f, traffic.Config{Kind: traffic.Saturation, Seed: 6161}, warm, meas)
		if err != nil {
			return fabric.Result{}, 0, err
		}
		if err := f.Audit(); err != nil {
			return fabric.Result{}, 0, fmt.Errorf("workers=%d: %w", workers, err)
		}
		agg := float64(r.Delivered*int64(f.Stages())) / time.Since(start).Seconds()
		return r, agg, nil
	}
	ref, agg, err := run(1)
	if err != nil {
		return res, err
	}
	for _, w := range []int{2, 4} {
		r, _, err := run(w)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, ExpRow{
			Label:    fmt.Sprintf("workers=%d vs sequential reference", w),
			Paper:    "bit-identical (barrier-deferred cross-shard effects)",
			Measured: fmt.Sprintf("delivered %d vs %d, mean latency %.4f vs %.4f", r.Delivered, ref.Delivered, r.MeanLatency, ref.MeanLatency),
			OK:       r == ref,
		})
	}
	res.Rows = append(res.Rows,
		ExpRow{
			Label:    "interior links at saturation: drops / corrupt / latency overflow",
			Paper:    "0 / 0 / 0 (credits + end-to-end verification)",
			Measured: fmt.Sprintf("%d / %d / %d", ref.InteriorDrops, ref.Corrupt, ref.LatencyOverflow),
			OK:       ref.InteriorDrops == 0 && ref.Corrupt == 0 && ref.LatencyOverflow == 0,
		},
		ExpRow{
			Label:    "aggregate switching rate, sequential (delivered × stages / wall)",
			Paper:    "reported; scales with cores via sharding",
			Measured: fmt.Sprintf("%.2fM cells/sec", agg/1e6),
			OK:       agg > 0,
		},
	)
	res.Notes = "bit-identity makes worker count a pure performance knob: any parallel run is exactly reproducible by the sequential engine"
	return res, nil
}
