package pipemem

import (
	"strings"
	"testing"
)

// TestQuickstartAPI exercises the public facade end to end the way the
// README shows.
func TestQuickstartAPI(t *testing.T) {
	sw, err := New(Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCellStream(TrafficConfig{Kind: Bernoulli, N: 8, Load: 0.5, Seed: 1}, sw.Config().Stages)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTraffic(sw, cs, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 0 || res.Delivered == 0 {
		t.Fatalf("bad run: %+v", res)
	}
}

// TestExperimentIndexComplete: every DESIGN.md experiment id appears
// exactly once and runs at Quick scale without error.
func TestExperimentIndexComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("%d experiments, want 14 (E1–E14)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Ref == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for i := 1; i <= 14; i++ {
		id := "E" + itoa(i)
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// TestFastExperimentsPass runs the cheap experiments (pure arithmetic and
// short RTL scenarios) and requires every row's shape check to hold. The
// heavyweight simulation experiments are covered by their packages' own
// tests and by the benchmarks.
func TestFastExperimentsPass(t *testing.T) {
	fast := map[string]bool{"E6": true, "E7": true, "E8": true, "E9": true,
		"E10": true, "E11": true, "E12": true, "E13": true, "E14": true}
	for _, e := range Experiments() {
		if !fast[e.ID] {
			continue
		}
		res, err := e.Run(Quick)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if !res.Pass() {
			t.Errorf("%s failed:\n%s", e.ID, res)
		}
		if !strings.Contains(res.Markdown(), "| Quantity |") {
			t.Errorf("%s: markdown rendering broken", e.ID)
		}
	}
}

// TestSlowExperimentsPass runs the statistics-heavy experiments at Quick
// scale; skipped with -short.
func TestSlowExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; run without -short")
	}
	for _, e := range Experiments() {
		switch e.ID {
		case "E1", "E2", "E3", "E4", "E5":
			res, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if !res.Pass() {
				t.Errorf("%s failed:\n%s", e.ID, res)
			}
		}
	}
}

// TestFacadeArchConstructors: every §2 architecture is reachable through
// the facade and conserves cells.
func TestFacadeArchConstructors(t *testing.T) {
	archs := []Arch{
		NewInputFIFO(8, 64),
		NewVOQ(8, 64, "islip"),
		NewVOQ(8, 64, "pim"),
		NewVOQ(8, 64, "2drr"),
		NewOutputQueue(8, 64),
		NewSharedBufferArch(8, 256),
		NewCrosspoint(8, 8),
		NewBlockCrosspoint(8, 2, 64),
		NewInputSmoothing(8, 16),
		NewSpeedupFabric(8, 64, 64, 2),
	}
	for _, a := range archs {
		g, err := NewGenerator(TrafficConfig{Kind: Bernoulli, N: 8, Load: 0.7, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		r := RunArch(a, g, 1_000, 10_000)
		if r.Departed == 0 {
			t.Errorf("%s: nothing departed", a.Name())
		}
	}
}

// TestFacadeAnalytics spot-checks the re-exported closed forms.
func TestFacadeAnalytics(t *testing.T) {
	if HOLSaturation(2) != 0.75 {
		t.Error("HOLSaturation(2)")
	}
	if StaggeredInitiationDelay(0.4, 1000) > 0.1+1e-6 {
		t.Error("StaggeredInitiationDelay")
	}
	if OutputQueueWait(16, 0.8) <= 0 {
		t.Error("OutputQueueWait")
	}
	if AggregateGbps(256, 5) != 51.2 {
		t.Error("AggregateGbps")
	}
	if (Quantum{Links: 8, WordBits: 16}).Bits() != 256 {
		t.Error("Quantum")
	}
	if PrizmaCrossbarRatio(8, 256) != 16 {
		t.Error("PrizmaCrossbarRatio")
	}
	if CompareInputVsShared(16, 16, 80, 86).Advantage() <= 1 {
		t.Error("CompareInputVsShared")
	}
	m := DefaultAreaModel()
	if m.FixedMm2 <= 0 || m.RowMm2 <= 0 {
		t.Error("DefaultAreaModel")
	}
}

// TestFacadeTelegraphos drives a prototype through the facade.
func TestFacadeTelegraphos(t *testing.T) {
	if len(TelegraphosModels()) != 3 {
		t.Fatal("want 3 prototypes")
	}
	sw, err := NewTelegraphos(TelegraphosIII(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Credits(0) != 8 {
		t.Fatal("credits not initialized")
	}
}

// TestFacadeWormhole drives the wormhole model through the facade.
func TestFacadeWormhole(t *testing.T) {
	w, err := NewWormhole(WormholeConfig{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Load: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunWormhole(w, 2_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveredFlits == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestFacadeBaselines drives the wide and PRIZMA switches through the
// facade.
func TestFacadeBaselines(t *testing.T) {
	ws, err := NewWide(WideConfig{Ports: 4, WordBits: 16, Cells: 64, CutThroughCrossbar: true})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCellStream(TrafficConfig{Kind: Bernoulli, N: 4, Load: 0.5, Seed: 2}, ws.Config().CellWords)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWideTraffic(ws, cs, 10_000); err != nil {
		t.Fatal(err)
	}

	ps, err := NewPrizma(PrizmaConfig{Ports: 4, Banks: 64, WordBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := NewCellStream(TrafficConfig{Kind: Bernoulli, N: 4, Load: 0.5, Seed: 3}, ps.Config().CellWords)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPrizmaTraffic(ps, cs2, 10_000); err != nil {
		t.Fatal(err)
	}

	d, err := NewDual(Config{Ports: 4, WordBits: 16, Cells: 64, CutThrough: true})
	if err != nil {
		t.Fatal(err)
	}
	cs3, err := NewCellStream(TrafficConfig{Kind: Bernoulli, N: 4, Load: 0.5, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDualTraffic(d, cs3, 10_000); err != nil {
		t.Fatal(err)
	}
}
