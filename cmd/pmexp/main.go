// Command pmexp runs the paper-reproduction experiments and prints
// paper-vs-measured tables (see EXPERIMENTS.md for the archived full-scale
// results).
//
// Usage:
//
//	pmexp                      # E1–E14 at quick scale
//	pmexp -full -md            # full statistical scale, Markdown tables
//	pmexp -ext                 # also the X1–X3 extension experiments
//	pmexp -only E5,E9          # a subset
//	pmexp -list                # list all experiments
//	pmexp -bufpolicy dt:alpha=2  # X5 buffer-policy matrix, one policy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pipemem"
	"pipemem/internal/cli"
)

func main() {
	full := flag.Bool("full", false, "run at full scale (slow, the EXPERIMENTS.md numbers)")
	md := flag.Bool("md", false, "emit Markdown instead of text tables")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	ext := flag.Bool("ext", false, "also run the X1–X3 extension experiments (beyond the paper)")
	list := flag.Bool("list", false, "list experiments and exit")
	fab := flag.Bool("fabric", false, "run only the X6 sharded-fabric-engine experiment")
	pprofA := flag.String("pprof", "", "serve runtime metrics and /debug/pprof on this address while running")
	bufpol := cli.BufPolicyFlag(nil)
	flag.Parse()

	// Full-scale experiment batches run for minutes; the debug server lets
	// a profiler attach and a scraper watch heap/GC gauges mid-run.
	if *pprofA != "" {
		addr, stop, err := pipemem.ServeDebug(*pprofA, pipemem.NewMetricsRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmexp: debug server on http://%s\n", addr)
		defer stop()
	}

	scale := pipemem.Quick
	if *full {
		scale = pipemem.Full
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	exps := pipemem.Experiments()
	if *ext || len(want) > 0 || *list {
		exps = append(exps, pipemem.ExtensionExperiments()...)
	}
	// -bufpolicy restricts the run to the buffer-management experiment,
	// measuring just that policy across the X5 traffic matrix.
	if bufpol.Got() {
		exps = []pipemem.Experiment{pipemem.BufferPolicyExperiment(bufpol.Spec())}
	}
	// -fabric restricts the run to the sharded-engine experiment.
	if *fab {
		exps = []pipemem.Experiment{pipemem.FabricScaleExperiment()}
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %-14s %s\n", e.ID, e.Ref, e.Title)
		}
		return
	}
	// An -only id that matches nothing would silently run zero experiments
	// and exit 0 — reject it instead.
	if len(want) > 0 {
		known := map[string]bool{}
		for _, e := range exps {
			known[e.ID] = true
		}
		for id := range want {
			if !known[id] {
				fmt.Fprintf(os.Stderr, "pmexp: unknown experiment id %q (pmexp -list shows the ids)\n", id)
				os.Exit(2)
			}
		}
	}
	failed := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		res, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", e.ID, err)
			failed++
			continue
		}
		if *md {
			fmt.Print(res.Markdown())
		} else {
			fmt.Print(res)
			fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
		}
		if !res.Pass() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) with mismatches\n", failed)
		os.Exit(1)
	}
}
