package main

import (
	"fmt"
	"os"

	"pipemem/internal/cli"
	"pipemem/internal/clos"
	"pipemem/internal/fabric"
	"pipemem/internal/obs"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// fabricOpts carries the -fabric mode configuration: a multistage
// network (butterfly or three-stage Clos) built on the sharded fabric
// engine, driven by terminal traffic.
type fabricOpts struct {
	kind      string // "butterfly" or "clos"
	terminals int
	radix     int
	middles   int
	cells     int
	credits   int
	workers   int

	load     float64
	saturate bool
	bursty   float64
	hotFrac  float64
	cycles   int64
	warmup   int64
	seed     uint64
	policy   string

	metrics     bool
	metricsJSON bool
	trace       *cli.TraceValue
}

// fabricNet is the surface shared by the butterfly and Clos nets that
// the -fabric driver needs.
type fabricNet interface {
	Close()
	Audit() error
	Latency() *stats.Hist
	RegisterMetrics(reg *obs.Registry, prefix string)
	RegisterHopHists(reg *obs.Registry, prefix string)
	SetFlightTrace(tr *obs.Tracer, sample int) error
	EnableTelemetry(ringCap int, every int64) *obs.TimeSeries
	SyncMetrics()
}

// runFabric builds the requested multistage network, attaches the
// requested observability (flight trace, hop-latency histograms,
// telemetry ring) before driving it with the shared traffic flags,
// prints the run summary, and audits the final state (conservation,
// credit bounds, per-node invariants).
func runFabric(o fabricOpts) {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	tcfg := traffic.Config{Kind: traffic.Bernoulli, Load: o.load, Seed: o.seed}
	switch {
	case o.saturate:
		tcfg.Kind = traffic.Saturation
	case o.bursty > 0:
		tcfg.Kind, tcfg.BurstLen = traffic.Bursty, o.bursty
	case o.hotFrac > 0:
		tcfg.Kind, tcfg.HotFrac = traffic.Hotspot, o.hotFrac
	}

	var (
		net       fabricNet
		terminals int
		stages    int
		run       func() (interface{ String() string }, error)
	)
	switch o.kind {
	case "butterfly":
		f, err := fabric.New(fabric.Config{
			Terminals: o.terminals, Radix: o.radix, WordBits: 16,
			SwitchCells: o.cells, Credits: o.credits, CutThrough: true,
			Policy: o.policy, Workers: o.workers,
		})
		if err != nil {
			die(err)
		}
		defer f.Close()
		net, terminals, stages = f, o.terminals, f.Stages()
		run = func() (interface{ String() string }, error) {
			return fabric.Run(f, tcfg, o.warmup, o.cycles)
		}
	case "clos":
		f, err := clos.New(clos.Config{
			Radix: o.radix, Middles: o.middles, WordBits: 16,
			SwitchCells: o.cells, Credits: o.credits, CutThrough: true,
			Policy: o.policy, Workers: o.workers,
		})
		if err != nil {
			die(err)
		}
		defer f.Close()
		net, terminals, stages = f, o.radix*o.radix, 3
		run = func() (interface{ String() string }, error) {
			return clos.Run(f, tcfg, o.warmup, o.cycles)
		}
	default:
		fmt.Fprintf(os.Stderr, "pmsim: -fabric %q: want butterfly or clos\n", o.kind)
		os.Exit(2)
	}

	// Observability attaches before the first Step: the metrics registry
	// is created up front so hop-latency histograms collect during the
	// run, the flight tracer samples deterministically by flight sequence
	// number, and the telemetry ring snapshots per-stage state on a fixed
	// cadence.
	var reg *obs.Registry
	if o.metrics || o.metricsJSON {
		reg = obs.NewRegistry()
		net.RegisterMetrics(reg, "fabric")
		net.RegisterHopHists(reg, "fabric")
	}
	var tracer *obs.Tracer
	if o.trace != nil && o.trace.Out != "" {
		f, err := os.Create(o.trace.Out)
		if err != nil {
			die(err)
		}
		// Sampling is done engine-side by flight seq; the tracer itself
		// passes everything through (sampleEvery 1, unbounded). The sink
		// owns the file and closes it with the tracer.
		tracer = obs.NewTracer(obs.NewJSONLSink(f), 0, 1)
		if err := net.SetFlightTrace(tracer, o.trace.Sample); err != nil {
			die(err)
		}
	}
	var ts *obs.TimeSeries
	if o.trace != nil && o.trace.TelemetryOut != "" {
		ts = net.EnableTelemetry(0, o.trace.EffectiveTelemetryEvery(o.warmup+o.cycles))
	}

	res, err := run()
	if err != nil {
		die(err)
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			die(err)
		}
	}
	if ts != nil {
		f, err := os.Create(o.trace.TelemetryOut)
		if err != nil {
			die(err)
		}
		werr := ts.WriteJSONL(f)
		cerr := f.Close()
		if werr != nil {
			die(werr)
		}
		if cerr != nil {
			die(cerr)
		}
	}

	fmt.Printf("fabric %s terminals=%d stages=%d workers=%d\n%s\n",
		o.kind, terminals, stages, o.workers, res)
	if q := net.Latency(); q.N() > 0 {
		fmt.Printf("latency p50=%d p99=%d max=%d\n",
			q.Quantile(0.50), q.Quantile(0.99), q.Max())
	}
	if err := net.Audit(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim: post-run audit FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("post-run audit passed")

	if reg != nil {
		net.SyncMetrics()
		var err error
		if o.metricsJSON {
			err = reg.WriteJSON(os.Stdout)
		} else {
			err = reg.WritePrometheus(os.Stdout)
		}
		if err != nil {
			die(err)
		}
	}
}
