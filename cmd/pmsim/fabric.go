package main

import (
	"fmt"
	"os"

	"pipemem/internal/clos"
	"pipemem/internal/fabric"
	"pipemem/internal/obs"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// fabricOpts carries the -fabric mode configuration: a multistage
// network (butterfly or three-stage Clos) built on the sharded fabric
// engine, driven by terminal traffic.
type fabricOpts struct {
	kind      string // "butterfly" or "clos"
	terminals int
	radix     int
	middles   int
	cells     int
	credits   int
	workers   int

	load     float64
	saturate bool
	bursty   float64
	hotFrac  float64
	cycles   int64
	warmup   int64
	seed     uint64
	policy   string

	metrics     bool
	metricsJSON bool
}

// fabricNet is the surface shared by the butterfly and Clos nets that
// the -fabric driver needs.
type fabricNet interface {
	Close()
	Audit() error
	Latency() *stats.Hist
	RegisterMetrics(reg *obs.Registry, prefix string)
	SyncMetrics()
}

// runFabric builds the requested multistage network, drives it with the
// shared traffic flags, prints the run summary, and audits the final
// state (conservation, credit bounds, per-node invariants).
func runFabric(o fabricOpts) {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	tcfg := traffic.Config{Kind: traffic.Bernoulli, Load: o.load, Seed: o.seed}
	switch {
	case o.saturate:
		tcfg.Kind = traffic.Saturation
	case o.bursty > 0:
		tcfg.Kind, tcfg.BurstLen = traffic.Bursty, o.bursty
	case o.hotFrac > 0:
		tcfg.Kind, tcfg.HotFrac = traffic.Hotspot, o.hotFrac
	}

	var (
		net       fabricNet
		terminals int
		stages    int
		res       interface{ String() string }
	)
	switch o.kind {
	case "butterfly":
		f, err := fabric.New(fabric.Config{
			Terminals: o.terminals, Radix: o.radix, WordBits: 16,
			SwitchCells: o.cells, Credits: o.credits, CutThrough: true,
			Policy: o.policy, Workers: o.workers,
		})
		if err != nil {
			die(err)
		}
		defer f.Close()
		r, err := fabric.Run(f, tcfg, o.warmup, o.cycles)
		if err != nil {
			die(err)
		}
		net, terminals, stages, res = f, o.terminals, f.Stages(), r
	case "clos":
		f, err := clos.New(clos.Config{
			Radix: o.radix, Middles: o.middles, WordBits: 16,
			SwitchCells: o.cells, Credits: o.credits, CutThrough: true,
			Policy: o.policy, Workers: o.workers,
		})
		if err != nil {
			die(err)
		}
		defer f.Close()
		r, err := clos.Run(f, tcfg, o.warmup, o.cycles)
		if err != nil {
			die(err)
		}
		net, terminals, stages, res = f, o.radix*o.radix, 3, r
	default:
		fmt.Fprintf(os.Stderr, "pmsim: -fabric %q: want butterfly or clos\n", o.kind)
		os.Exit(2)
	}

	fmt.Printf("fabric %s terminals=%d stages=%d workers=%d\n%s\n",
		o.kind, terminals, stages, o.workers, res)
	if q := net.Latency(); q.N() > 0 {
		fmt.Printf("latency p50=%d p99=%d max=%d\n",
			q.Quantile(0.50), q.Quantile(0.99), q.Max())
	}
	if err := net.Audit(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim: post-run audit FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("post-run audit passed")

	if o.metrics || o.metricsJSON {
		reg := obs.NewRegistry()
		net.RegisterMetrics(reg, "fabric")
		net.SyncMetrics()
		var err error
		if o.metricsJSON {
			err = reg.WriteJSON(os.Stdout)
		} else {
			err = reg.WritePrometheus(os.Stdout)
		}
		if err != nil {
			die(err)
		}
	}
}
