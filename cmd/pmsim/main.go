// Command pmsim runs slot-level simulations of the §2 switch-buffering
// architectures and prints throughput / loss / latency summaries.
//
// Usage:
//
//	pmsim -arch shared -n 16 -load 0.8 -buf 86 -slots 1000000
//	pmsim -arch input-fifo -n 16 -saturate
//	pmsim -arch voq -sched islip -n 16 -load 0.9
//	pmsim -sweep -arch output -n 16 -buf 12        # load sweep 0.1..0.95
//
// Architectures: input-fifo, voq, output, shared, crosspoint,
// block-crosspoint, smoothing, speedup.
//
// With -faultplan, pmsim instead drives the cycle-accurate pipelined
// memory switch under traffic while a fault schedule unfolds, and reports
// corruption, ECC activity, bypasses and link retransmissions:
//
//	pmsim -faultplan plan.txt -n 4 -buf 32 -load 0.6 -slots 100000 -ecc
//	pmsim -faultplan random -n 4 -buf 32 -ecc -bypass 3
//	pmsim -faultplan - < plan.txt -n 4 -linkprotect
//
// The plan format is one event per line: "@<cycle> <kind> key=val…"
// (kinds: mem, stuck, ctrl, inreg, linkdrop, linkcorrupt); "random"
// generates a seeded random plan, "-" reads standard input.
//
// With -metrics and/or -trace, pmsim instead drives the cycle-accurate
// pipelined memory switch with the observability layer attached: -metrics
// prints a Prometheus-style snapshot of the run's metrics (wave
// initiations, cut-throughs, stalls, queue depths, buffer high-water
// mark, drops, latency histograms) after the result line, and -trace
// writes the structured JSONL event stream:
//
//	pmsim -metrics -trace out.jsonl -n 8 -buf 256 -load 0.9 -slots 100000
//	pmsim -metrics -metrics-json                # JSON snapshot instead
//	pmsim -faultplan random -ecc -metrics       # observe a fault run
//
// -pprof ADDR serves /metrics, /metrics.json and /debug/pprof/ (with
// periodic runtime heap/GC/goroutine gauges) on ADDR while running.
//
// With -checkpoint, -restore, -audit or -watchdog, the RTL run goes
// through a checkpointable session: -checkpoint FILE writes periodic
// crash-consistent snapshots of the complete simulation state (every
// -ckpt-every cycles, default cycles/10), -restore FILE resumes one —
// traffic, buffer policy and fault plan come from the checkpoint, and the
// resumed run finishes bit-identically to the uninterrupted one. -audit N
// verifies internal invariants (conservation, occupancy, §3.2
// hazard-freedom) every N cycles; -watchdog N aborts with a diagnostic
// checkpoint (FILE.stuck) if no cell moves for N cycles while some are
// resident:
//
//	pmsim -arch rtl -n 8 -buf 256 -slots 200000 -checkpoint run.ckpt
//	pmsim -restore run.ckpt
//	pmsim -faultplan plan.txt -ecc -checkpoint run.ckpt -audit 1000 -watchdog 5000
//
// -linkprotect runs are not checkpointable (CRC link state is not
// serialized).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pipemem"
	"pipemem/internal/cli"
)

func main() {
	var (
		arch     = flag.String("arch", "shared", "architecture: input-fifo|voq|output|shared|shared-capped|crosspoint|block-crosspoint|smoothing|speedup|rtl")
		n        = flag.Int("n", 16, "switch size (n×n)")
		load     = flag.Float64("load", 0.8, "offered load per input in (0,1]")
		saturate = flag.Bool("saturate", false, "saturation mode (backlogged inputs)")
		bursty   = flag.Float64("bursty", 0, "mean burst length in cells (0 = Bernoulli)")
		hotFrac  = flag.Float64("hot", 0, "hotspot fraction toward port 0 (0 = uniform)")
		buf      = flag.Int("buf", 64, "buffer parameter (total cells for shared; per-port otherwise)")
		outCap   = flag.Int("outcap", 16, "per-output occupancy cap for shared-capped")
		group    = flag.Int("group", 4, "block size for block-crosspoint")
		speedup  = flag.Int("speedup", 2, "internal speedup for the speedup fabric")
		sched    = flag.String("sched", "islip", "VOQ scheduler: islip|pim|2drr")
		slots    = flag.Int64("slots", 500_000, "measured slots")
		warmup   = flag.Int64("warmup", 0, "warm-up slots (default slots/10)")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		sweep    = flag.Bool("sweep", false, "sweep load 0.1..0.95 instead of a single point")

		fabricKind = flag.String("fabric", "", "multistage fabric run: butterfly|clos (overrides -arch; uses -terminals/-radix/-middles/-credits/-fabric-workers and the shared traffic flags)")
		terminals  = flag.Int("terminals", 64, "fabric run: external terminal count (butterfly; must be radix^s)")
		radix      = flag.Int("radix", 8, "fabric run: per-node port count (clos terminals = radix²)")
		middles    = flag.Int("middles", 0, "fabric run: populated Clos middle switches (0 = radix)")
		credits    = flag.Int("credits", 4, "fabric run: per-inter-stage-link credits (0 disables flow control)")
		fworkers   = flag.Int("fabric-workers", 1, "fabric run: engine shard workers (0 = GOMAXPROCS; results are bit-identical across counts)")

		faultplan = flag.String("faultplan", "", "fault-injection run: plan file, '-' for stdin, or 'random' (overrides -arch)")
		ecc       = flag.Bool("ecc", false, "fault run: SEC-DED protect the memory banks")
		bypass    = flag.Int("bypass", 0, "fault run: map out a bank after this many unrecovered ECC errors (0 = off; implies -ecc)")
		linkprot  = flag.Bool("linkprotect", false, "fault run: CRC/retransmit protocol on the input links")
		retries   = flag.Int("retries", 0, "fault run: link retransmission budget (0 = default)")
		events    = flag.Int("events", 200, "fault run: event count for -faultplan random")

		metrics     = flag.Bool("metrics", false, "observed RTL run: print a Prometheus-style metrics snapshot after the run")
		metricsJSON = flag.Bool("metrics-json", false, "with -metrics: print the JSON snapshot instead of the text exposition")
		pprofAddr   = flag.String("pprof", "", "serve /metrics and /debug/pprof on this address while running")
	)
	bufpol := cli.BufPolicyFlag(nil)
	ckptf := cli.CheckpointFlags(nil)
	tracef := cli.TraceFlags(nil)
	flag.Parse()
	if *warmup == 0 {
		*warmup = *slots / 10
	}
	if err := ckptf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(2)
	}
	if err := tracef.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(2)
	}

	// A -fabric run drives the multistage engine, which has its own
	// metrics surface; it composes with the traffic and -bufpolicy flags
	// but not with the single-switch fault/checkpoint/trace harnesses.
	if *fabricKind != "" {
		if *faultplan != "" || ckptf.Active() || *pprofAddr != "" {
			fmt.Fprintln(os.Stderr, "pmsim: -fabric does not combine with -faultplan, -checkpoint/-restore or -pprof")
			os.Exit(2)
		}
		archSet := false
		flag.Visit(func(f *flag.Flag) { archSet = archSet || f.Name == "arch" })
		if archSet {
			fmt.Fprintln(os.Stderr, "pmsim: -fabric builds a multistage network, not -arch; drop -arch")
			os.Exit(2)
		}
		runFabric(fabricOpts{
			kind: *fabricKind, terminals: *terminals, radix: *radix,
			middles: *middles, cells: *buf, credits: *credits, workers: *fworkers,
			load: *load, saturate: *saturate, bursty: *bursty, hotFrac: *hotFrac,
			cycles: *slots, warmup: *warmup, seed: *seed, policy: bufpol.Spec(),
			metrics: *metrics, metricsJSON: *metricsJSON, trace: tracef,
		})
		return
	}
	if tracef.TelemetryOut != "" {
		fmt.Fprintln(os.Stderr, "pmsim: -telemetry samples the multistage engine; it needs -fabric butterfly|clos")
		os.Exit(2)
	}

	observe := *metrics || *metricsJSON || tracef.Out != "" || *pprofAddr != ""
	var ob *observed
	if observe {
		var err error
		if ob, err = newObserved(*n, tracef.Out, tracef.Sample, *pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "pmsim:", err)
			os.Exit(1)
		}
		defer ob.finish(*metrics || *metricsJSON, *metricsJSON)
	}

	// The checkpoint/audit/watchdog group routes the run through the
	// session layer, which owns the same RTL + traffic (+ fault plan) loop
	// in a resumable form.
	if ckptf.Active() {
		// Sessions drive the RTL model; an explicit slot-level -arch would
		// be silently ignored, so refuse it instead.
		archSet := false
		flag.Visit(func(f *flag.Flag) { archSet = archSet || f.Name == "arch" })
		if archSet && *arch != "rtl" {
			fmt.Fprintf(os.Stderr, "pmsim: -checkpoint/-restore/-audit/-watchdog drive the RTL model, not -arch %s; use -arch rtl or drop -arch\n", *arch)
			os.Exit(2)
		}
		tcfg := pipemem.TrafficConfig{Kind: pipemem.Bernoulli, N: *n, Load: *load, Seed: *seed}
		switch {
		case *saturate:
			tcfg.Kind = pipemem.Saturation
		case *bursty > 0:
			tcfg.Kind, tcfg.BurstLen = pipemem.Bursty, *bursty
		case *hotFrac > 0:
			tcfg.Kind, tcfg.HotFrac = pipemem.Hotspot, *hotFrac
		}
		runSession(ckptf, sessOpts{
			n: *n, buf: *buf, cycles: *slots, seed: *seed, traffic: tcfg,
			faultplan: *faultplan, events: *events,
			ecc: *ecc || *bypass > 0, bypass: *bypass, linkprotect: *linkprot,
			polSpec: bufpol.Spec(), obs: ob,
		})
		return
	}

	if *faultplan != "" {
		runFaultPlan(*faultplan, faultOpts{
			n: *n, buf: *buf, load: *load, cycles: *slots, seed: *seed,
			ecc: *ecc || *bypass > 0, bypass: *bypass,
			linkprotect: *linkprot, retries: *retries, events: *events,
			obs: ob, policy: bufpol.Policy(),
		})
		return
	}

	// -metrics/-trace (or -arch rtl) select the cycle-accurate pipelined
	// switch (the observability layer lives in the RTL model, not the
	// slot-level §2 simulators).
	if observe || *arch == "rtl" {
		runObserved(ob, rtlOpts{n: *n, buf: *buf, load: *load, cycles: *slots,
			seed: *seed, saturate: *saturate, bursty: *bursty, hotFrac: *hotFrac,
			policy: bufpol.Policy()})
		return
	}
	// The §2 slot-level simulators have no shared-buffer admission hook;
	// refuse the flag rather than silently ignoring it.
	if bufpol.Got() {
		fmt.Fprintln(os.Stderr, "pmsim: -bufpolicy applies to the RTL model only (-arch rtl, -faultplan, -metrics or -trace)")
		os.Exit(2)
	}

	build := func() pipemem.Arch {
		switch *arch {
		case "input-fifo":
			return pipemem.NewInputFIFO(*n, *buf)
		case "voq":
			return pipemem.NewVOQ(*n, *buf, *sched)
		case "output":
			return pipemem.NewOutputQueue(*n, *buf)
		case "shared":
			return pipemem.NewSharedBufferArch(*n, *buf)
		case "shared-capped":
			return pipemem.NewCappedSharedBufferArch(*n, *buf, *outCap)
		case "crosspoint":
			return pipemem.NewCrosspoint(*n, *buf)
		case "block-crosspoint":
			return pipemem.NewBlockCrosspoint(*n, *group, *buf)
		case "smoothing":
			return pipemem.NewInputSmoothing(*n, *buf)
		case "speedup":
			return pipemem.NewSpeedupFabric(*n, *buf, *buf, *speedup)
		default:
			fmt.Fprintf(os.Stderr, "pmsim: unknown architecture %q\n", *arch)
			os.Exit(2)
			return nil
		}
	}

	run := func(p float64) {
		cfg := pipemem.TrafficConfig{Kind: pipemem.Bernoulli, N: *n, Load: p, Seed: *seed}
		switch {
		case *saturate:
			cfg.Kind = pipemem.Saturation
		case *bursty > 0:
			cfg.Kind = pipemem.Bursty
			cfg.BurstLen = *bursty
		case *hotFrac > 0:
			cfg.Kind = pipemem.Hotspot
			cfg.HotFrac = *hotFrac
		}
		g, err := pipemem.NewGenerator(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsim:", err)
			os.Exit(1)
		}
		res := pipemem.RunArch(build(), g, *warmup, *slots)
		fmt.Printf("load=%.2f  %s\n", p, res)
	}

	if *sweep {
		for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
			run(p)
		}
		return
	}
	run(*load)
}

// observed bundles the run's observability plumbing: the registry and
// observer, the optional JSONL trace sink, and the optional debug server.
type observed struct {
	reg      *pipemem.MetricsRegistry
	observer *pipemem.Observer
	sink     *pipemem.JSONLSink
	tracer   *pipemem.EventTracer
	stop     func()
}

// newObserved builds the registry/observer (sized for an n-port switch),
// opens the JSONL trace file when requested, and starts the debug server
// when pprofAddr is set.
func newObserved(n int, traceOut string, sample int, pprofAddr string) (*observed, error) {
	ob := &observed{reg: pipemem.NewMetricsRegistry()}
	ob.observer = pipemem.NewObserver(ob.reg, n)
	// A typed-nil *JSONLSink must not reach the TraceSink interface (the
	// tracer would call methods on it), so assign only when present.
	var sink pipemem.TraceSink
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, err
		}
		ob.sink = pipemem.NewJSONLSink(f)
		sink = ob.sink
	}
	ob.tracer = pipemem.NewEventTracer(sink, 0, sample)
	ob.tracer.Register(ob.reg)
	ob.observer.Tracer = ob.tracer
	if pprofAddr != "" {
		addr, stop, err := pipemem.ServeDebug(pprofAddr, ob.reg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "pmsim: debug server on http://%s (metrics, metrics.json, debug/pprof)\n", addr)
		ob.stop = stop
	}
	return ob, nil
}

// finish flushes the trace sink, stops the debug server, and prints the
// metrics snapshot when asked.
func (ob *observed) finish(printMetrics, asJSON bool) {
	if err := ob.tracer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim: trace:", err)
	}
	if ob.stop != nil {
		ob.stop()
	}
	if printMetrics {
		if asJSON {
			_ = ob.reg.WriteJSON(os.Stdout)
		} else {
			_ = ob.reg.WritePrometheus(os.Stdout)
		}
	}
}

type rtlOpts struct {
	n, buf   int
	load     float64
	cycles   int64
	seed     uint64
	saturate bool
	bursty   float64
	hotFrac  float64
	policy   pipemem.BufferPolicy
}

// runObserved drives the cycle-accurate pipelined switch, with the
// observer installed when one was requested (ob may be nil for a plain
// -arch rtl run), and prints the run result; the deferred finish in main
// emits the metrics snapshot.
func runObserved(ob *observed, o rtlOpts) {
	sw, err := pipemem.New(pipemem.Config{Ports: o.n, WordBits: 16, Cells: o.buf, CutThrough: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	if ob != nil {
		sw.SetObserver(ob.observer)
	}
	if o.policy != nil {
		sw.SetBufferPolicy(o.policy)
	}
	tcfg := pipemem.TrafficConfig{Kind: pipemem.Bernoulli, N: o.n, Load: o.load, Seed: o.seed}
	switch {
	case o.saturate:
		tcfg.Kind = pipemem.Saturation
	case o.bursty > 0:
		tcfg.Kind, tcfg.BurstLen = pipemem.Bursty, o.bursty
	case o.hotFrac > 0:
		tcfg.Kind, tcfg.HotFrac = pipemem.Hotspot, o.hotFrac
	}
	cs, err := pipemem.NewCellStream(tcfg, sw.Config().Stages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	res, err := pipemem.RunTraffic(sw, cs, o.cycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	fmt.Println(res)
}

type sessOpts struct {
	n, buf      int
	cycles      int64
	seed        uint64
	traffic     pipemem.TrafficConfig
	faultplan   string
	events      int
	ecc         bool
	bypass      int
	linkprotect bool
	polSpec     string
	obs         *observed
}

// runSession drives the RTL switch through the checkpointable session
// layer: periodic checkpoints, online invariant audits, the no-progress
// watchdog, and -restore resumption. On a watchdog or audit abort the
// partial result is still printed before the non-zero exit.
func runSession(ck *cli.CheckpointValue, o sessOpts) {
	die := func(msg string) {
		fmt.Fprintln(os.Stderr, "pmsim:", msg)
		os.Exit(2)
	}
	if o.linkprotect {
		die("-checkpoint/-restore/-audit/-watchdog do not cover the -linkprotect harness (CRC link state is not serialized); drop -linkprotect")
	}
	opts := pipemem.SimOptions{
		Path:           ck.Path,
		Every:          ck.EffectiveEvery(o.cycles),
		AuditEvery:     ck.AuditEvery,
		WatchdogWindow: ck.Watchdog,
	}
	if o.obs != nil {
		opts.Observer = o.obs.observer
	}
	var s *pipemem.SimSession
	var err error
	if ck.Restore != "" {
		if o.faultplan != "" {
			die("-restore resumes the checkpoint's own fault plan; drop -faultplan")
		}
		if o.polSpec != "" {
			die("-restore resumes the checkpoint's own buffer policy; drop -bufpolicy")
		}
		s, err = pipemem.ResumeSession(ck.Restore, opts)
	} else {
		spec := pipemem.SimSpec{
			Switch:  pipemem.Config{Ports: o.n, WordBits: 16, Cells: o.buf, CutThrough: true},
			Traffic: o.traffic,
			Cycles:  o.cycles,
			Policy:  o.polSpec,
		}
		if o.faultplan != "" {
			spec.Switch = pipemem.Config{
				Ports: o.n, Cells: o.buf, CutThrough: !o.ecc,
				ECC: o.ecc, BypassThreshold: o.bypass,
			}
			plan, perr := loadPlan(o.faultplan, faultOpts{
				n: o.n, cycles: o.cycles, seed: o.seed, events: o.events,
			})
			if perr != nil {
				fmt.Fprintln(os.Stderr, "pmsim:", perr)
				os.Exit(1)
			}
			spec.Plan, spec.FaultSeed = plan, o.seed
		}
		s, err = pipemem.NewSession(spec, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	res, rerr := s.Run()
	fmt.Println(res)
	if eng := s.Engine(); eng != nil {
		tallies := eng.Counters().Snapshot()
		for _, k := range []string{"mem", "stuck", "ctrl", "inreg"} {
			if a, sk := tallies["applied-"+k], tallies["skipped-"+k]; a+sk > 0 {
				fmt.Printf("faults: %-11s applied=%d skipped=%d\n", k, a, sk)
			}
		}
	}
	if rerr != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", rerr)
		os.Exit(1)
	}
}

type faultOpts struct {
	n, buf      int
	load        float64
	cycles      int64
	seed        uint64
	ecc         bool
	bypass      int
	linkprotect bool
	retries     int
	events      int
	obs         *observed
	policy      pipemem.BufferPolicy
}

// runFaultPlan drives the cycle-accurate switch under a fault schedule and
// prints the report, the final health state, and the engine's per-kind
// tallies.
func runFaultPlan(src string, o faultOpts) {
	plan, err := loadPlan(src, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	var observer *pipemem.Observer
	if o.obs != nil {
		observer = o.obs.observer
	}
	rep, err := pipemem.RunFaults(pipemem.FaultRunOptions{
		Config: pipemem.Config{
			Ports: o.n, Cells: o.buf, CutThrough: !o.ecc,
			ECC: o.ecc, BypassThreshold: o.bypass,
		},
		Plan:        plan,
		Seed:        o.seed,
		Cycles:      o.cycles,
		Load:        o.load,
		LinkProtect: o.linkprotect,
		MaxRetries:  o.retries,
		Observer:    observer,
		Policy:      o.policy,
	})
	if rep != nil {
		fmt.Println(rep)
		h := rep.Health
		fmt.Printf("health: degraded=%v failed=%v usable-cells=%d ecc-hard=%d bypass-drops=%d\n",
			h.Degraded, h.Failed, h.UsableCells, h.ECCHard, h.BypassDrops)
		for _, k := range []string{"mem", "stuck", "ctrl", "inreg", "linkdrop", "linkcorrupt"} {
			if a, s := rep.Engine["applied-"+k], rep.Engine["skipped-"+k]; a+s > 0 {
				fmt.Printf("faults: %-11s applied=%d skipped=%d\n", k, a, s)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
}

// loadPlan resolves the -faultplan argument: a seeded random plan, stdin,
// or a plan file.
func loadPlan(src string, o faultOpts) (*pipemem.FaultPlan, error) {
	if src == "random" {
		kinds := []pipemem.FaultKind{pipemem.FaultMem}
		if o.linkprotect {
			kinds = []pipemem.FaultKind{pipemem.FaultLinkDrop, pipemem.FaultLinkCorrupt}
		}
		return pipemem.RandomFaultPlan(o.seed, pipemem.FaultRandomOptions{
			Cycles: o.cycles, Events: o.events, Stages: 2 * o.n,
			WordBits: 16, Inputs: o.n, Kinds: kinds,
		}), nil
	}
	var text []byte
	var err error
	if src == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(src)
	}
	if err != nil {
		return nil, err
	}
	return pipemem.ParseFaultPlan(string(text))
}
