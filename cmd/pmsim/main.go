// Command pmsim runs slot-level simulations of the §2 switch-buffering
// architectures and prints throughput / loss / latency summaries.
//
// Usage:
//
//	pmsim -arch shared -n 16 -load 0.8 -buf 86 -slots 1000000
//	pmsim -arch input-fifo -n 16 -saturate
//	pmsim -arch voq -sched islip -n 16 -load 0.9
//	pmsim -sweep -arch output -n 16 -buf 12        # load sweep 0.1..0.95
//
// Architectures: input-fifo, voq, output, shared, crosspoint,
// block-crosspoint, smoothing, speedup.
package main

import (
	"flag"
	"fmt"
	"os"

	"pipemem"
)

func main() {
	var (
		arch     = flag.String("arch", "shared", "architecture: input-fifo|voq|output|shared|shared-capped|crosspoint|block-crosspoint|smoothing|speedup")
		n        = flag.Int("n", 16, "switch size (n×n)")
		load     = flag.Float64("load", 0.8, "offered load per input in (0,1]")
		saturate = flag.Bool("saturate", false, "saturation mode (backlogged inputs)")
		bursty   = flag.Float64("bursty", 0, "mean burst length in cells (0 = Bernoulli)")
		hotFrac  = flag.Float64("hot", 0, "hotspot fraction toward port 0 (0 = uniform)")
		buf      = flag.Int("buf", 64, "buffer parameter (total cells for shared; per-port otherwise)")
		outCap   = flag.Int("outcap", 16, "per-output occupancy cap for shared-capped")
		group    = flag.Int("group", 4, "block size for block-crosspoint")
		speedup  = flag.Int("speedup", 2, "internal speedup for the speedup fabric")
		sched    = flag.String("sched", "islip", "VOQ scheduler: islip|pim|2drr")
		slots    = flag.Int64("slots", 500_000, "measured slots")
		warmup   = flag.Int64("warmup", 0, "warm-up slots (default slots/10)")
		seed     = flag.Uint64("seed", 1, "PRNG seed")
		sweep    = flag.Bool("sweep", false, "sweep load 0.1..0.95 instead of a single point")
	)
	flag.Parse()
	if *warmup == 0 {
		*warmup = *slots / 10
	}

	build := func() pipemem.Arch {
		switch *arch {
		case "input-fifo":
			return pipemem.NewInputFIFO(*n, *buf)
		case "voq":
			return pipemem.NewVOQ(*n, *buf, *sched)
		case "output":
			return pipemem.NewOutputQueue(*n, *buf)
		case "shared":
			return pipemem.NewSharedBufferArch(*n, *buf)
		case "shared-capped":
			return pipemem.NewCappedSharedBufferArch(*n, *buf, *outCap)
		case "crosspoint":
			return pipemem.NewCrosspoint(*n, *buf)
		case "block-crosspoint":
			return pipemem.NewBlockCrosspoint(*n, *group, *buf)
		case "smoothing":
			return pipemem.NewInputSmoothing(*n, *buf)
		case "speedup":
			return pipemem.NewSpeedupFabric(*n, *buf, *buf, *speedup)
		default:
			fmt.Fprintf(os.Stderr, "pmsim: unknown architecture %q\n", *arch)
			os.Exit(2)
			return nil
		}
	}

	run := func(p float64) {
		cfg := pipemem.TrafficConfig{Kind: pipemem.Bernoulli, N: *n, Load: p, Seed: *seed}
		switch {
		case *saturate:
			cfg.Kind = pipemem.Saturation
		case *bursty > 0:
			cfg.Kind = pipemem.Bursty
			cfg.BurstLen = *bursty
		case *hotFrac > 0:
			cfg.Kind = pipemem.Hotspot
			cfg.HotFrac = *hotFrac
		}
		g, err := pipemem.NewGenerator(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsim:", err)
			os.Exit(1)
		}
		res := pipemem.RunArch(build(), g, *warmup, *slots)
		fmt.Printf("load=%.2f  %s\n", p, res)
	}

	if *sweep {
		for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
			run(p)
		}
		return
	}
	run(*load)
}
