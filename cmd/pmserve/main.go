// Command pmserve is the simulation-as-a-service daemon: it serves the
// internal/srv session API over HTTP/JSON. Clients create named
// simulation sessions from the same spec grammar as batch pmsim
// (topology, traffic, buffer policy, fault plan), advance them in
// bounded step batches or background free-run, stream trace cells in,
// scrape live results, metrics and occupancy telemetry, and
// checkpoint/fork/restore them.
//
// Usage:
//
//	pmserve -listen localhost:8377 -max-sessions 16 -ckpt-dir /tmp/pm
//
// API (all request/response bodies JSON):
//
//	GET    /sessions                     list sessions
//	POST   /sessions                     create ({"cycles":100000,...} or {"restore":"s1.ckpt"})
//	GET    /sessions/{id}                status readout
//	DELETE /sessions/{id}                pause and remove
//	POST   /sessions/{id}/step?cycles=N  advance synchronously
//	POST   /sessions/{id}/run            start background free-run
//	POST   /sessions/{id}/pause          pause free-run at a batch boundary
//	GET    /sessions/{id}/result         RunResult snapshot (live or final)
//	GET    /sessions/{id}/series         occupancy telemetry (JSONL)
//	GET    /sessions/{id}/metrics        per-session Prometheus scrape
//	POST   /sessions/{id}/checkpoint     write <id>.ckpt to -ckpt-dir
//	POST   /sessions/{id}/fork           clone at the current cycle ({"name":"..."} optional)
//	POST   /sessions/{id}/inject         append trace rows ({"slots":[[...],...]})
//	GET    /metrics                      server + all sessions, session="<id>" labels
//	GET    /metrics.json                 JSON snapshots keyed by session id
//	GET    /debug/pprof/                 profiles
//
// On SIGTERM/SIGINT pmserve drains: it pauses every free-running
// session at a step boundary and checkpoints every live unfinished
// session into -ckpt-dir, so a restarted server restores the fleet via
// POST /sessions {"restore": "<id>.ckpt"}.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pipemem/internal/obs"
	"pipemem/internal/srv"
)

// newFlagSet builds pmserve's flag set with usage on errw.
func newFlagSet(errw *os.File) *flag.FlagSet {
	fs := flag.NewFlagSet("pmserve", flag.ContinueOnError)
	fs.SetOutput(errw)
	return fs
}

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pmserve:", err)
		os.Exit(2)
	}
}

func run(args []string, errw *os.File) error {
	fs := newFlagSet(errw)
	listen := fs.String("listen", "localhost:8377", "address to serve on (host:port)")
	maxSessions := fs.Int("max-sessions", 16, "maximum concurrently live sessions")
	stepMax := fs.Int64("step-max", 1<<20, "maximum cycles per step request")
	ckptDir := fs.String("ckpt-dir", "", "directory for checkpoint/restore and shutdown drain (empty = checkpointing off)")
	telemetryEvery := fs.Int64("telemetry-every", 256, "occupancy-sampling cadence in cycles")
	telemetryCap := fs.Int("telemetry-cap", 4096, "per-session telemetry ring capacity in samples")
	freeRunBatch := fs.Int64("freerun-batch", 8192, "cycles a free-running session advances per lock hold")
	reqTimeout := fs.Duration("req-timeout", 30*time.Second, "per-request handler timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxSessions <= 0 {
		return fmt.Errorf("-max-sessions must be positive (got %d)", *maxSessions)
	}
	if *stepMax <= 0 {
		return fmt.Errorf("-step-max must be positive (got %d)", *stepMax)
	}
	if *telemetryEvery <= 0 || *telemetryCap <= 0 || *freeRunBatch <= 0 {
		return fmt.Errorf("-telemetry-every, -telemetry-cap and -freerun-batch must be positive")
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %v", err)
		}
	}

	m := srv.NewManager(srv.Options{
		MaxSessions:    *maxSessions,
		StepMax:        *stepMax,
		CkptDir:        *ckptDir,
		TelemetryEvery: *telemetryEvery,
		TelemetryCap:   *telemetryCap,
		FreeRunBatch:   *freeRunBatch,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %v", *listen, err)
	}

	// Runtime gauges ride on the server registry, so /metrics carries
	// heap/GC/goroutine health next to the session-fleet counters.
	rg := obs.NewRuntimeGauges(m.Registry())
	stopGauges := rg.Start(time.Second)
	defer stopGauges()

	var handler http.Handler = m.Handler()
	if *reqTimeout > 0 {
		// Bound every request. Step requests are already capped by
		// -step-max; this also covers slow clients on the scrape paths.
		handler = http.TimeoutHandler(handler, *reqTimeout, `{"error":"request timed out"}`)
	}
	server := &http.Server{Handler: handler}

	fmt.Fprintf(errw, "pmserve: listening on http://%s\n", ln.Addr())
	errCh := make(chan error, 1)
	go func() { errCh <- server.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(errw, "pmserve: %v: draining\n", sig)
	case err := <-errCh:
		return fmt.Errorf("serve: %v", err)
	}

	// Stop accepting requests, then freeze the fleet: every free-running
	// session pauses at a step boundary and every live unfinished session
	// gets a checkpoint in -ckpt-dir.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = server.Shutdown(ctx)
	files, derr := m.Drain()
	if len(files) > 0 {
		fmt.Fprintf(errw, "pmserve: drained %d session(s): %s\n", len(files), strings.Join(files, ", "))
	}
	if derr != nil {
		return fmt.Errorf("drain: %v", derr)
	}
	fmt.Fprintln(errw, "pmserve: stopped")
	return nil
}
