// Command pmbench measures the RTL hot path and gates performance
// regressions.
//
// Default mode measures a fixed set of points (the same shapes as the
// go-test microbenchmarks) serially, prints a table with the speedup over
// the recorded baseline, and — with -json — writes a BENCH_<n>.json
// report. With -check it first compares the fresh numbers against the
// Results of the existing report and exits nonzero on a violation
// (allocation growth, or a cells/sec drop beyond -tol).
//
// With -sweep it instead fans a load sweep across a worker pool
// (internal/bench.Sweep) and prints utilization and latency per point —
// a smoke test for the parallel sweep engine and a quick saturation
// profile of the switch.
//
// -metrics prints a Prometheus-style snapshot of the sweep engine's own
// metrics (points completed, cut-latency-overflow runs) after the run;
// -pprof ADDR serves /metrics and /debug/pprof while running — scrape it
// mid-sweep for live progress.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"pipemem/internal/bench"
	"pipemem/internal/cli"
	"pipemem/internal/core"
	"pipemem/internal/fabric"
	"pipemem/internal/obs"
	"pipemem/internal/traffic"
)

func points(cycles int64) []bench.Point {
	return []bench.Point{
		{
			Label:   "tick-steady-8x8",
			Config:  core.Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
			Traffic: traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42},
			Cycles:  cycles,
		},
		{
			Label:   "tick-sat-8x8",
			Config:  core.Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
			Traffic: traffic.Config{Kind: traffic.Saturation, N: 8, Seed: 42},
			Cycles:  cycles,
		},
		{
			// Light load: most cycles are dead, so this point measures the
			// per-cycle floor — the dead-cycle short circuit of the batched
			// engine, not the arbitration path.
			Label:   "tick-light-8x8",
			Config:  core.Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
			Traffic: traffic.Config{Kind: traffic.Bernoulli, N: 8, Load: 0.05, Seed: 42},
			Cycles:  cycles,
		},
		{
			// The same lightly loaded switch driven through TickN: one call
			// per arrival front plus its trailing gap, with the event-driven
			// fast-forward collapsing drained gaps to O(1).
			Label:   "tick-batch-8x8",
			Config:  core.Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
			Traffic: traffic.Config{Kind: traffic.Permutation, N: 8, Load: 0.05, Seed: 42},
			Cycles:  cycles,
			Batched: true,
		},
		{
			Label:   "tick-bern-16x16",
			Config:  core.Config{Ports: 16, WordBits: 16, Cells: 512, CutThrough: true},
			Traffic: traffic.Config{Kind: traffic.Bernoulli, N: 16, Load: 0.8, Seed: 42},
			Cycles:  cycles,
		},
		{
			Label:   "dual-perm-8x8",
			Config:  core.Config{Ports: 8, WordBits: 16, Cells: 128, CutThrough: true},
			Dual:    true,
			Traffic: traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42},
			Cycles:  cycles,
		},
	}
}

// fabricPoints are the multistage regression shapes, measured through the
// sharded fabric engine (sequential reference: one worker, so the number
// tracks per-core engine efficiency rather than host parallelism). Fabric
// cycles cover 16 node ticks each, so the cycle budget is scaled down to
// keep the wall time comparable with the single-switch points.
func fabricPoints(cycles int64) []bench.FabricPoint {
	return []bench.FabricPoint{
		{
			Label: "fabric-64term",
			Config: fabric.Config{
				Terminals: 64, Radix: 8, WordBits: 16, SwitchCells: 32,
				Credits: 4, CutThrough: true, Workers: 1,
			},
			Traffic: traffic.Config{Kind: traffic.Saturation, Seed: 42},
			Cycles:  cycles / 4,
		},
	}
}

func main() {
	var (
		jsonPath = flag.String("json", "", "report file to read the baseline from and write results to")
		check    = flag.Bool("check", false, "gate fresh numbers against the existing report's results")
		tol      = flag.Float64("tol", 0.5, "relative cells/sec regression tolerated by -check (allocs are gated strictly)")
		cycles   = flag.Int64("cycles", 200_000, "measured cycles per point")
		warmup   = flag.Int64("warmup", 4096, "untimed warmup cycles per point")
		reps     = flag.Int("reps", 6, "timed windows per point; the fastest is reported (co-tenant noise suppression), allocation counts take the worst")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the measurement loop to this file")
		only     = flag.String("point", "", "measure only the named regression point (e.g. tick-steady-8x8)")
		workers  = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS)")
		sweep    = flag.Bool("sweep", false, "run a parallel load sweep instead of the regression points")
		phases   = flag.Bool("phases", false, "profile the fabric points' phase breakdown (step phases + arbitration share) instead of gating throughput")
		metrics  = flag.Bool("metrics", false, "print a Prometheus-style snapshot of the sweep-engine metrics after the run")
		pprofA   = flag.String("pprof", "", "serve /metrics and /debug/pprof on this address while running")
	)
	bufpol := cli.BufPolicyFlag(nil)
	flag.Parse()
	// The regression points are named shapes with frozen baselines; a
	// policy would change what "tick-steady-8x8" measures, so the flag is
	// sweep-only.
	if bufpol.Got() && !*sweep {
		fmt.Fprintln(os.Stderr, "pmbench: -bufpolicy only applies to -sweep (the regression points are fixed shapes)")
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metrics || *pprofA != "" {
		reg = obs.NewRegistry()
		bench.RegisterMetrics(reg)
		if *pprofA != "" {
			addr, stop, err := obs.ServeDebug(*pprofA, reg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "pmbench: debug server on http://%s\n", addr)
			defer stop()
		}
		if *metrics {
			defer func() { _ = reg.WritePrometheus(os.Stdout) }()
		}
	}

	if *sweep {
		if err := runSweep(*workers, *cycles, bufpol.Spec()); err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		return
	}

	// -phases is a diagnostic read, not a gate: the profilers add clock
	// reads to the hot path, so its numbers must never feed the -check
	// baselines.
	if *phases {
		if *check || *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "pmbench: -phases profiles with timers in the hot path; it cannot gate or record baselines (-check/-json)")
			os.Exit(2)
		}
		fpts := fabricPoints(*cycles)
		if *only != "" {
			var keep []bench.FabricPoint
			for _, p := range fpts {
				if p.Label == *only {
					keep = append(keep, p)
				}
			}
			if keep == nil {
				fmt.Fprintf(os.Stderr, "pmbench: no fabric point named %q (-phases profiles the fabric points)\n", *only)
				os.Exit(2)
			}
			fpts = keep
		}
		for _, p := range fpts {
			rep, err := bench.MeasurePhases(p, *warmup)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmbench:", err)
				os.Exit(1)
			}
			fmt.Println(rep)
		}
		return
	}

	// -check without a baseline would silently gate nothing; refuse the
	// combination instead of reporting a vacuous pass.
	if *check && *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "pmbench: -check needs -json FILE naming the baseline report")
		os.Exit(2)
	}
	var prev *bench.Report
	if *jsonPath != "" {
		if r, err := bench.Load(*jsonPath); err == nil {
			prev = r
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
	}
	if *check && prev == nil {
		fmt.Fprintf(os.Stderr, "pmbench: -check: no baseline at %q (run pmbench -json %s once to record one)\n", *jsonPath, *jsonPath)
		os.Exit(1)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
			fmt.Fprintf(os.Stderr, "pmbench: wrote CPU profile to %s\n", *cpuProf)
		}()
	}

	pts := points(*cycles)
	fpts := fabricPoints(*cycles)
	if *only != "" {
		// A partial measurement must not gate or overwrite the full report.
		if *jsonPath != "" || *check {
			fmt.Fprintln(os.Stderr, "pmbench: -point measures a single shape; it cannot be combined with -json or -check")
			os.Exit(2)
		}
		var keep []bench.Point
		for _, p := range pts {
			if p.Label == *only {
				keep = append(keep, p)
			}
		}
		var fkeep []bench.FabricPoint
		for _, p := range fpts {
			if p.Label == *only {
				fkeep = append(fkeep, p)
			}
		}
		if keep == nil && fkeep == nil {
			fmt.Fprintf(os.Stderr, "pmbench: no regression point named %q\n", *only)
			os.Exit(2)
		}
		pts, fpts = keep, fkeep
	}

	cur := bench.NewReport()
	cur.Tolerance = *tol
	// Measurement is serial on purpose: concurrent points would contend
	// for cores and corrupt each other's wall-clock rates.
	for _, p := range pts {
		var rec bench.Record
		var err error
		if p.Batched {
			rec, err = bench.MeasureBatched(p, *warmup, *reps)
		} else {
			rec, err = bench.MeasureBest(p, *warmup, *reps)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		cur.Results[rec.Name] = rec
	}
	for _, p := range fpts {
		rec, err := bench.MeasureFabric(p, *warmup, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		cur.Results[rec.Name] = rec
	}

	// The baseline is frozen at the first report and carried forward.
	if prev != nil && len(prev.Baseline) > 0 {
		cur.Baseline = prev.Baseline
	} else {
		cur.Baseline = cur.Results
	}

	// Wall-clock rates only compare within one host: surface any
	// environment drift before the numbers (informational, never fatal —
	// the allocation gate is host-independent).
	if prev != nil {
		for _, w := range bench.HostMismatch(prev, cur) {
			fmt.Fprintln(os.Stderr, "pmbench: WARNING:", w)
		}
	}

	labels := make([]string, 0, len(pts)+len(fpts))
	for _, p := range pts {
		labels = append(labels, p.Label)
	}
	for _, p := range fpts {
		labels = append(labels, p.Label)
	}
	fmt.Printf("%-16s %12s %10s %12s %8s %9s\n", "point", "cells/sec", "ns/cycle", "allocs/tick", "vs base", "vs prev")
	for _, label := range labels {
		rec := cur.Results[label]
		speedup := "-"
		if b, ok := cur.Baseline[label]; ok && b.CellsPerSec > 0 {
			speedup = fmt.Sprintf("%.2fx", rec.CellsPerSec/b.CellsPerSec)
		}
		delta := "-"
		if prev != nil {
			if pr, ok := prev.Results[label]; ok && pr.CellsPerSec > 0 {
				delta = fmt.Sprintf("%+.1f%%", (rec.CellsPerSec/pr.CellsPerSec-1)*100)
			}
		}
		fmt.Printf("%-16s %12.0f %10.1f %12.3f %8s %9s\n",
			rec.Name, rec.CellsPerSec, rec.NsPerCycle, rec.AllocsPerTick, speedup, delta)
	}

	if *check && prev != nil {
		if bad := bench.Compare(prev, cur, *tol); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintln(os.Stderr, "pmbench: REGRESSION:", v)
			}
			os.Exit(1)
		}
		fmt.Println("pmbench: regression gate passed")
	}

	if *jsonPath != "" {
		if err := cur.Write(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		fmt.Println("pmbench: wrote", *jsonPath)
	}
}

// runSweep exercises the parallel sweep engine: an 8×8 switch across a
// load sweep, every point on its own worker, optionally under a
// shared-buffer admission policy.
func runSweep(workers int, cycles int64, policy string) error {
	var pts []bench.Point
	for _, load := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		label := fmt.Sprintf("8x8 bernoulli load=%.2f", load)
		if policy != "" {
			label += " " + policy
		}
		pts = append(pts, bench.Point{
			Label:   label,
			Config:  core.Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
			Traffic: traffic.Config{Kind: traffic.Bernoulli, N: 8, Load: load, Seed: 7},
			Cycles:  cycles,
			Policy:  policy,
		})
	}
	results, err := bench.Sweep(workers, pts)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %10s %10s %10s %10s\n", "point", "delivered", "util", "cutlat", "maxbuf")
	for _, r := range results {
		fmt.Printf("%-26s %10d %10.4f %10.2f %10d\n",
			r.Point.Label, r.Run.Delivered, r.Run.Utilization, r.Run.MeanCutLatency, r.Run.MaxBuffered)
	}
	return nil
}
