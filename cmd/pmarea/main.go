// Command pmarea evaluates the §4/§5 VLSI area models: the Telegraphos
// II/III floorplans, the pipelined-vs-wide peripheral comparison, the
// fig. 9 shared-vs-input comparison, and the PRIZMA crossbar cost.
//
// Usage:
//
//	pmarea                      # everything at the paper's parameters
//	pmarea -n 16 -w 32          # rescale the comparisons
package main

import (
	"flag"
	"fmt"
	"os"

	"pipemem/internal/area"
	"pipemem/internal/cli"
	"pipemem/internal/obs"
)

func main() {
	var (
		n      = flag.Int("n", 8, "ports for the periphery/PRIZMA comparisons")
		w      = flag.Int("w", 16, "link width (bits) for the fig. 9 comparison")
		banks  = flag.Int("banks", 256, "PRIZMA bank count M")
		hIn    = flag.Int("hin", 80, "fig. 9: cells per input buffer")
		hShare = flag.Int("hshared", 86, "fig. 9: total shared-buffer cells")
		pprofA = flag.String("pprof", "", "serve runtime metrics and /debug/pprof on this address while running")
	)
	// Area models are simulation-free, so the policy cannot change any
	// number here; the shared flag still validates the spec, keeping
	// "pmarea -bufpolicy X && pmrtl -bufpolicy X" consistent.
	cli.BufPolicyFlag(nil)
	flag.Parse()

	if *n <= 0 || *w <= 0 || *banks <= 0 || *hIn <= 0 || *hShare <= 0 {
		fmt.Fprintln(os.Stderr, "pmarea: -n, -w, -banks, -hin and -hshared must all be positive")
		os.Exit(2)
	}

	if *pprofA != "" {
		addr, stop, err := obs.ServeDebug(*pprofA, obs.NewRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmarea:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pmarea: debug server on http://%s\n", addr)
		defer stop()
	}

	fmt.Println("== Telegraphos II floorplan (§4.2, fig. 6) ==")
	fmt.Print(area.TelegraphosII())
	fmt.Println()

	fmt.Println("== Telegraphos III floorplan (§4.4, fig. 8) ==")
	fmt.Print(area.TelegraphosIII())
	fmt.Println()

	fmt.Println("== Peripheral circuitry: pipelined vs wide (§5.2) ==")
	m := area.DefaultRowModel()
	cmp := m.ComparePeriphery(*n, area.ES2u10)
	fmt.Printf("  register rows:  pipelined %d, wide %d (n=%d)\n",
		area.PeripheryRows(area.Pipelined, *n), area.PeripheryRows(area.Wide, *n), *n)
	fmt.Printf("  pipelined: %5.2f mm²   wide: %5.2f mm²   saving: %.0f%%\n\n",
		cmp.PipelinedMm2, cmp.WideMm2, cmp.Saving*100)

	fmt.Println("== Shared vs input buffering (§5.1, fig. 9) ==")
	c := area.CompareInputVsShared(16, *w, *hIn, *hShare)
	fmt.Printf("  width (both):       %d bit-cells (2nw)\n", c.WidthShared)
	fmt.Printf("  array height:       input %d rows, shared %d rows\n", c.HInputRows, c.HSharedRows)
	fmt.Printf("  crossbar blocks:    input %d, shared %d (each %d units)\n",
		c.CrossbarBlocksInput, c.CrossbarBlocksShared, c.CrossbarBlockArea)
	fmt.Printf("  total area:         input %d, shared %d → shared wins %.2f×\n\n",
		c.TotalInput(), c.TotalShared(), c.Advantage())

	fmt.Println("== PRIZMA interleaved comparison (§5.3) ==")
	fmt.Printf("  crossbar cost ratio n×M / n×2n = %.0f×  (M=%d, 2n=%d)\n",
		area.PrizmaCrossbarRatio(*n, *banks), *banks, 2**n)
	fmt.Printf("  shift-register bank penalty: %.0f× a 3T DRAM bit\n", area.ShiftRegisterPenalty)
	fmt.Printf("  decoder vs decoded-address pipeline register: %.1f× (fig. 7b)\n\n", area.DecoderVsPipelineReg)

	fmt.Println("== Technology scaling (§4.4) ==")
	g := area.TelegraphosGain()
	fmt.Printf("  full custom vs standard cell: ×%.0f links, ×%.1f clock, ×%.1f area → %.1f overall\n",
		g.LinkFactor, g.ClockFactor, g.AreaFactor, g.Total())
	fmt.Printf("  8×8 standard-cell periphery: %.1f× the full-custom area (∝ n²)\n",
		area.StdCellBlowup(8, 4, g.AreaFactor))
}
