// Command pmtrace reduces a flight-span JSONL trace (pmsim -fabric
// -trace output) into per-hop latency breakdowns, a worst-path report,
// and the hop/e2e reconciliation check.
//
//	pmsim -fabric butterfly -trace flights.jsonl ...
//	pmtrace -top 10 flights.jsonl
//
// Reads stdin when the file argument is "-" or absent. Exits 1 when the
// reconciliation check fails — the sampled per-hop latencies of every
// completed flight must sum (plus one wire cycle per stage boundary) to
// the engine's end-to-end latency, so a mismatch is a tracing bug, not
// a property of the workload.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pipemem/internal/core"
	"pipemem/internal/trace"
)

func main() {
	top := flag.Int("top", 5, "report the K slowest completed flights with their per-hop breakdown (0 disables)")
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(2)
	}
	if *top < 0 {
		die(fmt.Errorf("%w: -top %d: must be >= 0", core.ErrBadConfig, *top))
	}
	if flag.NArg() > 1 {
		die(fmt.Errorf("%w: want one trace file (or none for stdin), got %d arguments", core.ErrBadConfig, flag.NArg()))
	}

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	set, err := trace.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	if len(set.Flights) == 0 {
		fmt.Fprintln(os.Stderr, "pmtrace: no flight spans in input (is this a -fabric -trace stream?)")
		os.Exit(1)
	}
	rep := trace.Analyze(set, *top)
	if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmtrace:", err)
		os.Exit(1)
	}
	if set.Orphans > 0 {
		fmt.Fprintf(os.Stderr, "pmtrace: WARNING: %d span records referenced unknown flights (truncated stream?)\n", set.Orphans)
	}
	if len(rep.Mismatches) > 0 {
		os.Exit(1)
	}
}
