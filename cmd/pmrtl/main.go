// Command pmrtl runs the cycle-accurate pipelined-memory switch and
// reports utilization, loss and latency; with -trace it dumps the per-cycle
// fig. 5-style control/datapath trace.
//
// Usage:
//
//	pmrtl -n 8 -cells 256 -load 1.0 -perm -cycles 100000
//	pmrtl -n 2 -cells 8 -load 0.6 -cycles 40 -trace    # fig. 5 view
//	pmrtl -dual -n 8 -perm                             # §3.5 half quantum
//	pmrtl -model t3                                    # Telegraphos III
//	pmrtl -bufpolicy dt:alpha=2 -load 0.9              # dynamic-threshold admission
//
// Observability (pipelined organization only): -metrics prints a
// Prometheus-style snapshot after the result, -tracejson FILE writes the
// fig. 5 per-cycle records and the typed wave/stall events as one JSONL
// stream, -trace-sample N keeps 1 in N typed events, and -pprof ADDR
// serves /metrics plus /debug/pprof while running:
//
//	pmrtl -n 8 -load 0.9 -metrics -tracejson trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"pipemem"
	"pipemem/internal/cli"
)

func main() {
	var (
		n      = flag.Int("n", 8, "ports (n×n)")
		cells  = flag.Int("cells", 256, "buffer capacity in cells")
		words  = flag.Int("w", 16, "word width in bits")
		load   = flag.Float64("load", 0.8, "offered load in (0,1]")
		perm   = flag.Bool("perm", false, "admissible rotating-permutation traffic")
		sat    = flag.Bool("saturate", false, "uniform saturation traffic")
		nocut  = flag.Bool("store-and-forward", false, "disable automatic cut-through")
		dual   = flag.Bool("dual", false, "half-quantum two-memory organization (§3.5)")
		org    = flag.String("org", "pipelined", "buffer organization: pipelined|wide|prizma")
		cycles = flag.Int64("cycles", 200_000, "cycles to simulate")
		seed   = flag.Uint64("seed", 1, "PRNG seed")
		trace  = flag.Bool("trace", false, "dump the per-cycle control trace (fig. 5)")
		vcd    = flag.String("vcd", "", "write the trace as a VCD waveform to this file (GTKWave etc.)")
		vcs    = flag.Int("vcs", 1, "virtual channels per output link ([KVES95])")
		model  = flag.String("model", "", "Telegraphos prototype instead of -n/-w/-cells: t1|t2|t3")

		metrics     = flag.Bool("metrics", false, "print a Prometheus-style metrics snapshot after the run")
		metricsJSON = flag.Bool("metrics-json", false, "with -metrics: JSON snapshot instead of text exposition")
		traceJSON   = flag.String("tracejson", "", "write fig. 5 records and typed events as JSONL to this file")
		traceSample = flag.Int("trace-sample", 1, "keep 1 in N typed trace events")
		pprofAddr   = flag.String("pprof", "", "serve /metrics and /debug/pprof on this address while running")
	)
	bufpol := cli.BufPolicyFlag(nil)
	flag.Parse()

	observe := *metrics || *metricsJSON || *traceJSON != "" || *pprofAddr != ""
	if observe && (*dual || *org != "pipelined") {
		fmt.Fprintln(os.Stderr, "pmrtl: -metrics/-tracejson/-pprof require the pipelined organization")
		os.Exit(2)
	}
	if bufpol.Got() && (*dual || *org != "pipelined") {
		fmt.Fprintln(os.Stderr, "pmrtl: -bufpolicy requires the pipelined organization")
		os.Exit(2)
	}

	cfg := pipemem.Config{Ports: *n, WordBits: *words, Cells: *cells, CutThrough: !*nocut, VCs: *vcs}
	var clockNs float64
	switch *model {
	case "":
	case "t1":
		m := pipemem.TelegraphosI()
		cfg, clockNs = m.SwitchConfig(), m.ClockNs
	case "t2":
		m := pipemem.TelegraphosII()
		cfg, clockNs = m.SwitchConfig(), m.ClockNs
	case "t3":
		m := pipemem.TelegraphosIII()
		cfg, clockNs = m.SwitchConfig(), m.ClockNs
	default:
		fmt.Fprintf(os.Stderr, "pmrtl: unknown model %q\n", *model)
		os.Exit(2)
	}
	cfg.CutThrough = !*nocut
	cfg.VCs = *vcs

	tcfg := pipemem.TrafficConfig{Kind: pipemem.Bernoulli, N: cfg.Ports, Load: *load, Seed: *seed}
	if *perm {
		tcfg.Kind, tcfg.Load = pipemem.Permutation, 1
	} else if *sat {
		tcfg.Kind = pipemem.Saturation
	}

	if *dual {
		d, err := pipemem.NewDual(cfg)
		if err != nil {
			fatal(err)
		}
		cs, err := pipemem.NewCellStream(tcfg, d.Config().Stages)
		if err != nil {
			fatal(err)
		}
		res, err := pipemem.RunDualTraffic(d, cs, *cycles)
		if err != nil {
			fatal(err)
		}
		fmt.Println("dual (half-quantum):", res)
		return
	}

	switch *org {
	case "pipelined":
	case "wide":
		ws, err := pipemem.NewWide(pipemem.WideConfig{
			Ports: cfg.Ports, WordBits: cfg.WordBits, Cells: cfg.Cells,
			CutThroughCrossbar: cfg.CutThrough,
		})
		if err != nil {
			fatal(err)
		}
		cs, err := pipemem.NewCellStream(tcfg, ws.Config().CellWords)
		if err != nil {
			fatal(err)
		}
		res, err := pipemem.RunWideTraffic(ws, cs, *cycles)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wide memory: cycles=%d offered=%d delivered=%d dropped=%d util=%.4f cutlat=%.2f (bypass departures: %d)\n",
			res.Cycles, res.Offered, res.Delivered, res.Dropped, res.Utilization, res.MeanCutLatency, res.CutThroughs)
		return
	case "prizma":
		ps, err := pipemem.NewPrizma(pipemem.PrizmaConfig{
			Ports: cfg.Ports, Banks: cfg.Cells, WordBits: cfg.WordBits,
		})
		if err != nil {
			fatal(err)
		}
		cs, err := pipemem.NewCellStream(tcfg, ps.Config().CellWords)
		if err != nil {
			fatal(err)
		}
		res, err := pipemem.RunPrizmaTraffic(ps, cs, *cycles)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("prizma: cycles=%d offered=%d delivered=%d dropped=%d util=%.4f lat=%.2f\n",
			res.Cycles, res.Offered, res.Delivered, res.Dropped, res.Utilization, res.MeanLatency)
		return
	default:
		fmt.Fprintf(os.Stderr, "pmrtl: unknown organization %q\n", *org)
		os.Exit(2)
	}

	sw, err := pipemem.New(cfg)
	if err != nil {
		fatal(err)
	}
	if bufpol.Got() {
		sw.SetBufferPolicy(bufpol.Policy())
	}
	var (
		reg    *pipemem.MetricsRegistry
		sink   *pipemem.JSONLSink
		tracer *pipemem.EventTracer
	)
	if observe {
		reg = pipemem.NewMetricsRegistry()
		obsv := pipemem.NewObserver(reg, cfg.Ports)
		var ts pipemem.TraceSink
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fatal(err)
			}
			sink = pipemem.NewJSONLSink(f)
			ts = sink
		}
		tracer = pipemem.NewEventTracer(ts, 0, *traceSample)
		tracer.Register(reg)
		obsv.Tracer = tracer
		sw.SetObserver(obsv)
		if *pprofAddr != "" {
			addr, stop, err := pipemem.ServeDebug(*pprofAddr, reg)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "pmrtl: debug server on http://%s\n", addr)
			defer stop()
		}
	}
	var vcdDone func() error
	switch {
	case *vcd != "":
		f, err := os.Create(*vcd)
		if err != nil {
			fatal(err)
		}
		clock := clockNs
		if clock == 0 {
			clock = 1
		}
		vw := pipemem.NewVCDWriter(f, sw, clock)
		sw.SetTracer(vw.Trace)
		vcdDone = func() error {
			if err := vw.Err(); err != nil {
				return err
			}
			return f.Close()
		}
	case sink != nil:
		// Route the fig. 5 per-cycle records onto the same JSONL stream
		// as the typed events.
		sw.SetTracer(pipemem.JSONTracer(sink))
	case *trace:
		sw.SetTracer(func(e pipemem.TraceEvent) { fmt.Println(e) })
	}
	cs, err := pipemem.NewCellStream(tcfg, sw.Config().Stages)
	if err != nil {
		fatal(err)
	}
	res, err := pipemem.RunTraffic(sw, cs, *cycles)
	if err != nil {
		fatal(err)
	}
	if vcdDone != nil {
		if err := vcdDone(); err != nil {
			fatal(err)
		}
		fmt.Printf("VCD waveform written to %s\n", *vcd)
	}
	fmt.Println(res)
	if clockNs > 0 {
		fmt.Printf("at %.1f ns/cycle: %.0f Mb/s per link sustained (util %.3f × %d b / %.1f ns)\n",
			clockNs, res.Utilization*float64(cfg.WordBits)/clockNs*1000, res.Utilization, cfg.WordBits, clockNs)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal(err)
		}
		if sink != nil {
			fmt.Fprintf(os.Stderr, "pmrtl: %d JSONL records written to %s\n", sink.Lines(), *traceJSON)
		}
	}
	if *metrics || *metricsJSON {
		if *metricsJSON {
			_ = reg.WriteJSON(os.Stdout)
		} else {
			_ = reg.WritePrometheus(os.Stdout)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmrtl:", err)
	os.Exit(1)
}
