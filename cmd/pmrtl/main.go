// Command pmrtl runs the cycle-accurate pipelined-memory switch and
// reports utilization, loss and latency; with -trace it dumps the per-cycle
// fig. 5-style control/datapath trace.
//
// Usage:
//
//	pmrtl -n 8 -cells 256 -load 1.0 -perm -cycles 100000
//	pmrtl -n 2 -cells 8 -load 0.6 -cycles 40 -trace    # fig. 5 view
//	pmrtl -dual -n 8 -perm                             # §3.5 half quantum
//	pmrtl -model t3                                    # Telegraphos III
package main

import (
	"flag"
	"fmt"
	"os"

	"pipemem"
)

func main() {
	var (
		n      = flag.Int("n", 8, "ports (n×n)")
		cells  = flag.Int("cells", 256, "buffer capacity in cells")
		words  = flag.Int("w", 16, "word width in bits")
		load   = flag.Float64("load", 0.8, "offered load in (0,1]")
		perm   = flag.Bool("perm", false, "admissible rotating-permutation traffic")
		sat    = flag.Bool("saturate", false, "uniform saturation traffic")
		nocut  = flag.Bool("store-and-forward", false, "disable automatic cut-through")
		dual   = flag.Bool("dual", false, "half-quantum two-memory organization (§3.5)")
		org    = flag.String("org", "pipelined", "buffer organization: pipelined|wide|prizma")
		cycles = flag.Int64("cycles", 200_000, "cycles to simulate")
		seed   = flag.Uint64("seed", 1, "PRNG seed")
		trace  = flag.Bool("trace", false, "dump the per-cycle control trace (fig. 5)")
		vcd    = flag.String("vcd", "", "write the trace as a VCD waveform to this file (GTKWave etc.)")
		vcs    = flag.Int("vcs", 1, "virtual channels per output link ([KVES95])")
		model  = flag.String("model", "", "Telegraphos prototype instead of -n/-w/-cells: t1|t2|t3")
	)
	flag.Parse()

	cfg := pipemem.Config{Ports: *n, WordBits: *words, Cells: *cells, CutThrough: !*nocut, VCs: *vcs}
	var clockNs float64
	switch *model {
	case "":
	case "t1":
		m := pipemem.TelegraphosI()
		cfg, clockNs = m.SwitchConfig(), m.ClockNs
	case "t2":
		m := pipemem.TelegraphosII()
		cfg, clockNs = m.SwitchConfig(), m.ClockNs
	case "t3":
		m := pipemem.TelegraphosIII()
		cfg, clockNs = m.SwitchConfig(), m.ClockNs
	default:
		fmt.Fprintf(os.Stderr, "pmrtl: unknown model %q\n", *model)
		os.Exit(2)
	}
	cfg.CutThrough = !*nocut
	cfg.VCs = *vcs

	tcfg := pipemem.TrafficConfig{Kind: pipemem.Bernoulli, N: cfg.Ports, Load: *load, Seed: *seed}
	if *perm {
		tcfg.Kind, tcfg.Load = pipemem.Permutation, 1
	} else if *sat {
		tcfg.Kind = pipemem.Saturation
	}

	if *dual {
		d, err := pipemem.NewDual(cfg)
		if err != nil {
			fatal(err)
		}
		cs, err := pipemem.NewCellStream(tcfg, d.Config().Stages)
		if err != nil {
			fatal(err)
		}
		res, err := pipemem.RunDualTraffic(d, cs, *cycles)
		if err != nil {
			fatal(err)
		}
		fmt.Println("dual (half-quantum):", res)
		return
	}

	switch *org {
	case "pipelined":
	case "wide":
		ws, err := pipemem.NewWide(pipemem.WideConfig{
			Ports: cfg.Ports, WordBits: cfg.WordBits, Cells: cfg.Cells,
			CutThroughCrossbar: cfg.CutThrough,
		})
		if err != nil {
			fatal(err)
		}
		cs, err := pipemem.NewCellStream(tcfg, ws.Config().CellWords)
		if err != nil {
			fatal(err)
		}
		res, err := pipemem.RunWideTraffic(ws, cs, *cycles)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wide memory: cycles=%d offered=%d delivered=%d dropped=%d util=%.4f cutlat=%.2f (bypass departures: %d)\n",
			res.Cycles, res.Offered, res.Delivered, res.Dropped, res.Utilization, res.MeanCutLatency, res.CutThroughs)
		return
	case "prizma":
		ps, err := pipemem.NewPrizma(pipemem.PrizmaConfig{
			Ports: cfg.Ports, Banks: cfg.Cells, WordBits: cfg.WordBits,
		})
		if err != nil {
			fatal(err)
		}
		cs, err := pipemem.NewCellStream(tcfg, ps.Config().CellWords)
		if err != nil {
			fatal(err)
		}
		res, err := pipemem.RunPrizmaTraffic(ps, cs, *cycles)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("prizma: cycles=%d offered=%d delivered=%d dropped=%d util=%.4f lat=%.2f\n",
			res.Cycles, res.Offered, res.Delivered, res.Dropped, res.Utilization, res.MeanLatency)
		return
	default:
		fmt.Fprintf(os.Stderr, "pmrtl: unknown organization %q\n", *org)
		os.Exit(2)
	}

	sw, err := pipemem.New(cfg)
	if err != nil {
		fatal(err)
	}
	var vcdDone func() error
	switch {
	case *vcd != "":
		f, err := os.Create(*vcd)
		if err != nil {
			fatal(err)
		}
		clock := clockNs
		if clock == 0 {
			clock = 1
		}
		vw := pipemem.NewVCDWriter(f, sw, clock)
		sw.SetTracer(vw.Trace)
		vcdDone = func() error {
			if err := vw.Err(); err != nil {
				return err
			}
			return f.Close()
		}
	case *trace:
		sw.SetTracer(func(e pipemem.TraceEvent) { fmt.Println(e) })
	}
	cs, err := pipemem.NewCellStream(tcfg, sw.Config().Stages)
	if err != nil {
		fatal(err)
	}
	res, err := pipemem.RunTraffic(sw, cs, *cycles)
	if err != nil {
		fatal(err)
	}
	if vcdDone != nil {
		if err := vcdDone(); err != nil {
			fatal(err)
		}
		fmt.Printf("VCD waveform written to %s\n", *vcd)
	}
	fmt.Println(res)
	if clockNs > 0 {
		fmt.Printf("at %.1f ns/cycle: %.0f Mb/s per link sustained (util %.3f × %d b / %.1f ns)\n",
			clockNs, res.Utilization*float64(cfg.WordBits)/clockNs*1000, res.Utilization, cfg.WordBits, clockNs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmrtl:", err)
	os.Exit(1)
}
