// Package trace reduces flight-span JSONL streams — the -fabric -trace
// output of pmsim (obs.JSONLSink's inject/hop/eject schema) — into
// per-stage latency breakdowns, worst-path reports and a reconciliation
// check tying the sampled hop latencies back to the end-to-end figure.
//
// The engine's timing model makes the spans self-checking: stage t's hop
// latency runs from the head's arrival at the node to the head on the
// outgoing link, and consecutive hops overlap by exactly one cycle of
// wire time per stage boundary, so for every completed flight
//
//	eject latency = Σ hop latencies + (stages − 1)
//
// Analyze verifies that identity per flight; a mismatch means the trace
// and the engine's latency accounting have diverged (a bug, not noise).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Hop is one stage crossing of a traced flight.
type Hop struct {
	Stage int   `json:"stage"`
	Node  int   `json:"node"`
	Cycle int64 `json:"cycle"` // cycle the hop record was emitted (head on wire)
	// Depth is the node's buffered-cell count when this head was admitted
	// — the queue the cell found in front of itself.
	Depth   int   `json:"depth"`
	Latency int64 `json:"latency"`
}

// Flight is one traced cell's reassembled path.
type Flight struct {
	Seq         uint64
	Term, Dst   int
	InjectCycle int64
	Hops        []Hop // ascending stage order once the set is sealed

	Ejected      bool
	EjectTerm    int
	EjectNode    int
	EjectCycle   int64
	EjectLatency int64

	Dropped     bool
	DropCycle   int64
	DropNode    int
	DropLatency int64 // cycles alive before the drop
}

// Complete reports whether the flight has its full span trail: an
// inject, an eject, and one hop per stage.
func (f *Flight) Complete(stages int) bool {
	return f.Ejected && len(f.Hops) == stages
}

// HopSum is the sum of the per-stage hop latencies.
func (f *Flight) HopSum() int64 {
	var s int64
	for _, h := range f.Hops {
		s += h.Latency
	}
	return s
}

// Set is a parsed trace: flights in inject order plus stream-level
// tallies.
type Set struct {
	Flights []*Flight
	// Stages is max(stage)+1 over all hop records — the fabric depth as
	// witnessed by the trace.
	Stages int
	// Skipped counts non-span lines (RTL events, raw records) ignored by
	// the parser; a span stream from pmsim -fabric has zero.
	Skipped int64
	// Orphans counts span lines whose seq had no prior inject — a
	// truncated or corrupted stream.
	Orphans int64

	bySeq map[uint64]*Flight
}

// line is the union of the span JSONL key vocabularies.
type line struct {
	Ev      string `json:"ev"`
	Cycle   int64  `json:"cycle"`
	Seq     uint64 `json:"seq"`
	Term    int    `json:"term"`
	Dst     int    `json:"dst"`
	Node    int    `json:"node"`
	Stage   int    `json:"stage"`
	Depth   int    `json:"depth"`
	Latency int64  `json:"latency"`
	// Flight-level drops ride the generic schema: out = destination
	// terminal, addr = node, v = cycles alive.
	Out  *int  `json:"out"`
	Addr *int  `json:"addr"`
	V    int64 `json:"v"`
}

// Parse reads a span JSONL stream and reassembles the flights. Lines
// that are not span records are counted in Skipped, not rejected — the
// sink interleaves schemas by design. A malformed JSON line is an error.
func Parse(r io.Reader) (*Set, error) {
	s := &Set{bySeq: make(map[uint64]*Flight)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch l.Ev {
		case "inject":
			f := &Flight{Seq: l.Seq, Term: l.Term, Dst: l.Dst, InjectCycle: l.Cycle}
			s.Flights = append(s.Flights, f)
			s.bySeq[l.Seq] = f
		case "hop":
			f := s.bySeq[l.Seq]
			if f == nil {
				s.Orphans++
				continue
			}
			f.Hops = append(f.Hops, Hop{
				Stage: l.Stage, Node: l.Node, Cycle: l.Cycle,
				Depth: l.Depth, Latency: l.Latency,
			})
			if l.Stage+1 > s.Stages {
				s.Stages = l.Stage + 1
			}
		case "eject":
			f := s.bySeq[l.Seq]
			if f == nil {
				s.Orphans++
				continue
			}
			f.Ejected = true
			f.EjectTerm = l.Term
			f.EjectNode = l.Node
			f.EjectCycle = l.Cycle
			f.EjectLatency = l.Latency
		case "drop":
			// Only flight-level drops carry a seq; node-local drop events
			// (seq 0 in the generic schema) are not span records.
			f := s.bySeq[l.Seq]
			if l.Seq == 0 || f == nil {
				s.Skipped++
				continue
			}
			f.Dropped = true
			f.DropCycle = l.Cycle
			if l.Addr != nil {
				f.DropNode = *l.Addr
			}
			f.DropLatency = l.V
		default:
			s.Skipped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
	}
	for _, f := range s.Flights {
		sort.Slice(f.Hops, func(i, j int) bool { return f.Hops[i].Stage < f.Hops[j].Stage })
	}
	return s, nil
}
