package trace

import (
	"strings"
	"testing"
)

// sample is a handcrafted two-stage stream: seq 4 completes cleanly,
// seq 8 is dropped mid-path, seq 12 is still in flight, and the stream
// interleaves a non-span RTL event plus one orphaned hop.
const sample = `{"ev":"inject","cycle":0,"seq":4,"term":1,"dst":6,"node":0}
{"ev":"read-wave","cycle":1,"in":0,"out":2,"addr":7}
{"ev":"hop","cycle":3,"seq":4,"stage":0,"node":0,"depth":2,"latency":3}
{"ev":"inject","cycle":4,"seq":8,"term":3,"dst":5,"node":1}
{"ev":"hop","cycle":6,"seq":8,"stage":0,"node":1,"depth":0,"latency":2}
{"ev":"hop","cycle":9,"seq":4,"stage":1,"node":3,"depth":1,"latency":5}
{"ev":"eject","cycle":9,"seq":4,"term":6,"node":3,"latency":9}
{"ev":"drop","cycle":11,"out":5,"addr":2,"v":7,"seq":8}
{"ev":"inject","cycle":12,"seq":12,"term":0,"dst":7,"node":0}
{"ev":"hop","cycle":14,"seq":99,"stage":1,"node":2,"depth":0,"latency":2}
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Flights) != 3 {
		t.Fatalf("%d flights, want 3", len(s.Flights))
	}
	if s.Stages != 2 {
		t.Fatalf("stages %d, want 2", s.Stages)
	}
	if s.Skipped != 1 {
		t.Fatalf("skipped %d, want 1 (the read-wave line)", s.Skipped)
	}
	if s.Orphans != 1 {
		t.Fatalf("orphans %d, want 1 (the seq-99 hop)", s.Orphans)
	}
	f := s.Flights[0]
	if f.Seq != 4 || f.Term != 1 || f.Dst != 6 || f.InjectCycle != 0 {
		t.Fatalf("flight 4 header: %+v", f)
	}
	if !f.Complete(2) || f.HopSum() != 8 || f.EjectLatency != 9 {
		t.Fatalf("flight 4 path: hops=%v eject=%d", f.Hops, f.EjectLatency)
	}
	if f.Hops[0].Depth != 2 || f.Hops[1].Node != 3 {
		t.Fatalf("flight 4 hops: %+v", f.Hops)
	}
	d := s.Flights[1]
	if !d.Dropped || d.DropCycle != 11 || d.DropNode != 2 || d.DropLatency != 7 {
		t.Fatalf("flight 8 drop: %+v", d)
	}
	if s.Flights[2].Ejected || s.Flights[2].Dropped {
		t.Fatalf("flight 12 should be in flight: %+v", s.Flights[2])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("{\"ev\":\"inject\"\n")); err == nil {
		t.Fatal("malformed JSON line must be an error")
	}
}

func TestAnalyze(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(s, 5)
	if r.Flights != 3 || r.Ejected != 1 || r.Dropped != 1 || r.InFlight != 1 || r.Incomplete != 0 {
		t.Fatalf("tallies: %+v", r)
	}
	// seq 4: hops 3+5, stages 2 → 8+1 = 9 = e2e. No mismatch.
	if len(r.Mismatches) != 0 {
		t.Fatalf("unexpected mismatches: %+v", r.Mismatches)
	}
	if r.E2E.Count != 1 || r.E2E.Mean != 9 || r.E2E.Max != 9 {
		t.Fatalf("e2e stats: %+v", r.E2E)
	}
	if r.StageStats[0].Mean != 3 || r.StageStats[1].Mean != 5 {
		t.Fatalf("stage stats: %+v", r.StageStats)
	}
	if r.DepthMean[0] != 2 || r.DepthMean[1] != 1 {
		t.Fatalf("depth means: %v", r.DepthMean)
	}
	if len(r.Worst) != 1 || r.Worst[0].Seq != 4 {
		t.Fatalf("worst paths: %+v", r.Worst)
	}
}

func TestAnalyzeFlagsMismatch(t *testing.T) {
	// A doctored eject latency (10 instead of 9) must fail reconciliation.
	doctored := strings.Replace(sample, `"node":3,"latency":9`, `"node":3,"latency":10`, 1)
	s, err := Parse(strings.NewReader(doctored))
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(s, 0)
	if len(r.Mismatches) != 1 {
		t.Fatalf("want 1 mismatch, got %+v", r.Mismatches)
	}
	m := r.Mismatches[0]
	if m.Seq != 4 || m.HopSum != 9 || m.E2E != 10 {
		t.Fatalf("mismatch: %+v", m)
	}
}

func TestAnalyzeIncomplete(t *testing.T) {
	// Seq 2 has its full two-hop trail; seq 6 ejects but lost its stage-1
	// hop record (truncated stream) — it counts as ejected yet must stay
	// out of the reconciliation population.
	const truncated = `{"ev":"inject","cycle":0,"seq":2,"term":0,"dst":3,"node":0}
{"ev":"hop","cycle":3,"seq":2,"stage":0,"node":0,"depth":0,"latency":3}
{"ev":"hop","cycle":7,"seq":2,"stage":1,"node":2,"depth":0,"latency":3}
{"ev":"eject","cycle":7,"seq":2,"term":3,"node":2,"latency":7}
{"ev":"inject","cycle":1,"seq":6,"term":1,"dst":2,"node":0}
{"ev":"hop","cycle":4,"seq":6,"stage":0,"node":0,"depth":1,"latency":3}
{"ev":"eject","cycle":9,"seq":6,"term":2,"node":2,"latency":8}
`
	s, err := Parse(strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(s, 5)
	if r.Incomplete != 1 || r.Ejected != 2 {
		t.Fatalf("tallies: %+v", r)
	}
	if r.E2E.Count != 1 || len(r.Mismatches) != 0 {
		t.Fatalf("incomplete flight leaked into reconciliation: %+v", r)
	}
}

func TestWriteText(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Analyze(s, 5).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"flights=3 ejected=1 dropped=1 in-flight=1",
		"hop0",
		"hop1",
		"seq=4 term=1->6 e2e=9",
		"reconciliation: all 1 completed flights satisfy e2e = Σhops + 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
