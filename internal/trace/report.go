package trace

import (
	"fmt"
	"io"
	"sort"
)

// LatStats summarizes a latency population.
type LatStats struct {
	Count int64
	Mean  float64
	P50   int64
	P99   int64
	Max   int64
}

func statsOf(v []int64) LatStats {
	if len(v) == 0 {
		return LatStats{}
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	var sum int64
	for _, x := range v {
		sum += x
	}
	q := func(p float64) int64 {
		i := int(p * float64(len(v)-1))
		return v[i]
	}
	return LatStats{
		Count: int64(len(v)),
		Mean:  float64(sum) / float64(len(v)),
		P50:   q(0.50),
		P99:   q(0.99),
		Max:   v[len(v)-1],
	}
}

// Mismatch is one flight whose hop latencies do not reconcile with its
// end-to-end latency.
type Mismatch struct {
	Seq    uint64
	HopSum int64 // Σ hops + (stages−1)
	E2E    int64 // the eject record's latency
}

// Report is the reduced view of a span trace.
type Report struct {
	Flights    int // traced injects
	Ejected    int
	Dropped    int
	InFlight   int // neither ejected nor dropped (run ended mid-path)
	Incomplete int // ejected but missing hop records (truncated stream)
	Stages     int

	E2E        LatStats   // over completed flights
	StageStats []LatStats // hop latency per stage
	DepthMean  []float64  // mean queue depth at admission per stage

	// Mismatches lists flights violating e2e = Σhops + (stages−1); a
	// healthy trace has none.
	Mismatches []Mismatch

	// Worst holds the top-K completed flights by end-to-end latency,
	// slowest first.
	Worst []*Flight
}

// Analyze reduces a parsed set. topK bounds the worst-path report.
func Analyze(s *Set, topK int) *Report {
	r := &Report{Stages: s.Stages}
	r.StageStats = make([]LatStats, s.Stages)
	r.DepthMean = make([]float64, s.Stages)
	stageLat := make([][]int64, s.Stages)
	depthSum := make([]int64, s.Stages)
	depthN := make([]int64, s.Stages)
	var e2e []int64
	var complete []*Flight
	for _, f := range s.Flights {
		r.Flights++
		switch {
		case f.Dropped:
			r.Dropped++
		case !f.Ejected:
			r.InFlight++
		case !f.Complete(s.Stages):
			r.Incomplete++
		default:
			r.Ejected++
			e2e = append(e2e, f.EjectLatency)
			complete = append(complete, f)
			for _, h := range f.Hops {
				stageLat[h.Stage] = append(stageLat[h.Stage], h.Latency)
				depthSum[h.Stage] += int64(h.Depth)
				depthN[h.Stage]++
			}
			if want := f.HopSum() + int64(s.Stages-1); want != f.EjectLatency {
				r.Mismatches = append(r.Mismatches, Mismatch{
					Seq: f.Seq, HopSum: want, E2E: f.EjectLatency,
				})
			}
		}
	}
	// Ejected-but-incomplete flights still ejected; count them as such
	// for the top-line tally while keeping the reconciliation population
	// clean.
	r.Ejected += r.Incomplete
	r.E2E = statsOf(e2e)
	for st := 0; st < s.Stages; st++ {
		r.StageStats[st] = statsOf(stageLat[st])
		if depthN[st] > 0 {
			r.DepthMean[st] = float64(depthSum[st]) / float64(depthN[st])
		}
	}
	sort.SliceStable(complete, func(i, j int) bool {
		return complete[i].EjectLatency > complete[j].EjectLatency
	})
	if topK > len(complete) {
		topK = len(complete)
	}
	if topK > 0 {
		r.Worst = complete[:topK]
	}
	return r
}

// WriteText renders the report for terminals.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "flights=%d ejected=%d dropped=%d in-flight=%d incomplete=%d stages=%d\n",
		r.Flights, r.Ejected, r.Dropped, r.InFlight, r.Incomplete, r.Stages); err != nil {
		return err
	}
	fmt.Fprintf(w, "e2e   n=%-7d mean=%-8.2f p50=%-6d p99=%-6d max=%d\n",
		r.E2E.Count, r.E2E.Mean, r.E2E.P50, r.E2E.P99, r.E2E.Max)
	for st, ss := range r.StageStats {
		fmt.Fprintf(w, "hop%d  n=%-7d mean=%-8.2f p50=%-6d p99=%-6d max=%-6d depth=%.2f\n",
			st, ss.Count, ss.Mean, ss.P50, ss.P99, ss.Max, r.DepthMean[st])
	}
	if len(r.Worst) > 0 {
		fmt.Fprintf(w, "worst paths:\n")
		for _, f := range r.Worst {
			fmt.Fprintf(w, "  seq=%d term=%d->%d e2e=%d path:", f.Seq, f.Term, f.Dst, f.EjectLatency)
			for _, h := range f.Hops {
				fmt.Fprintf(w, " s%d@n%d lat=%d depth=%d", h.Stage, h.Node, h.Latency, h.Depth)
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Mismatches) > 0 {
		fmt.Fprintf(w, "RECONCILIATION FAILED: %d flights where Σhops+(stages-1) != e2e\n", len(r.Mismatches))
		max := len(r.Mismatches)
		if max > 10 {
			max = 10
		}
		for _, m := range r.Mismatches[:max] {
			fmt.Fprintf(w, "  seq=%d hopsum=%d e2e=%d\n", m.Seq, m.HopSum, m.E2E)
		}
	} else if r.E2E.Count > 0 {
		fmt.Fprintf(w, "reconciliation: all %d completed flights satisfy e2e = Σhops + %d\n",
			r.E2E.Count, r.Stages-1)
	}
	return nil
}
