// Package cmdtest exercises the seven command-line tools as real
// subprocesses: every malformed -faultplan/-bufpolicy/flag combination
// must exit non-zero with a one-line actionable message on stderr, and the
// checkpoint surface must round-trip bit-identically through the actual
// binaries — including the pmserve session daemon, whose drain/restore
// cycle is covered by the opt-in TestServeSmoke.
package cmdtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

var binDir string

// TestMain builds the seven tools once into a temp dir; every test then
// execs the real binaries.
func TestMain(m *testing.M) {
	if _, err := exec.LookPath("go"); err != nil {
		fmt.Fprintln(os.Stderr, "cmdtest: go toolchain not found; skipping")
		os.Exit(0)
	}
	dir, err := os.MkdirTemp("", "pipemem-cmdtest-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmdtest:", err)
		os.Exit(1)
	}
	binDir = dir
	// The kill/restore soak and the serve smoke want the tools themselves
	// race-instrumented, not just the test harness.
	buildArgs := []string{"build", "-o", dir}
	if os.Getenv("PIPEMEM_CKPT_SOAK") == "1" || os.Getenv("PIPEMEM_SERVE_SMOKE") == "1" {
		buildArgs = append(buildArgs, "-race")
	}
	build := exec.Command("go", append(buildArgs, "./cmd/...")...)
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "cmdtest: build: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run execs one tool and returns stdout, stderr and the exit code.
func run(t *testing.T, tool, stdin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// TestBadConfigExitsNonZero is the ErrBadConfig audit: one table row per
// malformed invocation across all five tools. Each must exit non-zero and
// lead stderr with an actionable message naming the problem.
func TestBadConfigExitsNonZero(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "x.ckpt")
	garbage := filepath.Join(t.TempDir(), "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("not a checkpoint\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		tool    string
		stdin   string
		args    []string
		wantSub string
	}{
		// Malformed -bufpolicy rejects at flag-parse time in every tool.
		{"pmsim/bad-bufpolicy", "pmsim", "", []string{"-bufpolicy", "bogus"}, "bad policy spec"},
		{"pmrtl/bad-bufpolicy", "pmrtl", "", []string{"-bufpolicy", "bogus"}, "bad policy spec"},
		{"pmbench/bad-bufpolicy", "pmbench", "", []string{"-bufpolicy", "bogus"}, "bad policy spec"},
		{"pmexp/bad-bufpolicy", "pmexp", "", []string{"-bufpolicy", "bogus"}, "bad policy spec"},
		{"pmarea/bad-bufpolicy", "pmarea", "", []string{"-bufpolicy", "bogus"}, "bad policy spec"},
		{"pmsim/bad-bufpolicy-param", "pmsim", "", []string{"-bufpolicy", "dt:2"}, "key=value"},

		// pmsim: fault-plan errors.
		{"pmsim/faultplan-missing-file", "pmsim", "", []string{"-faultplan", "/nonexistent/plan.txt"}, "no such file"},
		{"pmsim/faultplan-malformed", "pmsim", "@not-a-cycle mem\n", []string{"-faultplan", "-"}, "fault plan"},
		{"pmsim/faultplan-unknown-kind", "pmsim", "@5 frobnicate\n", []string{"-faultplan", "-"}, "unknown fault kind"},

		// pmsim: flag combinations.
		{"pmsim/bufpolicy-slot-arch", "pmsim", "", []string{"-arch", "voq", "-bufpolicy", "share"}, "RTL model only"},
		{"pmsim/unknown-arch", "pmsim", "", []string{"-arch", "quantum"}, "unknown architecture"},
		{"pmsim/ckpt-every-without-path", "pmsim", "", []string{"-ckpt-every", "100"}, "-checkpoint"},
		{"pmsim/checkpoint-slot-arch", "pmsim", "", []string{"-arch", "voq", "-checkpoint", ckpt}, "RTL model"},
		{"pmsim/negative-audit", "pmsim", "", []string{"-audit", "-1"}, ">= 0"},
		{"pmsim/restore-same-as-checkpoint", "pmsim", "", []string{"-restore", ckpt, "-checkpoint", ckpt}, "overwrite"},
		{"pmsim/restore-missing", "pmsim", "", []string{"-restore", "/nonexistent/run.ckpt"}, "no such file"},
		{"pmsim/restore-garbage", "pmsim", "", []string{"-restore", garbage}, "not a pipemem checkpoint"},
		{"pmsim/restore-plus-faultplan", "pmsim", "@5 mem\n", []string{"-restore", garbage, "-faultplan", "-"}, "drop -faultplan"},
		{"pmsim/restore-plus-bufpolicy", "pmsim", "", []string{"-restore", garbage, "-bufpolicy", "share"}, "drop -bufpolicy"},
		{"pmsim/linkprotect-checkpoint", "pmsim", "@5 linkdrop in=0\n",
			[]string{"-faultplan", "-", "-linkprotect", "-checkpoint", ckpt}, "-linkprotect"},

		// pmrtl: organization/model/config errors.
		{"pmrtl/unknown-org", "pmrtl", "", []string{"-org", "torus"}, "unknown organization"},
		{"pmrtl/unknown-model", "pmrtl", "", []string{"-model", "t9"}, "unknown model"},
		{"pmrtl/bufpolicy-nonpipelined", "pmrtl", "", []string{"-org", "wide", "-bufpolicy", "share"}, "pipelined organization"},
		{"pmrtl/bad-ports", "pmrtl", "", []string{"-n", "0", "-cycles", "10"}, "ports"},

		// pmbench: vacuous gating refused.
		{"pmbench/check-without-json", "pmbench", "", []string{"-check"}, "-json"},
		{"pmbench/check-missing-baseline", "pmbench", "",
			[]string{"-check", "-json", filepath.Join(t.TempDir(), "none.json")}, "no baseline"},
		{"pmbench/bufpolicy-without-sweep", "pmbench", "", []string{"-bufpolicy", "share"}, "-sweep"},

		// pmsim: trace/telemetry flag group.
		{"pmsim/trace-sample-zero", "pmsim", "", []string{"-trace-sample", "0"}, ">= 1"},
		{"pmsim/trace-sample-negative", "pmsim", "", []string{"-fabric", "butterfly", "-trace-sample", "-3"}, ">= 1"},
		{"pmsim/telemetry-every-without-file", "pmsim", "", []string{"-telemetry-every", "100"}, "-telemetry"},
		{"pmsim/telemetry-without-fabric", "pmsim", "", []string{"-telemetry", "ts.jsonl"}, "-fabric"},

		// pmtrace: analyzer input validation.
		{"pmtrace/negative-top", "pmtrace", "", []string{"-top", "-1"}, ">= 0"},
		{"pmtrace/two-files", "pmtrace", "", []string{"a.jsonl", "b.jsonl"}, "one trace file"},
		{"pmtrace/missing-file", "pmtrace", "", []string{"/nonexistent/spans.jsonl"}, "no such file"},
		{"pmtrace/no-spans", "pmtrace", "{\"ev\":\"read-wave\",\"cycle\":1,\"in\":0,\"out\":1,\"addr\":2}\n",
			[]string{"-"}, "no flight spans"},

		// pmexp: unknown experiment id no longer passes silently.
		{"pmexp/unknown-only-id", "pmexp", "", []string{"-only", "E999"}, "unknown experiment id"},

		// pmarea: nonsensical geometry.
		{"pmarea/nonpositive-n", "pmarea", "", []string{"-n", "0"}, "positive"},

		// pmserve: flag validation must fail fast, before binding a port.
		{"pmserve/bad-listen", "pmserve", "", []string{"-listen", "bad::addr::x"}, "listen"},
		{"pmserve/nonpositive-max-sessions", "pmserve", "", []string{"-max-sessions", "0"}, "positive"},
		{"pmserve/nonpositive-step-max", "pmserve", "", []string{"-step-max", "-5"}, "positive"},
		{"pmserve/nonpositive-telemetry", "pmserve", "", []string{"-telemetry-cap", "0"}, "positive"},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, stderr, code := run(t, c.tool, c.stdin, c.args...)
			if code == 0 {
				t.Fatalf("%s %v exited 0, want non-zero\nstderr: %s", c.tool, c.args, stderr)
			}
			first, _, _ := strings.Cut(stderr, "\n")
			if !strings.Contains(first, c.wantSub) {
				t.Fatalf("%s %v: first stderr line %q does not mention %q", c.tool, c.args, first, c.wantSub)
			}
		})
	}
}

// TestPmtraceRoundTrip drives the flight-trace pipeline through the real
// binaries: pmsim -fabric writes a span trace, pmtrace reduces it, and
// the reconciliation check (Σhops + stages−1 = e2e for every completed
// flight) must pass — pmtrace exits 1 when it does not.
func TestPmtraceRoundTrip(t *testing.T) {
	spans := filepath.Join(t.TempDir(), "spans.jsonl")
	_, stderr, code := run(t, "pmsim", "",
		"-fabric", "butterfly", "-terminals", "64", "-radix", "4", "-slots", "2000",
		"-load", "0.7", "-trace", spans, "-trace-sample", "9")
	if code != 0 {
		t.Fatalf("pmsim -fabric -trace failed (%d): %s", code, stderr)
	}
	out, stderr, code := run(t, "pmtrace", "", "-top", "3", spans)
	if code != 0 {
		t.Fatalf("pmtrace failed (%d): %s\n%s", code, stderr, out)
	}
	for _, want := range []string{"stages=3", "hop0", "hop2", "worst paths:", "reconciliation: all"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pmtrace output missing %q:\n%s", want, out)
		}
	}
}

// TestPmsimCheckpointRestoreRoundTrip drives the checkpoint surface
// through the real binary: an interrupted-and-restored run must print the
// same result line as the uninterrupted one.
func TestPmsimCheckpointRestoreRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	args := []string{"-arch", "rtl", "-n", "4", "-buf", "32", "-load", "0.8", "-slots", "4000"}

	want, stderr, code := run(t, "pmsim", "", args...)
	if code != 0 {
		t.Fatalf("reference run failed (%d): %s", code, stderr)
	}
	out, stderr, code := run(t, "pmsim", "", append(args, "-checkpoint", ckpt, "-audit", "500", "-watchdog", "4000")...)
	if code != 0 {
		t.Fatalf("checkpointed run failed (%d): %s", code, stderr)
	}
	if out != want {
		t.Fatalf("session run diverged from plain run:\n got  %s want %s", out, want)
	}
	got, stderr, code := run(t, "pmsim", "", "-restore", ckpt)
	if code != 0 {
		t.Fatalf("restore failed (%d): %s", code, stderr)
	}
	if got != want {
		t.Fatalf("restored run diverged:\n got  %s want %s", got, want)
	}
}

// TestPmsimWatchdogQuiet: a healthy run under a tight watchdog must pass
// untouched. (Genuinely wedging the switch needs a programmatic output
// gate, which the CLI deliberately does not expose; the trip path is
// covered in internal/ckpt.)
func TestPmsimWatchdogQuiet(t *testing.T) {
	out, stderr, code := run(t, "pmsim", "",
		"-arch", "rtl", "-n", "4", "-buf", "32", "-load", "0.7", "-slots", "2000", "-watchdog", "200")
	if code != 0 {
		t.Fatalf("healthy run tripped the watchdog (%d): %s\n%s", code, stderr, out)
	}
}

// TestCheckpointKillRestoreSoak is the crash-consistency soak: a
// checkpointing pmsim is SIGKILLed mid-run — at several offsets past its
// first auto-checkpoint — and each time the -restore run must reproduce
// the uninterrupted run's output byte for byte. The kill can land inside
// an in-flight Save, so this also exercises the temp-file+rename
// atomicity: a visible checkpoint is always loadable.
//
// It runs real multi-second simulations, so it is opt-in via
// PIPEMEM_CKPT_SOAK=1 (make ckpt-soak, which also builds the tools with
// -race).
// startServe launches the real pmserve binary on an ephemeral port with
// the given checkpoint dir, scrapes the base URL from its listening line,
// and returns the command, the URL, and a wait-for-stderr-tail function
// (call it only after cmd.Wait has returned).
func startServe(t *testing.T, ckptDir string) (*exec.Cmd, string, func() string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, "pmserve"),
		"-listen", "127.0.0.1:0", "-ckpt-dir", ckptDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "pmserve: listening on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("pmserve never printed its listening line")
	}
	var tail bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			tail.WriteString(sc.Text() + "\n")
		}
	}()
	return cmd, base, func() string { <-done; return tail.String() }
}

// api issues one request against a running pmserve and returns the body,
// failing unless the status code matches.
func api(t *testing.T, method, url, body string, want int) []byte {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d\nbody: %s", method, url, resp.StatusCode, want, raw)
	}
	return raw
}

// finalResult decodes GET /sessions/{id}/result and asserts the run is
// finished, returning the raw RunResult JSON for byte comparison.
func finalResult(t *testing.T, raw []byte) []byte {
	t.Helper()
	var res struct {
		State   string          `json:"state"`
		Partial bool            `json:"partial"`
		Result  json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result body: %v\n%s", err, raw)
	}
	if res.State != "done" || res.Partial {
		t.Fatalf("run not finished: state=%q partial=%v", res.State, res.Partial)
	}
	return res.Result
}

// TestServeSmoke drives the serve→drain→restore cycle through the real
// binary: a session is stepped, free-run, and paused over HTTP; SIGTERM
// drains it to a checkpoint; a fresh pmserve restores the file and the
// finished RunResult must match an uninterrupted served run byte for
// byte. Opt-in via PIPEMEM_SERVE_SMOKE=1 (make serve-smoke), which also
// builds the tools with -race.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("PIPEMEM_SERVE_SMOKE") != "1" {
		t.Skip("serve smoke is opt-in: set PIPEMEM_SERVE_SMOKE=1 (make serve-smoke)")
	}
	dir := t.TempDir()
	cfg := `{"name":%q,"ports":4,"buf":32,"cycles":300000,"load":0.85,"seed":7,"policy":"dt:alpha=2"}`

	cmd, base, tail := startServe(t, dir)

	// Reference: the same spec run to completion without interruption. The
	// step overshoots the 300000-cycle injection window because the run
	// only finishes after its drain phase empties the buffer.
	api(t, "POST", base+"/sessions", fmt.Sprintf(cfg, "ref"), 201)
	api(t, "POST", base+"/sessions/ref/step?cycles=400000", "", 200)
	want := finalResult(t, api(t, "GET", base+"/sessions/ref/result", "", 200))

	// The session under test: advance an odd prefix, exercise the free-run
	// goroutine, pause at a batch boundary, then SIGTERM the server.
	api(t, "POST", base+"/sessions", fmt.Sprintf(cfg, "smoke"), 201)
	api(t, "POST", base+"/sessions/smoke/step?cycles=1234", "", 200)
	api(t, "POST", base+"/sessions/smoke/run", "", 200)
	api(t, "POST", base+"/sessions/smoke/pause", "", 200)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("pmserve did not drain cleanly: %v\nstderr: %s", err, tail())
	}
	if out := tail(); !strings.Contains(out, "drained") || !strings.Contains(out, "smoke.ckpt") {
		t.Fatalf("drain did not report the checkpoint:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "smoke.ckpt")); err != nil {
		t.Fatalf("drained checkpoint missing: %v", err)
	}

	// Restore into a fresh server and finish; the done run must reproduce
	// the reference RunResult exactly.
	cmd2, base2, tail2 := startServe(t, dir)
	api(t, "POST", base2+"/sessions", `{"name":"smoke","restore":"smoke.ckpt"}`, 201)
	api(t, "POST", base2+"/sessions/smoke/step?cycles=400000", "", 200)
	got := finalResult(t, api(t, "GET", base2+"/sessions/smoke/result", "", 200))
	if !bytes.Equal(got, want) {
		t.Fatalf("restored run diverged from uninterrupted run:\n got  %s\nwant %s", got, want)
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("second pmserve did not stop cleanly: %v\nstderr: %s", err, tail2())
	}
}

func TestCheckpointKillRestoreSoak(t *testing.T) {
	if os.Getenv("PIPEMEM_CKPT_SOAK") != "1" {
		t.Skip("kill/restore soak is opt-in: set PIPEMEM_CKPT_SOAK=1 (make ckpt-soak)")
	}
	args := []string{"-arch", "rtl", "-n", "4", "-buf", "64", "-load", "0.9",
		"-slots", "1500000", "-bufpolicy", "dt:alpha=2"}
	want, stderr, code := run(t, "pmsim", "", args...)
	if code != 0 {
		t.Fatalf("reference run failed (%d): %s", code, stderr)
	}

	for round, delay := range []time.Duration{0, 150 * time.Millisecond, 400 * time.Millisecond} {
		t.Run(fmt.Sprintf("kill-after-%v", delay), func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), fmt.Sprintf("soak-%d.ckpt", round))
			cmd := exec.Command(filepath.Join(binDir, "pmsim"),
				append(args, "-checkpoint", ckpt, "-ckpt-every", "20000", "-audit", "50000")...)
			var out, errb bytes.Buffer
			cmd.Stdout, cmd.Stderr = &out, &errb
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				if _, err := os.Stat(ckpt); err == nil {
					break
				}
				if time.Now().After(deadline) {
					_ = cmd.Process.Kill()
					_ = cmd.Wait()
					t.Fatalf("no checkpoint appeared within 60s\nstderr: %s", errb.String())
				}
				time.Sleep(2 * time.Millisecond)
			}
			time.Sleep(delay)
			_ = cmd.Process.Kill() // SIGKILL: no chance to flush or clean up
			_ = cmd.Wait()

			got, rstderr, rcode := run(t, "pmsim", "", "-restore", ckpt)
			if rcode != 0 {
				t.Fatalf("restore after kill failed (%d): %s", rcode, rstderr)
			}
			if got != want {
				t.Fatalf("restored run diverged from uninterrupted run:\n got  %swant %s", got, want)
			}
		})
	}
}
