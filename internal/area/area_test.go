package area

import (
	"math"
	"strings"
	"testing"

	"pipemem/internal/analytic"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want ≈%v (±%v)", name, got, want, tol)
	}
}

func TestTechScale(t *testing.T) {
	// Shrinking 1.0 µm → 0.7 µm halves the area (0.49×).
	approx(t, "scale 1.0→0.7", ES2u10.Scale(ES2u07), 0.49, 1e-12)
	approx(t, "scale 0.7→1.0", ES2u07.Scale(ES2u10), 1/0.49, 1e-9)
	approx(t, "identity", ES2u10.Scale(ES2u10), 1, 1e-12)
}

// TestPeripheralAreaAnchors reproduces §5.2: at Telegraphos III parameters
// (8 ports, 1.0 µm full custom) the pipelined peripheral area is ≈9 mm²,
// the wide-memory equivalent ≈13 mm², a ≈30% saving.
func TestPeripheralAreaAnchors(t *testing.T) {
	m := DefaultRowModel()
	cmp := m.ComparePeriphery(8, ES2u10)
	approx(t, "pipelined periphery", cmp.PipelinedMm2, 9, 0.01)
	approx(t, "wide periphery", cmp.WideMm2, 13, 0.01)
	if cmp.Saving < 0.28 || cmp.Saving > 0.33 {
		t.Errorf("saving %v, want ≈30%%", cmp.Saving)
	}
}

func TestPeripheryRowCounts(t *testing.T) {
	// fig. 4: n input rows + 1 output row + 1 control row.
	if got := PeripheryRows(Pipelined, 8); got != 10 {
		t.Fatalf("pipelined rows = %d, want 10", got)
	}
	// fig. 3: 2n input (double buffering) + n output + control + CT.
	if got := PeripheryRows(Wide, 8); got != 27 {
		t.Fatalf("wide rows = %d, want 27", got)
	}
	// The structural point: the wide organization needs roughly 3× the
	// register rows, and the gap grows with n.
	for _, n := range []int{2, 4, 8, 16, 32} {
		if PeripheryRows(Wide, n) <= PeripheryRows(Pipelined, n) {
			t.Fatalf("n=%d: wide not larger", n)
		}
	}
}

// TestFullCustomFactor22 reproduces §4.4: ×2 links, ×2.5 clock, ×4.5 area
// → "approximately a factor of 22".
func TestFullCustomFactor22(t *testing.T) {
	g := TelegraphosGain()
	approx(t, "link factor", g.LinkFactor, 2, 0)
	approx(t, "clock factor", g.ClockFactor, 2.5, 0)
	approx(t, "area factor", g.AreaFactor, 4.5, 0.06) // 41/9 = 4.56
	if total := g.Total(); total < 21 || total > 24 {
		t.Errorf("total gain %v, want ≈22", total)
	}
}

// TestStdCell18x reproduces §4.4's last claim: "an 8×8 standard-cell
// design would be about 18 times larger" (periphery ∝ n², ×4.5 per
// technology style).
func TestStdCell18x(t *testing.T) {
	got := StdCellBlowup(8, 4, TelegraphosGain().AreaFactor)
	if got < 17 || got > 19 {
		t.Errorf("8×8 std-cell blowup %v, want ≈18", got)
	}
}

// TestPrizma16x reproduces §5.3: "in Telegraphos III, 2n = 16, while
// M = 256; thus, the shared-buffer crossbars would cost 16 times more in
// the PRIZMA architecture".
func TestPrizma16x(t *testing.T) {
	approx(t, "PRIZMA ratio", PrizmaCrossbarRatio(8, 256), 16, 0)
	// Sanity on the trend: more banks cost proportionally more.
	if PrizmaCrossbarRatio(8, 512) != 32 {
		t.Error("ratio must scale linearly in M")
	}
	if ShiftRegisterPenalty != 4.0 {
		t.Error("§5.3 shift-register penalty is 4×")
	}
	if DecoderVsPipelineReg != 2.3 {
		t.Error("§4.4 decoder/pipeline-register ratio is 2.3×")
	}
}

// TestTelegraphosIIBreakdown reproduces the §4.2 numbers: 8 SRAMs of
// 1.5×0.9 mm² = 10.8 mm², 15 mm² peripheral standard cells, 5.5 mm²
// routing, ≈32 mm² total, on an 8.5×8.5 mm die.
func TestTelegraphosIIBreakdown(t *testing.T) {
	f := TelegraphosII()
	var sram float64
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, "SRAM") {
			sram += b.Mm2()
		}
	}
	approx(t, "SRAM megacells", sram, 10.8, 0.01) // "occupy 11 mm²"
	approx(t, "routing", f.RoutingMm2, 5.5, 0)
	approx(t, "total buffer", f.TotalMm2(), 31.3, 0.5) // "amounts to 32 mm²"
	approx(t, "die", f.ChipWidthMm*f.ChipHeightMm, 72.25, 0)
	if !strings.Contains(f.String(), "total") {
		t.Error("floorplan rendering missing total")
	}
}

// TestTelegraphosIIICapacity reproduces §4.4: "storage for up to 256
// packets of 256 bits each" = 64 Kbit, and the whole buffer fits in
// ≈45 mm² including crossbar and cut-through.
func TestTelegraphosIIICapacity(t *testing.T) {
	if got := CapacityBits(16, 256, 16); got != 65536 {
		t.Fatalf("capacity = %d bits, want 64 Kbit", got)
	}
	if got := CellBits(16, 16); got != 256 {
		t.Fatalf("cell = %d bits, want 256", got)
	}
	f := TelegraphosIII()
	total := f.TotalMm2()
	if total < 35 || total > 50 {
		t.Errorf("T3 buffer total %v mm², paper says ≈45 mm²", total)
	}
	// Peripheral datapath blocks ≈ 9 mm².
	var periph float64
	for _, b := range f.Blocks {
		if strings.Contains(b.Name, "link datapath") {
			periph += b.Mm2()
		}
	}
	approx(t, "T3 periphery", periph, 9, 0.5)
}

// TestInputVsSharedFloorplan reproduces fig. 9/§5.1: equal widths, two
// crossbar blocks vs one, and the shared buffer's height advantage
// translating into net area advantage at the [HlKa88] operating point
// (80 cells/input vs ≈6 cells/output for equal loss).
func TestInputVsSharedFloorplan(t *testing.T) {
	const n, w = 16, 16
	// [HlKa88] operating point: 80 cells per input buffer vs 86 cells
	// total in the shared buffer.
	c := CompareInputVsShared(n, w, 80, 86)
	if c.WidthInput != c.WidthShared {
		t.Fatal("§5.1: the two organizations have the same total width")
	}
	if c.WidthShared != 2*n*w {
		t.Fatalf("width = %d, want 2nw = %d", c.WidthShared, 2*n*w)
	}
	if c.CrossbarBlocksShared != 2 || c.CrossbarBlocksInput != 1 {
		t.Fatal("crossbar block counts wrong")
	}
	if c.BitsShared >= c.BitsInput {
		t.Fatal("shared buffering must need fewer total bits")
	}
	if c.HSharedRows >= c.HInputRows {
		t.Fatal("§5.1: H_s must be (significantly) smaller than H_i")
	}
	if adv := c.Advantage(); adv <= 1.5 {
		t.Errorf("advantage %v: shared buffering should win clearly", adv)
	}
	// And with equal total capacity, input buffering would win (one
	// crossbar fewer) — the advantage really comes from H_s < H_i.
	eq := CompareInputVsShared(n, w, 80, 80*n)
	if eq.Advantage() >= 1 {
		t.Error("with equal capacity the second crossbar must cost shared buffering the lead")
	}
}

// TestQuantumConsistency ties the area model to the analytic quantum: the
// §3.5 example of 16 links near a GByte/s each.
func TestQuantumConsistency(t *testing.T) {
	q := analytic.Quantum{Links: 16, WordBits: 32}
	// width 1024 bits at 5 ns: 204.8 Gb/s aggregate = 12.8 Gb/s per
	// link-pair… per §3.5: "enough for 16 incoming and 16 outgoing links
	// near the Giga-Byte per second range".
	agg := analytic.AggregateGbps(q.Bits(), 5)
	perLinkGBps := agg / 8 / float64(2*q.Links)
	if perLinkGBps < 0.5 || perLinkGBps > 1.0 {
		t.Errorf("per-link %v GB/s, want near the GByte/s range", perLinkGBps)
	}
}

// TestTelegraphosIPartition reproduces the §4.1 implementation breakdown:
// 8 SRAM stage chips, ≈500 gates of arbitration/stage-0 control in one
// FPGA, and an 8-bit peripheral datapath sliced 4 × 2 bits at ≈1500
// gates per slice.
func TestTelegraphosIPartition(t *testing.T) {
	p := TelegraphosIPartition()
	if p.SRAMChips != 8 {
		t.Errorf("SRAM chips = %d, want one per stage (8)", p.SRAMChips)
	}
	if p.DatapathBits() != 8 {
		t.Errorf("datapath = %d bits, want the 8-bit link width", p.DatapathBits())
	}
	if p.TotalGates() != 500+4*1500 {
		t.Errorf("total gates = %d, want 6500", p.TotalGates())
	}
	if g := p.GatesPerLinkBit(); g != 750 {
		t.Errorf("gates per link bit = %v, want 750", g)
	}
	if p.PCBSignalLayers != 4 || p.TraceWidthMm != 0.2 {
		t.Error("PCB wiring facts wrong")
	}
	if p.String() == "" {
		t.Error("empty rendering")
	}
}
