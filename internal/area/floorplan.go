package area

import (
	"fmt"
	"strings"
)

// Block is one named rectangle of a floorplan.
type Block struct {
	Name              string
	WidthMm, HeightMm float64
}

// Mm2 returns the block area.
func (b Block) Mm2() float64 { return b.WidthMm * b.HeightMm }

// Floorplan is a named collection of blocks plus explicit extra area
// (routing channels etc.).
type Floorplan struct {
	Name         string
	Blocks       []Block
	RoutingMm2   float64
	ChipWidthMm  float64
	ChipHeightMm float64
}

// BlocksMm2 sums the block areas.
func (f Floorplan) BlocksMm2() float64 {
	s := 0.0
	for _, b := range f.Blocks {
		s += b.Mm2()
	}
	return s
}

// TotalMm2 is blocks plus routing.
func (f Floorplan) TotalMm2() float64 { return f.BlocksMm2() + f.RoutingMm2 }

// String renders a one-line-per-block summary.
func (f Floorplan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (chip %.1f×%.1f mm):\n", f.Name, f.ChipWidthMm, f.ChipHeightMm)
	for _, bl := range f.Blocks {
		fmt.Fprintf(&b, "  %-28s %5.2f × %4.2f mm = %6.2f mm²\n", bl.Name, bl.WidthMm, bl.HeightMm, bl.Mm2())
	}
	if f.RoutingMm2 > 0 {
		fmt.Fprintf(&b, "  %-28s %21.2f mm²\n", "bus routing", f.RoutingMm2)
	}
	fmt.Fprintf(&b, "  %-28s %21.2f mm²\n", "total", f.TotalMm2())
	return b.String()
}

// TelegraphosII returns the published §4.2 shared-buffer floorplan of the
// Telegraphos II standard-cell ASIC (fig. 6): eight 256×16 compiled SRAM
// megacells of 1.5×0.9 mm², 15 mm² of standard-cell peripheral circuitry,
// and 5.5 mm² of memory-bus routing — "the total shared buffer area
// amounts to 32 mm²" on an 8.5×8.5 mm die.
func TelegraphosII() Floorplan {
	f := Floorplan{
		Name:         "Telegraphos II shared buffer (0.7um std-cell)",
		ChipWidthMm:  8.5,
		ChipHeightMm: 8.5,
		RoutingMm2:   5.5,
	}
	for i := 0; i < 8; i++ {
		f.Blocks = append(f.Blocks, Block{Name: fmt.Sprintf("SRAM stage DB%d (256×16)", i), WidthMm: 1.5, HeightMm: 0.9})
	}
	f.Blocks = append(f.Blocks, Block{Name: "peripheral std-cells", WidthMm: 5.0, HeightMm: 3.0})
	return f
}

// TelegraphosIII returns the §4.4 full-custom buffer summary (fig. 8):
// 16 pipelined stages, 256 cells of 256 bits (64 Kbit), 8+8 links of
// 16 bits, peripheral datapath ≈ 9 mm², total ≈ 45 mm² including crossbar
// and cut-through, in 1.0 µm CMOS.
func TelegraphosIII() Floorplan {
	// The arrays hold 64 Kbit. Full-custom storage is denser than the
	// compiled megacells of T2 (which would cost 1.35 mm² × (1.0/0.7)² ≈
	// 2.76 mm² per 4-Kbit stage if merely rescaled): the paper's 45 mm²
	// total minus the 9 mm² peripheral datapath leaves 36 mm² for the 16
	// stages, i.e. 2.25 mm² per 256×16 stage (≈ 550 µm²/bit at 1.0 µm,
	// a 1.22× density gain over rescaled compiled SRAM).
	const sramPerStage = 36.0 / 16
	f := Floorplan{
		Name:         "Telegraphos III pipelined buffer (1.0um full-custom)",
		ChipWidthMm:  7.5,
		ChipHeightMm: 6.0,
	}
	for i := 0; i < 16; i++ {
		f.Blocks = append(f.Blocks, Block{Name: fmt.Sprintf("SRAM stage M%d (256×16)", i), WidthMm: sramPerStage / 0.9, HeightMm: 0.9})
	}
	f.Blocks = append(f.Blocks,
		Block{Name: "incoming link datapath", WidthMm: 7.5, HeightMm: 0.6},
		Block{Name: "outgoing link datapath", WidthMm: 7.5, HeightMm: 0.6},
	)
	return f
}

// InputVsShared is the §5.1 (fig. 9) first-order floorplan comparison for
// an n×n switch of link width w. All linear dimensions are in units of
// single-ported bit-cell pitches; areas are in squared bit-cell units.
// Cells here are switch cells of one quantum (2nw bits).
type InputVsShared struct {
	N, W int
	// CellsPerInput and SharedCells are the equal-performance buffer
	// capacities: cells per input buffer, and total cells in the shared
	// buffer (§2.2 / [HlKa88]: 80 per input vs 86 total at 16×16,
	// p = 0.8, loss 10⁻³).
	CellsPerInput, SharedCells int

	// WidthInput and WidthShared are the total memory widths — equal, at
	// 2nw bit-cells (§5.1: "The shared buffer has the same width", since
	// its throughput must equal the aggregate of all the input buffers).
	WidthInput, WidthShared int

	// HInputRows and HSharedRows are the array heights in bit-cell rows
	// (total bits / width): "we can let H_s be (significantly) smaller
	// than H_i".
	HInputRows, HSharedRows int

	// BitsInput and BitsShared are total buffer capacities in bits.
	BitsInput, BitsShared int

	// CrossbarBlocksInput and CrossbarBlocksShared count the ≈2nw×nw
	// wire-dominated blocks: input buffering needs one crossbar (plus a
	// scheduler), shared buffering two (input and output datapaths).
	CrossbarBlocksInput, CrossbarBlocksShared int
	// CrossbarBlockArea is the area of one such block, 2nw wide × nw
	// output wires tall.
	CrossbarBlockArea int
}

// CompareInputVsShared evaluates fig. 9 with the given equal-performance
// buffer capacities (obtain them from the E3 simulation or [HlKa88]:
// cells per input buffer vs total shared cells).
func CompareInputVsShared(n, w, cellsPerInput, sharedCells int) InputVsShared {
	cellBits := 2 * n * w // one quantum
	width := 2 * n * w
	c := InputVsShared{
		N: n, W: w,
		CellsPerInput: cellsPerInput, SharedCells: sharedCells,
		WidthInput:           width,
		WidthShared:          width,
		BitsInput:            n * cellsPerInput * cellBits,
		BitsShared:           sharedCells * cellBits,
		CrossbarBlocksInput:  1,
		CrossbarBlocksShared: 2,
		CrossbarBlockArea:    width * (n * w),
	}
	c.HInputRows = c.BitsInput / width
	c.HSharedRows = c.BitsShared / width
	return c
}

// TotalInput returns memory + crossbar area for input buffering (the
// scheduler is ignored on both sides of the comparison, conservatively
// favouring input buffering — §5.1 argues it roughly offsets the shared
// buffer's second crossbar).
func (c InputVsShared) TotalInput() int {
	return c.BitsInput + c.CrossbarBlocksInput*c.CrossbarBlockArea
}

// TotalShared returns memory + crossbar area for shared buffering.
func (c InputVsShared) TotalShared() int {
	return c.BitsShared + c.CrossbarBlocksShared*c.CrossbarBlockArea
}

// Advantage returns TotalInput/TotalShared (> 1 means shared wins).
func (c InputVsShared) Advantage() float64 {
	return float64(c.TotalInput()) / float64(c.TotalShared())
}

// CapacityBits returns the §4 capacity arithmetic for a K-stage,
// A-address, w-bit pipelined buffer (Telegraphos III: 16×256×16 = 64 Kbit
// = 256 cells × 256 bits).
func CapacityBits(stages, cells, wordBits int) int {
	return stages * cells * wordBits
}

// CellBits returns the cell size in bits (stages × wordBits).
func CellBits(stages, wordBits int) int { return stages * wordBits }
