package area

import "fmt"

// FPGAPartition models the §4.1 Telegraphos I implementation breakdown:
// how the pipelined-memory shared buffer of a 4×4 switch was split across
// discrete parts — one SRAM chip per pipeline stage, the arbitration and
// stage-0 control in a small FPGA, and the peripheral datapath bit-sliced
// across four larger FPGAs.
type FPGAPartition struct {
	// SRAMChips is one per memory stage (8 for Telegraphos I).
	SRAMChips int
	// ControlDevice and ControlGates: the access arbitration among
	// incoming/outgoing links plus control-signal generation for the
	// first pipeline stage ("approximately equivalent to 500 gates" in
	// one Xilinx 3130).
	ControlDevice string
	ControlGates  int
	// SliceDevice, Slices, SliceBits, SliceGates: the peripheral
	// circuitry (input/output registers/drivers, control pipeline
	// registers) as a w-bit datapath cut into Slices slices of SliceBits
	// bits, one FPGA each ("四 Xilinx 3164PC84 FPGA's, each of them
	// containing the equivalent of 1500 gates").
	SliceDevice string
	Slices      int
	SliceBits   int
	SliceGates  int
	// PCBSignalLayers and TraceWidthMm: the §4.1 wiring density remark
	// (4 signal layers, 0.2 mm traces around the shared buffer).
	PCBSignalLayers int
	TraceWidthMm    float64
}

// TelegraphosIPartition returns the published §4.1 breakdown.
func TelegraphosIPartition() FPGAPartition {
	return FPGAPartition{
		SRAMChips:       8,
		ControlDevice:   "Xilinx 3130PC84",
		ControlGates:    500,
		SliceDevice:     "Xilinx 3164PC84",
		Slices:          4,
		SliceBits:       2,
		SliceGates:      1500,
		PCBSignalLayers: 4,
		TraceWidthMm:    0.2,
	}
}

// DatapathBits returns the peripheral datapath width the slices
// implement (Slices × SliceBits; 8 bits, matching the 8-bit links).
func (p FPGAPartition) DatapathBits() int { return p.Slices * p.SliceBits }

// TotalGates returns the FPGA logic budget (control + slices).
func (p FPGAPartition) TotalGates() int {
	return p.ControlGates + p.Slices*p.SliceGates
}

// GatesPerLinkBit returns peripheral gates per bit of link width — the
// quantity that stays roughly constant when the datapath is re-sliced.
func (p FPGAPartition) GatesPerLinkBit() float64 {
	return float64(p.Slices*p.SliceGates) / float64(p.DatapathBits())
}

// String implements fmt.Stringer.
func (p FPGAPartition) String() string {
	return fmt.Sprintf("%d SRAM chips; control %s (%d gates); datapath %d×%d-bit slices in %s (%d gates each); PCB %d layers @ %.1f mm",
		p.SRAMChips, p.ControlDevice, p.ControlGates,
		p.Slices, p.SliceBits, p.SliceDevice, p.SliceGates,
		p.PCBSignalLayers, p.TraceWidthMm)
}
