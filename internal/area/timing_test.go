package area

import (
	"math"
	"testing"
)

// TestTimingAnchors: the model hits the paper's published clock periods.
func TestTimingAnchors(t *testing.T) {
	t3 := TelegraphosIIITiming()
	if got := t3.CycleNsWorst(); math.Abs(got-16) > 0.01 {
		t.Fatalf("T3 worst-case cycle %v ns, want 16 (§4.4)", got)
	}
	if got := t3.CycleNsTypical(); math.Abs(got-10) > 0.01 {
		t.Fatalf("T3 typical cycle %v ns, want 10 (§4.4)", got)
	}
	t2 := TelegraphosIITiming()
	if got := t2.CycleNsWorst(); math.Abs(got-40) > 0.01 {
		t.Fatalf("T2 cycle %v ns, want 40 (§4.2)", got)
	}
	if t3.String() == "" || t2.String() == "" {
		t.Fatal("empty rendering")
	}
}

// TestFig7bFasterThanFig7a: replacing the per-stage decoder with a
// decoded-address pipeline register shortens the critical path (§4.3:
// "oftentimes, these flip-flops are smaller and/or faster than the
// decoder that they replace").
func TestFig7bFasterThanFig7a(t *testing.T) {
	b := StageTiming{WordlineBits: 16, Addr: PipelineReg}
	a := StageTiming{WordlineBits: 16, Addr: Decoder}
	if b.CycleNsWorst() >= a.CycleNsWorst() {
		t.Fatalf("fig.7b (%v ns) not faster than fig.7a (%v ns)", b.CycleNsWorst(), a.CycleNsWorst())
	}
	// The gap is the decoder-vs-register delta.
	want := tDecoder - tPipeReg
	if got := a.CycleNsWorst() - b.CycleNsWorst(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("gap %v, want %v", got, want)
	}
}

// TestPipelinedFasterThanWide: §3.2(ii)/§4.3 — the pipelined memory's
// short word lines make it faster than the wide memory, and the gap grows
// with switch size (word line ∝ 2n·w).
func TestPipelinedFasterThanWide(t *testing.T) {
	prev := 0.0
	for _, n := range []int{4, 8, 16, 32} {
		p := StageTiming{WordlineBits: 16, Addr: Decoder}
		w := WideMemoryTiming(n, 16)
		gap := w.CycleNsWorst() - p.CycleNsWorst()
		if gap <= 0 {
			t.Fatalf("n=%d: wide (%v) not slower than pipelined (%v)", n, w.CycleNsWorst(), p.CycleNsWorst())
		}
		if gap <= prev {
			t.Fatalf("n=%d: gap %v did not grow (prev %v)", n, gap, prev)
		}
		prev = gap
	}
}

// TestBitlineSplitting: §4.3's last optimization shortens the cycle but
// costs one pipeline stage of latency.
func TestBitlineSplitting(t *testing.T) {
	base := TelegraphosIIITiming()
	split := base
	split.SplitBitlines = true
	if split.CycleNsWorst() >= base.CycleNsWorst() {
		t.Fatalf("split (%v) not faster than unsplit (%v)", split.CycleNsWorst(), base.CycleNsWorst())
	}
	if base.ExtraLatencyCycles() != 0 || split.ExtraLatencyCycles() != 1 {
		t.Fatal("latency accounting wrong")
	}
	// The split must pay for itself in link rate: 16 bits per (shorter)
	// cycle beats 16 bits per 16 ns.
	if rate := 16 / split.CycleNsWorst(); rate <= 1.0 {
		t.Fatalf("split link rate %v Gb/s, expected > 1", rate)
	}
}

// TestStdCellSlower: the standard-cell flow is uniformly slower (the
// ×2.5 clock component of the §4.4 "factor of 22").
func TestStdCellSlower(t *testing.T) {
	fc := StageTiming{WordlineBits: 16, Addr: Decoder}
	sc := fc
	sc.StdCell = true
	ratio := sc.CycleNsWorst() / fc.CycleNsWorst()
	if ratio < 2.0 || ratio > 3.0 {
		t.Fatalf("std-cell/full-custom clock ratio %v, want ≈2.3–2.5", ratio)
	}
}

// TestTimingConsistentWithAreaRatio: the timing and area models must
// agree on the decoder-vs-register tradeoff constant.
func TestTimingConsistentWithAreaRatio(t *testing.T) {
	if math.Abs(tDecoder/tPipeReg-DecoderVsPipelineReg) > 1e-12 {
		t.Fatal("timing model diverged from the §4.4 2.3× constant")
	}
}
