package area

import "fmt"

// This file models the clock-cycle arithmetic of §4.2–§4.4: a first-order
// critical-path model of one pipelined-memory (or wide-memory) stage,
// built from the delay effects the paper names:
//
//   - the address source: a full address decoder (fig. 7a) or the decoded
//     -address pipeline register of fig. 7b, which is smaller *and*
//     faster ("oftentimes, these flip-flops are smaller and/or faster
//     than the decoder that they replace");
//   - the word line, whose RC delay grows superlinearly with its length —
//     the reason "the pipelined memory has more address decoders, but
//     shorter word lines … an advantage, since it reduces the 'RC' delay
//     of activating the addressed word" (§4.3), and why wide memories
//     end up split into narrower blocks anyway;
//   - the bit line + sense path, which §4.3's last optimization halves by
//     splitting the bit lines into pipeline stages (at the cost of one
//     extra latency cycle, matching core.Config.LinkPipeline);
//   - clocking margin.
//
// Constants are calibrated to the paper's published anchors: the fig. 7b
// full-custom stage cycles at 16 ns worst case / 10 ns typical
// (Telegraphos III, §4.4), and the standard-cell version at 40 ns
// (Telegraphos II, §4.2). Orderings, not absolute extrapolations, are the
// reproduced claims.

// AddrSource selects the address path of fig. 7.
type AddrSource int

const (
	// Decoder is the traditional per-stage address decoder (fig. 7a).
	Decoder AddrSource = iota
	// PipelineReg is the decoded-address pipeline register (fig. 7b).
	PipelineReg
)

// String implements fmt.Stringer.
func (a AddrSource) String() string {
	if a == Decoder {
		return "decoder (fig.7a)"
	}
	return "pipeline-reg (fig.7b)"
}

// StageTiming parameterizes the critical path of one memory stage.
type StageTiming struct {
	// WordlineBits is the stage word-line length in bit cells: w for the
	// pipelined memory, K·w for an (unsplit) wide memory.
	WordlineBits int
	// Addr selects fig. 7a or fig. 7b addressing.
	Addr AddrSource
	// SplitBitlines applies §4.3's last optimization: bit lines split
	// into two pipeline stages, halving the bit-line component at the
	// cost of one extra pipeline cycle.
	SplitBitlines bool
	// StdCell scales all delays to the standard-cell/0.7 µm Telegraphos
	// II style instead of 1.0 µm full custom.
	StdCell bool
}

// Delay constants in ns, 1.0 µm full custom, worst case (4.5 V, 125 °C,
// slow transistors, high parasitics — the §4.4 corner).
const (
	tPipeReg = 1.5                             // decoded-address pipeline register
	tDecoder = tPipeReg * DecoderVsPipelineReg // the fig. 7 decoder it replaces
	// tBitSense makes the fig. 7b full-custom stage close at exactly the
	// §4.4 anchor: 1.5 (reg) + 0.125 (16-bit word line) + 12.375 + 2
	// (margin) = 16 ns.
	tBitSense = 12.375 // 256-row bit line + sense amplifier
	tMargin   = 2.0    // clock skew/margin
	// Word-line Elmore delay: linear + quadratic in length, normalized
	// to the 16-bit pipelined stage.
	tWordLin  = 0.1   // ns per 16 bits
	tWordQuad = 0.025 // ns per (16 bits)²
	// stdCellFactor scales full-custom worst-case delays to the 0.7 µm
	// standard-cell flow, calibrated so the fig. 7a pipelined stage
	// cycles at Telegraphos II's 40 ns.
	stdCellFactor = 40.0 / (tDecoder + tWordLin + tWordQuad + tBitSense + tMargin)
	// typicalFactor converts the worst-case corner to typical silicon
	// (§4.4: 16 ns worst, 10 ns typical).
	typicalFactor = 10.0 / 16.0
)

// wordline returns the word-line delay for a line of n bit cells.
func wordline(bits int) float64 {
	u := float64(bits) / 16
	return tWordLin*u + tWordQuad*u*u
}

// CycleNsWorst returns the worst-case clock period of the stage.
func (t StageTiming) CycleNsWorst() float64 {
	addr := tPipeReg
	if t.Addr == Decoder {
		addr = tDecoder
	}
	bit := tBitSense
	if t.SplitBitlines {
		// Half the bit line, plus the inserted pipeline register.
		bit = tBitSense/2 + tPipeReg
	}
	cycle := addr + wordline(t.WordlineBits) + bit + tMargin
	if t.StdCell {
		cycle *= stdCellFactor
	}
	return cycle
}

// CycleNsTypical returns the typical-silicon clock period.
func (t StageTiming) CycleNsTypical() float64 {
	return t.CycleNsWorst() * typicalFactor
}

// ExtraLatencyCycles returns the pipeline cycles the configuration adds
// per traversal (bit-line splitting inserts one stage, §4.3).
func (t StageTiming) ExtraLatencyCycles() int {
	if t.SplitBitlines {
		return 1
	}
	return 0
}

// String implements fmt.Stringer.
func (t StageTiming) String() string {
	style := "full-custom"
	if t.StdCell {
		style = "std-cell"
	}
	return fmt.Sprintf("%d-bit wordline, %v, split=%v, %s: %.1f ns worst / %.1f ns typical",
		t.WordlineBits, t.Addr, t.SplitBitlines, style, t.CycleNsWorst(), t.CycleNsTypical())
}

// TelegraphosIIITiming returns the §4.4 configuration: fig. 7b pipelined
// stage, 16-bit word lines, full custom — 16 ns worst / 10 ns typical.
func TelegraphosIIITiming() StageTiming {
	return StageTiming{WordlineBits: 16, Addr: PipelineReg}
}

// TelegraphosIITiming returns the §4.2 configuration: standard-cell
// compiled SRAM with conventional decoders — 40 ns.
func TelegraphosIITiming() StageTiming {
	return StageTiming{WordlineBits: 16, Addr: Decoder, StdCell: true}
}

// WideMemoryTiming returns the timing of an unsplit wide-memory stage for
// an n-port, w-bit switch (word line K·w = 2n·w bits): the organization
// §4.3 says is slower than the pipelined memory.
func WideMemoryTiming(ports, wordBits int) StageTiming {
	return StageTiming{WordlineBits: 2 * ports * wordBits, Addr: Decoder}
}
