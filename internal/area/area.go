// Package area models the silicon cost arithmetic of §4 and §5 of the
// paper: floorplan areas of the Telegraphos II/III shared buffers, the
// pipelined-versus-wide peripheral circuitry comparison (§5.2), the
// shared-versus-input buffering floorplan comparison (§5.1, fig. 9), the
// PRIZMA crossbar cost comparison (§5.3), and the technology-scaling
// factors of §4.4.
//
// Substitution note (see DESIGN.md): the paper's absolute numbers come
// from real layouts (compiled SRAM megacells, standard-cell placement,
// full-custom layout measured in HSPICE). Here every claim that is pure
// arithmetic over published quantities (ratios 16×, 18×, ≈22×, the 32 mm²
// breakdown, 64 Kbit capacity, link rates) is reproduced exactly from
// those quantities; the one genuinely layout-derived pair — 9 mm²
// pipelined vs 13 mm² wide peripheral area — is reproduced by a
// register-row counting model whose two coefficients (fixed wiring/driver
// area and per-register-row area) are fitted to those same two published
// anchors. The model's value is structural: it exposes *what scales with
// what* (rows ∝ n for pipelined inputs, 2n for double-buffered wide
// inputs, n per-output rows for wide, and a fixed wire-dominated term),
// so the same model extrapolates the §4.4 claim that standard-cell
// periphery grows with n².
package area

// Tech describes a CMOS process generation. Areas scale with the square
// of the drawn feature size.
type Tech struct {
	Name      string
	FeatureUm float64
}

// Standard processes of the paper.
var (
	// ES2 0.7 µm standard cell (Telegraphos II).
	ES2u07 = Tech{Name: "ES2 0.7um std-cell", FeatureUm: 0.7}
	// ES2 1.0 µm full custom (Telegraphos III).
	ES2u10 = Tech{Name: "ES2 1.0um full-custom", FeatureUm: 1.0}
)

// Scale returns the area multiplier from Tech t to Tech u (shrinking
// features shrinks area quadratically).
func (t Tech) Scale(u Tech) float64 {
	r := u.FeatureUm / t.FeatureUm
	return r * r
}

// Organization identifies a shared-buffer organization for the peripheral
// area model.
type Organization int

const (
	// Pipelined is the paper's organization (fig. 4).
	Pipelined Organization = iota
	// Wide is the wide-memory organization (fig. 3).
	Wide
)

// String implements fmt.Stringer.
func (o Organization) String() string {
	if o == Pipelined {
		return "pipelined"
	}
	return "wide"
}

// RowModel prices peripheral circuitry as a fixed wire/driver area plus a
// per-K-word-register-row increment. The default coefficients are fitted
// to the paper's two published anchors at Telegraphos III parameters
// (n = 8, K = 16, w = 16, 1.0 µm full custom): 9 mm² pipelined, 13 mm²
// wide-adjusted [KaSC91] (§5.2).
type RowModel struct {
	// FixedMm2 is the area of the link wiring, precharged buses and
	// drivers that both organizations need (wire-dominated; cf. §4.4
	// "the area of this block approaches the minimum possible area of a
	// crossbar, since every crossbar has to have at least the data
	// wires").
	FixedMm2 float64
	// RowMm2 is the area of one K-word register row (latches plus
	// clocking) at the reference technology.
	RowMm2 float64
	// RefTech is the technology the coefficients are quoted at.
	RefTech Tech
}

// DefaultRowModel returns coefficients fitted to the §5.2 anchors.
// Solving 9 = F + 10·r and 13 = F + 27·r (row counts below) gives
// r = 4/17 ≈ 0.235 mm²/row and F ≈ 6.65 mm².
func DefaultRowModel() RowModel {
	r := 4.0 / 17.0
	return RowModel{FixedMm2: 9 - 10*r, RowMm2: r, RefTech: ES2u10}
}

// PeripheryRows counts the K-word register rows each organization needs
// around the memory for an n-port switch (fig. 3 vs fig. 4):
//
//	pipelined: n input rows + 1 shared output row + 1 control-pipeline
//	           row                                          = n + 2
//	wide:      2n input rows (double buffering) + n output rows (one per
//	           link) + 1 control row + 2 rows' worth of cut-through
//	           crossbar drivers and bus taps                = 3n + 3
func PeripheryRows(org Organization, ports int) int {
	if org == Pipelined {
		return ports + 2
	}
	return 3*ports + 3
}

// PeripheryMm2 prices the peripheral circuitry of an n-port shared buffer
// in the given technology.
func (m RowModel) PeripheryMm2(org Organization, ports int, t Tech) float64 {
	rows := float64(PeripheryRows(org, ports))
	return (m.FixedMm2 + rows*m.RowMm2) * m.RefTech.Scale(t)
}

// PipelinedVsWide reports the §5.2 comparison at the given port count:
// peripheral areas and the pipelined saving (≈30% at n = 8).
type PipelinedVsWide struct {
	PipelinedMm2 float64
	WideMm2      float64
	// Saving is 1 - pipelined/wide.
	Saving float64
}

// ComparePeriphery evaluates the §5.2 comparison.
func (m RowModel) ComparePeriphery(ports int, t Tech) PipelinedVsWide {
	p := m.PeripheryMm2(Pipelined, ports, t)
	w := m.PeripheryMm2(Wide, ports, t)
	return PipelinedVsWide{PipelinedMm2: p, WideMm2: w, Saving: 1 - p/w}
}

// FullCustomGain is the §4.4 technology comparison: going from standard
// cells to full custom "the datapath of the shared buffer gains
// approximately a factor of 22 in speed, capacity, and area".
type FullCustomGain struct {
	// LinkFactor: full custom fits twice the links (8×8 vs 4×4).
	LinkFactor float64
	// ClockFactor: the clock is 2.5× faster (16 ns vs 40 ns).
	ClockFactor float64
	// AreaFactor: the peripheral circuit area is 4.5× smaller
	// (9 mm² vs 41 mm² for the half-sized standard-cell design).
	AreaFactor float64
}

// TelegraphosGain returns the published factors.
func TelegraphosGain() FullCustomGain {
	return FullCustomGain{LinkFactor: 2, ClockFactor: 2.5, AreaFactor: 41.0 / 9.0}
}

// Total multiplies the factors (≈22).
func (g FullCustomGain) Total() float64 {
	return g.LinkFactor * g.ClockFactor * g.AreaFactor
}

// StdCellBlowup returns how much larger an n-port standard-cell peripheral
// design is than the full-custom design at the reference port count:
// periphery grows with the square of the number of links (§4.4), so an
// 8×8 standard-cell design is (8/4)² × 4.5 ≈ 18× larger than the 8×8
// full-custom one.
func StdCellBlowup(ports, refPorts int, areaFactor float64) float64 {
	r := float64(ports) / float64(refPorts)
	return r * r * areaFactor
}

// PrizmaCrossbarRatio is the §5.3 cost ratio: the PRIZMA router and
// selector are n×M crossbars while the pipelined memory's input/output
// blocks are n×2n, so the ratio is M/(2n) — 16× at Telegraphos III
// parameters (M = 256, 2n = 16).
func PrizmaCrossbarRatio(ports, banks int) float64 {
	return float64(banks) / float64(2*ports)
}

// ShiftRegisterPenalty is the §5.3 observation that implementing PRIZMA
// banks as shift registers costs 4× the area of 3-transistor dynamic RAM
// bits (and precludes cut-through).
const ShiftRegisterPenalty = 4.0

// DecoderVsPipelineReg is the §4.4 measurement: a decoded-address pipeline
// register is 2.3× smaller than the SRAM address decoder it replaces
// (fig. 7(b)'s optimization).
const DecoderVsPipelineReg = 2.3
