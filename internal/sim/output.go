package sim

import (
	"pipemem/internal/arb"
	"pipemem/internal/fifo"
)

// OutputQueue is output queueing (§2.2, fig. 2): each output owns a queue
// that can accept, in the worst case, cells from all n inputs in one slot,
// and transmits one cell per slot. Link utilization is optimal; buffer
// memory is partitioned per output, so for a given loss target it needs
// more total cells than shared buffering (178 vs 86 in the [HlKa88]
// example quoted in §2.2).
type OutputQueue struct {
	n      int
	queues []*fifo.Ring[item]
	m      *Metrics
}

// NewOutputQueue builds an n×n output-queued switch with per-output
// capacity bufCap (≤ 0 unbounded).
func NewOutputQueue(n, bufCap int) *OutputQueue {
	s := &OutputQueue{n: n, queues: make([]*fifo.Ring[item], n), m: newMetrics()}
	for o := range s.queues {
		s.queues[o] = fifo.NewRing[item](bufCap)
	}
	return s
}

// N implements Arch.
func (s *OutputQueue) N() int { return s.n }

// Name implements Arch.
func (s *OutputQueue) Name() string { return "output-queue" }

// Metrics implements Arch.
func (s *OutputQueue) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *OutputQueue) Resident() int {
	r := 0
	for _, q := range s.queues {
		r += q.Len()
	}
	return r
}

// Step implements Arch.
func (s *OutputQueue) Step(arrivals []int) {
	for _, d := range arrivals {
		if d == NoArrival {
			continue
		}
		s.m.arrival(d, s.queues[d].Push(item{dst: d, t: s.m.Slot}))
	}
	for o := 0; o < s.n; o++ {
		if it, ok := s.queues[o].Pop(); ok {
			s.m.departure(it.t)
		}
	}
	s.m.Slot++
}

// SharedBuffer is shared (centralized) buffering (§2.2, fig. 2): a single
// buffer of capacity bufCap cells holds the union of all output queues.
// A cell is lost only when the whole buffer is full, so buffer memory
// utilization is the best of all the architectures — the reason the paper
// builds its pipelined memory to realize exactly this organization.
type SharedBuffer struct {
	n      int
	cap    int
	queues *fifo.MultiQueue
	items  []item // item storage indexed by buffer address
	free   *fifo.FreeList
	m      *Metrics
}

// NewSharedBuffer builds an n×n shared-buffer switch with total capacity
// bufCap cells (must be > 0: a shared buffer is physically finite).
func NewSharedBuffer(n, bufCap int) *SharedBuffer {
	return &SharedBuffer{
		n:      n,
		cap:    bufCap,
		queues: fifo.NewMultiQueue(n, bufCap),
		items:  make([]item, bufCap),
		free:   fifo.NewFreeList(bufCap),
		m:      newMetrics(),
	}
}

// N implements Arch.
func (s *SharedBuffer) N() int { return s.n }

// Name implements Arch.
func (s *SharedBuffer) Name() string { return "shared-buffer" }

// Metrics implements Arch.
func (s *SharedBuffer) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *SharedBuffer) Resident() int { return s.queues.Total() }

// Step implements Arch.
func (s *SharedBuffer) Step(arrivals []int) {
	for _, d := range arrivals {
		if d == NoArrival {
			continue
		}
		addr, ok := s.free.Get()
		if !ok {
			s.m.arrival(d, false)
			continue
		}
		s.items[addr] = item{dst: d, t: s.m.Slot}
		s.queues.Push(d, addr)
		s.m.arrival(d, true)
	}
	for o := 0; o < s.n; o++ {
		if addr, ok := s.queues.Pop(o); ok {
			s.m.departure(s.items[addr].t)
			s.free.Put(addr)
		}
	}
	s.m.Slot++
}

// Crosspoint is crosspoint queueing (§2.1, fig. 1): one queue per
// (input, output) pair. Every output can be kept busy independently of the
// others, so link utilization is optimal, but the memory is fragmented n²
// ways and total capacity requirements are the worst of the lot (§2.1).
type Crosspoint struct {
	n      int
	queues [][]*fifo.Ring[item] // queues[i][o]
	outRR  []arb.RoundRobin     // per-output service pointer over inputs
	m      *Metrics
	req    []bool
}

// NewCrosspoint builds an n×n crosspoint-queued switch with per-crosspoint
// capacity bufCap (≤ 0 unbounded).
func NewCrosspoint(n, bufCap int) *Crosspoint {
	s := &Crosspoint{
		n:      n,
		queues: make([][]*fifo.Ring[item], n),
		outRR:  make([]arb.RoundRobin, n),
		m:      newMetrics(),
		req:    make([]bool, n),
	}
	for i := range s.queues {
		s.queues[i] = make([]*fifo.Ring[item], n)
		for o := range s.queues[i] {
			s.queues[i][o] = fifo.NewRing[item](bufCap)
		}
	}
	return s
}

// N implements Arch.
func (s *Crosspoint) N() int { return s.n }

// Name implements Arch.
func (s *Crosspoint) Name() string { return "crosspoint" }

// Metrics implements Arch.
func (s *Crosspoint) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *Crosspoint) Resident() int {
	r := 0
	for i := range s.queues {
		for _, q := range s.queues[i] {
			r += q.Len()
		}
	}
	return r
}

// Step implements Arch.
func (s *Crosspoint) Step(arrivals []int) {
	for i, d := range arrivals {
		if d == NoArrival {
			continue
		}
		s.m.arrival(d, s.queues[i][d].Push(item{dst: d, t: s.m.Slot}))
	}
	for o := 0; o < s.n; o++ {
		for i := 0; i < s.n; i++ {
			s.req[i] = s.queues[i][o].Len() > 0
		}
		if w := s.outRR[o].Pick(s.req); w != arb.None {
			it, _ := s.queues[w][o].Pop()
			s.m.departure(it.t)
		}
	}
	s.m.Slot++
}

// BlockCrosspoint is block-crosspoint buffering (§2.2): the n×n switch is
// tiled into (n/g)² blocks of g inputs × g outputs, each block being a
// small shared buffer. It trades the single shared buffer's throughput
// requirement against crosspoint queueing's poor memory utilization —
// "lower throughput-per-buffer requirements than a single shared buffer,
// and better buffer space utilization than crosspoint queueing".
type BlockCrosspoint struct {
	n, g   int
	blocks [][]*SharedBuffer // blocks[ib][ob]: g×g shared buffer
	outRR  []arb.RoundRobin  // per-output pointer over its column blocks
	m      *Metrics
	// scratch: per-block arrival vectors
	blockArrivals [][][]int
	req           []bool
}

// NewBlockCrosspoint builds the tiled architecture: group size g must
// divide n; each block gets capacity blockCap cells.
func NewBlockCrosspoint(n, g, blockCap int) *BlockCrosspoint {
	if g <= 0 || n%g != 0 {
		panic("sim: block size must divide n")
	}
	nb := n / g
	s := &BlockCrosspoint{
		n: n, g: g,
		blocks:        make([][]*SharedBuffer, nb),
		outRR:         make([]arb.RoundRobin, n),
		m:             newMetrics(),
		blockArrivals: make([][][]int, nb),
		req:           make([]bool, nb),
	}
	for ib := range s.blocks {
		s.blocks[ib] = make([]*SharedBuffer, nb)
		s.blockArrivals[ib] = make([][]int, nb)
		for ob := range s.blocks[ib] {
			s.blocks[ib][ob] = NewSharedBuffer(g, blockCap)
			s.blockArrivals[ib][ob] = make([]int, g)
		}
	}
	return s
}

// N implements Arch.
func (s *BlockCrosspoint) N() int { return s.n }

// Name implements Arch.
func (s *BlockCrosspoint) Name() string { return "block-crosspoint" }

// Metrics implements Arch.
func (s *BlockCrosspoint) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *BlockCrosspoint) Resident() int {
	r := 0
	for ib := range s.blocks {
		for _, b := range s.blocks[ib] {
			r += b.Resident()
		}
	}
	return r
}

// Step implements Arch. Each block is itself a g×g shared buffer; an
// output serves its column's blocks round-robin, one cell per slot total.
func (s *BlockCrosspoint) Step(arrivals []int) {
	nb := s.n / s.g
	// Arrivals route to block (i/g, dst/g).
	for i, d := range arrivals {
		if d == NoArrival {
			continue
		}
		ib, ob := i/s.g, d/s.g
		b := s.blocks[ib][ob]
		addr, ok := b.free.Get()
		if !ok {
			s.m.arrival(d, false)
			continue
		}
		b.items[addr] = item{dst: d % s.g, t: s.m.Slot}
		b.queues.Push(d%s.g, addr)
		s.m.arrival(d, true)
	}
	// Departures: output o picks round-robin among the nb blocks of its
	// column that hold a cell for it.
	for o := 0; o < s.n; o++ {
		ob, lo := o/s.g, o%s.g
		for ib := 0; ib < nb; ib++ {
			s.req[ib] = s.blocks[ib][ob].queues.Len(lo) > 0
		}
		if ib := s.outRR[o].Pick(s.req[:nb]); ib != arb.None {
			b := s.blocks[ib][ob]
			addr, _ := b.queues.Pop(lo)
			s.m.departure(b.items[addr].t)
			b.free.Put(addr)
		}
	}
	s.m.Slot++
}

// SpeedupFabric is input queueing with an internal switching fabric of
// s× the link throughput plus (three-ported) output queues (§2.1, the
// [PaBr93] architecture, drawn with a "double internal switch" in fig. 1):
// per slot the fabric runs s HOL-arbitration phases, so it behaves like
// input queueing at load p/s feeding output queues.
type SpeedupFabric struct {
	n       int
	speedup int
	inQ     []*fifo.Ring[item]
	outQ    []*fifo.Ring[item]
	arbiter arb.Arbiter
	m       *Metrics
	req     []bool
	hol     []int
}

// NewSpeedupFabric builds the speedup architecture: per-input capacity
// inCap, per-output capacity outCap (≤ 0 unbounded), internal speedup ≥ 1.
func NewSpeedupFabric(n, inCap, outCap, speedup int) *SpeedupFabric {
	if speedup < 1 {
		panic("sim: speedup must be ≥ 1")
	}
	s := &SpeedupFabric{
		n:       n,
		speedup: speedup,
		inQ:     make([]*fifo.Ring[item], n),
		outQ:    make([]*fifo.Ring[item], n),
		arbiter: arb.NewRandom(0xfab),
		m:       newMetrics(),
		req:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		s.inQ[i] = fifo.NewRing[item](inCap)
		s.outQ[i] = fifo.NewRing[item](outCap)
	}
	return s
}

// N implements Arch.
func (s *SpeedupFabric) N() int { return s.n }

// Name implements Arch.
func (s *SpeedupFabric) Name() string { return "speedup-fabric" }

// Metrics implements Arch.
func (s *SpeedupFabric) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *SpeedupFabric) Resident() int {
	r := 0
	for i := 0; i < s.n; i++ {
		r += s.inQ[i].Len() + s.outQ[i].Len()
	}
	return r
}

// Step implements Arch.
func (s *SpeedupFabric) Step(arrivals []int) {
	for i, d := range arrivals {
		if d == NoArrival {
			continue
		}
		s.m.arrival(d, s.inQ[i].Push(item{dst: d, t: s.m.Slot}))
	}
	// s fabric phases: HOL arbitration into output queues. The HOL view
	// is snapshotted per phase so an input moves at most one cell per
	// phase (the fabric runs at s× the link rate, not s× per output
	// scan).
	if s.hol == nil {
		s.hol = make([]int, s.n)
	}
	for phase := 0; phase < s.speedup; phase++ {
		for i := 0; i < s.n; i++ {
			s.hol[i] = NoArrival
			if h, ok := s.inQ[i].Front(); ok {
				s.hol[i] = h.dst
			}
		}
		for o := 0; o < s.n; o++ {
			if s.outQ[o].Full() {
				continue // output queue cannot accept this phase
			}
			for i := 0; i < s.n; i++ {
				s.req[i] = s.hol[i] == o
			}
			if w := s.arbiter.Pick(s.req); w != arb.None {
				it, _ := s.inQ[w].Pop()
				s.outQ[o].Push(it)
			}
		}
	}
	for o := 0; o < s.n; o++ {
		if it, ok := s.outQ[o].Pop(); ok {
			s.m.departure(it.t)
		}
	}
	s.m.Slot++
}
