package sim

import "fmt"

// Conserve verifies the cell-conservation invariant on an architecture at
// any point in a run: every offered cell was either accepted or dropped,
// and every accepted cell has either departed or is still resident. Cells
// already buffered when measurement started are credited to the arrival
// side, so the identity holds across a StartMeasurement reset. Run checks
// it after every simulation; step-level tests call it directly.
func Conserve(a Arch) error {
	m := a.Metrics()
	if m.Offered != m.Accepted+m.Dropped {
		return fmt.Errorf("sim: %s: offered %d != accepted %d + dropped %d",
			a.Name(), m.Offered, m.Accepted, m.Dropped)
	}
	if m.Accepted+m.residentStart != m.Departed+int64(a.Resident()) {
		return fmt.Errorf("sim: %s: accepted %d + carried-over %d != departed %d + resident %d",
			a.Name(), m.Accepted, m.residentStart, m.Departed, a.Resident())
	}
	return nil
}
