package sim

import (
	"math"
	"testing"

	"pipemem/internal/analytic"
	"pipemem/internal/arb"
	"pipemem/internal/traffic"
)

func gen(t *testing.T, cfg traffic.Config) *traffic.Generator {
	t.Helper()
	g, err := traffic.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allArchs(n int) []Arch {
	return []Arch{
		NewInputFIFO(n, 64, nil),
		NewVOQ(n, 64, nil),
		NewVOQ(n, 64, arb.NewPIM(0, 9)),
		NewVOQ(n, 64, arb.NewTwoDRR()),
		NewOutputQueue(n, 64),
		NewSharedBuffer(n, 64*n),
		NewCrosspoint(n, 16),
		NewBlockCrosspoint(n, 2, 64),
		NewSpeedupFabric(n, 64, 64, 2),
		NewInputSmoothing(n, 16),
	}
}

// TestConservation checks, for every architecture, that cells are neither
// created nor destroyed: offered = accepted + dropped and
// accepted = departed + resident, at every step (the shared Conserve
// helper; Run re-checks it at the end of every simulation).
func TestConservation(t *testing.T) {
	const n = 8
	for _, a := range allArchs(n) {
		g := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: 0.9, Seed: 17})
		arrivals := make([]int, n)
		for s := 0; s < 5000; s++ {
			g.Step(arrivals)
			a.Step(arrivals)
			if err := Conserve(a); err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
		}
		if a.Metrics().Departed == 0 {
			t.Fatalf("%s: nothing departed under load 0.9", a.Name())
		}
	}
}

// TestWorkConservingThroughput: architectures without head-of-line
// blocking must carry offered load p when buffers are ample.
func TestWorkConservingThroughput(t *testing.T) {
	const n, p = 8, 0.7
	for _, a := range []Arch{
		NewOutputQueue(n, 0),
		NewSharedBuffer(n, 4096),
		NewCrosspoint(n, 0),
		NewVOQ(n, 0, nil),
		NewBlockCrosspoint(n, 2, 2048),
	} {
		g := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 23})
		r := Run(a, g, 5_000, 100_000)
		if math.Abs(r.Throughput-p) > 0.01 {
			t.Errorf("%s: throughput %v, want ≈%v", a.Name(), r.Throughput, p)
		}
		if r.LossProb > 1e-4 {
			t.Errorf("%s: loss %v with ample buffers", a.Name(), r.LossProb)
		}
	}
}

// TestInputFIFOSaturation reproduces the head-of-line blocking limits of
// [KaHM87]: ≈0.75 for n=2, ≈0.62 for n=8 (the "about 60%" of §2.1).
func TestInputFIFOSaturation(t *testing.T) {
	for _, n := range []int{2, 8} {
		a := NewInputFIFO(n, 256, nil)
		g := gen(t, traffic.Config{Kind: traffic.Saturation, N: n, Seed: 31})
		r := Run(a, g, 20_000, 200_000)
		want := analytic.HOLSaturation(n)
		if math.Abs(r.Throughput-want) > 0.01 {
			t.Errorf("n=%d: saturation throughput %v, want ≈%v", n, r.Throughput, want)
		}
	}
}

// TestVOQBeatsInputFIFO: removing FIFO order must lift saturation
// throughput well above the HOL limit (§2.1).
func TestVOQBeatsInputFIFO(t *testing.T) {
	const n = 8
	a := NewVOQ(n, 256, nil)
	g := gen(t, traffic.Config{Kind: traffic.Saturation, N: n, Seed: 37})
	r := Run(a, g, 20_000, 100_000)
	if r.Throughput < 0.95 {
		t.Errorf("VOQ+iSLIP saturation %v, want ≈1", r.Throughput)
	}
}

// TestOutputQueueLatencyMatchesKarol checks the mean wait against
// eq. (14) of [KaHM87].
func TestOutputQueueLatencyMatchesKarol(t *testing.T) {
	const n = 16
	for _, p := range []float64{0.5, 0.8} {
		a := NewOutputQueue(n, 0)
		g := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 41})
		r := Run(a, g, 20_000, 300_000)
		want := analytic.OutputQueueWait(n, p)
		if math.Abs(r.MeanLatency-want)/want > 0.05 {
			t.Errorf("p=%v: mean wait %v, want ≈%v", p, r.MeanLatency, want)
		}
	}
}

// TestSharedVsOutputLoss: with the same total buffer space, the shared
// buffer must lose (much) less than partitioned output queues — the §2.2
// motivation for shared buffering.
func TestSharedVsOutputLoss(t *testing.T) {
	const n, p, totalBuf = 16, 0.9, 96
	shared := NewSharedBuffer(n, totalBuf)
	output := NewOutputQueue(n, totalBuf/n)
	var lossShared, lossOutput float64
	for _, tc := range []struct {
		a    Arch
		loss *float64
	}{{shared, &lossShared}, {output, &lossOutput}} {
		g := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 43})
		r := Run(tc.a, g, 20_000, 300_000)
		*tc.loss = r.LossProb
	}
	if lossOutput == 0 {
		t.Fatal("output queueing shows no loss; test not discriminating")
	}
	if lossShared >= lossOutput {
		t.Errorf("shared loss %v not below output loss %v", lossShared, lossOutput)
	}
}

// TestOutputVsVOQLatency reproduces the shape of [AOST93, fig. 3] quoted
// in §2.2: output (= shared) queueing is about twice as fast as input
// buffering at loads 0.6–0.9.
func TestOutputVsVOQLatency(t *testing.T) {
	const n = 16
	for _, p := range []float64{0.7, 0.9} {
		out := NewOutputQueue(n, 0)
		voq := NewVOQ(n, 0, arb.NewISLIP(n, 1))
		var latOut, latVOQ float64
		g := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 47})
		latOut = Run(out, g, 20_000, 200_000).MeanLatency
		g = gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 47})
		latVOQ = Run(voq, g, 20_000, 200_000).MeanLatency
		if latVOQ <= latOut {
			t.Errorf("p=%v: VOQ latency %v not above output latency %v", p, latVOQ, latOut)
		}
	}
}

// TestInputSmoothingFrameBehaviour: deterministic single-burst check of
// the frame mechanics — b cells to one output survive, b+1 lose one.
func TestInputSmoothingFrameMechanics(t *testing.T) {
	const n, b = 4, 2
	a := NewInputSmoothing(n, b)
	arrivals := make([]int, n)
	clear := func() {
		for i := range arrivals {
			arrivals[i] = NoArrival
		}
	}
	// Slot 0: three inputs send to output 0 — one more than the frame
	// can accept for a single output.
	clear()
	arrivals[0], arrivals[1], arrivals[2] = 0, 0, 0
	a.Step(arrivals)
	clear()
	a.Step(arrivals) // frame boundary after b=2 slots
	for s := 0; s < 2*b; s++ {
		a.Step(arrivals)
	}
	m := a.Metrics()
	if m.Dropped != 1 {
		t.Fatalf("dropped %d, want 1 (frame accepts only b=2 for one output)", m.Dropped)
	}
	if m.Departed != 2 {
		t.Fatalf("departed %d, want 2", m.Departed)
	}
	if err := Conserve(a); err != nil {
		t.Fatal(err)
	}
}

// TestSpeedupFabricLiftsSaturation: a 2× internal fabric must lift input
// queueing's saturation well above the HOL limit (§2.1, [PaBr93]).
func TestSpeedupFabricLiftsSaturation(t *testing.T) {
	const n = 8
	a := NewSpeedupFabric(n, 256, 256, 2)
	g := gen(t, traffic.Config{Kind: traffic.Saturation, N: n, Seed: 53})
	r := Run(a, g, 20_000, 100_000)
	if r.Throughput < 0.9 {
		t.Errorf("speedup-2 saturation %v, want > 0.9", r.Throughput)
	}
}

// TestCrosspointOptimalUtilization: crosspoint queueing achieves full link
// utilization at saturation (§2.1).
func TestCrosspointOptimalUtilization(t *testing.T) {
	const n = 8
	a := NewCrosspoint(n, 0)
	g := gen(t, traffic.Config{Kind: traffic.Saturation, N: n, Seed: 59})
	r := Run(a, g, 20_000, 50_000)
	if r.Throughput < 0.99 {
		t.Errorf("crosspoint saturation %v, want ≈1", r.Throughput)
	}
}

// TestBlockCrosspointBetweenExtremes: with equal total memory, the block
// architecture's loss sits at or below crosspoint's (it shares within
// blocks) — §2.2's claim of "better buffer space utilization than
// crosspoint queueing".
func TestBlockCrosspointBetweenExtremes(t *testing.T) {
	const n, p = 8, 0.95
	const totalCells = 64
	// crosspoint: 1 cell per crosspoint (64 queues); block (g=4): 4
	// blocks of 16 cells.
	cp := NewCrosspoint(n, totalCells/(n*n))
	bc := NewBlockCrosspoint(n, 4, totalCells/4)
	g1 := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 61})
	lossCP := Run(cp, g1, 10_000, 200_000).LossProb
	g2 := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 61})
	lossBC := Run(bc, g2, 10_000, 200_000).LossProb
	if lossBC >= lossCP {
		t.Errorf("block-crosspoint loss %v not below crosspoint loss %v", lossBC, lossCP)
	}
}

func TestRunPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g, _ := traffic.NewGenerator(traffic.Config{Kind: traffic.Saturation, N: 4, Seed: 1})
	Run(NewOutputQueue(8, 0), g, 0, 1)
}

func TestResultString(t *testing.T) {
	r := Result{Arch: "x", N: 4, Throughput: 0.5}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func TestBlockCrosspointBadGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlockCrosspoint(8, 3, 16)
}
