package sim

import (
	"testing"

	"pipemem/internal/analytic"
	"pipemem/internal/traffic"
)

// TestCappedBehavesLikeSharedUnderUniform: with a generous cap the capped
// buffer matches the plain shared buffer on uniform traffic.
func TestCappedBehavesLikeSharedUnderUniform(t *testing.T) {
	const n, buf = 8, 128
	capped := NewCappedSharedBuffer(n, buf, buf)
	plain := NewSharedBuffer(n, buf)
	g1 := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: 0.8, Seed: 71})
	r1 := Run(capped, g1, 5_000, 100_000)
	g2 := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: 0.8, Seed: 71})
	r2 := Run(plain, g2, 5_000, 100_000)
	if r1.Throughput != r2.Throughput || r1.Dropped != r2.Dropped {
		t.Fatalf("uncapped-equivalent mismatch: %+v vs %+v", r1, r2)
	}
}

// TestHotspotHogging exposes the weakness: under a persistent hotspot,
// the pure shared buffer lets the hot output's queue consume the whole
// pool, so even cold-destination cells are dropped; the per-output cap
// keeps cold loss at (near) zero while the hot output saturates either
// way.
func TestHotspotHogging(t *testing.T) {
	const n, buf = 16, 128
	const hot = 3
	cfg := traffic.Config{Kind: traffic.Hotspot, N: n, Load: 0.7, HotFrac: 0.4, HotPort: hot, Seed: 73}

	plain := NewSharedBuffer(n, buf)
	g1 := gen(t, cfg)
	Run(plain, g1, 10_000, 300_000)

	capped := NewCappedSharedBuffer(n, buf, buf/4)
	g2 := gen(t, cfg)
	Run(capped, g2, 10_000, 300_000)

	coldLoss := func(m *Metrics) float64 {
		var off, drop int64
		for d := 0; d < n; d++ {
			if d == hot {
				continue
			}
			if d < len(m.OfferedTo) {
				off += m.OfferedTo[d]
				drop += m.DroppedTo[d]
			}
		}
		if off == 0 {
			return 0
		}
		return float64(drop) / float64(off)
	}
	plainCold := coldLoss(plain.Metrics())
	cappedCold := coldLoss(capped.Metrics())
	if plainCold == 0 {
		t.Fatal("hotspot did not hog the plain shared buffer; test not discriminating")
	}
	if cappedCold >= plainCold/10 {
		t.Fatalf("cap did not protect cold traffic: capped %v vs plain %v", cappedCold, plainCold)
	}
	// The hot output is oversubscribed (0.4·0.7·16 ≈ 4.5× its capacity):
	// it must lose heavily under both schemes.
	if plain.Metrics().LossTo(hot) < 0.5 || capped.Metrics().LossTo(hot) < 0.5 {
		t.Fatalf("hot output losses implausibly low: %v / %v",
			plain.Metrics().LossTo(hot), capped.Metrics().LossTo(hot))
	}
}

// TestCappedConservation: the capped variant conserves cells like every
// other architecture.
func TestCappedConservation(t *testing.T) {
	a := NewCappedSharedBuffer(8, 64, 16)
	g := gen(t, traffic.Config{Kind: traffic.Saturation, N: 8, Seed: 77})
	arrivals := make([]int, 8)
	for s := 0; s < 5_000; s++ {
		g.Step(arrivals)
		a.Step(arrivals)
		if err := Conserve(a); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
}

// TestLossToAccounting: per-destination counters agree with the totals.
func TestLossToAccounting(t *testing.T) {
	a := NewSharedBuffer(4, 8)
	g := gen(t, traffic.Config{Kind: traffic.Saturation, N: 4, Seed: 79})
	arrivals := make([]int, 4)
	for s := 0; s < 20_000; s++ {
		g.Step(arrivals)
		a.Step(arrivals)
	}
	m := a.Metrics()
	var off, drop int64
	for d := 0; d < 4; d++ {
		off += m.OfferedTo[d]
		drop += m.DroppedTo[d]
	}
	if off != m.Offered || drop != m.Dropped {
		t.Fatalf("per-destination sums (%d, %d) != totals (%d, %d)", off, drop, m.Offered, m.Dropped)
	}
	if m.LossTo(99) != 0 {
		t.Fatal("out-of-range LossTo should be 0")
	}
	if err := Conserve(a); err != nil {
		t.Fatal(err)
	}
}

// TestOccupancyMatchesAnalytic: the slot-level shared buffer's mean
// occupancy tracks the closed form n·(p + p·W) at moderate load.
func TestOccupancyMatchesAnalytic(t *testing.T) {
	const n, p = 16, 0.8
	a := NewSharedBuffer(n, 4096)
	g := gen(t, traffic.Config{Kind: traffic.Bernoulli, N: n, Load: p, Seed: 83})
	arrivals := make([]int, n)
	for s := 0; s < 20_000; s++ { // warm-up
		g.Step(arrivals)
		a.Step(arrivals)
	}
	var sum float64
	const slots = 300_000
	for s := 0; s < slots; s++ {
		g.Step(arrivals)
		a.Step(arrivals)
		sum += float64(a.Resident())
	}
	got := sum / slots
	// SharedBufferOccupancy counts cells in system including the one in
	// transmission (L = n·p·(W+1)); Resident() is sampled after the
	// departure phase, i.e. excluding the n·p in-service cells, so the
	// comparable quantity is n·p·W.
	want := analytic.SharedBufferOccupancy(n, p) - n*p
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("mean post-departure occupancy %v, analytic n·p·W = %v", got, want)
	}
	if err := Conserve(a); err != nil {
		t.Fatal(err)
	}
}
