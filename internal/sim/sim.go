// Package sim provides slot-level (cell-time) simulators of every switch
// buffering architecture discussed in §2 of the paper:
//
//	fig. 1 (low-throughput buffers):   input FIFO queueing, non-FIFO input
//	                                   buffering, higher-throughput fabric
//	                                   with output queues, crosspoint
//	                                   queueing;
//	fig. 2 (high-throughput buffers):  output queueing, shared buffering,
//	                                   block-crosspoint buffering;
//	plus the frame-based "input smoothing" of [HlKa88], the third column
//	of the buffer-sizing comparison quoted in §2.2.
//
// One slot is one cell time: in each slot every input receives at most one
// cell and every output transmits at most one cell. These are the models
// under which the quantitative results quoted in §2 were derived
// ([KaHM87], [HlKa88], [AOST93]), so they are the right granularity for
// reproducing them; the cycle-accurate word-level model of the pipelined
// memory itself lives in internal/core.
package sim

import (
	"fmt"

	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// NoArrival mirrors traffic.NoArrival for the arrivals slice.
const NoArrival = traffic.NoArrival

// Arch is a slot-level switch architecture model.
type Arch interface {
	// N returns the port count (N inputs and N outputs).
	N() int
	// Step advances the model one slot. arrivals[i] is the destination
	// of the cell arriving at input i this slot, or NoArrival. All
	// bookkeeping (drops, departures, latency) is recorded in Metrics.
	Step(arrivals []int)
	// Metrics exposes the accumulated measurements.
	Metrics() *Metrics
	// Resident returns the number of cells currently buffered, for
	// conservation checking.
	Resident() int
	// Name identifies the architecture in reports.
	Name() string
}

// item is a buffered cell at slot granularity.
type item struct {
	dst int
	t   int64 // arrival slot
}

// Metrics accumulates the standard measurements across all architectures.
type Metrics struct {
	// Slot is the current slot number (number of Step calls so far).
	Slot int64
	// Offered counts cells presented by the traffic source; Accepted
	// those actually buffered; Dropped those lost to full buffers;
	// Departed those transmitted.
	Offered, Accepted, Dropped, Departed int64
	// Latency records departure-arrival in slots (0 = departs in the
	// arrival slot).
	Latency *stats.Hist
	// OfferedTo and DroppedTo count per destination (lazily sized), for
	// per-class loss attribution (hotspot experiments).
	OfferedTo, DroppedTo []int64
	// measureStart is the slot measurement began; residentStart the cells
	// buffered at that moment (carried-over work for Conserve).
	measureStart  int64
	residentStart int64
}

func newMetrics() *Metrics {
	return &Metrics{Latency: stats.NewHist(4096)}
}

// StartMeasurement resets the counters after a warm-up period so that
// transient behaviour does not pollute steady-state estimates.
func (m *Metrics) StartMeasurement() {
	m.Offered, m.Accepted, m.Dropped, m.Departed = 0, 0, 0, 0
	m.OfferedTo, m.DroppedTo = nil, nil
	m.Latency = stats.NewHist(4096)
	m.measureStart = m.Slot
	m.residentStart = 0
}

func (m *Metrics) arrival(dst int, accepted bool) {
	m.Offered++
	m.perDst(dst)
	m.OfferedTo[dst]++
	if accepted {
		m.Accepted++
	} else {
		m.Dropped++
		m.DroppedTo[dst]++
	}
}

// perDst grows the per-destination counters to cover dst.
func (m *Metrics) perDst(dst int) {
	for len(m.OfferedTo) <= dst {
		m.OfferedTo = append(m.OfferedTo, 0)
		m.DroppedTo = append(m.DroppedTo, 0)
	}
}

// lateDrop records the loss of a cell that had been accepted earlier
// (frame-based schemes decide at the frame boundary).
func (m *Metrics) lateDrop(dst int) {
	m.Dropped++
	m.Accepted--
	m.perDst(dst)
	m.DroppedTo[dst]++
}

// LossTo returns the loss probability of cells addressed to dst.
func (m *Metrics) LossTo(dst int) float64 {
	if dst >= len(m.OfferedTo) || m.OfferedTo[dst] == 0 {
		return 0
	}
	return float64(m.DroppedTo[dst]) / float64(m.OfferedTo[dst])
}

func (m *Metrics) departure(enq int64) {
	m.Departed++
	m.Latency.Add(m.Slot - enq)
}

// MeasuredSlots returns the number of slots since measurement started.
func (m *Metrics) MeasuredSlots() int64 { return m.Slot - m.measureStart }

// Throughput returns departed cells per output port per slot.
func (m *Metrics) Throughput(n int) float64 {
	s := m.MeasuredSlots()
	if s == 0 {
		return 0
	}
	return float64(m.Departed) / float64(s) / float64(n)
}

// LossProb returns the fraction of offered cells dropped.
func (m *Metrics) LossProb() float64 {
	if m.Offered == 0 {
		return 0
	}
	return float64(m.Dropped) / float64(m.Offered)
}

// MeanLatency returns the mean departure latency in slots.
func (m *Metrics) MeanLatency() float64 { return m.Latency.Mean() }

// Result is the summary a Runner produces.
type Result struct {
	Arch        string
	N           int
	Slots       int64
	Throughput  float64
	LossProb    float64
	MeanLatency float64
	P99Latency  int64
	Offered     int64
	Departed    int64
	Dropped     int64
}

// String implements fmt.Stringer with a compact report line.
func (r Result) String() string {
	return fmt.Sprintf("%-14s n=%-3d thr=%.4f loss=%.2e lat=%.2f p99=%d",
		r.Arch, r.N, r.Throughput, r.LossProb, r.MeanLatency, r.P99Latency)
}

// Run drives arch with gen for warmup slots (discarded) followed by
// measured slots, and returns the summary. It panics if gen and arch
// disagree on the port count or if the run violates cell conservation
// (Conserve) — both programming errors.
func Run(arch Arch, gen *traffic.Generator, warmup, measured int64) Result {
	if gen.N() != arch.N() {
		panic(fmt.Sprintf("sim: generator has %d ports, arch %d", gen.N(), arch.N()))
	}
	arrivals := make([]int, arch.N())
	for s := int64(0); s < warmup; s++ {
		gen.Step(arrivals)
		arch.Step(arrivals)
	}
	arch.Metrics().StartMeasurement()
	arch.Metrics().residentStart = int64(arch.Resident())
	for s := int64(0); s < measured; s++ {
		gen.Step(arrivals)
		arch.Step(arrivals)
	}
	m := arch.Metrics()
	if err := Conserve(arch); err != nil {
		panic(err) // a model that loses or invents cells is a programming error
	}
	return Result{
		Arch:        arch.Name(),
		N:           arch.N(),
		Slots:       measured,
		Throughput:  m.Throughput(arch.N()),
		LossProb:    m.LossProb(),
		MeanLatency: m.MeanLatency(),
		P99Latency:  m.Latency.Quantile(0.99),
		Offered:     m.Offered,
		Departed:    m.Departed,
		Dropped:     m.Dropped,
	}
}
