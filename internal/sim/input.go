package sim

import (
	"fmt"

	"pipemem/internal/arb"
	"pipemem/internal/fifo"
)

// InputFIFO is classic FIFO input queueing (§2.1): one FIFO queue per
// input, only the head-of-line cell of each queue is eligible, contention
// for an output resolved by random selection among HOL contenders — the
// model of [KaHM87], saturating at 2-√2 for large n because of head-of-line
// blocking.
type InputFIFO struct {
	n       int
	queues  []*fifo.Ring[item]
	arbiter arb.Arbiter
	m       *Metrics
	// scratch
	req []bool
	hol []int
}

// NewInputFIFO builds an n×n FIFO input-queued switch with per-input
// buffer capacity bufCap (≤ 0 for unbounded) and the given HOL arbiter
// (nil for a seeded random arbiter, matching [KaHM87]).
func NewInputFIFO(n, bufCap int, arbiter arb.Arbiter) *InputFIFO {
	if arbiter == nil {
		arbiter = arb.NewRandom(0x1234)
	}
	s := &InputFIFO{
		n:       n,
		queues:  make([]*fifo.Ring[item], n),
		arbiter: arbiter,
		m:       newMetrics(),
		req:     make([]bool, n),
	}
	for i := range s.queues {
		s.queues[i] = fifo.NewRing[item](bufCap)
	}
	return s
}

// N implements Arch.
func (s *InputFIFO) N() int { return s.n }

// Name implements Arch.
func (s *InputFIFO) Name() string { return "input-fifo" }

// Metrics implements Arch.
func (s *InputFIFO) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *InputFIFO) Resident() int {
	r := 0
	for _, q := range s.queues {
		r += q.Len()
	}
	return r
}

// Step implements Arch.
func (s *InputFIFO) Step(arrivals []int) {
	// Arrivals first: a cell arriving into an empty queue may depart in
	// the same slot (cut-through at slot granularity), matching the
	// conventions of the analyses in §2.
	for i, d := range arrivals {
		if d == NoArrival {
			continue
		}
		s.m.arrival(d, s.queues[i].Push(item{dst: d, t: s.m.Slot}))
	}
	// HOL contention. The head-of-line view is snapshotted before any
	// departure: an input transmits at most one cell per slot, so a cell
	// uncovered by a pop must not compete until the next slot.
	if s.hol == nil {
		s.hol = make([]int, s.n)
	}
	for i := 0; i < s.n; i++ {
		s.hol[i] = NoArrival
		if h, ok := s.queues[i].Front(); ok {
			s.hol[i] = h.dst
		}
	}
	for o := 0; o < s.n; o++ {
		for i := 0; i < s.n; i++ {
			s.req[i] = s.hol[i] == o
		}
		if w := s.arbiter.Pick(s.req); w != arb.None {
			it, _ := s.queues[w].Pop()
			s.m.departure(it.t)
		}
	}
	s.m.Slot++
}

// VOQ is non-FIFO input buffering (§2.1): each input holds one buffer
// shared by n virtual output queues (so no head-of-line blocking), a
// matching scheduler decides which input sends to which output in each
// slot, and "only one output port is allowed to use each buffer at any
// given time". This is the architecture [AOST93], [TaCh93], and [LaSe95]
// schedule, and the comparison column of E4.
type VOQ struct {
	n       int
	voq     [][]*fifo.Ring[item] // voq[i][o]
	perIn   []int                // cells buffered at input i
	bufCap  int                  // per-input capacity (≤0 unbounded)
	matcher arb.Matcher
	m       *Metrics
	// scratch
	req   [][]bool
	match []int
}

// NewVOQ builds an n×n non-FIFO input-buffered switch: per-input buffer
// capacity bufCap shared across that input's virtual output queues, and
// the given matching scheduler (nil for iSLIP with 4 iterations).
func NewVOQ(n, bufCap int, matcher arb.Matcher) *VOQ {
	if matcher == nil {
		matcher = arb.NewISLIP(n, 0)
	}
	s := &VOQ{
		n:       n,
		voq:     make([][]*fifo.Ring[item], n),
		perIn:   make([]int, n),
		bufCap:  bufCap,
		matcher: matcher,
		m:       newMetrics(),
		req:     make([][]bool, n),
		match:   make([]int, n),
	}
	for i := range s.voq {
		s.voq[i] = make([]*fifo.Ring[item], n)
		s.req[i] = make([]bool, n)
		for o := range s.voq[i] {
			s.voq[i][o] = fifo.NewRing[item](0)
		}
	}
	return s
}

// N implements Arch.
func (s *VOQ) N() int { return s.n }

// Name implements Arch.
func (s *VOQ) Name() string { return "voq-input" }

// Metrics implements Arch.
func (s *VOQ) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *VOQ) Resident() int {
	r := 0
	for _, c := range s.perIn {
		r += c
	}
	return r
}

// Step implements Arch.
func (s *VOQ) Step(arrivals []int) {
	for i, d := range arrivals {
		if d == NoArrival {
			continue
		}
		if s.bufCap > 0 && s.perIn[i] >= s.bufCap {
			s.m.arrival(d, false)
			continue
		}
		s.voq[i][d].Push(item{dst: d, t: s.m.Slot})
		s.perIn[i]++
		s.m.arrival(d, true)
	}
	for i := 0; i < s.n; i++ {
		for o := 0; o < s.n; o++ {
			s.req[i][o] = s.voq[i][o].Len() > 0
		}
	}
	s.matcher.Match(s.req, s.match)
	for i, o := range s.match {
		if o == arb.None {
			continue
		}
		it, ok := s.voq[i][o].Pop()
		if !ok {
			panic(fmt.Sprintf("sim: matcher granted empty VOQ (%d,%d)", i, o))
		}
		s.perIn[i]--
		s.m.departure(it.t)
	}
	s.m.Slot++
}

// InputSmoothing is the frame-based scheme of [HlKa88] quoted in §2.2's
// buffer-sizing comparison: each input accumulates a frame of b cells
// (b slots); at the frame boundary all n·b cells are offered to the
// fabric at once, each output accepts at most b of them (transmitting
// them during the next frame), and the excess is lost. It is open-loop —
// no queueing carries over between frames — which is why it needs ~80
// cells per input where shared buffering needs 5.4 per output.
type InputSmoothing struct {
	n     int
	frame int // b, slots per frame and per-input buffer capacity
	phase int
	// pending[i] holds the cells input i accumulated this frame.
	pending [][]item
	// outbox[o] holds cells accepted for output o, departing one per
	// slot during the following frame.
	outbox []*fifo.Ring[item]
	m      *Metrics
}

// NewInputSmoothing builds the [HlKa88] input-smoothing model with frame
// (and per-input buffer) size b.
func NewInputSmoothing(n, b int) *InputSmoothing {
	s := &InputSmoothing{
		n:       n,
		frame:   b,
		pending: make([][]item, n),
		outbox:  make([]*fifo.Ring[item], n),
		m:       newMetrics(),
	}
	for o := range s.outbox {
		s.outbox[o] = fifo.NewRing[item](b)
	}
	return s
}

// N implements Arch.
func (s *InputSmoothing) N() int { return s.n }

// Name implements Arch.
func (s *InputSmoothing) Name() string { return "input-smoothing" }

// Metrics implements Arch.
func (s *InputSmoothing) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *InputSmoothing) Resident() int {
	r := 0
	for _, p := range s.pending {
		r += len(p)
	}
	for _, q := range s.outbox {
		r += q.Len()
	}
	return r
}

// Step implements Arch.
func (s *InputSmoothing) Step(arrivals []int) {
	for i, d := range arrivals {
		if d == NoArrival {
			continue
		}
		// The per-input buffer is exactly one frame deep; at one arrival
		// per slot it cannot overflow, so arrivals are always accepted.
		s.pending[i] = append(s.pending[i], item{dst: d, t: s.m.Slot})
		s.m.arrival(d, true)
	}
	// Departures: each output transmits one cell from the previous
	// frame's acceptance.
	for o := 0; o < s.n; o++ {
		if it, ok := s.outbox[o].Pop(); ok {
			s.m.departure(it.t)
		}
	}
	s.phase++
	if s.phase == s.frame {
		s.phase = 0
		// Frame boundary: offer everything; each output accepts up to b.
		for i := range s.pending {
			for _, it := range s.pending[i] {
				if !s.outbox[it.dst].Push(it) {
					// Output already holds b cells for next frame: loss.
					s.m.lateDrop(it.dst)
				}
			}
			s.pending[i] = s.pending[i][:0]
		}
	}
	s.m.Slot++
}
