package sim

import (
	"pipemem/internal/fifo"
)

// CappedSharedBuffer is shared buffering with a per-output occupancy
// limit: no single output's queue may hold more than OutCap cells even
// when the shared pool has room.
//
// It addresses the classic weakness of a pure shared buffer that the
// paper's §2.2 sizing numbers implicitly assume away (uniform traffic): a
// hotspot output can monopolize the whole pool, so cells for *cold*
// outputs — which could have departed immediately — are dropped too. A
// per-output threshold keeps the sharing advantage for well-behaved
// traffic while bounding the hog. (PRIZMA-class chips shipped exactly
// such output thresholds; the mechanism is part of the §3.3 "buffer
// management circuits", orthogonal to the pipelined datapath.)
type CappedSharedBuffer struct {
	n      int
	outCap int
	queues *fifo.MultiQueue
	items  []item
	free   *fifo.FreeList
	m      *Metrics
}

// NewCappedSharedBuffer builds an n×n shared buffer of bufCap total cells
// with at most outCap cells queued per output.
func NewCappedSharedBuffer(n, bufCap, outCap int) *CappedSharedBuffer {
	return &CappedSharedBuffer{
		n:      n,
		outCap: outCap,
		queues: fifo.NewMultiQueue(n, bufCap),
		items:  make([]item, bufCap),
		free:   fifo.NewFreeList(bufCap),
		m:      newMetrics(),
	}
}

// N implements Arch.
func (s *CappedSharedBuffer) N() int { return s.n }

// Name implements Arch.
func (s *CappedSharedBuffer) Name() string { return "shared-capped" }

// Metrics implements Arch.
func (s *CappedSharedBuffer) Metrics() *Metrics { return s.m }

// Resident implements Arch.
func (s *CappedSharedBuffer) Resident() int { return s.queues.Total() }

// Step implements Arch.
func (s *CappedSharedBuffer) Step(arrivals []int) {
	for _, d := range arrivals {
		if d == NoArrival {
			continue
		}
		if s.queues.Len(d) >= s.outCap {
			s.m.arrival(d, false) // the hog pays, not the pool
			continue
		}
		addr, ok := s.free.Get()
		if !ok {
			s.m.arrival(d, false)
			continue
		}
		s.items[addr] = item{dst: d, t: s.m.Slot}
		s.queues.Push(d, addr)
		s.m.arrival(d, true)
	}
	for o := 0; o < s.n; o++ {
		if addr, ok := s.queues.Pop(o); ok {
			s.m.departure(s.items[addr].t)
			s.free.Put(addr)
		}
	}
	s.m.Slot++
}
