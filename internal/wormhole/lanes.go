package wormhole

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"pipemem/internal/cell"
	"pipemem/internal/fifo"
	"pipemem/internal/stats"
)

// This file adds virtual-channel lanes to the wormhole fabric — the other
// half of the [Dally90] figure §2.1 quotes: the paper cites the "1 lane"
// curve (saturation ≈25%); Dally's own contribution is that splitting
// each physical channel's buffer into multiple lanes lifts that
// saturation substantially, because a blocked message no longer
// monopolizes the physical channels it holds. Reproducing the lane effect
// completes the quoted figure.
//
// Model: each input line of each stage has L lanes, each a private flit
// FIFO of BufferFlits/L flits (constant total storage, as in the cited
// study). A head flit entering a switch claims a free lane on the
// *downstream* input; the physical inter-stage channel is multiplexed
// flit-by-flit among the lanes that can advance.

// LaneConfig parameterizes the multi-lane network.
type LaneConfig struct {
	// Terminals, BufferFlits, MsgFlits, Load, Saturate, Seed as in
	// Config; BufferFlits is the total per input line, divided evenly
	// among lanes.
	Terminals   int
	BufferFlits int
	MsgFlits    int
	Lanes       int
	Load        float64
	Saturate    bool
	Seed        uint64
}

// Validate reports whether the configuration is usable.
func (c LaneConfig) Validate() error {
	base := Config{Terminals: c.Terminals, BufferFlits: c.BufferFlits,
		MsgFlits: c.MsgFlits, Load: c.Load, Saturate: c.Saturate}
	if err := base.Validate(); err != nil {
		return err
	}
	if c.Lanes < 1 || c.Lanes > c.BufferFlits {
		return fmt.Errorf("wormhole: %d lanes for %d buffer flits", c.Lanes, c.BufferFlits)
	}
	return nil
}

// laneState is one virtual channel of one input line.
type laneState struct {
	buf *fifo.Ring[cell.Flit]
	// msg is the message that owns this lane (0 = free).
	msg uint64
	// out is the output line the owning message routes to (valid while
	// msg ≠ 0 and the head has been routed).
	out int
}

// LaneNet is the multi-lane wormhole network.
type LaneNet struct {
	cfg    LaneConfig
	n      int
	stages int
	lanes  int

	cycle int64

	// lane[t][l][v]
	lane [][][]laneState
	// holdMsg[t][m] is the message whose flit crossed output line m last
	// cycle… physical channels are not held across flits with lanes:
	// each flit arbitrates. rr rotates fairness.
	rr [][]uint8

	src []*fifo.Ring[cell.Flit]

	rng    *rand.Rand
	nextID uint64
	sent   []bool

	injected, delivered int64
	msgLatency          *stats.Hist
	expect              map[uint64]expectState
}

// NewLanes builds the multi-lane network.
func NewLanes(cfg LaneConfig) (*LaneNet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Terminals
	s := bits.TrailingZeros(uint(n))
	per := cfg.BufferFlits / cfg.Lanes
	net := &LaneNet{
		cfg: cfg, n: n, stages: s, lanes: cfg.Lanes,
		lane:       make([][][]laneState, s),
		rr:         make([][]uint8, s),
		src:        make([]*fifo.Ring[cell.Flit], n),
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
		sent:       make([]bool, n),
		msgLatency: stats.NewHist(1 << 14),
		expect:     make(map[uint64]expectState),
	}
	for t := 0; t < s; t++ {
		net.lane[t] = make([][]laneState, n)
		net.rr[t] = make([]uint8, n)
		for l := 0; l < n; l++ {
			net.lane[t][l] = make([]laneState, cfg.Lanes)
			for v := range net.lane[t][l] {
				net.lane[t][l][v].buf = fifo.NewRing[cell.Flit](per)
			}
		}
	}
	for l := 0; l < n; l++ {
		net.src[l] = fifo.NewRing[cell.Flit](0)
	}
	return net, nil
}

// Delivered returns total ejected flits.
func (w *LaneNet) Delivered() int64 { return w.delivered }

// MsgLatency returns the message latency histogram.
func (w *LaneNet) MsgLatency() *stats.Hist { return w.msgLatency }

func (w *LaneNet) bit(t int) int { return w.stages - 1 - t }

// Step advances one cycle.
func (w *LaneNet) Step() error {
	for t := w.stages - 1; t >= 0; t-- {
		b := w.bit(t)
		for l := range w.sent {
			w.sent[l] = false
		}
		for m := 0; m < w.n; m++ {
			if err := w.moveOnOutput(t, m, b); err != nil {
				return err
			}
		}
	}
	for l := 0; l < w.n; l++ {
		w.refill(l)
		// Injection claims a free lane at stage 0.
		if f, ok := w.src[l].Front(); ok {
			if f.Kind.IsHead() {
				if v := w.freeLane(0, l); v >= 0 {
					w.src[l].Pop()
					ln := &w.lane[0][l][v]
					ln.msg = f.Msg
					ln.buf.Push(f)
					w.injected++
				}
			} else if v, ok := w.downLaneOf(0, l, f.Msg); ok {
				// Body/tail follows the head's lane if space remains.
				if ln := &w.lane[0][l][v]; !ln.buf.Full() {
					w.src[l].Pop()
					ln.buf.Push(f)
					w.injected++
				}
			}
		}
	}
	w.cycle++
	return nil
}

// freeLane returns a free lane index at (stage, line), or -1.
func (w *LaneNet) freeLane(t, l int) int {
	for v := range w.lane[t][l] {
		ln := &w.lane[t][l][v]
		if ln.msg == 0 && ln.buf.Len() == 0 {
			return v
		}
	}
	return -1
}

// moveOnOutput advances at most one flit across the physical output line
// m of stage t, multiplexing its lanes round-robin.
func (w *LaneNet) moveOnOutput(t, m, b int) error {
	l0, l1 := m, m^(1<<b)
	inputs := [2]int{l0, l1}
	wantBit := (m >> b) & 1

	// Candidate lanes: any lane of either input whose front flit routes
	// to this output and can advance downstream.
	type cand struct{ l, v int }
	var cands []cand
	for _, l := range inputs {
		if w.sent[l] {
			continue
		}
		for v := range w.lane[t][l] {
			ln := &w.lane[t][l][v]
			f, ok := ln.buf.Front()
			if !ok {
				continue
			}
			if f.Kind.IsHead() {
				if (f.Dst>>b)&1 != wantBit {
					continue
				}
				// A head needs a free downstream lane (or ejection).
				if t+1 < w.stages && w.freeLane(t+1, m) < 0 {
					continue
				}
			} else {
				// Body/tail follows its message's downstream lane.
				if ln.out != m {
					continue
				}
				if t+1 < w.stages {
					dv, ok := w.downLaneOf(t+1, m, f.Msg)
					if !ok || w.lane[t+1][m][dv].buf.Full() {
						continue
					}
				}
			}
			cands = append(cands, cand{l, v})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	pick := cands[int(w.rr[t][m])%len(cands)]
	w.rr[t][m]++

	ln := &w.lane[t][pick.l][pick.v]
	f, _ := ln.buf.Pop()
	w.sent[pick.l] = true
	if f.Kind.IsHead() {
		ln.msg = f.Msg
		ln.out = m
	}
	if f.Kind.IsTail() {
		ln.msg = 0
		ln.out = 0
	}
	if t+1 < w.stages {
		if f.Kind.IsHead() {
			dv := w.freeLane(t+1, m)
			dl := &w.lane[t+1][m][dv]
			dl.msg = f.Msg
			dl.buf.Push(f)
		} else {
			dv, _ := w.downLaneOf(t+1, m, f.Msg)
			w.lane[t+1][m][dv].buf.Push(f)
		}
		return nil
	}
	return w.eject(m, f)
}

// downLaneOf finds the lane message msg occupies at (stage, line).
func (w *LaneNet) downLaneOf(t, l int, msg uint64) (int, bool) {
	for v := range w.lane[t][l] {
		if w.lane[t][l][v].msg == msg {
			return v, true
		}
	}
	return 0, false
}

// eject mirrors Net.eject.
func (w *LaneNet) eject(m int, f cell.Flit) error {
	if f.Dst != m {
		return fmt.Errorf("wormhole: flit of message %d for %d ejected at %d", f.Msg, f.Dst, m)
	}
	st, ok := w.expect[f.Msg]
	if f.Kind.IsHead() {
		if ok {
			return fmt.Errorf("wormhole: duplicate head %d", f.Msg)
		}
		st = expectState{dst: f.Dst}
	} else if !ok {
		return fmt.Errorf("wormhole: body of unknown message %d", f.Msg)
	}
	if f.Index != st.next {
		return fmt.Errorf("wormhole: message %d flit %d out of order (want %d)", f.Msg, f.Index, st.next)
	}
	st.next++
	w.delivered++
	if f.Kind.IsTail() {
		delete(w.expect, f.Msg)
		w.msgLatency.Add(w.cycle - f.Inject)
	} else {
		w.expect[f.Msg] = st
	}
	return nil
}

func (w *LaneNet) refill(l int) {
	switch {
	case w.cfg.Saturate:
		if w.src[l].Len() == 0 {
			w.newMessage(l)
		}
	default:
		if w.rng.Float64() < w.cfg.Load/float64(w.cfg.MsgFlits) {
			w.newMessage(l)
		}
	}
}

func (w *LaneNet) newMessage(l int) {
	w.nextID++
	dst := w.rng.IntN(w.n)
	for _, f := range cell.Message(w.nextID, dst, w.cfg.MsgFlits, w.cycle) {
		w.src[l].Push(f)
	}
}

// RunLanes advances the network warmup+measure cycles and reports the
// measured throughput.
func RunLanes(w *LaneNet, warmup, measure int64) (Result, error) {
	for i := int64(0); i < warmup; i++ {
		if err := w.Step(); err != nil {
			return Result{}, err
		}
	}
	start := w.delivered
	for i := int64(0); i < measure; i++ {
		if err := w.Step(); err != nil {
			return Result{}, err
		}
	}
	d := w.delivered - start
	return Result{
		Cycles:         measure,
		Throughput:     float64(d) / float64(measure) / float64(w.n),
		MeanMsgLatency: w.msgLatency.Mean(),
		DeliveredFlits: d,
	}, nil
}
