// Package wormhole is a flit-level simulator of a multistage network of
// input-buffered wormhole switches, reproducing the regime §2.1 of the
// paper quotes from [Dally90, fig. 8, 1 lane]: "when the traffic is bursty
// and the bursts are larger than the buffers — for example with multi-flit
// packets in wormhole routing — saturation occurs sooner: … with 20-flit
// messages and 16-flit buffers, simulation showed saturation at about 25%
// of link capacity".
//
// The fabric is a 2-ary butterfly: N = 2^s terminals, s stages of 2×2
// switches with one FIFO flit buffer per switch input (FIFO input
// queueing, the fig. 1 architecture). A message's head flit reserves each
// channel it crosses and the tail releases it; when a message longer than
// a buffer blocks, it keeps channels held across multiple switches and
// head-of-line blocking compounds into tree saturation — the mechanism
// behind the early collapse.
//
// The original figure is a torus; the butterfly keeps the two properties
// that matter for the quoted point (input-FIFO buffering and messages
// longer than buffers) while staying single-chip-fabric shaped, per the
// substitution note in DESIGN.md.
package wormhole

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"pipemem/internal/cell"
	"pipemem/internal/fifo"
	"pipemem/internal/stats"
)

// Config parameterizes the network.
type Config struct {
	// Terminals is N, a power of two ≥ 4; the network has log2(N) stages.
	Terminals int
	// BufferFlits is the per-switch-input FIFO capacity (the 16 of the
	// quoted experiment).
	BufferFlits int
	// MsgFlits is the message length L (the 20 of the quoted experiment).
	MsgFlits int
	// Load is the offered load in flits per cycle per terminal, in
	// (0, 1]. Ignored when Saturate is set.
	Load float64
	// Saturate keeps every source backlogged, for saturation-throughput
	// measurements.
	Saturate bool
	// Seed seeds the PRNG.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Terminals < 4 || c.Terminals&(c.Terminals-1) != 0 {
		return fmt.Errorf("wormhole: terminals = %d, need a power of two ≥ 4", c.Terminals)
	}
	if c.BufferFlits < 1 {
		return fmt.Errorf("wormhole: buffer of %d flits", c.BufferFlits)
	}
	if c.MsgFlits < 1 {
		return fmt.Errorf("wormhole: messages of %d flits", c.MsgFlits)
	}
	if !c.Saturate && (c.Load <= 0 || c.Load > 1) {
		return fmt.Errorf("wormhole: load %v out of (0,1]", c.Load)
	}
	return nil
}

// Net is the simulated network.
type Net struct {
	cfg    Config
	n      int // terminals
	stages int

	cycle int64

	// buf[t][l] is the input FIFO of line l at stage t.
	buf [][]*fifo.Ring[cell.Flit]
	// hold[t][m] is the message currently holding output line m of stage
	// t, or 0 when free.
	hold [][]uint64
	// rr[t][m] is the round-robin pointer (0/1) for output line m.
	rr [][]uint8

	// src[l] is the (unbounded) source queue of terminal l; in Saturate
	// mode it is refilled on demand.
	src []*fifo.Ring[cell.Flit]

	rng    *rand.Rand
	nextID uint64
	// sent[l] marks that input line l of the stage being processed has
	// already forwarded a flit this cycle (one flit per input per cycle).
	sent []bool

	injected, delivered int64 // flits
	msgLatency          *stats.Hist
	expect              map[uint64]expectState
}

// expectState tracks in-order delivery per message for integrity checking.
type expectState struct {
	dst  int
	next int
}

// New builds the network.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Terminals
	s := bits.TrailingZeros(uint(n))
	net := &Net{
		cfg: cfg, n: n, stages: s,
		buf:        make([][]*fifo.Ring[cell.Flit], s),
		hold:       make([][]uint64, s),
		rr:         make([][]uint8, s),
		src:        make([]*fifo.Ring[cell.Flit], n),
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0x6c62272e07bb0142)),
		msgLatency: stats.NewHist(1 << 14),
		expect:     make(map[uint64]expectState),
	}
	for t := 0; t < s; t++ {
		net.buf[t] = make([]*fifo.Ring[cell.Flit], n)
		net.hold[t] = make([]uint64, n)
		net.rr[t] = make([]uint8, n)
		for l := 0; l < n; l++ {
			net.buf[t][l] = fifo.NewRing[cell.Flit](cfg.BufferFlits)
		}
	}
	for l := 0; l < n; l++ {
		net.src[l] = fifo.NewRing[cell.Flit](0)
	}
	net.sent = make([]bool, n)
	return net, nil
}

// Cycle returns the current cycle.
func (w *Net) Cycle() int64 { return w.cycle }

// Delivered returns the total flits ejected so far.
func (w *Net) Delivered() int64 { return w.delivered }

// Injected returns the total flits accepted into stage-0 buffers so far.
func (w *Net) Injected() int64 { return w.injected }

// MsgLatency returns the message latency histogram (inject→tail ejection).
func (w *Net) MsgLatency() *stats.Hist { return w.msgLatency }

// bit returns the destination bit examined at stage t.
func (w *Net) bit(t int) int { return w.stages - 1 - t }

// Step advances one cycle. Stages are processed from the ejection side
// back to injection so a flit can advance one hop per cycle through
// freshly freed space (standard wormhole pipelining).
func (w *Net) Step() error {
	// Ejection + inter-stage movement, downstream first.
	for t := w.stages - 1; t >= 0; t-- {
		b := w.bit(t)
		for l := range w.sent {
			w.sent[l] = false
		}
		for m := 0; m < w.n; m++ {
			if err := w.moveOnOutput(t, m, b); err != nil {
				return err
			}
		}
	}
	// Injection.
	for l := 0; l < w.n; l++ {
		w.refill(l)
		if f, ok := w.src[l].Front(); ok && !w.buf[0][l].Full() {
			w.src[l].Pop()
			w.buf[0][l].Push(f)
			w.injected++
		}
	}
	w.cycle++
	return nil
}

// moveOnOutput advances at most one flit across output line m of stage t.
func (w *Net) moveOnOutput(t, m, b int) error {
	// The two candidate input lines of the switch owning output m are m
	// and m with bit b flipped.
	l0, l1 := m, m^(1<<b)
	holder := w.hold[t][m]

	pickFrom := -1
	if holder != 0 {
		// The channel is reserved: only the holding message's flits may
		// cross. Find which input buffer fronts it.
		for _, l := range []int{l0, l1} {
			if w.sent[l] {
				continue
			}
			if f, ok := w.buf[t][l].Front(); ok && f.Msg == holder {
				pickFrom = l
				break
			}
		}
		if pickFrom == -1 {
			return nil // holder's next flit not at any front yet
		}
	} else {
		// Free channel: arbitrate among head flits routing to m.
		var cand [2]int
		nc := 0
		for _, l := range []int{l0, l1} {
			if w.sent[l] {
				continue
			}
			f, ok := w.buf[t][l].Front()
			if !ok || !f.Kind.IsHead() {
				continue
			}
			if w.route(f.Dst, b) == ((m>>b)&1 == 1) {
				cand[nc] = l
				nc++
			}
		}
		if nc == 0 {
			return nil
		}
		if nc == 1 {
			pickFrom = cand[0]
		} else {
			// Round-robin between the two inputs.
			pickFrom = cand[w.rr[t][m]&1]
			w.rr[t][m] ^= 1
		}
	}

	// Downstream space check.
	if t+1 < w.stages {
		if w.buf[t+1][m].Full() {
			return nil
		}
	}
	f, _ := w.buf[t][pickFrom].Pop()
	w.sent[pickFrom] = true
	if f.Kind.IsHead() {
		w.hold[t][m] = f.Msg
	}
	if f.Kind.IsTail() {
		w.hold[t][m] = 0
	}
	if t+1 < w.stages {
		w.buf[t+1][m].Push(f)
		return nil
	}
	return w.eject(m, f)
}

// route reports whether dst requires the bit-b output value 1.
func (w *Net) route(dst, b int) bool { return (dst>>b)&1 == 1 }

// eject delivers a flit to terminal m, checking destination and order.
func (w *Net) eject(m int, f cell.Flit) error {
	if f.Dst != m {
		return fmt.Errorf("wormhole: flit of message %d for terminal %d ejected at %d", f.Msg, f.Dst, m)
	}
	st, ok := w.expect[f.Msg]
	if f.Kind.IsHead() {
		if ok {
			return fmt.Errorf("wormhole: duplicate head for message %d", f.Msg)
		}
		st = expectState{dst: f.Dst}
	} else if !ok {
		return fmt.Errorf("wormhole: body flit of unknown message %d", f.Msg)
	}
	if f.Index != st.next {
		return fmt.Errorf("wormhole: message %d flit %d ejected out of order (want %d)", f.Msg, f.Index, st.next)
	}
	st.next++
	w.delivered++
	if f.Kind.IsTail() {
		delete(w.expect, f.Msg)
		w.msgLatency.Add(w.cycle - f.Inject)
	} else {
		w.expect[f.Msg] = st
	}
	return nil
}

// refill tops up terminal l's source queue according to the traffic mode.
func (w *Net) refill(l int) {
	switch {
	case w.cfg.Saturate:
		if w.src[l].Len() == 0 {
			w.newMessage(l)
		}
	default:
		// Open loop: message starts are Bernoulli at rate Load/MsgFlits
		// per cycle, so offered flit load is Load.
		if w.rng.Float64() < w.cfg.Load/float64(w.cfg.MsgFlits) {
			w.newMessage(l)
		}
	}
}

func (w *Net) newMessage(l int) {
	w.nextID++
	dst := w.rng.IntN(w.n)
	for _, f := range cell.Message(w.nextID, dst, w.cfg.MsgFlits, w.cycle) {
		w.src[l].Push(f)
	}
}

// Result summarizes a run.
type Result struct {
	Cycles int64
	// Throughput is delivered flits per cycle per terminal — the
	// fraction of link capacity actually carried.
	Throughput float64
	// MeanMsgLatency is inject→tail in cycles.
	MeanMsgLatency float64
	DeliveredFlits int64
}

// Run advances the network for warmup+measure cycles and reports the
// throughput over the measurement window.
func Run(w *Net, warmup, measure int64) (Result, error) {
	for i := int64(0); i < warmup; i++ {
		if err := w.Step(); err != nil {
			return Result{}, err
		}
	}
	startDelivered := w.delivered
	for i := int64(0); i < measure; i++ {
		if err := w.Step(); err != nil {
			return Result{}, err
		}
	}
	d := w.delivered - startDelivered
	return Result{
		Cycles:         measure,
		Throughput:     float64(d) / float64(measure) / float64(w.n),
		MeanMsgLatency: w.msgLatency.Mean(),
		DeliveredFlits: d,
	}, nil
}
