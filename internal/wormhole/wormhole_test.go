package wormhole

import (
	"testing"

	"pipemem/internal/analytic"
)

func mustNet(t *testing.T, cfg Config) *Net {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestValidate(t *testing.T) {
	if err := (Config{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Saturate: true}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, c := range []Config{
		{Terminals: 3, BufferFlits: 4, MsgFlits: 4, Load: 0.5},
		{Terminals: 2, BufferFlits: 4, MsgFlits: 4, Load: 0.5},
		{Terminals: 8, BufferFlits: 0, MsgFlits: 4, Load: 0.5},
		{Terminals: 8, BufferFlits: 4, MsgFlits: 0, Load: 0.5},
		{Terminals: 8, BufferFlits: 4, MsgFlits: 4, Load: 0},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestDeliveryCorrectness runs moderate load and relies on the built-in
// checks (right terminal, in-order, no duplicates): Step errors on any
// violation.
func TestDeliveryCorrectness(t *testing.T) {
	w := mustNet(t, Config{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Load: 0.2, Seed: 3})
	for i := 0; i < 50_000; i++ {
		if err := w.Step(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if w.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
	// Flit conservation: delivered ≤ injected, difference bounded by
	// network capacity.
	inNet := w.Injected() - w.Delivered()
	if inNet < 0 {
		t.Fatalf("delivered %d > injected %d", w.Delivered(), w.Injected())
	}
	maxCap := int64(16 * 4 * 16) // stages × buffer × lines
	if inNet > maxCap {
		t.Fatalf("%d flits unaccounted (> capacity %d)", inNet, maxCap)
	}
}

// TestLowLoadDeliversOffered: far below saturation the network must carry
// what is offered.
func TestLowLoadDeliversOffered(t *testing.T) {
	w := mustNet(t, Config{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Load: 0.1, Seed: 5})
	for i := 0; i < 20_000; i++ {
		if err := w.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(w, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 0.09 || res.Throughput > 0.11 {
		t.Fatalf("throughput %v at offered 0.1", res.Throughput)
	}
}

// TestDallySaturation reproduces the §2.1 quote's shape: 20-flit messages
// with 16-flit buffers on a deep input-buffered wormhole fabric saturate
// around a quarter-to-two-fifths of link capacity — far below both 100%
// and the 2-√2 HOL bound for fixed cells. (The quoted 25% figure is from a
// torus; the butterfly substitution lands at ≈0.35–0.40 at 256 terminals,
// same mechanism and direction — see DESIGN.md.)
func TestDallySaturation(t *testing.T) {
	w := mustNet(t, Config{Terminals: 256, BufferFlits: 16, MsgFlits: 20, Saturate: true, Seed: 7})
	res, err := Run(w, 30_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 0.25 || res.Throughput > 0.47 {
		t.Fatalf("saturation throughput %v, want ≈0.25–0.45 (Dally90 regime)", res.Throughput)
	}
	if res.Throughput >= analytic.HOLSaturationAsymptotic {
		t.Fatalf("saturation %v not below the HOL bound %v", res.Throughput, analytic.HOLSaturationAsymptotic)
	}
}

// TestShortMessagesSaturateHigher: the ablation — when bursts fit in the
// buffers (messages ≤ buffer), saturation recovers substantially,
// confirming that the early collapse is the bursts-exceed-buffers effect.
func TestShortMessagesSaturateHigher(t *testing.T) {
	long := mustNet(t, Config{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Saturate: true, Seed: 9})
	short := mustNet(t, Config{Terminals: 16, BufferFlits: 16, MsgFlits: 4, Saturate: true, Seed: 9})
	resLong, err := Run(long, 50_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	resShort, err := Run(short, 50_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if resShort.Throughput <= resLong.Throughput+0.05 {
		t.Fatalf("short-message saturation %v not clearly above long-message %v",
			resShort.Throughput, resLong.Throughput)
	}
}

// TestBiggerBuffersHelp: doubling buffers beyond the message length lifts
// saturation.
func TestBiggerBuffersHelp(t *testing.T) {
	small := mustNet(t, Config{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Saturate: true, Seed: 11})
	big := mustNet(t, Config{Terminals: 16, BufferFlits: 64, MsgFlits: 20, Saturate: true, Seed: 11})
	resSmall, err := Run(small, 50_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := Run(big, 50_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if resBig.Throughput <= resSmall.Throughput {
		t.Fatalf("64-flit buffers (%v) not above 16-flit buffers (%v)",
			resBig.Throughput, resSmall.Throughput)
	}
}

// TestDeterminism: same seed, same result.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		w := mustNet(t, Config{Terminals: 8, BufferFlits: 8, MsgFlits: 10, Load: 0.3, Seed: 13})
		res, err := Run(w, 5_000, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
