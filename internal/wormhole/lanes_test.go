package wormhole

import (
	"testing"
)

func mustLanes(t *testing.T, cfg LaneConfig) *LaneNet {
	t.Helper()
	w, err := NewLanes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLaneValidate(t *testing.T) {
	good := LaneConfig{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Lanes: 4, Saturate: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, c := range []LaneConfig{
		{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Lanes: 0, Saturate: true},
		{Terminals: 16, BufferFlits: 4, MsgFlits: 20, Lanes: 8, Saturate: true},
		{Terminals: 3, BufferFlits: 16, MsgFlits: 20, Lanes: 2, Saturate: true},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestLaneDeliveryCorrectness: the built-in order/destination checks must
// hold under load (Step errors otherwise).
func TestLaneDeliveryCorrectness(t *testing.T) {
	w := mustLanes(t, LaneConfig{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Lanes: 4, Load: 0.3, Seed: 3})
	for i := 0; i < 50_000; i++ {
		if err := w.Step(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if w.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestLanesLiftSaturation reproduces the other half of [Dally90, fig. 8]:
// at the quoted operating point (20-flit messages, 16 buffer flits per
// input) adding lanes raises saturation throughput substantially at
// constant total storage.
func TestLanesLiftSaturation(t *testing.T) {
	thr := map[int]float64{}
	for _, lanes := range []int{1, 2, 4} {
		w := mustLanes(t, LaneConfig{Terminals: 64, BufferFlits: 16, MsgFlits: 20, Lanes: lanes, Saturate: true, Seed: 7})
		res, err := RunLanes(w, 20_000, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		thr[lanes] = res.Throughput
	}
	if thr[2] <= thr[1]*1.05 {
		t.Fatalf("2 lanes (%.3f) not clearly above 1 lane (%.3f)", thr[2], thr[1])
	}
	if thr[4] <= thr[2] {
		t.Fatalf("4 lanes (%.3f) not above 2 lanes (%.3f)", thr[4], thr[2])
	}
}

// TestSingleLaneMatchesBaseModel: with one lane, the lane model's
// saturation sits near the base model's (the arbitration details differ
// slightly, so allow a band).
func TestSingleLaneMatchesBaseModel(t *testing.T) {
	lw := mustLanes(t, LaneConfig{Terminals: 64, BufferFlits: 16, MsgFlits: 20, Lanes: 1, Saturate: true, Seed: 9})
	lres, err := RunLanes(lw, 20_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	bw := mustNet(t, Config{Terminals: 64, BufferFlits: 16, MsgFlits: 20, Saturate: true, Seed: 9})
	bres, err := Run(bw, 20_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := bres.Throughput*0.8, bres.Throughput*1.25
	if lres.Throughput < lo || lres.Throughput > hi {
		t.Fatalf("1-lane model %.3f outside [%.3f, %.3f] of base model %.3f",
			lres.Throughput, lo, hi, bres.Throughput)
	}
}

// TestLaneLowLoadCarriesOffered.
func TestLaneLowLoadCarriesOffered(t *testing.T) {
	w := mustLanes(t, LaneConfig{Terminals: 16, BufferFlits: 16, MsgFlits: 20, Lanes: 2, Load: 0.1, Seed: 11})
	res, err := RunLanes(w, 30_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 0.09 || res.Throughput > 0.11 {
		t.Fatalf("throughput %v at offered 0.1", res.Throughput)
	}
}

// TestLaneDeterminism.
func TestLaneDeterminism(t *testing.T) {
	run := func() Result {
		w := mustLanes(t, LaneConfig{Terminals: 16, BufferFlits: 16, MsgFlits: 10, Lanes: 2, Load: 0.3, Seed: 13})
		res, err := RunLanes(w, 5_000, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
