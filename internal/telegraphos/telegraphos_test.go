package telegraphos

import (
	"math"
	"math/rand/v2"
	"testing"

	"pipemem/internal/cell"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want ≈%v", name, got, want)
	}
}

// TestModelSpecs reproduces the published §4 figures for all three
// prototypes (E8).
func TestModelSpecs(t *testing.T) {
	t1 := TelegraphosI()
	approx(t, "T1 link rate", t1.LinkMbps(), 107, 1) // "107 Mbps/link"
	if t1.PacketBytes() != 8 || t1.Stages != 8 || t1.Ports != 4 {
		t.Errorf("T1 geometry wrong: %+v", t1)
	}

	t2 := TelegraphosII()
	approx(t, "T2 link rate", t2.LinkMbps(), 400, 0.01) // "400 Mbps"
	if t2.PacketBytes() != 16 || t2.Stages != 8 || t2.Ports != 4 {
		t.Errorf("T2 geometry wrong: %+v", t2)
	}

	t3 := TelegraphosIII()
	approx(t, "T3 link rate", t3.LinkMbps(), 1000, 0.01) // 1 Gb/s worst case
	approx(t, "T3 typical", t3.LinkGbpsTypical(), 1.6, 0.01)
	approx(t, "T3 buffer", t3.BufferKbit(), 64, 0.01) // 64 Kbit
	approx(t, "T3 aggregate", t3.AggregateGbps(), 16, 0.01)
	if t3.PacketBytes() != 32 || t3.Stages != 16 || t3.Ports != 8 {
		t.Errorf("T3 geometry wrong: %+v", t3)
	}
	if t3.Cells != 256 {
		t.Errorf("T3 capacity %d cells, want 256", t3.Cells)
	}

	if len(Models()) != 3 {
		t.Error("Models() must return the three prototypes")
	}
	if t3.String() == "" {
		t.Error("empty String()")
	}
}

func newPacket(m Model, rng *rand.Rand, seq, header uint64) *Packet {
	payload := make([]cell.Word, m.Stages-1)
	for i := range payload {
		payload[i] = cell.Word(rng.Uint64()).Mask(m.WordBits)
	}
	return &Packet{Header: header, Payload: payload, Seq: seq}
}

// TestRoutingTranslation: the RT block really routes by header.
func TestRoutingTranslation(t *testing.T) {
	m := TelegraphosII()
	s, err := NewSwitch(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoute(100, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoute(100, 99); err == nil {
		t.Fatal("out-of-range route accepted")
	}
	rng := rand.New(rand.NewPCG(1, 1))
	p := newPacket(m, rng, 1, 100)
	pkts := make([]*Packet, m.Ports)
	pkts[0] = p
	s.Tick(pkts)
	if s.PendingHeaders() != 1 {
		t.Fatalf("HM holds %d headers, want 1", s.PendingHeaders())
	}
	for i := 0; i < 4*m.Stages; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures", len(deps))
	}
	if deps[0].Output != 3 {
		t.Fatalf("departed on %d, want RT-translated 3", deps[0].Output)
	}
	if !deps[0].Cell.Equal(deps[0].Expected) {
		t.Fatal("packet corrupted")
	}
	if s.PendingHeaders() != 0 {
		t.Fatal("HM entry not reclaimed after departure")
	}
}

// TestCreditFlowControl: with zero credits nothing leaves; returning
// credits releases exactly that many packets ([KVES95]).
func TestCreditFlowControl(t *testing.T) {
	m := TelegraphosII()
	s, err := NewSwitch(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	// Send three packets to output 0 (header 0 routes to 0 by default).
	for j := 0; j < 3; j++ {
		pkts := make([]*Packet, m.Ports)
		pkts[0] = newPacket(m, rng, uint64(j+1), 0)
		s.Tick(pkts)
		for i := 1; i < m.Stages; i++ {
			s.Tick(nil)
		}
	}
	for i := 0; i < 6*m.Stages; i++ {
		s.Tick(nil)
	}
	// One credit: exactly one packet out, two parked in the buffer.
	if got := len(s.Drain()); got != 1 {
		t.Fatalf("%d departures with 1 credit, want 1", got)
	}
	if s.Credits(0) != 0 {
		t.Fatalf("credits = %d, want 0", s.Credits(0))
	}
	// Return one credit → exactly one more departure.
	s.ReturnCredit(0)
	for i := 0; i < 6*m.Stages; i++ {
		s.Tick(nil)
	}
	if got := len(s.Drain()); got != 1 {
		t.Fatalf("%d departures after 1 credit return, want 1", got)
	}
	// Return two credits → the last packet leaves; credits cap at max.
	s.ReturnCredit(0)
	s.ReturnCredit(0)
	for i := 0; i < 6*m.Stages; i++ {
		s.Tick(nil)
	}
	if got := len(s.Drain()); got != 1 {
		t.Fatalf("%d departures after returns, want 1", got)
	}
	if s.Credits(0) > 1 {
		t.Fatalf("credits %d exceed allowance 1", s.Credits(0))
	}
}

// TestCreditsBoundInFlight: under sustained pressure, departures per
// output never exceed credits granted.
func TestCreditsBoundInFlight(t *testing.T) {
	m := TelegraphosIII()
	const allowance = 4
	s, err := NewSwitch(m, allowance)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	var seq uint64
	departed := make([]int, m.Ports)
	credited := make([]int, m.Ports)
	for i := range credited {
		credited[i] = allowance
	}
	inFlight := make([]int, m.Ports) // cycles until input i free again
	for c := 0; c < 30_000; c++ {
		pkts := make([]*Packet, m.Ports)
		for i := range pkts {
			if inFlight[i] > 0 {
				inFlight[i]--
				continue
			}
			if rng.Float64() < 0.5 {
				seq++
				pkts[i] = newPacket(m, rng, seq, uint64(rng.IntN(m.Ports)))
				inFlight[i] = m.Stages - 1
			}
		}
		s.Tick(pkts)
		for _, d := range s.Drain() {
			departed[d.Output]++
		}
		// Downstream returns credits slowly (1 per output per 64 cycles).
		if c%64 == 0 {
			for o := 0; o < m.Ports; o++ {
				s.ReturnCredit(o)
				credited[o]++
			}
		}
		for o := 0; o < m.Ports; o++ {
			if departed[o] > credited[o] {
				t.Fatalf("cycle %d output %d: %d departures > %d credits", c, o, departed[o], credited[o])
			}
		}
	}
	total := 0
	for _, d := range departed {
		total += d
	}
	if total == 0 {
		t.Fatal("nothing departed")
	}
}

// TestAllModelsRunTraffic: each prototype's configuration drives cleanly
// at full admissible load (E8/E9 prerequisite).
func TestAllModelsRunTraffic(t *testing.T) {
	for _, m := range Models() {
		s, err := NewSwitch(m, 0)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		rng := rand.New(rand.NewPCG(7, 7))
		var seq uint64
		free := make([]int, m.Ports)
		delivered := 0
		for c := 0; c < 10_000; c++ {
			pkts := make([]*Packet, m.Ports)
			for i := range pkts {
				if free[i] > 0 {
					free[i]--
					continue
				}
				seq++
				// Rotating permutation headers → admissible full load.
				pkts[i] = newPacket(m, rng, seq, uint64((i+c/m.Stages)%m.Ports))
				free[i] = m.Stages - 1
			}
			s.Tick(pkts)
			for _, d := range s.Drain() {
				if !d.Cell.Equal(d.Expected) {
					t.Fatalf("%s: corruption", m.Name)
				}
				delivered++
			}
		}
		if delivered == 0 {
			t.Fatalf("%s: nothing delivered", m.Name)
		}
		if drops := s.Core().Counters().Get("drop-overrun"); drops != 0 {
			t.Fatalf("%s: %d drops at admissible load", m.Name, drops)
		}
	}
}
