package telegraphos

import (
	"math/rand/v2"
	"testing"

	"pipemem/internal/cell"
)

func vcPacket(m Model, rng *rand.Rand, seq, header uint64, vc int) *Packet {
	payload := make([]cell.Word, m.Stages-1)
	for i := range payload {
		payload[i] = cell.Word(rng.Uint64()).Mask(m.WordBits)
	}
	return &Packet{Header: header, Payload: payload, Seq: seq, VC: vc}
}

func TestNewVCSwitchValidation(t *testing.T) {
	if _, err := NewVCSwitch(TelegraphosII(), 0, 4); err == nil {
		t.Fatal("0 VCs accepted")
	}
	s, err := NewVCSwitch(TelegraphosII(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.VCCredits(0, 0) != 3 || s.VCCredits(0, 1) != 3 {
		t.Fatal("VC credits not initialized")
	}
	// Plain switch reports 0 for VC credits.
	plain, err := NewSwitch(TelegraphosII(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.VCCredits(0, 0) != 0 {
		t.Fatal("plain switch should report 0 VC credits")
	}
	plain.ReturnVCCredit(0, 0) // must be a no-op, not a panic
}

// TestVCLevelFlowControlIsolation is the [KVES95] headline property: a
// receiver that stops crediting one VC stalls only that VC's packets; the
// same outgoing link keeps carrying the other VC at full rate. Link-level
// credits cannot do this — the companion paper's reason for VC-level
// accounting.
func TestVCLevelFlowControlIsolation(t *testing.T) {
	m := TelegraphosII()
	s, err := NewVCSwitch(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	// Exhaust VC 0's single credit with one packet (never re-credited),
	// then keep sending on both VCs toward output 0.
	var seq uint64
	send := func(input, vc int) {
		seq++
		pkts := make([]*Packet, m.Ports)
		pkts[input] = vcPacket(m, rng, seq, 0, vc) // header 0 → output 0
		s.Tick(pkts)
		for i := 1; i < m.Stages; i++ {
			s.Tick(nil)
		}
	}
	vcCount := map[int]int{}
	drain := func() {
		for _, d := range s.Drain() {
			vcCount[d.VC]++
			if d.VC == 1 {
				s.ReturnVCCredit(0, 1) // the VC-1 receiver keeps up
			}
		}
	}
	for round := 0; round < 12; round++ {
		send(0, 0) // VC 0: stalls after the first packet
		drain()
		send(1, 1) // VC 1: flows forever
		drain()
	}
	for i := 0; i < 8*m.Stages; i++ {
		s.Tick(nil)
		drain()
	}
	if vcCount[1] != 12 {
		t.Fatalf("VC1 delivered %d of 12 packets despite VC0 stall", vcCount[1])
	}
	if vcCount[0] != 1 {
		t.Fatalf("VC0 delivered %d packets with a single never-returned credit, want 1", vcCount[0])
	}
	// The stalled VC's cells are parked in the shared buffer.
	if s.Core().QueuedFor(0) == 0 {
		t.Fatal("stalled VC0 cells not parked in the buffer")
	}
	// Re-crediting VC0 releases them in order.
	got := 0
	for i := 0; i < 12; i++ {
		s.ReturnVCCredit(0, 0)
		for j := 0; j < 4*m.Stages; j++ {
			s.Tick(nil)
		}
		for _, d := range s.Drain() {
			if d.VC != 0 {
				t.Fatalf("unexpected VC %d after re-credit", d.VC)
			}
			got++
		}
	}
	if got != 11 {
		t.Fatalf("released %d parked VC0 packets, want 11", got)
	}
}

// TestVCPacketsKeepTheirChannel: the VC survives translation and transit.
func TestVCPacketsKeepTheirChannel(t *testing.T) {
	m := TelegraphosIII()
	s, err := NewVCSwitch(m, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	var seq uint64
	free := make([]int, m.Ports)
	want := map[uint64]int{}
	for c := 0; c < 20_000; c++ {
		pkts := make([]*Packet, m.Ports)
		for i := range pkts {
			if free[i] > 0 {
				free[i]--
				continue
			}
			if rng.Float64() < 0.4 {
				seq++
				vc := rng.IntN(4)
				pkts[i] = vcPacket(m, rng, seq, uint64(rng.IntN(m.Ports)), vc)
				want[seq] = vc
				free[i] = m.Stages - 1
			}
		}
		s.Tick(pkts)
		for _, d := range s.Drain() {
			if want[d.Expected.Seq] != d.VC {
				t.Fatalf("packet %d changed VC: want %d got %d", d.Expected.Seq, want[d.Expected.Seq], d.VC)
			}
			if !d.Cell.Equal(d.Expected) {
				t.Fatal("corruption")
			}
			s.ReturnVCCredit(d.Output, d.VC)
			delete(want, d.Expected.Seq)
		}
	}
	if len(want) > 64 {
		t.Fatalf("%d packets never delivered", len(want))
	}
}
