// Package telegraphos assembles the three prototype switches of §4 of the
// paper around the pipelined memory shared buffer of internal/core:
//
//	Telegraphos I    4×4, 8-bit links at 13.3 MHz (≈107 Mb/s/link),
//	                 8-byte packets, 8 pipeline stages, FPGA + SRAM (§4.1)
//	Telegraphos II   4×4, 16-bit links at 25 MHz / 40 ns (400 Mb/s/link),
//	                 16-byte packets, 8 stages of 256×16 compiled SRAM,
//	                 0.7 µm standard-cell ASIC (§4.2)
//	Telegraphos III  8×8, 16-bit links at 16 ns worst case (1 Gb/s/link,
//	                 1.6 Gb/s typical), 32-byte packets, 16 stages,
//	                 256-cell (64 Kbit) buffer, 1.0 µm full custom (§4.4)
//
// Around the buffer, the package models the blocks the fig. 6 floorplan
// names: the routing/translation memory (RT) that maps incoming packet
// headers to outgoing links, the untranslated header memory (HM), and
// credit-based flow control on the outgoing links ([Kate94], [KVES95]).
package telegraphos

import (
	"fmt"

	"pipemem/internal/analytic"
	"pipemem/internal/cell"
	"pipemem/internal/core"
)

// Model describes one Telegraphos prototype generation.
type Model struct {
	Name       string
	Technology string
	// Ports is n (incoming = outgoing links).
	Ports int
	// WordBits is the on-chip link width per clock.
	WordBits int
	// ClockNs is the (worst-case) clock period.
	ClockNs float64
	// TypicalClockNs is the typical-case period (0 if unpublished).
	TypicalClockNs float64
	// Stages is the pipeline depth K; PacketBytes = Stages·WordBits/8.
	Stages int
	// Cells is the buffer capacity in packets.
	Cells int
}

// TelegraphosI returns the §4.1 FPGA prototype model.
func TelegraphosI() Model {
	return Model{
		Name:       "Telegraphos I",
		Technology: "Xilinx 3100 FPGAs + SRAM",
		Ports:      4,
		WordBits:   8,
		ClockNs:    1000.0 / 13.3, // 13.3 MHz
		Stages:     8,
		Cells:      2048, // 8 discrete SRAM chips; capacity generous
	}
}

// TelegraphosII returns the §4.2 standard-cell ASIC model.
func TelegraphosII() Model {
	return Model{
		Name:       "Telegraphos II",
		Technology: "ES2 0.7um standard-cell ASIC",
		Ports:      4,
		WordBits:   16,
		ClockNs:    40,
		Stages:     8,
		Cells:      256, // each stage a 256×16 compiled SRAM
	}
}

// TelegraphosIII returns the §4.4 full-custom model.
func TelegraphosIII() Model {
	return Model{
		Name:           "Telegraphos III",
		Technology:     "ES2 1.0um full-custom CMOS",
		Ports:          8,
		WordBits:       16,
		ClockNs:        16,
		TypicalClockNs: 10,
		Stages:         16,
		Cells:          256,
	}
}

// Models returns all three prototypes in order.
func Models() []Model {
	return []Model{TelegraphosI(), TelegraphosII(), TelegraphosIII()}
}

// PacketBytes returns the packet size in bytes (Stages words of WordBits).
func (m Model) PacketBytes() int { return m.Stages * m.WordBits / 8 }

// LinkMbps returns the per-link throughput in Mb/s at the worst-case
// clock.
func (m Model) LinkMbps() float64 { return analytic.LinkMbps(m.WordBits, m.ClockNs) }

// LinkGbpsTypical returns the per-link throughput at the typical clock
// (0 if no typical figure is published).
func (m Model) LinkGbpsTypical() float64 {
	if m.TypicalClockNs == 0 {
		return 0
	}
	return analytic.LinkGbps(m.WordBits, m.TypicalClockNs)
}

// AggregateGbps returns the shared-buffer throughput: the full buffer
// width cycles once per clock.
func (m Model) AggregateGbps() float64 {
	return analytic.AggregateGbps(m.Stages*m.WordBits, m.ClockNs)
}

// BufferKbit returns the buffer capacity in Kbit (T3: 64).
func (m Model) BufferKbit() float64 {
	return float64(m.Stages*m.Cells*m.WordBits) / 1024
}

// SwitchConfig returns the core configuration for this model.
func (m Model) SwitchConfig() core.Config {
	return core.Config{
		Ports:      m.Ports,
		Stages:     m.Stages,
		WordBits:   m.WordBits,
		Cells:      m.Cells,
		CutThrough: true,
	}
}

// String implements fmt.Stringer with the headline figures.
func (m Model) String() string {
	return fmt.Sprintf("%s: %d×%d, %d b/link/clk @ %.1f ns → %.0f Mb/s/link, packets %d B, %d stages, buffer %.0f Kbit",
		m.Name, m.Ports, m.Ports, m.WordBits, m.ClockNs, m.LinkMbps(), m.PacketBytes(), m.Stages, m.BufferKbit())
}

// Packet is what arrives on a Telegraphos link: a header word carrying a
// destination address that the switch translates, plus payload words.
type Packet struct {
	// Header is the untranslated destination address (virtual address of
	// the remote-write in Telegraphos' memory-mapped communication).
	Header uint64
	// Payload is the packet body, exactly Stages-1 words.
	Payload []cell.Word
	// Seq identifies the packet for integrity accounting.
	Seq uint64
	// VC is the packet's virtual channel ([KVES95]); 0 when the switch
	// was built without VCs.
	VC int
}

// Switch is a Telegraphos switch: the pipelined-memory shared buffer plus
// routing translation and credit-based flow control.
type Switch struct {
	model Model
	core  *core.Switch

	// rt is the routing/translation memory: header → outgoing link.
	rt []int
	// mrt maps headers to multicast groups (additional outputs beyond
	// the primary) — the [Turn93]-style descriptor multicast the shared
	// buffer supports at one stored copy per packet.
	mrt map[uint64][]int
	// hm is the untranslated header memory, one entry per buffer cell —
	// fig. 6's HM block (diagnostics and, in the real system, protection
	// checks).
	hm map[uint64]uint64 // seq → header

	// credits[o] is the number of packets output o may still send
	// downstream ([KVES95] credit-based flow control). With VCs, the
	// accounting moves to vcCredits[o][vc] instead: each virtual channel
	// has its own allowance, so one stalled receiver queue cannot idle
	// the whole link.
	credits    []int
	maxCredits int

	vcs          int
	vcCredits    [][]int
	maxVCCredits int

	// creditDelay models the reverse-channel round trip: a credit
	// returned at cycle c becomes usable at c+creditDelay. pendingCr
	// holds in-flight returns keyed by due cycle.
	creditDelay int64
	pendingCr   map[int64][]creditReturn
	cycle       int64
}

// creditReturn is one credit in flight on the reverse channel.
type creditReturn struct {
	out, vc int
	perVC   bool
}

// NewSwitch builds a model's switch with the given per-link credit
// allowance (0 disables flow control).
func NewSwitch(m Model, creditsPerLink int) (*Switch, error) {
	return newSwitch(m, 1, creditsPerLink, false)
}

// NewVCSwitch builds a model's switch with vcs virtual channels per
// outgoing link and a per-VC credit allowance — the [KVES95]
// organization: per-(output, VC) descriptor queues served round-robin,
// each VC flow-controlled independently.
func NewVCSwitch(m Model, vcs, creditsPerVC int) (*Switch, error) {
	if vcs < 1 {
		return nil, fmt.Errorf("telegraphos: %d VCs", vcs)
	}
	return newSwitch(m, vcs, creditsPerVC, true)
}

func newSwitch(m Model, vcs, credits int, perVC bool) (*Switch, error) {
	cfg := m.SwitchConfig()
	cfg.VCs = vcs
	cs, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &Switch{
		model: m,
		core:  cs,
		rt:    make([]int, 1<<12),
		mrt:   make(map[uint64][]int),
		hm:    make(map[uint64]uint64),
		vcs:   vcs,
	}
	for i := range s.rt {
		s.rt[i] = i % m.Ports // identity-ish default mapping
	}
	switch {
	case perVC && credits > 0:
		s.maxVCCredits = credits
		s.vcCredits = make([][]int, m.Ports)
		for o := range s.vcCredits {
			s.vcCredits[o] = make([]int, vcs)
			for v := range s.vcCredits[o] {
				s.vcCredits[o][v] = credits
			}
		}
		cs.SetVCGate(func(out, vc int) bool { return s.vcCredits[out][vc] > 0 })
		cs.SetTransmitCellHook(func(out int, c *cell.Cell, _ int64) {
			s.vcCredits[out][c.VC]--
		})
	case credits > 0:
		s.maxCredits = credits
		s.credits = make([]int, m.Ports)
		for o := range s.credits {
			s.credits[o] = credits
		}
		cs.SetOutputGate(func(out int) bool { return s.credits[out] > 0 })
		cs.SetTransmitHook(func(out int) { s.credits[out]-- })
	}
	if s.credits == nil {
		s.credits = make([]int, m.Ports)
	}
	s.pendingCr = make(map[int64][]creditReturn)
	return s, nil
}

// SetCreditDelay sets the reverse-channel latency, in cycles, between a
// ReturnCredit call and the credit becoming usable. Credit-based links
// sustain full rate only when the allowance covers the round trip:
// credits ≥ ⌈(forward cell time + delay) / cell time⌉ — the bandwidth-
// delay product rule that sizes the [KVES95] credit counters.
func (s *Switch) SetCreditDelay(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	s.creditDelay = cycles
}

// Model returns the prototype description.
func (s *Switch) Model() Model { return s.model }

// Core exposes the underlying pipelined-memory switch (read-only use:
// counters, latency, drains).
func (s *Switch) Core() *core.Switch { return s.core }

// SetRoute programs one RT entry: packets whose header hashes to slot
// route to output out.
func (s *Switch) SetRoute(header uint64, out int) error {
	if out < 0 || out >= s.model.Ports {
		return fmt.Errorf("telegraphos: output %d out of range", out)
	}
	s.rt[header%uint64(len(s.rt))] = out
	return nil
}

// Route returns the outgoing link for a header (the RT lookup).
func (s *Switch) Route(header uint64) int {
	return s.rt[header%uint64(len(s.rt))]
}

// SetMulticastRoute programs a header to fan out to a group of outputs
// (the first is the primary, the rest extra copies). The packet is stored
// once; descriptors fan out per output.
func (s *Switch) SetMulticastRoute(header uint64, outs ...int) error {
	if len(outs) == 0 {
		return fmt.Errorf("telegraphos: empty multicast group")
	}
	for _, o := range outs {
		if o < 0 || o >= s.model.Ports {
			return fmt.Errorf("telegraphos: output %d out of range", o)
		}
	}
	if err := s.SetRoute(header, outs[0]); err != nil {
		return err
	}
	s.mrt[header%uint64(len(s.rt))] = append([]int(nil), outs[1:]...)
	return nil
}

// Credits returns the current credit count of an output link
// (link-level flow control only).
func (s *Switch) Credits(out int) int { return s.credits[out] }

// VCCredits returns the credit count of (out, vc); 0 when the switch was
// built without VC flow control.
func (s *Switch) VCCredits(out, vc int) int {
	if s.vcCredits == nil {
		return 0
	}
	return s.vcCredits[out][vc]
}

// ReturnVCCredit hands one credit back to (out, vc), capped at the
// allowance and subject to the configured credit delay.
func (s *Switch) ReturnVCCredit(out, vc int) {
	if s.vcCredits == nil {
		return
	}
	if s.creditDelay > 0 {
		due := s.cycle + s.creditDelay
		s.pendingCr[due] = append(s.pendingCr[due], creditReturn{out: out, vc: vc, perVC: true})
		return
	}
	if s.vcCredits[out][vc] < s.maxVCCredits {
		s.vcCredits[out][vc]++
	}
}

// ReturnCredit hands one credit back to an output link (the downstream
// receiver freed a buffer). It caps at the configured allowance and, with
// a credit delay configured, takes effect after the reverse-channel
// round trip.
func (s *Switch) ReturnCredit(out int) {
	if s.maxCredits == 0 {
		return
	}
	if s.creditDelay > 0 {
		due := s.cycle + s.creditDelay
		s.pendingCr[due] = append(s.pendingCr[due], creditReturn{out: out})
		return
	}
	s.credits[out]++
	if s.credits[out] > s.maxCredits {
		s.credits[out] = s.maxCredits
	}
}

// Tick advances one clock cycle. pkts[i], when non-nil, is a packet whose
// header word arrives at input i this cycle.
func (s *Switch) Tick(pkts []*Packet) {
	// Deliver reverse-channel credits that completed their round trip.
	if rs, ok := s.pendingCr[s.cycle]; ok {
		for _, r := range rs {
			if r.perVC {
				if s.vcCredits != nil && s.vcCredits[r.out][r.vc] < s.maxVCCredits {
					s.vcCredits[r.out][r.vc]++
				}
			} else if s.credits[r.out] < s.maxCredits {
				s.credits[r.out]++
			}
		}
		delete(s.pendingCr, s.cycle)
	}
	s.cycle++
	var heads []*cell.Cell
	if pkts != nil {
		heads = make([]*cell.Cell, s.model.Ports)
		for i, p := range pkts {
			if p == nil {
				continue
			}
			if len(p.Payload) != s.model.Stages-1 {
				panic(fmt.Sprintf("telegraphos: payload of %d words, want %d", len(p.Payload), s.model.Stages-1))
			}
			out := s.Route(p.Header)
			s.hm[p.Seq] = p.Header
			words := make([]cell.Word, 0, s.model.Stages)
			words = append(words, cell.Word(p.Header).Mask(s.model.WordBits))
			words = append(words, p.Payload...)
			heads[i] = &cell.Cell{Seq: p.Seq, Src: i, Dst: out, VC: p.VC, Words: words}
			if extra, ok := s.mrt[p.Header%uint64(len(s.rt))]; ok && len(extra) > 0 {
				heads[i].Copies = append([]int(nil), extra...)
			}
		}
	}
	s.core.Tick(heads)
}

// Drain returns completed departures and clears the corresponding header
// memory entries.
func (s *Switch) Drain() []core.Departure {
	deps := s.core.Drain()
	for _, d := range deps {
		delete(s.hm, d.Expected.Seq)
	}
	return deps
}

// PendingHeaders returns the number of packets whose headers are held in
// HM (in flight through the switch).
func (s *Switch) PendingHeaders() int { return len(s.hm) }
