package telegraphos

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// creditRun drives one input back-to-back into one output with the given
// allowance and reverse-channel delay, the receiver crediting immediately
// on each departure, and returns the sustained throughput in cells per
// cell time.
func creditRun(t *testing.T, credits int, delay int64, cellTimes int) float64 {
	t.Helper()
	m := TelegraphosII() // 4×4, K = 8
	s, err := NewSwitch(m, credits)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCreditDelay(delay)
	rng := rand.New(rand.NewPCG(21, 21))
	var seq uint64
	delivered := 0
	for c := 0; c < cellTimes*m.Stages; c++ {
		var pkts []*Packet
		if c%m.Stages == 0 {
			seq++
			pkts = make([]*Packet, m.Ports)
			pkts[0] = newPacket(m, rng, seq, 0) // header 0 → output 0
		}
		s.Tick(pkts)
		for range s.Drain() {
			delivered++
			s.ReturnCredit(0)
		}
	}
	return float64(delivered) / float64(cellTimes)
}

// TestCreditBandwidthDelayProduct reproduces the sizing rule of
// credit-based flow control: with reverse-channel delay D cycles and
// cell time K, a window of `credits` cells sustains throughput
// ≈ min(1, credits·K / (K + D + 1)) — the +1 because the receiver can
// only free (and credit) a buffer once the TAIL word has landed, one
// cycle after the link goes quiet. One credit over a long round trip
// throttles the link; enough credits to cover the round trip restore
// full rate. This is the rule that sizes the [KVES95] credit counters.
func TestCreditBandwidthDelayProduct(t *testing.T) {
	const k = 8 // Telegraphos II cell time
	for _, tc := range []struct {
		credits int
		delay   int64
	}{
		{1, 0}, {1, 24}, {2, 24}, {4, 24}, {2, 56}, {8, 56},
	} {
		got := creditRun(t, tc.credits, tc.delay, 600)
		want := math.Min(1, float64(tc.credits)*k/float64(k+int(tc.delay)+1))
		if math.Abs(got-want) > 0.05 {
			t.Errorf("credits=%d delay=%d: throughput %.3f, BDP rule predicts %.3f",
				tc.credits, tc.delay, got, want)
		}
	}
}

// TestCreditDelayZeroIsImmediate: delay 0 behaves exactly like the
// undelayed path.
func TestCreditDelayZeroIsImmediate(t *testing.T) {
	a := creditRun(t, 2, 0, 300)
	if a < 0.95 { // 2 credits cover the K+1 effective round trip
		t.Fatalf("undelayed 2-credit run throttled: %.3f", a)
	}
}

// TestCreditDelayNegativeClamped.
func TestCreditDelayNegativeClamped(t *testing.T) {
	m := TelegraphosII()
	s, err := NewSwitch(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCreditDelay(-5) // clamps to 0; must not panic or stall
	rng := rand.New(rand.NewPCG(3, 3))
	pkts := make([]*Packet, m.Ports)
	pkts[0] = newPacket(m, rng, 1, 0)
	s.Tick(pkts)
	for i := 0; i < 6*m.Stages; i++ {
		s.Tick(nil)
	}
	if len(s.Drain()) != 1 {
		t.Fatal("packet lost with clamped delay")
	}
}

// TestVCCreditDelay: per-VC credits honour the delay too.
func TestVCCreditDelay(t *testing.T) {
	m := TelegraphosII()
	s, err := NewVCSwitch(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCreditDelay(40)
	rng := rand.New(rand.NewPCG(5, 5))
	var seq uint64
	delivered := 0
	const cellTimes = 300
	for c := 0; c < cellTimes*m.Stages; c++ {
		var pkts []*Packet
		if c%m.Stages == 0 {
			seq++
			pkts = make([]*Packet, m.Ports)
			p := newPacket(m, rng, seq, 0)
			p.VC = 1
			pkts[0] = p
		}
		s.Tick(pkts)
		for range s.Drain() {
			delivered++
			s.ReturnVCCredit(0, 1)
		}
	}
	got := float64(delivered) / cellTimes
	want := 8.0 / (8 + 40 + 1)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("VC throughput %.3f, BDP rule %.3f", got, want)
	}
}

// Example-style documentation of the BDP table (not asserted tightly —
// the tight assertions are above).
func TestCreditSizingTable(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	var rows []string
	for _, credits := range []int{1, 2, 4, 8} {
		thr := creditRun(t, credits, 56, 400)
		rows = append(rows, fmt.Sprintf("credits=%d delay=56: %.2f", credits, thr))
	}
	// Monotone non-decreasing in credits.
	prev := -1.0
	for i, credits := range []int{1, 2, 4, 8} {
		thr := creditRun(t, credits, 56, 400)
		if thr+0.02 < prev {
			t.Fatalf("throughput fell with more credits: %v (row %d)", rows, i)
		}
		prev = thr
		_ = credits
	}
}
