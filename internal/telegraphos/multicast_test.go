package telegraphos

import (
	"math/rand/v2"
	"testing"
)

// TestMulticastRoute: a header programmed as a multicast group delivers
// one copy per member, from one stored packet.
func TestMulticastRoute(t *testing.T) {
	m := TelegraphosII()
	s, err := NewSwitch(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMulticastRoute(0x42, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMulticastRoute(0x43); err == nil {
		t.Fatal("empty group accepted")
	}
	if err := s.SetMulticastRoute(0x43, 9); err == nil {
		t.Fatal("out-of-range member accepted")
	}
	rng := rand.New(rand.NewPCG(1, 1))
	pkts := make([]*Packet, m.Ports)
	pkts[0] = newPacket(m, rng, 7, 0x42)
	s.Tick(pkts)
	for i := 0; i < 10*m.Stages; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 3 {
		t.Fatalf("%d copies, want 3", len(deps))
	}
	outs := map[int]bool{}
	for _, d := range deps {
		if !d.Cell.Equal(d.Expected) {
			t.Fatal("copy corrupted")
		}
		outs[d.Output] = true
	}
	for _, o := range []int{1, 2, 3} {
		if !outs[o] {
			t.Fatalf("output %d missed", o)
		}
	}
	// HM reclaimed once all copies are out? The header entry is deleted
	// on the first Drain that sees the seq; pending must reach zero.
	if s.PendingHeaders() != 0 {
		t.Fatalf("%d headers pending", s.PendingHeaders())
	}
}

// TestMulticastAmongUnicast: mixed traffic, all copies accounted for.
func TestMulticastAmongUnicast(t *testing.T) {
	m := TelegraphosIII()
	s, err := NewSwitch(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMulticastRoute(0x200, 0, 4, 7); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	var seq uint64
	free := make([]int, m.Ports)
	want := 0
	got := 0
	for c := 0; c < 20_000; c++ {
		pkts := make([]*Packet, m.Ports)
		for i := range pkts {
			if free[i] > 0 {
				free[i]--
				continue
			}
			if rng.Float64() < 0.3 {
				seq++
				if i == 0 && seq%5 == 0 {
					pkts[i] = newPacket(m, rng, seq, 0x200)
					want += 3
				} else {
					pkts[i] = newPacket(m, rng, seq, uint64(rng.IntN(m.Ports)))
					want++
				}
				free[i] = m.Stages - 1
			}
		}
		s.Tick(pkts)
		got += len(s.Drain())
	}
	// Drain until the shared buffer and egress are empty (bounded).
	for i := 0; i < 2000*m.Stages && got < want; i++ {
		s.Tick(nil)
		got += len(s.Drain())
	}
	if got != want {
		t.Fatalf("delivered %d copies, want %d", got, want)
	}
	if s.Core().Buffered() != 0 {
		t.Fatalf("%d descriptors still buffered after drain", s.Core().Buffered())
	}
}
