package prizma

import (
	"testing"
	"testing/quick"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

func mustSwitch(t *testing.T, cfg Config) *Switch {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func stream(t *testing.T, cfg traffic.Config, k int) *traffic.CellStream {
	t.Helper()
	cs, err := traffic.NewCellStream(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestValidate(t *testing.T) {
	if err := (Config{Ports: 8, Banks: 256, WordBits: 16}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, c := range []Config{
		{Ports: 0},
		{Ports: 4, Banks: 1},
		{Ports: 4, WordBits: 70},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// §5.3's worked example: Telegraphos III-sized PRIZMA has M = 256
	// banks for 2n = 16, so its crossbars cost 256/16 = 16× more.
	s := mustSwitch(t, Config{Ports: 8, Banks: 256, WordBits: 16})
	if got := s.RouterCrossbarPoints(); got != 8*256 {
		t.Fatalf("router crosspoints = %d, want 2048", got)
	}
}

// TestNoCutThrough: the defining §5.3 limitation — a single-ported bank
// cannot be read while written, so the head waits at least a full cell
// time (store-and-forward only).
func TestNoCutThrough(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, Banks: 8, WordBits: 16})
	k := s.Config().CellWords // 4
	c := cell.New(1, 0, 1, k, 16)
	s.Tick([]*cell.Cell{c, nil})
	for i := 0; i < 5*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures, want 1", len(deps))
	}
	d := deps[0]
	if !d.Cell.Equal(c) {
		t.Fatal("cell corrupted")
	}
	if got := d.HeadOut - d.HeadIn; got < int64(k) {
		t.Fatalf("head latency %d < cell time %d: impossible without cut-through", got, k)
	}
}

// TestIntegrityAndConservation under random and saturation traffic.
func TestIntegrityAndConservation(t *testing.T) {
	for _, load := range []float64{0.5, 1.0} {
		s := mustSwitch(t, Config{Ports: 4, Banks: 64, WordBits: 16})
		kind := traffic.Bernoulli
		if load == 1.0 {
			kind = traffic.Saturation
		}
		cs := stream(t, traffic.Config{Kind: kind, N: 4, Load: load, Seed: 3}, s.Config().CellWords)
		res, err := RunTraffic(s, cs, 20_000)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		if res.Delivered == 0 {
			t.Fatalf("load %v: nothing delivered", load)
		}
	}
}

// TestFullLoadPermutation: with enough banks the interleaved organization
// sustains full admissible load (its scalability claim).
func TestFullLoadPermutation(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, Banks: 64, WordBits: 16})
	cs := stream(t, traffic.Config{Kind: traffic.Permutation, N: 4, Load: 1, Seed: 7}, s.Config().CellWords)
	res, err := RunTraffic(s, cs, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d drops with ample banks", res.Dropped)
	}
	if res.Utilization < 0.95 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

// TestBankExhaustion: each cell monopolizes one bank for ≥ 2 cell times
// (write + read), so with too few banks cells drop — the memory-
// fragmentation cost of one-cell banks.
func TestBankExhaustion(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, Banks: 4, WordBits: 16})
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: 4, Seed: 9}, s.Config().CellWords)
	res, err := RunTraffic(s, cs, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops with 4 banks at saturation; exhaustion path untested")
	}
}

// TestQuick sweeps geometry.
func TestQuick(t *testing.T) {
	f := func(seed uint64, portsRaw, loadRaw uint8) bool {
		ports := 2 + int(portsRaw%7)
		load := 0.1 + float64(loadRaw%90)/100
		s, err := New(Config{Ports: ports, Banks: 8 * ports, WordBits: 16})
		if err != nil {
			return false
		}
		cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Bernoulli, N: ports, Load: load, Seed: seed}, s.Config().CellWords)
		if err != nil {
			return false
		}
		_, err = RunTraffic(s, cs, 3_000)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeepBanksReduceCrossbarButHurtPerformance validates the §5.3
// remark: with the same total capacity, fewer-but-deeper banks shrink the
// n×M crossbars yet lose throughput under saturation, because residents
// of a bank serialize behind its single port (and a deep bank mid-write
// blocks reads of its other residents).
func TestDeepBanksReduceCrossbarButHurtPerformance(t *testing.T) {
	const ports = 4
	run := func(banks, depth int) (thr float64, crosspoints int) {
		s := mustSwitch(t, Config{Ports: ports, Banks: banks, CellsPerBank: depth, WordBits: 16})
		if s.CapacityCells() != 32 {
			t.Fatalf("capacity %d, want equal totals", s.CapacityCells())
		}
		cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: ports, Seed: 17}, s.Config().CellWords)
		res, err := RunTraffic(s, cs, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Utilization, s.RouterCrossbarPoints()
	}
	thrShallow, xbShallow := run(32, 1)
	thrDeep, xbDeep := run(8, 4)
	if xbDeep >= xbShallow {
		t.Fatalf("deep banks did not shrink the crossbar: %d vs %d", xbDeep, xbShallow)
	}
	if thrDeep >= thrShallow-0.02 {
		t.Fatalf("deep banks did not hurt performance: %.3f vs %.3f", thrDeep, thrShallow)
	}
	if thrDeep < 0.2 {
		t.Fatalf("deep-bank throughput %.3f implausibly low", thrDeep)
	}
}

// TestDeepBankIntegrity: depth > 1 still delivers every accepted cell
// intact (RunTraffic checks conservation and payloads).
func TestDeepBankIntegrity(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, Banks: 8, CellsPerBank: 4, WordBits: 16})
	cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.6, Seed: 19}, s.Config().CellWords)
	res, err := RunTraffic(s, cs, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}
