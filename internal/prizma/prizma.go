// Package prizma models the interleaved shared-buffer organization of
// [Turn93] and the PRIZMA architecture [DeEI95], the §5.3 comparison
// baseline: the shared buffer consists of M independent single-ported
// banks, each bank storing one cell in the canonical design. A "router"
// crossbar (n×M, w bits wide) steers each arriving cell into a free bank
// word by word; a "selector" crossbar (M×n) streams departing cells to
// the outputs.
//
// The organization scales buffer throughput with M (every bank can be
// active at once), which is its selling point — but §5.3 argues the cost
// is prohibitive: the two crossbars grow ∝ n×M instead of the pipelined
// memory's n×2n, each small bank pays its own address decoder, and the
// single-ported banks preclude cut-through (a bank cannot be read while
// it is being written).
//
// §5.3 also remarks that "the PRIZMA crossbar cost could be reduced by
// placing more than one packets per bank, but that would complicate
// control and scheduling and may hurt performance"; Config.CellsPerBank
// implements that variant: a deeper bank serializes all its residents
// behind one port, so reads contend with each other and with writes.
package prizma

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/fifo"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// Config parameterizes the interleaved switch.
type Config struct {
	// Ports is n.
	Ports int
	// Banks is M, the number of banks. 0 means 4·Ports.
	Banks int
	// CellsPerBank is the bank depth (1 in the canonical PRIZMA). §5.3
	// notes the crossbar cost "could be reduced by placing more than one
	// packets per bank, but that would complicate control and scheduling
	// and may hurt performance": a deeper bank serializes its resident
	// cells behind one port. 0 means 1.
	CellsPerBank int
	// CellWords is the cell size in words; unlike the pipelined or wide
	// organizations it is decoupled from n (that is the architecture's
	// scalability argument, §5.3). 0 means 2·Ports for comparability.
	CellWords int
	// WordBits is w.
	WordBits int
}

// Canonical fills defaults.
func (c Config) Canonical() Config {
	if c.Banks == 0 {
		c.Banks = 4 * c.Ports
	}
	if c.CellsPerBank == 0 {
		c.CellsPerBank = 1
	}
	if c.CellWords == 0 {
		c.CellWords = 2 * c.Ports
	}
	if c.WordBits == 0 {
		c.WordBits = 16
	}
	return c
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	c = c.Canonical()
	if c.Ports < 1 {
		return fmt.Errorf("prizma: ports = %d", c.Ports)
	}
	if c.Banks < 2 {
		return fmt.Errorf("prizma: %d banks", c.Banks)
	}
	if c.CellsPerBank < 1 {
		return fmt.Errorf("prizma: %d cells per bank", c.CellsPerBank)
	}
	if c.CellWords < 1 {
		return fmt.Errorf("prizma: %d-word cells", c.CellWords)
	}
	if c.WordBits < 1 || c.WordBits > 64 {
		return fmt.Errorf("prizma: word width %d", c.WordBits)
	}
	return nil
}

// portState is what a bank's single port is doing.
type portState uint8

const (
	portIdle portState = iota
	portWriting
	portReading
)

// stored is one resident (or arriving) cell.
type stored struct {
	c     *cell.Cell
	bank  int
	head  int64
	ready bool // fully written
	// streaming bookkeeping (write or read, one at a time)
	pos   int
	start int64
}

// bank is one single-ported memory bank holding up to CellsPerBank cells.
type bank struct {
	state portState
	// resident counts cells stored or being written into the bank.
	resident int
	// cur is the cell currently streaming through the port.
	cur *stored
}

// Departure mirrors core.Departure.
type Departure struct {
	Cell            *cell.Cell
	Expected        *cell.Cell
	Output          int
	HeadIn, HeadOut int64
	TailOut         int64
	Bank            int
}

// Switch is the interleaved (PRIZMA-style) shared-buffer switch.
type Switch struct {
	cfg  Config
	n, k int

	cycle int64

	banks  []bank
	queues []*fifo.Ring[*stored] // per output, FIFO of resident cells

	writing []*stored // per input: cell being streamed in, or nil
	reading []*stored // per output: cell being streamed out, or nil

	done    []Departure
	counter stats.Counter
	cutLat  *stats.Hist
}

// New builds the switch.
func New(cfg Config) (*Switch, error) {
	cfg = cfg.Canonical()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Ports
	s := &Switch{
		cfg: cfg, n: n, k: cfg.CellWords,
		banks:   make([]bank, cfg.Banks),
		queues:  make([]*fifo.Ring[*stored], n),
		writing: make([]*stored, n),
		reading: make([]*stored, n),
		cutLat:  stats.NewHist(4096),
	}
	for o := range s.queues {
		s.queues[o] = fifo.NewRing[*stored](0)
	}
	return s, nil
}

// Config returns the effective configuration.
func (s *Switch) Config() Config { return s.cfg }

// Counters exposes "offered", "accepted", "delivered", "drop-nobank".
func (s *Switch) Counters() *stats.Counter { return &s.counter }

// CutLatency returns the head-in→head-out histogram. (There is no
// cut-through: the minimum is a full cell time plus pipeline delays.)
func (s *Switch) CutLatency() *stats.Hist { return s.cutLat }

// Buffered returns the number of cells fully resident and queued.
func (s *Switch) Buffered() int {
	t := 0
	for _, q := range s.queues {
		t += q.Len()
	}
	return t
}

// Drain returns departures since the last call.
func (s *Switch) Drain() []Departure {
	d := s.done
	s.done = nil
	return d
}

// RouterCrossbarPoints returns the crosspoint count of the input router,
// ∝ n×M — the §5.3 cost term (the selector is symmetric).
func (s *Switch) RouterCrossbarPoints() int { return s.n * s.cfg.Banks }

// CapacityCells returns Banks × CellsPerBank.
func (s *Switch) CapacityCells() int { return s.cfg.Banks * s.cfg.CellsPerBank }

// pickBank selects an idle bank with spare depth for an arriving cell,
// preferring emptier banks (spreads load and, with depth > 1, reduces
// later port contention).
func (s *Switch) pickBank() int {
	best, bestResident := -1, 0
	for b := range s.banks {
		bk := &s.banks[b]
		if bk.state != portIdle || bk.resident >= s.cfg.CellsPerBank {
			continue
		}
		if best == -1 || bk.resident < bestResident {
			best, bestResident = b, bk.resident
		}
	}
	return best
}

// Tick advances one cycle; heads as in core.Switch.Tick.
func (s *Switch) Tick(heads []*cell.Cell) {
	c := s.cycle

	// Egress: advance reading cells, one word per output per cycle.
	for o := 0; o < s.n; o++ {
		st := s.reading[o]
		if st == nil {
			continue
		}
		if st.pos == 0 {
			st.start = c
		}
		st.pos++
		if st.pos == s.k {
			bk := &s.banks[st.bank]
			bk.state = portIdle
			bk.resident--
			bk.cur = nil
			s.counter.Inc("delivered", 1)
			s.cutLat.Add(st.start - st.head)
			s.done = append(s.done, Departure{
				Cell: st.c.Clone(), Expected: st.c, Output: o,
				HeadIn: st.head, HeadOut: st.start, TailOut: c, Bank: st.bank,
			})
			s.reading[o] = nil
		}
	}

	// Start new reads: each idle output claims its queue front if that
	// cell's bank port is free (with deep banks, another resident of the
	// same bank may hold the port — the §5.3 scheduling complication).
	for o := 0; o < s.n; o++ {
		if s.reading[o] != nil {
			continue
		}
		st, ok := s.queues[o].Front()
		if !ok {
			continue
		}
		bk := &s.banks[st.bank]
		if bk.state != portIdle || !st.ready {
			continue
		}
		s.queues[o].Pop()
		bk.state = portReading
		bk.cur = st
		st.pos = 0
		s.reading[o] = st
	}

	// Writes: advance arriving cells.
	for i := 0; i < s.n; i++ {
		st := s.writing[i]
		if st == nil {
			continue
		}
		st.pos++
		if st.pos == s.k {
			st.ready = true
			st.pos = 0
			bk := &s.banks[st.bank]
			bk.state = portIdle
			bk.cur = nil
			s.queues[st.c.Dst].Push(st)
			s.writing[i] = nil
		}
	}

	// Ingress: allocate a bank per arriving head.
	for i := 0; heads != nil && i < s.n; i++ {
		if heads[i] == nil {
			continue
		}
		nc := heads[i]
		if len(nc.Words) != s.k {
			panic(fmt.Sprintf("prizma: cell of %d words, want %d", len(nc.Words), s.k))
		}
		if s.writing[i] != nil {
			panic(fmt.Sprintf("prizma: head injected mid-cell on input %d", i))
		}
		s.counter.Inc("offered", 1)
		b := s.pickBank()
		if b < 0 {
			s.counter.Inc("drop-nobank", 1)
			continue
		}
		s.counter.Inc("accepted", 1)
		nc.Enqueue = c
		st := &stored{c: nc, bank: b, head: c, pos: 1}
		bk := &s.banks[b]
		bk.state = portWriting
		bk.resident++
		bk.cur = st
		s.writing[i] = st
	}

	s.cycle++
}

// RunResult mirrors core.RunResult.
type RunResult struct {
	Cycles                      int64
	Offered, Delivered, Dropped int64
	Utilization                 float64
	MeanLatency                 float64
	MinLatency                  int64
}

// RunTraffic drives the switch with a cell stream, then drains.
func RunTraffic(s *Switch, cs *traffic.CellStream, cycles int64) (RunResult, error) {
	heads := make([]int, s.n)
	hc := make([]*cell.Cell, s.n)
	var seq uint64
	var res RunResult
	minLat := int64(-1)
	busy := int64(0)
	corrupt := 0
	collect := func() {
		for _, d := range s.Drain() {
			res.Delivered++
			busy += int64(s.k)
			if !d.Cell.Equal(d.Expected) {
				corrupt++
			}
			if lat := d.HeadOut - d.HeadIn; minLat < 0 || lat < minLat {
				minLat = lat
			}
		}
	}
	for c := int64(0); c < cycles; c++ {
		cs.Heads(heads)
		for i := range hc {
			hc[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hc[i] = cell.New(seq, i, heads[i], s.k, s.cfg.WordBits)
				res.Offered++
			}
		}
		s.Tick(hc)
		collect()
	}
	for c := 0; c < (s.CapacityCells()+4)*s.k*4 && s.busy(); c++ {
		s.Tick(nil)
		collect()
	}
	res.Cycles = s.cycle
	res.Dropped = s.counter.Get("drop-nobank")
	res.MeanLatency = s.cutLat.Mean()
	res.MinLatency = minLat
	res.Utilization = float64(busy) / float64(cycles*int64(s.n))
	resident := int64(s.Buffered())
	for i := 0; i < s.n; i++ {
		if s.writing[i] != nil {
			resident++
		}
		if s.reading[i] != nil {
			resident++
		}
	}
	if res.Delivered+res.Dropped+resident != res.Offered {
		return res, fmt.Errorf("prizma: conservation violated: offered %d delivered %d dropped %d resident %d",
			res.Offered, res.Delivered, res.Dropped, resident)
	}
	if corrupt > 0 {
		return res, fmt.Errorf("prizma: %d corrupted cells", corrupt)
	}
	return res, nil
}

func (s *Switch) busy() bool {
	if s.Buffered() > 0 {
		return true
	}
	for i := 0; i < s.n; i++ {
		if s.writing[i] != nil || s.reading[i] != nil {
			return true
		}
	}
	return false
}
