// Package bufmgr implements shared-buffer management: pluggable admission
// policies that decide, cell by cell, whether the pipelined memory accepts
// an arrival, drops it, or preempts (pushes out) a buffered cell to make
// room.
//
// The paper's premise (§2) is that one shared buffer outperforms the same
// capacity partitioned per port — but naive complete sharing lets a single
// congested output monopolize the whole memory and starve every other
// port. Buffer-management policies restore isolation while keeping the
// statistical-sharing win. The package ships the classic spectrum:
//
//   - CompleteSharing — the paper's implicit policy: admit while a free
//     address exists, backpressure otherwise.
//   - StaticPartition — per-output quota; the partitioned organization the
//     paper argues against, included as the comparison baseline.
//   - DynamicThreshold — Choudhury–Hahne T = α·free, the datacenter
//     classic: a queue may grow only to a multiple of the remaining free
//     space, so headroom for other outputs is preserved automatically.
//   - DelayDriven — thresholds expressed in queueing delay rather than
//     cells (in the spirit of BShare, arXiv:2605.24178), natural for a
//     switch whose service time per cell is the k-cycle wave.
//   - PushOutLQF — admit by preempting the head of the longest queue when
//     the buffer is full (in the spirit of Occamy, arXiv:2501.13570);
//     loss is shifted onto the queue that hoards the most.
//
// Policies are consulted by core.Switch at write-wave admission with a
// read-only State view of occupancy; they must not retain the State past
// the call, must be deterministic, and must not allocate (the switch's
// Tick is pinned at 0 allocs/op).
package bufmgr

import "fmt"

// Action is the kind of admission verdict a policy returns.
type Action uint8

const (
	// Accept admits the arrival if a free address exists; when the buffer
	// is full the arrival stays pending and retries (backpressure), which
	// is the switch's historical behavior.
	Accept Action = iota
	// Drop refuses the arrival immediately; the cell is counted as a
	// policy drop and the input register row is released.
	Drop
	// PushOut admits the arrival by first evicting the head cell of the
	// victim queue named in the Verdict, freeing its address.
	PushOut
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Accept:
		return "accept"
	case Drop:
		return "drop"
	case PushOut:
		return "push-out"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Verdict is a policy's admission decision for one arrival. VictimOut and
// VictimVC are meaningful only when Action is PushOut and name the queue
// whose head is evicted to make room.
type Verdict struct {
	Action    Action
	VictimOut int
	VictimVC  int
}

// State is the read-only occupancy view a policy consults. It is
// implemented by core.Switch; all methods are O(1). Policies must not
// retain the State past the Admit call.
type State interface {
	// Capacity is the total number of cell addresses in the shared buffer.
	Capacity() int
	// Free is the number of unallocated addresses right now.
	Free() int
	// Queued is the number of cells buffered for the given output across
	// all its virtual channels.
	Queued(out int) int
	// QueuedVC is the number of cells buffered for (out, vc).
	QueuedVC(out, vc int) int
	// Ports and VCs give the switch geometry (n outputs, VCs per output).
	Ports() int
	VCs() int
	// CellCycles is the cycles one wave needs to stream a cell through
	// the pipelined memory (k = 2n) — the per-cell service time an output
	// link imposes, used by delay-based policies.
	CellCycles() int
	// Cycle is the current clock cycle.
	Cycle() int64
}

// Policy decides admission into the shared buffer. Admit is called once
// per arrival when the cell at an input register head requests its write
// wave, before a free address is claimed; out and vc are the arrival's
// destination queue. Implementations must be deterministic, allocation-
// free, and safe to reuse across runs (they may not keep per-run state).
type Policy interface {
	// Name returns the canonical spec of the policy, parseable by Parse.
	Name() string
	// Admit returns the verdict for one arrival destined to (out, vc).
	Admit(st State, out, vc int) Verdict
}

// CompleteSharing is the paper's implicit policy and the switch's default:
// every arrival is accepted, and when no free address exists the arrival
// simply waits (backpressure). It never drops and never preempts — one
// hot output can fill the entire buffer.
type CompleteSharing struct{}

// Name implements Policy.
func (CompleteSharing) Name() string { return "share" }

// Admit implements Policy.
func (CompleteSharing) Admit(State, int, int) Verdict { return Verdict{Action: Accept} }

// StaticPartition reserves a fixed per-output quota of the shared buffer:
// an arrival is dropped once its output already holds Quota cells. With
// Quota = Capacity/Ports this is exactly the partitioned organization the
// paper argues against (§2) — no output can borrow another's share.
type StaticPartition struct {
	// Quota is the per-output cell limit. Zero means Capacity/Ports
	// (minimum 1), resolved against the live State.
	Quota int
}

// Name implements Policy.
func (p StaticPartition) Name() string {
	if p.Quota == 0 {
		return "static"
	}
	return fmt.Sprintf("static:quota=%d", p.Quota)
}

// Admit implements Policy.
func (p StaticPartition) Admit(st State, out, _ int) Verdict {
	q := p.Quota
	if q == 0 {
		if q = st.Capacity() / st.Ports(); q < 1 {
			q = 1
		}
	}
	if st.Queued(out) >= q {
		return Verdict{Action: Drop}
	}
	return Verdict{Action: Accept}
}

// DynamicThreshold is the Choudhury–Hahne policy: an arrival for output j
// is dropped when the output's queue has reached T = α·free, where free
// is the unallocated buffer space at that instant. Queues may grow large
// while the buffer is empty, but as it fills the threshold falls, always
// keeping a fraction of the memory free for other outputs — self-tuning
// isolation with one parameter.
type DynamicThreshold struct {
	// Alpha is the threshold multiplier α (> 0). Zero means 1.0. Larger α
	// shares more aggressively; α→∞ degenerates to complete sharing.
	Alpha float64
}

// Name implements Policy.
func (p DynamicThreshold) Name() string {
	if p.Alpha == 0 {
		return "dt"
	}
	return fmt.Sprintf("dt:alpha=%g", p.Alpha)
}

// Admit implements Policy.
func (p DynamicThreshold) Admit(st State, out, _ int) Verdict {
	a := p.Alpha
	if a == 0 {
		a = 1
	}
	if float64(st.Queued(out)) >= a*float64(st.Free()) {
		return Verdict{Action: Drop}
	}
	return Verdict{Action: Accept}
}

// DelayDriven expresses the admission threshold in queueing delay rather
// than cells (in the spirit of BShare): an arrival is dropped when the
// delay it would experience — (queued+1) cells at k cycles each, the
// output link's per-cell service time — exceeds the share of the delay
// budget proportional to the free space. Congested outputs are cut back
// exactly when the buffer is scarce, like DynamicThreshold, but the knob
// is a latency target, which is what a tenant actually experiences.
type DelayDriven struct {
	// Target is the delay budget in cycles an arrival may face when the
	// buffer is otherwise empty. Zero means CellCycles·Capacity (the full
	// buffer streamed through one output), resolved against the State.
	Target int64
}

// Name implements Policy.
func (p DelayDriven) Name() string {
	if p.Target == 0 {
		return "dd"
	}
	return fmt.Sprintf("dd:target=%d", p.Target)
}

// Admit implements Policy.
func (p DelayDriven) Admit(st State, out, _ int) Verdict {
	k := int64(st.CellCycles())
	target := p.Target
	if target == 0 {
		target = k * int64(st.Capacity())
	}
	est := int64(st.Queued(out)+1) * k
	// Scale the budget by the free fraction: full budget with an empty
	// buffer, shrinking linearly as the memory fills.
	thr := target * int64(st.Free()) / int64(st.Capacity())
	if est > thr {
		return Verdict{Action: Drop}
	}
	return Verdict{Action: Accept}
}

// PushOutLQF admits every arrival while free space exists; when the
// buffer is full it preempts the head cell of the longest output queue
// (longest-queue-first, in the spirit of Occamy's push-out) — provided
// that queue is strictly longer than the arrival's own queue would
// become. Loss lands on the output hoarding the most buffer, and a full
// memory never blocks a short queue.
type PushOutLQF struct{}

// Name implements Policy.
func (PushOutLQF) Name() string { return "pushout" }

// Admit implements Policy.
func (PushOutLQF) Admit(st State, out, _ int) Verdict {
	if st.Free() > 0 {
		return Verdict{Action: Accept}
	}
	// Longest queue across outputs; ties resolve to the lowest index so
	// the decision is deterministic.
	best, bestLen := -1, 0
	for o := 0; o < st.Ports(); o++ {
		if l := st.Queued(o); l > bestLen {
			best, bestLen = o, l
		}
	}
	// Preempt only if the victim queue is strictly longer than the
	// arrival's queue would become — otherwise preemption buys nothing,
	// and the arrival waits under ordinary backpressure (Accept with a
	// full buffer retries next cycle). All PushOutLQF loss is therefore
	// pushed-out victims, never refused arrivals.
	if best < 0 || bestLen <= st.Queued(out)+1 {
		return Verdict{Action: Accept}
	}
	// Within the victim output, evict from its deepest VC.
	vc, vcLen := 0, -1
	for v := 0; v < st.VCs(); v++ {
		if l := st.QueuedVC(best, v); l > vcLen {
			vc, vcLen = v, l
		}
	}
	return Verdict{Action: PushOut, VictimOut: best, VictimVC: vc}
}
