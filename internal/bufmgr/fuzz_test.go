package bufmgr

import (
	"errors"
	"testing"
)

// FuzzParseSpec drives the -bufpolicy spec parser with arbitrary input:
// it must never panic, every failure must wrap ErrBadConfig, and every
// success must produce a policy whose canonical Name re-parses to an
// equivalent policy (closure under round-trip).
func FuzzParseSpec(f *testing.F) {
	for _, s := range Specs() {
		f.Add(s)
	}
	f.Add("dt:alpha=2")
	f.Add("static:quota=4")
	f.Add("dd:target=128")
	f.Add("dt:alpha=0")
	f.Add("static:quota=-1")
	f.Add("dt:alpha=1,alpha=2")
	f.Add("dt:alpha=\x00")
	f.Add("po:")
	f.Add(":=,")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Parse(%q) error %v does not wrap ErrBadConfig", spec, err)
			}
			return
		}
		name := p.Name()
		rt, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q) ok but Name() %q does not re-parse: %v", spec, name, err)
		}
		if rt != p {
			t.Fatalf("round trip of %q: %#v != %#v", spec, rt, p)
		}
		// A parsed policy must be safe to consult immediately.
		st := &fakeState{cap: 8, free: 0, ports: 2, vcs: 1, cellCycles: 4, queued: []int{8, 0}}
		v := p.Admit(st, 1, 0)
		if v.Action == PushOut && (v.VictimOut < 0 || v.VictimOut >= st.ports) {
			t.Fatalf("policy %q returned out-of-range victim %+v", name, v)
		}
	})
}
