package bufmgr

import (
	"errors"
	"fmt"
	"testing"
)

// fakeState is a table-driven State for exercising policies directly.
type fakeState struct {
	cap, free  int
	ports, vcs int
	cellCycles int
	cycle      int64
	queued     []int // per output, summed over VCs
	queuedVC   [][]int
}

func (f *fakeState) Capacity() int   { return f.cap }
func (f *fakeState) Free() int       { return f.free }
func (f *fakeState) Ports() int      { return f.ports }
func (f *fakeState) VCs() int        { return f.vcs }
func (f *fakeState) CellCycles() int { return f.cellCycles }
func (f *fakeState) Cycle() int64    { return f.cycle }
func (f *fakeState) Queued(out int) int {
	return f.queued[out]
}
func (f *fakeState) QueuedVC(out, vc int) int {
	if f.queuedVC == nil {
		if vc == 0 {
			return f.queued[out]
		}
		return 0
	}
	return f.queuedVC[out][vc]
}

func newState(capacity int, queued ...int) *fakeState {
	used := 0
	for _, q := range queued {
		used += q
	}
	return &fakeState{
		cap: capacity, free: capacity - used,
		ports: len(queued), vcs: 1, cellCycles: 2 * len(queued),
		queued: queued,
	}
}

func TestCompleteSharingAlwaysAccepts(t *testing.T) {
	st := newState(8, 8, 0, 0, 0) // full buffer, one hog
	if v := (CompleteSharing{}).Admit(st, 1, 0); v.Action != Accept {
		t.Fatalf("complete sharing returned %v, want accept", v.Action)
	}
}

func TestStaticPartitionQuota(t *testing.T) {
	st := newState(16, 4, 0, 1, 0) // quota defaults to 16/4 = 4
	p := StaticPartition{}
	if v := p.Admit(st, 0, 0); v.Action != Drop {
		t.Errorf("output at quota: got %v, want drop", v.Action)
	}
	if v := p.Admit(st, 1, 0); v.Action != Accept {
		t.Errorf("empty output: got %v, want accept", v.Action)
	}
	if v := (StaticPartition{Quota: 2}).Admit(st, 2, 0); v.Action != Accept {
		t.Errorf("below explicit quota: got %v, want accept", v.Action)
	}
	if v := (StaticPartition{Quota: 1}).Admit(st, 2, 0); v.Action != Drop {
		t.Errorf("at explicit quota: got %v, want drop", v.Action)
	}
}

func TestDynamicThreshold(t *testing.T) {
	// 12 free, queue 0 holds 4: with α=1 threshold is 12 → accept; once
	// free space shrinks the same queue length is refused.
	st := newState(16, 4, 0, 0, 0)
	p := DynamicThreshold{}
	if v := p.Admit(st, 0, 0); v.Action != Accept {
		t.Errorf("plenty free: got %v, want accept", v.Action)
	}
	st.free = 3 // queue 4 ≥ 1.0·3
	if v := p.Admit(st, 0, 0); v.Action != Drop {
		t.Errorf("scarce free: got %v, want drop", v.Action)
	}
	// α=2 doubles the allowance.
	if v := (DynamicThreshold{Alpha: 2}).Admit(st, 0, 0); v.Action != Accept {
		t.Errorf("alpha=2: got %v, want accept", v.Action)
	}
	// Other outputs still admitted while any free space remains.
	if v := p.Admit(st, 1, 0); v.Action != Accept {
		t.Errorf("empty queue: got %v, want accept", v.Action)
	}
}

func TestDelayDrivenScalesWithFree(t *testing.T) {
	st := newState(16, 0, 0, 0, 0)
	st.cellCycles = 8
	p := DelayDriven{} // budget = 8·16 = 128 cycles at empty buffer
	// Empty buffer: even a long queue fits the full budget.
	st.queued[0], st.free = 10, 6
	// est = 11·8 = 88; thr = 128·6/16 = 48 → drop.
	if v := p.Admit(st, 0, 0); v.Action != Drop {
		t.Errorf("scarce free: got %v, want drop", v.Action)
	}
	st.queued[0], st.free = 2, 14
	// est = 3·8 = 24; thr = 128·14/16 = 112 → accept.
	if v := p.Admit(st, 0, 0); v.Action != Accept {
		t.Errorf("short queue: got %v, want accept", v.Action)
	}
	// Explicit tight target refuses even the short queue.
	if v := (DelayDriven{Target: 16}).Admit(st, 0, 0); v.Action != Drop {
		t.Errorf("tight target: got %v, want drop", v.Action)
	}
}

func TestPushOutLQF(t *testing.T) {
	p := PushOutLQF{}
	// Free space: plain accept.
	st := newState(8, 3, 2, 0, 0)
	if v := p.Admit(st, 3, 0); v.Action != Accept {
		t.Errorf("free space: got %v, want accept", v.Action)
	}
	// Full buffer: arrival for a short queue preempts the longest.
	st = newState(8, 6, 2, 0, 0)
	v := p.Admit(st, 3, 0)
	if v.Action != PushOut || v.VictimOut != 0 {
		t.Errorf("full buffer: got %+v, want push-out of output 0", v)
	}
	// Arrival for the longest queue itself: no strictly longer victim →
	// accept (backpressure), never self-preemption.
	if v := p.Admit(st, 0, 0); v.Action != Accept {
		t.Errorf("hog arrival: got %v, want accept (wait)", v.Action)
	}
	// Victim VC is the deepest VC of the victim output.
	st.vcs = 2
	st.queuedVC = [][]int{{2, 4}, {2, 0}, {0, 0}, {0, 0}}
	v = p.Admit(st, 3, 0)
	if v.Action != PushOut || v.VictimOut != 0 || v.VictimVC != 1 {
		t.Errorf("vc choice: got %+v, want victim (0, 1)", v)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range Specs() {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if rt, err := Parse(p.Name()); err != nil {
			t.Errorf("Parse(%q).Name() = %q does not re-parse: %v", spec, p.Name(), err)
		} else if fmt.Sprintf("%T", rt) != fmt.Sprintf("%T", p) {
			t.Errorf("round trip of %q changed type: %T vs %T", spec, rt, p)
		}
	}
}

func TestParseParameters(t *testing.T) {
	cases := []struct {
		spec string
		want Policy
	}{
		{"share", CompleteSharing{}},
		{"CS", CompleteSharing{}},
		{"static:quota=4", StaticPartition{Quota: 4}},
		{"sp:quota=1", StaticPartition{Quota: 1}},
		{"dt:alpha=2", DynamicThreshold{Alpha: 2}},
		{"dynamic:alpha=0.5", DynamicThreshold{Alpha: 0.5}},
		{"dd:target=64", DelayDriven{Target: 64}},
		{" pushout ", PushOutLQF{}},
		{"po", PushOutLQF{}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %#v, want %#v", c.spec, got, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"", "  ", ":", "nope", "dt:alpha=0", "dt:alpha=-1", "dt:alpha=nan",
		"dt:alpha=1e300", "dt:beta=1", "static:quota=0", "static:quota=-3",
		"static:quota=x", "dd:target=0", "dd:target=-5", "share:quota=1",
		"pushout:alpha=1", "dt:alpha", "dt:=2", "dt:alpha=", "dt:alpha=1,alpha=2",
	}
	for _, spec := range bad {
		p, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q) = %v, want error", spec, p)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("Parse(%q) error %v does not wrap ErrBadConfig", spec, err)
		}
	}
}
