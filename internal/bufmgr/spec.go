package bufmgr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadConfig is the sentinel wrapped by every spec-parse error, so
// callers can test class membership with errors.Is regardless of the
// specific complaint.
var ErrBadConfig = errors.New("bufmgr: bad policy spec")

// Parse turns a policy spec string into a Policy. The grammar is
//
//	name[:key=value[,key=value...]]
//
// with these names (aliases in parentheses) and parameters:
//
//	share   (cs, complete)  — complete sharing, no parameters
//	static  (sp, partition) — quota=N      per-output cell quota (N ≥ 1;
//	                          default Capacity/Ports)
//	dt      (dynamic)       — alpha=F      Choudhury–Hahne multiplier
//	                          (F > 0; default 1)
//	dd      (delay)         — target=N     delay budget in cycles (N ≥ 1;
//	                          default CellCycles·Capacity)
//	pushout (po)            — longest-queue-first push-out, no parameters
//
// Examples: "share", "dt:alpha=2", "static:quota=4". Errors wrap
// ErrBadConfig; Parse never panics.
func Parse(spec string) (Policy, error) {
	name, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	switch name {
	case "share", "cs", "complete":
		if err := noParams(name, params); err != nil {
			return nil, err
		}
		return CompleteSharing{}, nil
	case "static", "sp", "partition":
		p := StaticPartition{}
		for k, v := range params {
			if k != "quota" {
				return nil, fmt.Errorf("%w: %s: unknown parameter %q", ErrBadConfig, name, k)
			}
			q, err := strconv.Atoi(v)
			if err != nil || q < 1 {
				return nil, fmt.Errorf("%w: %s: quota must be a positive integer, got %q", ErrBadConfig, name, v)
			}
			p.Quota = q
		}
		return p, nil
	case "dt", "dynamic":
		p := DynamicThreshold{}
		for k, v := range params {
			if k != "alpha" {
				return nil, fmt.Errorf("%w: %s: unknown parameter %q", ErrBadConfig, name, k)
			}
			a, err := strconv.ParseFloat(v, 64)
			if err != nil || !(a > 0) || a > 1e9 {
				return nil, fmt.Errorf("%w: %s: alpha must be in (0, 1e9], got %q", ErrBadConfig, name, v)
			}
			p.Alpha = a
		}
		return p, nil
	case "dd", "delay":
		p := DelayDriven{}
		for k, v := range params {
			if k != "target" {
				return nil, fmt.Errorf("%w: %s: unknown parameter %q", ErrBadConfig, name, k)
			}
			t, err := strconv.ParseInt(v, 10, 64)
			if err != nil || t < 1 {
				return nil, fmt.Errorf("%w: %s: target must be a positive cycle count, got %q", ErrBadConfig, name, v)
			}
			p.Target = t
		}
		return p, nil
	case "pushout", "po":
		if err := noParams(name, params); err != nil {
			return nil, err
		}
		return PushOutLQF{}, nil
	}
	return nil, fmt.Errorf("%w: unknown policy %q (want share, static, dt, dd or pushout)", ErrBadConfig, name)
}

// Specs returns the canonical spec of every built-in policy with default
// parameters — the sweep set experiments and tools enumerate.
func Specs() []string {
	return []string{"share", "static", "dt", "dd", "pushout"}
}

// splitSpec splits "name:k=v,k=v" into the lowercased name and parameter
// map, validating shape only.
func splitSpec(spec string) (string, map[string]string, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return "", nil, fmt.Errorf("%w: empty spec", ErrBadConfig)
	}
	name, rest, has := strings.Cut(s, ":")
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return "", nil, fmt.Errorf("%w: empty policy name in %q", ErrBadConfig, spec)
	}
	if !has {
		return name, nil, nil
	}
	params := make(map[string]string)
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("%w: malformed parameter %q in %q (want key=value)", ErrBadConfig, kv, spec)
		}
		if _, dup := params[k]; dup {
			return "", nil, fmt.Errorf("%w: duplicate parameter %q in %q", ErrBadConfig, k, spec)
		}
		params[k] = v
	}
	return name, params, nil
}

// noParams rejects any parameters for policies that take none.
func noParams(name string, params map[string]string) error {
	for k := range params {
		return fmt.Errorf("%w: %s takes no parameters, got %q", ErrBadConfig, name, k)
	}
	return nil
}
