package core

import (
	"errors"
	"testing"
)

// TestValidateWrapsErrBadConfig: every rejection, whatever the field, is
// detectable with errors.Is(err, ErrBadConfig) — callers never need to
// match message text.
func TestValidateWrapsErrBadConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no ports", Config{}},
		{"one stage", Config{Ports: 1, Stages: 1}},
		{"word too wide", Config{Ports: 2, WordBits: 65}},
		{"negative cells", Config{Ports: 2, Cells: -1}},
		{"stages below 2n", Config{Ports: 4, Stages: 6}},
		{"negative link pipeline", Config{Ports: 2, LinkPipeline: -1}},
		{"negative VCs", Config{Ports: 2, VCs: -1}},
		{"negative bypass threshold", Config{Ports: 2, BypassThreshold: -1}},
		{"bypass without ECC", Config{Ports: 2, BypassThreshold: 3}},
		{"bypass with one cell", Config{Ports: 2, Cells: 1, ECC: true, BypassThreshold: 3}},
	} {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted: %+v", tc.name, tc.cfg)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", tc.name, err)
		}
		if _, nerr := New(tc.cfg); !errors.Is(nerr, ErrBadConfig) {
			t.Errorf("%s: New error %v does not wrap ErrBadConfig", tc.name, nerr)
		}
	}
	if err := (Config{Ports: 2, WordBits: 16, Cells: 8, ECC: true, BypassThreshold: 3}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
