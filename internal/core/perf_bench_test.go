package core

import (
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/obs"
	"pipemem/internal/traffic"
)

// benchTick drives a switch for b.N cycles with the pooled injection path
// (cell.Pool + SetDrainRecycle) that RunTraffic uses. ns/op is ns/cycle;
// allocs/op must be 0 in steady state; cells/sec is reported as a rate
// metric. A non-nil observer is installed before the warmup.
func benchTick(b *testing.B, cfg Config, tcfg traffic.Config, o ...*Observer) {
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if len(o) > 0 && o[0] != nil {
		s.SetObserver(o[0])
	}
	k := s.Config().Stages
	cs, err := traffic.NewCellStream(tcfg, k)
	if err != nil {
		b.Fatal(err)
	}
	pool := cell.NewPool(k)
	s.SetDrainRecycle(true)
	heads := make([]int, s.Config().Ports)
	hc := make([]*cell.Cell, s.Config().Ports)
	var seq uint64
	delivered := 0
	tick := func() {
		if cs.Heads(heads) == 0 {
			s.Tick(nil)
		} else {
			for j := range hc {
				hc[j] = nil
				if heads[j] != traffic.NoArrival {
					seq++
					hc[j] = pool.New(seq, j, heads[j], cfg.WordBits)
				}
			}
			s.Tick(hc)
		}
		for _, d := range s.Drain() {
			pool.Put(d.Expected)
			delivered++
		}
	}
	// Warm the pools so the measured window is steady state.
	for i := 0; i < 4*cfg.Cells; i++ {
		tick()
	}
	delivered = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "cells/sec")
}

// BenchmarkTickSteadyState is the headline microbenchmark: an 8×8 switch
// at full admissible load (permutation traffic, the E5/E9-shaped RTL
// saturation run).
func BenchmarkTickSteadyState(b *testing.B) {
	benchTick(b,
		Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
		traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42})
}

// BenchmarkTickSteadyStateMetrics is the same point with the metrics
// observer installed (no tracer) — compare against
// BenchmarkTickSteadyState for the enabled-metrics overhead (budget: ≤10%
// cells/sec, 0 allocs/op; gated by `make obs-overhead`).
func BenchmarkTickSteadyStateMetrics(b *testing.B) {
	benchTick(b,
		Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
		traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42},
		NewObserver(obs.NewRegistry(), 8))
}

// BenchmarkTickSteadyStateObserved adds the ring tracer at sampling 1 —
// the full-rate trace cost (every wave, stall and departure emits an
// event). This is the worst case; production tracing bounds it with the
// -trace-sample knob.
func BenchmarkTickSteadyStateObserved(b *testing.B) {
	o := NewObserver(obs.NewRegistry(), 8)
	o.Tracer = obs.NewTracer(nil, 0, 1)
	benchTick(b,
		Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
		traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42},
		o)
}

// BenchmarkTickSaturation overloads the same switch with uniform
// saturation traffic (HOL-free shared buffer under maximum pressure).
func BenchmarkTickSaturation(b *testing.B) {
	benchTick(b,
		Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
		traffic.Config{Kind: traffic.Saturation, N: 8, Seed: 42})
}

// BenchmarkTickBernoulli16 exercises a larger switch at 0.8 load.
func BenchmarkTickBernoulli16(b *testing.B) {
	benchTick(b,
		Config{Ports: 16, WordBits: 16, Cells: 512, CutThrough: true},
		traffic.Config{Kind: traffic.Bernoulli, N: 16, Load: 0.8, Seed: 42})
}

// BenchmarkRunTraffic measures the full RunTraffic driver (stream
// decode, injection, verification) per cycle.
func BenchmarkRunTraffic(b *testing.B) {
	s, err := New(Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true})
	if err != nil {
		b.Fatal(err)
	}
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42}, s.Config().Stages)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	res, err := RunTraffic(s, cs, int64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Delivered)/b.Elapsed().Seconds(), "cells/sec")
}

// BenchmarkDualTickSteadyState drives the §3.5 half-quantum organization
// with the pooled path.
func BenchmarkDualTickSteadyState(b *testing.B) {
	cfg := Config{Ports: 8, WordBits: 16, Cells: 128, CutThrough: true}
	d, err := NewDual(cfg)
	if err != nil {
		b.Fatal(err)
	}
	k := d.Config().Stages
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42}, k)
	if err != nil {
		b.Fatal(err)
	}
	pool := cell.NewPool(k)
	d.SetDrainRecycle(true)
	heads := make([]int, 8)
	hc := make([]*cell.Cell, 8)
	var seq uint64
	delivered := 0
	tick := func() {
		cs.Heads(heads)
		for j := range hc {
			hc[j] = nil
			if heads[j] != traffic.NoArrival {
				seq++
				hc[j] = pool.New(seq, j, heads[j], cfg.WordBits)
			}
		}
		d.Tick(hc)
		for _, dep := range d.Drain() {
			pool.Put(dep.Expected)
			delivered++
		}
	}
	for i := 0; i < 4*cfg.Cells; i++ {
		tick()
	}
	delivered = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
	b.StopTimer()
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "cells/sec")
}
