package core

import (
	"pipemem/internal/bufmgr"
	"pipemem/internal/obs"
)

// Shared-buffer management (bufmgr wiring).
//
// The switch consults an optional bufmgr.Policy at write-wave admission:
// before a pending arrival claims a free buffer address, the policy sees
// the live occupancy (through the bufView adapter below) and rules
// accept, drop, or push-out. No policy installed — the default — is the
// paper's complete sharing with backpressure: arrivals wait for a free
// address and are lost only by input-register overrun.
//
// Accounting keeps the conservation invariant exact under every verdict:
// a policy drop consumes the pending arrival ("drop-policy"), a push-out
// removes one queued copy from the buffer ("drop-pushout"), and both add
// into DroppedCells alongside the pre-existing overrun and bypass modes,
// so offered == delivered + DroppedCells() + Resident() at every instant.

// bufView adapts the switch to the read-only bufmgr.State interface. One
// instance is boxed once at construction (Switch.polState), so consulting
// a policy in the Tick hot path allocates nothing.
type bufView struct{ s *Switch }

// Capacity implements bufmgr.State, reporting the usable address count
// (halved while a stage bypass is active).
func (v *bufView) Capacity() int { return v.s.addrLimit }

// Free implements bufmgr.State.
func (v *bufView) Free() int { return v.s.free.Free() }

// Queued implements bufmgr.State.
func (v *bufView) Queued(out int) int { return v.s.outOcc[out] }

// QueuedVC implements bufmgr.State.
func (v *bufView) QueuedVC(out, vc int) int { return v.s.queues.Len(v.s.qidx(out, vc)) }

// Ports implements bufmgr.State.
func (v *bufView) Ports() int { return v.s.n }

// VCs implements bufmgr.State.
func (v *bufView) VCs() int { return v.s.cfg.VCs }

// CellCycles implements bufmgr.State: one cell occupies an output link
// for K cycles, the per-cell service time delay-based policies divide by.
func (v *bufView) CellCycles() int { return v.s.k }

// Cycle implements bufmgr.State.
func (v *bufView) Cycle() int64 { return v.s.cycle }

// SetBufferPolicy installs (or, with nil, removes) the shared-buffer
// admission policy consulted at write-wave admission. The default — no
// policy — behaves exactly like bufmgr.CompleteSharing: admit while a
// free address exists, backpressure otherwise. Install before driving
// traffic; swapping policies mid-run is allowed between Ticks.
func (s *Switch) SetBufferPolicy(p bufmgr.Policy) { s.policy = p }

// BufferPolicy returns the installed admission policy (nil = default
// complete sharing).
func (s *Switch) BufferPolicy() bufmgr.Policy { return s.policy }

// DroppedCells totals every loss mode the switch has: displaced arrivals
// ("drop-overrun"), policy refusals ("drop-policy"), push-out victims
// ("drop-pushout") and bypass flushes ("drop-bypass"). Conservation
// demands offered == delivered + DroppedCells() + Resident().
func (s *Switch) DroppedCells() int64 {
	return s.counter.Get("drop-overrun") + s.counter.Get("drop-policy") +
		s.counter.Get("drop-pushout") + s.counter.Get("drop-bypass")
}

// dropPolicy consumes input in's pending arrival on a Drop verdict: the
// input register row is released (no write wave will ever be requested)
// and the loss is booked against the arrival's input and its destination
// output.
func (s *Switch) dropPolicy(in int, a *arrival) {
	a.written = true
	s.pendClear(in)
	*s.cDropPolicy++
	s.inDrops[in]++
	s.outDrops[a.c.Dst]++
	if o := s.obs; o != nil {
		s.obsLocal.dropPolicy++
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.EvDrop, Cycle: s.cycle, In: int32(in), Out: int32(a.c.Dst), Addr: -1})
		}
	}
	if s.onDropCell != nil {
		// Not reusable: the inert input register keeps streaming the
		// victim's words until its cell time ends.
		s.onDropCell(a.c, false)
	}
}

// pushOut evicts the head descriptor of queue (out, vc) on a PushOut
// verdict, freeing its buffer address for the arrival being admitted.
// Evicting the head (drop-from-front) is the only removal the FIFO
// descriptor queues support, and it is safe against the victim's own
// write wave still being in flight: any wave initiated this cycle trails
// it stage by stage, so every reused location is rewritten strictly after
// the victim wrote it. A multicast victim's address is freed only when
// its last queued copy is gone; if other copies remain, the push-out
// removed a copy but freed nothing and the arrival keeps waiting.
func (s *Switch) pushOut(out, vc int) {
	if out < 0 || out >= s.n || vc < 0 || vc >= s.cfg.VCs {
		return // malformed verdict: treat as plain backpressure
	}
	node, ok := s.queues.Pop(s.qidx(out, vc))
	if !ok {
		return
	}
	d := &s.nodes[node]
	addr := d.addr
	s.nfree.Put(node)
	s.occDec(out)
	s.refcnt[addr]--
	if s.refcnt[addr] == 0 {
		// The victim's payload may still be lazily deferred; deposit it
		// before the address is recycled so the bank array keeps the same
		// bytes an eager write would have left behind.
		s.materializeAddr(addr)
		s.free.Put(addr)
	}
	*s.cDropPushout++
	s.outDrops[out]++
	if o := s.obs; o != nil {
		s.obsLocal.dropPushOut++
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.EvDrop, Cycle: s.cycle, In: -1, Out: int32(out), Addr: int32(addr)})
		}
	}
	if s.onDropCell != nil && s.refcnt[addr] == 0 {
		// Fire only when the last copy is gone. Not reusable: the
		// victim's write wave may still be in flight (the §3.2 argument
		// makes those late writes unobservable, but they do read the
		// cell).
		s.onDropCell(d.c, false)
	}
}
