package core

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/stats"
)

// Deterministic state capture of a Switch.
//
// Snapshot walks every piece of loop-carried state the Tick machine
// depends on and externalizes it into plain, JSON-serializable structs;
// NewFromSnapshot rebuilds a switch that continues bit for bit where the
// original left off. The correctness bar is replay equivalence: a run
// restored at cycle k must produce the same departures, the same drops and
// the same trace events as the uninterrupted run.
//
// What is deliberately NOT captured:
//
//   - The recycling pools (reasmFree, cellFree, doneOut) and the cell
//     pool warmth: they only affect allocation, never behavior.
//   - The observability layer (Observer, tracer, shadow tallies): metrics
//     restart from zero after a restore; events emitted after the restore
//     point are still identical to the uninterrupted run's.
//   - Hooks (gates, transmit callbacks) and the bufmgr policy object:
//     callers reinstall them after restore (the checkpoint layer records
//     the policy spec string for exactly this purpose).
//
// Cells appear in several structures at once (an input-register arrival,
// its queued descriptor and its egress reassembly record may all reference
// one *cell.Cell). Snapshot serializes each reference by content, so
// restore breaks the aliasing into distinct copies. This is behaviorally
// invisible: inside the switch a cell's content is read-only, the input
// latching window ends before its departure completes, and integrity
// comparisons are by value.

// CellState is the serialized form of a cell.Cell.
type CellState struct {
	Seq     uint64
	Src     int
	Dst     int
	VC      int
	Copies  []int `json:",omitempty"`
	Enqueue int64
	Words   []cell.Word
}

func cellState(c *cell.Cell) *CellState {
	if c == nil {
		return nil
	}
	st := &CellState{
		Seq: c.Seq, Src: c.Src, Dst: c.Dst, VC: c.VC,
		Enqueue: c.Enqueue,
		Words:   append([]cell.Word(nil), c.Words...),
	}
	if c.Copies != nil {
		st.Copies = append([]int(nil), c.Copies...)
	}
	return st
}

func cellFromState(st *CellState) *cell.Cell {
	if st == nil {
		return nil
	}
	c := &cell.Cell{
		Seq: st.Seq, Src: st.Src, Dst: st.Dst, VC: st.VC,
		Enqueue: st.Enqueue,
		Words:   append([]cell.Word(nil), st.Words...),
	}
	if st.Copies != nil {
		c.Copies = append([]int(nil), st.Copies...)
	}
	return c
}

// OutWordState is the serialized form of one shared output register.
type OutWordState struct {
	Word     cell.Word
	Out      int
	LoadedAt int64
	Valid    bool
}

// ArrivalState is the serialized form of one input register row's
// occupancy.
type ArrivalState struct {
	Cell    *CellState `json:",omitempty"`
	Head    int64
	Written bool
	Active  bool
}

// DescState is the serialized form of a buffered cell's descriptor.
type DescState struct {
	Cell       *CellState
	Head       int64
	WriteStart int64
	VC         int
	Addr       int
}

func descState(d *desc) DescState {
	return DescState{Cell: cellState(d.c), Head: d.head, WriteStart: d.writeStart, VC: d.vc, Addr: d.addr}
}

func descFromState(st *DescState) desc {
	return desc{c: cellFromState(st.Cell), head: st.Head, writeStart: st.WriteStart, vc: st.VC, addr: st.Addr}
}

// QueueNodeState is one descriptor-queue entry: the node index it occupies
// in the shared pool (index identity matters — the node free list's
// allocation order is part of the deterministic state) and the descriptor
// content.
type QueueNodeState struct {
	Node int
	Desc DescState
}

// ReasmState is one departure in flight at an egress link.
type ReasmState struct {
	Desc  DescState
	Words []cell.Word
	Start int64
}

// SwitchState is the complete serialized state of a Switch between Ticks.
// All fields are exported and JSON-round-trippable.
type SwitchState struct {
	Config Config
	Cycle  int64

	Mem    [][]cell.Word
	ECCMem [][]uint8 `json:",omitempty"`
	InReg  [][]cell.Word
	OutReg []OutWordState
	Ctrl   []Op
	Loaded []int

	Inflight []ArrivalState

	// FreeAddrs and FreeNodes are the exact LIFO stacks of the address and
	// descriptor-node free lists (last entry = next allocation).
	FreeAddrs []int32
	FreeNodes []int32
	// Queues[q] lists queue q's nodes front to tail.
	Queues [][]QueueNodeState
	Refcnt []int
	OutOcc []int

	WrSkip   []int64
	InStalls []int64
	InDrops  []int64
	OutDrops []int64

	LinkFree  []int64
	ReadRR    int
	VCRR      []int
	VCWeights [][]int `json:",omitempty"`
	VCTokens  [][]int `json:",omitempty"`
	WriteRR   int

	Egress [][]ReasmState

	Stuck        []bool `json:",omitempty"`
	StageErr     []int
	StageDown    []bool
	Halved       bool
	Failed       bool
	AddrLimit    int
	LastInit     int64
	WriteStartAt []int64

	// Committed marks ctrl-ring slots whose memory traffic the batched
	// fast path already applied (their departures are rebuilt from the
	// egress records holding all K words). ForcedExact records that a
	// per-stage fault seam fired, permanently pinning the exact path.
	// Both are additive to the v1 schema: absent in older files, their
	// zero values describe exactly what older files contain — a fully
	// un-committed, exact-path state.
	Committed   uint64 `json:",omitempty"`
	ForcedExact bool   `json:",omitempty"`

	// InDelay[slot][input] is the §4.3 link-pipelining delay line content
	// (present only when Config.LinkPipeline > 0 and the line has been
	// touched).
	InDelay [][]*CellState `json:",omitempty"`

	Counters   map[string]int64
	InitDelay  stats.MeanState
	CutLatency stats.HistState
}

// Snapshot exports the switch's complete state. It must be taken at a
// cycle boundary with no uncollected departures (call Drain first); the
// departure buffer references recycled cells whose ownership is in flight,
// so checkpointing between Tick and Drain is an error.
func (s *Switch) Snapshot() (*SwitchState, error) {
	if len(s.done) != 0 {
		return nil, fmt.Errorf("core: snapshot with %d uncollected departures; call Drain before Snapshot", len(s.done))
	}
	// While batching, the input registers are not maintained per cycle;
	// bring them to their canonical full-row form so the serialized state
	// is deterministic regardless of how long the fast path ran.
	if s.fastMode {
		s.materializeInReg()
	}
	st := &SwitchState{
		Config: s.cfg,
		Cycle:  s.cycle,

		Mem:    s.memBanks(),
		InReg:  copyWords2(s.inReg),
		OutReg: make([]OutWordState, s.k),
		Ctrl:   append([]Op(nil), s.ctrl...),
		Loaded: append([]int(nil), s.loaded...),

		Inflight: make([]ArrivalState, s.n),

		FreeAddrs: s.free.Snapshot(),
		FreeNodes: s.nfree.Snapshot(),
		Queues:    make([][]QueueNodeState, s.queues.Queues()),
		Refcnt:    append([]int(nil), s.refcnt...),
		OutOcc:    append([]int(nil), s.outOcc...),

		WrSkip:   append([]int64(nil), s.wrSkip...),
		InStalls: append([]int64(nil), s.inStalls...),
		InDrops:  append([]int64(nil), s.inDrops...),
		OutDrops: append([]int64(nil), s.outDrops...),

		LinkFree: append([]int64(nil), s.linkFree...),
		ReadRR:   s.readRR,
		VCRR:     append([]int(nil), s.vcRR...),
		WriteRR:  s.writeRR,

		Egress: make([][]ReasmState, s.n),

		StageErr:     append([]int(nil), s.stageErr...),
		StageDown:    append([]bool(nil), s.stageDown...),
		Halved:       s.halved,
		Failed:       s.failed,
		AddrLimit:    s.addrLimit,
		LastInit:     s.lastInit,
		WriteStartAt: append([]int64(nil), s.writeStartAt...),

		Counters:   s.counter.Snapshot(),
		InitDelay:  s.initDelay.State(),
		CutLatency: s.cutLatency.State(),

		Committed:   s.committed,
		ForcedExact: s.forcedExact,
	}
	if s.eccMem != nil {
		st.ECCMem = make([][]uint8, s.k)
		for b := range s.eccMem {
			st.ECCMem[b] = append([]uint8(nil), s.eccMem[b]...)
		}
	}
	for i := range s.outReg {
		r := &s.outReg[i]
		st.OutReg[i] = OutWordState{Word: r.word, Out: r.out, LoadedAt: r.loadedAt, Valid: r.valid}
	}
	for i := range s.inflight {
		a := &s.inflight[i]
		st.Inflight[i] = ArrivalState{Cell: cellState(a.c), Head: a.head, Written: a.written, Active: a.active}
	}
	for q := range st.Queues {
		list := []QueueNodeState{}
		s.queues.Do(q, func(node int) {
			list = append(list, QueueNodeState{Node: node, Desc: descState(&s.nodes[node])})
		})
		st.Queues[q] = list
	}
	for o := range s.egress {
		e := s.egress[o]
		list := make([]ReasmState, 0, e.Len())
		for i := 0; i < e.Len(); i++ {
			r, _ := e.At(i)
			list = append(list, ReasmState{
				Desc:  descState(&r.d),
				Words: append([]cell.Word(nil), r.words...),
				Start: r.start,
			})
		}
		// On the fast path the rings are empty and each in-flight
		// transmission lives in rxHead alone; serialize it from there so
		// the state round-trips identically to the exact path's.
		if s.fastMode {
			if r := s.rxHead[o]; r != nil {
				list = append(list, ReasmState{
					Desc:  descState(&r.d),
					Words: append([]cell.Word(nil), r.words...),
					Start: r.start,
				})
			}
		}
		st.Egress[o] = list
	}
	if s.vcWeights != nil {
		st.VCWeights = copyInts2(s.vcWeights)
		st.VCTokens = copyInts2(s.vcTokens)
	}
	if s.stuck != nil {
		st.Stuck = append([]bool(nil), s.stuck...)
	}
	if s.inDelay != nil {
		st.InDelay = make([][]*CellState, len(s.inDelay))
		for slot := range s.inDelay {
			row := make([]*CellState, s.n)
			for i, c := range s.inDelay[slot] {
				row[i] = cellState(c)
			}
			st.InDelay[slot] = row
		}
	}
	return st, nil
}

// NewFromSnapshot rebuilds a switch from an exported state. The returned
// switch has no observer, tracer, hooks or bufmgr policy installed —
// reattach them before Ticking (a bufmgr policy must be the same policy
// the snapshotted switch ran, or replay diverges).
func NewFromSnapshot(st *SwitchState) (*Switch, error) {
	s, err := New(st.Config)
	if err != nil {
		return nil, err
	}
	n, k := s.n, s.k
	if err := checkLens("switch state", map[string]([2]int){
		"Mem":          {len(st.Mem), k},
		"InReg":        {len(st.InReg), n},
		"OutReg":       {len(st.OutReg), k},
		"Ctrl":         {len(st.Ctrl), k},
		"Inflight":     {len(st.Inflight), n},
		"Queues":       {len(st.Queues), s.queues.Queues()},
		"Refcnt":       {len(st.Refcnt), s.cfg.Cells},
		"OutOcc":       {len(st.OutOcc), n},
		"WrSkip":       {len(st.WrSkip), n},
		"InStalls":     {len(st.InStalls), n},
		"InDrops":      {len(st.InDrops), n},
		"OutDrops":     {len(st.OutDrops), n},
		"LinkFree":     {len(st.LinkFree), n},
		"VCRR":         {len(st.VCRR), n},
		"Egress":       {len(st.Egress), n},
		"StageErr":     {len(st.StageErr), k},
		"StageDown":    {len(st.StageDown), k},
		"WriteStartAt": {len(st.WriteStartAt), s.cfg.Cells},
	}); err != nil {
		return nil, err
	}
	for b := range st.Mem {
		if len(st.Mem[b]) != s.cfg.Cells {
			return nil, fmt.Errorf("core: switch state Mem[%d] has %d words, want %d", b, len(st.Mem[b]), s.cfg.Cells)
		}
		for a, w := range st.Mem[b] {
			s.mem[s.memIdx(b, a)] = w
		}
	}
	if st.ECCMem != nil {
		if s.eccMem == nil {
			return nil, fmt.Errorf("core: switch state carries ECC bits but config has ECC off")
		}
		if len(st.ECCMem) != k {
			return nil, fmt.Errorf("core: switch state ECCMem has %d banks, want %d", len(st.ECCMem), k)
		}
		for b := range st.ECCMem {
			copy(s.eccMem[b], st.ECCMem[b])
		}
	} else if s.eccMem != nil {
		return nil, fmt.Errorf("core: config has ECC on but switch state carries no ECC bits")
	}
	for i := range st.InReg {
		if len(st.InReg[i]) != k {
			return nil, fmt.Errorf("core: switch state InReg[%d] has %d words, want %d", i, len(st.InReg[i]), k)
		}
		copy(s.inReg[i], st.InReg[i])
	}
	for i, r := range st.OutReg {
		s.outReg[i] = outWord{word: r.Word, out: r.Out, loadedAt: r.LoadedAt, valid: r.Valid}
	}
	copy(s.ctrl, st.Ctrl)
	// Rebuild the SoA occupancy bookkeeping from the restored ring; the
	// committed mask is sanitized against it (a committed bit is only
	// meaningful on a slot holding a live op). The switch restarts on the
	// exact path — committed slots are skipped there — and the deferred
	// flip in Tick re-enters the batched path on the first cycle it is
	// legal, so a fast-captured snapshot resumes at full speed.
	s.ringOps, s.waveMask = 0, 0
	for slot := range s.ctrl {
		if s.ctrl[slot].Kind != OpNone {
			s.ringOps++
			if slot < 64 {
				s.waveMask |= uint64(1) << uint(slot)
			}
		}
	}
	s.committed = st.Committed & s.waveMask
	s.forcedExact = st.ForcedExact
	for _, stg := range st.Loaded {
		if stg < 0 || stg >= k {
			return nil, fmt.Errorf("core: switch state loaded stage %d out of range", stg)
		}
	}
	s.loaded = append(s.loaded[:0], st.Loaded...)

	s.pendingWrites, s.pendMask = 0, 0
	for i := range st.Inflight {
		a := &st.Inflight[i]
		s.inflight[i] = arrival{c: cellFromState(a.Cell), head: a.Head, written: a.Written, active: a.Active}
		if a.Active && !a.Written {
			s.pendSet(i)
		}
	}

	if err := s.free.RestoreState(st.FreeAddrs); err != nil {
		return nil, fmt.Errorf("core: restore address free list: %w", err)
	}
	if err := s.nfree.RestoreState(st.FreeNodes); err != nil {
		return nil, fmt.Errorf("core: restore descriptor free list: %w", err)
	}
	for q, list := range st.Queues {
		for i := range list {
			qn := &list[i]
			if qn.Node < 0 || qn.Node >= len(s.nodes) {
				return nil, fmt.Errorf("core: switch state queue %d holds node %d out of range", q, qn.Node)
			}
			if !s.nfree.Allocated(qn.Node) {
				return nil, fmt.Errorf("core: switch state queue %d holds node %d that the free list says is free", q, qn.Node)
			}
			s.nodes[qn.Node] = descFromState(&qn.Desc)
			s.queues.Push(q, qn.Node)
		}
	}
	copy(s.refcnt, st.Refcnt)
	copy(s.outOcc, st.OutOcc)
	s.occMask = 0
	for o, occ := range s.outOcc {
		if occ > 0 && o < 64 {
			s.occMask |= uint64(1) << uint(o)
		}
	}
	// The read fail-fast floor is a derived cache, never serialized:
	// restart it unknown and let the first failed scan rebuild it.
	s.readFloor = 0
	// Restored payloads live in st.Mem; no deposit is deferred.
	for a := range s.memLazy {
		s.memLazy[a] = nil
	}
	s.lazyCount = 0

	copy(s.wrSkip, st.WrSkip)
	copy(s.inStalls, st.InStalls)
	copy(s.inDrops, st.InDrops)
	copy(s.outDrops, st.OutDrops)

	copy(s.linkFree, st.LinkFree)
	s.readRR = st.ReadRR
	copy(s.vcRR, st.VCRR)
	s.writeRR = st.WriteRR
	if st.VCWeights != nil {
		s.vcWeights = copyInts2(st.VCWeights)
		s.vcTokens = copyInts2(st.VCTokens)
	}

	for o, list := range st.Egress {
		for i := range list {
			rs := &list[i]
			r := s.getReasm()
			r.d = descFromState(&rs.Desc)
			r.words = append(r.words[:0], rs.Words...)
			r.start = rs.Start
			s.egress[o].Push(r)
			// A record already holding all K words is a departure the
			// batched path committed whole: the exact drive appends the
			// K-th word and completes in the same phase, so it never
			// serializes a full record. Re-post it to the completion ring
			// (head on the link at Start ⇒ tail, and completion, at
			// Start+K-1).
			if len(r.words) == k {
				cc := r.start + int64(k) - 1
				if cc < st.Cycle || cc >= st.Cycle+int64(k) {
					return nil, fmt.Errorf("core: switch state egress %d holds a committed departure completing at cycle %d, outside %d…%d", o, cc, st.Cycle, st.Cycle+int64(k)-1)
				}
				slot := s.depSlot(cc)
				if s.departAt[slot].r != nil {
					return nil, fmt.Errorf("core: switch state schedules two committed departures for cycle %d", cc)
				}
				s.departAt[slot] = departSlot{r: r, out: o}
				s.txPending++
			}
		}
		if front, ok := s.egress[o].Front(); ok {
			s.rxHead[o] = front
		}
	}

	if st.Stuck != nil {
		if len(st.Stuck) != k {
			return nil, fmt.Errorf("core: switch state Stuck has %d banks, want %d", len(st.Stuck), k)
		}
		s.stuck = append([]bool(nil), st.Stuck...)
	}
	copy(s.stageErr, st.StageErr)
	copy(s.stageDown, st.StageDown)
	s.halved = st.Halved
	s.failed = st.Failed
	if st.AddrLimit < 0 || st.AddrLimit > s.cfg.Cells {
		return nil, fmt.Errorf("core: switch state address limit %d out of range 0…%d", st.AddrLimit, s.cfg.Cells)
	}
	s.addrLimit = st.AddrLimit
	s.lastInit = st.LastInit
	copy(s.writeStartAt, st.WriteStartAt)

	if st.InDelay != nil {
		r := s.cfg.LinkPipeline
		if len(st.InDelay) != r {
			return nil, fmt.Errorf("core: switch state delay line has %d slots, config pipelines %d", len(st.InDelay), r)
		}
		s.inDelay = make([][]*cell.Cell, r)
		s.delayScratch = make([]*cell.Cell, n)
		s.delayCount = 0
		for slot := range st.InDelay {
			if len(st.InDelay[slot]) != n {
				return nil, fmt.Errorf("core: switch state delay slot %d has %d inputs, want %d", slot, len(st.InDelay[slot]), n)
			}
			s.inDelay[slot] = make([]*cell.Cell, n)
			for i, cs := range st.InDelay[slot] {
				c := cellFromState(cs)
				s.inDelay[slot][i] = c
				if c != nil {
					s.delayCount++
				}
			}
		}
	}

	for name, v := range st.Counters {
		s.counter.Set(name, v)
	}
	s.initDelay.RestoreState(st.InitDelay)
	if err := s.cutLatency.RestoreState(st.CutLatency); err != nil {
		return nil, fmt.Errorf("core: restore cut-latency histogram: %w", err)
	}
	s.cycle = st.Cycle
	return s, nil
}

// memBanks exports the flat address-major buffer as the per-bank 2D view
// ([stage][address]) the serialized schema has always used, keeping
// checkpoint files readable across the layout change.
func (s *Switch) memBanks() [][]cell.Word {
	s.materializeLazy()
	out := make([][]cell.Word, s.k)
	for b := range out {
		row := make([]cell.Word, s.cfg.Cells)
		for a := range row {
			row[a] = s.mem[s.memIdx(b, a)]
		}
		out[b] = row
	}
	return out
}

func copyWords2(src [][]cell.Word) [][]cell.Word {
	out := make([][]cell.Word, len(src))
	for i := range src {
		out[i] = append([]cell.Word(nil), src[i]...)
	}
	return out
}

func copyInts2(src [][]int) [][]int {
	out := make([][]int, len(src))
	for i := range src {
		if src[i] != nil {
			out[i] = append([]int(nil), src[i]...)
		}
	}
	return out
}

// checkLens validates a batch of {got, want} slice lengths.
func checkLens(what string, lens map[string][2]int) error {
	for name, gw := range lens {
		if gw[0] != gw[1] {
			return fmt.Errorf("core: %s field %s has %d entries, want %d", what, name, gw[0], gw[1])
		}
	}
	return nil
}
