package core

import (
	"strings"
	"testing"

	"pipemem/internal/cell"
)

// TestGoldenFig5Trace pins the exact cycle-by-cycle control trace of the
// fig. 4/fig. 5 scenario: a 2×2 switch (4 stages), a cell arriving on
// input 0 for output 1 at cycle 0, and a second cell on input 1 for the
// same output at cycle 4. The expected lines encode, literally:
//
//   - cycle 1: the first cell's write wave is initiated as a
//     write-through T (automatic cut-through: output 1 is idle);
//   - the control word marches one stage right per cycle (fig. 5);
//   - cycle 5: output 1's first transmission occupies cycles 2…5, so at
//     cycle 5 the link is bookable again and the second cell *also*
//     upgrades to a write-through — its words go out at cycles 6…9,
//     back-to-back with the first cell's, with zero idle link cycles;
//   - every output drive M_s→1 follows its register load by one cycle.
//
// Any behavioural change to arbitration, wave timing, or cut-through
// shows up as a diff against this golden text.
func TestGoldenFig5Trace(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages // 4
	var lines []string
	s.SetTracer(func(e TraceEvent) { lines = append(lines, e.String()) })

	for c := int64(0); c < 16; c++ {
		var heads []*cell.Cell
		switch c {
		case 0:
			heads = []*cell.Cell{cell.New(1, 0, 1, k, 16), nil}
		case 4:
			heads = []*cell.Cell{nil, cell.New(2, 1, 1, k, 16)}
		}
		s.Tick(heads)
	}
	deps := s.Drain()
	if len(deps) != 2 {
		t.Fatalf("%d departures, want 2", len(deps))
	}

	golden := strings.TrimSpace(`
c=0    | M0:- M1:- M2:- M3:- | in: 0:h | out: -
c=1    | M0:T(in0,out1,a0) M1:- M2:- M3:- | in: 0:1 | out: -
c=2    | M0:- M1:T(in0,out1,a0) M2:- M3:- | in: 0:2 | out: M0→1
c=3    | M0:- M1:- M2:T(in0,out1,a0) M3:- | in: 0:3 | out: M1→1
c=4    | M0:- M1:- M2:- M3:T(in0,out1,a0) | in: 1:h | out: M2→1
c=5    | M0:T(in1,out1,a0) M1:- M2:- M3:- | in: 1:1 | out: M3→1
c=6    | M0:- M1:T(in1,out1,a0) M2:- M3:- | in: 1:2 | out: M0→1
c=7    | M0:- M1:- M2:T(in1,out1,a0) M3:- | in: 1:3 | out: M1→1
c=8    | M0:- M1:- M2:- M3:T(in1,out1,a0) | in: - | out: M2→1
c=9    | M0:- M1:- M2:- M3:- | in: - | out: M3→1
c=10   | M0:- M1:- M2:- M3:- | in: - | out: -
c=11   | M0:- M1:- M2:- M3:- | in: - | out: -
c=12   | M0:- M1:- M2:- M3:- | in: - | out: -
c=13   | M0:- M1:- M2:- M3:- | in: - | out: -
c=14   | M0:- M1:- M2:- M3:- | in: - | out: -
c=15   | M0:- M1:- M2:- M3:- | in: - | out: -
`)
	got := strings.TrimSpace(strings.Join(lines, "\n"))
	if got != golden {
		t.Fatalf("trace diverged from fig. 5 golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestGoldenStoreAndForwardTrace pins the same scenario's first cell with
// cut-through disabled: a separate W wave (cycles 1–4) and R wave
// (cycles 5–8) replace the fused T wave, and the head leaves only at
// cycle 6 — after the whole cell has arrived. The contrast with
// TestGoldenFig5Trace is §3.3's "automatic cut-through" made literal.
func TestGoldenStoreAndForwardTrace(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: false})
	k := s.Config().Stages // 4
	var lines []string
	s.SetTracer(func(e TraceEvent) { lines = append(lines, e.String()) })
	for c := int64(0); c < 12; c++ {
		var heads []*cell.Cell
		if c == 0 {
			heads = []*cell.Cell{cell.New(1, 0, 1, k, 16), nil}
		}
		s.Tick(heads)
	}
	deps := s.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures", len(deps))
	}
	golden := strings.TrimSpace(`
c=0    | M0:- M1:- M2:- M3:- | in: 0:h | out: -
c=1    | M0:W(in0,a0) M1:- M2:- M3:- | in: 0:1 | out: -
c=2    | M0:- M1:W(in0,a0) M2:- M3:- | in: 0:2 | out: -
c=3    | M0:- M1:- M2:W(in0,a0) M3:- | in: 0:3 | out: -
c=4    | M0:- M1:- M2:- M3:W(in0,a0) | in: - | out: -
c=5    | M0:R(out1,a0) M1:- M2:- M3:- | in: - | out: -
c=6    | M0:- M1:R(out1,a0) M2:- M3:- | in: - | out: M0→1
c=7    | M0:- M1:- M2:R(out1,a0) M3:- | in: - | out: M1→1
c=8    | M0:- M1:- M2:- M3:R(out1,a0) | in: - | out: M2→1
c=9    | M0:- M1:- M2:- M3:- | in: - | out: M3→1
c=10   | M0:- M1:- M2:- M3:- | in: - | out: -
c=11   | M0:- M1:- M2:- M3:- | in: - | out: -
`)
	got := strings.TrimSpace(strings.Join(lines, "\n"))
	if got != golden {
		t.Fatalf("SF trace diverged:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
