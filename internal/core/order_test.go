package core

import (
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// TestPerOutputServiceOrder is the global FIFO property of the per-output
// descriptor queues (§3.3): for any two cells bound to the same output
// and virtual channel, the one whose write wave was initiated first
// transmits first. The write-initiation cycle is reconstructible from the
// Departure: writeStart = HeadIn + InitDelay + 1.
func TestPerOutputServiceOrder(t *testing.T) {
	for _, vcs := range []int{1, 2} {
		const ports = 4
		s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 64, CutThrough: true, VCs: vcs})
		k := s.Config().Stages
		cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: ports, Seed: 91}, k)
		heads := make([]int, ports)
		hc := make([]*cell.Cell, ports)
		var seq uint64
		// last write-start seen per (output, vc)
		lastStart := map[[2]int]int64{}
		lastHeadOut := map[[2]int]int64{}
		for c := int64(0); c < 30_000; c++ {
			cs.Heads(heads)
			for i := range hc {
				hc[i] = nil
				if heads[i] != traffic.NoArrival {
					seq++
					hc[i] = cell.New(seq, i, heads[i], k, 16)
					hc[i].VC = int(seq) % vcs
				}
			}
			s.Tick(hc)
			for _, d := range s.Drain() {
				key := [2]int{d.Output, d.VC}
				start := d.HeadIn + d.InitDelay + 1
				if prev, ok := lastStart[key]; ok {
					if d.HeadOut <= lastHeadOut[key] {
						t.Fatalf("output %d vc %d: head-out went backwards (%d after %d)",
							d.Output, d.VC, d.HeadOut, lastHeadOut[key])
					}
					if start < prev {
						t.Fatalf("output %d vc %d: served write-start %d after %d — FIFO violated",
							d.Output, d.VC, start, prev)
					}
				}
				lastStart[key] = start
				lastHeadOut[key] = d.HeadOut
			}
		}
	}
}

// TestOutputLinkNeverDoubleDriven: across a saturated run, each outgoing
// link carries at most one word per cycle (two simultaneous drivers would
// be a bus conflict in silicon).
func TestOutputLinkNeverDoubleDriven(t *testing.T) {
	const ports = 4
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 64, CutThrough: true})
	k := s.Config().Stages
	drives := map[[2]int64]int{} // (cycle, out) → count
	s.SetTracer(func(e TraceEvent) {
		for _, o := range e.OutDrive {
			if o >= 0 {
				drives[[2]int64{e.Cycle, int64(o)}]++
			}
		}
	})
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: ports, Seed: 93}, k)
	if _, err := RunTraffic(s, cs, 10_000); err != nil {
		t.Fatal(err)
	}
	for key, n := range drives {
		if n > 1 {
			t.Fatalf("cycle %d output %d driven by %d stages", key[0], key[1], n)
		}
	}
	if len(drives) == 0 {
		t.Fatal("no drives recorded; tracer broken")
	}
}

// TestTinySwitch exercises the degenerate 1×1 configuration: a single
// link pair with a 2-stage pipeline still moves cells intact.
func TestTinySwitch(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 1, WordBits: 8, Cells: 4, CutThrough: true})
	if s.Config().Stages != 2 {
		t.Fatalf("stages = %d, want 2", s.Config().Stages)
	}
	k := s.Config().Stages
	delivered := 0
	var seq uint64
	for c := int64(0); c < 200; c++ {
		var heads []*cell.Cell
		if c%int64(k) == 0 {
			seq++
			heads = []*cell.Cell{cell.New(seq, 0, 0, k, 8)}
		}
		s.Tick(heads)
		for _, d := range s.Drain() {
			if !d.Cell.Equal(d.Expected) {
				t.Fatal("corruption in 1×1 switch")
			}
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestWideWordWidth exercises the 64-bit word boundary (no masking).
func TestWideWordWidth(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 64, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	c := cell.New(1, 0, 1, k, 64)
	c.Words[1] = ^cell.Word(0) // all ones must survive
	s.Tick([]*cell.Cell{c.Clone(), nil})
	for i := 0; i < 4*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 || !deps[0].Cell.Equal(c) {
		t.Fatal("64-bit payload mangled")
	}
}
