package core

import (
	"fmt"
	"io"
	"strings"
)

// VCD (Value Change Dump) export of the fig. 5 control/datapath trace:
// the per-cycle TraceEvents are rendered as an IEEE-1364 VCD stream that
// waveform viewers (GTKWave etc.) display directly — the natural way to
// eyeball an RTL model's waves.
//
// Signals per memory stage s:
//
//	M<s>_op[1:0]    00 idle, 01 write, 10 read, 11 write-through
//	M<s>_addr[15:0] buffer address of the executing wave (x when idle)
//	M<s>_drive[7:0] outgoing link driven by output register s (x when not)
//
// plus per input i: in<i>_latch[7:0], the word index being latched
// (x when the link is idle; 0 marks a new head).

// VCDWriter incrementally emits a VCD stream from trace events.
type VCDWriter struct {
	w       io.Writer
	k, n    int
	cycleNs float64
	started bool
	err     error
	// previous values, to emit changes only
	prevOp    []Op
	prevDrive []int
	prevLatch []int
}

// NewVCDWriter prepares a VCD stream for the switch's geometry with the
// given clock period (timescale granularity 1 ns; each cycle advances the
// VCD time by cycleNs). Install the returned writer's Trace method as the
// switch tracer:
//
//	vw := core.NewVCDWriter(f, sw, 16)
//	sw.SetTracer(vw.Trace)
//	… run …
//	err := vw.Err()
func NewVCDWriter(w io.Writer, s *Switch, cycleNs float64) *VCDWriter {
	if cycleNs <= 0 {
		cycleNs = 1
	}
	return &VCDWriter{w: w, k: s.k, n: s.n, cycleNs: cycleNs}
}

// idOp/idAddr/idDrive/idLatch build the short VCD identifier codes.
func (v *VCDWriter) idOp(s int) string    { return fmt.Sprintf("o%d", s) }
func (v *VCDWriter) idAddr(s int) string  { return fmt.Sprintf("a%d", s) }
func (v *VCDWriter) idDrive(s int) string { return fmt.Sprintf("d%d", s) }
func (v *VCDWriter) idLatch(i int) string { return fmt.Sprintf("l%d", i) }

func (v *VCDWriter) header() {
	fmt.Fprintf(v.w, "$version pipemem pipelined-memory trace $end\n")
	fmt.Fprintf(v.w, "$timescale 1ns $end\n")
	fmt.Fprintf(v.w, "$scope module pipemem $end\n")
	for s := 0; s < v.k; s++ {
		fmt.Fprintf(v.w, "$var wire 2 %s M%d_op [1:0] $end\n", v.idOp(s), s)
		fmt.Fprintf(v.w, "$var wire 16 %s M%d_addr [15:0] $end\n", v.idAddr(s), s)
		fmt.Fprintf(v.w, "$var wire 8 %s M%d_drive [7:0] $end\n", v.idDrive(s), s)
	}
	for i := 0; i < v.n; i++ {
		fmt.Fprintf(v.w, "$var wire 8 %s in%d_latch [7:0] $end\n", v.idLatch(i), i)
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
}

// opBits renders an Op kind as the 2-bit VCD vector value.
func opBits(k OpKind) string {
	switch k {
	case OpWrite:
		return "b01"
	case OpRead:
		return "b10"
	case OpWriteThrough:
		return "b11"
	default:
		return "b00"
	}
}

// bitVec renders a non-negative integer as a binary vector, or x for -1.
func bitVec(val, width int) string {
	if val < 0 {
		return "bx"
	}
	var b strings.Builder
	b.WriteByte('b')
	started := false
	for p := width - 1; p >= 0; p-- {
		bit := (val >> p) & 1
		if bit == 1 {
			started = true
		}
		if started || p == 0 {
			b.WriteByte(byte('0' + bit))
		}
	}
	return b.String()
}

// Trace consumes one per-cycle event; install it with Switch.SetTracer.
func (v *VCDWriter) Trace(e TraceEvent) {
	if v.err != nil {
		return
	}
	out := &strings.Builder{}
	if !v.started {
		v.header()
		v.prevOp = make([]Op, v.k)
		v.prevDrive = make([]int, v.k)
		v.prevLatch = make([]int, v.n)
		for s := range v.prevDrive {
			v.prevDrive[s] = -2 // force initial emit
		}
		for i := range v.prevLatch {
			v.prevLatch[i] = -2
		}
		for s := range v.prevOp {
			v.prevOp[s] = Op{Kind: OpWriteThrough + 1} // impossible: force emit
		}
		v.started = true
	}
	fmt.Fprintf(out, "#%d\n", int64(float64(e.Cycle)*v.cycleNs))
	for s := 0; s < v.k && s < len(e.Ctrl); s++ {
		op := e.Ctrl[s]
		if op != v.prevOp[s] {
			fmt.Fprintf(out, "%s %s\n", opBits(op.Kind), v.idOp(s))
			addr := -1
			if op.Kind != OpNone {
				addr = op.Addr
			}
			fmt.Fprintf(out, "%s %s\n", bitVec(addr, 16), v.idAddr(s))
			v.prevOp[s] = op
		}
		drive := -1
		if s < len(e.OutDrive) {
			drive = e.OutDrive[s]
		}
		if drive != v.prevDrive[s] {
			fmt.Fprintf(out, "%s %s\n", bitVec(drive, 8), v.idDrive(s))
			v.prevDrive[s] = drive
		}
	}
	for i := 0; i < v.n && i < len(e.InLatch); i++ {
		if e.InLatch[i] != v.prevLatch[i] {
			fmt.Fprintf(out, "%s %s\n", bitVec(e.InLatch[i], 8), v.idLatch(i))
			v.prevLatch[i] = e.InLatch[i]
		}
	}
	if _, err := io.WriteString(v.w, out.String()); err != nil {
		v.err = err
	}
}

// Err returns the first write error, if any.
func (v *VCDWriter) Err() error { return v.err }
