package core

import (
	"testing"

	"pipemem/internal/cell"
)

func mcast(seq uint64, src, dst, k int, copies ...int) *cell.Cell {
	c := cell.New(seq, src, dst, k, 16)
	c.Copies = copies
	return c
}

// TestMulticastAllCopiesDelivered: one stored cell, one copy per
// destination, all bit-exact.
func TestMulticastAllCopiesDelivered(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true})
	k := s.Config().Stages
	c := mcast(1, 0, 1, k, 2, 3)
	s.Tick([]*cell.Cell{c, nil, nil, nil})
	for i := 0; i < 6*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 3 {
		t.Fatalf("%d copies delivered, want 3", len(deps))
	}
	outs := map[int]bool{}
	for _, d := range deps {
		if !d.Cell.Equal(d.Expected) {
			t.Fatal("multicast copy corrupted")
		}
		if outs[d.Output] {
			t.Fatalf("output %d served twice", d.Output)
		}
		outs[d.Output] = true
	}
	for _, o := range []int{1, 2, 3} {
		if !outs[o] {
			t.Fatalf("output %d missed its copy", o)
		}
	}
}

// TestMulticastSingleAddress: the payload occupies exactly one buffer
// address regardless of fanout — the shared-buffer multicast economy —
// and the address frees only after the last copy's read wave.
func TestMulticastSingleAddress(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true})
	k := s.Config().Stages
	c := mcast(1, 0, 1, k, 2, 3)
	s.Tick([]*cell.Cell{c, nil, nil, nil})
	s.Tick(nil) // write wave initiated here
	if got := s.cfg.Cells - s.FreeCells(); got != 1 {
		t.Fatalf("%d addresses allocated for a 3-way multicast, want 1", got)
	}
	if s.Buffered() != 3 {
		t.Fatalf("%d descriptors queued, want 3", s.Buffered())
	}
	// Run until all copies depart; the address must be free again.
	for i := 0; i < 8*k; i++ {
		s.Tick(nil)
	}
	if got := len(s.Drain()); got != 3 {
		t.Fatalf("%d departures", got)
	}
	if s.FreeCells() != s.cfg.Cells {
		t.Fatalf("address leaked: %d free of %d", s.FreeCells(), s.cfg.Cells)
	}
}

// TestMulticastStaggeredReads: the copies go out one initiation at a
// time (staggered initiation applies to multicast too), so head
// departure times on the three links are distinct.
func TestMulticastStaggeredReads(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true})
	k := s.Config().Stages
	s.Tick([]*cell.Cell{mcast(1, 0, 1, k, 2, 3), nil, nil, nil})
	for i := 0; i < 8*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	seen := map[int64]bool{}
	for _, d := range deps {
		if seen[d.HeadOut] {
			t.Fatalf("two copies' heads left in the same cycle %d", d.HeadOut)
		}
		seen[d.HeadOut] = true
	}
}

// TestMulticastUnderUnicastLoad: multicast cells interleaved with
// unicast traffic conserve addresses and deliver everything.
func TestMulticastUnderUnicastLoad(t *testing.T) {
	const ports = 4
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 64, CutThrough: true})
	k := s.Config().Stages
	var seq uint64
	wantCopies := 0
	got := 0
	for c := int64(0); c < 400*int64(k); c++ {
		var heads []*cell.Cell
		if c%int64(k) == 0 {
			heads = make([]*cell.Cell, ports)
			// Input 0 multicasts to all outputs every other cell time;
			// input 1 unicasts continuously.
			if (c/int64(k))%2 == 0 {
				seq++
				heads[0] = mcast(seq, 0, 0, k, 1, 2, 3)
				wantCopies += 4
			}
			seq++
			heads[1] = cell.New(seq, 1, int(seq)%ports, k, 16)
			wantCopies++
		}
		s.Tick(heads)
		for _, d := range s.Drain() {
			if !d.Cell.Equal(d.Expected) {
				t.Fatal("corruption")
			}
			got++
		}
	}
	for i := 0; i < 40*k; i++ {
		s.Tick(nil)
		got += len(s.Drain())
	}
	if got != wantCopies {
		t.Fatalf("delivered %d copies, want %d", got, wantCopies)
	}
	if s.FreeCells() != 64 {
		t.Fatalf("address leak: %d free of 64", s.FreeCells())
	}
	if c := s.Counters().Get("corrupt"); c != 0 {
		t.Fatalf("%d corrupt", c)
	}
}

// TestMulticastOutOfRangeCopyPanics.
func TestMulticastOutOfRangeCopyPanics(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Tick([]*cell.Cell{mcast(1, 0, 1, k, 7), nil})
	for i := 0; i < 2*k; i++ {
		s.Tick(nil)
	}
}
