package core

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// Runner is the step-wise form of RunTraffic: it drives a switch with a
// cell stream one cycle per Step, holding every piece of loop-carried
// driver state (sequence counter, partial tallies, drain progress) in
// exported-able form. The checkpoint layer stops it between Steps,
// snapshots switch + stream + RunnerState, and resumes a bit-identical run
// later; callers that want the original all-at-once behavior use
// RunTraffic, which is now a thin wrapper.
//
// Phases: the driven window (cycles Ticks with traffic), then the drain
// (Ticks without arrivals until the switch is empty or the drain bound is
// hit), then done. Step reports false once the run is complete; Result
// finishes the run (driving any remaining Steps) and computes the final
// RunResult exactly as RunTraffic always has.
type Runner struct {
	s      *Switch
	cs     *traffic.CellStream
	cycles int64

	pool   *cell.Pool
	heads  []int
	hcells []*cell.Cell

	phase     int
	driven    int64
	drained   int64
	bound     int64
	seq       uint64
	minLat    int64
	busyWords int64
	occSum    float64
	res       RunResult

	// PreTick, when set, runs immediately before every Tick with the cycle
	// the switch is about to execute — the seam the fault engine (and any
	// other per-cycle actor) injects through.
	PreTick func(cycle int64)

	finished bool
}

// Runner phases.
const (
	runDrive = iota
	runDrain
	runDone
)

// NewRunner builds a runner that will drive s with cs for the given number
// of cycles and then drain. It enables the switch's drain-recycle mode;
// Result restores it.
func NewRunner(s *Switch, cs *traffic.CellStream, cycles int64) *Runner {
	r := &Runner{
		s:      s,
		cs:     cs,
		cycles: cycles,
		pool:   cell.NewPool(s.k),
		heads:  make([]int, s.n),
		hcells: make([]*cell.Cell, s.n),
		minLat: -1,
		// The drain bound covers the worst case of a full buffer funneled
		// through one output.
		bound: int64((s.cfg.Cells + 2) * s.k * 2),
	}
	s.SetDrainRecycle(true)
	if cycles <= 0 {
		r.phase = runDrain
		r.res.MeanBuffered = r.occSum / float64(cycles)
	}
	return r
}

// Switch returns the switch under test.
func (r *Runner) Switch() *Switch { return r.s }

// collect books the departures of the last Tick and tracks occupancy.
func (r *Runner) collect() {
	for _, d := range r.s.Drain() {
		r.res.Delivered++
		r.busyWords += int64(r.s.k)
		if !d.Cell.Equal(d.Expected) {
			r.res.Corrupt++
		}
		lat := d.HeadOut - d.HeadIn
		if r.minLat < 0 || lat < r.minLat {
			r.minLat = lat
		}
		// The injected cell has left the switch; reuse it for a later
		// arrival (unicast only — every cell here is).
		r.pool.Put(d.Expected)
	}
	if b := r.s.Buffered(); b > r.res.MaxBuffered {
		r.res.MaxBuffered = b
	}
}

// Step advances the run by one cycle. It reports false — without ticking —
// once the run is complete.
func (r *Runner) Step() bool {
	switch r.phase {
	case runDrive:
		if r.PreTick != nil {
			r.PreTick(r.s.cycle)
		}
		if r.cs.Heads(r.heads) == 0 {
			// No head anywhere this cycle: skip the per-port injection scan
			// and let the switch's dead-cycle path see the nil vector.
			r.s.Tick(nil)
		} else {
			for i := range r.hcells {
				r.hcells[i] = nil
				if r.heads[i] != traffic.NoArrival {
					r.seq++
					r.hcells[i] = r.pool.New(r.seq, i, r.heads[i], r.s.cfg.WordBits)
					r.res.Offered++
				}
			}
			r.s.Tick(r.hcells)
		}
		r.collect()
		r.occSum += float64(r.s.Buffered())
		r.driven++
		if r.driven >= r.cycles {
			r.res.MeanBuffered = r.occSum / float64(r.cycles)
			r.phase = runDrain
		}
		return true
	case runDrain:
		if r.drained >= r.bound ||
			!(r.s.Buffered() > 0 || r.s.inFlightCount() > 0 || r.s.egressBusy()) {
			r.phase = runDone
			return false
		}
		if r.PreTick != nil {
			r.PreTick(r.s.cycle)
		}
		r.s.Tick(nil)
		r.collect()
		r.drained++
		return true
	}
	return false
}

// Done reports that the run has completed (drive window and drain).
func (r *Runner) Done() bool { return r.phase == runDone }

// Progress returns the monotone count of cells that have crossed a
// boundary — offered, delivered or dropped. A window over which this does
// not move while cells are resident is a stuck simulation (watchdog).
func (r *Runner) Progress() int64 {
	return r.res.Offered + r.res.Delivered + r.s.DroppedCells()
}

// finish fills the result fields computed once at the end of a run.
func (r *Runner) finish() RunResult {
	res := r.res
	res.Cycles = r.s.cycle
	r.s.SyncObserver() // final occupancy-gauge publish (decimated in Tick)
	res.DropOverrun = r.s.counter.Get("drop-overrun")
	res.DropPolicy = r.s.counter.Get("drop-policy")
	res.DropPushOut = r.s.counter.Get("drop-pushout")
	res.Dropped = r.s.DroppedCells()
	res.InputStalls = append([]int64(nil), r.s.inStalls...)
	res.InputDrops = append([]int64(nil), r.s.inDrops...)
	res.OutputDrops = append([]int64(nil), r.s.outDrops...)
	res.MeanCutLatency = r.s.cutLatency.Mean()
	res.MinCutLatency = r.minLat
	res.MeanInitDelay = r.s.initDelay.Mean()
	res.CutLatencyOverflow = r.s.cutLatency.Overflow()
	// Utilization normalizes by every simulated cycle of this run — driven
	// window plus drain tail — so link activity during the drain cannot
	// push the ratio past 1.0.
	res.Utilization = float64(r.busyWords) / float64((r.driven+r.drained)*int64(r.s.n))
	return res
}

// Result completes the run (stepping to the end if needed), restores the
// switch's drain mode, and returns the final RunResult with the same
// conservation and integrity checks RunTraffic has always enforced.
func (r *Runner) Result() (RunResult, error) {
	for r.Step() {
	}
	r.finished = true
	r.s.SetDrainRecycle(false)
	res := r.finish()
	if res.Delivered+res.Dropped+r.s.pendingCount() != res.Offered {
		return res, fmt.Errorf("core: conservation violated: offered %d, delivered %d, dropped %d, pending %d",
			res.Offered, res.Delivered, res.Dropped, r.s.pendingCount())
	}
	if res.Corrupt > 0 {
		return res, fmt.Errorf("core: %d corrupted cells", res.Corrupt)
	}
	return res, nil
}

// Partial returns the result of an aborted run — the tallies so far plus
// the whole-run fields — without conservation checks (an aborted run still
// holds resident cells by definition). The watchdog uses it to degrade
// gracefully instead of hanging.
func (r *Runner) Partial() RunResult {
	res := r.finish()
	if r.phase == runDrive && r.driven > 0 {
		res.MeanBuffered = r.occSum / float64(r.driven)
	}
	return res
}

// RunnerState is the exported loop-carried driver state, captured between
// Steps. Together with the switch and stream snapshots it resumes a run
// bit for bit.
type RunnerState struct {
	Phase   int
	Cycles  int64
	Driven  int64
	Drained int64
	Seq     uint64
	MinLat  int64
	// BusyWords feeds Utilization; OccSum feeds MeanBuffered.
	BusyWords int64
	OccSum    float64
	// Partial result tallies accumulated so far.
	Offered      int64
	Delivered    int64
	Corrupt      int64
	MaxBuffered  int
	MeanBuffered float64
}

// State exports the runner for checkpointing.
func (r *Runner) State() RunnerState {
	return RunnerState{
		Phase:        r.phase,
		Cycles:       r.cycles,
		Driven:       r.driven,
		Drained:      r.drained,
		Seq:          r.seq,
		MinLat:       r.minLat,
		BusyWords:    r.busyWords,
		OccSum:       r.occSum,
		Offered:      r.res.Offered,
		Delivered:    r.res.Delivered,
		Corrupt:      r.res.Corrupt,
		MaxBuffered:  r.res.MaxBuffered,
		MeanBuffered: r.res.MeanBuffered,
	}
}

// RestoreState overwrites the runner's loop-carried state with a
// checkpointed one. Call it on a freshly built runner whose switch and
// stream were themselves restored from the same checkpoint.
func (r *Runner) RestoreState(st RunnerState) error {
	if st.Phase < runDrive || st.Phase > runDone {
		return fmt.Errorf("core: runner state phase %d unknown", st.Phase)
	}
	if st.Cycles != r.cycles {
		return fmt.Errorf("core: runner state for a %d-cycle window, runner built for %d", st.Cycles, r.cycles)
	}
	r.phase = st.Phase
	r.driven = st.Driven
	r.drained = st.Drained
	r.seq = st.Seq
	r.minLat = st.MinLat
	r.busyWords = st.BusyWords
	r.occSum = st.OccSum
	r.res.Offered = st.Offered
	r.res.Delivered = st.Delivered
	r.res.Corrupt = st.Corrupt
	r.res.MaxBuffered = st.MaxBuffered
	r.res.MeanBuffered = st.MeanBuffered
	return nil
}
