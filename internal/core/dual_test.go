package core

import (
	"testing"
	"testing/quick"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

func mustDual(t *testing.T, cfg Config) *DualSwitch {
	t.Helper()
	d, err := NewDual(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDualConfig(t *testing.T) {
	d := mustDual(t, Config{Ports: 8, WordBits: 16, Cells: 64, CutThrough: true})
	if d.Config().Stages != 8 {
		t.Fatalf("stages = %d, want Ports = 8", d.Config().Stages)
	}
	if _, err := NewDual(Config{Ports: 8, Stages: 12, WordBits: 16, Cells: 8}); err == nil {
		t.Fatal("stages != ports accepted")
	}
	if _, err := NewDual(Config{Ports: 1, WordBits: 16, Cells: 8}); err == nil {
		t.Fatal("1-port dual accepted")
	}
}

// TestDualSingleCell: one cell through an idle dual switch, intact, with
// cut-through timing (head out at cycle 2, cells are n words).
func TestDualSingleCell(t *testing.T) {
	d := mustDual(t, Config{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true})
	k := 4
	c := cell.New(1, 0, 2, k, 16)
	d.Tick([]*cell.Cell{c.Clone(), nil, nil, nil})
	for i := 0; i < 4*k; i++ {
		d.Tick(nil)
	}
	deps := d.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures, want 1", len(deps))
	}
	dep := deps[0]
	if !dep.Cell.Equal(c) {
		t.Fatal("cell corrupted through dual switch")
	}
	if dep.HeadOut-dep.HeadIn != 2 {
		t.Fatalf("cut-through latency %d, want 2", dep.HeadOut-dep.HeadIn)
	}
	if dep.TailOut-dep.HeadIn != int64(k)+1 {
		t.Fatalf("tail out at +%d, want +%d", dep.TailOut-dep.HeadIn, k+1)
	}
}

// TestDualFullRate is the §3.5 claim: with cells of HALF the canonical
// quantum (n words), the two-memory organization still sustains one write
// plus one read initiation per cycle, i.e. full throughput on all links.
func TestDualFullRate(t *testing.T) {
	const ports = 8
	d := mustDual(t, Config{Ports: ports, WordBits: 16, Cells: 128, CutThrough: true})
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Permutation, N: ports, Load: 1, Seed: 7}, ports)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDualTraffic(d, cs, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d drops at full rate", res.Dropped)
	}
	if res.Utilization < 0.98 {
		t.Fatalf("utilization %v, want ≈1 — half-quantum cells must not halve throughput", res.Utilization)
	}
}

// TestDualIntegrityRandom: bit-exact delivery under random traffic.
func TestDualIntegrityRandom(t *testing.T) {
	for _, load := range []float64{0.4, 0.9, 1.0} {
		const ports = 8
		d := mustDual(t, Config{Ports: ports, WordBits: 16, Cells: 128, CutThrough: true})
		kind := traffic.Bernoulli
		if load == 1.0 {
			kind = traffic.Saturation
		}
		cs, err := traffic.NewCellStream(traffic.Config{Kind: kind, N: ports, Load: load, Seed: 19}, ports)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDualTraffic(d, cs, 20_000)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		if res.Corrupt != 0 || res.Delivered == 0 {
			t.Fatalf("load %v: delivered=%d corrupt=%d", load, res.Delivered, res.Corrupt)
		}
	}
}

// TestDualBankExclusive: in no cycle may both banks carry a fresh read, or
// a read and a write in the same bank (one port per memory per cycle).
func TestDualBankExclusive(t *testing.T) {
	const ports = 4
	d := mustDual(t, Config{Ports: ports, WordBits: 16, Cells: 32, CutThrough: true})
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Saturation, N: ports, Seed: 23}, ports)
	if err != nil {
		t.Fatal(err)
	}
	heads := make([]int, ports)
	hc := make([]*cell.Cell, ports)
	var seq uint64
	for c := 0; c < 20_000; c++ {
		cs.Heads(heads)
		for i := range hc {
			hc[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hc[i] = cell.New(seq, i, heads[i], ports, 16)
			}
		}
		d.Tick(hc)
		// After Tick, ctrl[1] of each bank holds what stage 0 executed
		// this cycle (the pipeline shifted). Legal combinations per
		// cycle: at most one pure read across banks, at most one
		// write-kind op (OpWrite or OpWriteThrough — a write that also
		// taps the bus) across banks, never two ops in one bank.
		var reads, writes int
		outs := map[int]bool{}
		for b := 0; b < 2; b++ {
			op := d.banks[b].ctrl[1]
			switch op.Kind {
			case OpRead:
				reads++
				if outs[op.Out] {
					t.Fatalf("cycle %d: two drivers for output %d", c, op.Out)
				}
				outs[op.Out] = true
			case OpWriteThrough:
				writes++
				if outs[op.Out] {
					t.Fatalf("cycle %d: two drivers for output %d", c, op.Out)
				}
				outs[op.Out] = true
			case OpWrite:
				writes++
			}
		}
		if reads > 1 {
			t.Fatalf("cycle %d: %d pure reads", c, reads)
		}
		if writes > 1 {
			t.Fatalf("cycle %d: %d write waves", c, writes)
		}
		d.Drain()
	}
}

// TestDualQuick sweeps geometry and load.
func TestDualQuick(t *testing.T) {
	f := func(seed uint64, portsRaw, loadRaw uint8) bool {
		ports := 2 + int(portsRaw%7)
		load := 0.1 + float64(loadRaw%90)/100
		d, err := NewDual(Config{Ports: ports, WordBits: 16, Cells: 32, CutThrough: seed%2 == 0})
		if err != nil {
			return false
		}
		cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Bernoulli, N: ports, Load: load, Seed: seed}, ports)
		if err != nil {
			return false
		}
		res, err := RunDualTraffic(d, cs, 3_000)
		return err == nil && res.Corrupt == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
