package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"pipemem/internal/analytic"
	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

func mustSwitch(t *testing.T, cfg Config) *Switch {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func stream(t *testing.T, cfg traffic.Config, cellLen int) *traffic.CellStream {
	t.Helper()
	cs, err := traffic.NewCellStream(cfg, cellLen)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestConfigValidate(t *testing.T) {
	good := Config{Ports: 4, WordBits: 16, Cells: 64, CutThrough: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if got := good.Canonical().Stages; got != 8 {
		t.Fatalf("canonical stages = %d, want 8", got)
	}
	bad := []Config{
		{Ports: 0},
		{Ports: 4, WordBits: 65},
		{Ports: 4, Stages: 4}, // < 2n: unschedulable
		{Ports: 4, Cells: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Telegraphos III capacity check: 8 ports, 16 stages, 16-bit words,
	// 256 cells = 64 Kbit.
	t3 := Config{Ports: 8, WordBits: 16, Cells: 256}
	if got := t3.CapacityBits(); got != 65536 {
		t.Fatalf("T3 capacity = %d bits, want 65536", got)
	}
}

// TestSingleCellCutThrough traces one cell through an otherwise idle
// switch and checks the §3.2/§3.3 timing exactly: head in at cycle 0,
// write-through at cycle 1, head out at cycle 2, tail out at cycle K+1.
func TestSingleCellCutThrough(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages // 4
	c := cell.New(1, 0, 1, k, 16)
	heads := []*cell.Cell{c.Clone(), nil}
	s.Tick(heads)
	for i := 0; i < 3*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures, want 1", len(deps))
	}
	d := deps[0]
	if !d.Cell.Equal(c) {
		t.Fatalf("cell corrupted: got %v want %v", d.Cell.Words, c.Words)
	}
	if d.Output != 1 {
		t.Fatalf("departed on output %d, want 1", d.Output)
	}
	if d.HeadIn != 0 || d.HeadOut != 2 || d.TailOut != int64(k)+1 {
		t.Fatalf("timing: headIn=%d headOut=%d tailOut=%d, want 0,2,%d", d.HeadIn, d.HeadOut, d.TailOut, k+1)
	}
	if d.InitDelay != 0 {
		t.Fatalf("init delay %d on an idle switch", d.InitDelay)
	}
	// Cut-through: the head left (cycle 2) before the tail arrived
	// (cycle K-1 = 3): the defining property of §3.3.
	if d.HeadOut >= int64(k)-1 {
		t.Fatalf("no cut-through: head out at %d, tail in at %d", d.HeadOut, k-1)
	}
}

// TestStoreAndForwardLatency checks that disabling cut-through makes the
// head wait for the full cell: head-out at writeStart+K+1.
func TestStoreAndForwardLatency(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: false})
	k := s.Config().Stages
	c := cell.New(1, 0, 1, k, 16)
	s.Tick([]*cell.Cell{c, nil})
	for i := 0; i < 4*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures, want 1", len(deps))
	}
	d := deps[0]
	// Write wave at cycle 1; eligible at 1+K; read wave at 1+K; head on
	// the link one cycle later.
	want := int64(k) + 2
	if d.HeadOut-d.HeadIn != want {
		t.Fatalf("store-and-forward head latency %d, want %d", d.HeadOut-d.HeadIn, want)
	}
}

// TestIntegrityRandomTraffic is the central invariant: every cell leaves
// bit-identical, under random traffic across sizes and loads.
func TestIntegrityRandomTraffic(t *testing.T) {
	for _, tc := range []struct {
		ports int
		load  float64
		cut   bool
	}{
		{2, 0.3, true}, {2, 1.0, true}, {4, 0.7, true}, {4, 1.0, false},
		{8, 0.9, true}, {8, 1.0, true}, {16, 0.5, true},
	} {
		cfg := Config{Ports: tc.ports, WordBits: 16, Cells: 64, CutThrough: tc.cut}
		s := mustSwitch(t, cfg)
		kind := traffic.Bernoulli
		if tc.load == 1.0 {
			kind = traffic.Saturation
		}
		cs := stream(t, traffic.Config{Kind: kind, N: tc.ports, Load: tc.load, Seed: 77}, s.Config().Stages)
		res, err := RunTraffic(s, cs, 20_000)
		if err != nil {
			t.Fatalf("ports=%d load=%v cut=%v: %v", tc.ports, tc.load, tc.cut, err)
		}
		if res.Corrupt != 0 {
			t.Fatalf("ports=%d: %d corrupted cells", tc.ports, res.Corrupt)
		}
		if res.Delivered == 0 {
			t.Fatalf("ports=%d: nothing delivered", tc.ports)
		}
	}
}

// TestFullLoadNoDropsAndFullUtilization is E9's core property: at 100%
// offered load with the canonical K = 2n stages, read-priority arbitration
// meets every write deadline (n reads + n writes fit in the 2n slots of
// each window — §2.3's "by suitably arranging these n memories, one buffer
// of throughput 2n can be constructed") and output utilization approaches
// 100% with zero loss.
func TestFullLoadNoDropsAndFullUtilization(t *testing.T) {
	const ports = 8
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 256, CutThrough: true})
	// Admissible full-rate traffic: a rotating permutation. (Uniform
	// random destinations at load 1 are critically loaded — per-output
	// queues perform an unbiased random walk and overflow any finite
	// buffer — so they are not the right workload for this claim.)
	cs := stream(t, traffic.Config{Kind: traffic.Permutation, N: ports, Load: 1, Seed: 99}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d drops at full load with 256-cell buffer", res.Dropped)
	}
	if res.Utilization < 0.98 {
		t.Fatalf("output utilization %v, want ≈1", res.Utilization)
	}
	if res.MaxBuffered > 3*ports {
		t.Fatalf("peak occupancy %d cells under admissible traffic", res.MaxBuffered)
	}
}

// TestNoOverrunAtFullLoadSmallBuffer: even with a small buffer, overrun
// drops (write deadline misses) must be the only loss mode, and with
// K = 2n and a buffer comfortably above 2n cells the switch must not
// overrun (backpressure-free admissible traffic).
func TestBufferExhaustionDrops(t *testing.T) {
	// A 2-port switch with a 1-cell buffer under saturation must drop
	// (uniform traffic sends ~half the cells into a busy output).
	s := mustSwitch(t, Config{Ports: 2, WordBits: 8, Cells: 1, CutThrough: true})
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: 2, Seed: 5}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops with a 1-cell buffer at saturation; loss path untested")
	}
	if res.Corrupt != 0 {
		t.Fatalf("%d corrupt cells alongside drops", res.Corrupt)
	}
	// Delivered cells + drops must still conserve (RunTraffic checks).
}

// TestControlPipelineDelayedCopy verifies §3.3 literally: the control
// signals of stage s in cycle c equal those of stage s-1 in cycle c-1.
func TestControlPipelineDelayedCopy(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true})
	var events []TraceEvent
	s.SetTracer(func(e TraceEvent) { events = append(events, e) })
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: 4, Seed: 13}, s.Config().Stages)
	if _, err := RunTraffic(s, cs, 2_000); err != nil {
		t.Fatal(err)
	}
	if len(events) < 100 {
		t.Fatalf("only %d trace events", len(events))
	}
	for tIdx := 1; tIdx < len(events); tIdx++ {
		prev, cur := events[tIdx-1], events[tIdx]
		for st := 1; st < len(cur.Ctrl); st++ {
			if cur.Ctrl[st] != prev.Ctrl[st-1] {
				t.Fatalf("cycle %d stage %d: ctrl %v != stage %d's %v one cycle earlier",
					cur.Cycle, st, cur.Ctrl[st], st-1, prev.Ctrl[st-1])
			}
		}
	}
}

// TestSingleInitiationPerCycle verifies the staggered-initiation
// restriction of §3.4: stage 0 carries at most one fresh wave per cycle.
func TestSingleInitiationPerCycle(t *testing.T) {
	// Store-and-forward, so every cell needs one write and one read wave:
	// at full admissible load the initiation slot is busy every cycle
	// (n writes + n reads per 2n-cycle window). With cut-through many
	// waves merge into write-throughs and the slot has slack.
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: false})
	count := 0
	s.SetTracer(func(e TraceEvent) {
		if e.Ctrl[0].Kind != OpNone {
			count++
		}
	})
	cs := stream(t, traffic.Config{Kind: traffic.Permutation, N: 4, Load: 1, Seed: 21}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	// Initiations = write waves + read waves ≤ cycles; at full load the
	// slot is nearly always in use.
	if int64(count) > res.Cycles {
		t.Fatalf("%d initiations in %d cycles", count, res.Cycles)
	}
	if float64(count) < 0.9*float64(res.Cycles) {
		t.Fatalf("only %d initiations in %d cycles at saturation", count, res.Cycles)
	}
}

// TestStaggeredInitiationDelayMatchesAnalytic reproduces §3.4: the mean
// extra cut-through latency from the one-wave-per-cycle restriction is
// ≈ (p/4)(n-1)/n cycles, measured here as the write wave's wait for the
// stage-0 slot at light-to-moderate load.
func TestStaggeredInitiationDelayMatchesAnalytic(t *testing.T) {
	const ports = 8
	for _, p := range []float64{0.2, 0.4} {
		s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 256, CutThrough: true})
		cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: ports, Load: p, Seed: 31}, s.Config().Stages)
		res, err := RunTraffic(s, cs, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		want := analytic.StaggeredInitiationDelay(p, ports)
		// The measured delay includes second-order queueing of initiation
		// slots, so allow a generous band; the claim being reproduced is
		// "≈ 0.25·p and negligible".
		if res.MeanInitDelay > 2.5*want+0.01 || res.MeanInitDelay < 0.3*want {
			t.Errorf("p=%v: init delay %v, analytic %v", p, res.MeanInitDelay, want)
		}
		if res.MeanInitDelay > 0.25 {
			t.Errorf("p=%v: init delay %v not negligible", p, res.MeanInitDelay)
		}
	}
}

// TestCutThroughBeatsStoreAndForward compares mean latency with identical
// traffic: cut-through must save nearly a full cell time at light load.
func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	const ports = 4
	run := func(cut bool) RunResult {
		s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 64, CutThrough: cut})
		cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: ports, Load: 0.2, Seed: 41}, s.Config().Stages)
		res, err := RunTraffic(s, cs, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ct, sf := run(true), run(false)
	k := float64(2 * ports)
	saved := sf.MeanCutLatency - ct.MeanCutLatency
	if saved < 0.8*k {
		t.Fatalf("cut-through saves only %.2f cycles, want ≈%v", saved, k)
	}
	if ct.MinCutLatency != 2 {
		t.Fatalf("min cut-through latency %d, want 2", ct.MinCutLatency)
	}
}

// TestTailNeverBeforeArrival: the §3.3 safety argument — "transmission of
// the packet's tail will only be attempted after that tail has arrived".
func TestTailNeverBeforeArrival(t *testing.T) {
	const ports = 4
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 64, CutThrough: true})
	k := s.Config().Stages
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: ports, Seed: 51}, k)
	heads := make([]int, ports)
	var seq uint64
	hc := make([]*cell.Cell, ports)
	for c := int64(0); c < 20_000; c++ {
		cs.Heads(heads)
		for i := range hc {
			hc[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hc[i] = cell.New(seq, i, heads[i], k, 16)
			}
		}
		s.Tick(hc)
		for _, d := range s.Drain() {
			tailIn := d.HeadIn + int64(k) - 1
			if d.TailOut <= tailIn {
				t.Fatalf("tail transmitted at %d but arrived at %d", d.TailOut, tailIn)
			}
			if d.HeadOut <= d.HeadIn {
				t.Fatalf("head out %d not after head in %d", d.HeadOut, d.HeadIn)
			}
		}
	}
}

// TestPerOutputFIFOOrder: cells to the same output must depart in
// write-initiation order (the per-output descriptor queues are FIFO).
func TestPerOutputFIFOOrder(t *testing.T) {
	const ports = 4
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 64, CutThrough: true})
	k := s.Config().Stages
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: ports, Seed: 61}, k)
	heads := make([]int, ports)
	var seq uint64
	hc := make([]*cell.Cell, ports)
	lastHeadIn := make([]int64, ports)
	for i := range lastHeadIn {
		lastHeadIn[i] = -1
	}
	for c := int64(0); c < 20_000; c++ {
		cs.Heads(heads)
		for i := range hc {
			hc[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hc[i] = cell.New(seq, i, heads[i], k, 16)
			}
		}
		s.Tick(hc)
		for _, d := range s.Drain() {
			// Departures per output are naturally ordered by HeadOut;
			// check arrival order is respected per (input,output) pair
			// at least: a later head from the same input to the same
			// output must not depart before an earlier one.
			_ = d
		}
	}
	// Stronger check: run a deterministic scenario. Three cells from
	// input 0 to output 1 must depart in order.
	s2 := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k2 := s2.Config().Stages
	var out []uint64
	for c, next := int64(0), 0; c < 100; c++ {
		var hs []*cell.Cell
		if next < 3 && c == int64(next*k2) {
			hs = []*cell.Cell{cell.New(uint64(next+1), 0, 1, k2, 16), nil}
			next++
		}
		s2.Tick(hs)
		for _, d := range s2.Drain() {
			out = append(out, d.Cell.Seq)
		}
	}
	if len(out) != 3 || out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("departure order %v, want [1 2 3]", out)
	}
}

// TestIntegrityQuick is a property-based sweep over switch geometry.
func TestIntegrityQuick(t *testing.T) {
	f := func(seed uint64, portsRaw, loadRaw uint8) bool {
		ports := 2 + int(portsRaw%7)
		load := 0.1 + float64(loadRaw%90)/100
		cfg := Config{Ports: ports, WordBits: 16, Cells: 32, CutThrough: seed%2 == 0}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Bernoulli, N: ports, Load: load, Seed: seed}, s.Config().Stages)
		if err != nil {
			return false
		}
		res, err := RunTraffic(s, cs, 3_000)
		return err == nil && res.Corrupt == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: identical configuration and seed must give identical
// results (no hidden nondeterminism in the RTL model).
func TestDeterminism(t *testing.T) {
	run := func() RunResult {
		s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true})
		cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.8, Seed: 111}, s.Config().Stages)
		res, err := RunTraffic(s, cs, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic results:\n%v\n%v", a, b)
	}
}

// TestReadPriorityAblation: inverting read priority must not corrupt
// data; it may cost utilization (the documented reason for the default).
func TestReadPriorityAblation(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 64, CutThrough: true, NoReadPriority: true})
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: 4, Seed: 121}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 0 {
		t.Fatalf("%d corrupt cells with write priority", res.Corrupt)
	}
}

// TestMidCellInjectionPanics: injecting a head while a cell is still
// arriving is a driver bug and must be caught.
func TestMidCellInjectionPanics(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	s.Tick([]*cell.Cell{cell.New(1, 0, 1, k, 16), nil})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Tick([]*cell.Cell{cell.New(2, 0, 1, k, 16), nil})
}

// TestWrongCellSizePanics: cells must be exactly K words.
func TestWrongCellSizePanics(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Tick([]*cell.Cell{cell.New(1, 0, 1, 3, 16), nil})
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{
		Cycle:    12,
		Ctrl:     []Op{{Kind: OpWrite, In: 1, Addr: 3}, {Kind: OpRead, Out: 0, Addr: 2}, {}, {}},
		InLatch:  []int{0, 2},
		OutDrive: []int{-1, 0, -1, -1},
	}
	got := e.String()
	for _, want := range []string{"c=12", "W(in1,a3)", "R(out0,a2)", "0:h", "1:2", "M1→0"} {
		if !contains(got, want) {
			t.Fatalf("trace line %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestLatencyModelUnderLoad sanity-checks mean cut-through latency against
// the output-queueing form: at load p the mean head latency should be
// ≈ 2 (pipeline) + K·W where W is the per-cell queueing wait of an
// output-queued switch ([KaHM87] eq. 14) — the paper's claim that shared
// buffering attains output-queueing performance.
func TestLatencyModelUnderLoad(t *testing.T) {
	const ports = 8
	const p = 0.6
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 512, CutThrough: true})
	k := float64(s.Config().Stages)
	cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: ports, Load: p, Seed: 131}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + k*analytic.OutputQueueWait(ports, p)
	if math.Abs(res.MeanCutLatency-want)/want > 0.25 {
		t.Errorf("mean latency %v cycles, output-queueing model %v", res.MeanCutLatency, want)
	}
}

func BenchmarkTickSaturated8x8(b *testing.B) {
	s, err := New(Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true})
	if err != nil {
		b.Fatal(err)
	}
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Saturation, N: 8, Seed: 1}, s.Config().Stages)
	if err != nil {
		b.Fatal(err)
	}
	heads := make([]int, 8)
	hc := make([]*cell.Cell, 8)
	var seq uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Heads(heads)
		for j := range hc {
			hc[j] = nil
			if heads[j] != traffic.NoArrival {
				seq++
				hc[j] = cell.New(seq, j, heads[j], s.Config().Stages, 16)
			}
		}
		s.Tick(hc)
		s.Drain()
	}
}

// TestOccupancyMatchesQueueingTheory: in store-and-forward mode every
// cell resides in the buffer for its queueing wait plus one cell time, so
// the time-average occupancy approaches the closed form n·p·(W+1) =
// analytic.SharedBufferOccupancy — a cross-check between the
// cycle-accurate RTL and the [KaHM87]-style queueing model.
func TestOccupancyMatchesQueueingTheory(t *testing.T) {
	const ports, p = 8, 0.6
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 1024, CutThrough: false})
	cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: ports, Load: p, Seed: 141}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.SharedBufferOccupancy(ports, p)
	if math.Abs(res.MeanBuffered-want)/want > 0.15 {
		t.Errorf("mean occupancy %v cells, queueing theory %v", res.MeanBuffered, want)
	}
}
