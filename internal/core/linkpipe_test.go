package core

import (
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// TestLinkPipelineLatencyShift verifies §4.3's first optimization
// end-to-end: splitting the link wires into R pipeline stages each delays
// every cell by exactly 2R cycles and changes nothing else — "the logic
// of the switch operation remains unaffected".
func TestLinkPipelineLatencyShift(t *testing.T) {
	for _, r := range []int{1, 2, 4} {
		base := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
		piped := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true, LinkPipeline: r})
		k := base.Config().Stages
		run := func(s *Switch) Departure {
			s.Tick([]*cell.Cell{cell.New(1, 0, 1, k, 16), nil})
			for i := 0; i < 6*(k+r); i++ {
				s.Tick(nil)
			}
			deps := s.Drain()
			if len(deps) != 1 {
				t.Fatalf("R=%d: %d departures", r, len(deps))
			}
			return deps[0]
		}
		db, dp := run(base), run(piped)
		if !dp.Cell.Equal(dp.Expected) {
			t.Fatalf("R=%d: corruption through pipelined links", r)
		}
		baseLat := db.HeadOut - db.HeadIn
		pipeLat := dp.HeadOut - dp.HeadIn
		if pipeLat != baseLat+int64(2*r) {
			t.Fatalf("R=%d: latency %d, want base %d + 2R = %d", r, pipeLat, baseLat, baseLat+int64(2*r))
		}
		if dp.TailOut-dp.HeadOut != db.TailOut-db.HeadOut {
			t.Fatalf("R=%d: transmission duration changed", r)
		}
	}
}

// TestLinkPipelineFullLoad: the option must not disturb full-rate
// operation — same utilization, zero drops, conservation intact.
func TestLinkPipelineFullLoad(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true, LinkPipeline: 3})
	cs := stream(t, traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 17}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || res.Corrupt != 0 {
		t.Fatalf("drops=%d corrupt=%d with link pipelining", res.Dropped, res.Corrupt)
	}
	if res.Utilization < 0.98 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

// TestLinkPipelineRandomTrafficIntegrity sweeps loads.
func TestLinkPipelineRandomTrafficIntegrity(t *testing.T) {
	for _, load := range []float64{0.3, 0.8} {
		s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 64, CutThrough: true, LinkPipeline: 2})
		cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: load, Seed: 19}, s.Config().Stages)
		res, err := RunTraffic(s, cs, 20_000)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		if res.Corrupt != 0 || res.Delivered == 0 {
			t.Fatalf("load %v: delivered=%d corrupt=%d", load, res.Delivered, res.Corrupt)
		}
	}
}

// TestNegativeLinkPipelineRejected.
func TestNegativeLinkPipelineRejected(t *testing.T) {
	if err := (Config{Ports: 4, LinkPipeline: -1}).Validate(); err == nil {
		t.Fatal("negative link pipelining accepted")
	}
}

// TestTransmitCellHook: the hook fires once per departure, with the right
// cell and a start cycle consistent with the head appearing on the link
// one cycle later.
func TestTransmitCellHook(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	type ev struct {
		out   int
		seq   uint64
		start int64
	}
	var events []ev
	s.SetTransmitCellHook(func(out int, c *cell.Cell, startCycle int64) {
		events = append(events, ev{out, c.Seq, startCycle})
	})
	s.Tick([]*cell.Cell{cell.New(9, 0, 1, k, 16), nil})
	for i := 0; i < 4*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 || len(events) != 1 {
		t.Fatalf("deps=%d events=%d, want 1/1", len(deps), len(events))
	}
	if events[0].seq != 9 || events[0].out != 1 {
		t.Fatalf("hook saw %+v", events[0])
	}
	if deps[0].HeadOut != events[0].start+1 {
		t.Fatalf("head on link at %d, hook start %d (want start+1)", deps[0].HeadOut, events[0].start)
	}
}

// TestLinkPipelineConservation drives a pipelined-link switch through
// saturation overload and a full drain, checking on every cycle that
// cells crossing the §4.3 delay line are neither lost nor double-counted:
// delayCount matches the cells actually sitting in the line, and
// offered == delivered + dropped + Resident() holds at every instant.
func TestLinkPipelineConservation(t *testing.T) {
	const (
		n      = 4
		r      = 3
		driven = 2000
	)
	s := mustSwitch(t, Config{Ports: n, WordBits: 16, Cells: 12, CutThrough: true, LinkPipeline: r})
	k := s.Config().Stages
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: n, Seed: 21}, k)

	heads := make([]int, n)
	hcells := make([]*cell.Cell, n)
	var seq uint64
	var offered, delivered int64
	check := func(c int) {
		t.Helper()
		inLine := 0
		for _, slot := range s.inDelay {
			for _, h := range slot {
				if h != nil {
					inLine++
				}
			}
		}
		if inLine != s.delayCount {
			t.Fatalf("cycle %d: delayCount %d, but %d cells in the delay line", c, s.delayCount, inLine)
		}
		dropped := s.counter.Get("drop-overrun") + s.counter.Get("drop-bypass")
		if got := delivered + dropped + int64(s.Resident()); got != offered {
			t.Fatalf("cycle %d: conservation violated: offered %d != delivered %d + dropped %d + resident %d",
				c, offered, delivered, dropped, s.Resident())
		}
	}

	for c := 0; c < driven; c++ {
		cs.Heads(heads)
		for i := range hcells {
			hcells[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hcells[i] = cell.New(seq, i, heads[i], k, 16)
				offered++
			}
		}
		s.Tick(hcells)
		delivered += int64(len(s.Drain()))
		check(c)
	}
	for c := 0; s.Resident() > 0 && c < (12+2)*k*4; c++ {
		s.Tick(nil)
		delivered += int64(len(s.Drain()))
		check(driven + c)
	}
	if s.Resident() != 0 {
		t.Fatalf("%d cells still resident after drain", s.Resident())
	}
	if s.delayCount != 0 {
		t.Fatalf("delay line not empty after drain: delayCount %d", s.delayCount)
	}
	dropped := s.counter.Get("drop-overrun") + s.counter.Get("drop-bypass")
	if delivered == 0 || dropped == 0 {
		t.Fatalf("overload scenario too weak: delivered %d, dropped %d", delivered, dropped)
	}
}
