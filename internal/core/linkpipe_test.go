package core

import (
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// TestLinkPipelineLatencyShift verifies §4.3's first optimization
// end-to-end: splitting the link wires into R pipeline stages each delays
// every cell by exactly 2R cycles and changes nothing else — "the logic
// of the switch operation remains unaffected".
func TestLinkPipelineLatencyShift(t *testing.T) {
	for _, r := range []int{1, 2, 4} {
		base := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
		piped := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true, LinkPipeline: r})
		k := base.Config().Stages
		run := func(s *Switch) Departure {
			s.Tick([]*cell.Cell{cell.New(1, 0, 1, k, 16), nil})
			for i := 0; i < 6*(k+r); i++ {
				s.Tick(nil)
			}
			deps := s.Drain()
			if len(deps) != 1 {
				t.Fatalf("R=%d: %d departures", r, len(deps))
			}
			return deps[0]
		}
		db, dp := run(base), run(piped)
		if !dp.Cell.Equal(dp.Expected) {
			t.Fatalf("R=%d: corruption through pipelined links", r)
		}
		baseLat := db.HeadOut - db.HeadIn
		pipeLat := dp.HeadOut - dp.HeadIn
		if pipeLat != baseLat+int64(2*r) {
			t.Fatalf("R=%d: latency %d, want base %d + 2R = %d", r, pipeLat, baseLat, baseLat+int64(2*r))
		}
		if dp.TailOut-dp.HeadOut != db.TailOut-db.HeadOut {
			t.Fatalf("R=%d: transmission duration changed", r)
		}
	}
}

// TestLinkPipelineFullLoad: the option must not disturb full-rate
// operation — same utilization, zero drops, conservation intact.
func TestLinkPipelineFullLoad(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true, LinkPipeline: 3})
	cs := stream(t, traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 17}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || res.Corrupt != 0 {
		t.Fatalf("drops=%d corrupt=%d with link pipelining", res.Dropped, res.Corrupt)
	}
	if res.Utilization < 0.98 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

// TestLinkPipelineRandomTrafficIntegrity sweeps loads.
func TestLinkPipelineRandomTrafficIntegrity(t *testing.T) {
	for _, load := range []float64{0.3, 0.8} {
		s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 64, CutThrough: true, LinkPipeline: 2})
		cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: load, Seed: 19}, s.Config().Stages)
		res, err := RunTraffic(s, cs, 20_000)
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		if res.Corrupt != 0 || res.Delivered == 0 {
			t.Fatalf("load %v: delivered=%d corrupt=%d", load, res.Delivered, res.Corrupt)
		}
	}
}

// TestNegativeLinkPipelineRejected.
func TestNegativeLinkPipelineRejected(t *testing.T) {
	if err := (Config{Ports: 4, LinkPipeline: -1}).Validate(); err == nil {
		t.Fatal("negative link pipelining accepted")
	}
}

// TestTransmitCellHook: the hook fires once per departure, with the right
// cell and a start cycle consistent with the head appearing on the link
// one cycle later.
func TestTransmitCellHook(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	type ev struct {
		out   int
		seq   uint64
		start int64
	}
	var events []ev
	s.SetTransmitCellHook(func(out int, c *cell.Cell, startCycle int64) {
		events = append(events, ev{out, c.Seq, startCycle})
	})
	s.Tick([]*cell.Cell{cell.New(9, 0, 1, k, 16), nil})
	for i := 0; i < 4*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 || len(events) != 1 {
		t.Fatalf("deps=%d events=%d, want 1/1", len(deps), len(events))
	}
	if events[0].seq != 9 || events[0].out != 1 {
		t.Fatalf("hook saw %+v", events[0])
	}
	if deps[0].HeadOut != events[0].start+1 {
		t.Fatalf("head on link at %d, hook start %d (want start+1)", deps[0].HeadOut, events[0].start)
	}
}
