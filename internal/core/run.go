package core

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// RunResult summarizes a traffic-driven RTL run.
type RunResult struct {
	// Cycles is the number of clock cycles simulated (including the
	// drain tail).
	Cycles int64
	// Offered, Delivered and Dropped count cells.
	Offered, Delivered, Dropped int64
	// DropOverrun, DropPolicy and DropPushOut break Dropped down by loss
	// mode: arrivals displaced before obtaining a write wave, arrivals
	// refused by the shared-buffer admission policy, and queued cells
	// preempted by a push-out verdict. (Bypass flushes, the fourth mode,
	// appear only in fault runs.)
	DropOverrun, DropPolicy, DropPushOut int64
	// InputStalls[i] counts cycles input i held a cell still waiting for
	// its write wave — the per-port backpressure that used to be a silent
	// retry. InputDrops[i] and OutputDrops[o] count lost cells by arrival
	// input and by destination output. Nil from the dual-organization
	// driver, which models no shared-buffer admission.
	InputStalls, InputDrops, OutputDrops []int64
	// Corrupt counts integrity violations (must be zero).
	Corrupt int64
	// Utilization is the fraction of output-link cycles carrying data.
	Utilization float64
	// MeanCutLatency is the mean head-in→head-out latency in cycles.
	MeanCutLatency float64
	// MinCutLatency is the smallest observed head latency: 2 cycles with
	// cut-through (one to reach the input register, one through M0).
	MinCutLatency int64
	// MeanInitDelay is the measured §3.4 staggered-initiation delay.
	MeanInitDelay float64
	// MaxBuffered is the peak buffer occupancy in cells; MeanBuffered
	// the time-average (sampled per cycle over the driven window).
	MaxBuffered  int
	MeanBuffered float64
	// CutLatencyOverflow counts departures whose head latency exceeded the
	// resolution of the cut-latency histogram (stats.Hist overflow): their
	// exact values are absent from per-value counts and upper quantiles,
	// though MeanCutLatency still includes them. Nonzero means quantile
	// reports on the histogram are truncated.
	CutLatencyOverflow int64
}

// String implements fmt.Stringer.
func (r RunResult) String() string {
	s := fmt.Sprintf("cycles=%d offered=%d delivered=%d dropped=%d util=%.4f cutlat=%.2f initdelay=%.4f",
		r.Cycles, r.Offered, r.Delivered, r.Dropped, r.Utilization, r.MeanCutLatency, r.MeanInitDelay)
	if r.DropPolicy > 0 || r.DropPushOut > 0 {
		s += fmt.Sprintf(" drops[overrun=%d policy=%d pushout=%d]", r.DropOverrun, r.DropPolicy, r.DropPushOut)
	}
	if r.CutLatencyOverflow > 0 {
		s += fmt.Sprintf(" cutlat-overflow=%d", r.CutLatencyOverflow)
	}
	return s
}

// RunTraffic drives the switch with the cell stream for the given number
// of cycles, then drains in-flight cells, verifying the integrity of every
// departure. The stream's port count and the switch's must agree. It is a
// thin wrapper over Runner, the step-wise (and checkpointable) form of the
// same loop.
func RunTraffic(s *Switch, cs *traffic.CellStream, cycles int64) (RunResult, error) {
	return NewRunner(s, cs, cycles).Result()
}

// TickN advances the switch n cycles in one call: heads arrive in the
// first cycle and the remaining n-1 cycles carry no arrivals. It is
// bit-identical to Tick(heads) followed by n-1 Tick(nil) — drivers with
// gaps between arrivals (light load, batch replay) use it to amortize
// per-cycle dispatch, and once the switch drains to quiescence the
// remaining cycles are skipped in O(1) (event-driven fast-forward).
func (s *Switch) TickN(heads []*cell.Cell, n int64) {
	if n <= 0 {
		return
	}
	s.Tick(heads)
	for m := n - 1; m > 0; m-- {
		// Fast-forward: on the batched path with no observer attached and
		// no cell anywhere in the switch, every remaining cycle would only
		// retire an expired ctrl slot and advance the clock — do that
		// wholesale. (An observer pins per-cycle stepping: its tallies and
		// decimated flushes are per-cycle state.)
		if s.fastMode && s.obs == nil && s.txPending == 0 &&
			s.pendingWrites == 0 && s.delayCount == 0 && s.queues.Total() == 0 {
			s.jump(m)
			return
		}
		s.Tick(nil)
	}
}

// jump skips m known-dead cycles at once. The only state an idle cycle
// mutates is the ctrl slot it retires (plus the clock), and after k such
// cycles the whole ring has been retired — so clearing the min(m, k)
// slots the skipped cycles would claim and advancing the clock is
// bit-identical to m idle Ticks.
func (s *Switch) jump(m int64) {
	clearN := m
	if clearN > int64(s.k) {
		clearN = int64(s.k)
	}
	for i := int64(0); i < clearN; i++ {
		slot := s.slotOf(s.cycle + i)
		if s.ctrl[slot].Kind != OpNone {
			s.clearCtrl(slot)
		}
	}
	s.cycle += m
}

// Quiescent reports that no cell is anywhere inside the switch — not on
// the pipelined link wires, not awaiting a write wave, not buffered, not
// streaming out of an egress link. Ticking a quiescent switch without
// arrivals changes nothing but the clock and the retiring control ring.
func (s *Switch) Quiescent() bool {
	return s.pendingWrites == 0 && s.txPending == 0 && s.delayCount == 0 &&
		s.queues.Total() == 0 && !s.egressBusy()
}

// countCells counts non-nil entries of a heads vector.
func countCells(heads []*cell.Cell) int {
	n := 0
	for _, h := range heads {
		if h != nil {
			n++
		}
	}
	return n
}

// inFlightCount returns the number of cells still occupying input
// register rows awaiting their write wave.
func (s *Switch) inFlightCount() int {
	c := 0
	for i := range s.inflight {
		if a := &s.inflight[i]; a.active && !a.written {
			c++
		}
	}
	return c
}

// egressBusy reports whether any departure is still being transmitted.
func (s *Switch) egressBusy() bool {
	if s.fastMode {
		// The fast path posts every transmission to the completion ring
		// when it starts, so the census is already counted.
		return s.txPending > 0
	}
	for _, e := range s.egress {
		if e.Len() > 0 {
			return true
		}
	}
	return false
}

// pendingCount returns cells that were offered but neither delivered nor
// dropped (still resident at the end of a run).
func (s *Switch) pendingCount() int64 {
	return int64(s.Buffered() + s.inFlightCount() + s.egressWords() + s.delayCount)
}

// Resident returns the number of cells currently inside the switch in any
// form: crossing pipelined link wires, awaiting a write wave in the input
// registers, buffered, or streaming out of an egress link. Conservation
// demands offered == delivered + dropped + Resident() at every instant.
func (s *Switch) Resident() int { return int(s.pendingCount()) }

// egressWords counts departures in flight at egress.
func (s *Switch) egressWords() int {
	if s.fastMode {
		return s.txPending
	}
	c := 0
	for _, e := range s.egress {
		c += e.Len()
	}
	return c
}
