package core

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// RunResult summarizes a traffic-driven RTL run.
type RunResult struct {
	// Cycles is the number of clock cycles simulated (including the
	// drain tail).
	Cycles int64
	// Offered, Delivered and Dropped count cells.
	Offered, Delivered, Dropped int64
	// DropOverrun, DropPolicy and DropPushOut break Dropped down by loss
	// mode: arrivals displaced before obtaining a write wave, arrivals
	// refused by the shared-buffer admission policy, and queued cells
	// preempted by a push-out verdict. (Bypass flushes, the fourth mode,
	// appear only in fault runs.)
	DropOverrun, DropPolicy, DropPushOut int64
	// InputStalls[i] counts cycles input i held a cell still waiting for
	// its write wave — the per-port backpressure that used to be a silent
	// retry. InputDrops[i] and OutputDrops[o] count lost cells by arrival
	// input and by destination output. Nil from the dual-organization
	// driver, which models no shared-buffer admission.
	InputStalls, InputDrops, OutputDrops []int64
	// Corrupt counts integrity violations (must be zero).
	Corrupt int64
	// Utilization is the fraction of output-link cycles carrying data.
	Utilization float64
	// MeanCutLatency is the mean head-in→head-out latency in cycles.
	MeanCutLatency float64
	// MinCutLatency is the smallest observed head latency: 2 cycles with
	// cut-through (one to reach the input register, one through M0).
	MinCutLatency int64
	// MeanInitDelay is the measured §3.4 staggered-initiation delay.
	MeanInitDelay float64
	// MaxBuffered is the peak buffer occupancy in cells; MeanBuffered
	// the time-average (sampled per cycle over the driven window).
	MaxBuffered  int
	MeanBuffered float64
	// CutLatencyOverflow counts departures whose head latency exceeded the
	// resolution of the cut-latency histogram (stats.Hist overflow): their
	// exact values are absent from per-value counts and upper quantiles,
	// though MeanCutLatency still includes them. Nonzero means quantile
	// reports on the histogram are truncated.
	CutLatencyOverflow int64
}

// String implements fmt.Stringer.
func (r RunResult) String() string {
	s := fmt.Sprintf("cycles=%d offered=%d delivered=%d dropped=%d util=%.4f cutlat=%.2f initdelay=%.4f",
		r.Cycles, r.Offered, r.Delivered, r.Dropped, r.Utilization, r.MeanCutLatency, r.MeanInitDelay)
	if r.DropPolicy > 0 || r.DropPushOut > 0 {
		s += fmt.Sprintf(" drops[overrun=%d policy=%d pushout=%d]", r.DropOverrun, r.DropPolicy, r.DropPushOut)
	}
	if r.CutLatencyOverflow > 0 {
		s += fmt.Sprintf(" cutlat-overflow=%d", r.CutLatencyOverflow)
	}
	return s
}

// RunTraffic drives the switch with the cell stream for the given number
// of cycles, then drains in-flight cells, verifying the integrity of every
// departure. The stream's port count and the switch's must agree.
func RunTraffic(s *Switch, cs *traffic.CellStream, cycles int64) (RunResult, error) {
	n, k := s.n, s.k
	heads := make([]int, n)
	hcells := make([]*cell.Cell, n)
	pool := cell.NewPool(k)
	s.SetDrainRecycle(true)
	defer s.SetDrainRecycle(false)
	var seq uint64
	var res RunResult
	minLat := int64(-1)
	busyWords := int64(0)

	var occSum float64
	collect := func() {
		for _, d := range s.Drain() {
			res.Delivered++
			busyWords += int64(k)
			if !d.Cell.Equal(d.Expected) {
				res.Corrupt++
			}
			lat := d.HeadOut - d.HeadIn
			if minLat < 0 || lat < minLat {
				minLat = lat
			}
			// The injected cell has left the switch; reuse it for a
			// later arrival (unicast only — every cell here is).
			pool.Put(d.Expected)
		}
		if b := s.Buffered(); b > res.MaxBuffered {
			res.MaxBuffered = b
		}
	}

	for c := int64(0); c < cycles; c++ {
		cs.Heads(heads)
		for i := range hcells {
			hcells[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hcells[i] = pool.New(seq, i, heads[i], s.cfg.WordBits)
				res.Offered++
			}
		}
		s.Tick(hcells)
		collect()
		occSum += float64(s.Buffered())
	}
	res.MeanBuffered = occSum / float64(cycles)
	// Drain: stop injecting and let the pipeline and queues empty. The
	// bound covers the worst case of a full buffer funneled through one
	// output.
	drainBound := int64((s.cfg.Cells + 2) * k * 2)
	total := cycles
	for c := int64(0); c < drainBound && (s.Buffered() > 0 || s.inFlightCount() > 0 || s.egressBusy()); c++ {
		s.Tick(nil)
		collect()
		total++
	}
	res.Cycles = s.cycle
	s.SyncObserver() // final occupancy-gauge publish (decimated in Tick)
	res.DropOverrun = s.counter.Get("drop-overrun")
	res.DropPolicy = s.counter.Get("drop-policy")
	res.DropPushOut = s.counter.Get("drop-pushout")
	res.Dropped = s.DroppedCells()
	res.InputStalls = append([]int64(nil), s.inStalls...)
	res.InputDrops = append([]int64(nil), s.inDrops...)
	res.OutputDrops = append([]int64(nil), s.outDrops...)
	res.MeanCutLatency = s.cutLatency.Mean()
	res.MinCutLatency = minLat
	res.MeanInitDelay = s.initDelay.Mean()
	res.CutLatencyOverflow = s.cutLatency.Overflow()
	// Utilization normalizes by every simulated cycle of this run —
	// driven window plus drain tail — so link activity during the drain
	// cannot push the ratio past 1.0.
	res.Utilization = float64(busyWords) / float64(total*int64(n))
	if res.Delivered+res.Dropped+s.pendingCount() != res.Offered {
		return res, fmt.Errorf("core: conservation violated: offered %d, delivered %d, dropped %d, pending %d",
			res.Offered, res.Delivered, res.Dropped, s.pendingCount())
	}
	if res.Corrupt > 0 {
		return res, fmt.Errorf("core: %d corrupted cells", res.Corrupt)
	}
	return res, nil
}

// countCells counts non-nil entries of a heads vector.
func countCells(heads []*cell.Cell) int {
	n := 0
	for _, h := range heads {
		if h != nil {
			n++
		}
	}
	return n
}

// inFlightCount returns the number of cells still occupying input
// register rows awaiting their write wave.
func (s *Switch) inFlightCount() int {
	c := 0
	for i := range s.inflight {
		if a := &s.inflight[i]; a.active && !a.written {
			c++
		}
	}
	return c
}

// egressBusy reports whether any departure is still being transmitted.
func (s *Switch) egressBusy() bool {
	for _, e := range s.egress {
		if e.Len() > 0 {
			return true
		}
	}
	return false
}

// pendingCount returns cells that were offered but neither delivered nor
// dropped (still resident at the end of a run).
func (s *Switch) pendingCount() int64 {
	return int64(s.Buffered() + s.inFlightCount() + s.egressWords() + s.delayCount)
}

// Resident returns the number of cells currently inside the switch in any
// form: crossing pipelined link wires, awaiting a write wave in the input
// registers, buffered, or streaming out of an egress link. Conservation
// demands offered == delivered + dropped + Resident() at every instant.
func (s *Switch) Resident() int { return int(s.pendingCount()) }

// egressWords counts departures in flight at egress.
func (s *Switch) egressWords() int {
	c := 0
	for _, e := range s.egress {
		c += e.Len()
	}
	return c
}
