package core

import (
	mathbits "math/bits"

	"pipemem/internal/cell"
)

// SEC-DED (single-error-correct, double-error-detect) Hamming code for one
// memory word of up to 64 data bits. The pipelined memory stores the check
// bits alongside each word of each stage (an extra r+1 bit columns per
// bank, §5-style area cost) so that a single-event upset in a bank is
// corrected on the read wave and a multi-bit failure is detected rather
// than silently delivered.
//
// The layout is the textbook one: codeword positions are numbered from 1;
// positions that are powers of two hold check bits, the rest hold the data
// bits in order. Check bit i covers every position whose index has bit i
// set. An overall-parity bit extends the Hamming distance to 4 (SEC-DED).

// eccStatus classifies the outcome of a decode.
type eccStatus uint8

const (
	// eccClean: the word matched its check bits.
	eccClean eccStatus = iota
	// eccCorrected: a single-bit error (in data, check bits, or the
	// overall parity) was corrected.
	eccCorrected
	// eccUncorrectable: a multi-bit error was detected; the returned word
	// is not trustworthy.
	eccUncorrectable
)

// eccCheckBits returns the number of Hamming check bits r for width data
// bits (smallest r with 2^r ≥ width + r + 1). The stored check word is one
// bit wider: the overall parity rides in bit r.
func eccCheckBits(width int) int {
	r := 0
	for (1 << r) < width+r+1 {
		r++
	}
	return r
}

// eccSpread places the width data bits of w into codeword positions
// 1..width+r, skipping power-of-two positions, and returns the positions
// of the 1-bits folded as an XOR (the parity-group accumulator) plus the
// populated codeword as a position-indexed bitmask is not needed — only
// the group parities are. Instead of materializing the codeword, both
// encode and decode fold each 1-bit's position into a running XOR: for a
// codeword with exactly the check bits chosen below, the XOR of the
// positions of all 1-bits is zero, and after a single bit error at
// position p it is exactly p.
func eccSpread(w cell.Word, width int) (posXor uint, ones int) {
	pos := uint(0) // codeword position of the next data bit, starting at 3
	next := uint(3)
	for b := 0; b < width; b++ {
		pos = next
		// Advance to the following non-power-of-two position.
		next++
		for next&(next-1) == 0 {
			next++
		}
		if w&(1<<uint(b)) != 0 {
			posXor ^= pos
			ones++
		}
	}
	return posXor, ones
}

// eccEncode returns the stored check bits for a width-bit data word: bits
// 0..r-1 are the Hamming check bits, bit r is the overall parity of the
// whole codeword (data + check bits).
func eccEncode(w cell.Word, width int) uint8 {
	r := eccCheckBits(width)
	posXor, ones := eccSpread(w, width)
	// Check bit i equals the parity of the data positions with bit i set,
	// which is exactly bit i of posXor.
	check := uint8(posXor) & (1<<uint(r) - 1)
	// Overall parity over data bits and check bits.
	parity := uint(ones)
	for i := 0; i < r; i++ {
		parity += uint(check>>uint(i)) & 1
	}
	return check | uint8(parity&1)<<uint(r)
}

// eccDecode verifies a (word, check) pair read from a bank. It returns the
// (possibly corrected) word and the decode status.
func eccDecode(w cell.Word, check uint8, width int) (cell.Word, eccStatus) {
	r := eccCheckBits(width)
	expect := eccEncode(w, width)
	syndrome := uint((check ^ expect) & (1<<uint(r) - 1))
	// The overall parity is checked over the bits actually read (data,
	// check bits, parity bit): the encoder makes that total even.
	ones := mathbits.OnesCount64(uint64(w)) + mathbits.OnesCount8(check)
	parityErr := ones&1 != 0
	switch {
	case syndrome == 0 && !parityErr:
		return w, eccClean
	case syndrome == 0 && parityErr:
		// The overall-parity bit itself flipped; the data is intact.
		return w, eccCorrected
	case parityErr:
		// Odd number of flipped bits with a nonzero syndrome: a single-bit
		// error at codeword position `syndrome`. Power-of-two positions are
		// check bits (data intact); others map back to a data bit.
		if syndrome&(syndrome-1) == 0 {
			return w, eccCorrected
		}
		if bit, ok := eccDataBit(syndrome, width); ok {
			return w ^ 1<<uint(bit), eccCorrected
		}
		// Position beyond the codeword: cannot be a single-bit error.
		return w, eccUncorrectable
	default:
		// Even number of flipped bits, nonzero syndrome: double error.
		return w, eccUncorrectable
	}
}

// eccDataBit maps codeword position pos back to a data bit index; ok is
// false when pos is outside the data positions of a width-bit codeword.
func eccDataBit(pos uint, width int) (int, bool) {
	p := uint(3)
	for b := 0; b < width; b++ {
		if p == pos {
			return b, true
		}
		p++
		for p&(p-1) == 0 {
			p++
		}
	}
	return 0, false
}
