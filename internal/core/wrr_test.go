package core

import (
	"math"
	"testing"

	"pipemem/internal/cell"
)

// prefill parks `per` cells on each of the given VCs for output 0 while
// the output's gate is closed, then returns the switch with the gate
// still closed (caller reopens via the returned func).
func prefillVCs(t *testing.T, weights []int, per int) (*Switch, func()) {
	t.Helper()
	vcs := 2
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 256, CutThrough: true, VCs: vcs})
	if weights != nil {
		if err := s.SetVCWeights(0, weights); err != nil {
			t.Fatal(err)
		}
	}
	closed := true
	s.SetVCGate(func(out, vc int) bool { return !closed })
	k := s.Config().Stages
	var seq uint64
	// Input 0 feeds VC 0, input 1 feeds VC 1, both to output 0.
	for injected := 0; injected < per; injected++ {
		heads := make([]*cell.Cell, 2)
		for i := 0; i < 2; i++ {
			seq++
			c := cell.New(seq, i, 0, k, 16)
			c.VC = i
			heads[i] = c
		}
		s.Tick(heads)
		for j := 1; j < k; j++ {
			s.Tick(nil)
		}
	}
	// Let the last write waves complete.
	for j := 0; j < 2*k; j++ {
		s.Tick(nil)
	}
	if got := s.QueuedFor(0); got != 2*per {
		t.Fatalf("prefill parked %d cells, want %d", got, 2*per)
	}
	return s, func() { closed = false }
}

// TestWRRProportionalService: with both VC queues prefilled and the gate
// reopened, a 3:1 weighting drains the backlog at a ≈3:1 rate until the
// heavy queue empties — the [KaSC91] weighted multiplexing discipline.
func TestWRRProportionalService(t *testing.T) {
	s, open := prefillVCs(t, []int{3, 1}, 30)
	open()
	k := s.Config().Stages
	counts := map[int]int{}
	// Observe the first 24 departures: within WRR frames of 3+1, the
	// split must be 18:6.
	for c := 0; c < 200*k && counts[0]+counts[1] < 24; c++ {
		s.Tick(nil)
		for _, d := range s.Drain() {
			if counts[0]+counts[1] < 24 {
				counts[d.VC]++
			}
		}
	}
	if counts[0]+counts[1] < 24 {
		t.Fatalf("only %v departures", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.5 {
		t.Fatalf("drain ratio %.2f, want ≈3 (%v)", ratio, counts)
	}
}

// TestWRREqualWeightsIsFair: 1:1 weights drain 1:1.
func TestWRREqualWeightsIsFair(t *testing.T) {
	s, open := prefillVCs(t, []int{1, 1}, 20)
	open()
	k := s.Config().Stages
	counts := map[int]int{}
	for c := 0; c < 200*k && counts[0]+counts[1] < 24; c++ {
		s.Tick(nil)
		for _, d := range s.Drain() {
			if counts[0]+counts[1] < 24 {
				counts[d.VC]++
			}
		}
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("drain ratio %.2f, want ≈1 (%v)", ratio, counts)
	}
}

// TestWRRWorkConserving: once the heavy queue empties, the light one gets
// the full link (no idle frames), so the whole backlog drains in exactly
// backlog+pipeline cell times.
func TestWRRWorkConserving(t *testing.T) {
	const per = 16
	s, open := prefillVCs(t, []int{3, 1}, per)
	open()
	k := s.Config().Stages
	delivered := 0
	cellTimes := 0
	for c := 0; delivered < 2*per; c++ {
		if c > (2*per+8)*k {
			t.Fatalf("drain not work-conserving: %d of %d after %d cycles", delivered, 2*per, c)
		}
		s.Tick(nil)
		delivered += len(s.Drain())
		cellTimes = c / k
	}
	_ = cellTimes
}

// TestWRRSkipsIdleVC: an idle heavy-weight VC must not throttle the
// backlogged one.
func TestWRRSkipsIdleVC(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 32, CutThrough: true, VCs: 2})
	if err := s.SetVCWeights(0, []int{7, 1}); err != nil {
		t.Fatal(err)
	}
	k := s.Config().Stages
	var seq uint64
	delivered := 0
	// Only VC 1 (weight 1) carries traffic, back to back.
	for c := int64(0); c < 100*int64(k); c++ {
		var heads []*cell.Cell
		if c%int64(k) == 0 {
			seq++
			hc := cell.New(seq, 0, 0, k, 16)
			hc.VC = 1
			heads = []*cell.Cell{hc, nil}
		}
		s.Tick(heads)
		delivered += len(s.Drain())
	}
	if delivered < 95 {
		t.Fatalf("only %d cells delivered in 100 cell times: idle VC throttled the live one", delivered)
	}
}

// TestWRRValidation.
func TestWRRValidation(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true, VCs: 2})
	if err := s.SetVCWeights(0, []int{1}); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
	if err := s.SetVCWeights(0, []int{1, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := s.SetVCWeights(0, []int{2, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVCWeights(0, nil); err != nil {
		t.Fatal("clearing weights failed")
	}
}

// TestGatedVCHogsSharedPool documents the pathology that motivates
// per-VC/per-output occupancy limits: when one VC's receiver stops
// crediting and its traffic keeps coming, the parked cells eventually own
// the whole shared pool and other traffic's throughput collapses. (The
// slot-level CappedSharedBuffer shows the cure; see internal/sim.)
func TestGatedVCHogsSharedPool(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 32, CutThrough: true, VCs: 2})
	blocked := true
	s.SetVCGate(func(out, vc int) bool { return vc != 0 || !blocked })
	k := s.Config().Stages
	var seq uint64
	vc1Delivered := 0
	for c := int64(0); c < 400*int64(k); c++ {
		var heads []*cell.Cell
		if c%int64(k) == 0 {
			heads = make([]*cell.Cell, 2)
			seq++
			c0 := cell.New(seq, 0, 0, k, 16)
			c0.VC = 0 // blocked forever; parks in the pool
			heads[0] = c0
			seq++
			c1 := cell.New(seq, 1, 0, k, 16)
			c1.VC = 1
			heads[1] = c1
		}
		s.Tick(heads)
		for _, d := range s.Drain() {
			if d.VC == 1 {
				vc1Delivered++
			}
		}
	}
	// The pool is finite: VC 0's parked cells squeeze VC 1's share far
	// below the ~400 it would otherwise deliver.
	if free := s.FreeCells(); free > 2 {
		t.Fatalf("pool not hogged: %d free", free)
	}
	if vc1Delivered > 120 {
		t.Fatalf("VC 1 delivered %d: hogging did not bite (model changed?)", vc1Delivered)
	}
	if vc1Delivered == 0 {
		t.Fatal("VC 1 fully starved: expected a trickle via freed addresses")
	}
}
