package core

import (
	"math/rand/v2"
	"testing"

	"pipemem/internal/cell"
)

// TestECCCleanRoundTrip: an unperturbed (word, check) pair decodes clean
// for every supported width.
func TestECCCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, width := range []int{1, 4, 8, 11, 16, 26, 32, 57, 64} {
		for i := 0; i < 200; i++ {
			w := cell.Word(rng.Uint64()).Mask(width)
			got, st := eccDecode(w, eccEncode(w, width), width)
			if st != eccClean || got != w {
				t.Fatalf("width %d word %#x: status %d, got %#x", width, w, st, got)
			}
		}
	}
}

// TestECCSingleBitCorrection: every single-bit data error is corrected back
// to the original word; every single-bit check error leaves data intact.
func TestECCSingleBitCorrection(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, width := range []int{1, 8, 16, 33, 64} {
		r := eccCheckBits(width)
		for i := 0; i < 100; i++ {
			w := cell.Word(rng.Uint64()).Mask(width)
			chk := eccEncode(w, width)
			for b := 0; b < width; b++ {
				got, st := eccDecode(w^1<<uint(b), chk, width)
				if st != eccCorrected || got != w {
					t.Fatalf("width %d: data bit %d flip not corrected (status %d, got %#x, want %#x)",
						width, b, st, got, w)
				}
			}
			for b := 0; b <= r; b++ { // check bits and the parity bit
				got, st := eccDecode(w, chk^1<<uint(b), width)
				if st != eccCorrected || got != w {
					t.Fatalf("width %d: check bit %d flip mishandled (status %d)", width, b, st)
				}
			}
		}
	}
}

// TestECCDoubleBitDetection: any two-bit data error is flagged
// uncorrectable — never silently delivered, never miscorrected.
func TestECCDoubleBitDetection(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, width := range []int{8, 16, 64} {
		for i := 0; i < 50; i++ {
			w := cell.Word(rng.Uint64()).Mask(width)
			chk := eccEncode(w, width)
			for b1 := 0; b1 < width; b1++ {
				b2 := (b1 + 1 + rng.IntN(width-1)) % width
				if b1 == b2 {
					continue
				}
				_, st := eccDecode(w^1<<uint(b1)^1<<uint(b2), chk, width)
				if st != eccUncorrectable {
					t.Fatalf("width %d: double flip (%d,%d) not detected (status %d)", width, b1, b2, st)
				}
			}
		}
	}
}

// TestECCCheckBitCount pins the check-bit arithmetic: 16-bit words need 5+1
// bits, 64-bit words 7+1 (the §5-style area overhead quoted in DESIGN.md).
func TestECCCheckBitCount(t *testing.T) {
	for _, tc := range []struct{ width, r int }{
		{1, 2}, {4, 3}, {8, 4}, {11, 4}, {16, 5}, {26, 5}, {57, 6}, {64, 7},
	} {
		if got := eccCheckBits(tc.width); got != tc.r {
			t.Errorf("eccCheckBits(%d) = %d, want %d", tc.width, got, tc.r)
		}
	}
}
