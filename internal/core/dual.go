package core

import (
	"fmt"
	"math/bits"

	"pipemem/internal/cell"
	"pipemem/internal/fifo"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// DualSwitch is the half-quantum organization of §3.5: an n×n switch whose
// cells are n words (half the canonical quantum), buffered in two pipelined
// memories of n stages each. In each and every cycle one read wave may be
// initiated from one of the two memories — whichever holds the desired
// cell — while one write wave is initiated into the other, so the full
// aggregate throughput (one cell in, one cell out per cell time per port)
// is sustained with cells of half the §3.5 quantum.
type DualSwitch struct {
	cfg  Config
	n, k int // k = n stages per bank; cells are k words

	cycle int64

	banks [2]*bank

	inReg    [][]cell.Word // [input][k]
	inflight []arrival

	free   [2]*fifo.FreeList
	queues *fifo.MultiQueue // per output; node = bank*cells + addr
	descs  [][]desc         // [bank][addr]

	linkFree []int64
	readRR   int
	writeRR  int
	// writeBank alternates the default bank for writes when no read
	// constrains the choice, balancing occupancy.
	writeBank int

	// pendWrites counts arrivals awaiting their write wave (active and
	// not yet written) — the census that lets an idle Tick skip the
	// write-arbitration scan entirely.
	pendWrites int
	// maskable enables the uint64 occupancy bitmasks on the ctrl ring and
	// output registers (k ≤ 64); larger switches fall back to full scans.
	maskable bool

	// rxHead is the single egress slot per output. At most one
	// transmission is ever in flight per output: a read (or write-through)
	// for output o reserves the link through cycle c+k, its last word
	// delivers at the top of cycle c+k — before that cycle's arbitration
	// can start the next one — so a ring would never hold two records.
	rxHead    []*reasm
	done      []Departure
	counter   stats.Counter
	initDelay stats.Mean
	cutLat    *stats.Hist

	// Hot-path recycling, mirroring Switch (see switch.go): pooled
	// reassembly records and observed cells, double-buffered Drain.
	reasmFree []*reasm
	cellFree  []*cell.Cell
	doneOut   []Departure
	recycle   bool
}

// bank is one of the two pipelined memories. Control is a ring indexed by
// initiation cycle (slot = c₀ mod k) rather than a shifting array: the op
// initiated at c₀ executes stage c−c₀ at cycle c and retires when its slot
// comes around again — the per-cycle k-deep Op shift becomes free. at[]
// holds each slot's initiation cycle; mask/count track occupied slots and
// loaded output registers so idle banks cost one compare per cycle.
type bank struct {
	mem    [][]cell.Word // [stage][addr]
	ctrl   []Op          // [slot]
	at     []int64       // [slot] initiation cycle
	outReg []outWord

	mask     uint64 // occupied ctrl slots (k ≤ 64)
	count    int    // occupied ctrl slots
	outMask  uint64 // loaded output registers (k ≤ 64)
	outCount int    // loaded output registers
}

// NewDual builds the two-memory half-quantum switch. cfg.Stages, if set,
// must equal Ports (the per-bank stage count); Cells is the capacity per
// bank.
func NewDual(cfg Config) (*DualSwitch, error) {
	cfg = cfg.Canonical()
	if cfg.Stages == 2*cfg.Ports {
		cfg.Stages = cfg.Ports // canonical half-quantum
	}
	if cfg.Stages != cfg.Ports {
		return nil, fmt.Errorf("%w: dual switch needs Stages = Ports (half quantum), got %d stages for %d ports", ErrBadConfig, cfg.Stages, cfg.Ports)
	}
	if cfg.Ports < 2 {
		return nil, fmt.Errorf("%w: dual switch needs ≥ 2 ports", ErrBadConfig)
	}
	if cfg.WordBits < 1 || cfg.WordBits > 64 {
		return nil, fmt.Errorf("%w: word width %d out of 1…64", ErrBadConfig, cfg.WordBits)
	}
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("%w: capacity %d cells per bank, need ≥ 1", ErrBadConfig, cfg.Cells)
	}
	n, k := cfg.Ports, cfg.Ports
	d := &DualSwitch{
		cfg: cfg, n: n, k: k,
		inReg:    make([][]cell.Word, n),
		inflight: make([]arrival, n),
		queues:   fifo.NewMultiQueue(n, 2*cfg.Cells),
		linkFree: make([]int64, n),
		rxHead:   make([]*reasm, n),
		maskable: k <= 64,
		cutLat:   stats.NewHist(4096),
	}
	for b := 0; b < 2; b++ {
		bk := &bank{
			mem:    make([][]cell.Word, k),
			ctrl:   make([]Op, k),
			at:     make([]int64, k),
			outReg: make([]outWord, k),
		}
		for st := range bk.mem {
			bk.mem[st] = make([]cell.Word, cfg.Cells)
		}
		d.banks[b] = bk
		d.free[b] = fifo.NewFreeList(cfg.Cells)
	}
	d.descs = [][]desc{make([]desc, cfg.Cells), make([]desc, cfg.Cells)}
	for i := range d.inReg {
		d.inReg[i] = make([]cell.Word, k)
	}
	return d, nil
}

// Config returns the effective configuration (Stages = Ports).
func (d *DualSwitch) Config() Config { return d.cfg }

// Counters exposes event counters (see Switch.Counters).
func (d *DualSwitch) Counters() *stats.Counter { return &d.counter }

// CutLatency returns the head-in→head-out latency histogram.
func (d *DualSwitch) CutLatency() *stats.Hist { return d.cutLat }

// Buffered returns cells resident in either bank's queues.
func (d *DualSwitch) Buffered() int { return d.queues.Total() }

// Drain returns the departures completed since the last call. Under
// recycle mode (SetDrainRecycle) the returned slice and its Cell values
// are valid only until the next call; see Switch.Drain for the contract.
func (d *DualSwitch) Drain() []Departure {
	if !d.recycle {
		out := d.done
		d.done = nil
		return out
	}
	for i := range d.doneOut {
		if c := d.doneOut[i].Cell; c != nil {
			d.cellFree = append(d.cellFree, c)
		}
		d.doneOut[i] = Departure{}
	}
	out := d.done
	d.done = d.doneOut[:0]
	d.doneOut = out
	return out
}

// SetDrainRecycle toggles Drain's double-buffered recycling mode; see
// Switch.SetDrainRecycle.
func (d *DualSwitch) SetDrainRecycle(on bool) {
	d.recycle = on
	if !on {
		d.doneOut = nil
	}
}

func (d *DualSwitch) getReasm() *reasm {
	if n := len(d.reasmFree); n > 0 {
		r := d.reasmFree[n-1]
		d.reasmFree[n-1] = nil
		d.reasmFree = d.reasmFree[:n-1]
		return r
	}
	return &reasm{words: make([]cell.Word, 0, d.k)}
}

func (d *DualSwitch) getCell() *cell.Cell {
	if n := len(d.cellFree); n > 0 {
		c := d.cellFree[n-1]
		d.cellFree[n-1] = nil
		d.cellFree = d.cellFree[:n-1]
		return c
	}
	return &cell.Cell{Words: make([]cell.Word, 0, d.k)}
}

// node packs (bank, addr) into a MultiQueue node index.
func (d *DualSwitch) node(b, addr int) int    { return b*d.cfg.Cells + addr }
func (d *DualSwitch) unpack(n int) (b, a int) { return n / d.cfg.Cells, n % d.cfg.Cells }

// Tick advances one clock cycle; heads as in Switch.Tick, with cells of
// exactly n words.
func (d *DualSwitch) Tick(heads []*cell.Cell) {
	c := d.cycle

	// Dead-cycle shortcut: no arrivals, no arrival awaiting its write
	// wave, nothing queued, both control rings retired and both output
	// register rows drained — the only state this cycle would change is
	// the clock. (An arrival still streaming its tail words into the
	// input registers keeps either pendWrites or its write wave's ring
	// slot nonzero for as long as any of those words will be read.)
	if heads == nil && d.pendWrites == 0 && d.queues.Total() == 0 &&
		d.banks[0].count == 0 && d.banks[1].count == 0 &&
		d.banks[0].outCount == 0 && d.banks[1].outCount == 0 {
		d.cycle++
		return
	}

	// Egress from both banks' output register rows. A loaded register is
	// always delivered on the following cycle, so every occupied slot
	// fires; the masks only skip the empty ones.
	for b := 0; b < 2; b++ {
		bk := d.banks[b]
		if bk.outCount == 0 {
			continue
		}
		if d.maskable {
			for m := bk.outMask; m != 0; m &= m - 1 {
				st := bits.TrailingZeros64(m)
				r := &bk.outReg[st]
				if r.valid && r.loadedAt == c-1 {
					d.deliver(r.out, r.word, c)
					r.valid = false
					bk.outMask &^= uint64(1) << uint(st)
					bk.outCount--
				}
			}
		} else {
			for st := range bk.outReg {
				r := &bk.outReg[st]
				if r.valid && r.loadedAt == c-1 {
					d.deliver(r.out, r.word, c)
					r.valid = false
					bk.outCount--
				}
			}
		}
	}

	// Retire the slot whose op was initiated k cycles ago: its final
	// stage executed last cycle, and this cycle's initiation (if any)
	// reuses the slot.
	slot := int(c % int64(d.k))
	bit := uint64(1) << uint(slot&63)
	for b := 0; b < 2; b++ {
		bk := d.banks[b]
		if bk.ctrl[slot].Kind != OpNone {
			bk.ctrl[slot] = Op{}
			bk.mask &^= bit
			bk.count--
		}
	}

	// Arbitration: one read from one bank, one write into the other.
	readBank := -1
	var readOp Op
	if rb, op, ok := d.pickRead(c); ok {
		readBank = rb
		readOp = op
	}
	writeBank := -1
	var writeOp Op
	if d.pendWrites > 0 {
		// The write must avoid the bank being read this cycle.
		forbidden := readBank
		if wb, op, ok := d.pickWrite(c, forbidden); ok {
			writeBank = wb
			writeOp = op
		}
	}
	if readBank >= 0 {
		bk := d.banks[readBank]
		bk.ctrl[slot] = readOp
		bk.at[slot] = c
		bk.mask |= bit
		bk.count++
	}
	if writeBank >= 0 {
		bk := d.banks[writeBank]
		bk.ctrl[slot] = writeOp
		bk.at[slot] = c
		bk.mask |= bit
		bk.count++
	}

	// Execute each bank's live ops. The op in slot s was initiated at
	// at[s], so this cycle it acts on stage c−at[s]; distinct live slots
	// map to distinct stages, and stages touch disjoint state, so
	// execution order within a cycle is immaterial.
	for b := 0; b < 2; b++ {
		bk := d.banks[b]
		if bk.count == 0 {
			continue
		}
		if d.maskable {
			for m := bk.mask; m != 0; m &= m - 1 {
				d.execOp(bk, bits.TrailingZeros64(m), c)
			}
		} else {
			for s := range bk.ctrl {
				if bk.ctrl[s].Kind != OpNone {
					d.execOp(bk, s, c)
				}
			}
		}
	}

	// Ingress.
	for i := 0; i < d.n; i++ {
		a := &d.inflight[i]
		if a.active {
			if j := c - a.head; j > 0 && j < int64(d.k) {
				d.inReg[i][j] = a.c.Words[j].Mask(d.cfg.WordBits)
			}
		}
		if heads == nil || heads[i] == nil {
			continue
		}
		nc := heads[i]
		if len(nc.Words) != d.k {
			panic(fmt.Sprintf("core: cell of %d words injected into half-quantum switch of %d-word cells", len(nc.Words), d.k))
		}
		if a.active {
			if c-a.head < int64(d.k) {
				panic(fmt.Sprintf("core: head injected mid-cell on input %d", i))
			}
			if !a.written {
				d.counter.Inc("drop-overrun", 1)
				// The displaced arrival was still pending; the new one
				// takes its place in the census.
				d.pendWrites--
			}
		}
		d.counter.Inc("offered", 1)
		nc.Enqueue = c
		*a = arrival{c: nc, head: c, active: true}
		d.pendWrites++
		d.inReg[i][0] = nc.Words[0].Mask(d.cfg.WordBits)
	}

	d.cycle++
}

// execOp runs the op in slot s of bank bk at its current stage.
func (d *DualSwitch) execOp(bk *bank, s int, c int64) {
	op := &bk.ctrl[s]
	st := int(c - bk.at[s])
	switch op.Kind {
	case OpWrite:
		bk.mem[st][op.Addr] = d.inReg[op.In][st]
	case OpRead:
		bk.outReg[st] = outWord{word: bk.mem[st][op.Addr], out: op.Out, loadedAt: c, valid: true}
		bk.outMask |= uint64(1) << uint(st&63)
		bk.outCount++
	case OpWriteThrough:
		w := d.inReg[op.In][st]
		bk.mem[st][op.Addr] = w
		bk.outReg[st] = outWord{word: w, out: op.Out, loadedAt: c, valid: true}
		bk.outMask |= uint64(1) << uint(st&63)
		bk.outCount++
	}
}

// pickRead selects an idle output whose head-of-queue cell is eligible;
// the bank is dictated by where that cell lives (§3.5: "whichever the
// desired packet happens to be in").
func (d *DualSwitch) pickRead(c int64) (bankIdx int, op Op, ok bool) {
	for j := 0; j < d.n; j++ {
		o := (d.readRR + j) % d.n
		if d.linkFree[o] > c {
			continue
		}
		node, found := d.queues.Front(o)
		if !found {
			continue
		}
		b, addr := d.unpack(node)
		dsc := &d.descs[b][addr]
		if !d.cfg.CutThrough && c < dsc.writeStart+int64(d.k) {
			continue
		}
		d.queues.Pop(o)
		d.readRR = (o + 1) % d.n
		d.startTransmit(o, dsc, c)
		d.free[b].Put(addr)
		return b, Op{Kind: OpRead, Out: o, Addr: addr}, true
	}
	return -1, Op{}, false
}

// pickWrite selects the most urgent pending arrival and a bank other than
// forbidden (§3.5: the write goes "into the other one of the two
// memories").
func (d *DualSwitch) pickWrite(c int64, forbidden int) (bankIdx int, op Op, ok bool) {
	best := -1
	var bestHead int64
	for j := 0; j < d.n; j++ {
		i := (d.writeRR + j) % d.n
		a := &d.inflight[i]
		if !a.active || a.written || c <= a.head {
			continue
		}
		if best == -1 || a.head < bestHead {
			best, bestHead = i, a.head
		}
	}
	if best == -1 {
		return -1, Op{}, false
	}
	// Choose the bank: not the one being read; otherwise alternate,
	// preferring one with free space.
	b := d.writeBank
	if forbidden >= 0 {
		b = 1 - forbidden
	}
	if d.free[b].Free() == 0 {
		b = 1 - b
		if b == forbidden || d.free[b].Free() == 0 {
			return -1, Op{}, false // both unavailable; retry next cycle
		}
	}
	addr, got := d.free[b].Get()
	if !got {
		return -1, Op{}, false
	}
	a := &d.inflight[best]
	a.written = true
	d.pendWrites--
	d.counter.Inc("accepted", 1)
	d.initDelay.Add(float64(c - a.head - 1))
	d.writeRR = (best + 1) % d.n
	d.writeBank = 1 - b
	dsc := desc{c: a.c, head: a.head, writeStart: c}
	dst := a.c.Dst

	if d.cfg.CutThrough && d.linkFree[dst] <= c && d.queues.Len(dst) == 0 {
		d.descs[b][addr] = dsc
		d.startTransmit(dst, &d.descs[b][addr], c)
		d.free[b].Put(addr)
		return b, Op{Kind: OpWriteThrough, In: best, Out: dst, Addr: addr}, true
	}
	d.descs[b][addr] = dsc
	d.queues.Push(dst, d.node(b, addr))
	return b, Op{Kind: OpWrite, In: best, Addr: addr}, true
}

func (d *DualSwitch) startTransmit(o int, dsc *desc, c int64) {
	d.linkFree[o] = c + int64(d.k)
	r := d.getReasm()
	r.d = *dsc
	r.words = r.words[:0]
	r.start = 0
	if d.rxHead[o] != nil {
		panic(fmt.Sprintf("core: transmission started on output %d with one already in flight", o))
	}
	d.rxHead[o] = r
}

func (d *DualSwitch) deliver(o int, w cell.Word, c int64) {
	r := d.rxHead[o]
	if r == nil {
		panic(fmt.Sprintf("core: word on output %d with no departure in flight", o))
	}
	if len(r.words) == 0 {
		r.start = c
	}
	r.words = append(r.words, w)
	if len(r.words) < d.k {
		return
	}
	d.rxHead[o] = nil
	got := d.getCell()
	got.Seq, got.Src, got.Dst, got.VC = r.d.c.Seq, r.d.c.Src, r.d.c.Dst, 0
	got.Copies = nil
	got.Enqueue = r.d.head
	got.Words = append(got.Words[:0], r.words...)
	d.counter.Inc("delivered", 1)
	if !got.Equal(r.d.c) {
		d.counter.Inc("corrupt", 1)
	}
	d.cutLat.Add(r.start - r.d.head)
	d.done = append(d.done, Departure{
		Cell: got, Expected: r.d.c, Output: o,
		HeadIn: r.d.head, HeadOut: r.start, TailOut: c,
		InitDelay: r.d.writeStart - r.d.head - 1,
	})
	d.reasmFree = append(d.reasmFree, r)
}

// RunDualTraffic drives a DualSwitch as RunTraffic drives a Switch.
func RunDualTraffic(d *DualSwitch, cs *traffic.CellStream, cycles int64) (RunResult, error) {
	n, k := d.n, d.k
	heads := make([]int, n)
	hcells := make([]*cell.Cell, n)
	pool := cell.NewPool(k)
	d.SetDrainRecycle(true)
	defer d.SetDrainRecycle(false)
	var seq uint64
	var res RunResult
	busyWords := int64(0)
	minLat := int64(-1)

	collect := func() {
		for _, dep := range d.Drain() {
			res.Delivered++
			busyWords += int64(k)
			if !dep.Cell.Equal(dep.Expected) {
				res.Corrupt++
			}
			lat := dep.HeadOut - dep.HeadIn
			if minLat < 0 || lat < minLat {
				minLat = lat
			}
			pool.Put(dep.Expected)
		}
		if b := d.Buffered(); b > res.MaxBuffered {
			res.MaxBuffered = b
		}
	}

	for c := int64(0); c < cycles; c++ {
		cs.Heads(heads)
		for i := range hcells {
			hcells[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hcells[i] = pool.New(seq, i, heads[i], d.cfg.WordBits)
				res.Offered++
			}
		}
		d.Tick(hcells)
		collect()
	}
	drainBound := int64((2*d.cfg.Cells + 2) * k * 2)
	total := cycles
	for c := int64(0); c < drainBound && d.busy(); c++ {
		d.Tick(nil)
		collect()
		total++
	}
	res.Cycles = d.cycle
	res.Dropped = d.counter.Get("drop-overrun")
	res.MeanCutLatency = d.cutLat.Mean()
	res.MinCutLatency = minLat
	res.MeanInitDelay = d.initDelay.Mean()
	res.CutLatencyOverflow = d.cutLat.Overflow()
	// As in RunTraffic: normalize by the full simulated span so drain-tail
	// departures cannot push utilization past 1.0.
	res.Utilization = float64(busyWords) / float64(total*int64(n))
	pending := int64(d.Buffered())
	for i := range d.inflight {
		if a := &d.inflight[i]; a.active && !a.written {
			pending++
		}
	}
	for _, r := range d.rxHead {
		if r != nil {
			pending++
		}
	}
	if res.Delivered+res.Dropped+pending != res.Offered {
		return res, fmt.Errorf("core: dual conservation violated: offered %d delivered %d dropped %d pending %d",
			res.Offered, res.Delivered, res.Dropped, pending)
	}
	if res.Corrupt > 0 {
		return res, fmt.Errorf("core: dual switch corrupted %d cells", res.Corrupt)
	}
	return res, nil
}

func (d *DualSwitch) busy() bool {
	if d.Buffered() > 0 {
		return true
	}
	for i := range d.inflight {
		if a := &d.inflight[i]; a.active && !a.written {
			return true
		}
	}
	for _, r := range d.rxHead {
		if r != nil {
			return true
		}
	}
	return false
}
