package core

import (
	"fmt"

	"pipemem/internal/bufmgr"
	"pipemem/internal/cell"
	"pipemem/internal/fifo"
	"pipemem/internal/obs"
	"pipemem/internal/stats"
)

// OpKind is the operation a memory stage performs in a cycle.
type OpKind uint8

const (
	// OpNone: the stage is idle this cycle.
	OpNone OpKind = iota
	// OpWrite: the stage writes its link's input register into the RAM.
	OpWrite
	// OpRead: the stage reads the RAM into its output register.
	OpRead
	// OpWriteThrough: the stage writes the RAM and simultaneously taps
	// the data bus into its output register — the same-cycle cut-through
	// of §3.3 ("in the same or in any subsequent cycle, this word can
	// also be loaded … into the leftmost output buffer register").
	OpWriteThrough
)

// String implements fmt.Stringer (single letters, fig. 5 style).
func (k OpKind) String() string {
	switch k {
	case OpNone:
		return "-"
	case OpWrite:
		return "W"
	case OpRead:
		return "R"
	case OpWriteThrough:
		return "T"
	default:
		return "?"
	}
}

// Op is one control word of the pipelined control path (fig. 5): the
// operation stage M0 performs this cycle, which subsequent stages repeat
// in subsequent cycles.
type Op struct {
	Kind OpKind
	// In is the incoming link whose input register row supplies the data
	// (OpWrite, OpWriteThrough).
	In int
	// Out is the outgoing link the data is destined for (OpRead,
	// OpWriteThrough).
	Out int
	// Addr is the buffer address used by every stage of the wave.
	Addr int
	// Remap marks a wave initiated while a stage bypass is active: every
	// stage of the wave resolves mapped-out banks through the redirect
	// table (degrade.go). The flag is frozen at initiation so a wave that
	// was in flight when a bypass tripped keeps its original bank schedule
	// to completion.
	Remap bool
}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o.Kind {
	case OpNone:
		return "-"
	case OpWrite:
		return fmt.Sprintf("W(in%d,a%d)", o.In, o.Addr)
	case OpRead:
		return fmt.Sprintf("R(out%d,a%d)", o.Out, o.Addr)
	case OpWriteThrough:
		return fmt.Sprintf("T(in%d,out%d,a%d)", o.In, o.Out, o.Addr)
	default:
		return "?"
	}
}

// outWord is one register of the shared output register row.
type outWord struct {
	word     cell.Word
	out      int
	loadedAt int64
	valid    bool
}

// arrival tracks a cell currently occupying an input register row. It is
// stored by value in a per-input slice (no per-cell allocation); active
// marks rows that have held a cell at all.
type arrival struct {
	c    *cell.Cell
	head int64 // cycle the head word was latched
	// written reports that the cell's write wave has been initiated.
	written bool
	active  bool
}

// desc is a buffered cell's descriptor: what the address-management
// circuitry of §3.3 keeps per queued copy of a stored cell. Unicast cells
// have one descriptor; multicast cells have one per destination, all
// sharing one buffer address (refcnt tracks the copies).
type desc struct {
	c          *cell.Cell
	head       int64
	writeStart int64
	vc         int
	addr       int
}

// Departure reports one cell leaving the switch, fully reassembled from
// the simulated wire.
type Departure struct {
	// Cell is the payload observed on the outgoing link.
	Cell *cell.Cell
	// Expected is the cell as injected; integrity demands Cell equals it.
	Expected *cell.Cell
	// Output is the outgoing link.
	Output int
	// HeadIn is the cycle the head word arrived at the switch; HeadOut
	// and TailOut are the cycles the head and tail words left on the
	// outgoing link. HeadOut-HeadIn is the cut-through latency.
	HeadIn, HeadOut, TailOut int64
	// InitDelay is the number of cycles the cell's write wave waited for
	// the stage-0 initiation slot beyond the earliest possible cycle
	// (head+1): the quantity bounded by §3.4.
	InitDelay int64
	// VC is the virtual channel the cell traveled on (0 without VCs).
	VC int
}

// reasm is the per-output reassembly state for departures in flight. The
// descriptor is embedded by value and the word buffer is recycled through
// the owning switch's pool, so steady-state transmission allocates
// nothing.
type reasm struct {
	d     desc
	words []cell.Word
	start int64 // cycle of head word on the link
}

// Switch is the cycle-accurate pipelined memory shared buffer switch.
// Construct with New; advance with Tick; collect departures with Drain.
type Switch struct {
	cfg  Config
	n, k int

	cycle int64

	mem    [][]cell.Word // [stage][address]
	inReg  [][]cell.Word // [input][stage]
	outReg []outWord     // [stage]
	// ctrl is the pipelined control path stored as a ring indexed by wave
	// initiation cycle: slot c0%k holds the op initiated at cycle c0, and
	// stage st executes slot (c-st)%k at cycle c. This is the same
	// "stage s+1 repeats stage s's operation next cycle" schedule of §3.3
	// without physically shifting a control word per stage per cycle.
	// ctrlAt resolves the stage view.
	ctrl []Op // [initiation cycle % k]

	inflight []arrival // per input

	free   *fifo.FreeList
	queues *fifo.MultiQueue // per (output, VC), of descriptor nodes
	nodes  []desc           // descriptor-node pool
	nfree  *fifo.FreeList   // free descriptor nodes
	refcnt []int            // per address: queued copies not yet read
	outOcc []int            // per output: queued cells across its VCs (O(1) QueuedFor)

	// policy is the optional shared-buffer admission policy (bufmgr);
	// polState is the pre-boxed State adapter handed to every Admit call
	// so consulting the policy allocates nothing. wrSkip[i] = cycle+1
	// marks input i's arrival as not admittable this cycle (Accept
	// verdict with no free address), so pickWrite's retry loop moves on
	// to the next-most-urgent arrival instead of rescanning it.
	policy   bufmgr.Policy
	polState *bufView
	wrSkip   []int64
	// inStalls[i] counts cycles input i held a cell still waiting for its
	// write wave (per-input backpressure visibility); inDrops[i] and
	// outDrops[o] count lost cells by arrival input and by destination
	// output across all loss modes.
	inStalls, inDrops, outDrops []int64

	linkFree []int64 // per output: first cycle a new read may be initiated
	readRR   int     // round-robin pointer over outputs
	vcRR     []int   // per output: round-robin pointer over its VC queues
	// vcWeights/vcTokens implement weighted round-robin service among an
	// output's VCs ([KaSC91], the authors' earlier WRR cell multiplexing
	// chip); nil weights mean plain round-robin.
	vcWeights [][]int
	vcTokens  [][]int
	writeRR   int // tie-break pointer over inputs (EDF first)

	egress       []*fifo.Ring[*reasm] // per output: cells being transmitted
	rxHead       []*reasm             // per output: cached egress front
	loaded       []int                // stages whose outReg was loaded this cycle
	done         []Departure
	tracer       func(TraceEvent)
	driveScratch []int // per stage: output link driven this cycle (trace)
	// obs is the observability layer (observe.go): nil — the default —
	// costs one pointer test per Tick and keeps the hot path 0 allocs/op.
	// obsPeak caches the published high-water mark so the per-cycle check
	// is a plain compare, not an atomic; obsLocal and the histogram
	// shadows buffer the hot counters between decimated flushes.
	obs          *Observer
	obsPeak      int64
	obsLocal     obsTally
	obsCutLat    *obs.HistShadow
	obsInitDelay *obs.HistShadow

	// Hot-path recycling. reasmFree and cellFree pool the reassembly
	// records and the reassembled ("observed") cells deliver builds;
	// records return to the pool as soon as their departure is booked,
	// observed cells only under recycle mode (SetDrainRecycle), where
	// Drain double-buffers its backing array (done/doneOut) and reclaims
	// the previously handed-out batch. cOffered…cDropOverrun are hot
	// counter slots (stats.Counter.Hot) bumped without a map lookup.
	reasmFree []*reasm
	cellFree  []*cell.Cell
	doneOut   []Departure
	recycle   bool
	// pendingWrites counts input rows holding a cell whose write wave has
	// not been initiated (active && !written): pickWrite skips its scan
	// when zero.
	pendingWrites                                           int
	cOffered, cAccepted, cDelivered, cCorrupt, cDropOverrun *int64
	cDropPolicy, cDropPushout                               *int64

	// gate, when set, must return true for a transmission to start on an
	// output (credit-based flow control); vcGate refines it per virtual
	// channel; onTransmit, when set, is called once per transmission
	// booked.
	gate       func(out int) bool
	vcGate     func(out, vc int) bool
	onTransmit func(out int)
	// onTransmitCell, when set, receives the departing cell and the wave
	// initiation cycle; the multistage fabric uses it to chain
	// cut-through across switches.
	onTransmitCell func(out int, c *cell.Cell, startCycle int64)

	// Fault-tolerance state (defense layers; see degrade.go). eccMem holds
	// the per-word SEC-DED check bits when Config.ECC is on. stuck marks
	// banks with an injected stuck-at fault. stageErr tallies uncorrectable
	// errors per bank; stageDown marks banks mapped out by bypass. Once a
	// bypass halves the buffer, addrLimit is the usable address count and
	// the upper half of every healthy bank is the redirect region for its
	// mapped-out partner. lastInit spaces initiations while degraded.
	eccMem    [][]uint8
	stuck     []bool
	stageErr  []int
	stageDown []bool
	halved    bool
	failed    bool
	addrLimit int
	lastInit  int64
	// writeStartAt[addr] is the initiation cycle of the write wave that
	// last allocated addr; fault engines use it (AddrStable) to target
	// only fully deposited words.
	writeStartAt []int64

	// inDelay is the §4.3 link-pipelining delay line: slot c%R holds the
	// heads that entered the switch boundary R cycles ago and reach the
	// input registers this cycle. delayCount tracks cells in flight on
	// the pipelined wires for conservation accounting.
	inDelay      [][]*cell.Cell
	delayScratch []*cell.Cell // reused heads vector for the delayed wave
	delayCount   int
	counter      stats.Counter
	// auditScratch is the per-bank claim table AuditInvariants reuses so
	// online audits stay allocation-free.
	auditScratch []int
	// initDelay accumulates §3.4's staggered-initiation delay.
	initDelay stats.Mean
	// cutLatency is head-in to head-out in cycles.
	cutLatency *stats.Hist
}

// New builds a switch; the configuration is canonicalized and validated.
func New(cfg Config) (*Switch, error) {
	cfg = cfg.Canonical()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n, k := cfg.Ports, cfg.Stages
	s := &Switch{
		cfg:          cfg,
		n:            n,
		k:            k,
		mem:          make([][]cell.Word, k),
		inReg:        make([][]cell.Word, n),
		outReg:       make([]outWord, k),
		ctrl:         make([]Op, k),
		inflight:     make([]arrival, n),
		free:         fifo.NewFreeList(cfg.Cells),
		queues:       fifo.NewMultiQueue(n*cfg.VCs, cfg.Cells*n),
		nodes:        make([]desc, cfg.Cells*n),
		nfree:        fifo.NewFreeList(cfg.Cells * n),
		refcnt:       make([]int, cfg.Cells),
		outOcc:       make([]int, n),
		wrSkip:       make([]int64, n),
		inStalls:     make([]int64, n),
		inDrops:      make([]int64, n),
		outDrops:     make([]int64, n),
		linkFree:     make([]int64, n),
		vcRR:         make([]int, n),
		egress:       make([]*fifo.Ring[*reasm], n),
		rxHead:       make([]*reasm, n),
		loaded:       make([]int, 0, k),
		cutLatency:   stats.NewHist(4096),
		stageErr:     make([]int, k),
		stageDown:    make([]bool, k),
		addrLimit:    cfg.Cells,
		lastInit:     -2,
		writeStartAt: make([]int64, cfg.Cells),
	}
	for st := range s.mem {
		s.mem[st] = make([]cell.Word, cfg.Cells)
	}
	if cfg.ECC {
		s.eccMem = make([][]uint8, k)
		for st := range s.eccMem {
			s.eccMem[st] = make([]uint8, cfg.Cells)
		}
	}
	for i := range s.inReg {
		s.inReg[i] = make([]cell.Word, k)
	}
	for o := range s.egress {
		s.egress[o] = fifo.NewRing[*reasm](0)
	}
	s.cOffered = s.counter.Hot("offered")
	s.cAccepted = s.counter.Hot("accepted")
	s.cDelivered = s.counter.Hot("delivered")
	s.cCorrupt = s.counter.Hot("corrupt")
	s.cDropOverrun = s.counter.Hot("drop-overrun")
	s.cDropPolicy = s.counter.Hot("drop-policy")
	s.cDropPushout = s.counter.Hot("drop-pushout")
	s.polState = &bufView{s}
	return s, nil
}

// Config returns the effective configuration.
func (s *Switch) Config() Config { return s.cfg }

// ctrlSlot returns the ring index of the control word stage st executes
// at cycle c (the wave initiated at cycle c-st).
func (s *Switch) ctrlSlot(c int64, st int) int {
	i := int((c - int64(st)) % int64(s.k))
	if i < 0 {
		i += s.k
	}
	return i
}

// qidx maps an (output, vc) pair to its descriptor-queue index.
func (s *Switch) qidx(out, vc int) int { return out*s.cfg.VCs + vc }

// QueuedFor returns the number of cells queued for an output across all
// of its virtual channels. O(1): the per-output occupancy is maintained
// at every queue mutation, since admission policies consult it on each
// arrival.
func (s *Switch) QueuedFor(out int) int { return s.outOcc[out] }

// Cycle returns the current cycle number (number of Ticks so far).
func (s *Switch) Cycle() int64 { return s.cycle }

// Buffered returns the number of cells currently held in the buffer
// (written or being written, not yet claimed by a read wave).
func (s *Switch) Buffered() int { return s.queues.Total() }

// FreeCells returns the number of unallocated buffer addresses.
func (s *Switch) FreeCells() int { return s.free.Free() }

// Counters exposes the event counters: "offered", "accepted", "delivered",
// "drop-overrun" (a new head displaced a cell whose write wave never got
// a buffer address), "drop-policy" (an arrival refused by the installed
// buffer-management policy), "drop-pushout" (a queued copy preempted to
// make room), "corrupt" (integrity violations; must stay zero).
func (s *Switch) Counters() *stats.Counter { return &s.counter }

// InitDelay returns the accumulated staggered-initiation delay statistics
// (§3.4): cycles a write wave waited beyond head+1 for the stage-0 slot.
func (s *Switch) InitDelay() *stats.Mean { return &s.initDelay }

// CutLatency returns the head-in→head-out latency histogram in cycles.
func (s *Switch) CutLatency() *stats.Hist { return s.cutLatency }

// SetTracer installs a per-cycle trace callback (nil to disable); see
// TraceEvent.
func (s *Switch) SetTracer(f func(TraceEvent)) { s.tracer = f }

// SetOutputGate installs a side-effect-free admission predicate consulted
// before any transmission is initiated on an output link. Telegraphos
// uses it for its credit-based flow control ([KVES95]): an output with no
// credits is skipped by read arbitration and by the cut-through upgrade,
// and its cells wait in the shared buffer.
func (s *Switch) SetOutputGate(gate func(out int) bool) { s.gate = gate }

// SetVCGate installs a per-(output, VC) admission predicate — the
// [KVES95] VC-level flow control. A VC whose gate is closed keeps its
// cells queued without blocking the output's other VCs.
func (s *Switch) SetVCGate(gate func(out, vc int) bool) { s.vcGate = gate }

// SetVCWeights installs weighted round-robin service among output out's
// virtual channels — the cell-multiplexing discipline of the authors'
// earlier ATM switch chip [KaSC91]. weights must have one positive entry
// per VC; under backlog, VC i receives weights[i] transmissions per WRR
// frame. Passing nil restores plain round-robin.
func (s *Switch) SetVCWeights(out int, weights []int) error {
	if out < 0 || out >= s.n {
		return fmt.Errorf("%w: VC weights for output %d of an %d-port switch", ErrBadConfig, out, s.n)
	}
	if weights == nil {
		if s.vcWeights != nil {
			s.vcWeights[out] = nil
			s.vcTokens[out] = nil
		}
		return nil
	}
	if len(weights) != s.cfg.VCs {
		return fmt.Errorf("core: %d weights for %d VCs", len(weights), s.cfg.VCs)
	}
	for vc, w := range weights {
		if w < 1 {
			return fmt.Errorf("core: weight %d for VC %d, need ≥ 1", w, vc)
		}
	}
	if s.vcWeights == nil {
		s.vcWeights = make([][]int, s.n)
		s.vcTokens = make([][]int, s.n)
	}
	s.vcWeights[out] = append([]int(nil), weights...)
	s.vcTokens[out] = append([]int(nil), weights...)
	return nil
}

// pickVC selects which of output o's VCs to serve, honouring WRR weights
// when configured and plain round-robin otherwise. eligible reports
// whether a VC has a serviceable head (backlog, open gate, SF-ready).
// It returns the chosen VC or -1.
func (s *Switch) pickVC(o int, eligible func(vc int) bool) int {
	if s.vcWeights == nil || s.vcWeights[o] == nil {
		for jv := 0; jv < s.cfg.VCs; jv++ {
			vc := (s.vcRR[o] + jv) % s.cfg.VCs
			if eligible(vc) {
				s.vcRR[o] = (vc + 1) % s.cfg.VCs
				return vc
			}
		}
		return -1
	}
	// WRR: serve an eligible VC that still has tokens this frame; when
	// every eligible VC has exhausted its tokens, start a new frame.
	tokens := s.vcTokens[o]
	for pass := 0; pass < 2; pass++ {
		for jv := 0; jv < s.cfg.VCs; jv++ {
			vc := (s.vcRR[o] + jv) % s.cfg.VCs
			if tokens[vc] > 0 && eligible(vc) {
				tokens[vc]--
				if tokens[vc] == 0 {
					s.vcRR[o] = (vc + 1) % s.cfg.VCs
				}
				return vc
			}
		}
		if pass == 0 {
			// Refill the frame only if some eligible VC exists at all.
			any := false
			for vc := 0; vc < s.cfg.VCs; vc++ {
				if eligible(vc) {
					any = true
					break
				}
			}
			if !any {
				return -1
			}
			copy(tokens, s.vcWeights[o])
		}
	}
	return -1
}

// SetTransmitHook installs a callback invoked exactly once per
// transmission booked on an output (credit consumption).
func (s *Switch) SetTransmitHook(f func(out int)) { s.onTransmit = f }

// SetTransmitCellHook installs a callback invoked when a transmission is
// booked, carrying the departing cell and the wave-initiation cycle (the
// head word is on the outgoing link at startCycle+1). The multistage
// fabric uses it to start the downstream switch's arrival wave while the
// tail is still crossing this switch — cut-through chained across hops.
func (s *Switch) SetTransmitCellHook(f func(out int, c *cell.Cell, startCycle int64)) {
	s.onTransmitCell = f
}

// Drain returns the departures completed since the last call.
//
// By default every call hands ownership of a freshly allocated slice (and
// freshly reassembled Cells) to the caller. Under recycle mode
// (SetDrainRecycle) the returned slice and the Departure.Cell values it
// references are valid only until the next Drain call: the switch then
// reclaims both the backing array and the reassembled cells, making
// steady-state operation allocation-free. Departure.Expected — the cell
// the caller injected — is never touched by the switch.
func (s *Switch) Drain() []Departure {
	if !s.recycle {
		d := s.done
		s.done = nil
		return d
	}
	// Reclaim the batch handed out by the previous call: the caller's
	// access window has closed, so its reassembled cells and backing
	// array become this cycle's spares.
	for i := range s.doneOut {
		if c := s.doneOut[i].Cell; c != nil {
			s.cellFree = append(s.cellFree, c)
		}
		s.doneOut[i] = Departure{}
	}
	out := s.done
	s.done = s.doneOut[:0]
	s.doneOut = out
	return out
}

// SetDrainRecycle switches Drain between allocate-per-batch (off, the
// default) and double-buffered recycling (on); see Drain for the
// ownership contract. RunTraffic and the benchmark drivers enable it;
// callers that retain departures across Drain calls must leave it off.
func (s *Switch) SetDrainRecycle(on bool) {
	s.recycle = on
	if !on {
		s.doneOut = nil
	}
}

// getReasm takes a reassembly record from the pool (or allocates one).
func (s *Switch) getReasm() *reasm {
	if n := len(s.reasmFree); n > 0 {
		r := s.reasmFree[n-1]
		s.reasmFree[n-1] = nil
		s.reasmFree = s.reasmFree[:n-1]
		return r
	}
	return &reasm{words: make([]cell.Word, 0, s.k)}
}

// getCell takes a reassembled-cell shell from the pool (or allocates
// one). The caller overwrites every field.
func (s *Switch) getCell() *cell.Cell {
	if n := len(s.cellFree); n > 0 {
		c := s.cellFree[n-1]
		s.cellFree[n-1] = nil
		s.cellFree = s.cellFree[:n-1]
		return c
	}
	return &cell.Cell{Words: make([]cell.Word, 0, s.k)}
}

// Tick advances the switch one clock cycle. heads[i], when non-nil, is a
// cell whose head word arrives at input i in this cycle; it must be
// exactly K words long and the input link must not be mid-cell (the link
// carries one word per cycle, so heads may be at most K cycles apart).
// heads may be nil when no cell arrives anywhere.
func (s *Switch) Tick(heads []*cell.Cell) {
	c := s.cycle

	// §4.3 link pipelining: heads spend LinkPipeline cycles crossing the
	// pipelined input wires before reaching the input registers. The
	// delay line is transparent to all switch logic below. Slot storage
	// and the delayed-heads vector are preallocated and swapped in place.
	if r := s.cfg.LinkPipeline; r > 0 {
		if s.inDelay == nil {
			s.inDelay = make([][]*cell.Cell, r)
			for i := range s.inDelay {
				s.inDelay[i] = make([]*cell.Cell, s.n)
			}
			s.delayScratch = make([]*cell.Cell, s.n)
		}
		slot := s.inDelay[c%int64(r)]
		for i := 0; i < s.n; i++ {
			var h *cell.Cell
			if heads != nil {
				h = heads[i]
			}
			slot[i], h = h, slot[i] // store entering, extract R-cycle-old
			if slot[i] != nil {
				s.delayCount++
			}
			if h != nil {
				s.delayCount--
			}
			s.delayScratch[i] = h
		}
		heads = s.delayScratch
	}

	// Phase 1 — egress: output registers loaded in the previous cycle
	// drive their outgoing links now ("in the next cycle, this register
	// drives the desired outgoing link", §3.2).
	if s.tracer != nil {
		if s.driveScratch == nil {
			s.driveScratch = make([]int, s.k)
		}
		for st := range s.driveScratch {
			s.driveScratch[st] = -1
		}
	}
	// s.loaded lists exactly the stages whose output register was loaded
	// last cycle; every one of them drives its link now. The word lands in
	// the cached reassembly record; the k-th word completes a departure.
	for _, st := range s.loaded {
		rg := &s.outReg[st]
		o := rg.out
		r := s.rxHead[o]
		if r == nil {
			panic(fmt.Sprintf("core: word on output %d with no departure in flight", o))
		}
		if len(r.words) == 0 {
			r.start = c
		}
		r.words = append(r.words, rg.word)
		if len(r.words) >= s.k {
			s.finishDeparture(o, r, c)
		}
		if s.driveScratch != nil {
			s.driveScratch[st] = o
		}
		rg.valid = false
	}
	s.loaded = s.loaded[:0]

	// Phase 2 — arbitration: choose at most one new wave for stage M0.
	// The slot being claimed last held the wave initiated k cycles ago,
	// which completed its stage-(k-1) operation in the previous cycle.
	base := int(c % int64(s.k))
	s.ctrl[base] = s.arbitrate(c)

	// Per-input backpressure accounting: every arrival still waiting for
	// its write wave after arbitration waited one more cycle. This is what
	// makes buffer exhaustion visible per port instead of a silent retry
	// (the aggregate §3.4 stall signal lives in observeCycle).
	if s.pendingWrites > 0 {
		for i := range s.inflight {
			if a := &s.inflight[i]; a.active && !a.written && c > a.head {
				s.inStalls[i]++
			}
		}
	}

	if s.obs != nil {
		s.observeCycle(c, s.ctrl[base])
	}
	if s.tracer != nil {
		s.emitTrace(c, heads)
	}

	// Phases 3+4 — execute: stage st performs the op of the wave initiated
	// at cycle c-st ("stage s+1 repeats stage s's operation next cycle",
	// §3.3); the ring indexing replaces the per-stage control-word shift.
	// Reads and writes go through the fault-tolerance layer (degrade.go)
	// only when it can act — ECC armed, a stuck-at fault injected, or a
	// bypass active — and hit the RAM directly otherwise. A write-through
	// taps the data bus directly, so the RAM plays no part in the
	// departing word (§3.3).
	fastMem := s.eccMem == nil && s.stuck == nil && !s.halved
	idx := base
	for st := 0; st < s.k; st++ {
		op := s.ctrl[idx]
		if idx--; idx < 0 {
			idx = s.k - 1
		}
		switch op.Kind {
		case OpWrite:
			if fastMem {
				s.mem[st][op.Addr] = s.inReg[op.In][st]
			} else {
				s.writeWord(st, op.Addr, op.Remap, s.inReg[op.In][st])
			}
		case OpRead:
			var w cell.Word
			if fastMem {
				w = s.mem[st][op.Addr]
			} else {
				w = s.readWord(st, op.Addr, op.Remap)
			}
			s.outReg[st] = outWord{word: w, out: op.Out, loadedAt: c, valid: true}
			s.loaded = append(s.loaded, st)
		case OpWriteThrough:
			w := s.inReg[op.In][st]
			if fastMem {
				s.mem[st][op.Addr] = w
			} else {
				s.writeWord(st, op.Addr, op.Remap, w)
			}
			s.outReg[st] = outWord{word: w, out: op.Out, loadedAt: c, valid: true}
			s.loaded = append(s.loaded, st)
		}
	}

	// Phase 5 — ingress: arriving words are latched into the input
	// registers at the end of the cycle.
	for i := 0; i < s.n; i++ {
		a := &s.inflight[i]
		if a.active {
			if j := c - a.head; j > 0 && j < int64(s.k) {
				s.inReg[i][j] = a.c.Words[j].Mask(s.cfg.WordBits)
			}
		}
		if heads == nil || heads[i] == nil {
			continue
		}
		nc := heads[i]
		if len(nc.Words) != s.k {
			panic(fmt.Sprintf("core: cell of %d words injected into %d-stage switch", len(nc.Words), s.k))
		}
		if nc.Dst < 0 || nc.Dst >= s.n {
			panic(fmt.Sprintf("core: cell destination %d out of range", nc.Dst))
		}
		if a.active {
			if c-a.head < int64(s.k) {
				panic(fmt.Sprintf("core: head injected mid-cell on input %d (previous head at cycle %d, now %d)", i, a.head, c))
			}
			if !a.written {
				// The previous cell never obtained a write wave (buffer
				// exhausted for its whole residency): its words are now
				// being overwritten and it is lost.
				*s.cDropOverrun++
				s.pendingWrites--
				s.inDrops[i]++
				s.outDrops[a.c.Dst]++
				if s.obs != nil {
					s.obs.DropOverrun.Inc()
				}
			}
		}
		s.pendingWrites++
		*s.cOffered++
		nc.Enqueue = c
		*a = arrival{c: nc, head: c, active: true}
		s.inReg[i][0] = nc.Words[0].Mask(s.cfg.WordBits)
	}

	// Faulty-stage bypass: a bank that has accumulated BypassThreshold
	// uncorrectable ECC errors is mapped out at the end of the cycle,
	// outside the execute phase (degrade.go).
	if t := s.cfg.BypassThreshold; t > 0 {
		for b := 0; b < s.k; b++ {
			if !s.stageDown[b] && s.stageErr[b] >= t {
				s.mapOutBank(b)
			}
		}
	}

	s.cycle++
}

// arbitrate picks this cycle's stage-0 operation, enforcing the degraded
// initiation cadence while a stage bypass is active: a mapped-out stage
// doubles the load on its partner bank's single port, so waves initiated on
// consecutive cycles could collide there. Spacing initiations two cycles
// apart makes every remapped schedule conflict-free again (the §3.4 slot
// argument at half rate).
func (s *Switch) arbitrate(c int64) Op {
	if s.halved && c-s.lastInit < 2 {
		return Op{}
	}
	// Reads first (outgoing links must not idle), then the most urgent
	// pending write, upgraded to a write-through when cut-through applies;
	// NoReadPriority flips the order.
	var op Op
	var ok bool
	if !s.cfg.NoReadPriority {
		if op, ok = s.pickRead(c); !ok {
			op, ok = s.pickWrite(c)
		}
	} else {
		if op, ok = s.pickWrite(c); !ok {
			op, ok = s.pickRead(c)
		}
	}
	if ok {
		s.lastInit = c
		op.Remap = s.halved
	}
	return op
}

// pickRead selects an idle outgoing link with an eligible head-of-queue
// cell, round-robin.
func (s *Switch) pickRead(c int64) (Op, bool) {
	if s.queues.Total() == 0 {
		// Nothing buffered anywhere: no read wave can be initiated. (With
		// cut-through under admissible load this is the common case — most
		// cells depart via write-through and never touch the queues.)
		return Op{}, false
	}
	for j, o := 0, s.readRR; j < s.n; j, o = j+1, o+1 {
		if o >= s.n {
			o -= s.n
		}
		if s.linkFree[o] > c {
			continue
		}
		if s.gate != nil && !s.gate(o) {
			continue
		}
		// Single-VC fast path: with one virtual channel, no VC gate and
		// no WRR weights, the only candidate is the output's front
		// descriptor — skip the pickVC machinery.
		if s.cfg.VCs == 1 && s.vcGate == nil && (s.vcWeights == nil || s.vcWeights[o] == nil) {
			node, ok := s.queues.Front(o) // qidx(o, 0) == o
			if !ok {
				continue
			}
			d := &s.nodes[node]
			if !s.cfg.CutThrough && c < d.writeStart+int64(s.k) {
				continue
			}
			s.queues.Pop(o)
			s.outOcc[o]--
			s.readRR = (o + 1) % s.n
			s.startTransmit(o, d, c)
			addr := d.addr
			s.nfree.Put(node)
			s.refcnt[addr]--
			if s.refcnt[addr] == 0 {
				s.free.Put(addr)
			}
			return Op{Kind: OpRead, Out: o, Addr: addr}, true
		}
		// Serve the output's virtual channels round-robin (or WRR when
		// weights are configured, [KaSC91]): a VC with a closed gate or
		// an ineligible head does not block the link's other VCs.
		eligible := func(vc int) bool {
			if s.vcGate != nil && !s.vcGate(o, vc) {
				return false
			}
			node, ok := s.queues.Front(s.qidx(o, vc))
			if !ok {
				return false
			}
			d := &s.nodes[node]
			// Store-and-forward: wait until the write wave has fully
			// deposited the cell.
			return s.cfg.CutThrough || c >= d.writeStart+int64(s.k)
		}
		vc := s.pickVC(o, eligible)
		if vc >= 0 {
			q := s.qidx(o, vc)
			node, _ := s.queues.Pop(q)
			s.outOcc[o]--
			d := &s.nodes[node]
			s.readRR = (o + 1) % s.n
			s.startTransmit(o, d, c)
			addr := d.addr
			s.nfree.Put(node)
			// The address is reusable once its last queued copy has
			// claimed its read wave: any later write wave trails this
			// read wave stage by stage.
			s.refcnt[addr]--
			if s.refcnt[addr] == 0 {
				s.free.Put(addr)
			}
			return Op{Kind: OpRead, Out: o, Addr: addr}, true
		}
	}
	return Op{}, false
}

// pickWrite selects the pending arrival with the earliest head cycle
// (earliest deadline first), tie-broken round-robin, and submits it to
// the buffer-management policy (bufmgr) when one is installed. A Drop
// verdict consumes the arrival and the scan moves to the next-most-
// urgent one in the same cycle; a PushOut verdict evicts the victim's
// head first; an Accept with no free address leaves the arrival pending
// (backpressure) and — with a policy installed — also tries the
// remaining arrivals, since one of them may be admittable by push-out.
func (s *Switch) pickWrite(c int64) (Op, bool) {
	if s.pendingWrites == 0 {
		return Op{}, false
	}
retry:
	best := -1
	var bestHead int64
	for j, i := 0, s.writeRR; j < s.n; j, i = j+1, i+1 {
		if i >= s.n {
			i -= s.n
		}
		a := &s.inflight[i]
		if !a.active || a.written || c <= a.head || s.wrSkip[i] > c {
			continue // no pending cell, or its head arrived only this cycle
		}
		if best == -1 || a.head < bestHead {
			best, bestHead = i, a.head
		}
	}
	if best == -1 {
		return Op{}, false
	}
	a := &s.inflight[best]
	if s.policy != nil {
		switch v := s.policy.Admit(s.polState, a.c.Dst, a.c.VC); v.Action {
		case bufmgr.Drop:
			s.dropPolicy(best, a)
			goto retry // the freed slot may admit the next arrival now
		case bufmgr.PushOut:
			s.pushOut(v.VictimOut, v.VictimVC)
		}
	}
	addr, ok := s.free.Get()
	if !ok {
		// Buffer exhausted: the cell stays pending and retries; if it is
		// still unwritten when the next head arrives it is dropped
		// (phase 5). With a policy installed, a less urgent arrival may
		// still get in this cycle (its verdict could push a victim out),
		// so mark this one tried and rescan.
		if s.policy != nil {
			s.wrSkip[best] = c + 1
			goto retry
		}
		return Op{}, false
	}
	a.written = true
	s.pendingWrites--
	s.writeStartAt[addr] = c
	*s.cAccepted++
	s.initDelay.Add(float64(c - a.head - 1))
	s.obsInitDelay.Observe(c - a.head - 1)
	s.writeRR = (best + 1) % s.n
	vc := a.c.VC
	if vc < 0 || vc >= s.cfg.VCs {
		panic(fmt.Sprintf("core: cell VC %d out of configured %d channels", vc, s.cfg.VCs))
	}
	d := desc{c: a.c, head: a.head, writeStart: c, vc: vc, addr: addr}
	dst := a.c.Dst

	// Automatic cut-through, same-cycle variant (unicast only): if the
	// destination link is idle and no cell is queued ahead on any of its
	// VCs, the write wave doubles as the read wave (§3.3).
	if s.cfg.CutThrough && len(a.c.Copies) == 0 &&
		s.linkFree[dst] <= c && s.QueuedFor(dst) == 0 &&
		(s.gate == nil || s.gate(dst)) &&
		(s.vcGate == nil || s.vcGate(dst, vc)) {
		s.startTransmit(dst, &d, c)
		s.free.Put(addr)
		return Op{Kind: OpWriteThrough, In: best, Out: dst, Addr: addr}, true
	}

	// Enqueue one descriptor per destination; the payload is stored once
	// (multicast economy of the shared buffer). Unicast cells — the hot
	// case — take the single-destination path with no scratch slice.
	enqueue := func(o int) {
		if o < 0 || o >= s.n {
			panic(fmt.Sprintf("core: multicast copy to output %d out of range", o))
		}
		node, ok := s.nfree.Get()
		if !ok {
			panic("core: descriptor-node pool exhausted (impossible: sized cells×ports)")
		}
		s.nodes[node] = d
		s.queues.Push(s.qidx(o, vc), node)
		s.outOcc[o]++
	}
	s.refcnt[addr] = 1 + len(a.c.Copies)
	enqueue(dst)
	for _, o := range a.c.Copies {
		enqueue(o)
	}
	return Op{Kind: OpWrite, In: best, Addr: addr}, true
}

// startTransmit books the outgoing link for the K-cycle transmission that
// follows a read (or write-through) wave initiated at cycle c, and sets up
// reassembly of the departing cell.
func (s *Switch) startTransmit(o int, d *desc, c int64) {
	s.linkFree[o] = c + int64(s.k)
	r := s.getReasm()
	r.d = *d
	r.words = r.words[:0]
	r.start = 0
	s.egress[o].Push(r)
	if s.egress[o].Len() == 1 {
		s.rxHead[o] = r
	}
	if s.onTransmit != nil {
		s.onTransmit(o)
	}
	if s.onTransmitCell != nil {
		s.onTransmitCell(o, d.c, c)
	}
}

// finishDeparture books the departure whose last word was observed on
// outgoing link o at cycle c; r is the output's reassembly record, now
// holding all K words.
func (s *Switch) finishDeparture(o int, r *reasm, c int64) {
	s.egress[o].Pop()
	if next, ok := s.egress[o].Front(); ok {
		s.rxHead[o] = next
	} else {
		s.rxHead[o] = nil
	}
	// The observed cell swaps its word buffer with the record's (both stay
	// at capacity K) so the record can return to the pool immediately; the
	// cell itself is reclaimed by the next Drain under recycle mode.
	got := s.getCell()
	got.Seq, got.Src, got.Dst, got.VC = r.d.c.Seq, r.d.c.Src, r.d.c.Dst, r.d.c.VC
	got.Copies = nil
	got.Enqueue = r.d.head
	got.Words, r.words = r.words, got.Words[:0]
	// With §4.3 link pipelining, timestamps are reported at the switch
	// boundary: the head entered LinkPipeline cycles before it reached
	// the input registers and leaves LinkPipeline cycles after the
	// output register row drives it.
	lp := int64(s.cfg.LinkPipeline)
	dep := Departure{
		Cell:      got,
		Expected:  r.d.c,
		Output:    o,
		HeadIn:    r.d.head - lp,
		HeadOut:   r.start + lp,
		TailOut:   c + lp,
		InitDelay: r.d.writeStart - r.d.head - 1,
		VC:        r.d.vc,
	}
	*s.cDelivered++
	if !got.Equal(r.d.c) {
		*s.cCorrupt++
	}
	lat := dep.HeadOut - dep.HeadIn
	s.cutLatency.Add(lat)
	if o := s.obs; o != nil {
		s.obsLocal.delivered++
		s.obsCutLat.Observe(lat)
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.EvWaveEnd, Cycle: c, In: -1, Out: int32(dep.Output), Addr: -1, V: lat})
		}
	}
	s.done = append(s.done, dep)
	s.reasmFree = append(s.reasmFree, r)
}
