package core

import (
	"fmt"
	"math/bits"
	"time"

	"pipemem/internal/bufmgr"
	"pipemem/internal/cell"
	"pipemem/internal/fifo"
	"pipemem/internal/obs"
	"pipemem/internal/stats"
)

// OpKind is the operation a memory stage performs in a cycle.
type OpKind uint8

const (
	// OpNone: the stage is idle this cycle.
	OpNone OpKind = iota
	// OpWrite: the stage writes its link's input register into the RAM.
	OpWrite
	// OpRead: the stage reads the RAM into its output register.
	OpRead
	// OpWriteThrough: the stage writes the RAM and simultaneously taps
	// the data bus into its output register — the same-cycle cut-through
	// of §3.3 ("in the same or in any subsequent cycle, this word can
	// also be loaded … into the leftmost output buffer register").
	OpWriteThrough
)

// String implements fmt.Stringer (single letters, fig. 5 style).
func (k OpKind) String() string {
	switch k {
	case OpNone:
		return "-"
	case OpWrite:
		return "W"
	case OpRead:
		return "R"
	case OpWriteThrough:
		return "T"
	default:
		return "?"
	}
}

// Op is one control word of the pipelined control path (fig. 5): the
// operation stage M0 performs this cycle, which subsequent stages repeat
// in subsequent cycles.
type Op struct {
	Kind OpKind
	// In is the incoming link whose input register row supplies the data
	// (OpWrite, OpWriteThrough).
	In int
	// Out is the outgoing link the data is destined for (OpRead,
	// OpWriteThrough).
	Out int
	// Addr is the buffer address used by every stage of the wave.
	Addr int
	// Remap marks a wave initiated while a stage bypass is active: every
	// stage of the wave resolves mapped-out banks through the redirect
	// table (degrade.go). The flag is frozen at initiation so a wave that
	// was in flight when a bypass tripped keeps its original bank schedule
	// to completion.
	Remap bool
}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o.Kind {
	case OpNone:
		return "-"
	case OpWrite:
		return fmt.Sprintf("W(in%d,a%d)", o.In, o.Addr)
	case OpRead:
		return fmt.Sprintf("R(out%d,a%d)", o.Out, o.Addr)
	case OpWriteThrough:
		return fmt.Sprintf("T(in%d,out%d,a%d)", o.In, o.Out, o.Addr)
	default:
		return "?"
	}
}

// outWord is one register of the shared output register row.
type outWord struct {
	word     cell.Word
	out      int
	loadedAt int64
	valid    bool
}

// arrival tracks a cell currently occupying an input register row. It is
// stored by value in a per-input slice (no per-cell allocation); active
// marks rows that have held a cell at all.
type arrival struct {
	c    *cell.Cell
	head int64 // cycle the head word was latched
	// written reports that the cell's write wave has been initiated.
	written bool
	active  bool
}

// desc is a buffered cell's descriptor: what the address-management
// circuitry of §3.3 keeps per queued copy of a stored cell. Unicast cells
// have one descriptor; multicast cells have one per destination, all
// sharing one buffer address (refcnt tracks the copies).
type desc struct {
	c          *cell.Cell
	head       int64
	writeStart int64
	vc         int
	addr       int
}

// Departure reports one cell leaving the switch, fully reassembled from
// the simulated wire.
type Departure struct {
	// Cell is the payload observed on the outgoing link.
	Cell *cell.Cell
	// Expected is the cell as injected; integrity demands Cell equals it.
	Expected *cell.Cell
	// Output is the outgoing link.
	Output int
	// HeadIn is the cycle the head word arrived at the switch; HeadOut
	// and TailOut are the cycles the head and tail words left on the
	// outgoing link. HeadOut-HeadIn is the cut-through latency.
	HeadIn, HeadOut, TailOut int64
	// InitDelay is the number of cycles the cell's write wave waited for
	// the stage-0 initiation slot beyond the earliest possible cycle
	// (head+1): the quantity bounded by §3.4.
	InitDelay int64
	// VC is the virtual channel the cell traveled on (0 without VCs).
	VC int
}

// reasm is the per-output reassembly state for departures in flight. The
// descriptor is embedded by value and the word buffer is recycled through
// the owning switch's pool, so steady-state transmission allocates
// nothing.
type reasm struct {
	d     desc
	words []cell.Word
	start int64 // cycle of head word on the link
	// clean records that words were materialized directly from d.c's own
	// payload with no out-of-width bit dropped, so the departing cell is
	// equal to the expected one by construction and the corruption
	// compare can be skipped. Only the batched commit sets it.
	clean bool
}

// departSlot is one entry of the departure-completion ring: the egress
// reassembly record (already holding all K words under the batched fast
// path) and the output link it completes on.
type departSlot struct {
	r   *reasm
	out int
}

// Switch is the cycle-accurate pipelined memory shared buffer switch.
// Construct with New; advance with Tick; collect departures with Drain.
type Switch struct {
	cfg  Config
	n, k int

	cycle int64

	// mem is the shared buffer in structure-of-arrays form: one flat word
	// slice laid out address-major (index addr*k+st), so the k words of a
	// wave occupy one contiguous run the batched fast path can copy with a
	// single sweep. memIdx resolves the (stage, address) view the per-stage
	// exact path and the fault layer use.
	mem []cell.Word
	// memLazy defers the bank deposit of unicast write waves on the
	// batched fast path: the address's single pending read serves its k
	// words straight from the still-resident cell, so the payload crosses
	// memory once instead of twice. Every consumer that reads the array
	// directly (snapshot, fault injection, exact-mode hand-over) calls
	// materializeLazy first. lazyCount tracks live entries so those cold
	// seams skip the scan when nothing is deferred.
	memLazy   []*cell.Cell // [address]
	lazyCount int
	inReg     [][]cell.Word // [input][stage]
	outReg    []outWord     // [stage]
	// ctrl is the pipelined control path stored as a ring indexed by wave
	// initiation cycle: slot c0%k holds the op initiated at cycle c0, and
	// stage st executes slot (c-st)%k at cycle c. This is the same
	// "stage s+1 repeats stage s's operation next cycle" schedule of §3.3
	// without physically shifting a control word per stage per cycle.
	// ctrlAt resolves the stage view.
	ctrl []Op // [initiation cycle % k]

	inflight []arrival // per input

	free   *fifo.FreeList
	queues *fifo.MultiQueue // per (output, VC), of descriptor nodes
	nodes  []desc           // descriptor-node pool
	nfree  *fifo.FreeList   // free descriptor nodes
	refcnt []int            // per address: queued copies not yet read
	outOcc []int            // per output: queued cells across its VCs (O(1) QueuedFor)

	// policy is the optional shared-buffer admission policy (bufmgr);
	// polState is the pre-boxed State adapter handed to every Admit call
	// so consulting the policy allocates nothing. wrSkip[i] = cycle+1
	// marks input i's arrival as not admittable this cycle (Accept
	// verdict with no free address), so pickWrite's retry loop moves on
	// to the next-most-urgent arrival instead of rescanning it.
	policy   bufmgr.Policy
	polState *bufView
	wrSkip   []int64
	// inStalls[i] counts cycles input i held a cell still waiting for its
	// write wave (per-input backpressure visibility); inDrops[i] and
	// outDrops[o] count lost cells by arrival input and by destination
	// output across all loss modes.
	inStalls, inDrops, outDrops []int64

	linkFree []int64 // per output: first cycle a new read may be initiated
	readRR   int     // round-robin pointer over outputs
	vcRR     []int   // per output: round-robin pointer over its VC queues
	// vcWeights/vcTokens implement weighted round-robin service among an
	// output's VCs ([KaSC91], the authors' earlier WRR cell multiplexing
	// chip); nil weights mean plain round-robin.
	vcWeights [][]int
	vcTokens  [][]int
	writeRR   int // tie-break pointer over inputs (EDF first)

	egress       []*fifo.Ring[*reasm] // per output: cells being transmitted
	rxHead       []*reasm             // per output: cached egress front
	loaded       []int                // stages whose outReg was loaded this cycle
	done         []Departure
	tracer       func(TraceEvent)
	driveScratch []int // per stage: output link driven this cycle (trace)
	// obs is the observability layer (observe.go): nil — the default —
	// costs one pointer test per Tick and keeps the hot path 0 allocs/op.
	// obsPeak caches the published high-water mark so the per-cycle check
	// is a plain compare, not an atomic; obsLocal and the histogram
	// shadows buffer the hot counters between decimated flushes.
	obs          *Observer
	obsPeak      int64
	obsLocal     obsTally
	obsCutLat    *obs.HistShadow
	obsInitDelay *obs.HistShadow
	// prof is the optional arbitration phase profile (profile.go): nil —
	// the default — costs one pointer test per arbitrate call.
	prof *PhaseProf

	// Hot-path recycling. reasmFree and cellFree pool the reassembly
	// records and the reassembled ("observed") cells deliver builds;
	// records return to the pool as soon as their departure is booked,
	// observed cells only under recycle mode (SetDrainRecycle), where
	// Drain double-buffers its backing array (done/doneOut) and reclaims
	// the previously handed-out batch. cOffered…cDropOverrun are hot
	// counter slots (stats.Counter.Hot) bumped without a map lookup.
	reasmFree []*reasm
	cellFree  []*cell.Cell
	doneOut   []Departure
	recycle   bool
	// leanDepart elides the reassembled observed cell (Departure.Cell is
	// nil), the per-departure corruption compare, and the per-switch
	// cut-latency histogram; see SetLeanDepartures.
	leanDepart bool
	// pendingWrites counts input rows holding a cell whose write wave has
	// not been initiated (active && !written): pickWrite skips its scan
	// when zero.
	pendingWrites                                           int
	cOffered, cAccepted, cDelivered, cCorrupt, cDropOverrun *int64
	cDropPolicy, cDropPushout                               *int64

	// gate, when set, must return true for a transmission to start on an
	// output (credit-based flow control); vcGate refines it per virtual
	// channel; onTransmit, when set, is called once per transmission
	// booked.
	gate       func(out int) bool
	vcGate     func(out, vc int) bool
	onTransmit func(out int)
	// onTransmitCell, when set, receives the departing cell and the wave
	// initiation cycle; the multistage fabric uses it to chain
	// cut-through across switches.
	onTransmitCell func(out int, c *cell.Cell, startCycle int64)
	// onDropCell, when set, receives every cell the switch loses
	// (overrun displacement, policy refusal, push-out eviction), so an
	// outer engine can retire per-cell bookkeeping instead of leaking
	// it. reusable reports that the switch holds no remaining reference
	// of any kind — true only for overrun victims, whose arrival
	// register is overwritten in the same cycle; a policy or push-out
	// victim may still be streaming words into the (now inert) input
	// register for the rest of its cell time.
	onDropCell func(c *cell.Cell, reusable bool)

	// Fault-tolerance state (defense layers; see degrade.go). eccMem holds
	// the per-word SEC-DED check bits when Config.ECC is on. stuck marks
	// banks with an injected stuck-at fault. stageErr tallies uncorrectable
	// errors per bank; stageDown marks banks mapped out by bypass. Once a
	// bypass halves the buffer, addrLimit is the usable address count and
	// the upper half of every healthy bank is the redirect region for its
	// mapped-out partner. lastInit spaces initiations while degraded.
	eccMem    [][]uint8
	stuck     []bool
	stageErr  []int
	stageDown []bool
	halved    bool
	failed    bool
	addrLimit int
	lastInit  int64
	// writeStartAt[addr] is the initiation cycle of the write wave that
	// last allocated addr; fault engines use it (AddrStable) to target
	// only fully deposited words.
	writeStartAt []int64

	// Batched fast path (structure-of-arrays Tick engine). While fastMode
	// is on, every wave's memory traffic is committed in one contiguous
	// sweep at initiation — legal because a cell's words are immutable once
	// injected and wave orderings are stage-uniform (two waves touching one
	// address never interleave out of initiation order) — and its departure
	// is posted to departAt, the cycle-indexed completion ring, instead of
	// being driven word by word through outReg. waveMask has one bit per
	// ctrl slot holding a live op; committed marks slots whose memory
	// traffic was already applied by the batched path, so the per-stage
	// exact loop (which the two paths hand over to when a tracer or the
	// fault layer's per-stage seams arm) skips them. ringOps counts live
	// slots without the k≤64 restriction of the masks; txPending counts
	// departures posted to departAt. forcedExact latches the exact path on
	// once a per-stage fault seam (control/input-register injection, stuck
	// banks) has been exercised. lastTx is the reassembly record pushed by
	// the most recent startTransmit, consumed by commitWave in the same
	// arbitration call chain.
	fastMode    bool
	forcedExact bool
	waveMask    uint64
	committed   uint64
	ringOps     int
	txPending   int
	departAt    []departSlot
	lastTx      *reasm
	// ctrlMask is k-1 when k is a power of two — slotOf then replaces the
	// hardware divide the per-cycle ring indexing would otherwise pay —
	// and -1 otherwise. depMask is len(departAt)-1 (the completion ring is
	// always sized to a power of two ≥ k+1). pendMask holds one bit per
	// input with a cell awaiting its write wave and occMask one bit per
	// output with queued cells; both are maintained alongside their
	// census counters (pendingWrites, outOcc) and let the arbitration
	// scans visit only live candidates when n ≤ 64.
	ctrlMask int
	depMask  int
	pendMask uint64
	occMask  uint64

	// readFloor is a conservative lower bound on the next cycle a read
	// wave could possibly be initiated: the last full pickRead scan found
	// every occupied output's link busy until then. linkFree never moves
	// backward and the occupied set grows only through occInc (which
	// clears the floor), so cycles below the floor skip the scan outright.
	// Zero means "unknown" — never serialized, rebuilt lazily.
	readFloor int64

	// inDelay is the §4.3 link-pipelining delay line: slot c%R holds the
	// heads that entered the switch boundary R cycles ago and reach the
	// input registers this cycle. delayCount tracks cells in flight on
	// the pipelined wires for conservation accounting.
	inDelay      [][]*cell.Cell
	delayScratch []*cell.Cell // reused heads vector for the delayed wave
	delayCount   int
	counter      stats.Counter
	// auditScratch is the per-bank claim table AuditInvariants reuses so
	// online audits stay allocation-free.
	auditScratch []int
	// initDelay accumulates §3.4's staggered-initiation delay.
	initDelay stats.Mean
	// cutLatency is head-in to head-out in cycles.
	cutLatency *stats.Hist
}

// New builds a switch; the configuration is canonicalized and validated.
func New(cfg Config) (*Switch, error) {
	cfg = cfg.Canonical()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n, k := cfg.Ports, cfg.Stages
	s := &Switch{
		cfg:          cfg,
		n:            n,
		k:            k,
		mem:          make([]cell.Word, k*cfg.Cells),
		memLazy:      make([]*cell.Cell, cfg.Cells),
		inReg:        make([][]cell.Word, n),
		outReg:       make([]outWord, k),
		ctrl:         make([]Op, k),
		inflight:     make([]arrival, n),
		free:         fifo.NewFreeList(cfg.Cells),
		queues:       fifo.NewMultiQueue(n*cfg.VCs, cfg.Cells*n),
		nodes:        make([]desc, cfg.Cells*n),
		nfree:        fifo.NewFreeList(cfg.Cells * n),
		refcnt:       make([]int, cfg.Cells),
		outOcc:       make([]int, n),
		wrSkip:       make([]int64, n),
		inStalls:     make([]int64, n),
		inDrops:      make([]int64, n),
		outDrops:     make([]int64, n),
		linkFree:     make([]int64, n),
		vcRR:         make([]int, n),
		egress:       make([]*fifo.Ring[*reasm], n),
		rxHead:       make([]*reasm, n),
		loaded:       make([]int, 0, k),
		cutLatency:   stats.NewHist(4096),
		stageErr:     make([]int, k),
		stageDown:    make([]bool, k),
		addrLimit:    cfg.Cells,
		lastInit:     -2,
		writeStartAt: make([]int64, cfg.Cells),
	}
	depLen := 1
	for depLen < k+1 {
		depLen <<= 1
	}
	s.departAt = make([]departSlot, depLen)
	s.depMask = depLen - 1
	s.ctrlMask = -1
	if k&(k-1) == 0 {
		s.ctrlMask = k - 1
	}
	if cfg.ECC {
		s.eccMem = make([][]uint8, k)
		for st := range s.eccMem {
			s.eccMem[st] = make([]uint8, cfg.Cells)
		}
	}
	for i := range s.inReg {
		s.inReg[i] = make([]cell.Word, k)
	}
	for o := range s.egress {
		s.egress[o] = fifo.NewRing[*reasm](0)
	}
	s.cOffered = s.counter.Hot("offered")
	s.cAccepted = s.counter.Hot("accepted")
	s.cDelivered = s.counter.Hot("delivered")
	s.cCorrupt = s.counter.Hot("corrupt")
	s.cDropOverrun = s.counter.Hot("drop-overrun")
	s.cDropPolicy = s.counter.Hot("drop-policy")
	s.cDropPushout = s.counter.Hot("drop-pushout")
	s.polState = &bufView{s}
	return s, nil
}

// Config returns the effective configuration.
func (s *Switch) Config() Config { return s.cfg }

// ctrlSlot returns the ring index of the control word stage st executes
// at cycle c (the wave initiated at cycle c-st).
func (s *Switch) ctrlSlot(c int64, st int) int {
	i := int((c - int64(st)) % int64(s.k))
	if i < 0 {
		i += s.k
	}
	return i
}

// slotOf returns the ctrl-ring slot cycle c initiates into — c % k, with
// the divide strength-reduced to a mask for power-of-two stage counts
// (the default k = 2n shape whenever n is a power of two).
func (s *Switch) slotOf(c int64) int {
	if s.ctrlMask >= 0 {
		return int(c) & s.ctrlMask
	}
	return int(c % int64(s.k))
}

// depSlot returns cycle c's slot of the departure-completion ring.
func (s *Switch) depSlot(c int64) int { return int(c) & s.depMask }

// rrDist is input i's distance from the write round-robin pointer — the
// position the legacy scan would visit i at.
func (s *Switch) rrDist(i int) int {
	d := i - s.writeRR
	if d < 0 {
		d += s.n
	}
	return d
}

// pendSet/pendClear maintain the pending-write census (count + bitset)
// for input i; occInc/occDec do the same for output o's queued-cell
// census. The masks are meaningful only for indexes below 64 (a shift by
// ≥ 64 contributes no bit), and every consumer of a mask is gated on
// n ≤ 64.
func (s *Switch) pendSet(i int) {
	s.pendingWrites++
	s.pendMask |= uint64(1) << uint(i)
}

func (s *Switch) pendClear(i int) {
	s.pendingWrites--
	s.pendMask &^= uint64(1) << uint(i)
}

func (s *Switch) occInc(o int) {
	s.outOcc[o]++
	s.occMask |= uint64(1) << uint(o)
	// A newly occupied output may have an idle link: any cached
	// no-read-before bound is stale.
	s.readFloor = 0
}

func (s *Switch) occDec(o int) {
	s.outOcc[o]--
	if s.outOcc[o] == 0 {
		s.occMask &^= uint64(1) << uint(o)
	}
}

// memIdx maps the (stage, address) view onto the flat address-major
// buffer array: a wave's k words are contiguous at addr*k.
func (s *Switch) memIdx(st, addr int) int { return addr*s.k + st }

// setCtrl writes one control-ring slot, maintaining the SoA occupancy
// bookkeeping: ringOps (live-op census, any k) and waveMask (bitset view,
// k ≤ 64). Overwriting a slot always clears its committed bit — the new
// op's memory traffic has not been applied yet. The op is taken by
// pointer (never retained) so the per-cycle call moves no 40-byte struct.
func (s *Switch) setCtrl(slot int, op *Op) {
	if s.ctrl[slot].Kind != OpNone {
		s.ringOps--
	}
	if op.Kind != OpNone {
		s.ringOps++
	}
	s.ctrl[slot] = *op
	bit := uint64(1) << uint(slot) // slot ≥ 64 shifts to 0: mask unused there
	if op.Kind != OpNone {
		s.waveMask |= bit
	} else {
		s.waveMask &^= bit
	}
	s.committed &^= bit
}

// clearCtrl retires one control-ring slot (setCtrl with the zero op,
// specialized for the dead-cycle and fast-forward paths).
func (s *Switch) clearCtrl(slot int) {
	if s.ctrl[slot].Kind != OpNone {
		s.ringOps--
	}
	s.ctrl[slot] = Op{}
	bit := uint64(1) << uint(slot) // slot ≥ 64 shifts to 0: mask unused there
	s.waveMask &^= bit
	s.committed &^= bit
}

// wantFast reports whether the batched structure-of-arrays path may run:
// nothing that needs per-stage cycle accuracy is armed. A per-cycle tracer
// observes individual stage operations and link drives; ECC, stuck-at
// faults and an active bypass route every word through the fault layer;
// forcedExact latches after a per-stage fault seam fired; and the bitset
// masks need k ≤ 64.
func (s *Switch) wantFast() bool {
	return !s.forcedExact && s.tracer == nil && s.eccMem == nil &&
		s.stuck == nil && !s.halved && s.k <= 64
}

// dropFast leaves the batched fast path immediately. The input registers —
// not maintained per cycle while batching — are materialized first, so the
// exact path (and anything that reads or faults inReg) resumes from valid
// state. Waves committed by the fast path stay marked in the committed
// mask; the exact execute loop skips them and their departures complete
// through the departAt ring.
func (s *Switch) dropFast() {
	if !s.fastMode {
		return
	}
	s.materializeInReg()
	s.materializeLazy()
	// Re-seat in-flight transmissions in the reassembly rings: the exact
	// path's completion and snapshot machinery walk the rings, while the
	// fast path tracked each output's single record in rxHead alone.
	for o, r := range s.rxHead {
		if r != nil {
			s.egress[o].Push(r)
		}
	}
	s.fastMode = false
}

// materializeLazy deposits every deferred unicast payload into the bank
// array (masked, exactly as the eager write sweep would have) and clears
// the lazy table, restoring the invariant that s.mem holds all committed
// write traffic. Idempotent; called on every seam that reads the array
// directly.
func (s *Switch) materializeLazy() {
	if s.lazyCount == 0 {
		return
	}
	for a, lc := range s.memLazy {
		if lc == nil {
			continue
		}
		s.materializeAddr(a)
	}
}

// materializeAddr flushes one address's deferred payload, if any.
func (s *Switch) materializeAddr(a int) {
	lc := s.memLazy[a]
	if lc == nil {
		return
	}
	m := ^cell.Word(0)
	if wb := s.cfg.WordBits; wb < 64 {
		m = cell.Word(1)<<uint(wb) - 1
	}
	src := lc.Words
	dst := s.mem[a*s.k : a*s.k+s.k]
	for j := range dst {
		dst[j] = src[j] & m
	}
	s.memLazy[a] = nil
	s.lazyCount--
}

// materializeInReg rebuilds the input-register rows from the cells
// currently occupying them: the canonical full-row form (every word of the
// current arrival, masked). Positions the exact engine would not have
// latched yet hold the very words the upcoming latch cycles would write,
// so resuming per-cycle latching from this state is behavior-identical;
// rows that never held a cell stay zero. Called when the fast path hands
// over to the exact path and when a snapshot is taken while batching, so
// serialized state is deterministic regardless of how long the fast path
// ran.
func (s *Switch) materializeInReg() {
	wb := s.cfg.WordBits
	for i := range s.inflight {
		a := &s.inflight[i]
		if !a.active {
			continue
		}
		row := s.inReg[i]
		for j := 0; j < s.k; j++ {
			row[j] = a.c.Words[j].Mask(wb)
		}
	}
}

// forceExact is the fault layer's hand-over: a per-stage seam (control
// injection, input-register injection, stuck banks) was exercised, so the
// per-stage exact path must run from now on — permanently, since the
// seam's effect on in-flight state cannot be re-derived.
func (s *Switch) forceExact() {
	s.dropFast()
	s.forcedExact = true
}

// qidx maps an (output, vc) pair to its descriptor-queue index.
func (s *Switch) qidx(out, vc int) int { return out*s.cfg.VCs + vc }

// QueuedFor returns the number of cells queued for an output across all
// of its virtual channels. O(1): the per-output occupancy is maintained
// at every queue mutation, since admission policies consult it on each
// arrival.
func (s *Switch) QueuedFor(out int) int { return s.outOcc[out] }

// Cycle returns the current cycle number (number of Ticks so far).
func (s *Switch) Cycle() int64 { return s.cycle }

// Buffered returns the number of cells currently held in the buffer
// (written or being written, not yet claimed by a read wave).
func (s *Switch) Buffered() int { return s.queues.Total() }

// FreeCells returns the number of unallocated buffer addresses.
func (s *Switch) FreeCells() int { return s.free.Free() }

// Counters exposes the event counters: "offered", "accepted", "delivered",
// "drop-overrun" (a new head displaced a cell whose write wave never got
// a buffer address), "drop-policy" (an arrival refused by the installed
// buffer-management policy), "drop-pushout" (a queued copy preempted to
// make room), "corrupt" (integrity violations; must stay zero).
func (s *Switch) Counters() *stats.Counter { return &s.counter }

// InitDelay returns the accumulated staggered-initiation delay statistics
// (§3.4): cycles a write wave waited beyond head+1 for the stage-0 slot.
func (s *Switch) InitDelay() *stats.Mean { return &s.initDelay }

// CutLatency returns the head-in→head-out latency histogram in cycles.
func (s *Switch) CutLatency() *stats.Hist { return s.cutLatency }

// SetTracer installs a per-cycle trace callback (nil to disable); see
// TraceEvent. A tracer observes individual stage operations, so while one
// is installed the switch runs its per-stage exact path; stage activity of
// waves the batched path had already committed when the tracer was
// installed mid-run is not re-traced (their control words still appear in
// TraceEvent.Ctrl).
func (s *Switch) SetTracer(f func(TraceEvent)) {
	if f != nil {
		s.dropFast()
	}
	s.tracer = f
}

// SetOutputGate installs a side-effect-free admission predicate consulted
// before any transmission is initiated on an output link. Telegraphos
// uses it for its credit-based flow control ([KVES95]): an output with no
// credits is skipped by read arbitration and by the cut-through upgrade,
// and its cells wait in the shared buffer.
func (s *Switch) SetOutputGate(gate func(out int) bool) { s.gate = gate }

// SetVCGate installs a per-(output, VC) admission predicate — the
// [KVES95] VC-level flow control. A VC whose gate is closed keeps its
// cells queued without blocking the output's other VCs.
func (s *Switch) SetVCGate(gate func(out, vc int) bool) { s.vcGate = gate }

// SetVCWeights installs weighted round-robin service among output out's
// virtual channels — the cell-multiplexing discipline of the authors'
// earlier ATM switch chip [KaSC91]. weights must have one positive entry
// per VC; under backlog, VC i receives weights[i] transmissions per WRR
// frame. Passing nil restores plain round-robin.
func (s *Switch) SetVCWeights(out int, weights []int) error {
	if out < 0 || out >= s.n {
		return fmt.Errorf("%w: VC weights for output %d of an %d-port switch", ErrBadConfig, out, s.n)
	}
	if weights == nil {
		if s.vcWeights != nil {
			s.vcWeights[out] = nil
			s.vcTokens[out] = nil
		}
		return nil
	}
	if len(weights) != s.cfg.VCs {
		return fmt.Errorf("core: %d weights for %d VCs", len(weights), s.cfg.VCs)
	}
	for vc, w := range weights {
		if w < 1 {
			return fmt.Errorf("core: weight %d for VC %d, need ≥ 1", w, vc)
		}
	}
	if s.vcWeights == nil {
		s.vcWeights = make([][]int, s.n)
		s.vcTokens = make([][]int, s.n)
	}
	s.vcWeights[out] = append([]int(nil), weights...)
	s.vcTokens[out] = append([]int(nil), weights...)
	return nil
}

// pickVC selects which of output o's VCs to serve, honouring WRR weights
// when configured and plain round-robin otherwise. eligible reports
// whether a VC has a serviceable head (backlog, open gate, SF-ready).
// It returns the chosen VC or -1.
func (s *Switch) pickVC(o int, eligible func(vc int) bool) int {
	if s.vcWeights == nil || s.vcWeights[o] == nil {
		for jv := 0; jv < s.cfg.VCs; jv++ {
			vc := (s.vcRR[o] + jv) % s.cfg.VCs
			if eligible(vc) {
				s.vcRR[o] = (vc + 1) % s.cfg.VCs
				return vc
			}
		}
		return -1
	}
	// WRR: serve an eligible VC that still has tokens this frame; when
	// every eligible VC has exhausted its tokens, start a new frame.
	tokens := s.vcTokens[o]
	for pass := 0; pass < 2; pass++ {
		for jv := 0; jv < s.cfg.VCs; jv++ {
			vc := (s.vcRR[o] + jv) % s.cfg.VCs
			if tokens[vc] > 0 && eligible(vc) {
				tokens[vc]--
				if tokens[vc] == 0 {
					s.vcRR[o] = (vc + 1) % s.cfg.VCs
				}
				return vc
			}
		}
		if pass == 0 {
			// Refill the frame only if some eligible VC exists at all.
			any := false
			for vc := 0; vc < s.cfg.VCs; vc++ {
				if eligible(vc) {
					any = true
					break
				}
			}
			if !any {
				return -1
			}
			copy(tokens, s.vcWeights[o])
		}
	}
	return -1
}

// SetTransmitHook installs a callback invoked exactly once per
// transmission booked on an output (credit consumption).
func (s *Switch) SetTransmitHook(f func(out int)) { s.onTransmit = f }

// SetTransmitCellHook installs a callback invoked when a transmission is
// booked, carrying the departing cell and the wave-initiation cycle (the
// head word is on the outgoing link at startCycle+1). The multistage
// fabric uses it to start the downstream switch's arrival wave while the
// tail is still crossing this switch — cut-through chained across hops.
func (s *Switch) SetTransmitCellHook(f func(out int, c *cell.Cell, startCycle int64)) {
	s.onTransmitCell = f
}

// SetDropCellHook installs a callback invoked once per cell the switch
// loses, whatever the loss mode (overrun displacement, policy refusal,
// push-out eviction; bypass flushes are fault-layer state and do not
// fire it). reusable is true only when the switch provably holds no
// remaining reference to the cell — the caller may recycle it
// immediately; otherwise the cell's payload may still be read (and
// discarded) by the inert input register until its cell time ends. The
// multistage fabric uses the hook to retire per-cell flight state and
// free the dead cell's credit.
func (s *Switch) SetDropCellHook(f func(c *cell.Cell, reusable bool)) {
	s.onDropCell = f
}

// SetLeanDepartures elides per-departure work no consumer will read: the
// reassembled observed cell (Departure.Cell is left nil — Expected and
// the timing fields are still booked), the per-departure corruption
// compare, and the per-switch cut-latency histogram. The multistage
// fabric enables it on interior nodes, where drains are consumed only
// for cell accounting and integrity is verified end-to-end at ejection;
// leave it off wherever Departure.Cell, the Corrupt counter, or
// CutLatency() are observed.
func (s *Switch) SetLeanDepartures(on bool) { s.leanDepart = on }

// Drain returns the departures completed since the last call.
//
// By default every call hands ownership of a freshly allocated slice (and
// freshly reassembled Cells) to the caller. Under recycle mode
// (SetDrainRecycle) the returned slice and the Departure.Cell values it
// references are valid only until the next Drain call: the switch then
// reclaims both the backing array and the reassembled cells, making
// steady-state operation allocation-free. Departure.Expected — the cell
// the caller injected — is never touched by the switch.
func (s *Switch) Drain() []Departure {
	if !s.recycle {
		d := s.done
		s.done = nil
		return d
	}
	// Reclaim the batch handed out by the previous call: the caller's
	// access window has closed, so its reassembled cells and backing
	// array become this cycle's spares.
	for i := range s.doneOut {
		if c := s.doneOut[i].Cell; c != nil {
			s.cellFree = append(s.cellFree, c)
		}
		s.doneOut[i] = Departure{}
	}
	out := s.done
	s.done = s.doneOut[:0]
	s.doneOut = out
	return out
}

// SetDrainRecycle switches Drain between allocate-per-batch (off, the
// default) and double-buffered recycling (on); see Drain for the
// ownership contract. RunTraffic and the benchmark drivers enable it;
// callers that retain departures across Drain calls must leave it off.
func (s *Switch) SetDrainRecycle(on bool) {
	s.recycle = on
	if !on {
		s.doneOut = nil
	}
}

// getReasm takes a reassembly record from the pool (or allocates one).
func (s *Switch) getReasm() *reasm {
	if n := len(s.reasmFree); n > 0 {
		r := s.reasmFree[n-1]
		s.reasmFree[n-1] = nil
		s.reasmFree = s.reasmFree[:n-1]
		r.clean = false
		return r
	}
	return &reasm{words: make([]cell.Word, 0, s.k)}
}

// getCell takes a reassembled-cell shell from the pool (or allocates
// one). The caller overwrites every field.
func (s *Switch) getCell() *cell.Cell {
	if n := len(s.cellFree); n > 0 {
		c := s.cellFree[n-1]
		s.cellFree[n-1] = nil
		s.cellFree = s.cellFree[:n-1]
		return c
	}
	return &cell.Cell{Words: make([]cell.Word, 0, s.k)}
}

// Tick advances the switch one clock cycle. heads[i], when non-nil, is a
// cell whose head word arrives at input i in this cycle; it must be
// exactly K words long and the input link must not be mid-cell (the link
// carries one word per cycle, so heads may be at most K cycles apart).
// heads may be nil when no cell arrives anywhere.
func (s *Switch) Tick(heads []*cell.Cell) {
	// Mode selection. Dropping to the exact path is done eagerly by the
	// seams that require it (SetTracer, the fault layer); entering the
	// fast path is deferred until no un-committed wave is in flight and no
	// output-register drive is pending, so neither path ever has to
	// reconstruct the other's mid-wave state.
	if s.fastMode {
		if !s.wantFast() {
			s.dropFast()
		}
	} else if s.wantFast() && s.waveMask&^s.committed == 0 && len(s.loaded) == 0 {
		// Hand-over: with every wave committed and no drive pending, the
		// reassembly rings hold only fully materialized departures already
		// tracked by the completion ring and rxHead (at most one per
		// output). The fast path keeps them in rxHead alone; drop the
		// rings' duplicate bookkeeping.
		for o := range s.egress {
			for s.egress[o].Len() > 0 {
				s.egress[o].Pop()
			}
		}
		s.fastMode = true
	}
	if s.fastMode {
		s.tickFast(heads)
		return
	}
	s.tickExact(heads)
}

// tickExact is the per-stage cycle-accurate path: the original fig. 5
// machine, walking the ctrl ring stage by stage. It runs whenever a
// tracer or the fault layer's per-stage seams are armed (wantFast).
func (s *Switch) tickExact(heads []*cell.Cell) {
	c := s.cycle

	heads = s.delayStep(c, heads)

	// Departures the batched fast path scheduled before handing over
	// complete through the ring; their words are fully materialized.
	if s.txPending > 0 {
		if d := &s.departAt[s.depSlot(c)]; d.r != nil {
			r, o := d.r, d.out
			d.r = nil
			s.txPending--
			s.finishDeparture(o, r, c)
		}
	}

	// Phase 1 — egress: output registers loaded in the previous cycle
	// drive their outgoing links now ("in the next cycle, this register
	// drives the desired outgoing link", §3.2).
	if s.tracer != nil {
		if s.driveScratch == nil {
			s.driveScratch = make([]int, s.k)
		}
		for st := range s.driveScratch {
			s.driveScratch[st] = -1
		}
	}
	// s.loaded lists exactly the stages whose output register was loaded
	// last cycle; every one of them drives its link now. The word lands in
	// the cached reassembly record; the k-th word completes a departure.
	for _, st := range s.loaded {
		rg := &s.outReg[st]
		o := rg.out
		r := s.rxHead[o]
		if r == nil {
			panic(fmt.Sprintf("core: word on output %d with no departure in flight", o))
		}
		if len(r.words) == 0 {
			r.start = c
		}
		r.words = append(r.words, rg.word)
		if len(r.words) >= s.k {
			s.finishDeparture(o, r, c)
		}
		if s.driveScratch != nil {
			s.driveScratch[st] = o
		}
		rg.valid = false
	}
	s.loaded = s.loaded[:0]

	// Phase 2 — arbitration: choose at most one new wave for stage M0.
	// The slot being claimed last held the wave initiated k cycles ago,
	// which completed its stage-(k-1) operation in the previous cycle.
	base := s.slotOf(c)
	var op Op
	s.arbitrate(c, &op)
	s.setCtrl(base, &op)

	// Per-input backpressure accounting: every arrival still waiting for
	// its write wave after arbitration waited one more cycle. This is what
	// makes buffer exhaustion visible per port instead of a silent retry
	// (the aggregate §3.4 stall signal lives in observeCycle).
	s.accrueStalls(c)

	if s.obs != nil {
		s.observeCycle(c, s.ctrl[base])
	}
	if s.tracer != nil {
		s.emitTrace(c, heads)
	}

	// Phases 3+4 — execute: stage st performs the op of the wave initiated
	// at cycle c-st ("stage s+1 repeats stage s's operation next cycle",
	// §3.3); the ring indexing replaces the per-stage control-word shift.
	// Reads and writes go through the fault-tolerance layer (degrade.go)
	// only when it can act — ECC armed, a stuck-at fault injected, or a
	// bypass active — and hit the RAM directly otherwise. A write-through
	// taps the data bus directly, so the RAM plays no part in the
	// departing word (§3.3).
	fastMem := s.eccMem == nil && s.stuck == nil && !s.halved
	idx := base
	for st := 0; st < s.k; st++ {
		slot := idx
		op := s.ctrl[idx]
		if idx--; idx < 0 {
			idx = s.k - 1
		}
		if s.committed&(uint64(1)<<uint(slot)) != 0 {
			// The batched fast path already applied this wave's memory
			// traffic and posted its departure to departAt; re-executing
			// its stages would double-drive the output.
			continue
		}
		switch op.Kind {
		case OpWrite:
			if fastMem {
				s.mem[op.Addr*s.k+st] = s.inReg[op.In][st]
			} else {
				s.writeWord(st, op.Addr, op.Remap, s.inReg[op.In][st])
			}
		case OpRead:
			var w cell.Word
			if fastMem {
				w = s.mem[op.Addr*s.k+st]
			} else {
				w = s.readWord(st, op.Addr, op.Remap)
			}
			s.outReg[st] = outWord{word: w, out: op.Out, loadedAt: c, valid: true}
			s.loaded = append(s.loaded, st)
		case OpWriteThrough:
			w := s.inReg[op.In][st]
			if fastMem {
				s.mem[op.Addr*s.k+st] = w
			} else {
				s.writeWord(st, op.Addr, op.Remap, w)
			}
			s.outReg[st] = outWord{word: w, out: op.Out, loadedAt: c, valid: true}
			s.loaded = append(s.loaded, st)
		}
	}

	// Phase 5 — ingress: arriving words are latched into the input
	// registers at the end of the cycle.
	for i := 0; i < s.n; i++ {
		a := &s.inflight[i]
		if a.active {
			if j := c - a.head; j > 0 && j < int64(s.k) {
				s.inReg[i][j] = a.c.Words[j].Mask(s.cfg.WordBits)
			}
		}
		if heads == nil || heads[i] == nil {
			continue
		}
		nc := heads[i]
		if len(nc.Words) != s.k {
			panic(fmt.Sprintf("core: cell of %d words injected into %d-stage switch", len(nc.Words), s.k))
		}
		if nc.Dst < 0 || nc.Dst >= s.n {
			panic(fmt.Sprintf("core: cell destination %d out of range", nc.Dst))
		}
		if a.active {
			if c-a.head < int64(s.k) {
				panic(fmt.Sprintf("core: head injected mid-cell on input %d (previous head at cycle %d, now %d)", i, a.head, c))
			}
			if !a.written {
				// The previous cell never obtained a write wave (buffer
				// exhausted for its whole residency): its words are now
				// being overwritten and it is lost.
				*s.cDropOverrun++
				s.pendClear(i)
				s.inDrops[i]++
				s.outDrops[a.c.Dst]++
				if s.obs != nil {
					s.obs.DropOverrun.Inc()
				}
				if s.onDropCell != nil {
					s.onDropCell(a.c, true)
				}
			}
		}
		s.pendSet(i)
		*s.cOffered++
		nc.Enqueue = c
		*a = arrival{c: nc, head: c, active: true}
		s.inReg[i][0] = nc.Words[0].Mask(s.cfg.WordBits)
	}

	// Faulty-stage bypass: a bank that has accumulated BypassThreshold
	// uncorrectable ECC errors is mapped out at the end of the cycle,
	// outside the execute phase (degrade.go).
	if t := s.cfg.BypassThreshold; t > 0 {
		for b := 0; b < s.k; b++ {
			if !s.stageDown[b] && s.stageErr[b] >= t {
				s.mapOutBank(b)
			}
		}
	}

	s.cycle++
}

// delayStep advances the §4.3 link-pipelining delay line: heads spend
// LinkPipeline cycles crossing the pipelined input wires before reaching
// the input registers. The delay line is transparent to all switch logic
// behind it. Slot storage and the delayed-heads vector are preallocated
// and swapped in place.
func (s *Switch) delayStep(c int64, heads []*cell.Cell) []*cell.Cell {
	r := s.cfg.LinkPipeline
	if r == 0 {
		return heads
	}
	if s.inDelay == nil {
		s.inDelay = make([][]*cell.Cell, r)
		for i := range s.inDelay {
			s.inDelay[i] = make([]*cell.Cell, s.n)
		}
		s.delayScratch = make([]*cell.Cell, s.n)
	}
	slot := s.inDelay[c%int64(r)]
	for i := 0; i < s.n; i++ {
		var h *cell.Cell
		if heads != nil {
			h = heads[i]
		}
		slot[i], h = h, slot[i] // store entering, extract R-cycle-old
		if slot[i] != nil {
			s.delayCount++
		}
		if h != nil {
			s.delayCount--
		}
		s.delayScratch[i] = h
	}
	return s.delayScratch
}

// tickFast is the batched structure-of-arrays cycle. One arbitration (the
// same policy code as the exact path), one contiguous sweep applying the
// chosen wave's entire memory traffic, and ring-scheduled completion — no
// per-stage ctrl walk, no per-cycle input-register latching, no per-word
// output drive. It is bit-identical to tickExact for every configuration
// wantFast admits: a cell's words are immutable once injected, and wave
// schedules are stage-uniform (stage st of the wave initiated at c0 runs
// at exactly c0+st), so two waves touching one address always execute each
// stage in initiation order — committing a wave's full traffic at
// initiation commutes with every other wave, and a departure completed at
// c0+k carries the exact words the per-stage drive would have assembled.
func (s *Switch) tickFast(heads []*cell.Cell) {
	c := s.cycle

	if s.cfg.LinkPipeline > 0 && (heads != nil || s.delayCount > 0) {
		heads = s.delayStep(c, heads)
	}

	// Completion: at most one wave initiates per cycle, so at most one
	// departure completes per cycle — the one posted k cycles ago.
	if s.txPending > 0 {
		if d := &s.departAt[s.depSlot(c)]; d.r != nil {
			r, o := d.r, d.out
			d.r = nil
			s.txPending--
			s.finishDeparture(o, r, c)
		}
	}

	// Dead-cycle short circuit: nothing buffered, nothing pending, nothing
	// in flight and no arrivals — the only state change an exact cycle
	// would make is retiring the expired ctrl slot. (TickN jumps runs of
	// these cycles in O(1); this keeps the single-Tick idle cost minimal.)
	if heads == nil && s.pendingWrites == 0 && s.txPending == 0 && s.queues.Total() == 0 {
		base := s.slotOf(c)
		if s.ctrl[base].Kind != OpNone {
			s.clearCtrl(base)
		}
		if s.obs != nil {
			s.observeCycle(c, Op{})
		}
		s.cycle++
		return
	}

	// No-initiation shortcut: with nothing awaiting a write wave and
	// nothing buffered, both pickers would scan and fail — exactly what
	// arbitrate would return Op{} for, with no side effect (lastInit moves
	// only on success). Skipping the call is therefore bit-identical.
	var op Op
	base := s.slotOf(c)
	if s.pendingWrites != 0 || s.queues.Total() != 0 {
		s.arbitrate(c, &op)
	}
	if op.Kind != OpNone || s.ctrl[base].Kind != OpNone {
		s.setCtrl(base, &op)
	}
	if op.Kind != OpNone {
		s.commitWave(base, &op, c)
	}

	s.accrueStalls(c)
	if s.obs != nil {
		s.observeCycle(c, op)
	}

	// Ingress: record arrivals. The input registers are not latched per
	// cycle — commitWave (and materializeInReg on hand-over to the exact
	// path) read the words straight from the immutable cell.
	if heads != nil {
		for i := 0; i < s.n; i++ {
			nc := heads[i]
			if nc == nil {
				continue
			}
			if len(nc.Words) != s.k {
				panic(fmt.Sprintf("core: cell of %d words injected into %d-stage switch", len(nc.Words), s.k))
			}
			if nc.Dst < 0 || nc.Dst >= s.n {
				panic(fmt.Sprintf("core: cell destination %d out of range", nc.Dst))
			}
			a := &s.inflight[i]
			if a.active {
				if c-a.head < int64(s.k) {
					panic(fmt.Sprintf("core: head injected mid-cell on input %d (previous head at cycle %d, now %d)", i, a.head, c))
				}
				if !a.written {
					*s.cDropOverrun++
					s.pendClear(i)
					s.inDrops[i]++
					s.outDrops[a.c.Dst]++
					if s.obs != nil {
						s.obs.DropOverrun.Inc()
					}
					if s.onDropCell != nil {
						s.onDropCell(a.c, true)
					}
				}
			}
			s.pendSet(i)
			*s.cOffered++
			nc.Enqueue = c
			*a = arrival{c: nc, head: c, active: true}
		}
	}

	s.cycle++
}

// commitWave applies the entire memory traffic of the wave just initiated
// at cycle c in one contiguous sweep and schedules its departure,
// replacing the k per-stage executions of the exact path. The flat
// address-major layout makes each case a single run over mem[addr*k :
// addr*k+k].
func (s *Switch) commitWave(slot int, op *Op, c int64) {
	// One width mask for the whole sweep instead of a per-word Mask call
	// (whose width<64 branch would sit inside the copy loop).
	m := ^cell.Word(0)
	if wb := s.cfg.WordBits; wb < 64 {
		m = cell.Word(1)<<uint(wb) - 1
	}
	switch op.Kind {
	case OpWrite:
		if s.refcnt[op.Addr] == 1 {
			// Unicast: defer the deposit. The cell outlives its only
			// read wave's commit (it is recycled no earlier than the
			// departure it becomes), so the read serves from it
			// directly. Multicast keeps the eager copy — an early
			// departure may hand the cell back while copies still queue.
			s.memLazy[op.Addr] = s.inflight[op.In].c
			s.lazyCount++
		} else {
			src := s.inflight[op.In].c.Words
			dst := s.mem[op.Addr*s.k : op.Addr*s.k+s.k]
			for j := range dst {
				dst[j] = src[j] & m
			}
		}
	case OpRead:
		r := s.lastTx
		s.lastTx = nil
		if lc := s.memLazy[op.Addr]; lc != nil {
			// Indexed masked copy (the record's capacity is pool-sized to
			// k), folding the corruption check into the sweep: the record
			// departs the very cell it will be compared against, so it is
			// clean exactly when the source was already in-width.
			src := lc.Words[:s.k]
			w := r.words[:s.k]
			var dirty cell.Word
			for j := range w {
				v := src[j]
				w[j] = v & m
				dirty |= v &^ m
			}
			r.words = w
			r.clean = dirty == 0
			s.memLazy[op.Addr] = nil
			s.lazyCount--
		} else {
			r.words = append(r.words, s.mem[op.Addr*s.k:op.Addr*s.k+s.k]...)
		}
		r.start = c + 1
		s.scheduleDepart(r, op.Out, c)
	case OpWriteThrough:
		// The departing words come straight off the data bus (§3.3), and
		// pickWrite already released the buffer address — nothing could
		// ever read the RAM deposit, so it is skipped entirely.
		r := s.lastTx
		s.lastTx = nil
		src := s.inflight[op.In].c.Words[:s.k]
		w := r.words[:s.k]
		var dirty cell.Word
		for j := range w {
			v := src[j]
			w[j] = v & m
			dirty |= v &^ m
		}
		r.words = w
		r.clean = dirty == 0
		r.start = c + 1
		s.scheduleDepart(r, op.Out, c)
	}
	s.committed |= uint64(1) << uint(slot)
}

// scheduleDepart posts a fully materialized transmission for completion at
// cycle c+k — the cycle the exact path's k-th word drive would call
// finishDeparture. The ring has ≥ k+1 slots and initiations are at most
// one per cycle, so a slot is always consumed (at c0+k) before the next
// wave that maps to it (initiated at least k+1 cycles later) posts.
func (s *Switch) scheduleDepart(r *reasm, out int, c int64) {
	s.departAt[s.depSlot(c+int64(s.k))] = departSlot{r: r, out: out}
	s.txPending++
}

// accrueStalls charges one stall cycle to every arrival still waiting for
// its write wave after this cycle's arbitration. The pending bitset makes
// the common case (a handful of waiters among n ports) touch only the
// live rows.
func (s *Switch) accrueStalls(c int64) {
	if s.pendingWrites == 0 {
		return
	}
	if s.n <= 64 {
		for m := s.pendMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if c > s.inflight[i].head {
				s.inStalls[i]++
			}
		}
		return
	}
	for i := range s.inflight {
		if a := &s.inflight[i]; a.active && !a.written && c > a.head {
			s.inStalls[i]++
		}
	}
}

// arbitrate picks this cycle's stage-0 operation, enforcing the degraded
// initiation cadence while a stage bypass is active: a mapped-out stage
// doubles the load on its partner bank's single port, so waves initiated on
// consecutive cycles could collide there. Spacing initiations two cycles
// apart makes every remapped schedule conflict-free again (the §3.4 slot
// argument at half rate).
// The chosen operation is written through op — which must be zeroed by the
// caller and is left untouched on a no-initiation cycle — so the 40-byte
// Op never rides a return-value copy through the picker call chain.
func (s *Switch) arbitrate(c int64, op *Op) bool {
	if s.prof == nil {
		return s.arbitrateInner(c, op)
	}
	t0 := time.Now()
	ok := s.arbitrateInner(c, op)
	s.prof.ArbNS += time.Since(t0).Nanoseconds()
	s.prof.ArbCalls++
	return ok
}

func (s *Switch) arbitrateInner(c int64, op *Op) bool {
	if s.halved && c-s.lastInit < 2 {
		return false
	}
	// Reads first (outgoing links must not idle), then the most urgent
	// pending write, upgraded to a write-through when cut-through applies;
	// NoReadPriority flips the order.
	var ok bool
	if !s.cfg.NoReadPriority {
		if ok = s.pickRead(c, op); !ok {
			ok = s.pickWrite(c, op)
		}
	} else {
		if ok = s.pickWrite(c, op); !ok {
			ok = s.pickRead(c, op)
		}
	}
	if ok {
		s.lastInit = c
		op.Remap = s.halved
	}
	return ok
}

// pickRead selects an idle outgoing link with an eligible head-of-queue
// cell, round-robin. With n ≤ 64 the scan iterates the occupancy bitset
// rotated to the round-robin origin — the same visit order as the legacy
// index walk restricted to outputs that have queued cells at all. The
// outputs skipped that way would have failed their queue probe (and their
// side-effect-free gate call, see SetOutputGate) without ever booking a
// transmission, so the restriction is behavior-identical.
func (s *Switch) pickRead(c int64, op *Op) bool {
	if s.queues.Total() == 0 {
		// Nothing buffered anywhere: no read wave can be initiated. (With
		// cut-through under admissible load this is the common case — most
		// cells depart via write-through and never touch the queues.)
		s.noteRead(0, false)
		return false
	}
	scanned := 0
	if s.n <= 64 {
		// Fail-fast: a prior full scan proved no occupied link frees up
		// before readFloor, and nothing since has invalidated that bound
		// (occInc clears it; linkFree is monotone) — skip the scan. A
		// failed scan has no side effects (readRR moves only on success),
		// so skipping is bit-identical.
		if s.readFloor > c {
			s.noteRead(0, false)
			return false
		}
		// Split the occupancy mask at the round-robin pointer: outputs
		// ≥ readRR first (ascending), then the wrapped remainder. While
		// scanning, track the earliest cycle any busy link frees; a scan
		// that fails for link-busy reasons alone installs it as the new
		// floor. A failure with the link already free (closed gate,
		// store-and-forward wait, WRR ineligibility) can clear up without
		// touching linkFree or the occupied set, so it poisons the bound.
		minLink := int64(-1)
		hi := s.occMask >> uint(s.readRR) << uint(s.readRR)
		for m := hi; m != 0; m &= m - 1 {
			o := bits.TrailingZeros64(m)
			scanned++
			if f := s.linkFree[o]; f > c {
				if minLink != 0 && (minLink < 0 || f < minLink) {
					minLink = f
				}
				continue
			}
			if s.tryRead(o, c, op) {
				s.noteRead(scanned, true)
				return true
			}
			minLink = 0
		}
		for m := s.occMask &^ hi; m != 0; m &= m - 1 {
			o := bits.TrailingZeros64(m)
			scanned++
			if f := s.linkFree[o]; f > c {
				if minLink != 0 && (minLink < 0 || f < minLink) {
					minLink = f
				}
				continue
			}
			if s.tryRead(o, c, op) {
				s.noteRead(scanned, true)
				return true
			}
			minLink = 0
		}
		if minLink > 0 {
			s.readFloor = minLink
		}
		s.noteRead(scanned, false)
		return false
	}
	for j, o := 0, s.readRR; j < s.n; j, o = j+1, o+1 {
		if o >= s.n {
			o -= s.n
		}
		scanned++
		if s.tryRead(o, c, op) {
			s.noteRead(scanned, true)
			return true
		}
	}
	s.noteRead(scanned, false)
	return false
}

// tryRead attempts to initiate a read wave on output o at cycle c,
// returning false when the link is busy, gated closed, or has no
// serviceable head-of-queue cell.
func (s *Switch) tryRead(o int, c int64, op *Op) bool {
	if s.linkFree[o] > c {
		return false
	}
	if s.gate != nil && !s.gate(o) {
		return false
	}
	// Single-VC fast path: with one virtual channel, no VC gate and
	// no WRR weights, the only candidate is the output's front
	// descriptor — skip the pickVC machinery.
	if s.cfg.VCs == 1 && s.vcGate == nil && (s.vcWeights == nil || s.vcWeights[o] == nil) {
		node, ok := s.queues.Front(o) // qidx(o, 0) == o
		if !ok {
			return false
		}
		d := &s.nodes[node]
		if !s.cfg.CutThrough && c < d.writeStart+int64(s.k) {
			return false
		}
		s.queues.Pop(o)
		s.occDec(o)
		if o+1 == s.n {
			s.readRR = 0
		} else {
			s.readRR = o + 1
		}
		s.startTransmit(o, d, c)
		addr := d.addr
		s.nfree.Put(node)
		s.refcnt[addr]--
		if s.refcnt[addr] == 0 {
			s.free.Put(addr)
		}
		op.Kind, op.Out, op.Addr = OpRead, o, addr
		return true
	}
	// Serve the output's virtual channels round-robin (or WRR when
	// weights are configured, [KaSC91]): a VC with a closed gate or
	// an ineligible head does not block the link's other VCs.
	eligible := func(vc int) bool {
		if s.vcGate != nil && !s.vcGate(o, vc) {
			return false
		}
		node, ok := s.queues.Front(s.qidx(o, vc))
		if !ok {
			return false
		}
		d := &s.nodes[node]
		// Store-and-forward: wait until the write wave has fully
		// deposited the cell.
		return s.cfg.CutThrough || c >= d.writeStart+int64(s.k)
	}
	vc := s.pickVC(o, eligible)
	if vc < 0 {
		return false
	}
	q := s.qidx(o, vc)
	node, _ := s.queues.Pop(q)
	s.occDec(o)
	d := &s.nodes[node]
	if o+1 == s.n {
		s.readRR = 0
	} else {
		s.readRR = o + 1
	}
	s.startTransmit(o, d, c)
	addr := d.addr
	s.nfree.Put(node)
	// The address is reusable once its last queued copy has
	// claimed its read wave: any later write wave trails this
	// read wave stage by stage.
	s.refcnt[addr]--
	if s.refcnt[addr] == 0 {
		s.free.Put(addr)
	}
	op.Kind, op.Out, op.Addr = OpRead, o, addr
	return true
}

// pickWrite selects the pending arrival with the earliest head cycle
// (earliest deadline first), tie-broken round-robin, and submits it to
// the buffer-management policy (bufmgr) when one is installed. A Drop
// verdict consumes the arrival and the scan moves to the next-most-
// urgent one in the same cycle; a PushOut verdict evicts the victim's
// head first; an Accept with no free address leaves the arrival pending
// (backpressure) and — with a policy installed — also tries the
// remaining arrivals, since one of them may be admittable by push-out.
func (s *Switch) pickWrite(c int64, op *Op) bool {
	if s.pendingWrites == 0 {
		s.noteWrite(0, false)
		return false
	}
	scanned := 0
retry:
	best := -1
	var bestHead int64
	if s.n <= 64 {
		// The pending bitset holds exactly the active-and-unwritten rows,
		// visited in ascending index order. The legacy walk visits in
		// round-robin order from writeRR and keeps the first strict
		// improvement, so its winner is the minimum head with ties broken
		// by smallest RR distance — reproduced here with an explicit
		// distance tie-break, making the two scans pick identically.
		for m := s.pendMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			scanned++
			a := &s.inflight[i]
			if c <= a.head || s.wrSkip[i] > c {
				continue // head arrived only this cycle, or tried already
			}
			if best == -1 || a.head < bestHead ||
				(a.head == bestHead && s.rrDist(i) < s.rrDist(best)) {
				best, bestHead = i, a.head
			}
		}
	} else {
		for j, i := 0, s.writeRR; j < s.n; j, i = j+1, i+1 {
			if i >= s.n {
				i -= s.n
			}
			a := &s.inflight[i]
			if !a.active || a.written {
				continue // no pending cell
			}
			scanned++
			if c <= a.head || s.wrSkip[i] > c {
				continue // head arrived only this cycle, or tried already
			}
			if best == -1 || a.head < bestHead {
				best, bestHead = i, a.head
			}
		}
	}
	if best == -1 {
		s.noteWrite(scanned, false)
		return false
	}
	a := &s.inflight[best]
	if s.policy != nil {
		switch v := s.policy.Admit(s.polState, a.c.Dst, a.c.VC); v.Action {
		case bufmgr.Drop:
			s.dropPolicy(best, a)
			goto retry // the freed slot may admit the next arrival now
		case bufmgr.PushOut:
			s.pushOut(v.VictimOut, v.VictimVC)
		}
	}
	addr, ok := s.free.Get()
	if !ok {
		// Buffer exhausted: the cell stays pending and retries; if it is
		// still unwritten when the next head arrives it is dropped
		// (phase 5). With a policy installed, a less urgent arrival may
		// still get in this cycle (its verdict could push a victim out),
		// so mark this one tried and rescan.
		if s.policy != nil {
			s.wrSkip[best] = c + 1
			goto retry
		}
		s.noteWrite(scanned, false)
		return false
	}
	a.written = true
	s.pendClear(best)
	s.writeStartAt[addr] = c
	*s.cAccepted++
	s.initDelay.Add(float64(c - a.head - 1))
	s.obsInitDelay.Observe(c - a.head - 1)
	if best+1 == s.n {
		s.writeRR = 0
	} else {
		s.writeRR = best + 1
	}
	vc := a.c.VC
	if vc < 0 || vc >= s.cfg.VCs {
		panic(fmt.Sprintf("core: cell VC %d out of configured %d channels", vc, s.cfg.VCs))
	}
	dst := a.c.Dst

	// Automatic cut-through, same-cycle variant (unicast only): if the
	// destination link is idle and no cell is queued ahead on any of its
	// VCs, the write wave doubles as the read wave (§3.3).
	if s.cfg.CutThrough && len(a.c.Copies) == 0 &&
		s.linkFree[dst] <= c && s.QueuedFor(dst) == 0 &&
		(s.gate == nil || s.gate(dst)) &&
		(s.vcGate == nil || s.vcGate(dst, vc)) {
		d := desc{c: a.c, head: a.head, writeStart: c, vc: vc, addr: addr}
		s.startTransmit(dst, &d, c)
		s.free.Put(addr)
		op.Kind, op.In, op.Out, op.Addr = OpWriteThrough, best, dst, addr
		s.noteWrite(scanned, true)
		return true
	}

	// Enqueue one descriptor per destination; the payload is stored once
	// (multicast economy of the shared buffer). Unicast cells — the hot
	// case — fill the descriptor in place on the claimed queue node, with
	// no stack staging and no closure.
	if len(a.c.Copies) == 0 {
		node, ok := s.nfree.Get()
		if !ok {
			panic("core: descriptor-node pool exhausted (impossible: sized cells×ports)")
		}
		nd := &s.nodes[node]
		nd.c, nd.head, nd.writeStart, nd.vc, nd.addr = a.c, a.head, c, vc, addr
		s.refcnt[addr] = 1
		s.queues.Push(s.qidx(dst, vc), node)
		s.occInc(dst)
		op.Kind, op.In, op.Addr = OpWrite, best, addr
		s.noteWrite(scanned, true)
		return true
	}
	d := desc{c: a.c, head: a.head, writeStart: c, vc: vc, addr: addr}
	enqueue := func(o int) {
		if o < 0 || o >= s.n {
			panic(fmt.Sprintf("core: multicast copy to output %d out of range", o))
		}
		node, ok := s.nfree.Get()
		if !ok {
			panic("core: descriptor-node pool exhausted (impossible: sized cells×ports)")
		}
		s.nodes[node] = d
		s.queues.Push(s.qidx(o, vc), node)
		s.occInc(o)
	}
	s.refcnt[addr] = 1 + len(a.c.Copies)
	enqueue(dst)
	for _, o := range a.c.Copies {
		enqueue(o)
	}
	op.Kind, op.In, op.Addr = OpWrite, best, addr
	s.noteWrite(scanned, true)
	return true
}

// startTransmit books the outgoing link for the K-cycle transmission that
// follows a read (or write-through) wave initiated at cycle c, and sets up
// reassembly of the departing cell.
func (s *Switch) startTransmit(o int, d *desc, c int64) {
	s.linkFree[o] = c + int64(s.k)
	r := s.getReasm()
	r.d = *d
	r.words = r.words[:0]
	r.start = 0
	if s.fastMode {
		// Single-slot fast path: the link booking above spaces reads to
		// one output at least K cycles apart, and the batched cycle
		// completes the departure posted K cycles ago before arbitrating,
		// so at most one transmission per output is ever in flight —
		// rxHead alone carries it, no ring bookkeeping.
		s.rxHead[o] = r
	} else {
		s.egress[o].Push(r)
		if s.egress[o].Len() == 1 {
			s.rxHead[o] = r
		}
	}
	s.lastTx = r
	if s.onTransmit != nil {
		s.onTransmit(o)
	}
	if s.onTransmitCell != nil {
		s.onTransmitCell(o, d.c, c)
	}
}

// finishDeparture books the departure whose last word was observed on
// outgoing link o at cycle c; r is the output's reassembly record, now
// holding all K words.
func (s *Switch) finishDeparture(o int, r *reasm, c int64) {
	if s.fastMode {
		s.rxHead[o] = nil
	} else {
		s.egress[o].Pop()
		if next, ok := s.egress[o].Front(); ok {
			s.rxHead[o] = next
		} else {
			s.rxHead[o] = nil
		}
	}
	// The observed cell swaps its word buffer with the record's (both stay
	// at capacity K) so the record can return to the pool immediately; the
	// cell itself is reclaimed by the next Drain under recycle mode. Lean
	// mode skips the materialization and hands out a nil Cell.
	var got *cell.Cell
	if !s.leanDepart {
		got = s.getCell()
		got.Seq, got.Src, got.Dst, got.VC = r.d.c.Seq, r.d.c.Src, r.d.c.Dst, r.d.c.VC
		got.Copies = nil
		got.Enqueue = r.d.head
		got.Words, r.words = r.words, got.Words[:0]
	} else {
		r.words = r.words[:0]
	}
	// With §4.3 link pipelining, timestamps are reported at the switch
	// boundary: the head entered LinkPipeline cycles before it reached
	// the input registers and leaves LinkPipeline cycles after the
	// output register row drives it.
	lp := int64(s.cfg.LinkPipeline)
	dep := Departure{
		Cell:      got,
		Expected:  r.d.c,
		Output:    o,
		HeadIn:    r.d.head - lp,
		HeadOut:   r.start + lp,
		TailOut:   c + lp,
		InitDelay: r.d.writeStart - r.d.head - 1,
		VC:        r.d.vc,
	}
	*s.cDelivered++
	lat := dep.HeadOut - dep.HeadIn
	if !s.leanDepart {
		if !r.clean && !got.Equal(r.d.c) {
			*s.cCorrupt++
		}
		s.cutLatency.Add(lat)
	}
	if o := s.obs; o != nil {
		s.obsLocal.delivered++
		s.obsCutLat.Observe(lat)
		if o.Tracer != nil {
			o.Tracer.Emit(obs.Event{Kind: obs.EvWaveEnd, Cycle: c, In: -1, Out: int32(dep.Output), Addr: -1, V: lat})
		}
	}
	s.done = append(s.done, dep)
	s.reasmFree = append(s.reasmFree, r)
}
