package core

import "time"

// PhaseProf attributes arbitration work inside a Switch: wall time spent
// in arbitrate (the pickRead/pickWrite pair that initiates waves) and the
// scan lengths of the two pickers — how many occupied outputs a read scan
// probed, how many pending arrivals a write scan examined. It turns the
// "arbitration is ~N% of the warm profile" claim into a tracked metric:
// a fabric driver attaches one PhaseProf to every node, sums the structs,
// and divides ArbNS by its own step time (after subtracting the timer
// cost, see TimerCostNS).
//
// A PhaseProf is single-writer plain memory: the switch adds into it with
// ordinary stores, so read it only between Ticks. Attach with
// SetPhaseProf; a nil profile (the default) costs one pointer test per
// arbitrate call and leaves the scan loops untouched.
type PhaseProf struct {
	// ArbNS is wall time inside arbitrate, including the timer overhead
	// of the measurement itself (two clock reads per call — calibrate
	// with TimerCostNS and subtract 2·ArbCalls·cost).
	ArbNS    int64
	ArbCalls int64

	// ReadCalls counts pickRead invocations, ReadScans the occupied
	// outputs they probed in total, ReadHits the calls that initiated a
	// read wave.
	ReadCalls int64
	ReadScans int64
	ReadHits  int64

	// WriteCalls counts pickWrite invocations, WriteScans the pending
	// arrivals they examined in total (across policy retries), WriteHits
	// the calls that initiated a write or write-through wave.
	WriteCalls int64
	WriteScans int64
	WriteHits  int64
}

// Add accumulates o into p (for summing per-node profiles).
func (p *PhaseProf) Add(o *PhaseProf) {
	p.ArbNS += o.ArbNS
	p.ArbCalls += o.ArbCalls
	p.ReadCalls += o.ReadCalls
	p.ReadScans += o.ReadScans
	p.ReadHits += o.ReadHits
	p.WriteCalls += o.WriteCalls
	p.WriteScans += o.WriteScans
	p.WriteHits += o.WriteHits
}

// SetPhaseProf attaches (or, with nil, detaches) an arbitration profile.
func (s *Switch) SetPhaseProf(p *PhaseProf) { s.prof = p }

// noteRead books one pickRead outcome. Inlineable; one pointer test when
// profiling is off.
func (s *Switch) noteRead(scanned int, hit bool) {
	if p := s.prof; p != nil {
		p.ReadCalls++
		p.ReadScans += int64(scanned)
		if hit {
			p.ReadHits++
		}
	}
}

// noteWrite books one pickWrite outcome.
func (s *Switch) noteWrite(scanned int, hit bool) {
	if p := s.prof; p != nil {
		p.WriteCalls++
		p.WriteScans += int64(scanned)
		if hit {
			p.WriteHits++
		}
	}
}

// TimerCostNS estimates the cost of one profiler clock read (the
// time.Since call pair arbitrate pays per invocation when a profile is
// attached), for calibrating ArbNS-derived shares.
func TimerCostNS() float64 {
	const n = 1 << 14
	t0 := time.Now()
	var sink int64
	for i := 0; i < n; i++ {
		sink += time.Since(t0).Nanoseconds()
	}
	total := time.Since(t0).Nanoseconds()
	_ = sink
	return float64(total) / n
}
