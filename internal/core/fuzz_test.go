package core

import (
	"testing"

	"pipemem/internal/cell"
)

// FuzzSwitchTraffic feeds the RTL switch an arbitrary byte string
// interpreted as a per-cell-time injection schedule and requires the full
// invariant set to hold: no corruption, conservation, and clean drains.
// Run with `go test -fuzz=FuzzSwitchTraffic ./internal/core` to explore;
// the seed corpus runs in normal `go test`.
func FuzzSwitchTraffic(f *testing.F) {
	f.Add([]byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x80, 0x40, 0xc0, 0x20, 0xa0})
	f.Fuzz(func(t *testing.T, schedule []byte) {
		if len(schedule) > 512 {
			schedule = schedule[:512]
		}
		const ports = 4
		s, err := New(Config{Ports: ports, WordBits: 16, Cells: 8, CutThrough: true})
		if err != nil {
			t.Fatal(err)
		}
		k := s.Config().Stages
		var seq uint64
		offered, delivered := 0, 0
		// Each schedule byte controls one cell time: bit i set → input
		// i%4 injects a cell to output (b>>4)%4 variants.
		for ci, b := range schedule {
			heads := make([]*cell.Cell, ports)
			for i := 0; i < ports; i++ {
				if b&(1<<i) != 0 {
					seq++
					dst := (int(b>>4) + i) % ports
					heads[i] = cell.New(seq, i, dst, k, 16)
					offered++
				}
			}
			s.Tick(heads)
			for j := 1; j < k; j++ {
				s.Tick(nil)
			}
			_ = ci
			for _, d := range s.Drain() {
				if !d.Cell.Equal(d.Expected) {
					t.Fatalf("corruption for schedule %x", schedule)
				}
				delivered++
			}
		}
		// Drain fully.
		for j := 0; j < (8+4)*k*4; j++ {
			s.Tick(nil)
			for _, d := range s.Drain() {
				if !d.Cell.Equal(d.Expected) {
					t.Fatalf("late corruption for schedule %x", schedule)
				}
				delivered++
			}
		}
		dropped := int(s.Counters().Get("drop-overrun"))
		if delivered+dropped != offered {
			t.Fatalf("conservation: offered %d, delivered %d, dropped %d (schedule %x)",
				offered, delivered, dropped, schedule)
		}
		if s.Counters().Get("corrupt") != 0 {
			t.Fatalf("corrupt counter nonzero for schedule %x", schedule)
		}
	})
}

// FuzzCellChecksum: any single byte-level perturbation of a cell changes
// its checksum (collision-freedom in practice for small edits).
func FuzzCellChecksum(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(1), uint8(3), uint64(1))
	f.Fuzz(func(t *testing.T, seq uint64, src, dst, wordIdx uint8, flip uint64) {
		if flip == 0 {
			flip = 1
		}
		c := cell.New(seq, int(src%8), int(dst%8), 8, 64)
		d := c.Clone()
		d.Words[int(wordIdx)%8] ^= cell.Word(flip)
		if d.Words[int(wordIdx)%8] == c.Words[int(wordIdx)%8] {
			return // flip was a no-op
		}
		if c.Checksum() == d.Checksum() {
			t.Fatalf("checksum collision: seq=%d word=%d flip=%x", seq, wordIdx%8, flip)
		}
	})
}
