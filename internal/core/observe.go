package core

import (
	"pipemem/internal/obs"
)

// Observer bundles the pre-registered metric slots and the event tracer a
// Switch reports into. Construct one with NewObserver and install it with
// Switch.SetObserver; every field is a live slot in the registry, bumped
// by the switch without a map lookup or allocation. With no observer
// installed the entire instrumentation is one nil test per Tick, keeping
// the hot path at 0 allocs/op.
type Observer struct {
	// Tracer receives the typed event stream (nil = metrics only). All
	// Emit calls are nil-safe.
	Tracer *obs.Tracer

	// Wave initiations by kind (§3.3): write waves deposit a cell into
	// the buffer, read waves start a buffered cell toward its output, and
	// cut-through waves are the same-cycle write-through upgrade.
	WriteWaves, ReadWaves, CutThroughs *obs.Counter
	// Stalls counts cycles in which at least one eligible pending write
	// wave could not be initiated (§3.4 staggered initiation, a read
	// holding the stage-0 slot, degraded cadence, or a full buffer).
	Stalls *obs.Counter
	// Delivered counts completed departures; DropOverrun and DropBypass
	// count the two built-in loss modes (displaced arrivals, bypass
	// flushes). DropPolicy and DropPushOut count the buffer-management
	// layer's decisions: arrivals refused by the installed bufmgr policy
	// and queued copies preempted to make room.
	Delivered, DropOverrun, DropBypass *obs.Counter
	DropPolicy, DropPushOut            *obs.Counter
	// ECC and bypass activity from the fault-tolerance layer.
	ECCCorrected, ECCUncorrectable, ECCHard, StageBypass *obs.Counter
	// Link-protocol activity (fault.Link wires these when protecting a
	// switch's input links).
	LinkRetransmits, LinkFailed *obs.Counter

	// Buffered and FreeCells track shared-buffer occupancy per cycle;
	// HighWater is the peak occupancy (high-water mark) over the run.
	Buffered, FreeCells, HighWater *obs.Gauge
	// QueueDepth is the per-output queue depth (cells queued across the
	// output's VCs), updated every cycle.
	QueueDepth *obs.GaugeVec
	// InputStalls exposes per-input backpressure: cycles each input held
	// a cell still waiting for its write wave. InputDrops and OutputDrops
	// break lost cells down by arrival input and by destination output —
	// the per-port visibility that replaces the silent retry-forever on
	// buffer exhaustion.
	InputStalls, InputDrops, OutputDrops *obs.GaugeVec

	// CutLatency is the head-in→head-out latency distribution;
	// InitDelay the §3.4 staggered-initiation delay distribution.
	CutLatency, InitDelay *obs.Histogram
}

// NewObserver registers the switch's canonical pipemem_* metrics on reg
// (sized for an n-port switch) and returns the observer. Attach a tracer
// by setting the Tracer field before installing.
func NewObserver(reg *obs.Registry, ports int) *Observer {
	return &Observer{
		WriteWaves:       reg.Counter("pipemem_write_waves_total", "Write waves initiated (cells accepted into the shared buffer)."),
		ReadWaves:        reg.Counter("pipemem_read_waves_total", "Read waves initiated (buffered cells started toward an output)."),
		CutThroughs:      reg.Counter("pipemem_cut_through_waves_total", "Write-through waves initiated (§3.3 same-cycle cut-through)."),
		Stalls:           reg.Counter("pipemem_init_stalls_total", "Cycles with an eligible pending write wave that could not initiate (§3.4)."),
		Delivered:        reg.Counter("pipemem_delivered_total", "Cells fully reassembled on an outgoing link."),
		DropOverrun:      reg.Counter("pipemem_drop_overrun_total", "Cells displaced from an input register row before obtaining a write wave."),
		DropBypass:       reg.Counter("pipemem_drop_bypass_total", "Queued copies flushed when a memory bank was mapped out."),
		DropPolicy:       reg.Counter("pipemem_drop_policy_total", "Arrivals refused by the shared-buffer admission policy."),
		DropPushOut:      reg.Counter("pipemem_drop_pushout_total", "Queued copies preempted (pushed out) to admit an arrival."),
		ECCCorrected:     reg.Counter("pipemem_ecc_corrected_total", "Single-bit upsets corrected (and scrubbed) by SEC-DED."),
		ECCUncorrectable: reg.Counter("pipemem_ecc_uncorrectable_total", "Multi-bit ECC failures."),
		ECCHard:          reg.Counter("pipemem_ecc_hard_total", "Corrected locations that failed scrub-verify (hard faults)."),
		StageBypass:      reg.Counter("pipemem_stage_bypass_total", "Memory banks mapped out by the bypass layer."),
		LinkRetransmits:  reg.Counter("pipemem_link_retransmits_total", "CRC-triggered link retransmissions."),
		LinkFailed:       reg.Counter("pipemem_link_failed_total", "Cells abandoned by the link protocol after exhausting retries."),
		Buffered:         reg.Gauge("pipemem_buffered_cells", "Cells currently held in the shared buffer."),
		FreeCells:        reg.Gauge("pipemem_free_cells", "Unallocated buffer addresses."),
		HighWater:        reg.Gauge("pipemem_buffer_high_water_cells", "Peak shared-buffer occupancy over the run."),
		QueueDepth:       reg.GaugeVec("pipemem_output_queue_depth", "Cells queued per output across its VCs.", "output", ports),
		InputStalls:      reg.GaugeVec("pipemem_input_stall_cycles", "Cycles each input held a cell still waiting for its write wave.", "input", ports),
		InputDrops:       reg.GaugeVec("pipemem_input_dropped_cells", "Cells lost, by arrival input (overrun + policy drops).", "input", ports),
		OutputDrops:      reg.GaugeVec("pipemem_output_dropped_cells", "Cells lost, by destination output (all loss modes).", "output", ports),
		CutLatency:       reg.Histogram("pipemem_cut_latency_cycles", "Head-in to head-out latency.", obs.ExpBounds(2, 2, 12)),
		InitDelay:        reg.Histogram("pipemem_init_delay_cycles", "Write-wave staggered-initiation delay beyond head+1 (§3.4).", obs.ExpBounds(1, 2, 10)),
	}
}

// SetObserver installs (or, with nil, removes) the switch's observer.
// Install before driving traffic; the observer's slots then accumulate
// across Ticks and can be snapshotted concurrently from another
// goroutine.
func (s *Switch) SetObserver(o *Observer) {
	s.obs = o
	s.obsPeak = 0
	s.obsLocal = obsTally{}
	s.obsCutLat, s.obsInitDelay = nil, nil
	if o != nil {
		s.obsCutLat = obs.NewHistShadow(o.CutLatency)
		s.obsInitDelay = obs.NewHistShadow(o.InitDelay)
	}
}

// Observer returns the installed observer (nil when observability is
// disabled).
func (s *Switch) Observer() *Observer { return s.obs }

// obsTally shadows the hot counters in plain (non-atomic) fields. The
// switch is the only writer, so the tallies need no synchronization; they
// are flushed into the registry's atomic counters every 64 cycles (and by
// SyncObserver), trading ≤64 cycles of scrape staleness for an
// atomic-free Tick — the difference between ~11% and ~6% enabled-metrics
// overhead on the 8×8 point.
type obsTally struct {
	writeWaves, readWaves, cutThroughs, stalls, delivered int64
	dropPolicy, dropPushOut                               int64
}

// observeCycle records this cycle's arbitration outcome and occupancy
// levels. Called from Tick only when an observer is installed; op is the
// freshly arbitrated stage-0 control word.
func (s *Switch) observeCycle(c int64, op Op) {
	o := s.obs
	tr := o.Tracer
	switch op.Kind {
	case OpWrite:
		s.obsLocal.writeWaves++
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvWriteWave, Cycle: c, In: int32(op.In), Out: -1, Addr: int32(op.Addr)})
		}
	case OpRead:
		s.obsLocal.readWaves++
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvReadWave, Cycle: c, In: -1, Out: int32(op.Out), Addr: int32(op.Addr)})
		}
	case OpWriteThrough:
		s.obsLocal.cutThroughs++
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvCutThrough, Cycle: c, In: int32(op.In), Out: int32(op.Out), Addr: int32(op.Addr)})
		}
	}
	// Only one wave can initiate per cycle, so every write still pending
	// after arbitration waited this cycle — the §3.4 stall signal.
	if s.pendingWrites > 0 {
		s.obsLocal.stalls++
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvStall, Cycle: c, In: -1, Out: -1, Addr: -1, V: int64(s.pendingWrites)})
		}
	}
	// The high-water mark is tracked every cycle, but through a plain
	// local compare so the atomic store only fires on a new peak.
	b := int64(s.queues.Total())
	if b > s.obsPeak {
		s.obsPeak = b
		o.HighWater.SetMax(b)
	}
	// Counters and occupancy gauges are published at a decimated cadence:
	// gauges are instantaneous levels a scraper samples anyway, and the
	// shadow tallies bound counter staleness to 64 cycles. The run drivers
	// force a final sync so a finished run's exposition is exact.
	if c&63 == 0 {
		s.flushObs(o, b)
	}
}

// flushObs publishes the shadow tallies and the occupancy gauges: buffer
// fill, free addresses, and the per-output queue depths.
func (s *Switch) flushObs(o *Observer, b int64) {
	t := &s.obsLocal
	if t.writeWaves > 0 {
		o.WriteWaves.Add(t.writeWaves)
	}
	if t.readWaves > 0 {
		o.ReadWaves.Add(t.readWaves)
	}
	if t.cutThroughs > 0 {
		o.CutThroughs.Add(t.cutThroughs)
	}
	if t.stalls > 0 {
		o.Stalls.Add(t.stalls)
	}
	if t.delivered > 0 {
		o.Delivered.Add(t.delivered)
	}
	if t.dropPolicy > 0 {
		o.DropPolicy.Add(t.dropPolicy)
	}
	if t.dropPushOut > 0 {
		o.DropPushOut.Add(t.dropPushOut)
	}
	*t = obsTally{}
	s.obsCutLat.Flush()
	s.obsInitDelay.Flush()
	o.Buffered.Set(b)
	o.FreeCells.Set(int64(s.free.Free()))
	for out := 0; out < s.n; out++ {
		o.QueueDepth.At(out).Set(int64(s.QueuedFor(out)))
	}
	for i := 0; i < s.n; i++ {
		o.InputStalls.At(i).Set(s.inStalls[i])
		o.InputDrops.At(i).Set(s.inDrops[i])
		o.OutputDrops.At(i).Set(s.outDrops[i])
	}
}

// SyncObserver force-publishes the decimated counters and occupancy
// gauges — called by the run drivers after the drain so the exported
// snapshot reflects the final state exactly.
func (s *Switch) SyncObserver() {
	if s.obs != nil {
		s.flushObs(s.obs, int64(s.queues.Total()))
	}
}
