package core

import (
	"encoding/json"
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/obs"
	"pipemem/internal/traffic"
)

// observedRun drives a switch with an observer and a capture-everything
// MemSink (sampling 1) and returns both the run result and the plumbing.
func observedRun(t *testing.T, cfg Config, tcfg traffic.Config, cycles int64) (RunResult, *Observer, *obs.MemSink, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	o := NewObserver(reg, cfg.Ports)
	sink := &obs.MemSink{}
	o.Tracer = obs.NewTracer(sink, 0, 1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetObserver(o)
	cs, err := traffic.NewCellStream(tcfg, s.Config().Stages)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTraffic(s, cs, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return res, o, sink, reg
}

// TestObserverReconciles checks the metric stream against the run result:
// the observability layer must agree with the simulator's own accounting,
// or the exported numbers are lies.
func TestObserverReconciles(t *testing.T) {
	res, o, sink, reg := observedRun(t,
		Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true},
		traffic.Config{Kind: traffic.Bernoulli, N: 8, Load: 0.8, Seed: 11},
		20_000)

	if res.Delivered == 0 {
		t.Fatal("no traffic delivered; test is vacuous")
	}
	if got := o.Delivered.Value(); got != res.Delivered {
		t.Errorf("Delivered counter = %d, run delivered %d", got, res.Delivered)
	}
	// Every departure was started by exactly one read or write-through
	// wave, and after the drain every started wave has departed.
	if got := o.ReadWaves.Value() + o.CutThroughs.Value(); got != res.Delivered {
		t.Errorf("read+cut-through waves = %d, delivered %d", got, res.Delivered)
	}
	// Every accepted cell obtained exactly one write or write-through wave.
	if got, want := o.WriteWaves.Value()+o.CutThroughs.Value(), res.Offered-res.Dropped; got != want {
		t.Errorf("write+cut-through waves = %d, accepted %d", got, want)
	}
	if got := o.DropOverrun.Value() + o.DropBypass.Value() + o.DropPolicy.Value() + o.DropPushOut.Value(); got != res.Dropped {
		t.Errorf("drop counters = %d, run dropped %d", got, res.Dropped)
	}
	// The latency histogram saw every departure, and its mean matches.
	if got := o.CutLatency.Count(); got != res.Delivered {
		t.Errorf("latency histogram count = %d, delivered %d", got, res.Delivered)
	}
	mean := float64(o.CutLatency.Sum()) / float64(o.CutLatency.Count())
	if diff := mean - res.MeanCutLatency; diff > 0.01 || diff < -0.01 {
		t.Errorf("histogram mean latency %.3f, run mean %.3f", mean, res.MeanCutLatency)
	}
	// The observer samples occupancy at arbitration time (mid-Tick, after
	// a possible dequeue), the runner after the full Tick — so the
	// high-water mark can only trail the runner's peak, never exceed it.
	if hw := o.HighWater.Value(); hw <= 0 || hw > int64(res.MaxBuffered) {
		t.Errorf("high-water mark %d outside (0, %d]", hw, res.MaxBuffered)
	}
	// At sampling 1 the event stream carries one record per wave/departure.
	if got := sink.Count(obs.EvWaveEnd); int64(got) != res.Delivered {
		t.Errorf("wave-end events = %d, delivered %d", got, res.Delivered)
	}
	if got := sink.Count(obs.EvWriteWave); int64(got) != o.WriteWaves.Value() {
		t.Errorf("write-wave events = %d, counter %d", got, o.WriteWaves.Value())
	}
	if got := sink.Count(obs.EvReadWave); int64(got) != o.ReadWaves.Value() {
		t.Errorf("read-wave events = %d, counter %d", got, o.ReadWaves.Value())
	}
	if got := sink.Count(obs.EvCutThrough); int64(got) != o.CutThroughs.Value() {
		t.Errorf("cut-through events = %d, counter %d", got, o.CutThroughs.Value())
	}
	// The registry snapshot exposes the same numbers under the canonical
	// names — the exporter surface the cmd tools print.
	snap := reg.Snapshot()
	if snap.Counters["pipemem_delivered_total"] != res.Delivered {
		t.Errorf("snapshot delivered = %d, want %d", snap.Counters["pipemem_delivered_total"], res.Delivered)
	}
	if n := len(snap.GaugeVecs["pipemem_output_queue_depth"]); n != 8 {
		t.Errorf("queue-depth vector has %d slots, want 8", n)
	}
}

// TestObserverCountsDrops forces overrun drops with a tiny buffer under
// saturation and checks the drop counter tracks them.
func TestObserverCountsDrops(t *testing.T) {
	res, o, _, _ := observedRun(t,
		Config{Ports: 4, WordBits: 16, Cells: 6, CutThrough: true},
		traffic.Config{Kind: traffic.Saturation, N: 4, Seed: 3},
		10_000)
	if res.Dropped == 0 {
		t.Fatal("expected drops under saturation with a tiny buffer")
	}
	if got := o.DropOverrun.Value(); got != res.Dropped {
		t.Errorf("DropOverrun = %d, run dropped %d", got, res.Dropped)
	}
	if o.Stalls.Value() == 0 {
		t.Error("expected initiation stalls under saturation")
	}
}

// TestTraceEventJSON checks the fig. 5 record encoder emits valid JSON
// with the expected fields for every op kind.
func TestTraceEventJSON(t *testing.T) {
	e := TraceEvent{
		Cycle: 12,
		Ctrl: []Op{
			{Kind: OpWrite, In: 1, Addr: 3},
			{Kind: OpRead, Out: 0, Addr: 2},
			{Kind: OpWriteThrough, In: 2, Out: 3, Addr: 7},
			{Kind: OpNone},
		},
		InLatch:  []int{0, -1, 2, -1},
		OutDrive: []int{-1, 0, -1, 3},
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var dec struct {
		Cycle int64 `json:"cycle"`
		Ctrl  []struct {
			Op   string `json:"op"`
			In   *int   `json:"in"`
			Out  *int   `json:"out"`
			Addr *int   `json:"addr"`
		} `json:"ctrl"`
		InLatch  []int `json:"in_latch"`
		OutDrive []int `json:"out_drive"`
	}
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatalf("invalid JSON %s: %v", data, err)
	}
	if dec.Cycle != 12 || len(dec.Ctrl) != 4 {
		t.Fatalf("decoded %+v", dec)
	}
	if dec.Ctrl[0].Op != "W" || *dec.Ctrl[0].In != 1 || *dec.Ctrl[0].Addr != 3 {
		t.Errorf("write op decoded as %+v", dec.Ctrl[0])
	}
	if dec.Ctrl[2].Op != "T" || *dec.Ctrl[2].In != 2 || *dec.Ctrl[2].Out != 3 {
		t.Errorf("write-through op decoded as %+v", dec.Ctrl[2])
	}
	if dec.Ctrl[3].In != nil || dec.Ctrl[3].Addr != nil {
		t.Errorf("idle op carries fields: %+v", dec.Ctrl[3])
	}
	if dec.InLatch[2] != 2 || dec.OutDrive[3] != 3 {
		t.Errorf("vectors decoded as %+v", dec)
	}
}

// tickHarness builds the pooled steady-state injection loop the perf
// benchmarks use and returns the per-cycle closure.
func tickHarness(t *testing.T, cfg Config, tcfg traffic.Config, o *Observer) func() {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		s.SetObserver(o)
	}
	k := s.Config().Stages
	cs, err := traffic.NewCellStream(tcfg, k)
	if err != nil {
		t.Fatal(err)
	}
	pool := cell.NewPool(k)
	s.SetDrainRecycle(true)
	heads := make([]int, cfg.Ports)
	hc := make([]*cell.Cell, cfg.Ports)
	var seq uint64
	return func() {
		cs.Heads(heads)
		for j := range hc {
			hc[j] = nil
			if heads[j] != traffic.NoArrival {
				seq++
				hc[j] = pool.New(seq, j, heads[j], cfg.WordBits)
			}
		}
		s.Tick(hc)
		for _, d := range s.Drain() {
			pool.Put(d.Expected)
		}
	}
}

// TestTickZeroAllocDisabled pins the PR's non-negotiable: with no
// observer installed, the steady-state Tick path allocates nothing.
func TestTickZeroAllocDisabled(t *testing.T) {
	cfg := Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true}
	tick := tickHarness(t, cfg,
		traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42}, nil)
	for i := 0; i < 4*cfg.Cells; i++ {
		tick()
	}
	if allocs := testing.AllocsPerRun(2000, tick); allocs != 0 {
		t.Fatalf("disabled-obs Tick allocates %.2f/op, want 0", allocs)
	}
}

// TestTickZeroAllocObserved goes further: even with metrics and the ring
// tracer enabled (no external sink), the Tick path stays allocation-free —
// the pre-registration design means enabling metrics costs atomics, not
// garbage.
func TestTickZeroAllocObserved(t *testing.T) {
	cfg := Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true}
	o := NewObserver(obs.NewRegistry(), cfg.Ports)
	o.Tracer = obs.NewTracer(nil, 0, 1)
	tick := tickHarness(t, cfg,
		traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42}, o)
	for i := 0; i < 4*cfg.Cells; i++ {
		tick()
	}
	if allocs := testing.AllocsPerRun(2000, tick); allocs != 0 {
		t.Fatalf("metrics-enabled Tick allocates %.2f/op, want 0", allocs)
	}
}
