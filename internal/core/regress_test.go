package core

// Regression tests for three bugs fixed together with the hot-path
// overhaul: the utilization metric exceeding 1.0 on short runs, the
// missing range check in SetVCWeights, and silent cut-latency histogram
// truncation.

import (
	"errors"
	"strings"
	"testing"

	"pipemem/internal/traffic"
)

// TestUtilizationBounded: utilization used to normalize link activity by
// driven cycles only, so deliveries completing during the drain tail could
// push the ratio past 1.0 on short windows. The fraction of output-link
// cycles carrying data can never exceed 1.
func TestUtilizationBounded(t *testing.T) {
	const (
		n      = 4
		cycles = 12 // shorter than one cell time: most words drain after
	)
	s := mustSwitch(t, Config{Ports: n, WordBits: 16, Cells: 64, CutThrough: true})
	k := s.Config().Stages
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: n, Seed: 5}, k)
	res, err := RunTraffic(s, cs, cycles)
	if err != nil {
		t.Fatal(err)
	}
	// Guard that the scenario still exercises the bug: under the old
	// normalization (delivered words over driven cycles) this run reads
	// as more than 100% busy.
	if old := float64(res.Delivered*int64(k)) / float64(cycles*n); old <= 1.0 {
		t.Fatalf("scenario no longer regressive: old-formula utilization %.3f", old)
	}
	if res.Utilization > 1.0 {
		t.Fatalf("utilization %v > 1.0", res.Utilization)
	}
	if res.Utilization <= 0 {
		t.Fatalf("utilization %v, want positive", res.Utilization)
	}
}

// TestSetVCWeightsRange: an out-of-range output index must be rejected
// with ErrBadConfig (it used to index s.vcWeights out of bounds or, when
// the slice was unallocated, silently misconfigure).
func TestSetVCWeightsRange(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true, VCs: 2})
	for _, out := range []int{-1, 4, 99} {
		err := s.SetVCWeights(out, []int{1, 1})
		if !errors.Is(err, ErrBadConfig) {
			t.Fatalf("out=%d: got %v, want ErrBadConfig", out, err)
		}
		// Clearing weights must be range-checked the same way.
		if err := s.SetVCWeights(out, nil); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("out=%d, nil weights: got %v, want ErrBadConfig", out, err)
		}
	}
	if err := s.SetVCWeights(3, []int{2, 1}); err != nil {
		t.Fatalf("valid output rejected: %v", err)
	}
}

// TestCutLatencyOverflowSurfaced: head latencies beyond the histogram's
// resolved range used to vanish from every report. They must now be
// counted in RunResult.CutLatencyOverflow and flagged by String().
func TestCutLatencyOverflowSurfaced(t *testing.T) {
	// An all-to-one trace with a deep buffer: the hot output's queue fills
	// to ~Cells, so the deepest queued cells wait ≈ Cells·k cycles — far
	// past the 4096-cycle histogram limit.
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 600, CutThrough: true})
	k := s.Config().Stages
	const slots = 400
	sched := make([][]int, slots)
	for i := range sched {
		sched[i] = []int{0, 0, 0, 0}
	}
	cs := stream(t, traffic.Config{Kind: traffic.Trace, N: 4, Schedule: sched}, k)
	res, err := RunTraffic(s, cs, int64(slots*k))
	if err != nil {
		t.Fatal(err)
	}
	if res.CutLatencyOverflow == 0 {
		t.Fatalf("no overflow surfaced; max buffered %d, mean latency %.0f",
			res.MaxBuffered, res.MeanCutLatency)
	}
	if !strings.Contains(res.String(), "cutlat-overflow=") {
		t.Fatalf("String() hides the overflow: %s", res)
	}
	// The mean still accounts for the overflowed samples' true magnitude.
	if res.MeanCutLatency <= 0 {
		t.Fatalf("mean cut latency %v", res.MeanCutLatency)
	}
}
