package core

import (
	"fmt"
	"strconv"
	"strings"

	"pipemem/internal/cell"
	"pipemem/internal/obs"
)

// TraceEvent is a per-cycle snapshot of the control signals and datapath
// activity of the switch — the information fig. 5 of the paper plots: the
// stage-0 control word, its delayed copies at the other stages, the input
// register load enables, and the outgoing-link drives.
type TraceEvent struct {
	// Cycle is the clock cycle the event describes.
	Cycle int64
	// Ctrl[st] is the operation stage st performs in this cycle. Ctrl[0]
	// is the freshly arbitrated control word; Ctrl[s] equals the
	// previous cycle's Ctrl[s-1] (§3.3).
	Ctrl []Op
	// InLatch[i] is the word index input i latches at the end of this
	// cycle (0 = a new head), or -1 when the link is idle.
	InLatch []int
	// OutDrive[st] is the outgoing link that output register st drives
	// in this cycle, or -1.
	OutDrive []int
}

// String renders the event as one fig. 5-style line:
//
//	c=12 | M0:W(in1,a3) M1:R(out0,a2) M2:- M3:- | in: 0:h 1:2 | out: M1→0
func (e TraceEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "c=%-4d |", e.Cycle)
	for st, op := range e.Ctrl {
		fmt.Fprintf(&b, " M%d:%s", st, op)
	}
	b.WriteString(" | in:")
	any := false
	for i, j := range e.InLatch {
		if j < 0 {
			continue
		}
		any = true
		if j == 0 {
			fmt.Fprintf(&b, " %d:h", i)
		} else {
			fmt.Fprintf(&b, " %d:%d", i, j)
		}
	}
	if !any {
		b.WriteString(" -")
	}
	b.WriteString(" | out:")
	any = false
	for st, o := range e.OutDrive {
		if o < 0 {
			continue
		}
		any = true
		fmt.Fprintf(&b, " M%d→%d", st, o)
	}
	if !any {
		b.WriteString(" -")
	}
	return b.String()
}

// AppendJSON appends the event's compact JSON encoding to buf and
// returns the extended slice — the machine-readable form of the fig. 5
// line, implementing obs.JSONAppender so the control trace rides the
// same JSONL stream as the typed event taxonomy:
//
//	{"cycle":12,"ctrl":[{"op":"W","in":1,"addr":3},{"op":"-"}],
//	 "in_latch":[0,-1],"out_drive":[-1,0]}
func (e TraceEvent) AppendJSON(buf []byte) []byte {
	b := append(buf, `{"cycle":`...)
	b = strconv.AppendInt(b, e.Cycle, 10)
	b = append(b, `,"ctrl":[`...)
	for st, op := range e.Ctrl {
		if st > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"op":"`...)
		b = append(b, op.Kind.String()...)
		b = append(b, '"')
		switch op.Kind {
		case OpWrite:
			b = append(b, `,"in":`...)
			b = strconv.AppendInt(b, int64(op.In), 10)
		case OpRead:
			b = append(b, `,"out":`...)
			b = strconv.AppendInt(b, int64(op.Out), 10)
		case OpWriteThrough:
			b = append(b, `,"in":`...)
			b = strconv.AppendInt(b, int64(op.In), 10)
			b = append(b, `,"out":`...)
			b = strconv.AppendInt(b, int64(op.Out), 10)
		}
		if op.Kind != OpNone {
			b = append(b, `,"addr":`...)
			b = strconv.AppendInt(b, int64(op.Addr), 10)
		}
		b = append(b, '}')
	}
	b = append(b, `],"in_latch":[`...)
	for i, v := range e.InLatch {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	b = append(b, `],"out_drive":[`...)
	for i, v := range e.OutDrive {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']', '}')
}

// MarshalJSON implements json.Marshaler via AppendJSON.
func (e TraceEvent) MarshalJSON() ([]byte, error) { return e.AppendJSON(nil), nil }

// JSONTracer returns a SetTracer callback that encodes every per-cycle
// TraceEvent as one JSONL record on sink — the machine-readable
// replacement for printing TraceEvent.String lines.
func JSONTracer(sink *obs.JSONLSink) func(TraceEvent) {
	return func(e TraceEvent) { sink.Record(e) }
}

// emitTrace assembles and dispatches this cycle's TraceEvent. It runs
// after arbitration (so Ctrl[0] is the fresh control word) and before the
// ingress phase (InLatch is derived from the in-flight state plus the
// heads being injected this cycle).
func (s *Switch) emitTrace(c int64, heads []*cell.Cell) {
	ctrl := make([]Op, s.k)
	for st := range ctrl {
		ctrl[st] = s.ctrl[s.ctrlSlot(c, st)]
	}
	e := TraceEvent{
		Cycle:    c,
		Ctrl:     ctrl,
		InLatch:  make([]int, s.n),
		OutDrive: append([]int(nil), s.driveScratch...),
	}
	if e.OutDrive == nil {
		e.OutDrive = make([]int, s.k)
		for st := range e.OutDrive {
			e.OutDrive[st] = -1
		}
	}
	for i := 0; i < s.n; i++ {
		e.InLatch[i] = -1
		if heads != nil && heads[i] != nil {
			e.InLatch[i] = 0
			continue
		}
		if a := &s.inflight[i]; a.active {
			if j := c - a.head; j > 0 && j < int64(s.k) {
				e.InLatch[i] = int(j)
			}
		}
	}
	s.tracer(e)
}
