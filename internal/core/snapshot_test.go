package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"pipemem/internal/bufmgr"
	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// runnerTo drives a fresh (switch, stream, runner) triple for the given
// number of steps and returns it. polSpec optionally installs a bufmgr
// policy.
func runnerTo(t *testing.T, cfg Config, tc traffic.Config, cycles int64, polSpec string, steps int) *Runner {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if polSpec != "" {
		p, err := bufmgr.Parse(polSpec)
		if err != nil {
			t.Fatal(err)
		}
		s.SetBufferPolicy(p)
	}
	cs, err := traffic.NewCellStream(tc, cfg.Canonical().Stages)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(s, cs, cycles)
	for i := 0; i < steps && r.Step(); i++ {
	}
	return r
}

// TestSnapshotReplayEquivalence is the core-level replay-equivalence
// check: snapshot mid-run (including a JSON round trip of every state
// struct), rebuild, and require a bit-identical RunResult.
func TestSnapshotReplayEquivalence(t *testing.T) {
	cfg := Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true}
	tc := traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.85, Seed: 7}
	const cycles = 2000

	ref := runnerTo(t, cfg, tc, cycles, "dt:alpha=2", 0)
	want, err := ref.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Second run, interrupted at an awkward cycle and revived through the
	// full serialization path.
	r := runnerTo(t, cfg, tc, cycles, "dt:alpha=2", 777)
	swState, err := r.Switch().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stream := mustJSONRoundTrip(t, swState)
	runState := r.State()
	trafficState, err := streamOf(r).State()
	if err != nil {
		t.Fatal(err)
	}

	s2, err := NewFromSnapshot(stream)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := bufmgr.Parse("dt:alpha=2")
	s2.SetBufferPolicy(p)
	cs2, err := traffic.RestoreCellStream(tc, cfg.Canonical().Stages, trafficState)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(s2, cs2, cycles)
	if err := r2.RestoreState(runState); err != nil {
		t.Fatal(err)
	}
	got, err := r2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored run diverged:\n got  %+v\n want %+v", got, want)
	}
}

// streamOf reaches the runner's stream for tests.
func streamOf(r *Runner) *traffic.CellStream { return r.cs }

func mustJSONRoundTrip(t *testing.T, st *SwitchState) *SwitchState {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	out := new(SwitchState)
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// A snapshot taken with uncollected departures must be refused: the
// departure buffer's cells are mid-recycle.
func TestSnapshotRefusesUncollectedDepartures(t *testing.T) {
	s, _ := New(Config{Ports: 2, WordBits: 8, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	var seq uint64
	heads := make([]*cell.Cell, 2)
	for c := 0; c < 10*k && len(s.done) == 0; c++ {
		for i := range heads {
			heads[i] = nil
			if c%k == 0 {
				seq++
				heads[i] = cell.New(seq, i, (i+1)%2, k, 8)
			}
		}
		s.Tick(heads)
	}
	if len(s.done) == 0 {
		t.Fatal("no departure accumulated; scenario not reached")
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot with uncollected departures must fail")
	}
}

// TestAuditInvariantsCleanRun runs the auditor frequently through a loaded
// run (including drain) and expects silence.
func TestAuditInvariantsCleanRun(t *testing.T) {
	cfgs := []Config{
		{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true},
		{Ports: 4, WordBits: 16, Cells: 16, VCs: 2},
		{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true, LinkPipeline: 3},
	}
	for _, cfg := range cfgs {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cs, _ := traffic.NewCellStream(traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.9, Seed: 21}, s.Config().Stages)
		r := NewRunner(s, cs, 1500)
		for r.Step() {
			if err := s.AuditInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", s.Cycle(), err)
			}
		}
		if _, err := r.Result(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAuditDetectsCorruption plants bookkeeping corruption and expects the
// auditor to flag it.
func TestAuditDetectsCorruption(t *testing.T) {
	mk := func() *Switch {
		s, _ := New(Config{Ports: 4, WordBits: 16, Cells: 16, CutThrough: false})
		cs, _ := traffic.NewCellStream(traffic.Config{Kind: traffic.Saturation, N: 4, Load: 1, Seed: 5}, s.Config().Stages)
		r := NewRunner(s, cs, 200)
		for i := 0; i < 150; i++ {
			r.Step()
		}
		if s.Buffered() == 0 {
			t.Fatal("scenario needs buffered cells")
		}
		if err := s.AuditInvariants(); err != nil {
			t.Fatalf("pre-corruption audit failed: %v", err)
		}
		return s
	}

	s := mk()
	s.outOcc[0]++
	if err := s.AuditInvariants(); err == nil {
		t.Fatal("occupancy corruption went undetected")
	}

	s = mk()
	s.pendingWrites++
	if err := s.AuditInvariants(); err == nil {
		t.Fatal("pendingWrites corruption went undetected")
	}

	s = mk()
	for a := range s.refcnt {
		if s.refcnt[a] > 0 {
			s.refcnt[a]++
			break
		}
	}
	if err := s.AuditInvariants(); err == nil {
		t.Fatal("refcnt corruption went undetected")
	}

	s = mk()
	s.counter.Set("offered", s.counter.Get("offered")+1)
	if err := s.AuditInvariants(); err == nil {
		t.Fatal("conservation violation went undetected")
	}

	// §3.2 hazard: force two stages onto one bank in the upcoming cycle.
	s = mk()
	c := s.Cycle()
	s.ctrl[s.ctrlSlot(c, 0)] = Op{Kind: OpWrite, In: 0, Addr: 0}
	s.ctrl[s.ctrlSlot(c, 1)] = Op{Kind: OpRead, Out: 0, Addr: 0, Remap: true}
	s.halved = true
	s.stageDown[1] = true
	s.addrLimit = s.Config().Cells / 2
	if err := s.auditHazards(); err == nil {
		t.Fatal("bank collision went undetected")
	}
}

// TestAuditZeroAlloc pins the auditor's steady-state cost: on a warm
// switch (scratch table already built by the first call) a full invariant
// audit allocates nothing, so running it online every N cycles costs
// cache traffic, not garbage.
func TestAuditZeroAlloc(t *testing.T) {
	s, err := New(Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true})
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := traffic.NewCellStream(traffic.Config{Kind: traffic.Permutation, N: 8, Load: 1, Seed: 42}, s.Config().Stages)
	r := NewRunner(s, cs, 1<<20)
	for i := 0; i < 1024; i++ {
		r.Step()
	}
	if err := s.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(2000, func() {
		if err := s.AuditInvariants(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("AuditInvariants allocates %.2f/op on a warm switch, want 0", allocs)
	}
}
