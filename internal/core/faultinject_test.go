package core

import (
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// These tests validate the verification machinery itself: if the shared
// buffer, the control pipeline, or the output registers misbehaved, would
// the integrity checks notice? Faults are injected directly into the RTL
// state (same package), and the checks must trip.

// TestFaultMemoryBitFlip: flipping one stored bit must surface as exactly
// the corrupted cells' checksum mismatches — no silent delivery.
func TestFaultMemoryBitFlip(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: false})
	k := s.Config().Stages
	c := cell.New(1, 0, 1, k, 16)
	s.Tick([]*cell.Cell{c, nil})
	// Let the write wave finish, then corrupt stage 2 of the stored cell
	// before the (store-and-forward) read wave starts.
	for i := 0; i < k; i++ {
		s.Tick(nil)
	}
	if s.Buffered() != 1 {
		t.Fatalf("cell not buffered yet (%d)", s.Buffered())
	}
	// Find the allocated address: capacity 8, exactly one allocated.
	addr := -1
	for a := 0; a < s.cfg.Cells; a++ {
		if s.free.Allocated(a) {
			addr = a
			break
		}
	}
	if addr < 0 {
		t.Fatal("no allocated address found")
	}
	s.mem[2][addr] ^= 0x4 // single-event upset
	for i := 0; i < 4*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures", len(deps))
	}
	if deps[0].Cell.Equal(deps[0].Expected) {
		t.Fatal("bit flip not detected by the integrity check")
	}
	if got := s.Counters().Get("corrupt"); got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
	if deps[0].Cell.Words[2] == deps[0].Expected.Words[2] {
		t.Fatal("the corrupted word should be word 2")
	}
}

// TestFaultControlPipelineStall: freezing the control pipeline shift (a
// stuck-at fault on the fig. 5 shift path) must be caught by the
// delayed-copy invariant checker.
func TestFaultControlPipelineStall(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	var events []TraceEvent
	s.SetTracer(func(e TraceEvent) { events = append(events, e) })
	k := s.Config().Stages
	s.Tick([]*cell.Cell{cell.New(1, 0, 1, k, 16), nil})
	s.Tick(nil)
	// Fault: stage 2's control register sticks at a bogus write op.
	s.ctrl[2] = Op{Kind: OpWrite, In: 1, Addr: 7}
	s.Tick(nil)
	s.Tick(nil)
	violated := false
	for i := 1; i < len(events); i++ {
		for st := 1; st < k; st++ {
			if events[i].Ctrl[st] != events[i-1].Ctrl[st-1] {
				violated = true
			}
		}
	}
	if !violated {
		t.Fatal("control-pipeline checker failed to notice the stuck stage")
	}
}

// TestFaultInputRegisterCorruption: corrupting an input register between
// the arrival wave and the write wave is detected downstream.
func TestFaultInputRegisterCorruption(t *testing.T) {
	// Store-and-forward with a busy output so the write wave lags the
	// arrival and the fault window exists.
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	s.Tick([]*cell.Cell{cell.New(1, 0, 1, k, 16), nil})
	// Corrupt the head word after it latched (end of cycle 0) but before
	// the write wave reads it (cycle ≥ 1, stage 0).
	s.inReg[0][0] ^= 0x8000
	for i := 0; i < 4*k; i++ {
		s.Tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 || deps[0].Cell.Equal(deps[0].Expected) {
		t.Fatal("input-register corruption not detected")
	}
}

// TestFaultFreeListDoubleUse: making two descriptors share an address
// (the failure the free-list invariants exist to prevent) corrupts one of
// the two cells — and the run notices. Constructed indirectly: corrupt a
// memory word that a second cell then overwrites partially.
func TestFaultDetectionUnderLoad(t *testing.T) {
	// Continuous random corruption at a low rate must always be caught:
	// run with a corruptor goroutine-free deterministic schedule.
	s := mustSwitch(t, Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: false})
	k := s.Config().Stages
	cs := stream(t, traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.5, Seed: 55}, k)
	heads := make([]int, 4)
	hc := make([]*cell.Cell, 4)
	var seq uint64
	flips, caught := 0, int64(0)
	for c := int64(0); c < 20_000; c++ {
		cs.Heads(heads)
		for i := range hc {
			hc[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hc[i] = cell.New(seq, i, heads[i], k, 16)
			}
		}
		s.Tick(hc)
		s.Drain()
		// Every 500 cycles, flip a bit in a random-ish occupied address.
		if c%500 == 499 {
			for a := 0; a < s.cfg.Cells; a++ {
				if s.free.Allocated(a) && s.queues.Total() > 0 {
					s.mem[int(c)%k][a] ^= 1
					flips++
					break
				}
			}
		}
	}
	caught = s.Counters().Get("corrupt")
	if flips == 0 {
		t.Fatal("no faults injected; test vacuous")
	}
	// Not every flip corrupts a live word (the address may be mid-read,
	// or the flipped stage already transmitted), but a healthy majority
	// must be caught, and none may be "caught" spuriously beyond flips.
	if caught == 0 {
		t.Fatalf("0 of %d injected faults detected", flips)
	}
	if caught > int64(flips) {
		t.Fatalf("%d corruptions reported for %d injected faults", caught, flips)
	}
}
