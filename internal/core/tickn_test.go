package core

import (
	"fmt"
	"reflect"
	"testing"

	"pipemem/internal/bufmgr"
	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

// ticknConfig is the fast-path-capable shape the equivalence tests run:
// cut-through, no ECC, small buffer so admission policies actually bite.
func ticknConfig() Config {
	return Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true}
}

// genSchedule materializes a traffic stream into a per-cycle arrival
// table: sched[c] is nil for an empty cycle, else the destination per
// input (traffic.NoArrival for idle inputs). Both drivers replay the same
// table, so any divergence is the engine's, not the stream's.
func genSchedule(t testing.TB, tc traffic.Config, k int, cycles int) [][]int {
	t.Helper()
	cs, err := traffic.NewCellStream(tc, k)
	if err != nil {
		t.Fatal(err)
	}
	heads := make([]int, tc.N)
	sched := make([][]int, cycles)
	for c := range sched {
		if cs.Heads(heads) == 0 {
			continue
		}
		sched[c] = append([]int(nil), heads...)
	}
	return sched
}

// ticknHarness owns one switch driven from a shared schedule, logging
// every departure in completion order. The log lines carry everything a
// departure observably is — sequence number, output, the three timestamps,
// the initiation delay, and payload integrity — so equal logs mean the two
// drivers delivered the same cells at the same cycles in the same order.
type ticknHarness struct {
	t   *testing.T
	sw  *Switch
	seq uint64
	hc  []*cell.Cell
	log []string
}

func newTicknHarness(t *testing.T, cfg Config, polSpec string) *ticknHarness {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if polSpec != "" {
		p, err := bufmgr.Parse(polSpec)
		if err != nil {
			t.Fatal(err)
		}
		s.SetBufferPolicy(p)
	}
	return &ticknHarness{t: t, sw: s, hc: make([]*cell.Cell, cfg.Ports)}
}

// materialize builds the heads vector for one schedule row (nil row → nil
// vector, so the dead-cycle paths engage exactly as in production drivers).
func (h *ticknHarness) materialize(row []int) []*cell.Cell {
	if row == nil {
		return nil
	}
	k := h.sw.Config().Stages
	wb := h.sw.Config().WordBits
	for j := range h.hc {
		h.hc[j] = nil
		if row[j] != traffic.NoArrival {
			h.seq++
			h.hc[j] = cell.New(h.seq, j, row[j], k, wb)
		}
	}
	return h.hc
}

// collect drains completed departures into the log.
func (h *ticknHarness) collect() {
	for _, d := range h.sw.Drain() {
		ok := d.Cell != nil && d.Expected != nil && d.Cell.Equal(d.Expected)
		h.log = append(h.log, fmt.Sprintf("seq=%d out=%d in=%d headout=%d tailout=%d delay=%d intact=%v",
			d.Expected.Seq, d.Output, d.HeadIn, d.HeadOut, d.TailOut, d.InitDelay, ok))
	}
}

// faultAt schedules a memory upset to fire just before the tick of the
// given cycle — the same fire-before-Tick convention the fault engine uses.
type faultAt struct {
	cycle       int64
	stage, addr int
	mask        cell.Word
}

// runPerCycle replays the schedule one Tick per cycle, then ticks the
// drain tail — the reference semantics TickN must be bit-identical to.
func (h *ticknHarness) runPerCycle(sched [][]int, tail int64, faults []faultAt) {
	fire := func() {
		for _, f := range faults {
			if f.cycle == h.sw.Cycle() {
				h.sw.InjectMemoryFault(f.stage, f.addr, f.mask)
			}
		}
	}
	for _, row := range sched {
		fire()
		h.sw.Tick(h.materialize(row))
		h.collect()
	}
	for i := int64(0); i < tail; i++ {
		fire()
		h.sw.Tick(nil)
		h.collect()
	}
}

// runBatched replays the same schedule through TickN: one call per arrival
// front plus its trailing gap, with fault cycles forcing batch boundaries
// (a fault fires at a specific cycle, so the batch must stop there, just
// as the session runner's PreTick does per cycle).
func (h *ticknHarness) runBatched(sched [][]int, tail int64, faults []faultAt) {
	boundary := func(c int64) bool {
		for _, f := range faults {
			if f.cycle == c {
				return true
			}
		}
		return false
	}
	fire := func() {
		for _, f := range faults {
			if f.cycle == h.sw.Cycle() {
				h.sw.InjectMemoryFault(f.stage, f.addr, f.mask)
			}
		}
	}
	total := int64(len(sched)) + tail
	row := func(c int64) []int {
		if c < int64(len(sched)) {
			return sched[c]
		}
		return nil
	}
	c := int64(0)
	for c < total {
		fire()
		front := h.materialize(row(c))
		g := int64(1)
		for c+g < total && row(c+g) == nil && !boundary(c+g) {
			g++
		}
		h.sw.TickN(front, g)
		h.collect()
		c += g
	}
}

// scrubFreedMem zeroes the memory words of unreferenced buffer addresses.
// Their contents are dead state — a freed address is fully rewritten before
// any wave reads it again — but they can legitimately differ between two
// equivalent histories: serializing a snapshot materializes lazily deferred
// payloads into the array, while a run never snapshotted leaves those words
// untouched. Only valid while the bank remap is identity (no bypass).
func scrubFreedMem(st *SwitchState) {
	for addr, rc := range st.Refcnt {
		if rc != 0 {
			continue
		}
		for b := range st.Mem {
			st.Mem[b][addr] = 0
		}
	}
}

// checkEqual compares the complete observable record of two drives: the
// departure logs, the clocks, quiescence, and the full serialized state.
// scrubFreed relaxes the state comparison to live bytes only (see
// scrubFreedMem) — needed when exactly one side snapshotted mid-run.
func checkTicknEqual(t *testing.T, ref, bat *ticknHarness, scrubFreed bool) {
	t.Helper()
	if !reflect.DeepEqual(ref.log, bat.log) {
		n := len(ref.log)
		if len(bat.log) < n {
			n = len(bat.log)
		}
		for i := 0; i < n; i++ {
			if ref.log[i] != bat.log[i] {
				t.Fatalf("departure %d diverged:\n per-cycle %s\n batched   %s", i, ref.log[i], bat.log[i])
			}
		}
		t.Fatalf("departure counts diverged: per-cycle %d, batched %d", len(ref.log), len(bat.log))
	}
	if rc, bc := ref.sw.Cycle(), bat.sw.Cycle(); rc != bc {
		t.Fatalf("clocks diverged: per-cycle %d, batched %d", rc, bc)
	}
	if rq, bq := ref.sw.Quiescent(), bat.sw.Quiescent(); rq != bq {
		t.Fatalf("quiescence diverged: per-cycle %v, batched %v", rq, bq)
	}
	if err := ref.sw.AuditInvariants(); err != nil {
		t.Fatalf("per-cycle audit: %v", err)
	}
	if err := bat.sw.AuditInvariants(); err != nil {
		t.Fatalf("batched audit: %v", err)
	}
	rs, err := ref.sw.Snapshot()
	if err != nil {
		t.Fatalf("per-cycle snapshot: %v", err)
	}
	bs, err := bat.sw.Snapshot()
	if err != nil {
		t.Fatalf("batched snapshot: %v", err)
	}
	if scrubFreed {
		scrubFreedMem(rs)
		scrubFreedMem(bs)
	}
	if !reflect.DeepEqual(rs, bs) {
		t.Fatalf("serialized state diverged:\n per-cycle %+v\n batched   %+v", rs, bs)
	}
}

// TestTickNEquivalencePolicies is the satellite contract: TickN(heads, n)
// is bit-identical to Tick(heads) followed by n-1 Tick(nil), under every
// shared-buffer admission policy (each routes arrivals through different
// accept/evict paths, so each stresses different fast-path seams).
func TestTickNEquivalencePolicies(t *testing.T) {
	policies := []string{"", "share", "static:quota=8", "dt:alpha=2", "dd:target=8", "pushout"}
	cfg := ticknConfig()
	k := cfg.Canonical().Stages
	tail := int64(8*k + 64)
	for _, pol := range policies {
		name := pol
		if name == "" {
			name = "unmanaged"
		}
		t.Run(name, func(t *testing.T) {
			// Load high enough to overrun the 32-cell buffer, so drops and
			// policy verdicts land inside batches, not only at fronts.
			tc := traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.85, Seed: 19}
			sched := genSchedule(t, tc, k, 1200)
			ref := newTicknHarness(t, cfg, pol)
			bat := newTicknHarness(t, cfg, pol)
			ref.runPerCycle(sched, tail, nil)
			bat.runBatched(sched, tail, nil)
			checkTicknEqual(t, ref, bat, false)
			if !ref.sw.Quiescent() {
				t.Fatal("reference switch did not drain")
			}
		})
	}
}

// TestTickNEquivalenceLightLoad drives the shape the batched engine is
// for — long gaps between sparse arrivals — where the event-driven
// fast-forward collapses most of every TickN call.
func TestTickNEquivalenceLightLoad(t *testing.T) {
	cfg := ticknConfig()
	k := cfg.Canonical().Stages
	tc := traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.01, Seed: 23}
	sched := genSchedule(t, tc, k, 20000)
	tail := int64(8*k + 64)
	ref := newTicknHarness(t, cfg, "")
	bat := newTicknHarness(t, cfg, "")
	ref.runPerCycle(sched, tail, nil)
	bat.runBatched(sched, tail, nil)
	checkTicknEqual(t, ref, bat, false)
	if len(ref.log) == 0 {
		t.Fatal("light-load schedule delivered nothing; test is vacuous")
	}
}

// TestTickNEquivalenceMemFault checks the one fault kind the batched path
// keeps: memory upsets (InjectMemoryFault materializes any lazily deferred
// payload before flipping, so the flip lands on real bytes in either
// mode). Both drivers inject the identical upsets at the identical cycles;
// the corrupted departures must then be identical too — same cells, same
// cycles, same intact=false lines.
func TestTickNEquivalenceMemFault(t *testing.T) {
	cfg := ticknConfig()
	k := cfg.Canonical().Stages
	tc := traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.85, Seed: 31}
	sched := genSchedule(t, tc, k, 800)
	tail := int64(8*k + 64)
	faults := []faultAt{
		{cycle: 60, stage: 2, addr: 5, mask: 0x0004},
		{cycle: 61, stage: 2, addr: 5, mask: 0x0200},
		{cycle: 240, stage: 0, addr: 17, mask: 0x0001},
		{cycle: 241, stage: k - 1, addr: 3, mask: 0x8000},
		{cycle: 500, stage: 7 % k, addr: 30, mask: 0x0040},
	}
	ref := newTicknHarness(t, cfg, "dt:alpha=2")
	bat := newTicknHarness(t, cfg, "dt:alpha=2")
	ref.runPerCycle(sched, tail, faults)
	bat.runBatched(sched, tail, faults)
	checkTicknEqual(t, ref, bat, false)
	corrupt := 0
	for _, line := range ref.log {
		if line[len(line)-len("false"):] == "false" {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatal("no upset hit a live word; the fault schedule tests nothing")
	}
}

// TestTickNFastForward pins the O(1) fast-forward: once the switch is
// quiescent, a huge TickN must land on the exact clock per-cycle ticking
// would, with identical serialized state — and it must do so immediately
// (no possible per-cycle loop over 2^40 cycles completes in test time).
func TestTickNFastForward(t *testing.T) {
	cfg := ticknConfig()
	k := cfg.Canonical().Stages
	warm := func() *Switch {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A little traffic so the ctrl ring holds retiring waves at the
		// moment the jump starts, then drain to quiescence.
		for i := 0; i < 3; i++ {
			hc := make([]*cell.Cell, cfg.Ports)
			hc[0] = cell.New(uint64(i+1), 0, 1, k, cfg.WordBits)
			s.Tick(hc)
			for j := 0; j < k; j++ {
				s.Tick(nil)
			}
		}
		for !s.Quiescent() {
			s.Tick(nil)
		}
		s.Drain()
		return s
	}

	// Small jump vs the same count per-cycle: bit-identical state.
	a, b := warm(), warm()
	const small = 3 * 17
	a.TickN(nil, small)
	for i := 0; i < small; i++ {
		b.Tick(nil)
	}
	as, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as, bs) {
		t.Fatalf("jump state diverged from per-cycle state:\n jump      %+v\n per-cycle %+v", as, bs)
	}

	// Astronomical jump: only the O(1) path can finish this.
	c := warm()
	c0 := c.Cycle()
	const huge = int64(1) << 40
	c.TickN(nil, huge)
	if got := c.Cycle(); got != c0+huge {
		t.Fatalf("fast-forward clock: got %d, want %d", got, c0+huge)
	}
	if !c.Quiescent() {
		t.Fatal("fast-forward left a quiescent switch non-quiescent")
	}
	if err := c.AuditInvariants(); err != nil {
		t.Fatalf("audit after fast-forward: %v", err)
	}
	// And the switch still works afterwards: a cell injected after the
	// jump must come out intact.
	hc := make([]*cell.Cell, cfg.Ports)
	hc[2] = cell.New(999, 2, 0, k, cfg.WordBits)
	c.Tick(hc)
	for i := 0; i < 4*k && !c.Quiescent(); i++ {
		c.Tick(nil)
	}
	deps := c.Drain()
	if len(deps) != 1 || !deps[0].Cell.Equal(deps[0].Expected) {
		t.Fatalf("post-jump delivery broken: %d departures", len(deps))
	}
}

// FuzzTickN fuzzes the two knobs the deterministic tests fix by hand: the
// batch split (where TickN calls begin and end relative to arrival fronts
// and gaps) and the cut cycle (where the batched run is snapshotted,
// serialized, rebuilt and resumed). Whatever the fuzzer picks, the batched
// drive must reproduce the per-cycle departure log and final state.
func FuzzTickN(f *testing.F) {
	f.Add(uint16(19), uint16(200), []byte{3, 9, 1, 30})
	f.Add(uint16(7), uint16(0), []byte{})
	f.Add(uint16(301), uint16(77), []byte{255, 255, 0, 1, 16})
	f.Fuzz(func(t *testing.T, seed uint16, cut uint16, splits []byte) {
		cfg := ticknConfig()
		k := cfg.Canonical().Stages
		tc := traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.6, Seed: uint64(seed)}
		const cycles = 400
		sched := genSchedule(t, tc, k, cycles)
		tail := int64(8*k + 64)
		total := int64(cycles) + tail

		ref := newTicknHarness(t, cfg, "")
		ref.runPerCycle(sched, tail, nil)

		bat := newTicknHarness(t, cfg, "")
		row := func(c int64) []int {
			if c < int64(len(sched)) {
				return sched[c]
			}
			return nil
		}
		// The cut cycle folds into the driven window; a snapshot there
		// exercises serialization from whatever mode the batched engine is
		// in at an arbitrary point of an arbitrary split.
		cutAt := int64(cut) % total
		cutDone := false
		si := 0
		nextSplit := func() int64 {
			if len(splits) == 0 {
				return 1 << 30 // no split bytes: maximal batches
			}
			b := splits[si%len(splits)]
			si++
			return int64(b%16) + 1
		}
		c := int64(0)
		for c < total {
			front := bat.materialize(row(c))
			// The batch may not run past the next arrival (TickN carries
			// arrivals only in its first cycle) or past the cut.
			g := int64(1)
			limit := nextSplit()
			for c+g < total && g < limit && row(c+g) == nil && c+g != cutAt {
				g++
			}
			bat.sw.TickN(front, g)
			bat.collect()
			c += g
			if c == cutAt && !cutDone {
				cutDone = true
				st, err := bat.sw.Snapshot()
				if err != nil {
					t.Fatalf("snapshot at cut cycle %d: %v", cutAt, err)
				}
				st = mustJSONRoundTrip(t, st)
				s2, err := NewFromSnapshot(st)
				if err != nil {
					t.Fatalf("restore at cut cycle %d: %v", cutAt, err)
				}
				bat.sw = s2
			}
		}
		// The restored switch rebuilt its in-flight cells from the
		// serialized payloads, so Expected pointers differ but contents
		// must not: the log compares contents only. Freed memory words are
		// scrubbed from the comparison — serializing at the cut cycle
		// materialized lazy payloads the reference never flushed.
		checkTicknEqual(t, ref, bat, true)
	})
}
