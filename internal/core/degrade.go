package core

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/obs"
)

// Faulty-stage bypass and graceful degradation.
//
// The pipelined memory has no redundancy between stages: every cell needs
// one word in every one of the K banks, so a dead bank cannot simply be
// skipped. Instead, banks are paired (bank b with b^1; the odd bank out in
// an odd-K configuration pairs downward) and the buffer's address space is
// split in half. When bank b is mapped out:
//
//   - usable buffer addresses shrink to addrLimit = Cells/2;
//   - every access of a wave's stage b at address a < addrLimit is
//     redirected to the partner bank at address a + addrLimit — the upper
//     half of each healthy bank becomes the spare region for its partner;
//   - all resident cells are flushed ("drop-bypass" per queued copy) and
//     the free list is rebuilt over the low addresses, so no later read
//     ever targets a pre-bypass location;
//   - wave initiations are spaced two cycles apart (arbitrate), since a
//     redirected stage doubles the port load on its partner bank; with the
//     2-cycle cadence no two waves ever meet on one single-ported bank.
//
// Waves already in flight when the bypass trips keep their original bank
// schedule (Op.Remap is frozen at initiation): a read started before the
// map-out completes from the physical bank that held its data, and the
// stale tail of a flushed write harmlessly touches retired locations.
//
// The degradation mirrors §5's area-vs-capacity tradeoff at run time:
// losing one of K banks costs half the buffer capacity and half the peak
// initiation rate, but the switch keeps forwarding traffic and integrity
// checks stay honest. Losing both banks of a pair is unsurvivable; the
// switch keeps running but Health.Failed is raised and delivered data is
// no longer trustworthy.

// Health is a snapshot of the switch's fault-tolerance state, the
// run-time view a management plane would poll.
type Health struct {
	// StageDown[b] reports that memory bank b is mapped out.
	StageDown []bool
	// Bypassed lists the mapped-out banks in ascending order.
	Bypassed []int
	// Degraded reports that a bypass is active: the buffer runs at half
	// capacity and waves are initiated at most every other cycle.
	Degraded bool
	// Failed reports that both banks of a partner pair are down (or a
	// bypass had nowhere to redirect): the shared buffer can no longer
	// store cells reliably and delivered data is suspect.
	Failed bool
	// UsableCells is the current buffer capacity in cell addresses.
	UsableCells int
	// ECCCorrected, ECCUncorrectable and ECCHard mirror the
	// "ecc-corrected", "ecc-uncorrectable" and "ecc-hard" counters (hard:
	// corrected locations that failed their scrub-verify); BypassDrops
	// mirrors "drop-bypass" (queued copies flushed when a stage was mapped
	// out).
	ECCCorrected, ECCUncorrectable, ECCHard, BypassDrops int64
}

// Health reports the current fault-tolerance state.
func (s *Switch) Health() Health {
	h := Health{
		StageDown:        append([]bool(nil), s.stageDown...),
		Degraded:         s.halved,
		Failed:           s.failed,
		UsableCells:      s.addrLimit,
		ECCCorrected:     s.counter.Get("ecc-corrected"),
		ECCUncorrectable: s.counter.Get("ecc-uncorrectable"),
		ECCHard:          s.counter.Get("ecc-hard"),
		BypassDrops:      s.counter.Get("drop-bypass"),
	}
	for b, down := range s.stageDown {
		if down {
			h.Bypassed = append(h.Bypassed, b)
		}
	}
	return h
}

// partner returns the bank paired with st for bypass redirection.
func (s *Switch) partner(st int) int {
	p := st ^ 1
	if p >= s.k {
		p = st - 1
	}
	return p
}

// bankFor resolves a wave's (stage, address) access to a physical (bank,
// row). Only remapped waves (initiated under an active bypass) follow the
// redirect; their addresses are always below addrLimit, so the partner's
// upper half is in range.
func (s *Switch) bankFor(st, addr int, remap bool) (int, int) {
	if remap && s.halved && s.stageDown[st] && addr < s.addrLimit {
		if p := s.partner(st); !s.stageDown[p] {
			return p, addr + s.addrLimit
		}
	}
	return st, addr
}

// writeWord performs stage st's write of a wave at address addr. A bank
// with an injected stuck-at fault ignores writes (its cells hold a frozen
// pattern), which is what lets the ECC layer notice it on the read wave.
func (s *Switch) writeWord(st, addr int, remap bool, w cell.Word) {
	b, a := s.bankFor(st, addr, remap)
	if s.stuck != nil && s.stuck[b] {
		return
	}
	s.mem[s.memIdx(b, a)] = w
	if s.eccMem != nil {
		s.eccMem[b][a] = eccEncode(w, s.cfg.WordBits)
	}
}

// senseWord is what bank b's data lines present for row a: the stored
// word, or all-ones if the bank has a stuck-at fault.
func (s *Switch) senseWord(b, a int) cell.Word {
	if s.stuck != nil && s.stuck[b] {
		return cell.Word(^uint64(0)).Mask(s.cfg.WordBits)
	}
	return s.mem[s.memIdx(b, a)]
}

// readWord performs stage st's read of a wave at address addr, applying
// the ECC defense layer. Single-bit upsets are corrected and scrubbed
// back, with a read-after-write verify: a location that still fails after
// the scrub holds a hard fault ("ecc-hard") and counts toward the bank's
// bypass threshold, while a repaired transient does not. Multi-bit
// failures ("ecc-uncorrectable") always count toward the threshold. A
// stuck bank's data lines read all-ones regardless of what was written, so
// its reads fail their (stale) check bits one way or the other: either as
// outright uncorrectable words, or as "corrected" words whose scrub is
// silently ignored and caught by the verify.
func (s *Switch) readWord(st, addr int, remap bool) cell.Word {
	b, a := s.bankFor(st, addr, remap)
	w := s.senseWord(b, a)
	if s.eccMem == nil {
		return w
	}
	dec, status := eccDecode(w, s.eccMem[b][a], s.cfg.WordBits)
	switch status {
	case eccCorrected:
		s.counter.Inc("ecc-corrected", 1)
		if s.obs != nil {
			s.obs.ECCCorrected.Inc()
		}
		if s.stuck == nil || !s.stuck[b] {
			s.mem[s.memIdx(b, a)] = dec
			s.eccMem[b][a] = eccEncode(dec, s.cfg.WordBits)
		}
		if _, vs := eccDecode(s.senseWord(b, a), s.eccMem[b][a], s.cfg.WordBits); vs != eccClean {
			s.counter.Inc("ecc-hard", 1)
			s.stageErr[b]++
			if s.obs != nil {
				s.obs.ECCHard.Inc()
			}
		}
	case eccUncorrectable:
		s.counter.Inc("ecc-uncorrectable", 1)
		s.stageErr[b]++
		if s.obs != nil {
			s.obs.ECCUncorrectable.Inc()
		}
	}
	return dec
}

// mapOutBank takes bank b out of service: capacity halves, resident cells
// are flushed, and future waves redirect stage b to the partner bank's
// upper half. Idempotent per bank. Counted under "stage-bypass".
func (s *Switch) mapOutBank(b int) {
	if s.stageDown[b] {
		return
	}
	// Redirected accesses route every word through the fault layer; the
	// batched path must hand over before the address split takes effect.
	s.dropFast()
	s.stageDown[b] = true
	s.counter.Inc("stage-bypass", 1)
	if o := s.obs; o != nil {
		o.StageBypass.Inc()
		o.Tracer.Emit(obs.Event{Kind: obs.EvBypass, Cycle: s.cycle, In: -1, Out: -1, Addr: int32(b)})
	}
	if s.stageDown[s.partner(b)] || s.cfg.Cells < 2 {
		s.failed = true
	}
	if !s.halved {
		s.halved = true
		s.addrLimit = s.cfg.Cells / 2
	}
	// Flush every queued descriptor: resident cells may straddle the dead
	// bank and the address split invalidates their locations either way.
	for q := 0; q < s.queues.Queues(); q++ {
		for {
			node, ok := s.queues.Pop(q)
			if !ok {
				break
			}
			addr := s.nodes[node].addr
			s.counter.Inc("drop-bypass", 1)
			if s.obs != nil {
				s.obs.DropBypass.Inc()
			}
			s.nfree.Put(node)
			s.refcnt[addr]--
			if s.refcnt[addr] == 0 {
				s.free.Put(addr)
			}
		}
	}
	for o := range s.outOcc {
		s.outOcc[o] = 0 // every queue was just flushed
	}
	s.occMask = 0
	s.readFloor = 0
	// Rebuild the free list over the usable low addresses only; the upper
	// half of every bank is now the redirect region and the corresponding
	// addresses stay permanently retired (never handed out again).
	for {
		if _, ok := s.free.Get(); !ok {
			break
		}
	}
	for a := s.addrLimit - 1; a >= 0; a-- {
		s.free.Put(a)
	}
}

// MapOutStage manually maps out stage st — the maintenance path a
// management plane would use for a bank failing in ways ECC cannot see.
// Call it between Ticks. Reads already in flight complete from the
// physical bank, so mapping out a still-readable bank loses no data beyond
// the flushed buffer residents.
func (s *Switch) MapOutStage(st int) error {
	if st < 0 || st >= s.k {
		return fmt.Errorf("core: stage %d out of range 0…%d", st, s.k-1)
	}
	s.mapOutBank(st)
	return nil
}

// SetStageStuck injects (or clears) a stuck-at fault on bank st: writes
// are ignored and the data lines read all-ones. The fault engine's "stuck"
// events use this; with ECC armed the bank's words fail their check bits
// on every read until the bypass threshold maps the bank out.
func (s *Switch) SetStageStuck(st int, stuck bool) {
	if st < 0 || st >= s.k {
		return
	}
	// A stuck bank's behavior is per-word (writes dropped, reads all-ones):
	// inherently per-stage, so the exact path must run from here on.
	s.forceExact()
	if s.stuck == nil {
		s.stuck = make([]bool, s.k)
	}
	s.stuck[st] = stuck
}

// InjectMemoryFault XORs mask into the stored word of the given wave
// stage and buffer address — a single-event upset in the bank array. The
// check bits are deliberately left stale so the ECC layer sees the flip.
// The current bypass remap is applied, so the fault lands where live
// traffic will actually read.
func (s *Switch) InjectMemoryFault(stage, addr int, mask cell.Word) {
	if stage < 0 || stage >= s.k || addr < 0 || addr >= s.cfg.Cells {
		return
	}
	// A lazily deferred payload must land in the array before the upset
	// does, or the flip would hit stale bytes and vanish.
	s.materializeAddr(addr)
	b, a := s.bankFor(stage, addr, true)
	s.mem[s.memIdx(b, a)] ^= mask.Mask(s.cfg.WordBits)
}

// MemoryClean reports whether the word at (stage, addr) currently matches
// its check bits (vacuously true without ECC). Fault engines use it to
// keep at most one outstanding flip per word, the regime SEC-DED is
// guaranteed to correct.
func (s *Switch) MemoryClean(stage, addr int) bool {
	if stage < 0 || stage >= s.k || addr < 0 || addr >= s.cfg.Cells {
		return true
	}
	if s.eccMem == nil {
		return true
	}
	b, a := s.bankFor(stage, addr, true)
	_, status := eccDecode(s.mem[s.memIdx(b, a)], s.eccMem[b][a], s.cfg.WordBits)
	return status == eccClean
}

// InjectControlFault overwrites the control word currently latched at
// stage st — a glitch in the shifting control pipeline of §3.3. The next
// Tick executes the corrupted operation at that stage and shifts it
// onward like any other op.
func (s *Switch) InjectControlFault(st int, op Op) {
	if st < 0 || st >= s.k {
		return
	}
	// A glitch in one stage's latched control word is per-stage state the
	// batched path cannot express: hand over and stay on the exact path.
	// If the glitched slot held a wave the batched path had already
	// committed, that wave's memory traffic and departure stand (it ran to
	// completion at initiation); the injected op executes at the stages the
	// exact machine still owes the slot.
	s.forceExact()
	s.setCtrl(s.ctrlSlot(s.cycle, st), &op)
}

// InjectInputRegisterFault XORs mask into input in's register for word
// position word — an upset in the input latch row before the write wave
// copies it into the buffer.
func (s *Switch) InjectInputRegisterFault(in, word int, mask cell.Word) {
	if in < 0 || in >= s.n || word < 0 || word >= s.k {
		return
	}
	// Materialize the register rows before flipping bits in one (the
	// batched path does not maintain them per cycle), then keep the exact
	// path: only it reads the registers word by word.
	s.forceExact()
	s.inReg[in][word] ^= mask.Mask(s.cfg.WordBits)
}

// QueuedAt returns the number of queued copies (descriptors) that will
// still read buffer address addr — nonzero means the address holds live
// cell data worth targeting with a fault.
func (s *Switch) QueuedAt(addr int) int {
	if addr < 0 || addr >= s.cfg.Cells {
		return 0
	}
	return s.refcnt[addr]
}

// AddrStable reports that address addr holds a fully deposited cell whose
// read wave has not yet been initiated: its write wave has passed every
// stage and at least one descriptor still queues it. A single-bit fault
// injected into a stable word is read exactly once downstream (the first
// read scrubs it), so an engine flipping only stable, clean words gets an
// exact correction count.
func (s *Switch) AddrStable(addr int) bool {
	return s.QueuedAt(addr) > 0 && s.cycle >= s.writeStartAt[addr]+int64(s.k)
}
