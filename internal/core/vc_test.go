package core

import (
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/traffic"
)

func vcCell(seq uint64, src, dst, vc, k int) *cell.Cell {
	c := cell.New(seq, src, dst, k, 16)
	c.VC = vc
	return c
}

func TestVCConfigValidate(t *testing.T) {
	if got := (Config{Ports: 4}).Canonical().VCs; got != 1 {
		t.Fatalf("default VCs = %d, want 1", got)
	}
	if err := (Config{Ports: 4, VCs: -1}).Validate(); err == nil {
		t.Fatal("negative VCs accepted")
	}
	if err := (Config{Ports: 4, VCs: 4}).Validate(); err != nil {
		t.Fatalf("4 VCs rejected: %v", err)
	}
}

// TestVCBlockedChannelDoesNotBlockOthers is THE virtual-channel property
// ([KVES95], and the lane argument of [Dally90]): with VC 0's gate
// closed, cells on VC 1 to the same output keep flowing; a single FIFO
// per output could not do that.
func TestVCBlockedChannelDoesNotBlockOthers(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 16, CutThrough: true, VCs: 2})
	k := s.Config().Stages
	blocked := map[int]bool{0: true} // VC 0 has no credit
	s.SetVCGate(func(out, vc int) bool { return !blocked[vc] })

	// Input 0 sends a VC-0 cell, then input 1 a VC-1 cell, both to
	// output 1.
	var tick = func(heads []*cell.Cell) { s.Tick(heads) }
	tick([]*cell.Cell{vcCell(1, 0, 1, 0, k), nil})
	for i := 0; i < k; i++ {
		tick(nil)
	}
	tick([]*cell.Cell{nil, vcCell(2, 1, 1, 1, k)})
	for i := 0; i < 6*k; i++ {
		tick(nil)
	}
	deps := s.Drain()
	if len(deps) != 1 {
		t.Fatalf("%d departures with VC0 blocked, want only the VC1 cell", len(deps))
	}
	if deps[0].VC != 1 || deps[0].Cell.Seq != 2 {
		t.Fatalf("wrong cell escaped: seq=%d vc=%d", deps[0].Cell.Seq, deps[0].VC)
	}
	if s.QueuedFor(1) != 1 {
		t.Fatalf("VC0 cell not parked: queued=%d", s.QueuedFor(1))
	}

	// Open VC 0: the parked cell leaves.
	delete(blocked, 0)
	for i := 0; i < 6*k; i++ {
		tick(nil)
	}
	deps = s.Drain()
	if len(deps) != 1 || deps[0].VC != 0 || deps[0].Cell.Seq != 1 {
		t.Fatalf("VC0 cell did not drain after gate opened: %+v", deps)
	}
}

// TestVCRoundRobinFairness: with both VCs backlogged on one output, the
// link alternates between them.
func TestVCRoundRobinFairness(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 32, CutThrough: true, VCs: 2})
	k := s.Config().Stages
	var seq uint64
	// Interleave arrivals: input 0 sends VC0 cells, input 1 VC1 cells,
	// all to output 0, back to back.
	counts := map[int]int{}
	var order []int
	for c := 0; c < 200*k; c++ {
		var heads []*cell.Cell
		if c%k == 0 {
			seq += 2
			heads = []*cell.Cell{vcCell(seq, 0, 0, 0, k), vcCell(seq+1, 1, 0, 1, k)}
		}
		s.Tick(heads)
		for _, d := range s.Drain() {
			counts[d.VC]++
			order = append(order, d.VC)
		}
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("starved a VC: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair VC service: %v", counts)
	}
	// Strict alternation once both are backlogged.
	same := 0
	for i := k; i < len(order); i++ { // skip the start-up transient
		if order[i] == order[i-1] {
			same++
		}
	}
	if same > len(order)/10 {
		t.Fatalf("VCs not alternating: %d repeats of %d", same, len(order))
	}
}

// TestVCIntegrityRandom: random VCs under load, bit-exact delivery, and
// per-VC FIFO order.
func TestVCIntegrityRandom(t *testing.T) {
	const ports, vcs = 4, 3
	s := mustSwitch(t, Config{Ports: ports, WordBits: 16, Cells: 64, CutThrough: true, VCs: vcs})
	k := s.Config().Stages
	cs := stream(t, traffic.Config{Kind: traffic.Saturation, N: ports, Seed: 33}, k)
	heads := make([]int, ports)
	hc := make([]*cell.Cell, ports)
	var seq uint64
	lastSeq := map[[2]int]uint64{} // (out, vc) → last departed seq per input? track per (src,out,vc)
	_ = lastSeq
	delivered := 0
	for c := 0; c < 30_000; c++ {
		cs.Heads(heads)
		for i := range hc {
			hc[i] = nil
			if heads[i] != traffic.NoArrival {
				seq++
				hc[i] = vcCell(seq, i, heads[i], int(seq)%vcs, k)
			}
		}
		s.Tick(hc)
		for _, d := range s.Drain() {
			delivered++
			if !d.Cell.Equal(d.Expected) {
				t.Fatal("corruption with VCs")
			}
			if d.VC != d.Expected.VC {
				t.Fatalf("VC mangled: %d vs %d", d.VC, d.Expected.VC)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if got := s.Counters().Get("corrupt"); got != 0 {
		t.Fatalf("%d corrupt", got)
	}
}

// TestVCOutOfRangePanics: injecting a cell on a VC the switch does not
// have is a driver bug.
func TestVCOutOfRangePanics(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true, VCs: 2})
	k := s.Config().Stages
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Tick([]*cell.Cell{vcCell(1, 0, 1, 5, k), nil})
	for i := 0; i < 2*k; i++ {
		s.Tick(nil) // the write wave arbitration trips the check
	}
}
