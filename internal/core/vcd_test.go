package core

import (
	"strings"
	"testing"

	"pipemem/internal/cell"
)

// TestVCDExport renders the fig. 5 golden scenario as a VCD stream and
// checks structure and key value changes.
func TestVCDExport(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	var buf strings.Builder
	vw := NewVCDWriter(&buf, s, 16) // Telegraphos III clock
	s.SetTracer(vw.Trace)
	for c := int64(0); c < 16; c++ {
		var heads []*cell.Cell
		if c == 0 {
			heads = []*cell.Cell{cell.New(1, 0, 1, k, 16), nil}
		}
		s.Tick(heads)
	}
	if err := vw.Err(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	// Structure.
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module pipemem $end",
		"$var wire 2 o0 M0_op [1:0] $end",
		"$var wire 16 a3 M3_addr [15:0] $end",
		"$var wire 8 l1 in1_latch [7:0] $end",
		"$enddefinitions $end",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("VCD missing %q:\n%s", want, got[:min(len(got), 600)])
		}
	}
	// Timestamps scale by the 16 ns clock.
	for _, want := range []string{"#0\n", "#16\n", "#32\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("VCD missing timestamp %q", want)
		}
	}
	// The write-through wave at cycle 1 (time 16): op code b11 on M0.
	idx16 := strings.Index(got, "#16\n")
	idx32 := strings.Index(got, "#32\n")
	if idx16 < 0 || idx32 < 0 || !strings.Contains(got[idx16:idx32], "b11 o0") {
		t.Fatal("write-through not visible at time 16 on M0_op")
	}
	// Its delayed copy on M1 at time 32.
	idx48 := strings.Index(got, "#48\n")
	if idx48 < 0 || !strings.Contains(got[idx32:idx48], "b11 o1") {
		t.Fatal("delayed copy not visible at time 32 on M1_op")
	}
	// Idle stages read x addresses at time 0.
	if !strings.Contains(got[:idx16], "bx a0") {
		t.Fatal("idle address not x at time 0")
	}
}

// TestVCDChangeOnly: repeated idle cycles add timestamps but no repeated
// value lines (VCD is change-based).
func TestVCDChangeOnly(t *testing.T) {
	s := mustSwitch(t, Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	var buf strings.Builder
	vw := NewVCDWriter(&buf, s, 1)
	s.SetTracer(vw.Trace)
	for c := 0; c < 50; c++ {
		s.Tick(nil)
	}
	got := buf.String()
	// After the initial dump at #0, idle cycles contribute only "#t" lines.
	idx1 := strings.Index(got, "#1\n")
	if idx1 < 0 {
		t.Fatal("missing #1")
	}
	tail := got[idx1:]
	if strings.Contains(tail, " o0") || strings.Contains(tail, " a0") {
		t.Fatalf("idle cycles re-emitted unchanged values:\n%s", tail[:min(len(tail), 300)])
	}
}

func TestVCDBitsHelper(t *testing.T) {
	for _, tc := range []struct {
		v, w int
		want string
	}{
		{-1, 8, "bx"},
		{0, 8, "b0"},
		{1, 8, "b1"},
		{5, 8, "b101"},
		{255, 8, "b11111111"},
	} {
		if got := bitVec(tc.v, tc.w); got != tc.want {
			t.Errorf("bitVec(%d,%d) = %q, want %q", tc.v, tc.w, got, tc.want)
		}
	}
	if opBits(OpRead) != "b10" || opBits(OpNone) != "b00" {
		t.Error("opBits wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
