package core

import (
	"testing"

	"pipemem/internal/traffic"
)

// TestPhaseProfCounts drives a loaded switch with a profile attached and
// checks the arbitration accounting is internally consistent: every cycle
// arbitrates once, hits never exceed calls, scans only happen on calls,
// and the measured arbitration time is nonzero.
func TestPhaseProfCounts(t *testing.T) {
	s, err := New(Config{Ports: 8, WordBits: 16, Cells: 256, CutThrough: true})
	if err != nil {
		t.Fatal(err)
	}
	var p PhaseProf
	s.SetPhaseProf(&p)
	cs, err := traffic.NewCellStream(
		traffic.Config{Kind: traffic.Bernoulli, N: 8, Load: 0.8, Seed: 11},
		s.Config().Stages)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 20_000
	res, err := RunTraffic(s, cs, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no traffic delivered; test is vacuous")
	}
	if p.ArbCalls == 0 || p.ArbNS <= 0 {
		t.Fatalf("arbitration never measured: calls %d, ns %d", p.ArbCalls, p.ArbNS)
	}
	// One picker runs first every arbitrate call; the second only on the
	// first's miss. Read priority is the default, so ReadCalls equals
	// ArbCalls and WriteCalls covers exactly the read misses.
	if p.ReadCalls != p.ArbCalls {
		t.Errorf("read calls %d ≠ arbitrate calls %d", p.ReadCalls, p.ArbCalls)
	}
	if want := p.ReadCalls - p.ReadHits; p.WriteCalls != want {
		t.Errorf("write calls %d ≠ read misses %d", p.WriteCalls, want)
	}
	if p.ReadHits > p.ReadCalls || p.WriteHits > p.WriteCalls {
		t.Errorf("hits exceed calls: read %d/%d, write %d/%d",
			p.ReadHits, p.ReadCalls, p.WriteHits, p.WriteCalls)
	}
	// Every delivered cell claimed exactly one read or write-through wave.
	if got := p.ReadHits + p.WriteHits; got < res.Delivered {
		t.Errorf("wave initiations %d < delivered %d", got, res.Delivered)
	}
	if p.WriteScans < p.WriteHits {
		t.Errorf("write scans %d < write hits %d (a hit examines ≥ 1 arrival)", p.WriteScans, p.WriteHits)
	}
	if p.ReadHits > 0 && p.ReadScans < p.ReadHits {
		t.Errorf("read scans %d < read hits %d", p.ReadScans, p.ReadHits)
	}

	// Add must sum every field.
	var sum PhaseProf
	sum.Add(&p)
	sum.Add(&p)
	if sum.ArbCalls != 2*p.ArbCalls || sum.ReadScans != 2*p.ReadScans ||
		sum.WriteScans != 2*p.WriteScans || sum.ArbNS != 2*p.ArbNS {
		t.Errorf("Add did not sum: %+v vs %+v", sum, p)
	}
}

// TestPhaseProfIdenticalRun checks profiling is observation only: the
// same workload with and without a profile attached delivers the same
// result.
func TestPhaseProfIdenticalRun(t *testing.T) {
	run := func(attach bool) RunResult {
		s, err := New(Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true})
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			s.SetPhaseProf(&PhaseProf{})
		}
		cs, err := traffic.NewCellStream(
			traffic.Config{Kind: traffic.Saturation, N: 4, Seed: 3},
			s.Config().Stages)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTraffic(s, cs, 8_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Delivered != b.Delivered || a.Dropped != b.Dropped ||
		a.MeanCutLatency != b.MeanCutLatency || a.Utilization != b.Utilization ||
		a.MaxBuffered != b.MaxBuffered {
		t.Errorf("profiling changed the run:\nwithout %+v\nwith    %+v", a, b)
	}
}

func TestTimerCostNS(t *testing.T) {
	c := TimerCostNS()
	if c <= 0 || c > 10_000 {
		t.Fatalf("timer cost %.1f ns implausible", c)
	}
}
