// Package core implements the paper's primary contribution: a
// cycle-accurate register-transfer-level model of the pipelined memory
// shared buffer switch (§3).
//
// # The model
//
// An n×n switch moves one w-bit word per link per clock cycle. The shared
// buffer consists of K memory stages M0…M(K-1) (K = 2n in the canonical
// configuration), each a single-ported RAM of A words of w bits. A cell
// (fixed-size packet) is exactly K words. Each incoming link has a row of
// K input registers; the arriving cell's word j is latched into register j.
// A single shared row of K output registers serves all outgoing links.
//
// Every operation is a wave (§3.2): a write wave initiated at cycle t
// copies input register s of its link into M_s at cycle t+s, for
// s = 0…K-1; a read wave loads output register s from M_s at cycle t+s,
// and the word is transmitted on the outgoing link at cycle t+s+1. All
// stages of a wave use the same buffer address. Control is generated only
// for stage 0 and shifts right one stage per cycle (§3.3, fig. 5).
//
// At most one wave is initiated per cycle — the staggered-initiation
// restriction of §3.4 — with priority to reads ("normally, higher priority
// is given to the outgoing links"). Cut-through is automatic (§3.3): a
// read wave may be initiated in any cycle at or after the cell's write
// wave, including the same cycle, in which case stage s both writes M_s
// and taps the bus into output register s (a write-through).
//
// Buffer management (free address list, per-output descriptor queues) is
// the orthogonal circuitry of §3.3, modeled with fifo.FreeList and
// fifo.MultiQueue.
package core

import (
	"errors"
	"fmt"
)

// ErrBadConfig is the sentinel wrapped by every Config validation error, so
// callers can test errors.Is(err, ErrBadConfig) regardless of which field
// was rejected.
var ErrBadConfig = errors.New("core: invalid configuration")

// Config parameterizes a pipelined memory shared buffer switch.
type Config struct {
	// Ports is n: the number of incoming links, equal to the number of
	// outgoing links.
	Ports int
	// Stages is K, the number of memory stages and the cell size in
	// words. 0 means the canonical 2·Ports. The paper requires the cell
	// size to be an integer multiple of the quantum; this model fixes it
	// at exactly one quantum (multi-quantum packets are sequences of
	// cells).
	Stages int
	// WordBits is w, the link and memory width in bits (1…64).
	WordBits int
	// Cells is A, the buffer capacity in cells (addresses per stage).
	Cells int
	// CutThrough enables automatic cut-through (§3.3). When false the
	// switch is store-and-forward: a cell becomes eligible for reading
	// only after its write wave has completed.
	CutThrough bool
	// NoReadPriority inverts the §3.3 default of serving outgoing links
	// first; used by ablation experiments only.
	NoReadPriority bool
	// VCs is the number of virtual channels per outgoing link. The
	// buffer-management circuitry keeps one logical queue of descriptors
	// per (output, VC) pair and serves a link's VCs round-robin — the
	// organization of the companion paper [KVES95] ("VC-level Flow
	// Control and Shared Buffering in the Telegraphos Switch") that §3.3
	// cites for the management circuits. 0 means 1 (plain per-output
	// queues). The shared data buffer itself is unchanged: VCs are
	// purely a descriptor-queue and flow-control notion, demonstrating
	// §3.3's point that buffer management "is orthogonal to the shared
	// buffer organization".
	VCs int
	// ECC enables per-word SEC-DED protection of the memory banks: each
	// stage stores eccCheckBits(WordBits)+1 extra bit columns per word,
	// single-bit upsets are corrected on the read wave ("ecc-corrected"
	// counter) and multi-bit failures are flagged ("ecc-uncorrectable")
	// instead of being silently delivered.
	ECC bool
	// BypassThreshold, when positive, arms faulty-stage bypass: a memory
	// bank that accumulates this many uncorrectable ECC errors is mapped
	// out — its words are redirected to its partner bank's upper address
	// half — and the switch keeps running at half buffer capacity and
	// halved initiation rate (graceful degradation; see Health). Requires
	// ECC (detection) and Cells ≥ 2 (somewhere to redirect to). 0 disables
	// automatic bypass; MapOutStage remains available.
	BypassThreshold int
	// LinkPipeline is the §4.3 optimization for very-high-speed
	// technologies: the long lines carrying the input and output link
	// data are split into this many extra pipeline stages each (with a
	// matching stage inserted into the word lines). All cell data are
	// delayed by an equal number of cycles on the way in and again on
	// the way out, so "the logic of the switch operation remains
	// unaffected" — end-to-end latency grows by exactly 2×LinkPipeline
	// cycles and nothing else changes. 0 disables the option.
	LinkPipeline int
}

// Canonical fills in defaults and returns the effective configuration.
func (c Config) Canonical() Config {
	if c.Stages == 0 {
		c.Stages = 2 * c.Ports
	}
	if c.VCs == 0 {
		c.VCs = 1
	}
	if c.WordBits == 0 {
		c.WordBits = 16
	}
	if c.Cells == 0 {
		c.Cells = 256
	}
	return c
}

// Validate reports whether the configuration is buildable. Every error
// wraps ErrBadConfig.
func (c Config) Validate() error {
	c = c.Canonical()
	if c.Ports < 1 {
		return fmt.Errorf("%w: ports = %d, need ≥ 1", ErrBadConfig, c.Ports)
	}
	if c.Stages < 2 {
		return fmt.Errorf("%w: stages = %d, need ≥ 2", ErrBadConfig, c.Stages)
	}
	if c.WordBits < 1 || c.WordBits > 64 {
		return fmt.Errorf("%w: word width %d out of 1…64", ErrBadConfig, c.WordBits)
	}
	if c.Cells < 1 {
		return fmt.Errorf("%w: capacity %d cells, need ≥ 1", ErrBadConfig, c.Cells)
	}
	if c.Stages < 2*c.Ports {
		// With fewer than 2n stages the one-initiation-per-cycle slot
		// budget (n reads + n writes per K cycles) exceeds capacity and
		// write deadlines can be missed; the paper always uses K = 2n.
		return fmt.Errorf("%w: %d stages < 2×%d ports; write deadlines not schedulable", ErrBadConfig, c.Stages, c.Ports)
	}
	if c.LinkPipeline < 0 {
		return fmt.Errorf("%w: negative link pipelining %d", ErrBadConfig, c.LinkPipeline)
	}
	if c.VCs < 1 {
		return fmt.Errorf("%w: %d virtual channels, need ≥ 1", ErrBadConfig, c.VCs)
	}
	if c.BypassThreshold < 0 {
		return fmt.Errorf("%w: negative bypass threshold %d", ErrBadConfig, c.BypassThreshold)
	}
	if c.BypassThreshold > 0 && !c.ECC {
		return fmt.Errorf("%w: stage bypass (threshold %d) requires ECC for error detection", ErrBadConfig, c.BypassThreshold)
	}
	if c.BypassThreshold > 0 && c.Cells < 2 {
		return fmt.Errorf("%w: stage bypass requires ≥ 2 cells of capacity, have %d", ErrBadConfig, c.Cells)
	}
	return nil
}

// CellWords returns the cell size in words (= Stages).
func (c Config) CellWords() int { return c.Canonical().Stages }

// CapacityBits returns the total buffer capacity in bits
// (Telegraphos III: 16 stages × 256 cells × 16 bits = 64 Kbit… each cell
// is 256 bits and the buffer holds 256 of them).
func (c Config) CapacityBits() int {
	c = c.Canonical()
	return c.Stages * c.Cells * c.WordBits
}
