package core

import "fmt"

// Online invariant auditing.
//
// AuditInvariants cross-checks the switch's redundant state against itself
// at a cycle boundary: conservation of cells, occupancy bookkeeping, the
// free lists' consistency with the reference counts, and §3.2's
// hazard-freedom (each memory bank accessed at most once per cycle). It is
// designed to run online — every N cycles of a production run — so the
// clean path allocates nothing and touches O(Cells + ports·VCs + stages)
// words; errors are constructed only on violation.

// AuditInvariants verifies the switch's internal invariants. It returns
// nil when every check passes and a descriptive error on the first
// violation. Call it between Ticks (any cycle boundary is valid).
//
// Conservation (offered == delivered + dropped + resident) is checked only
// while no multicast cell is resident: multicast counts one offered cell
// per arrival but one delivery per copy, so the unicast identity does not
// hold for it.
func (s *Switch) AuditInvariants() error {
	// Occupancy cross-consistency: per-output occupancy mirrors the VC
	// queue lengths it summarizes.
	totalQueued := 0
	for o := 0; o < s.n; o++ {
		sum := 0
		for vc := 0; vc < s.cfg.VCs; vc++ {
			sum += s.queues.Len(s.qidx(o, vc))
		}
		if s.outOcc[o] != sum {
			return fmt.Errorf("core: audit: output %d occupancy %d, but its VC queues hold %d", o, s.outOcc[o], sum)
		}
		totalQueued += sum
	}
	if s.queues.Total() != totalQueued {
		return fmt.Errorf("core: audit: multiqueue total %d, per-queue sum %d", s.queues.Total(), totalQueued)
	}

	// Reference counts vs the address free list. Below addrLimit an
	// address is allocated exactly while copies still queue it; at or
	// above addrLimit (possible only after a bypass halved the buffer)
	// addresses are permanently retired: marked allocated, never queued.
	refSum := 0
	multicast := false
	for a := 0; a < s.cfg.Cells; a++ {
		rc := s.refcnt[a]
		if rc < 0 {
			return fmt.Errorf("core: audit: address %d has negative refcnt %d", a, rc)
		}
		if rc > 1 {
			multicast = true
		}
		refSum += rc
		if a < s.addrLimit {
			if (rc > 0) != s.free.Allocated(a) {
				return fmt.Errorf("core: audit: address %d refcnt %d but free list says allocated=%v", a, rc, s.free.Allocated(a))
			}
		} else {
			if rc != 0 || !s.free.Allocated(a) {
				return fmt.Errorf("core: audit: retired address %d (limit %d) has refcnt %d, allocated=%v", a, s.addrLimit, rc, s.free.Allocated(a))
			}
		}
	}
	if refSum != s.queues.Total() {
		return fmt.Errorf("core: audit: refcnt sum %d, queued descriptors %d", refSum, s.queues.Total())
	}
	if got := s.nfree.Size() - s.nfree.Free(); got != s.queues.Total() {
		return fmt.Errorf("core: audit: %d descriptor nodes allocated, %d queued", got, s.queues.Total())
	}

	// Occupancy bounds.
	if b := s.queues.Total(); b > s.addrLimit {
		return fmt.Errorf("core: audit: %d cells buffered, capacity %d", b, s.addrLimit)
	}
	if f := s.free.Free(); f > s.addrLimit {
		return fmt.Errorf("core: audit: %d free addresses, capacity %d", f, s.addrLimit)
	}

	// pendingWrites mirrors the input rows still awaiting a write wave.
	pending := 0
	for i := range s.inflight {
		if a := &s.inflight[i]; a.active && !a.written {
			pending++
		}
	}
	if pending != s.pendingWrites {
		return fmt.Errorf("core: audit: pendingWrites %d, but %d input rows await a write wave", s.pendingWrites, pending)
	}

	// §4.3 delay-line census.
	if s.inDelay != nil {
		inDelay := 0
		for _, slot := range s.inDelay {
			for _, c := range slot {
				if c != nil {
					inDelay++
				}
			}
		}
		if inDelay != s.delayCount {
			return fmt.Errorf("core: audit: delayCount %d, but %d cells occupy the delay line", s.delayCount, inDelay)
		}
	}

	// §3.2 hazard-freedom for the upcoming cycle: stage st will execute
	// the op initiated at cycle-st, touching one physical bank (possibly
	// redirected by an active bypass). No two stages may meet on a bank —
	// the banks are single-ported.
	if err := s.auditHazards(); err != nil {
		return err
	}

	// Conservation: every cell the switch has counted as offered is
	// delivered, dropped, or still resident (input rows, buffer, egress).
	// The §4.3 delay line holds cells not yet counted offered, so it is
	// deliberately absent from both sides.
	if !multicast {
		offered := s.counter.Get("offered")
		resident := int64(s.Buffered() + s.inFlightCount() + s.egressWords())
		if got := s.counter.Get("delivered") + s.DroppedCells() + resident; got != offered {
			return fmt.Errorf("core: audit: conservation violated: offered %d, delivered+dropped+resident %d (resident %d)",
				offered, got, resident)
		}
	}
	return nil
}

// auditHazards checks that the control words the stages will execute in
// the upcoming cycle touch pairwise distinct physical banks (§3.2: "a
// given memory performs a single access per clock cycle").
func (s *Switch) auditHazards() error {
	c := s.cycle
	// seen[b] = stage that claims bank b this cycle, offset by +1 (0 =
	// unclaimed).
	if s.auditScratch == nil {
		s.auditScratch = make([]int, s.k)
	}
	seen := s.auditScratch
	for b := range seen {
		seen[b] = 0
	}
	for st := 0; st < s.k; st++ {
		op := s.ctrl[s.ctrlSlot(c, st)]
		if op.Kind == OpNone {
			continue
		}
		b, _ := s.bankFor(st, op.Addr, op.Remap)
		if prev := seen[b]; prev != 0 {
			return fmt.Errorf("core: audit: cycle %d: stages %d and %d both access bank %d (§3.2 hazard)", c, prev-1, st, b)
		}
		seen[b] = st + 1
	}
	return nil
}
