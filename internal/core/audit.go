package core

import "fmt"

// Online invariant auditing.
//
// AuditInvariants cross-checks the switch's redundant state against itself
// at a cycle boundary: conservation of cells, occupancy bookkeeping, the
// free lists' consistency with the reference counts, and §3.2's
// hazard-freedom (each memory bank accessed at most once per cycle). It is
// designed to run online — every N cycles of a production run — so the
// clean path allocates nothing and touches O(Cells + ports·VCs + stages)
// words; errors are constructed only on violation.

// AuditInvariants verifies the switch's internal invariants. It returns
// nil when every check passes and a descriptive error on the first
// violation. Call it between Ticks (any cycle boundary is valid).
//
// Conservation (offered == delivered + dropped + resident) is checked only
// while no multicast cell is resident: multicast counts one offered cell
// per arrival but one delivery per copy, so the unicast identity does not
// hold for it.
func (s *Switch) AuditInvariants() error {
	// Occupancy cross-consistency: per-output occupancy mirrors the VC
	// queue lengths it summarizes.
	totalQueued := 0
	for o := 0; o < s.n; o++ {
		sum := 0
		for vc := 0; vc < s.cfg.VCs; vc++ {
			sum += s.queues.Len(s.qidx(o, vc))
		}
		if s.outOcc[o] != sum {
			return fmt.Errorf("core: audit: output %d occupancy %d, but its VC queues hold %d", o, s.outOcc[o], sum)
		}
		if o < 64 {
			if got := s.occMask&(uint64(1)<<uint(o)) != 0; got != (sum > 0) {
				return fmt.Errorf("core: audit: output %d occupancy bit %v, but %d cells queued", o, got, sum)
			}
		}
		// The read fail-fast floor promises that no occupied output's
		// link frees before it; an occupied link free earlier would let
		// pickRead skip an initiable read wave.
		if s.readFloor > 0 && sum > 0 && s.linkFree[o] < s.readFloor {
			return fmt.Errorf("core: audit: read floor %d, but occupied output %d frees at %d", s.readFloor, o, s.linkFree[o])
		}
		totalQueued += sum
	}
	if s.queues.Total() != totalQueued {
		return fmt.Errorf("core: audit: multiqueue total %d, per-queue sum %d", s.queues.Total(), totalQueued)
	}

	// Reference counts vs the address free list. Below addrLimit an
	// address is allocated exactly while copies still queue it; at or
	// above addrLimit (possible only after a bypass halved the buffer)
	// addresses are permanently retired: marked allocated, never queued.
	refSum := 0
	multicast := false
	for a := 0; a < s.cfg.Cells; a++ {
		rc := s.refcnt[a]
		if rc < 0 {
			return fmt.Errorf("core: audit: address %d has negative refcnt %d", a, rc)
		}
		if rc > 1 {
			multicast = true
		}
		refSum += rc
		if a < s.addrLimit {
			if (rc > 0) != s.free.Allocated(a) {
				return fmt.Errorf("core: audit: address %d refcnt %d but free list says allocated=%v", a, rc, s.free.Allocated(a))
			}
		} else {
			if rc != 0 || !s.free.Allocated(a) {
				return fmt.Errorf("core: audit: retired address %d (limit %d) has refcnt %d, allocated=%v", a, s.addrLimit, rc, s.free.Allocated(a))
			}
		}
	}
	if refSum != s.queues.Total() {
		return fmt.Errorf("core: audit: refcnt sum %d, queued descriptors %d", refSum, s.queues.Total())
	}
	if got := s.nfree.Size() - s.nfree.Free(); got != s.queues.Total() {
		return fmt.Errorf("core: audit: %d descriptor nodes allocated, %d queued", got, s.queues.Total())
	}

	// Occupancy bounds.
	if b := s.queues.Total(); b > s.addrLimit {
		return fmt.Errorf("core: audit: %d cells buffered, capacity %d", b, s.addrLimit)
	}
	if f := s.free.Free(); f > s.addrLimit {
		return fmt.Errorf("core: audit: %d free addresses, capacity %d", f, s.addrLimit)
	}

	// pendingWrites (count and bitset) mirrors the input rows still
	// awaiting a write wave.
	pending := 0
	for i := range s.inflight {
		waiting := false
		if a := &s.inflight[i]; a.active && !a.written {
			pending++
			waiting = true
		}
		if i < 64 {
			if got := s.pendMask&(uint64(1)<<uint(i)) != 0; got != waiting {
				return fmt.Errorf("core: audit: input %d pending bit %v, but awaiting-write is %v", i, got, waiting)
			}
		}
	}
	if pending != s.pendingWrites {
		return fmt.Errorf("core: audit: pendingWrites %d, but %d input rows await a write wave", s.pendingWrites, pending)
	}

	// SoA control-ring bookkeeping: the live-op census, the wave bitset
	// and the committed mask must all mirror the ring (a committed bit is
	// only meaningful on a slot holding a live op).
	ringOps := 0
	var waveMask uint64
	for slot := range s.ctrl {
		if s.ctrl[slot].Kind != OpNone {
			ringOps++
			if slot < 64 {
				waveMask |= uint64(1) << uint(slot)
			}
		}
	}
	if ringOps != s.ringOps {
		return fmt.Errorf("core: audit: ringOps %d, but %d live control words", s.ringOps, ringOps)
	}
	if s.k <= 64 && waveMask != s.waveMask {
		return fmt.Errorf("core: audit: waveMask %#x, but live control words form %#x", s.waveMask, waveMask)
	}
	if s.committed&^s.waveMask != 0 {
		return fmt.Errorf("core: audit: committed mask %#x marks slots outside the wave mask %#x", s.committed, s.waveMask)
	}

	// Departure-completion ring census.
	tx := 0
	for i := range s.departAt {
		if s.departAt[i].r != nil {
			tx++
		}
	}
	if tx != s.txPending {
		return fmt.Errorf("core: audit: txPending %d, but %d departures posted to the completion ring", s.txPending, tx)
	}

	// Egress single-slot bookkeeping: on the fast path the reassembly
	// rings stay empty and each output's sole in-flight transmission is
	// cached in rxHead, 1:1 with a posted completion; on the exact path
	// rxHead mirrors the ring front.
	if s.fastMode {
		heads := 0
		for o := range s.egress {
			if s.egress[o].Len() != 0 {
				return fmt.Errorf("core: audit: fast path with %d records in egress ring %d", s.egress[o].Len(), o)
			}
			if s.rxHead[o] != nil {
				heads++
			}
		}
		if heads != s.txPending {
			return fmt.Errorf("core: audit: %d cached egress heads, but %d departures pending completion", heads, s.txPending)
		}
	} else {
		for o := range s.egress {
			front, _ := s.egress[o].Front()
			if s.rxHead[o] != front {
				return fmt.Errorf("core: audit: output %d cached egress head does not mirror its ring front", o)
			}
		}
	}

	// Deferred-deposit table census: every lazy entry belongs to an
	// allocated unicast address on the fast path, and the live count
	// matches (the cold seams rely on it to skip the scan).
	lazy := 0
	for a, lc := range s.memLazy {
		if lc == nil {
			continue
		}
		lazy++
		if !s.fastMode {
			return fmt.Errorf("core: audit: address %d payload still deferred outside the fast path", a)
		}
		if s.refcnt[a] < 1 {
			return fmt.Errorf("core: audit: address %d payload deferred but refcnt %d", a, s.refcnt[a])
		}
	}
	if lazy != s.lazyCount {
		return fmt.Errorf("core: audit: lazyCount %d, but %d payloads deferred", s.lazyCount, lazy)
	}

	// §4.3 delay-line census.
	if s.inDelay != nil {
		inDelay := 0
		for _, slot := range s.inDelay {
			for _, c := range slot {
				if c != nil {
					inDelay++
				}
			}
		}
		if inDelay != s.delayCount {
			return fmt.Errorf("core: audit: delayCount %d, but %d cells occupy the delay line", s.delayCount, inDelay)
		}
	}

	// §3.2 hazard-freedom for the upcoming cycle: stage st will execute
	// the op initiated at cycle-st, touching one physical bank (possibly
	// redirected by an active bypass). No two stages may meet on a bank —
	// the banks are single-ported.
	if err := s.auditHazards(); err != nil {
		return err
	}

	// Conservation: every cell the switch has counted as offered is
	// delivered, dropped, or still resident (input rows, buffer, egress).
	// The §4.3 delay line holds cells not yet counted offered, so it is
	// deliberately absent from both sides.
	if !multicast {
		offered := s.counter.Get("offered")
		resident := int64(s.Buffered() + s.inFlightCount() + s.egressWords())
		if got := s.counter.Get("delivered") + s.DroppedCells() + resident; got != offered {
			return fmt.Errorf("core: audit: conservation violated: offered %d, delivered+dropped+resident %d (resident %d)",
				offered, got, resident)
		}
	}
	return nil
}

// auditHazards checks that the control words the stages will execute in
// the upcoming cycle touch pairwise distinct physical banks (§3.2: "a
// given memory performs a single access per clock cycle").
func (s *Switch) auditHazards() error {
	c := s.cycle
	// seen[b] = stage that claims bank b this cycle, offset by +1 (0 =
	// unclaimed).
	if s.auditScratch == nil {
		s.auditScratch = make([]int, s.k)
	}
	seen := s.auditScratch
	for b := range seen {
		seen[b] = 0
	}
	for st := 0; st < s.k; st++ {
		op := s.ctrl[s.ctrlSlot(c, st)]
		if op.Kind == OpNone {
			continue
		}
		b, _ := s.bankFor(st, op.Addr, op.Remap)
		if prev := seen[b]; prev != 0 {
			return fmt.Errorf("core: audit: cycle %d: stages %d and %d both access bank %d (§3.2 hazard)", c, prev-1, st, b)
		}
		seen[b] = st + 1
	}
	return nil
}
