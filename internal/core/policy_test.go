package core

import (
	"errors"
	"testing"

	"pipemem/internal/bufmgr"
	"pipemem/internal/cell"
	"pipemem/internal/obs"
	"pipemem/internal/traffic"
)

// Integration tests for the shared-buffer management layer: every policy
// must keep the conservation invariant (offered = delivered + dropped +
// pending — RunTraffic fails the run otherwise), the drop breakdown must
// reconcile, and the threshold policies must actually deliver the
// isolation they promise.

// runPolicy drives a switch under the given policy spec and traffic.
func runPolicy(t *testing.T, spec string, cfg Config, tcfg traffic.Config, cycles int64) RunResult {
	t.Helper()
	s := mustSwitch(t, cfg)
	if spec != "" {
		p, err := bufmgr.Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		s.SetBufferPolicy(p)
	}
	cs := stream(t, tcfg, s.Config().Stages)
	res, err := RunTraffic(s, cs, cycles)
	if err != nil {
		t.Fatalf("policy %q: %v", spec, err)
	}
	// After the drain the buffer is empty; the O(1) per-output occupancy
	// must agree.
	for o := 0; o < cfg.Ports; o++ {
		if q := s.QueuedFor(o); q != 0 {
			t.Fatalf("policy %q: output %d occupancy %d after drain", spec, o, q)
		}
	}
	return res
}

// coldLoss sums losses on every output except hot.
func coldLoss(res RunResult, hot int) int64 {
	var sum int64
	for o, d := range res.OutputDrops {
		if o != hot {
			sum += d
		}
	}
	return sum
}

// TestPolicyConservationAndAccounting runs every built-in policy (plus
// parameterized variants) under hotspot overload — the regime that
// exercises drops and push-outs — and checks the books: RunTraffic's
// internal conservation gate passed, the drop breakdown sums to Dropped,
// and the per-input/per-output loss vectors reconcile with the totals.
func TestPolicyConservationAndAccounting(t *testing.T) {
	cfg := Config{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true}
	specs := append(bufmgr.Specs(),
		"dt:alpha=0.5", "dt:alpha=4", "static:quota=2", "dd:target=64")
	for _, kind := range []traffic.Kind{traffic.Hotspot, traffic.Bursty} {
		for _, spec := range specs {
			tcfg := traffic.Config{Kind: kind, N: 4, Load: 0.9, Seed: 7}
			if kind == traffic.Hotspot {
				tcfg.HotFrac = 0.6
			} else {
				tcfg.BurstLen = 8
			}
			res := runPolicy(t, spec, cfg, tcfg, 30_000)
			if res.Delivered == 0 {
				t.Fatalf("%v/%q: nothing delivered", kind, spec)
			}
			if got := res.DropOverrun + res.DropPolicy + res.DropPushOut; got != res.Dropped {
				t.Errorf("%v/%q: breakdown %d ≠ dropped %d", kind, spec, got, res.Dropped)
			}
			var inSum, outSum int64
			for _, d := range res.InputDrops {
				inSum += d
			}
			for _, d := range res.OutputDrops {
				outSum += d
			}
			// Arrival-side losses (overrun + policy) are booked per input;
			// all losses are booked per destination output.
			if want := res.DropOverrun + res.DropPolicy; inSum != want {
				t.Errorf("%v/%q: input drops %d ≠ overrun+policy %d", kind, spec, inSum, want)
			}
			if outSum != res.Dropped {
				t.Errorf("%v/%q: output drops %d ≠ dropped %d", kind, spec, outSum, res.Dropped)
			}
		}
	}
}

// TestInputStallsSurfaceBackpressure pins the silent-retry fix: under a
// hotspot that exhausts a small buffer, the per-input stall counters must
// show the waiting that used to be invisible.
func TestInputStallsSurfaceBackpressure(t *testing.T) {
	cfg := Config{Ports: 4, WordBits: 16, Cells: 8, CutThrough: true}
	tcfg := traffic.Config{Kind: traffic.Hotspot, N: 4, Load: 0.95, HotFrac: 0.9, Seed: 5}
	res := runPolicy(t, "", cfg, tcfg, 20_000)
	if len(res.InputStalls) != cfg.Ports {
		t.Fatalf("InputStalls has %d entries, want %d", len(res.InputStalls), cfg.Ports)
	}
	var stalls int64
	for _, v := range res.InputStalls {
		stalls += v
	}
	if stalls == 0 {
		t.Fatal("no input stalls recorded under buffer exhaustion")
	}
	if res.Dropped > 0 {
		var drops int64
		for _, v := range res.InputDrops {
			drops += v
		}
		if drops != res.Dropped {
			t.Fatalf("per-input drops %d ≠ dropped %d (complete sharing loses only at inputs)", drops, res.Dropped)
		}
	}
}

// TestDynamicThresholdProtectsColdPorts mirrors the acceptance criterion
// at test scale: under hotspot overload, the Choudhury–Hahne threshold
// must lose strictly fewer non-hot-port cells than both the static
// partition and complete sharing, because it caps the hot queue while
// letting cold queues borrow the headroom.
func TestDynamicThresholdProtectsColdPorts(t *testing.T) {
	cfg := Config{Ports: 8, WordBits: 16, Cells: 32, CutThrough: true}
	tcfg := traffic.Config{Kind: traffic.Hotspot, N: 8, Load: 0.9, HotFrac: 0.5, Seed: 4242}
	const cycles = 120_000
	cold := map[string]int64{}
	for _, spec := range []string{"share", "static", "dt"} {
		res := runPolicy(t, spec, cfg, tcfg, cycles)
		cold[spec] = coldLoss(res, tcfg.HotPort)
		t.Logf("%-7s dropped=%d (overrun=%d policy=%d pushout=%d) cold-loss=%d",
			spec, res.Dropped, res.DropOverrun, res.DropPolicy, res.DropPushOut, cold[spec])
	}
	if cold["dt"] >= cold["static"] {
		t.Errorf("dt cold-port loss %d not strictly below static partition %d", cold["dt"], cold["static"])
	}
	if cold["dt"] >= cold["share"] {
		t.Errorf("dt cold-port loss %d not strictly below complete sharing %d", cold["dt"], cold["share"])
	}
}

// TestPushOutShiftsLossToHog: with the preemptive policy, a full buffer
// admits cold-port arrivals by evicting the hog's cells, so push-outs
// land overwhelmingly on the hot output and every loss is a push-out
// (the policy never refuses an arrival).
func TestPushOutShiftsLossToHog(t *testing.T) {
	cfg := Config{Ports: 4, WordBits: 16, Cells: 8, CutThrough: true}
	tcfg := traffic.Config{Kind: traffic.Hotspot, N: 4, Load: 0.95, HotFrac: 0.8, Seed: 13}
	res := runPolicy(t, "pushout", cfg, tcfg, 40_000)
	if res.DropPushOut == 0 {
		t.Fatal("no push-outs under hotspot overload; test is vacuous")
	}
	if res.DropPolicy != 0 {
		t.Errorf("push-out policy refused %d arrivals; it must only preempt", res.DropPolicy)
	}
	hot := res.OutputDrops[tcfg.HotPort]
	if cold := coldLoss(res, tcfg.HotPort); hot <= cold {
		t.Errorf("hot-port loss %d not above cold-port loss %d under LQF push-out", hot, cold)
	}
}

// TestPolicyTickZeroAlloc extends the zero-alloc pin to the policied
// admission path: consulting a policy, dropping, and pushing out must
// allocate nothing (the State adapter is pre-boxed, verdicts are
// values).
func TestPolicyTickZeroAlloc(t *testing.T) {
	for _, spec := range []string{"dt:alpha=0.5", "pushout", "static:quota=2"} {
		p, err := bufmgr.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		// A small buffer under a hard hotspot keeps the drop/push-out
		// paths hot during the measured window.
		cfg := Config{Ports: 8, WordBits: 16, Cells: 8, CutThrough: true}
		tick := tickHarnessPolicy(t, cfg,
			traffic.Config{Kind: traffic.Hotspot, N: 8, Load: 0.95, HotFrac: 0.8, Seed: 42}, p)
		for i := 0; i < 4*256; i++ {
			tick()
		}
		if allocs := testing.AllocsPerRun(2000, tick); allocs != 0 {
			t.Fatalf("policy %q: Tick allocates %.2f/op, want 0", spec, allocs)
		}
	}
}

// tickHarnessPolicy is tickHarness with an admission policy installed
// (the shared helper doesn't expose the switch, so build it here).
func tickHarnessPolicy(t *testing.T, cfg Config, tcfg traffic.Config, p bufmgr.Policy) func() {
	t.Helper()
	s := mustSwitch(t, cfg)
	s.SetBufferPolicy(p)
	k := s.Config().Stages
	cs := stream(t, tcfg, k)
	pool := cell.NewPool(k)
	s.SetDrainRecycle(true)
	heads := make([]int, cfg.Ports)
	hc := make([]*cell.Cell, cfg.Ports)
	var seq uint64
	return func() {
		cs.Heads(heads)
		for j := range hc {
			hc[j] = nil
			if heads[j] != traffic.NoArrival {
				seq++
				hc[j] = pool.New(seq, j, heads[j], cfg.WordBits)
			}
		}
		s.Tick(hc)
		for _, d := range s.Drain() {
			pool.Put(d.Expected)
		}
	}
}

// FuzzPolicyConservation fuzzes the spec parser end to end: any spec the
// parser accepts must drive a full traffic run without panics and with
// the conservation invariant intact (RunTraffic errors on violation).
func FuzzPolicyConservation(f *testing.F) {
	for _, s := range bufmgr.Specs() {
		f.Add(s, uint64(1))
	}
	f.Add("dt:alpha=0.25", uint64(7))
	f.Add("static:quota=1", uint64(9))
	f.Add("dd:target=8", uint64(3))
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		p, err := bufmgr.Parse(spec)
		if err != nil {
			if !errors.Is(err, bufmgr.ErrBadConfig) {
				t.Fatalf("Parse(%q) error %v does not wrap ErrBadConfig", spec, err)
			}
			return
		}
		s, err := New(Config{Ports: 4, WordBits: 8, Cells: 8, CutThrough: true})
		if err != nil {
			t.Fatal(err)
		}
		s.SetBufferPolicy(p)
		cs, err := traffic.NewCellStream(
			traffic.Config{Kind: traffic.Hotspot, N: 4, Load: 0.9, HotFrac: 0.7, Seed: seed}, s.Config().Stages)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTraffic(s, cs, 3_000)
		if err != nil {
			t.Fatalf("policy %q: %v", p.Name(), err)
		}
		if got := res.DropOverrun + res.DropPolicy + res.DropPushOut; got != res.Dropped {
			t.Fatalf("policy %q: breakdown %d ≠ dropped %d", p.Name(), got, res.Dropped)
		}
	})
}

// TestPolicyObserverReconciles: the policy drop counters exported through
// the observer must match the run's own accounting, including the
// per-port gauge vectors.
func TestPolicyObserverReconciles(t *testing.T) {
	cfg := Config{Ports: 4, WordBits: 16, Cells: 16, CutThrough: true}
	s := mustSwitch(t, cfg)
	p, err := bufmgr.Parse("dt:alpha=0.5")
	if err != nil {
		t.Fatal(err)
	}
	s.SetBufferPolicy(p)
	reg := obs.NewRegistry()
	o := NewObserver(reg, cfg.Ports)
	s.SetObserver(o)
	cs := stream(t, traffic.Config{Kind: traffic.Hotspot, N: 4, Load: 0.9, HotFrac: 0.7, Seed: 21}, s.Config().Stages)
	res, err := RunTraffic(s, cs, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DropPolicy == 0 {
		t.Fatal("no policy drops; test is vacuous")
	}
	if got := o.DropPolicy.Value(); got != res.DropPolicy {
		t.Errorf("DropPolicy counter %d, run %d", got, res.DropPolicy)
	}
	if got := o.DropPushOut.Value(); got != res.DropPushOut {
		t.Errorf("DropPushOut counter %d, run %d", got, res.DropPushOut)
	}
	for i := 0; i < cfg.Ports; i++ {
		if got := o.InputStalls.At(i).Value(); got != res.InputStalls[i] {
			t.Errorf("input %d stall gauge %d, run %d", i, got, res.InputStalls[i])
		}
		if got := o.InputDrops.At(i).Value(); got != res.InputDrops[i] {
			t.Errorf("input %d drop gauge %d, run %d", i, got, res.InputDrops[i])
		}
		if got := o.OutputDrops.At(i).Value(); got != res.OutputDrops[i] {
			t.Errorf("output %d drop gauge %d, run %d", i, got, res.OutputDrops[i])
		}
	}
}
