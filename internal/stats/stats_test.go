package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Var() != 0 || m.N() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if got := m.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Population variance of this classic data set is 4; sample variance
	// is 4*8/7.
	if got := m.Var(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v, want %v", got, 32.0/7.0)
	}
}

func TestMeanMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, ma, mb Mean
		for _, x := range a {
			sanitize(&x)
			all.Add(x)
			ma.Add(x)
		}
		for _, x := range b {
			sanitize(&x)
			all.Add(x)
			mb.Add(x)
		}
		ma.Merge(&mb)
		return ma.N() == all.N() &&
			closeEnough(ma.Mean(), all.Mean()) &&
			closeEnough(ma.Var(), all.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(x *float64) {
	if math.IsNaN(*x) || math.IsInf(*x, 0) {
		*x = 0
	}
	// Keep magnitudes moderate so float comparisons stay meaningful.
	*x = math.Mod(*x, 1e6)
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
}

func TestHist(t *testing.T) {
	h := NewHist(10)
	for i := int64(0); i < 5; i++ {
		h.Add(i)
	}
	h.Add(100) // overflow
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Count(3) != 1 || h.Count(50) != 1 {
		t.Fatal("counts wrong")
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d", h.Max())
	}
	want := (0 + 1 + 2 + 3 + 4 + 100) / 6.0
	if math.Abs(h.Mean()-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist(100)
	for i := int64(1); i <= 100; i++ {
		h.Add(i - 1) // values 0..99 once each
	}
	if q := h.Quantile(0.5); q != 49 {
		t.Fatalf("median = %d, want 49", q)
	}
	if q := h.Quantile(0.99); q != 98 {
		t.Fatalf("p99 = %d, want 98", q)
	}
	if q := h.Quantile(1.0); q != 99 {
		t.Fatalf("p100 = %d, want 99", q)
	}
}

func TestHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHist(4).Add(-1)
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Get("x") != 0 {
		t.Fatal("zero value should read 0")
	}
	c.Inc("arrivals", 10)
	c.Inc("drops", 1)
	c.Inc("arrivals", 5)
	if c.Get("arrivals") != 15 || c.Get("drops") != 1 {
		t.Fatal("counts wrong")
	}
	if got := c.Ratio("drops", "arrivals"); math.Abs(got-1.0/15) > 1e-15 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := c.Ratio("drops", "missing"); got != 0 {
		t.Fatalf("Ratio with zero denominator = %v, want 0", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "arrivals" || names[1] != "drops" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCounterSnapshotMerge(t *testing.T) {
	var a, b Counter
	if s := a.Snapshot(); s == nil || len(s) != 0 {
		t.Fatalf("empty snapshot = %v, want non-nil empty map", s)
	}
	a.Inc("x", 3)
	snap := a.Snapshot()
	a.Inc("x", 1)
	if snap["x"] != 3 {
		t.Fatal("Snapshot must be a copy, not a view")
	}
	b.Inc("x", 10)
	b.Inc("y", 2)
	a.Merge(&b)
	if a.Get("x") != 14 || a.Get("y") != 2 {
		t.Fatalf("after merge: x=%d y=%d, want 14, 2", a.Get("x"), a.Get("y"))
	}
	if b.Get("x") != 10 {
		t.Fatal("Merge must not mutate the source")
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(100)
	if !math.IsInf(b.HalfWidth95(), 1) {
		t.Fatal("half-width with no batches must be +Inf")
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 100_000; i++ {
		b.Add(rng.Float64()) // uniform(0,1): mean 0.5
	}
	if b.Batches() != 1000 {
		t.Fatalf("Batches = %d", b.Batches())
	}
	if math.Abs(b.Mean()-0.5) > 0.01 {
		t.Fatalf("Mean = %v, want ≈0.5", b.Mean())
	}
	hw := b.HalfWidth95()
	if hw <= 0 || hw > 0.01 {
		t.Fatalf("HalfWidth95 = %v, implausible", hw)
	}
	// The true mean should be inside the interval (w.h.p.).
	if math.Abs(b.Mean()-0.5) > 3*hw {
		t.Fatalf("true mean outside 3× interval: mean=%v hw=%v", b.Mean(), hw)
	}
}

func TestBatchMeansPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatchMeans(0)
}

// TestHistOverflowBoundary pins the overflow boundary exactly: Limit-1 is
// the last individually-resolved value, Limit the first overflowed one.
// Mean and Max keep the true magnitudes; Count and Quantile saturate.
func TestHistOverflowBoundary(t *testing.T) {
	h := NewHist(4)
	if h.Limit() != 4 {
		t.Fatalf("Limit() = %d, want 4", h.Limit())
	}
	h.Add(3)   // last resolved value
	h.Add(4)   // first overflow value
	h.Add(100) // deep overflow
	if h.Overflow() != 2 {
		t.Fatalf("Overflow() = %d, want 2", h.Overflow())
	}
	if h.N() != 3 {
		t.Fatalf("N() = %d, want 3", h.N())
	}
	if h.Count(3) != 1 {
		t.Fatalf("Count(3) = %d, want 1", h.Count(3))
	}
	if h.Count(4) != 2 || h.Count(100) != 2 {
		t.Fatalf("beyond-range Count must return the overflow bucket: %d, %d", h.Count(4), h.Count(100))
	}
	if h.Max() != 100 {
		t.Fatalf("Max() = %d, want true magnitude 100", h.Max())
	}
	if want := (3 + 4 + 100) / 3.0; h.Mean() != want {
		t.Fatalf("Mean() = %v, want %v", h.Mean(), want)
	}
	// Upper quantiles saturate at the limit — an underestimate, which is
	// why Overflow must be surfaced alongside them.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("Quantile(1) = %d, want saturation at Limit 4", q)
	}
	if q := h.Quantile(0.33); q != 3 {
		t.Fatalf("Quantile(0.33) = %d, want 3", q)
	}
}
