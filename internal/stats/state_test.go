package stats

import "testing"

// Restoring a Mean's exported state must reproduce subsequent accumulation
// bit for bit — the property the checkpoint layer's replay equivalence
// rests on.
func TestMeanStateRoundTrip(t *testing.T) {
	var a, b Mean
	for i := 0; i < 1000; i++ {
		a.Add(float64(i%37) * 0.125)
	}
	b.RestoreState(a.State())
	for i := 0; i < 500; i++ {
		x := float64(i%11) * 3.5
		a.Add(x)
		b.Add(x)
	}
	if a != b {
		t.Fatalf("restored Mean diverged: %+v vs %+v", a, b)
	}
}

func TestHistStateRoundTrip(t *testing.T) {
	a := NewHist(64)
	for i := int64(0); i < 200; i++ {
		a.Add(i % 80) // exercises overflow too
	}
	b := NewHist(64)
	if err := b.RestoreState(a.State()); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		a.Add(i % 70)
		b.Add(i % 70)
	}
	if a.N() != b.N() || a.Overflow() != b.Overflow() || a.Mean() != b.Mean() || a.Max() != b.Max() {
		t.Fatalf("restored Hist diverged: %+v vs %+v", a, b)
	}
	for v := int64(0); v < 64; v++ {
		if a.Count(v) != b.Count(v) {
			t.Fatalf("bucket %d: %d vs %d", v, a.Count(v), b.Count(v))
		}
	}
}

func TestHistRestoreSizeMismatch(t *testing.T) {
	a := NewHist(8)
	if err := NewHist(16).RestoreState(a.State()); err == nil {
		t.Fatal("restore across bucket counts must fail")
	}
}

// Set must write through hot slots so a restored counter keeps feeding the
// simulator's live pointers.
func TestCounterSetThroughHotSlot(t *testing.T) {
	var c Counter
	p := c.Hot("offered")
	c.Set("offered", 42)
	if *p != 42 {
		t.Fatalf("hot slot = %d, want 42", *p)
	}
	c.Set("cold", 7)
	if c.Get("cold") != 7 {
		t.Fatalf("cold count = %d, want 7", c.Get("cold"))
	}
}
