// Package stats provides the measurement primitives the simulators in this
// repository share: streaming mean/variance trackers, integer histograms,
// loss/throughput counters and batch-mean confidence intervals.
//
// All types have useful zero values and are not safe for concurrent use;
// every simulator owns its own instances.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean accumulates a streaming mean and variance using Welford's method,
// which is numerically stable for the long runs (10⁷–10⁸ samples) the loss
// experiments need.
type Mean struct {
	n    int64
	mean float64
	m2   float64
}

// Add records one sample.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples recorded.
func (m *Mean) N() int64 { return m.n }

// Mean returns the sample mean, or 0 if no samples were recorded.
func (m *Mean) Mean() float64 { return m.mean }

// Var returns the unbiased sample variance, or 0 for fewer than 2 samples.
func (m *Mean) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Var()) }

// Merge folds another accumulator into m (parallel-run reduction).
func (m *Mean) Merge(o *Mean) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.n = n
}

// Hist is a fixed-width integer histogram with an overflow bucket, used for
// latency and occupancy distributions.
type Hist struct {
	buckets  []int64
	overflow int64
	total    int64
	sum      float64
	max      int64
}

// NewHist returns a histogram that resolves values 0..n-1 individually and
// counts everything ≥ n in a single overflow bucket.
func NewHist(n int) *Hist {
	return &Hist{buckets: make([]int64, n)}
}

// Add records one non-negative integer sample.
func (h *Hist) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram sample %d", v))
	}
	if int(v) < len(h.buckets) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// N returns the total sample count.
func (h *Hist) N() int64 { return h.total }

// Overflow returns the number of samples ≥ Limit that fell into the
// overflow bucket: their exact values are not resolved (Count and
// Quantile see them only as "at the overflow boundary"), though Mean and
// Max still account for their true magnitudes. Reports should surface a
// nonzero overflow count rather than silently quoting truncated
// distribution statistics.
func (h *Hist) Overflow() int64 { return h.overflow }

// Limit returns the first unresolved value: samples in 0..Limit-1 are
// counted individually, samples ≥ Limit land in the overflow bucket.
func (h *Hist) Limit() int { return len(h.buckets) }

// Mean returns the mean of all samples (including overflowed values, which
// contribute their true magnitude to the mean).
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest sample seen.
func (h *Hist) Max() int64 { return h.max }

// Count returns the number of samples equal to v, or the overflow count if
// v is beyond the resolved range.
func (h *Hist) Count(v int64) int64 {
	if int(v) < len(h.buckets) {
		return h.buckets[v]
	}
	return h.overflow
}

// Quantile returns the smallest resolved value x such that at least q of
// the samples are ≤ x. Overflowed samples count as the overflow boundary:
// when the requested quantile falls among them the result saturates at
// Limit, an underestimate of the true quantile. Callers should check
// Overflow before trusting upper quantiles.
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return int64(v)
		}
	}
	return int64(len(h.buckets))
}

// Counter tallies named integer events (arrivals, departures, drops…).
// Events incremented on a simulator's per-cycle hot path can be promoted
// to hot slots (Hot): a live *int64 the caller bumps directly, skipping
// the map hash while remaining visible to Get/Names/Snapshot/Merge.
type Counter struct {
	counts map[string]int64
	hot    map[string]*int64
}

// Hot registers (or retrieves) a hot slot for name and returns a live
// pointer to its count. Any tally name already accumulated via Inc is
// folded into the slot. Incrementing through the pointer is equivalent to
// Inc(name, 1) but costs a single memory add.
func (c *Counter) Hot(name string) *int64 {
	if c.hot == nil {
		c.hot = make(map[string]*int64)
	}
	if p, ok := c.hot[name]; ok {
		return p
	}
	p := new(int64)
	if c.counts != nil {
		*p = c.counts[name]
		delete(c.counts, name)
	}
	c.hot[name] = p
	return p
}

// Inc adds delta to the named event count.
func (c *Counter) Inc(name string, delta int64) {
	if c.hot != nil {
		if p, ok := c.hot[name]; ok {
			*p += delta
			return
		}
	}
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += delta
}

// Get returns the count for name (0 if never incremented).
func (c *Counter) Get(name string) int64 {
	if c.hot != nil {
		if p, ok := c.hot[name]; ok {
			return *p
		}
	}
	return c.counts[name]
}

// Names returns all event names with a nonzero count (or any cold tally),
// in sorted order. Hot slots still at zero are omitted so registering a
// slot is not observable in reports.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts)+len(c.hot))
	for n := range c.counts {
		names = append(names, n)
	}
	for n, p := range c.hot {
		if *p != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counts, for reports that outlive the
// counter (never nil). Hot slots still at zero are omitted, matching
// Names.
func (c *Counter) Snapshot() map[string]int64 {
	m := make(map[string]int64, len(c.counts)+len(c.hot))
	for n, v := range c.counts {
		m[n] = v
	}
	for n, p := range c.hot {
		if *p != 0 {
			m[n] = *p
		}
	}
	return m
}

// Merge folds another counter's tallies into c (parallel-run reduction,
// matching Mean.Merge).
func (c *Counter) Merge(o *Counter) {
	for n, v := range o.counts {
		c.Inc(n, v)
	}
	for n, p := range o.hot {
		if *p != 0 {
			c.Inc(n, *p)
		}
	}
}

// Ratio returns Get(num)/Get(den), or 0 when the denominator is zero. It is
// the canonical loss-probability and utilization accessor.
func (c *Counter) Ratio(num, den string) float64 {
	d := c.Get(den)
	if d == 0 {
		return 0
	}
	return float64(c.Get(num)) / float64(d)
}

// BatchMeans implements the method of batch means: samples are grouped into
// fixed-size batches and a confidence interval is computed over batch
// averages, sidestepping the autocorrelation of queueing processes.
type BatchMeans struct {
	batchSize int64
	cur       Mean
	batches   Mean
}

// NewBatchMeans returns an estimator with the given batch size.
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize < 1 {
		panic("stats: batch size must be ≥ 1")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records a sample, closing a batch when it fills.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if b.cur.N() == b.batchSize {
		b.batches.Add(b.cur.Mean())
		b.cur = Mean{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth95 returns the half-width of a ~95% confidence interval over
// batch means (normal approximation, 1.96·s/√k). It returns +Inf for fewer
// than 2 batches.
func (b *BatchMeans) HalfWidth95() float64 {
	k := b.batches.N()
	if k < 2 {
		return math.Inf(1)
	}
	return 1.96 * b.batches.StdDev() / math.Sqrt(float64(k))
}

// MeanState is the exported state of a Mean accumulator, used by the
// checkpoint layer: restoring it reproduces the accumulator bit for bit
// (Welford's recurrence is deterministic given these three values).
type MeanState struct {
	N    int64
	Mean float64
	M2   float64
}

// State exports the accumulator for checkpointing.
func (m *Mean) State() MeanState { return MeanState{N: m.n, Mean: m.mean, M2: m.m2} }

// RestoreState overwrites the accumulator with a previously exported
// state.
func (m *Mean) RestoreState(st MeanState) { m.n, m.mean, m.m2 = st.N, st.Mean, st.M2 }

// HistState is the exported state of a Hist, used by the checkpoint
// layer. Buckets is the full resolved range (len == Limit).
type HistState struct {
	Buckets  []int64
	Overflow int64
	Total    int64
	Sum      float64
	Max      int64
}

// State exports the histogram for checkpointing. The bucket slice is a
// copy; mutating it does not affect the histogram.
func (h *Hist) State() HistState {
	return HistState{
		Buckets:  append([]int64(nil), h.buckets...),
		Overflow: h.overflow,
		Total:    h.total,
		Sum:      h.sum,
		Max:      h.max,
	}
}

// RestoreState overwrites the histogram with a previously exported state.
// The resolved range must match (a histogram restores only into a peer of
// the same Limit).
func (h *Hist) RestoreState(st HistState) error {
	if len(st.Buckets) != len(h.buckets) {
		return fmt.Errorf("stats: histogram state has %d buckets, this histogram resolves %d", len(st.Buckets), len(h.buckets))
	}
	copy(h.buckets, st.Buckets)
	h.overflow, h.total, h.sum, h.max = st.Overflow, st.Total, st.Sum, st.Max
	return nil
}

// Set forces the named count to v, through the hot slot when one is
// registered. The checkpoint layer uses it to restore counter snapshots;
// ordinary accounting should use Inc.
func (c *Counter) Set(name string, v int64) {
	if c.hot != nil {
		if p, ok := c.hot[name]; ok {
			*p = v
			return
		}
	}
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] = v
}
