// Package cli holds flag helpers shared by the pipemem command-line
// tools, so every binary spells common options the same way.
package cli

import (
	"flag"
	"strings"

	"pipemem/internal/bufmgr"
)

// PolicyValue is the flag.Value behind -bufpolicy. The spec is validated
// when the flag is set (bad specs fail at flag-parse time with the
// bufmgr.ErrBadConfig diagnostics), so by the time main runs, Policy()
// is either nil (flag absent) or a ready-to-install policy.
type PolicyValue struct {
	spec   string
	policy bufmgr.Policy
}

// String returns the raw spec ("" when the flag was not given).
func (v *PolicyValue) String() string { return v.spec }

// Set parses and validates the spec; invalid specs reject the flag.
func (v *PolicyValue) Set(s string) error {
	p, err := bufmgr.Parse(s)
	if err != nil {
		return err
	}
	v.spec, v.policy = s, p
	return nil
}

// Policy returns the parsed policy, or nil when the flag was not given.
func (v *PolicyValue) Policy() bufmgr.Policy { return v.policy }

// Spec returns the raw spec string, "" when unset.
func (v *PolicyValue) Spec() string { return v.spec }

// Got reports whether the flag was supplied.
func (v *PolicyValue) Got() bool { return v.policy != nil }

// BufPolicyFlag registers the -bufpolicy flag on fs (nil means the
// process-wide flag.CommandLine) and returns its value holder.
func BufPolicyFlag(fs *flag.FlagSet) *PolicyValue {
	if fs == nil {
		fs = flag.CommandLine
	}
	v := &PolicyValue{}
	fs.Var(v, "bufpolicy",
		"shared-buffer admission policy: "+strings.Join(bufmgr.Specs(), "|")+
			", with optional :key=value params (e.g. dt:alpha=2, static:quota=16)")
	return v
}
