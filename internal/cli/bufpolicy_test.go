package cli

import (
	"errors"
	"flag"
	"io"
	"testing"

	"pipemem/internal/bufmgr"
)

func TestBufPolicyFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	v := BufPolicyFlag(fs)
	if v.Got() || v.Policy() != nil || v.Spec() != "" {
		t.Fatal("unset flag reports a value")
	}
	if err := fs.Parse([]string{"-bufpolicy", "dt:alpha=2"}); err != nil {
		t.Fatal(err)
	}
	if !v.Got() || v.Spec() != "dt:alpha=2" {
		t.Fatalf("flag not captured: got=%v spec=%q", v.Got(), v.Spec())
	}
	if p, ok := v.Policy().(bufmgr.DynamicThreshold); !ok || p.Alpha != 2 {
		t.Fatalf("parsed policy %#v, want DynamicThreshold{Alpha: 2}", v.Policy())
	}
}

func TestBufPolicyFlagRejectsBadSpec(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	v := BufPolicyFlag(fs)
	if err := fs.Parse([]string{"-bufpolicy", "bogus"}); err == nil {
		t.Fatal("bad spec accepted at flag-parse time")
	}
	// The flag package flattens Set errors into a new string, so check
	// the sentinel on Set itself.
	if err := v.Set("bogus"); !errors.Is(err, bufmgr.ErrBadConfig) {
		t.Fatalf("Set error %v does not wrap ErrBadConfig", err)
	}
	if v.Got() {
		t.Fatal("failed Set left the value populated")
	}
}
