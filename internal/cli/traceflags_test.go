package cli

import (
	"errors"
	"flag"
	"testing"

	"pipemem/internal/core"
)

func TestTraceFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	v := TraceFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if v.Out != "" || v.Sample != 1 || v.TelemetryOut != "" || v.TelemetryEvery != 0 {
		t.Fatalf("unexpected defaults: %+v", v)
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

func TestTraceFlagsValidate(t *testing.T) {
	cases := []struct {
		name string
		v    TraceValue
		ok   bool
	}{
		{"sample-1", TraceValue{Sample: 1}, true},
		{"sample-0", TraceValue{Sample: 0}, false},
		{"sample-negative", TraceValue{Sample: -8}, false},
		{"telemetry-with-cadence", TraceValue{Sample: 1, TelemetryOut: "x.jsonl", TelemetryEvery: 100}, true},
		{"cadence-without-file", TraceValue{Sample: 1, TelemetryEvery: 100}, false},
		{"negative-cadence", TraceValue{Sample: 1, TelemetryOut: "x.jsonl", TelemetryEvery: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.v.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				if !errors.Is(err, core.ErrBadConfig) {
					t.Fatalf("error %v does not wrap core.ErrBadConfig", err)
				}
			}
		})
	}
}

func TestEffectiveTelemetryEvery(t *testing.T) {
	v := TraceValue{Sample: 1, TelemetryEvery: 64}
	if got := v.EffectiveTelemetryEvery(1_000_000); got != 64 {
		t.Fatalf("explicit cadence: got %d", got)
	}
	v.TelemetryEvery = 0
	if got := v.EffectiveTelemetryEvery(512_000); got != 1000 {
		t.Fatalf("auto cadence: got %d, want 1000", got)
	}
	if got := v.EffectiveTelemetryEvery(10); got != 1 {
		t.Fatalf("tiny run cadence: got %d, want 1", got)
	}
}
