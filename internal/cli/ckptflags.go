package cli

import (
	"errors"
	"flag"
	"fmt"
)

// CheckpointValue holds the checkpoint/robustness flag group shared by the
// RTL-driving tools: where to write checkpoints, how often, what to resume
// from, and the audit/watchdog cadences.
type CheckpointValue struct {
	// Path receives periodic checkpoints ("" = none); Every is the cycle
	// cadence (0 with a Path = a default of cycles/10, resolved by
	// EffectiveEvery).
	Path  string
	Every int64
	// Restore resumes from this checkpoint file instead of starting fresh.
	Restore string
	// AuditEvery runs the online invariant auditor every N cycles;
	// Watchdog arms the no-progress watchdog with an N-cycle window.
	AuditEvery int64
	Watchdog   int64
}

// CheckpointFlags registers the -checkpoint, -ckpt-every, -restore,
// -audit and -watchdog flags on fs (nil means flag.CommandLine).
func CheckpointFlags(fs *flag.FlagSet) *CheckpointValue {
	if fs == nil {
		fs = flag.CommandLine
	}
	v := &CheckpointValue{}
	fs.StringVar(&v.Path, "checkpoint", "",
		"RTL run: write crash-consistent checkpoints of the full simulation state to this file")
	fs.Int64Var(&v.Every, "ckpt-every", 0,
		"cycles between auto-checkpoints (0 with -checkpoint = every cycles/10)")
	fs.StringVar(&v.Restore, "restore", "",
		"resume an RTL run from this checkpoint file (traffic, policy and fault plan come from the checkpoint)")
	fs.Int64Var(&v.AuditEvery, "audit", 0,
		"RTL run: verify internal invariants (conservation, occupancy, hazard-freedom) every N cycles (0 = off)")
	fs.Int64Var(&v.Watchdog, "watchdog", 0,
		"RTL run: abort with a diagnostic checkpoint if no cell moves for N cycles while some are resident (0 = off)")
	return v
}

// Active reports whether any checkpoint/robustness flag was supplied —
// the signal to route the run through a checkpointable session.
func (v *CheckpointValue) Active() bool {
	return v.Path != "" || v.Restore != "" || v.AuditEvery > 0 || v.Watchdog > 0
}

// Validate rejects nonsensical flag combinations with one-line actionable
// errors.
func (v *CheckpointValue) Validate() error {
	if v.Every < 0 || v.AuditEvery < 0 || v.Watchdog < 0 {
		return errors.New("-ckpt-every, -audit and -watchdog must be >= 0")
	}
	if v.Every > 0 && v.Path == "" {
		return errors.New("-ckpt-every needs -checkpoint PATH to write to")
	}
	if v.Restore != "" && v.Path != "" && v.Restore == v.Path {
		return fmt.Errorf("-restore and -checkpoint both name %q; resuming would overwrite the file being read (pick a new -checkpoint path)", v.Path)
	}
	return nil
}

// EffectiveEvery resolves the auto-checkpoint cadence for a run of the
// given cycle count: the explicit -ckpt-every, or cycles/10 (at least 1)
// when -checkpoint was given without a cadence.
func (v *CheckpointValue) EffectiveEvery(cycles int64) int64 {
	if v.Path == "" {
		return 0
	}
	if v.Every > 0 {
		return v.Every
	}
	if e := cycles / 10; e > 0 {
		return e
	}
	return 1
}
