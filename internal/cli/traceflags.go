package cli

import (
	"flag"
	"fmt"

	"pipemem/internal/core"
)

// TraceValue holds the trace/telemetry flag group shared by the observed
// runs: where to write the JSONL event/span trace, the sampling rate, and
// the fixed-cadence telemetry ring.
//
// The same -trace/-trace-sample pair serves both observed modes: on the
// single-switch RTL path the sample thins the event stream 1-in-N by
// emission order, on the -fabric path it selects flights whose sequence
// number is divisible by N (deterministic across worker counts).
type TraceValue struct {
	// Out receives the JSONL event/span trace ("" = no trace).
	Out string
	// Sample keeps 1 in N trace events (RTL run) or traces every N-th
	// flight by sequence number (fabric run). Must be ≥ 1.
	Sample int
	// TelemetryOut receives the fabric time-series ring as JSONL after
	// the run ("" = no telemetry).
	TelemetryOut string
	// TelemetryEvery is the sampling cadence in cycles (0 = an automatic
	// cadence derived from the run length).
	TelemetryEvery int64
}

// TraceFlags registers the -trace, -trace-sample, -telemetry and
// -telemetry-every flags on fs (nil means flag.CommandLine).
func TraceFlags(fs *flag.FlagSet) *TraceValue {
	if fs == nil {
		fs = flag.CommandLine
	}
	v := &TraceValue{}
	fs.StringVar(&v.Out, "trace", "",
		"observed run: write the structured JSONL event trace (RTL) or flight-span trace (-fabric) to this file")
	fs.IntVar(&v.Sample, "trace-sample", 1,
		"keep 1 in N trace events; on a -fabric run, trace flights whose sequence number is divisible by N")
	fs.StringVar(&v.TelemetryOut, "telemetry", "",
		"fabric run: write the per-stage occupancy/credit time series as JSONL to this file")
	fs.Int64Var(&v.TelemetryEvery, "telemetry-every", 0,
		"cycles between telemetry samples (0 = run length / 512, at least 1)")
	return v
}

// Validate rejects nonsensical trace flag values. All rejections wrap
// core.ErrBadConfig so callers (and the cmdtest audit) can classify them.
func (v *TraceValue) Validate() error {
	if v.Sample < 1 {
		return fmt.Errorf("%w: -trace-sample %d: must be >= 1 (N traces 1 in N)", core.ErrBadConfig, v.Sample)
	}
	if v.TelemetryEvery < 0 {
		return fmt.Errorf("%w: -telemetry-every %d: must be >= 0", core.ErrBadConfig, v.TelemetryEvery)
	}
	if v.TelemetryEvery > 0 && v.TelemetryOut == "" {
		return fmt.Errorf("%w: -telemetry-every needs -telemetry FILE to write to", core.ErrBadConfig)
	}
	return nil
}

// EffectiveTelemetryEvery resolves the telemetry cadence for a run of the
// given cycle count: the explicit -telemetry-every, or cycles/512 (at
// least 1).
func (v *TraceValue) EffectiveTelemetryEvery(cycles int64) int64 {
	if v.TelemetryEvery > 0 {
		return v.TelemetryEvery
	}
	if e := cycles / 512; e > 0 {
		return e
	}
	return 1
}
