package cli

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func parseCkpt(t *testing.T, args ...string) *CheckpointValue {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	v := CheckpointFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCheckpointFlagsInactiveByDefault(t *testing.T) {
	v := parseCkpt(t)
	if v.Active() {
		t.Fatal("no flags given, but Active")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.EffectiveEvery(1000) != 0 {
		t.Fatal("cadence without -checkpoint must be 0")
	}
}

func TestCheckpointFlagsValidation(t *testing.T) {
	cases := []struct {
		args    []string
		wantSub string
	}{
		{[]string{"-ckpt-every", "100"}, "-checkpoint"},
		{[]string{"-checkpoint", "x", "-ckpt-every", "-5"}, ">= 0"},
		{[]string{"-audit", "-1"}, ">= 0"},
		{[]string{"-watchdog", "-1"}, ">= 0"},
		{[]string{"-restore", "x", "-checkpoint", "x"}, "overwrite"},
	}
	for _, c := range cases {
		v := parseCkpt(t, c.args...)
		err := v.Validate()
		if err == nil {
			t.Fatalf("%v: accepted", c.args)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%v: error %q does not mention %q", c.args, err, c.wantSub)
		}
	}
}

func TestCheckpointFlagsEffectiveEvery(t *testing.T) {
	if got := parseCkpt(t, "-checkpoint", "x").EffectiveEvery(1000); got != 100 {
		t.Fatalf("default cadence = %d, want 100", got)
	}
	if got := parseCkpt(t, "-checkpoint", "x", "-ckpt-every", "7").EffectiveEvery(1000); got != 7 {
		t.Fatalf("explicit cadence = %d, want 7", got)
	}
	if got := parseCkpt(t, "-checkpoint", "x").EffectiveEvery(3); got != 1 {
		t.Fatalf("tiny-run cadence = %d, want 1", got)
	}
	if got := parseCkpt(t, "-checkpoint", "x", "-restore", "y").Active(); !got {
		t.Fatal("flags given, but not Active")
	}
}
