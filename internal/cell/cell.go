// Package cell defines the data units that travel through the switch
// models in this repository: words (the quantity transferred on a link in
// one clock cycle), cells (fixed-size packets, an integer number of words,
// as required by the pipelined-memory organization of §3.5 of the paper),
// and flits (the flow-control units of the wormhole models).
//
// The paper's switches move one w-bit word per link per cycle; cells are
// exactly K words long where K is the number of pipeline stages (2n for an
// n×n switch), or n words in the half-quantum organization. All payloads
// here are carried in uint64 words; an effective width w ≤ 64 bits is
// enforced by masking.
package cell

import (
	"fmt"
	"math/rand/v2"
)

// Word is the unit transferred on a link in one clock cycle. The effective
// width of a word is configuration-dependent (w bits, w ≤ 64); unused high
// bits must be zero.
type Word uint64

// Mask returns the Word truncated to width bits. A width of 64 (or more)
// returns the word unchanged.
func (w Word) Mask(width int) Word {
	if width >= 64 {
		return w
	}
	return w & (1<<uint(width) - 1)
}

// Cell is a fixed-size packet: the unit that is buffered, switched, and
// whose size must be an integer multiple of the basic quantum (§3.5).
type Cell struct {
	// Seq is a unique sequence number assigned by the source, used by
	// integrity checks to match departures against arrivals.
	Seq uint64
	// Src and Dst are incoming and outgoing link indices.
	Src, Dst int
	// VC is the virtual channel the cell travels on (0 when VCs are not
	// in use). Buffer management may keep one logical queue per
	// (output, VC) pair — the [KVES95] organization.
	VC int
	// Copies lists additional outgoing links beyond Dst for multicast
	// cells (nil for unicast). A shared buffer multicasts for free at
	// the descriptor level: the payload is stored once and a descriptor
	// is queued per destination, with the address released when the last
	// copy has been read — the economy [Turn93]-style switches build on.
	Copies []int
	// Enqueue is the cycle (or slot) at which the cell's first word
	// arrived at the switch; simulators use it for latency accounting.
	Enqueue int64
	// Words is the payload, one entry per clock cycle on the link.
	Words []Word
}

// Len returns the cell length in words.
func (c *Cell) Len() int { return len(c.Words) }

// Clone returns a deep copy of the cell.
func (c *Cell) Clone() *Cell {
	d := *c
	d.Words = append([]Word(nil), c.Words...)
	if c.Copies != nil {
		d.Copies = append([]int(nil), c.Copies...)
	}
	return &d
}

// Checksum folds the cell's payload and identity into a single word. It is
// order-sensitive, so any reordering, duplication or corruption of words
// changes the sum. It is used by the RTL integrity tests.
func (c *Cell) Checksum() uint64 {
	const prime = 0x100000001b3 // FNV-64 prime
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(c.Seq)
	mix(uint64(c.Src)<<32 | uint64(uint32(c.Dst)))
	for _, w := range c.Words {
		mix(uint64(w))
	}
	return h
}

// Equal reports whether two cells carry the same identity and payload.
// Enqueue timestamps are not compared: they are observer metadata.
func (c *Cell) Equal(d *Cell) bool {
	if c.Seq != d.Seq || c.Src != d.Src || c.Dst != d.Dst || c.VC != d.VC || len(c.Words) != len(d.Words) {
		return false
	}
	for i := range c.Words {
		if c.Words[i] != d.Words[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for debugging traces.
func (c *Cell) String() string {
	return fmt.Sprintf("cell{seq=%d %d→%d len=%d t=%d}", c.Seq, c.Src, c.Dst, len(c.Words), c.Enqueue)
}

// New returns a cell of the given size with a payload derived
// deterministically from (seq, src, dst), masked to width bits. The first
// word encodes the destination in its low bits, mimicking a routing header.
func New(seq uint64, src, dst, words, width int) *Cell {
	c := &Cell{}
	Fill(c, seq, src, dst, words, width)
	return c
}

// NewRandom returns a cell with uniformly random payload words from rng,
// masked to width bits. Word 0 still encodes the destination header.
func NewRandom(rng *rand.Rand, seq uint64, src, dst, words, width int) *Cell {
	c := &Cell{Seq: seq, Src: src, Dst: dst, Words: make([]Word, words)}
	for i := range c.Words {
		c.Words[i] = Word(rng.Uint64()).Mask(width)
	}
	c.Words[0] = Word(uint64(dst)).Mask(width)
	return c
}
