package cell

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	tests := []struct {
		w     Word
		width int
		want  Word
	}{
		{0xffff, 8, 0xff},
		{0xffff, 16, 0xffff},
		{0xffffffffffffffff, 64, 0xffffffffffffffff},
		{0xffffffffffffffff, 1, 1},
		{0x12345678, 4, 0x8},
		{0xff, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.w.Mask(tt.width); got != tt.want {
			t.Errorf("Mask(%#x, %d) = %#x, want %#x", uint64(tt.w), tt.width, uint64(got), uint64(tt.want))
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a := New(7, 1, 2, 16, 16)
	b := New(7, 1, 2, 16, 16)
	if !a.Equal(b) {
		t.Fatal("New is not deterministic for identical arguments")
	}
	c := New(8, 1, 2, 16, 16)
	if a.Equal(c) {
		t.Fatal("cells with different seq compare equal")
	}
	if a.Len() != 16 {
		t.Fatalf("Len = %d, want 16", a.Len())
	}
	for i, w := range a.Words {
		if w != w.Mask(16) {
			t.Fatalf("word %d = %#x exceeds 16-bit width", i, uint64(w))
		}
	}
	if got := int(a.Words[0]); got != 2 {
		t.Fatalf("header word = %d, want destination 2", got)
	}
}

func TestChecksumDetectsChanges(t *testing.T) {
	a := New(42, 3, 5, 8, 16)
	sum := a.Checksum()

	b := a.Clone()
	if b.Checksum() != sum {
		t.Fatal("clone checksum differs")
	}
	b.Words[3] ^= 1
	if b.Checksum() == sum {
		t.Fatal("payload corruption not detected")
	}

	c := a.Clone()
	c.Words[1], c.Words[2] = c.Words[2], c.Words[1]
	if c.Words[1] != c.Words[2] && c.Checksum() == sum {
		t.Fatal("word reordering not detected")
	}

	d := a.Clone()
	d.Seq++
	if d.Checksum() == sum {
		t.Fatal("seq change not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(1, 0, 1, 4, 8)
	b := a.Clone()
	b.Words[0] = 0xAA
	if a.Words[0] == 0xAA {
		t.Fatal("Clone shares payload storage with original")
	}
}

func TestEqualIgnoresTimestamps(t *testing.T) {
	a := New(9, 0, 3, 4, 8)
	b := a.Clone()
	b.Enqueue = 999
	if !a.Equal(b) {
		t.Fatal("Equal must ignore Enqueue metadata")
	}
}

func TestNewRandomRespectsWidth(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		c := NewRandom(rng, uint64(i), 0, 3, 8, 12)
		for j, w := range c.Words {
			if w != w.Mask(12) {
				t.Fatalf("cell %d word %d exceeds width", i, j)
			}
		}
		if int(c.Words[0]) != 3 {
			t.Fatalf("cell %d header != dst", i)
		}
	}
}

func TestChecksumQuick(t *testing.T) {
	// Property: two cells with any differing field have different sums
	// (up to hash collisions, vanishingly unlikely for random inputs).
	f := func(seq uint64, src, dst uint8, flip uint8) bool {
		a := New(seq, int(src%8), int(dst%8), 8, 16)
		b := a.Clone()
		i := int(flip) % len(b.Words)
		if i == 0 {
			i = 1 // word 0 is the header; keep dst coherent
		}
		b.Words[i] ^= 1
		return a.Checksum() != b.Checksum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessage(t *testing.T) {
	fs := Message(5, 3, 20, 100)
	if len(fs) != 20 {
		t.Fatalf("len = %d, want 20", len(fs))
	}
	if !fs[0].Kind.IsHead() || fs[0].Kind.IsTail() {
		t.Fatal("first flit must be head only")
	}
	if !fs[19].Kind.IsTail() || fs[19].Kind.IsHead() {
		t.Fatal("last flit must be tail only")
	}
	for i, f := range fs {
		if f.Index != i || f.Msg != 5 || f.Dst != 3 || f.Inject != 100 {
			t.Fatalf("flit %d has wrong metadata: %+v", i, f)
		}
		if i > 0 && i < 19 && (f.Kind.IsHead() || f.Kind.IsTail()) {
			t.Fatalf("interior flit %d marked head/tail", i)
		}
	}
}

func TestMessageSingleFlit(t *testing.T) {
	fs := Message(1, 0, 1, 0)
	if len(fs) != 1 || !fs[0].Kind.IsHead() || !fs[0].Kind.IsTail() {
		t.Fatal("single-flit message must be head and tail")
	}
}

func TestMessagePanicsOnZeroLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-length message")
		}
	}()
	Message(1, 0, 0, 0)
}
