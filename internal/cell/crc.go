package cell

// CRC16 computes the CRC-16/CCITT-FALSE checksum (polynomial 0x1021,
// initial value 0xFFFF) over a sequence of link words, each folded in as
// its eight little-endian bytes. The fault-tolerant link layer appends it
// to every cell transfer: a receiver recomputing a different value NAKs
// the transfer and the sender retransmits. Sixteen bits of CRC on a
// K·w-bit cell leave a 2⁻¹⁶ escape probability per corrupted transfer;
// escapes are not silent — the switch's end-to-end integrity check still
// flags the delivered cell as corrupt.
func CRC16(words []Word) uint16 {
	crc := uint16(0xFFFF)
	for _, w := range words {
		for b := 0; b < 64; b += 8 {
			crc ^= uint16(byte(w>>uint(b))) << 8
			for i := 0; i < 8; i++ {
				if crc&0x8000 != 0 {
					crc = crc<<1 ^ 0x1021
				} else {
					crc <<= 1
				}
			}
		}
	}
	return crc
}
