package cell

// FlitKind distinguishes the positions a flit can occupy within a wormhole
// message. Single-flit messages are Head|Tail simultaneously.
type FlitKind uint8

const (
	// Head is the first flit of a message; it carries the route.
	Head FlitKind = 1 << iota
	// Body is an interior flit.
	Body
	// Tail is the last flit of a message; it releases channel state.
	Tail
)

// IsHead reports whether the flit opens a message.
func (k FlitKind) IsHead() bool { return k&Head != 0 }

// IsTail reports whether the flit closes a message.
func (k FlitKind) IsTail() bool { return k&Tail != 0 }

// Flit is the flow-control unit of the wormhole models (internal/wormhole).
// A message of L flits occupies L consecutive slots on each channel it
// traverses; only the head flit carries routing information, and all
// subsequent flits follow the path the head reserved — exactly the regime of
// [Dally90] that §2.1 of the paper quotes (20-flit messages, 16-flit
// buffers).
type Flit struct {
	Kind FlitKind
	// Msg identifies the message the flit belongs to.
	Msg uint64
	// Dst is the terminal destination (head flits only; copied onto body
	// and tail flits for checking convenience).
	Dst int
	// Index is the flit's position within its message, 0-based.
	Index int
	// Inject is the cycle the head flit was injected at the source queue,
	// used for latency accounting.
	Inject int64
}

// Message builds the flit sequence for one L-flit message.
func Message(msg uint64, dst, l int, inject int64) []Flit {
	if l < 1 {
		panic("cell: message length must be ≥ 1")
	}
	fs := make([]Flit, l)
	for i := range fs {
		k := Body
		if i == 0 {
			k |= Head
		}
		if i == l-1 {
			k |= Tail
		}
		if l == 1 {
			k = Head | Tail
		}
		fs[i] = Flit{Kind: k, Msg: msg, Dst: dst, Index: i, Inject: inject}
	}
	return fs
}
