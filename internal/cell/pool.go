package cell

// Fill regenerates c in place exactly as New(seq, src, dst, words, width)
// would build a fresh cell, reusing c's Words backing array when its
// capacity allows. Copies and Enqueue are reset. The caller must hold the
// only live reference to c (a recycled cell must have left the switch).
func Fill(c *Cell, seq uint64, src, dst, words, width int) {
	c.Seq, c.Src, c.Dst, c.VC = seq, src, dst, 0
	c.Copies = nil
	c.Enqueue = 0
	if cap(c.Words) >= words {
		c.Words = c.Words[:words]
	} else {
		c.Words = make([]Word, words)
	}
	// Each word is an independent mix of (cell identity, word index): unlike
	// a serial xorshift chain, the iterations carry no data dependence, so
	// the fill pipelines at one word per cycle or better. One multiply plus
	// a xor-fold is plenty for the integrity checks the payload feeds
	// (departure-vs-injection comparison): distinct, well-scrambled words.
	base := seq*0x9e3779b97f4a7c15 + uint64(src)*0xbf58476d1ce4e5b9 + uint64(dst)*0x94d049bb133111eb
	m := ^Word(0)
	if width < 64 {
		m = Word(1)<<uint(width) - 1
	}
	w := c.Words
	for i := range w {
		x := (base + uint64(i)) * 0xd6e8feb86659fd93
		w[i] = Word(x^x>>32) & m
	}
	w[0] = Word(uint64(dst)) & m
}

// Pool recycles Cells of a fixed word count so traffic drivers can inject
// cells without allocating in steady state: Get (or New) a cell, inject
// it, and Put it back once the switch has handed it back as
// Departure.Expected. Cells that never depart (drops) simply leak from
// the pool, which stays correct — the next Get allocates.
//
// A Pool is not safe for concurrent use; each driver owns its own.
type Pool struct {
	words int
	free  []*Cell
}

// NewPool returns a pool of cells that are words words long.
func NewPool(words int) *Pool { return &Pool{words: words} }

// Get returns a cell with a words-long payload buffer. The payload is
// whatever its previous user left behind; Fill it before injecting.
func (p *Pool) Get() *Cell {
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		c.Words = c.Words[:p.words]
		return c
	}
	return &Cell{Words: make([]Word, p.words)}
}

// New is Get followed by Fill: a pooled cell with the same deterministic
// payload the package-level New produces.
func (p *Pool) New(seq uint64, src, dst, width int) *Cell {
	c := p.Get()
	Fill(c, seq, src, dst, p.words, width)
	return c
}

// Put returns a cell to the pool. The caller must hold the only live
// reference. nil cells and cells whose buffer is too small for this pool
// are dropped rather than recycled.
func (p *Pool) Put(c *Cell) {
	if c == nil || cap(c.Words) < p.words {
		return
	}
	p.free = append(p.free, c)
}

// Len returns the number of idle cells held by the pool.
func (p *Pool) Len() int { return len(p.free) }
