package cell

import "testing"

// TestFillMatchesNew: regenerating a recycled cell in place produces
// exactly the cell New would allocate for the same identity.
func TestFillMatchesNew(t *testing.T) {
	fresh := New(7, 2, 5, 16, 16)
	recycled := New(99, 0, 1, 16, 16)
	recycled.Copies = []int{3}
	recycled.Enqueue = 123
	recycled.VC = 2
	Fill(recycled, 7, 2, 5, 16, 16)
	if !recycled.Equal(fresh) {
		t.Fatalf("Fill diverged from New:\n%v\nvs\n%v", recycled, fresh)
	}
	if recycled.Copies != nil || recycled.Enqueue != 0 || recycled.VC != 0 {
		t.Fatalf("Fill left stale state: %+v", recycled)
	}
}

// TestPoolReuse: Put makes the cell available to the next Get; undersized
// or nil cells are dropped.
func TestPoolReuse(t *testing.T) {
	p := NewPool(8)
	c1 := p.New(1, 0, 1, 16)
	if len(c1.Words) != 8 {
		t.Fatalf("pool cell has %d words", len(c1.Words))
	}
	p.Put(c1)
	if p.Len() != 1 {
		t.Fatalf("pool holds %d, want 1", p.Len())
	}
	c2 := p.New(2, 1, 0, 16)
	if c2 != c1 {
		t.Fatal("Get did not reuse the pooled cell")
	}
	if p.Len() != 0 {
		t.Fatal("pool not drained by Get")
	}
	if !c2.Equal(New(2, 1, 0, 8, 16)) {
		t.Fatal("recycled cell payload wrong")
	}

	p.Put(nil)
	p.Put(&Cell{Words: make([]Word, 4)}) // undersized: must be dropped
	if p.Len() != 0 {
		t.Fatalf("pool accepted unusable cells: %d", p.Len())
	}
}
