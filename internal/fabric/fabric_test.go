package fabric

import (
	"testing"
	"testing/quick"

	"pipemem/internal/traffic"
	"pipemem/internal/wormhole"
)

func mustNet(t *testing.T, cfg Config) *Net {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidate(t *testing.T) {
	good := Config{Terminals: 16, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, c := range []Config{
		{Terminals: 12, Radix: 2, SwitchCells: 8}, // not a power
		{Terminals: 4, Radix: 4, SwitchCells: 8},  // single stage
		{Terminals: 16, Radix: 1, SwitchCells: 8}, // radix 1
		{Terminals: 16, Radix: 2, SwitchCells: 0}, // no buffer
		{Terminals: 16, Radix: 2, SwitchCells: 8, Credits: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestLineMathRoundTrip: switchOf and lineOf are inverses at every stage.
func TestLineMathRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{Terminals: 16, Radix: 2, SwitchCells: 8, CutThrough: true},
		{Terminals: 64, Radix: 4, SwitchCells: 16, CutThrough: true},
		{Terminals: 27, Radix: 3, SwitchCells: 9, CutThrough: true},
	} {
		f := mustNet(t, cfg)
		for st := 0; st < f.stages; st++ {
			for l := 0; l < f.n; l++ {
				sw, port := f.switchOf(st, l)
				if got := f.lineOf(st, sw, port); got != l {
					t.Fatalf("k=%d stage %d: line %d → (%d,%d) → %d", f.k, st, l, sw, port, got)
				}
			}
		}
	}
}

// TestAllPairsDelivery: one cell from every terminal to every terminal,
// exhaustively — destination-digit routing must land each cell exactly at
// its terminal with an intact payload (Step errors otherwise).
func TestAllPairsDelivery(t *testing.T) {
	const n = 16
	f := mustNet(t, Config{Terminals: n, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true})
	var seq uint64
	for dst := 0; dst < n; dst++ {
		for term := 0; term < n; term++ {
			seq++
			f.Inject(term, dst, seq)
			// Space injections generously: correctness, not throughput.
			for i := 0; i < 4*f.CellWords(); i++ {
				if err := f.Step(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 200; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Delivered() != int64(n*n) {
		t.Fatalf("delivered %d of %d cells", f.Delivered(), n*n)
	}
	if f.Corrupt() != 0 || f.Drops() != 0 {
		t.Fatalf("corrupt=%d drops=%d", f.Corrupt(), f.Drops())
	}
}

// TestChainedCutThrough: at light load the end-to-end head latency is a
// small constant per hop — the head is ejected long before the tail has
// entered the first switch, which is only possible if cut-through chains
// across stages.
func TestChainedCutThrough(t *testing.T) {
	const n = 64 // 6 stages of 2×2 switches, cells of 4 words
	f := mustNet(t, Config{Terminals: n, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true})
	f.Inject(5, 37, 1)
	for i := 0; i < 200; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Delivered() != 1 {
		t.Fatalf("delivered %d", f.Delivered())
	}
	lat := f.Latency().Mean()
	// Per hop: 2 cycles through the switch + 1 wire register = 3; the
	// last hop adds its own 2. Anything near stages*3 is chained
	// cut-through; store-and-forward would cost ≥ stages*(K+2) = 36.
	stages := 6
	if lat > float64(stages*4) {
		t.Fatalf("head latency %v cycles: not chained cut-through (SF would be ≥ %d)", lat, stages*(f.CellWords()+2))
	}
}

// TestStoreAndForwardFabricSlower: the same fabric without cut-through
// pays ≈K+ cycles per hop.
func TestStoreAndForwardFabricSlower(t *testing.T) {
	const n = 16
	ct := mustNet(t, Config{Terminals: n, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true})
	sf := mustNet(t, Config{Terminals: n, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: false})
	for _, f := range []*Net{ct, sf} {
		f.Inject(3, 12, 1)
		for i := 0; i < 300; i++ {
			if err := f.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if f.Delivered() != 1 {
			t.Fatalf("delivered %d", f.Delivered())
		}
	}
	if sf.Latency().Mean() < ct.Latency().Mean()+8 {
		t.Fatalf("SF latency %v not clearly above CT %v", sf.Latency().Mean(), ct.Latency().Mean())
	}
}

// TestLosslessUnderLoad: with credits the fabric delivers everything —
// zero drops, zero corruption — under sustained random traffic.
func TestLosslessUnderLoad(t *testing.T) {
	f := mustNet(t, Config{Terminals: 16, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: 3, CutThrough: true})
	res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.5, Seed: 3}, 2_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 || res.Corrupt != 0 {
		t.Fatalf("drops=%d corrupt=%d", res.Drops, res.Corrupt)
	}
	if res.Throughput < 0.45 {
		t.Fatalf("throughput %v at offered 0.5", res.Throughput)
	}
}

// TestCreditsBoundOccupancy: no node's buffer ever exceeds radix×credits
// cells — the flow control really is what bounds memory.
func TestCreditsBoundOccupancy(t *testing.T) {
	const credits = 2
	f := mustNet(t, Config{Terminals: 16, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: credits, CutThrough: true})
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Saturation, N: 16, Seed: 5}, f.CellWords())
	if err != nil {
		t.Fatal(err)
	}
	heads := make([]int, 16)
	var seq uint64
	for c := 0; c < 20_000; c++ {
		cs.Heads(heads)
		for term, dst := range heads {
			if dst != traffic.NoArrival {
				seq++
				f.Inject(term, dst, seq)
			}
		}
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		// Interior stages (credit-protected inputs) must stay bounded.
		for st := 1; st < f.stages; st++ {
			for i, sw := range f.sw[st] {
				if got := sw.Buffered(); got > f.k*credits {
					t.Fatalf("cycle %d stage %d switch %d: %d cells buffered > k×credits = %d",
						c, st, i, got, f.k*credits)
				}
			}
		}
	}
}

// TestSharedBufferFabricBeatsWormhole is the headline composition result:
// on the same multistage topology, shared-buffer cut-through nodes
// sustain much higher saturation throughput than input-FIFO wormhole
// nodes — §2's architecture ranking, composed.
func TestSharedBufferFabricBeatsWormhole(t *testing.T) {
	const n = 64
	f := mustNet(t, Config{Terminals: n, Radix: 2, WordBits: 16, SwitchCells: 32, Credits: 4, CutThrough: true})
	fres, err := Run(f, traffic.Config{Kind: traffic.Saturation, Seed: 7}, 10_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wormhole.New(wormhole.Config{Terminals: n, BufferFlits: 16, MsgFlits: 20, Saturate: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wres, err := wormhole.Run(w, 10_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Corrupt != 0 {
		t.Fatalf("fabric corrupt=%d", fres.Corrupt)
	}
	if fres.Throughput < wres.Throughput+0.15 {
		t.Fatalf("shared-buffer fabric %.3f not clearly above wormhole %.3f",
			fres.Throughput, wres.Throughput)
	}
}

// TestDeterminism: same seed → same result.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		f := mustNet(t, Config{Terminals: 16, Radix: 2, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true})
		res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.4, Seed: 11}, 1_000, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestRadix4: higher-radix nodes work too (8-word cells, 2 stages).
func TestRadix4(t *testing.T) {
	f := mustNet(t, Config{Terminals: 16, Radix: 4, WordBits: 16, SwitchCells: 32, Credits: 2, CutThrough: true})
	res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.6, Seed: 13}, 2_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 0 || res.Drops != 0 {
		t.Fatalf("corrupt=%d drops=%d", res.Corrupt, res.Drops)
	}
	if res.Throughput < 0.5 {
		t.Fatalf("throughput %v at offered 0.6", res.Throughput)
	}
}

// TestLineMathQuick: switchOf/lineOf round-trip and routing consistency
// for random radices and sizes (property-based).
func TestLineMathQuick(t *testing.T) {
	f := func(kRaw, sRaw uint8) bool {
		k := 2 + int(kRaw%3)      // radix 2..4
		stages := 2 + int(sRaw%3) // 2..4 stages
		n := 1
		for i := 0; i < stages; i++ {
			n *= k
		}
		net, err := New(Config{Terminals: n, Radix: k, WordBits: 16, SwitchCells: 8, CutThrough: true})
		if err != nil {
			return false
		}
		for st := 0; st < net.stages; st++ {
			for l := 0; l < net.n; l++ {
				sw, port := net.switchOf(st, l)
				if net.lineOf(st, sw, port) != l {
					return false
				}
			}
		}
		// Routing consistency: following the route digits from any
		// terminal reaches exactly dst.
		for term := 0; term < n; term += 1 + n/7 {
			for dst := 0; dst < n; dst += 1 + n/5 {
				line := term
				for st := 0; st < net.stages; st++ {
					sw, _ := net.switchOf(st, line)
					line = net.lineOf(st, sw, net.routeDigit(dst, st))
				}
				if line != dst {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
