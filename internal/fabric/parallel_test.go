package fabric

import (
	"errors"
	"reflect"
	"testing"

	"pipemem/internal/bufmgr"
	"pipemem/internal/traffic"
)

// driveCollect runs a fabric under a traffic stream and collects the
// per-cycle delivered deltas — the finest-grained externally visible
// timeline.
func driveCollect(t *testing.T, f *Net, tcfg traffic.Config, cycles int) []int64 {
	t.Helper()
	tcfg.N = f.n
	cs, err := traffic.NewCellStream(tcfg, f.cellK)
	if err != nil {
		t.Fatal(err)
	}
	heads := make([]int, f.n)
	var seq uint64
	out := make([]int64, cycles)
	prev := int64(0)
	for i := 0; i < cycles; i++ {
		cs.Heads(heads)
		for term, dst := range heads {
			if dst != traffic.NoArrival {
				seq++
				f.Inject(term, dst, seq)
			}
		}
		if err := f.Step(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		out[i] = f.Delivered() - prev
		prev = f.Delivered()
	}
	return out
}

// TestParallelBitIdentical proves the sharded engine is bit-identical to
// the sequential reference: same traffic → the same cells delivered in
// the same cycles, the same credit state, and the same latency histogram
// (including the order-sensitive float mean), at every worker count.
// 256 terminals of radix 2 give 1024 nodes — 16 occupancy words, so
// workers 2 and 4 genuinely shard. This test also runs under -race in CI
// (make race), which checks the cross-shard publication edges.
func TestParallelBitIdentical(t *testing.T) {
	cfg := Config{
		Terminals: 256, Radix: 2, WordBits: 16, SwitchCells: 16,
		Credits: 4, CutThrough: true,
	}
	traffics := []traffic.Config{
		{Kind: traffic.Saturation, Seed: 909},
		{Kind: traffic.Hotspot, Load: 0.8, HotFrac: 0.3, Seed: 910},
	}
	const cycles = 700
	for _, tc := range traffics {
		cfg.Workers = 1
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		refTimeline := driveCollect(t, ref, tc, cycles)
		for _, workers := range []int{2, 4} {
			cfg.Workers = workers
			par, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			timeline := driveCollect(t, par, tc, cycles)
			if !reflect.DeepEqual(timeline, refTimeline) {
				for i := range timeline {
					if timeline[i] != refTimeline[i] {
						t.Fatalf("%s workers=%d: delivered delta diverges at cycle %d: %d vs %d",
							tc.Kind, workers, i, timeline[i], refTimeline[i])
					}
				}
			}
			if par.Injected() != ref.Injected() || par.Delivered() != ref.Delivered() {
				t.Fatalf("%s workers=%d: totals %d/%d vs %d/%d", tc.Kind, workers,
					par.Injected(), par.Delivered(), ref.Injected(), ref.Delivered())
			}
			if !reflect.DeepEqual(par.Engine().CreditState(), ref.Engine().CreditState()) {
				t.Fatalf("%s workers=%d: credit state diverged", tc.Kind, workers)
			}
			if !reflect.DeepEqual(par.Latency().State(), ref.Latency().State()) {
				t.Fatalf("%s workers=%d: latency histogram diverged", tc.Kind, workers)
			}
			for st := 0; st < par.stages; st++ {
				if !reflect.DeepEqual(par.Engine().ArrivalsAt(st), ref.Engine().ArrivalsAt(st)) {
					t.Fatalf("%s workers=%d: stage %d arrival counts diverged", tc.Kind, workers, st)
				}
			}
			if err := par.Audit(); err != nil {
				t.Fatalf("%s workers=%d: audit: %v", tc.Kind, workers, err)
			}
			par.Close()
		}
		ref.Close()
	}
}

// TestStepZeroAlloc is the regression test for the Step hot loop: after
// warmup the whole inject+step cycle — ring distribution, every node's
// Tick/Drain, flight bookkeeping, ejection verification — allocates
// nothing.
func TestStepZeroAlloc(t *testing.T) {
	f, err := New(Config{
		Terminals: 64, Radix: 8, WordBits: 16, SwitchCells: 32,
		Credits: 4, CutThrough: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Saturation, Seed: 11, N: f.n}, f.cellK)
	if err != nil {
		t.Fatal(err)
	}
	heads := make([]int, f.n)
	var seq uint64
	cycle := func() {
		cs.Heads(heads)
		for term, dst := range heads {
			if dst != traffic.NoArrival {
				seq++
				f.Inject(term, dst, seq)
			}
		}
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4096; i++ { // warm pools, rings, staging buffers
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("%.1f allocs per steady-state fabric cycle, want 0", allocs)
	}
}

func TestBadPolicySpec(t *testing.T) {
	_, err := New(Config{
		Terminals: 16, Radix: 4, WordBits: 16, SwitchCells: 8,
		Credits: 2, Policy: "nonsense:key=val",
	})
	if !errors.Is(err, bufmgr.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if err := (Config{
		Terminals: 16, Radix: 4, WordBits: 16, SwitchCells: 8,
		Policy: "dt:alpha=wat",
	}).Validate(); !errors.Is(err, bufmgr.ErrBadConfig) {
		t.Fatalf("Validate err = %v, want ErrBadConfig", err)
	}
}

// TestPolicyPlumbs checks a real policy reaches the nodes: a tiny static
// partition on stage-0 switches must drop under saturation where
// complete sharing would not, without breaking fabric integrity.
func TestPolicyPlumbs(t *testing.T) {
	run := func(policy string) (Result, int64) {
		f, err := New(Config{
			Terminals: 16, Radix: 4, WordBits: 16, SwitchCells: 8,
			Credits: 0, CutThrough: true, Policy: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		res, err := Run(f, traffic.Config{Kind: traffic.Saturation, Seed: 77}, 200, 800)
		if err != nil {
			t.Fatal(err)
		}
		var polDrops int64
		for st := range f.sw {
			for _, s := range f.sw[st] {
				polDrops += s.Counters().Get("drop-policy")
			}
		}
		return res, polDrops
	}
	share, sharePol := run("")
	part, partPol := run("static:quota=1")
	if part.Corrupt != 0 || share.Corrupt != 0 {
		t.Fatal("corruption under policy plumb")
	}
	if part.Delivered == 0 {
		t.Fatal("static partition delivered nothing")
	}
	if sharePol != 0 {
		t.Fatalf("complete sharing booked %d policy drops", sharePol)
	}
	if partPol == 0 {
		t.Fatal("static:quota=1 never refused a cell under saturation — policy not applied")
	}
}
