package fabric

import (
	"os"
	"testing"
	"time"

	"pipemem/internal/traffic"
)

// TestFabricAggregateRate is the opt-in 1024-terminal throughput gate
// (PIPEMEM_FABRIC_PERF=1, run by `make fabric-perf`). It drives a
// 1024-terminal butterfly at saturation and reports the aggregate
// switching rate — delivered cells × stages per wall-clock second, i.e.
// cells forwarded per second summed over every node — best of several
// windows to shed co-tenant noise.
//
// The floor asserted here is a regression tripwire for the sequential
// per-core engine, set well under the rate the reference host sustains
// (see EXPERIMENTS.md for measured numbers); the design target of 10M+
// aggregate cells/sec is a multi-core figure — the sharded engine splits
// the node array across workers with bit-identical results, and the gate
// host has a single CPU, so wall-clock scaling beyond one core cannot be
// demonstrated here.
func TestFabricAggregateRate(t *testing.T) {
	if os.Getenv("PIPEMEM_FABRIC_PERF") != "1" {
		t.Skip("wall-clock throughput gate is opt-in: set PIPEMEM_FABRIC_PERF=1 (make fabric-perf)")
	}
	const floor = 250_000 // aggregate cells/sec, conservative for shared hosts
	f, err := New(Config{
		Terminals: 1024, Radix: 4, WordBits: 16, SwitchCells: 16,
		Credits: 4, CutThrough: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cs, err := traffic.NewCellStream(traffic.Config{Kind: traffic.Saturation, Seed: 5, N: 1024}, f.cellK)
	if err != nil {
		t.Fatal(err)
	}
	heads := make([]int, 1024)
	var seq uint64
	cycle := func() {
		cs.Heads(heads)
		for term, dst := range heads {
			if dst != traffic.NoArrival {
				seq++
				f.Inject(term, dst, seq)
			}
		}
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		cycle()
	}
	const windows, meas = 4, 1000
	var best float64
	for w := 0; w < windows; w++ {
		d0 := f.Delivered()
		start := time.Now()
		for i := 0; i < meas; i++ {
			cycle()
		}
		el := time.Since(start)
		agg := float64((f.Delivered()-d0)*int64(f.stages)) / el.Seconds()
		if agg > best {
			best = agg
		}
	}
	if err := f.Audit(); err != nil {
		t.Fatal(err)
	}
	t.Logf("1024-terminal radix-4 butterfly: %.2fM aggregate cells/sec (best of %d windows)", best/1e6, windows)
	if best < floor {
		t.Fatalf("aggregate rate %.0f cells/sec below the %.0f floor", best, float64(floor))
	}
}
