package fabric

import (
	"testing"

	"pipemem/internal/traffic"
)

func BenchmarkStepAlloc(b *testing.B) {
	f, err := New(Config{
		Terminals: 64, Radix: 8, WordBits: 16, SwitchCells: 32,
		Credits: 4, CutThrough: true, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cs, _ := traffic.NewCellStream(traffic.Config{Kind: traffic.Saturation, Seed: 11, N: f.n}, f.cellK)
	heads := make([]int, f.n)
	var seq uint64
	cycle := func() {
		cs.Heads(heads)
		for term, dst := range heads {
			if dst != traffic.NoArrival {
				seq++
				f.Inject(term, dst, seq)
			}
		}
		if err := f.Step(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 4096; i++ {
		cycle()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
