package engine

import (
	"pipemem/internal/obs"
)

// metrics is the engine's pre-registered observability surface: fabric
// totals plus per-node gauge vectors (indexed by flat global node id,
// stage-major — node 0 of stage 1 follows the last node of stage 0).
type metrics struct {
	cycle     *obs.Gauge
	injected  *obs.Gauge
	delivered *obs.Gauge
	inflight  *obs.Gauge
	latOvf    *obs.Gauge
	badEject  *obs.Gauge

	nodeBuffered *obs.GaugeVec
	nodeArrivals *obs.GaugeVec
	nodeDrops    *obs.GaugeVec
}

// RegisterMetrics pre-registers the engine's metrics on reg under the
// given name prefix (e.g. "fabric"). Call once, before serving the
// registry; SyncMetrics then publishes fresh values on demand. The
// per-node vectors carry one element per switch in the whole fabric.
func (e *Engine) RegisterMetrics(reg *obs.Registry, prefix string) {
	m := &metrics{
		cycle:     reg.Gauge(prefix+"_cycle", "current fabric cycle"),
		injected:  reg.Gauge(prefix+"_injected_cells", "cells offered at the terminals"),
		delivered: reg.Gauge(prefix+"_delivered_cells", "cells delivered end to end"),
		inflight:  reg.Gauge(prefix+"_inflight_cells", "cells inside the fabric"),
		latOvf:    reg.Gauge(prefix+"_latency_overflow", "latency samples beyond the histogram range"),
		badEject:  reg.Gauge(prefix+"_bad_ejects", "corrupt or misrouted ejections"),

		nodeBuffered: reg.GaugeVec(prefix+"_node_buffered_cells", "cells resident per switch element", "node", len(e.nodes)),
		nodeArrivals: reg.GaugeVec(prefix+"_node_arrivals", "head cells forwarded through each switch element", "node", len(e.nodes)),
		nodeDrops:    reg.GaugeVec(prefix+"_node_dropped_cells", "cells dropped inside each switch element", "node", len(e.nodes)),
	}
	e.met = m
}

// SyncMetrics publishes the current engine state into the registered
// metrics. Safe to call at any cadence (it reads counters the engine
// already maintains — no extra hot-loop work); a no-op when
// RegisterMetrics was never called. Must run between Steps (it flushes
// the shard-local hop-latency shadows).
func (e *Engine) SyncMetrics() {
	if e.hopHists != nil {
		e.flushHopHists()
	}
	m := e.met
	if m == nil {
		return
	}
	m.cycle.Set(e.cycle)
	m.injected.Set(e.injected)
	m.delivered.Set(e.delivered)
	m.inflight.Set(int64(e.flights.n))
	m.latOvf.Set(e.latency.Overflow())
	m.badEject.Set(e.badEject)
	for g, nd := range e.nodes {
		m.nodeBuffered.At(g).Set(int64(nd.Buffered()))
		m.nodeArrivals.At(g).Set(e.arrivals[g])
		ctr := nd.Counters()
		m.nodeDrops.At(g).Set(ctr.Get("drop-overrun") + ctr.Get("drop-policy") + ctr.Get("drop-pushout"))
	}
}
