// Package engine is the shared multistage-fabric engine behind
// internal/fabric (k-ary butterfly) and internal/clos (three-stage Clos):
// a topology-agnostic mesh of cycle-accurate core.Switch nodes, chained
// cut-through via the per-node transmit hooks, credit-based flow control
// on every inter-stage link — and the ability to tick every node of every
// stage in parallel across a worker pool while staying bit-identical to
// the sequential reference.
//
// # Determinism under parallelism
//
// Within one cycle the nodes are data-independent: inter-stage traffic
// moves only through the transmit hooks into a cycle-indexed injection
// ring (a head booked at cycle c is latched downstream at c+2, one wire
// register after it appears on the link), so no node reads another node's
// cycle-c work. The only cross-node state is the credit array, and its
// accesses factor cleanly:
//
//   - decrements (taking a credit on the downstream link) and the gate
//     reads that observe them happen only in the one upstream node that
//     owns the link — node-local, no contention;
//   - increments (releasing the inbound link when a cell leaves a stage-t
//     node) are only ever read by stage t-1 gates, which the sequential
//     engine runs earlier in the same cycle — so a release is first
//     observable one cycle later no matter what.
//
// Deferring every release to the end-of-cycle barrier therefore preserves
// every value any gate ever observes, and the whole fabric ticks in a
// single parallel region per cycle — one barrier, not one per stage.
// Everything order-sensitive (latency histogram adds are float sums,
// ejection verification, error surfacing) is staged per shard and merged
// at the barrier in ascending node order, exactly the order the
// sequential engine produces; the outcome is independent of the worker
// count, which the equivalence tests verify bit for bit.
//
// # Zero-allocation steady state
//
// The per-cycle loop allocates nothing once warm: head arrivals live in a
// preallocated ring of 4 cycle slots × (node, port) (transmit hooks book
// at +2, injections at +0), per-cell bookkeeping is pooled in an
// open-addressed flight table, hop cells are drawn from per-node pools
// (refilled by Drain under the recycle contract — flow conservation keeps
// them balanced), and quiescent nodes are skipped entirely via occupancy
// bitmaps, catching up through core.TickN's event-driven fast-forward
// when traffic returns.
package engine

import (
	"fmt"
	"math/bits"
	"runtime"

	"pipemem/internal/bufmgr"
	"pipemem/internal/cell"
	"pipemem/internal/core"
	"pipemem/internal/obs"
	"pipemem/internal/stats"
)

// Topology describes a multistage network to the engine: uniform-radix
// stages, a wiring function, per-stage routing digits, and the terminal
// maps at the edges. Implementations must be pure (the engine precomputes
// flat tables from them at construction).
type Topology interface {
	// Stages returns the stage count s ≥ 2.
	Stages() int
	// NodesAt returns the switch count of a stage.
	NodesAt(stage int) int
	// Radix returns the uniform port count of every node.
	Radix() int
	// Terminals returns the external terminal count.
	Terminals() int
	// Downstream maps (stage, node, out) to the next stage's (node,
	// port), both stage-local, for stage < Stages()-1. (-1, -1) marks an
	// output that must never carry traffic (e.g. an unpopulated Clos
	// middle); the engine gates it off.
	Downstream(stage, node, out int) (int, int)
	// RouteDst returns the output port a cell for terminal dst requests
	// at a node of the given stage (called for stages ≥ 1; the stage-0
	// request is chosen by the injector, e.g. Clos middle selection).
	RouteDst(stage, dst int) int
	// InjectPoint maps a terminal to its stage-0 (node, port).
	InjectPoint(term int) (int, int)
	// EjectTerminal maps a last-stage (node, out) to the terminal served.
	EjectTerminal(node, out int) int
}

// Config parameterizes the engine.
type Config struct {
	Topo Topology
	// WordBits is the link width.
	WordBits int
	// SwitchCells is each node's buffer capacity in cells.
	SwitchCells int
	// Credits is the per-inter-stage-link credit allowance (0 disables
	// flow control).
	Credits int
	// CutThrough enables automatic cut-through in every node.
	CutThrough bool
	// Policy optionally names a bufmgr admission policy (spec grammar
	// name:key=val) installed on every node. Malformed specs fail New
	// with an error wrapping bufmgr.ErrBadConfig.
	Policy string
	// Workers is the shard count ticking the fabric in parallel
	// (0 = GOMAXPROCS, clamped to the fabric's bitmap word count so tiny
	// nets do not spin idle goroutines). 1 runs inline on the caller.
	Workers int
}

// Engine is the sharded fabric core. It is not safe for concurrent use by
// multiple callers; one goroutine drives Inject/Step and the engine fans
// the per-cycle work out internally.
type Engine struct {
	topo     Topology
	stages   int
	k        int // radix (ports per node)
	cellK    int // words per cell (2·radix)
	wordBits int
	creditOn bool
	maxCred  int32

	cycle int64

	nodes []*core.Switch // flat, stage-major
	base  []int          // base[stage] = global index of the stage's node 0
	last  int            // base of the last stage

	// down maps packed (node, out) to the packed downstream (node, port)
	// — which is simultaneously the ring index the hop cell lands at and
	// the credit slot the hop consumes. -1 marks outputs with no
	// downstream (last-stage ejects, unpopulated middles).
	down []int32
	// credits[g*k+port] is the allowance of the link INTO node g's port.
	credits []int32
	// route[t][dst] is the output digit requested at stage t ≥ 1.
	route [][]int32
	// ejectTerm maps packed last-stage (local node, out) to terminals.
	ejectTerm []int32
	// injIdx maps terminals to their packed stage-0 (node, port).
	injIdx []int32

	// ring[c&3][g*k+port] holds the head cell arriving at that input in
	// cycle c. Hooks book at +2, Inject at +0; depth 4 covers both with
	// room to detect stragglers as duplicates rather than overwrites.
	ring [4][]*cell.Cell
	// mask[c&3] is the per-node has-arrivals bitmap for cycle c
	// (injections set it directly; hook arrivals merge in via the shard
	// staging masks at the barrier).
	mask [4][]uint64
	// busy marks nodes that were not quiescent after their last tick.
	// busy ∪ mask[cycle&3] is the set ticked this cycle; everyone else is
	// skipped and caught up later with TickN's O(1) fast-forward.
	busy []uint64

	// pools[g] recycles hop cells: node g's transmit hook draws from it,
	// node g's Drain refills it (flow conservation balances them), and
	// only g's shard touches it. injPool is the coordinator's: Inject
	// draws, ejection returns.
	pools   []*cell.Pool
	injPool *cell.Pool

	flights *flightTable
	scratch *cell.Cell // eject-verification payload regeneration

	// arrivals counts heads consumed per node (by the owning shard) —
	// per-element forwarding load, e.g. Clos middle balance.
	arrivals []int64

	nw     int
	shards []shard
	bar    barrier
	closed bool

	injected, delivered, badEject, dropped int64
	latency                                *stats.Hist
	pendErr                                error

	met *metrics

	// Flight tracing / telemetry / profiling — see trace.go. flightObs
	// gates the per-arrival flight-record updates (hopStart, depth) that
	// both span tracing and the hop-latency histograms consume.
	trace      *obs.Tracer
	traceEvery uint64
	flightObs  bool
	hopHists   []*obs.Histogram
	ts         *obs.TimeSeries
	tsEvery    int64
	prof       *StepProf
}

// New builds the engine (and starts its worker pool when Workers > 1).
// Callers that request Workers > 1 must Close the engine when done.
func New(cfg Config) (*Engine, error) {
	t := cfg.Topo
	if t == nil {
		return nil, fmt.Errorf("engine: nil topology")
	}
	s, k := t.Stages(), t.Radix()
	if s < 2 || k < 2 {
		return nil, fmt.Errorf("engine: %d stages of radix %d", s, k)
	}
	if cfg.SwitchCells < 1 {
		return nil, fmt.Errorf("engine: %d cells per switch", cfg.SwitchCells)
	}
	if cfg.Credits < 0 {
		return nil, fmt.Errorf("engine: negative credits")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("engine: negative workers")
	}
	var pol bufmgr.Policy
	if cfg.Policy != "" {
		p, err := bufmgr.Parse(cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		pol = p
	}

	e := &Engine{
		topo: t, stages: s, k: k, cellK: 2 * k, wordBits: cfg.WordBits,
		creditOn: cfg.Credits > 0, maxCred: int32(cfg.Credits),
		base:    make([]int, s),
		flights: newFlightTable(),
		latency: stats.NewHist(1 << 14),
	}
	total := 0
	for st := 0; st < s; st++ {
		e.base[st] = total
		total += t.NodesAt(st)
	}
	e.last = e.base[s-1]
	words := (total + 63) / 64

	e.nodes = make([]*core.Switch, total)
	e.down = make([]int32, total*k)
	e.credits = make([]int32, total*k)
	e.arrivals = make([]int64, total)
	e.busy = make([]uint64, words)
	e.pools = make([]*cell.Pool, total)
	for i := range e.ring {
		e.ring[i] = make([]*cell.Cell, total*k)
		e.mask[i] = make([]uint64, words)
	}
	for g := range e.pools {
		e.pools[g] = cell.NewPool(e.cellK)
	}
	e.injPool = cell.NewPool(e.cellK)
	e.scratch = &cell.Cell{Words: make([]cell.Word, e.cellK)}
	for i := range e.credits {
		e.credits[i] = int32(cfg.Credits)
	}

	// Flat topology tables: wiring, routing digits, terminal maps.
	nTerm := t.Terminals()
	e.route = make([][]int32, s)
	for st := 1; st < s; st++ {
		e.route[st] = make([]int32, nTerm)
		for dst := 0; dst < nTerm; dst++ {
			e.route[st][dst] = int32(t.RouteDst(st, dst))
		}
	}
	for st := 0; st < s; st++ {
		cnt := t.NodesAt(st)
		for i := 0; i < cnt; i++ {
			g := e.base[st] + i
			for out := 0; out < k; out++ {
				e.down[g*k+out] = -1
				if st == s-1 {
					continue
				}
				if dn, dp := t.Downstream(st, i, out); dn >= 0 {
					if dn >= t.NodesAt(st+1) || dp < 0 || dp >= k {
						return nil, fmt.Errorf("engine: downstream(%d,%d,%d) = (%d,%d) out of range", st, i, out, dn, dp)
					}
					e.down[g*k+out] = int32((e.base[st+1]+dn)*k + dp)
				}
			}
		}
	}
	lastCnt := t.NodesAt(s - 1)
	e.ejectTerm = make([]int32, lastCnt*k)
	for i := 0; i < lastCnt; i++ {
		for out := 0; out < k; out++ {
			e.ejectTerm[i*k+out] = int32(t.EjectTerminal(i, out))
		}
	}
	e.injIdx = make([]int32, nTerm)
	for term := 0; term < nTerm; term++ {
		n0, p0 := t.InjectPoint(term)
		if n0 < 0 || n0 >= t.NodesAt(0) || p0 < 0 || p0 >= k {
			return nil, fmt.Errorf("engine: inject point (%d,%d) for terminal %d out of range", n0, p0, term)
		}
		e.injIdx[term] = int32((e.base[0]+n0)*k + p0)
	}

	// Shards: contiguous word-aligned node ranges, coordinator included.
	nw := cfg.Workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > words {
		nw = words
	}
	if nw < 1 {
		nw = 1
	}
	e.nw = nw
	e.shards = make([]shard, nw)
	for w := 0; w < nw; w++ {
		e.shards[w].lo = w * words / nw
		e.shards[w].hi = (w + 1) * words / nw
		e.shards[w].arr = make([]uint64, words)
	}
	wordOwner := make([]int32, words)
	for w := 0; w < nw; w++ {
		for wi := e.shards[w].lo; wi < e.shards[w].hi; wi++ {
			wordOwner[wi] = int32(w)
		}
	}

	// The nodes, wired with gates and chained-cut-through hooks.
	for st := 0; st < s; st++ {
		for i := 0; i < t.NodesAt(st); i++ {
			g := e.base[st] + i
			sw, err := core.New(core.Config{
				Ports: k, WordBits: cfg.WordBits, Cells: cfg.SwitchCells,
				CutThrough: cfg.CutThrough,
			})
			if err != nil {
				return nil, err
			}
			if pol != nil {
				sw.SetBufferPolicy(pol)
			}
			sw.SetDrainRecycle(true)
			sh := &e.shards[wordOwner[g>>6]]
			e.installDropHook(sw, g, sh)
			if st < s-1 {
				// Interior drains are consumed only for cell accounting
				// (integrity is verified end-to-end at ejection), so skip
				// the per-departure reassembly and histogram work.
				sw.SetLeanDepartures(true)
				e.installGate(sw, g)
				e.installHook(sw, st, g, sh)
			} else {
				e.installLastHook(sw, sh)
			}
			e.nodes[g] = sw
		}
	}
	if nw > 1 {
		e.startWorkers()
	}
	return e, nil
}

// installGate wires the interior output gate: an output may transmit only
// when it has a downstream link (unpopulated outputs never do) with a
// credit available. Without flow control only the routability check
// remains, and when every output is routable the gate is omitted
// entirely — the node arbitrates at full speed.
func (e *Engine) installGate(sw *core.Switch, g int) {
	base := int32(g * e.k)
	anyDead := false
	for out := 0; out < e.k; out++ {
		if e.down[int(base)+out] < 0 {
			anyDead = true
		}
	}
	switch {
	case e.creditOn:
		sw.SetOutputGate(func(out int) bool {
			d := e.down[base+int32(out)]
			return d >= 0 && e.credits[d] > 0
		})
	case anyDead:
		sw.SetOutputGate(func(out int) bool {
			return e.down[base+int32(out)] >= 0
		})
	}
}

// installHook wires the interior transmit hook — the chained cut-through
// seam. Booked at wave initiation (head on the wire at start+1), the hop
// cell is latched into the downstream node's input ring at start+2, while
// the tail is still K-2 cycles from leaving this node.
func (e *Engine) installHook(sw *core.Switch, st, g int, sh *shard) {
	base := int32(g * e.k)
	releases := st > 0 && e.creditOn
	route := e.route[st+1]
	pool := e.pools[g]
	k := uint32(e.k)
	sw.SetTransmitCellHook(func(out int, c *cell.Cell, start int64) {
		fl := e.flights.get(c.Seq)
		if fl == nil {
			panic(fmt.Sprintf("engine: transmit of unknown cell seq %d", c.Seq))
		}
		if releases {
			// Deferred to the barrier: see the package comment's
			// determinism argument.
			sh.rel = append(sh.rel, fl.inbound)
		}
		if e.flightObs {
			// Head on the wire at start+1; fl.hopStart was stamped when
			// the head arrived here. Staged, not emitted: see trace.go.
			lat := start + 1 - fl.hopStart
			if sh.hop != nil {
				sh.hop[st].Observe(lat)
			}
			if fl.traced {
				sh.spans = append(sh.spans, spanRec{seq: c.Seq, lat: lat,
					node: int32(g), stage: int32(st), depth: fl.depth})
			}
		}
		d := e.down[base+int32(out)]
		if d < 0 {
			panic(fmt.Sprintf("engine: transmit on unroutable output %d of node %d", out, g))
		}
		if e.creditOn {
			if e.credits[d] <= 0 {
				panic(fmt.Sprintf("engine: credit underflow on link %d", d))
			}
			e.credits[d]--
		}
		// The hop cell: payloads are a pure function of (seq, src, dst),
		// so regenerating into a pooled cell is equivalent to cloning the
		// arrival — per-node corruption is still caught by each switch's
		// own integrity counters and the final eject comparison.
		next := pool.Get()
		cell.Fill(next, c.Seq, int(fl.src), int(fl.dst), e.cellK, e.wordBits)
		next.Dst = int(route[fl.dst])
		fl.inbound = d
		slot := (start + 2) & 3
		if e.ring[slot][d] != nil {
			sh.fail(fmt.Errorf("engine: two heads on input slot %d in cycle %d", d, start+2))
			pool.Put(next)
			return
		}
		e.ring[slot][d] = next
		dg := uint32(d) / k
		sh.arr[dg>>6] |= 1 << (dg & 63)
	})
}

// installLastHook wires the last stage: leaving the fabric releases the
// inbound credit; the departure itself is verified from Drain at the
// barrier.
func (e *Engine) installLastHook(sw *core.Switch, sh *shard) {
	if !e.creditOn {
		return
	}
	sw.SetTransmitCellHook(func(out int, c *cell.Cell, start int64) {
		fl := e.flights.get(c.Seq)
		if fl == nil {
			panic(fmt.Sprintf("engine: transmit of unknown cell seq %d", c.Seq))
		}
		sh.rel = append(sh.rel, fl.inbound)
	})
}

// installDropHook wires loss accounting: a cell dropped inside a node
// must retire its flight record (or the table leaks one record per drop
// forever), release the credit it is holding on its inbound link (or the
// link's allowance shrinks permanently with every interior drop), and —
// when the switch provably holds no remaining reference — return the
// cell to the inject pool. All of it is staged and applied at the
// barrier in shard order, keeping the merge deterministic.
func (e *Engine) installDropHook(sw *core.Switch, g int, sh *shard) {
	sw.SetDropCellHook(func(c *cell.Cell, reusable bool) {
		sh.drops = append(sh.drops, dropRec{seq: c.Seq, c: c, node: int32(g), reusable: reusable})
	})
}

// Inject offers a cell at a terminal in the current cycle, requesting
// firstHop as its stage-0 output (the injector's routing freedom: the
// butterfly's digit 0, the Clos middle choice). seq must be nonzero and
// unique among in-flight cells. The caller must respect the word-serial
// spacing (one head per 2·radix cycles per terminal).
func (e *Engine) Inject(term, dst int, seq uint64, firstHop int) {
	var t0 int64
	if e.prof != nil {
		t0 = nowNS()
	}
	fl, err := e.flights.insert(seq)
	if err != nil {
		e.fail(fmt.Errorf("engine: inject at terminal %d: %w", term, err))
		return
	}
	idx := e.injIdx[term]
	fl.src, fl.dst, fl.inject, fl.inbound = int32(term), int32(dst), e.cycle, idx
	if e.trace != nil && seq%e.traceEvery == 0 {
		fl.traced = true
		e.trace.Emit(obs.Event{Kind: obs.EvInject, Cycle: e.cycle,
			In: int32(term), Out: int32(dst), Addr: idx / int32(e.k), Seq: seq})
	}
	c := e.injPool.Get()
	cell.Fill(c, seq, term, dst, e.cellK, e.wordBits)
	c.Dst = firstHop
	slot := e.cycle & 3
	if e.ring[slot][idx] != nil {
		e.fail(fmt.Errorf("engine: two heads injected at terminal %d in cycle %d", term, e.cycle))
		e.injPool.Put(c)
		return
	}
	e.ring[slot][idx] = c
	g := uint32(idx) / uint32(e.k)
	e.mask[slot][g>>6] |= 1 << (g & 63)
	e.injected++
	if e.prof != nil {
		e.prof.InjectNS += nowNS() - t0
		e.prof.Injects++
	}
}

func (e *Engine) fail(err error) {
	if e.pendErr == nil {
		e.pendErr = err
	}
}

// Step advances the whole fabric one clock cycle: one parallel region
// over all active nodes of all stages, then the deterministic barrier
// merge. The merge runs in three passes, each covering the shards in
// ascending order — staged hop spans, then credit releases / arrival
// masks / ejection verification, then drop retirement — so every
// externally visible sequence (trace bytes, histogram adds) is the
// sequential engine's ascending-node order at any worker count.
func (e *Engine) Step() error {
	var t0 int64
	if e.prof != nil {
		t0 = nowNS()
	}
	slot := e.cycle & 3
	e.parallelCycle()
	if e.prof != nil {
		t1 := nowNS()
		e.prof.NodeStepNS += t1 - t0
		t0 = t1
	}

	firstErr := e.pendErr
	e.pendErr = nil
	if e.trace != nil {
		e.flushSpans()
	}
	nslot := (e.cycle + 2) & 3
	nm := e.mask[nslot]
	for w := 0; w < e.nw; w++ {
		sh := &e.shards[w]
		if sh.err != nil {
			if firstErr == nil {
				firstErr = sh.err
			}
			sh.err = nil
		}
		for _, idx := range sh.rel {
			e.credits[idx]++
		}
		sh.rel = sh.rel[:0]
		for i, v := range sh.arr {
			if v != 0 {
				nm[i] |= v
				sh.arr[i] = 0
			}
		}
		for bi := range sh.ejects {
			b := &sh.ejects[bi]
			for di := range b.deps {
				if err := e.eject(int(b.node), &b.deps[di]); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			sh.ejects[bi] = ejectBatch{}
		}
		sh.ejects = sh.ejects[:0]
	}
	for w := 0; w < e.nw; w++ {
		sh := &e.shards[w]
		for di := range sh.drops {
			if err := e.retireDrop(&sh.drops[di]); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.drops[di] = dropRec{}
		}
		sh.drops = sh.drops[:0]
	}
	if e.ts != nil && e.cycle%e.tsEvery == 0 {
		e.sampleTelemetry()
	}
	// The consumed slot's mask was cleared word-by-word inside the
	// shards; its ring entries were nilled right after each Tick.
	_ = slot
	if e.prof != nil {
		e.prof.MergeNS += nowNS() - t0
		e.prof.Cycles++
	}
	if firstErr != nil {
		return firstErr
	}
	e.cycle++
	return nil
}

// runShard ticks the shard's active nodes for the current cycle. Active =
// has arrivals this cycle or was not quiescent after its last tick;
// everyone else is skipped, and a skipped node catches up with TickN(nil,
// gap) — O(1) once drained — before its next real work.
func (e *Engine) runShard(w int) {
	sh := &e.shards[w]
	cyc := e.cycle
	slot := cyc & 3
	cm := e.mask[slot]
	ring := e.ring[slot]
	k := e.k
	for wi := sh.lo; wi < sh.hi; wi++ {
		arrived := cm[wi]
		act := arrived | e.busy[wi]
		if act == 0 {
			continue
		}
		cm[wi] = 0
		newBusy := e.busy[wi]
		gbase := wi << 6
		for act != 0 {
			b := bits.TrailingZeros64(act)
			bit := uint64(1) << b
			act &^= bit
			g := gbase + b
			nd := e.nodes[g]
			if gap := cyc - nd.Cycle(); gap > 0 {
				nd.TickN(nil, gap)
			}
			var heads []*cell.Cell
			if arrived&bit != 0 {
				heads = ring[g*k : g*k+k : g*k+k]
				cnt := 0
				if e.flightObs {
					// Stamp each arriving flight with its hop start and the
					// occupancy it found — read back by this node's transmit
					// hook (same shard), so the writes stay shard-local.
					buffered := int32(nd.Buffered())
					for _, h := range heads {
						if h != nil {
							cnt++
							if fl := e.flights.get(h.Seq); fl != nil {
								fl.hopStart = cyc
								fl.depth = buffered
							}
						}
					}
				} else {
					for _, h := range heads {
						if h != nil {
							cnt++
						}
					}
				}
				e.arrivals[g] += int64(cnt)
			}
			nd.Tick(heads)
			if deps := nd.Drain(); len(deps) > 0 {
				if g >= e.last {
					sh.ejects = append(sh.ejects, ejectBatch{node: int32(g), deps: deps})
				} else {
					pool := e.pools[g]
					for di := range deps {
						pool.Put(deps[di].Expected)
					}
				}
			}
			for i := range heads {
				heads[i] = nil
			}
			if nd.Quiescent() {
				newBusy &^= bit
			} else {
				newBusy |= bit
			}
		}
		e.busy[wi] = newBusy
	}
}

// retireDrop settles a cell lost inside a node: the flight record is
// removed (so the table cannot leak one record per drop), the credit the
// cell held on its inbound inter-stage link is released (terminal
// injection at stage 0 holds none), and a victim the switch no longer
// references goes back to the inject pool — which is what keeps the
// steady state allocation-free even under sustained edge drops.
func (e *Engine) retireDrop(dr *dropRec) error {
	fl := e.flights.get(dr.seq)
	if fl == nil {
		return fmt.Errorf("engine: drop of unknown cell %d at node %d", dr.seq, dr.node)
	}
	if e.creditOn && int(dr.node) >= e.base[1] {
		e.credits[fl.inbound]++
	}
	e.dropped++
	if fl.traced {
		e.trace.Emit(obs.Event{Kind: obs.EvDrop, Cycle: e.cycle,
			In: -1, Out: fl.dst, Addr: dr.node, V: e.cycle - fl.inject, Seq: dr.seq})
	}
	e.flights.remove(dr.seq)
	if dr.reusable {
		e.injPool.Put(dr.c)
	}
	return nil
}

// eject verifies a cell leaving the last stage: right terminal, identity
// and payload intact (regenerated from the flight — see installHook).
func (e *Engine) eject(g int, d *core.Departure) error {
	seq := d.Expected.Seq
	fl := e.flights.get(seq)
	if fl == nil {
		return fmt.Errorf("engine: ejection of unknown cell %d", seq)
	}
	term := e.ejectTerm[(g-e.last)*e.k+d.Output]
	if term != fl.dst {
		e.badEject++
		return fmt.Errorf("engine: cell %d for terminal %d ejected at %d", seq, fl.dst, term)
	}
	if d.Cell.Seq != seq || len(d.Cell.Words) != e.cellK {
		e.badEject++
		return fmt.Errorf("engine: cell %d identity mangled", seq)
	}
	cell.Fill(e.scratch, seq, int(fl.src), int(fl.dst), e.cellK, e.wordBits)
	for i := range d.Cell.Words {
		if d.Cell.Words[i] != e.scratch.Words[i] {
			e.badEject++
			return fmt.Errorf("engine: cell %d corrupted at word %d", seq, i)
		}
	}
	e.delivered++
	e.latency.Add(d.HeadOut - fl.inject)
	if e.flightObs {
		// The last stage has no interior transmit hook; close out its hop
		// and the whole flight here (coordinator side, node order).
		if e.hopHists != nil {
			e.hopHists[e.stages-1].Observe(d.HeadOut - fl.hopStart)
		}
		if fl.traced {
			e.trace.Emit(obs.Event{Kind: obs.EvHop, Cycle: e.cycle,
				In: int32(e.stages - 1), Out: fl.depth, Addr: int32(g),
				V: d.HeadOut - fl.hopStart, Seq: seq})
			e.trace.Emit(obs.Event{Kind: obs.EvEject, Cycle: e.cycle,
				In: term, Out: -1, Addr: int32(g), V: d.HeadOut - fl.inject, Seq: seq})
		}
	}
	e.injPool.Put(d.Expected)
	e.flights.remove(seq)
	return nil
}

// Cycle returns the current global cycle.
func (e *Engine) Cycle() int64 { return e.cycle }

// Injected returns cells offered at the terminals.
func (e *Engine) Injected() int64 { return e.injected }

// Delivered returns end-to-end delivered cells.
func (e *Engine) Delivered() int64 { return e.delivered }

// BadEjects returns fabric-level integrity violations seen at ejection.
func (e *Engine) BadEjects() int64 { return e.badEject }

// Dropped returns cells lost inside the fabric (flights retired by the
// drop hook); Injected = Delivered + Dropped + InFlight at all times.
func (e *Engine) Dropped() int64 { return e.dropped }

// InFlight returns cells injected but not yet delivered (including any
// that were dropped inside a node and will never arrive).
func (e *Engine) InFlight() int { return e.flights.n }

// Latency returns the inject→head-ejection histogram in cycles.
func (e *Engine) Latency() *stats.Hist { return e.latency }

// LatencyOverflow returns end-to-end latency samples that exceeded the
// histogram range and were only counted, not binned. A nonzero value
// means MeanLatency/quantiles silently understate the tail; Audit fails
// on it.
func (e *Engine) LatencyOverflow() int64 { return e.latency.Overflow() }

// CellWords returns the cell size in words (2·radix).
func (e *Engine) CellWords() int { return e.cellK }

// Workers returns the resolved shard count.
func (e *Engine) Workers() int { return e.nw }

// NodeAt returns the switch at (stage, i).
func (e *Engine) NodeAt(stage, i int) *core.Switch { return e.nodes[e.base[stage]+i] }

// ArrivalsAt returns per-node head-arrival counts for one stage (a copy):
// the per-element forwarding load, e.g. the Clos middle balance.
func (e *Engine) ArrivalsAt(stage int) []int64 {
	lo := e.base[stage]
	return append([]int64(nil), e.arrivals[lo:lo+e.topo.NodesAt(stage)]...)
}

// CreditState returns the packed per-link credit array (a copy) — the
// equivalence tests compare it across worker counts.
func (e *Engine) CreditState() []int32 {
	return append([]int32(nil), e.credits...)
}

// Audit runs the engine's conservation-style checks: per-node switch
// invariants (occupancy, refcounts, per-switch conservation), credit
// bounds, fabric-level integrity, and — same failure class as truncated
// cut-latency quantiles — a latency histogram that silently overflowed.
func (e *Engine) Audit() error {
	if ovf := e.latency.Overflow(); ovf > 0 {
		return fmt.Errorf("engine: %d latency samples ≥ %d cycles overflowed the histogram (tail statistics are truncated)", ovf, e.latency.Limit())
	}
	if e.badEject > 0 {
		return fmt.Errorf("engine: %d corrupt or misrouted ejections", e.badEject)
	}
	if inFlight := int64(e.flights.n); e.injected != e.delivered+e.dropped+inFlight {
		return fmt.Errorf("engine: cell conservation violated: injected %d ≠ delivered %d + dropped %d + in-flight %d",
			e.injected, e.delivered, e.dropped, inFlight)
	}
	if e.creditOn {
		for i, c := range e.credits {
			if c < 0 || c > e.maxCred {
				return fmt.Errorf("engine: credit slot %d holds %d of %d", i, c, e.maxCred)
			}
		}
	}
	for g, nd := range e.nodes {
		if err := nd.AuditInvariants(); err != nil {
			return fmt.Errorf("engine: node %d: %w", g, err)
		}
	}
	return nil
}

// PoolLens reports each node pool's idle count followed by the inject
// pool's — a diagnostic for flow-balance tests.
func (e *Engine) PoolLens() []int {
	out := make([]int, 0, len(e.pools)+1)
	for _, p := range e.pools {
		out = append(out, p.Len())
	}
	return append(out, e.injPool.Len())
}
