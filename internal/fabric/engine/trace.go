package engine

import (
	"fmt"
	"time"

	"pipemem/internal/core"
	"pipemem/internal/obs"
)

// Flight tracing, fixed-cadence telemetry and the step-phase profiler.
// All three are disabled by default and each costs exactly one branch per
// instrumented site when off, preserving the engine's zero-allocation
// steady state (verified by TestStepZeroAlloc / the fabric-perf gate).
//
// # Determinism of the trace stream
//
// Span events must serialize identically at every worker count, so hop
// records follow the same discipline as every other cross-shard effect:
// transmit hooks stage them in the owning shard (appended in ascending
// node order, the shard's tick order), and the coordinator drains the
// shard buffers in shard order at the end-of-cycle barrier. Shards own
// ascending node ranges, so the concatenation is ascending global node
// order — exactly the order the sequential engine emits. The canonical
// per-cycle order is: hop spans (node order), then ejections (node
// order), then drops (node order); Step applies the three merge passes
// in that order for the same reason.

// spanRec is one staged hop record: a traced cell's head left a node.
type spanRec struct {
	seq   uint64
	lat   int64 // head arrival at the node → head on the outgoing link
	node  int32
	stage int32
	depth int32 // node's buffered-cell count when the head was admitted
}

// SetFlightTrace enables flight tracing: every cell whose sequence number
// is divisible by sample gets a span trail — EvInject at the terminal,
// EvHop per node crossed (with queue depth at admission and hop latency),
// EvEject (or a seq-carrying EvDrop) at the end — emitted through tr.
// Sampling by sequence number is deterministic: which flights are traced
// depends only on the injected workload, never on execution order, so the
// trace stream is byte-identical at every worker count. Call before the
// first Step; a nil tracer disables tracing again.
func (e *Engine) SetFlightTrace(tr *obs.Tracer, sample int) error {
	if tr != nil && sample < 1 {
		return fmt.Errorf("engine: flight-trace sample %d (want ≥ 1)", sample)
	}
	e.trace = tr
	e.traceEvery = uint64(sample)
	e.flightObs = tr != nil || e.hopHists != nil
	return nil
}

// RegisterHopHists pre-registers per-stage hop-latency histograms
// (head arrival at a node → head on the outgoing link, in cycles) on reg
// and starts feeding them for every cell, traced or not. The shadows are
// shard-local plain counters flushed by the coordinator in SyncMetrics,
// so the hot path never touches an atomic.
func (e *Engine) RegisterHopHists(reg *obs.Registry, prefix string) {
	bounds := obs.ExpBounds(4, 2, 12)
	e.hopHists = make([]*obs.Histogram, e.stages)
	for st := 0; st < e.stages; st++ {
		e.hopHists[st] = reg.Histogram(
			fmt.Sprintf("%s_stage%d_hop_latency_cycles", prefix, st),
			fmt.Sprintf("per-hop latency through stage-%d nodes in cycles", st),
			bounds)
	}
	for w := range e.shards {
		sh := &e.shards[w]
		sh.hop = make([]*obs.HistShadow, e.stages)
		for st := 0; st < e.stages; st++ {
			sh.hop[st] = obs.NewHistShadow(e.hopHists[st])
		}
	}
	e.flightObs = true
}

// flushHopHists publishes the shard-local hop-latency shadows into the
// registered histograms (coordinator only, between cycles).
func (e *Engine) flushHopHists() {
	for w := range e.shards {
		for _, s := range e.shards[w].hop {
			s.Flush()
		}
	}
}

// flushSpans drains the staged hop records into the tracer in shard
// order = ascending global node order (see the determinism note above).
func (e *Engine) flushSpans() {
	for w := 0; w < e.nw; w++ {
		sh := &e.shards[w]
		for i := range sh.spans {
			sp := &sh.spans[i]
			e.trace.Emit(obs.Event{Kind: obs.EvHop, Cycle: e.cycle,
				In: sp.stage, Out: sp.depth, Addr: sp.node, V: sp.lat, Seq: sp.seq})
			sh.spans[i] = spanRec{}
		}
		sh.spans = sh.spans[:0]
	}
}

// EnableTelemetry attaches a bounded time-series ring sampled every
// `every` cycles at the end-of-cycle barrier: per stage the total
// buffered-cell occupancy, the deepest single node, and the available
// inbound credits, plus the fabric-wide in-flight count. Returns the
// ring for export (obs.TimeSeries.WriteJSONL). ringCap ≤ 0 picks the
// TimeSeries default.
func (e *Engine) EnableTelemetry(ringCap int, every int64) *obs.TimeSeries {
	if every < 1 {
		every = 1
	}
	names := make([]string, 0, 3*e.stages+1)
	for st := 0; st < e.stages; st++ {
		names = append(names,
			fmt.Sprintf("s%d_buffered", st),
			fmt.Sprintf("s%d_maxq", st),
			fmt.Sprintf("s%d_credits", st))
	}
	names = append(names, "inflight")
	e.ts = obs.NewTimeSeries(ringCap, names...)
	e.tsEvery = every
	return e.ts
}

// Telemetry returns the attached time-series ring (nil when disabled).
func (e *Engine) Telemetry() *obs.TimeSeries { return e.ts }

func (e *Engine) sampleTelemetry() {
	row := e.ts.Sample(e.cycle)
	k := e.k
	for st := 0; st < e.stages; st++ {
		lo := e.base[st]
		hi := lo + e.topo.NodesAt(st)
		var sum, maxq int64
		for g := lo; g < hi; g++ {
			b := int64(e.nodes[g].Buffered())
			sum += b
			if b > maxq {
				maxq = b
			}
		}
		var cred int64
		for i := lo * k; i < hi*k; i++ {
			cred += int64(e.credits[i])
		}
		row[3*st+0], row[3*st+1], row[3*st+2] = sum, maxq, cred
	}
	row[3*e.stages] = int64(e.flights.n)
}

// StepProf attributes wall time inside the engine's cycle loop: the
// parallel node-step region, the coordinator's barrier merge, and the
// Inject path. Attach with SetStepProf; the engine adds into the struct
// with plain stores (single-writer, read it between Steps).
type StepProf struct {
	// NodeStepNS is time inside the parallel region (all shards ticking
	// their nodes), per the coordinator's clock.
	NodeStepNS int64
	// MergeNS is time in the end-of-cycle barrier merge (credit releases,
	// mask ORs, trace flush, ejection verification, drop retirement,
	// telemetry sampling).
	MergeNS int64
	// InjectNS is time inside Engine.Inject calls.
	InjectNS int64
	// Cycles and Injects count the attributed operations.
	Cycles  int64
	Injects int64
}

// SetStepProf attaches (or, with nil, detaches) a step-phase profile.
func (e *Engine) SetStepProf(p *StepProf) { e.prof = p }

// AttachPhaseProfs attaches a fresh core.PhaseProf to every node and
// returns them in global node order. Each node's profile is written only
// by the shard that ticks it, so the parallel region stays race-free;
// sum the slice with core.PhaseProf.Add between Steps.
func (e *Engine) AttachPhaseProfs() []*core.PhaseProf {
	profs := make([]*core.PhaseProf, len(e.nodes))
	for i, nd := range e.nodes {
		profs[i] = &core.PhaseProf{}
		nd.SetPhaseProf(profs[i])
	}
	return profs
}

// nowNS is the profiler clock (monotonic).
func nowNS() int64 { return time.Since(profEpoch).Nanoseconds() }

var profEpoch = time.Now()
