package engine

import "fmt"

// flight is the engine's per-cell bookkeeping while a cell crosses the
// fabric: the identity needed to regenerate its payload at every hop
// (src, dst — cell payloads are a pure function of (seq, src, dst), see
// cell.Fill), the injection cycle for end-to-end latency, and the credit
// slot of the link the cell most recently entered a stage through.
type flight struct {
	seq     uint64
	src     int32
	dst     int32
	inbound int32 // packed (node, port) credit slot of the inbound link
	inject  int64
	// Flight-observation fields, maintained only when the engine's
	// flightObs gate is on: the cycle the head arrived at its current
	// node, the occupancy it found there, and whether this flight was
	// sampled into the span trace.
	hopStart int64
	depth    int32
	traced   bool
}

// flightTable maps in-flight sequence numbers to pooled *flight records
// with open addressing (linear probing, backward-shift deletion), so the
// fabric hot loop never touches a Go map: lookups are a multiply and a
// short probe, and the steady state — constant in-flight population —
// allocates nothing. Key 0 marks an empty slot, so sequence number 0 is
// reserved (Inject rejects it).
type flightTable struct {
	keys []uint64
	vals []*flight
	n    int
	free []*flight
}

const flightMinSlots = 64

func newFlightTable() *flightTable {
	return &flightTable{
		keys: make([]uint64, flightMinSlots),
		vals: make([]*flight, flightMinSlots),
	}
}

// home returns the preferred slot for a key (Fibonacci hashing: the
// sequence numbers arrive consecutively, so spread them multiplicatively
// before masking).
func (t *flightTable) home(seq uint64) int {
	return int((seq * 0x9e3779b97f4a7c15) & uint64(len(t.keys)-1))
}

// get returns the flight for seq, or nil.
func (t *flightTable) get(seq uint64) *flight {
	mask := len(t.keys) - 1
	for i := t.home(seq); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case seq:
			return t.vals[i]
		case 0:
			return nil
		}
	}
}

// insert allocates (or recycles) a flight record for seq and returns it.
// A duplicate or zero seq is an error: the fabric's integrity checks key
// on sequence numbers, so a collision would mis-attribute departures.
func (t *flightTable) insert(seq uint64) (*flight, error) {
	if seq == 0 {
		return nil, fmt.Errorf("sequence number 0 is reserved")
	}
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := len(t.keys) - 1
	for i := t.home(seq); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case seq:
			return nil, fmt.Errorf("duplicate in-flight sequence number %d", seq)
		case 0:
			fl := t.take()
			fl.seq = seq
			t.keys[i], t.vals[i] = seq, fl
			t.n++
			return fl, nil
		}
	}
}

// remove deletes seq and recycles its record, reporting whether it was
// present. Linear probing demands backward-shift deletion: every entry in
// the probe run after the freed slot that could legally live at (or
// before) it moves back, so later lookups never hit a false empty slot.
func (t *flightTable) remove(seq uint64) bool {
	mask := len(t.keys) - 1
	i := t.home(seq)
	for t.keys[i] != seq {
		if t.keys[i] == 0 {
			return false
		}
		i = (i + 1) & mask
	}
	t.free = append(t.free, t.vals[i])
	t.n--
	j := i
	for {
		j = (j + 1) & mask
		if t.keys[j] == 0 {
			break
		}
		h := t.home(t.keys[j])
		// Move keys[j] into the hole at i unless its home lies strictly
		// inside the cyclic interval (i, j] — then it is already as close
		// to home as it can get.
		if (j > i && h > i && h <= j) || (j < i && (h > i || h <= j)) {
			continue
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
	t.keys[i], t.vals[i] = 0, nil
	return true
}

// take pops a recycled record or allocates a fresh one.
func (t *flightTable) take() *flight {
	if n := len(t.free); n > 0 {
		fl := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		*fl = flight{}
		return fl
	}
	return &flight{}
}

// grow doubles the table and reinserts every live entry.
func (t *flightTable) grow() {
	oldK, oldV := t.keys, t.vals
	t.keys = make([]uint64, 2*len(oldK))
	t.vals = make([]*flight, 2*len(oldV))
	mask := len(t.keys) - 1
	for i, k := range oldK {
		if k == 0 {
			continue
		}
		for j := t.home(k); ; j = (j + 1) & mask {
			if t.keys[j] == 0 {
				t.keys[j], t.vals[j] = k, oldV[i]
				break
			}
		}
	}
}
