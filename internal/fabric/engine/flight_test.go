package engine

import (
	"math/rand"
	"testing"
)

// TestFlightTableVsMap drives the open-addressed table with a random
// insert/lookup/remove mix and checks every observable against a plain
// map reference — the backward-shift deletion is the part worth
// hammering.
func TestFlightTableVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ft := newFlightTable()
	ref := map[uint64]*flight{}
	live := []uint64{}
	for op := 0; op < 200000; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert a fresh seq
			seq := uint64(rng.Int63n(1<<20) + 1)
			fl, err := ft.insert(seq)
			if _, dup := ref[seq]; dup {
				if err == nil {
					t.Fatalf("op %d: duplicate insert of %d accepted", op, seq)
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d: insert(%d): %v", op, seq, err)
			}
			fl.src = int32(seq % 997)
			ref[seq] = fl
			live = append(live, seq)
		case r < 8: // lookup (live or random)
			var seq uint64
			if len(live) > 0 && rng.Intn(2) == 0 {
				seq = live[rng.Intn(len(live))]
			} else {
				seq = uint64(rng.Int63n(1<<20) + 1)
			}
			got, want := ft.get(seq), ref[seq]
			if got != want {
				t.Fatalf("op %d: get(%d) = %p, want %p", op, seq, got, want)
			}
			if got != nil && got.src != int32(seq%997) {
				t.Fatalf("op %d: get(%d) returned foreign record", op, seq)
			}
		default: // remove
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			seq := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !ft.remove(seq) {
				t.Fatalf("op %d: remove(%d) missed a live entry", op, seq)
			}
			delete(ref, seq)
			if ft.remove(seq) {
				t.Fatalf("op %d: remove(%d) succeeded twice", op, seq)
			}
		}
		if ft.n != len(ref) {
			t.Fatalf("op %d: table count %d, reference %d", op, ft.n, len(ref))
		}
	}
	// Everything still live must still resolve after all that churn.
	for _, seq := range live {
		if ft.get(seq) != ref[seq] {
			t.Fatalf("final: get(%d) lost", seq)
		}
	}
}

func TestFlightTableRejectsZeroAndDuplicates(t *testing.T) {
	ft := newFlightTable()
	if _, err := ft.insert(0); err == nil {
		t.Fatal("seq 0 accepted")
	}
	if _, err := ft.insert(7); err != nil {
		t.Fatalf("insert(7): %v", err)
	}
	if _, err := ft.insert(7); err == nil {
		t.Fatal("duplicate seq 7 accepted")
	}
	if ft.remove(9) {
		t.Fatal("remove of absent seq reported true")
	}
}

// TestFlightTableGrow crosses several growth thresholds and keeps every
// record reachable.
func TestFlightTableGrow(t *testing.T) {
	ft := newFlightTable()
	const n = 5000
	for seq := uint64(1); seq <= n; seq++ {
		fl, err := ft.insert(seq)
		if err != nil {
			t.Fatalf("insert(%d): %v", seq, err)
		}
		fl.dst = int32(seq)
	}
	for seq := uint64(1); seq <= n; seq++ {
		fl := ft.get(seq)
		if fl == nil || fl.dst != int32(seq) {
			t.Fatalf("get(%d) after growth = %+v", seq, fl)
		}
	}
}
