package engine

import (
	"runtime"
	"sync/atomic"

	"pipemem/internal/cell"
	"pipemem/internal/core"
	"pipemem/internal/obs"
)

// shard is one worker's slice of the fabric plus its staging queues. A
// shard owns a contiguous, 64-node-aligned range of global node indexes
// [lo<<6, hi<<6): whole words of the occupancy bitmaps, so shard-local
// mask updates are plain stores. Everything a node's transmit hooks would
// mutate outside the shard — credit releases, head arrivals at nodes
// owned by other shards, ejections, errors — is staged here and merged by
// the coordinator at the end-of-cycle barrier, in shard order; with
// shards assigned in ascending node order, the merge order equals global
// node order and the result is independent of the worker count.
type shard struct {
	lo, hi int // bitmap word range owned by this shard

	// rel stages credit releases (packed link indexes) for the barrier.
	// Within one cycle a release is only observable by gates that the
	// sequential stage order would run earlier, so deferring every
	// release to the barrier is bit-identical to the sequential engine.
	rel []int32

	// arr stages head-arrival bits for cycle+2 (one bit per destination
	// node, over the whole fabric — hooks routinely cross shard
	// boundaries). The coordinator ORs it into the canonical mask.
	arr []uint64

	// ejects stages last-stage departure batches in ascending node order.
	ejects []ejectBatch

	// drops stages cells lost inside a node this cycle (overrun, policy,
	// push-out): the coordinator retires the flight, releases the dead
	// cell's inbound credit, and recycles the victim when the switch
	// holds no remaining reference.
	drops []dropRec

	// spans stages hop records of traced flights (appended in the shard's
	// tick order = ascending node order) for the barrier's trace flush.
	spans []spanRec

	// hop is the shard's per-stage hop-latency shadow (nil unless
	// RegisterHopHists armed it); flushed by the coordinator.
	hop []*obs.HistShadow

	// err is the shard's first staged error (duplicate heads, transmits
	// on unroutable outputs); the coordinator surfaces it from Step.
	err error

	_ [64]byte // keep shards off each other's cache lines
}

type ejectBatch struct {
	node int32
	deps []core.Departure
}

type dropRec struct {
	seq      uint64
	c        *cell.Cell
	node     int32
	reusable bool
}

func (sh *shard) fail(err error) {
	if sh.err == nil {
		sh.err = err
	}
}

// The cyclic barrier: one generation per simulated cycle. The coordinator
// bumps gen to release the workers, participates as shard 0, then waits
// for the done count. Atomic generation/done counters give the
// happens-before edges that make cross-shard ring and mask writes visible
// (and race-detector-clean) two cycles later; workers yield between polls
// so a single-core host still interleaves them.
type barrier struct {
	gen  atomic.Int64
	done atomic.Int64
}

// startWorkers launches the persistent worker goroutines (shards 1..nw-1).
// Workers park in a Gosched poll loop between cycles; Close releases them.
func (e *Engine) startWorkers() {
	for w := 1; w < e.nw; w++ {
		go e.workerLoop(w)
	}
}

func (e *Engine) workerLoop(w int) {
	var seen int64
	for {
		g := e.bar.gen.Load()
		if g < 0 {
			return
		}
		if g == seen {
			runtime.Gosched()
			continue
		}
		seen = g
		e.runShard(w)
		e.bar.done.Add(1)
	}
}

// parallelCycle runs every shard for the current cycle and returns once
// all have reached the barrier.
func (e *Engine) parallelCycle() {
	if e.nw == 1 {
		e.runShard(0)
		return
	}
	e.bar.done.Store(0)
	e.bar.gen.Add(1)
	e.runShard(0)
	for e.bar.done.Load() != int64(e.nw-1) {
		runtime.Gosched()
	}
}

// Close stops the worker goroutines. The engine must not be stepped after
// Close; calling Close more than once (or on a single-shard engine) is a
// no-op.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.nw > 1 {
		e.bar.gen.Store(-1)
	}
}
