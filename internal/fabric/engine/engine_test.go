package engine

import (
	"errors"
	"strings"
	"testing"

	"pipemem/internal/bufmgr"
	"pipemem/internal/obs"
)

// bfly4 is the 4-terminal radix-2 butterfly, hand-wired: stage 0 node i
// output j feeds stage 1 node j port i.
type bfly4 struct{}

func (bfly4) Stages() int                            { return 2 }
func (bfly4) NodesAt(int) int                        { return 2 }
func (bfly4) Radix() int                             { return 2 }
func (bfly4) Terminals() int                         { return 4 }
func (bfly4) Downstream(_, node, out int) (int, int) { return out, node }
func (bfly4) RouteDst(_, dst int) int                { return dst % 2 }
func (bfly4) InjectPoint(term int) (int, int)        { return term % 2, term / 2 }
func (bfly4) EjectTerminal(node, out int) int        { return 2*node + out }

func bflyConfig() Config {
	return Config{
		Topo: bfly4{}, WordBits: 16, SwitchCells: 8, Credits: 2,
		CutThrough: true, Workers: 1,
	}
}

func TestEngineDeliversIdentity(t *testing.T) {
	e, err := New(bflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for term := 0; term < 4; term++ {
		e.Inject(term, term, uint64(term+1), term/2)
	}
	for i := 0; i < 200; i++ {
		if err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if e.Delivered() != 4 {
		t.Fatalf("delivered %d of 4", e.Delivered())
	}
	if e.InFlight() != 0 {
		t.Fatalf("%d cells still in flight", e.InFlight())
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestEngineConfigErrors(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"nil-topo":         func(c *Config) { c.Topo = nil },
		"zero-cells":       func(c *Config) { c.SwitchCells = 0 },
		"negative-credits": func(c *Config) { c.Credits = -1 },
		"negative-workers": func(c *Config) { c.Workers = -1 },
	} {
		cfg := bflyConfig()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEngineBadPolicyIsErrBadConfig(t *testing.T) {
	cfg := bflyConfig()
	cfg.Policy = "nonsense:threshold=-3"
	_, err := New(cfg)
	if !errors.Is(err, bufmgr.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestEngineRejectsBadSequenceNumbers(t *testing.T) {
	e, err := New(bflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Inject(0, 0, 0, 0) // reserved seq
	if err := e.Step(); err == nil {
		t.Fatal("seq 0 accepted")
	}

	e2, err := New(bflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.Inject(0, 0, 7, 0)
	e2.Inject(1, 1, 7, 0) // duplicate while in flight
	if err := e2.Step(); err == nil {
		t.Fatal("duplicate in-flight seq accepted")
	}
}

func TestEngineMetrics(t *testing.T) {
	e, err := New(bflyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg, "fabric")
	for term := 0; term < 4; term++ {
		e.Inject(term, term, uint64(term+1), term/2)
	}
	for i := 0; i < 200; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	e.SyncMetrics()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fabric_delivered_cells 4",
		"fabric_injected_cells 4",
		"fabric_latency_overflow 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEngineWorkerClamp: worker counts are clamped to the bitmap word
// count, so a tiny fabric never spins idle goroutines.
func TestEngineWorkerClamp(t *testing.T) {
	cfg := bflyConfig()
	cfg.Workers = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Workers() != 1 { // 4 nodes → 1 bitmap word
		t.Fatalf("workers = %d, want 1", e.Workers())
	}
}
