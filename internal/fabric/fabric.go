// Package fabric composes pipelined-memory shared-buffer switches into a
// multistage network — the use the paper's introduction claims for its
// building block: "they can be the building blocks for larger,
// multi-stage switches and networks; our discussion applies equally well
// to both uses" (§2).
//
// The topology is a k-ary butterfly: N = k^s terminals, s stages of N/k
// switches of radix k, destination-digit routing. Each node is a full
// cycle-accurate core.Switch; the inter-stage links carry one word per
// cycle with one wire register of delay, and two properties of the
// single-switch design compose across the fabric:
//
//   - cut-through chains: a cell's head can be entering stage t+1's
//     buffer while its tail is still crossing stage t (implemented with
//     the core transmit hook — the downstream arrival wave starts one
//     wire-register after the upstream read wave);
//   - credit-based flow control ([Kate94]/[KVES95]) on every inter-stage
//     link bounds each switch's buffer occupancy and makes the fabric
//     lossless end-to-end.
//
// The package exists for the E2 counterpoint: the same multistage
// topology that collapses to ≈0.4 saturation with input-FIFO wormhole
// nodes (internal/wormhole) sustains far higher throughput when the nodes
// are shared-buffer switches.
package fabric

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/core"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// Config parameterizes the fabric.
type Config struct {
	// Terminals is N; it must be a power of Radix ≥ Radix².
	Terminals int
	// Radix is k, the port count of each switch node.
	Radix int
	// WordBits is the link width.
	WordBits int
	// SwitchCells is each node's buffer capacity in cells.
	SwitchCells int
	// Credits is the per-inter-stage-link credit allowance (0 disables
	// flow control; switches then drop on buffer exhaustion).
	Credits int
	// CutThrough enables automatic cut-through in every node.
	CutThrough bool
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.Radix < 2 {
		return fmt.Errorf("fabric: radix %d", c.Radix)
	}
	n, s := 1, 0
	for n < c.Terminals {
		n *= c.Radix
		s++
	}
	if n != c.Terminals || s < 2 {
		return fmt.Errorf("fabric: terminals %d is not radix^s with s ≥ 2", c.Terminals)
	}
	if c.SwitchCells < 1 {
		return fmt.Errorf("fabric: %d cells per switch", c.SwitchCells)
	}
	if c.Credits < 0 {
		return fmt.Errorf("fabric: negative credits")
	}
	return nil
}

// stagesOf returns log_k(n).
func stagesOf(n, k int) int {
	s := 0
	for v := 1; v < n; v *= k {
		s++
	}
	return s
}

// flight tracks one cell crossing the fabric.
type flight struct {
	orig    *cell.Cell
	dst     int
	inject  int64
	inbound int // line the cell most recently entered a stage through
	stage   int
}

// injection is a scheduled head arrival at a switch input.
type injection struct {
	stage, sw, port int
	c               *cell.Cell
}

// Net is the multistage fabric.
type Net struct {
	cfg    Config
	n      int // terminals
	k      int // radix
	stages int
	cellK  int // cell length in words (2·radix)

	cycle int64

	sw [][]*core.Switch // [stage][switch]

	// pending[cycle] holds head injections scheduled for that cycle.
	pending map[int64][]injection
	// credits[t][line], t ≥ 1: available credits on the link into
	// stage t, line index.
	credits [][]int

	flights map[uint64]*flight

	injected, delivered, badEject int64
	latency                       *stats.Hist
}

// New builds the fabric.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.Radix
	n := cfg.Terminals
	s := stagesOf(n, k)
	net := &Net{
		cfg: cfg, n: n, k: k, stages: s, cellK: 2 * k,
		sw:      make([][]*core.Switch, s),
		pending: make(map[int64][]injection),
		credits: make([][]int, s),
		flights: make(map[uint64]*flight),
		latency: stats.NewHist(1 << 14),
	}
	for t := 0; t < s; t++ {
		net.sw[t] = make([]*core.Switch, n/k)
		net.credits[t] = make([]int, n)
		for l := range net.credits[t] {
			net.credits[t][l] = cfg.Credits
		}
		for i := range net.sw[t] {
			swc, err := core.New(core.Config{
				Ports: k, WordBits: cfg.WordBits, Cells: cfg.SwitchCells,
				CutThrough: cfg.CutThrough,
			})
			if err != nil {
				return nil, err
			}
			t, i := t, i
			if cfg.Credits > 0 && t < s-1 {
				swc.SetOutputGate(func(out int) bool {
					return net.credits[t+1][net.lineOf(t, i, out)] > 0
				})
			}
			swc.SetTransmitCellHook(func(out int, c *cell.Cell, start int64) {
				net.onTransmit(t, i, out, c, start)
			})
			net.sw[t][i] = swc
		}
	}
	return net, nil
}

// digit returns digit b (base k) of v.
func (f *Net) digit(v, b int) int {
	for i := 0; i < b; i++ {
		v /= f.k
	}
	return v % f.k
}

// routeDigit returns the digit of dst examined at stage t.
func (f *Net) routeDigit(dst, t int) int { return f.digit(dst, f.stages-1-t) }

// pow returns k^b.
func (f *Net) pow(b int) int {
	v := 1
	for i := 0; i < b; i++ {
		v *= f.k
	}
	return v
}

// switchOf returns the switch and port that line l connects to at stage t
// (the switch groups the k lines differing only in digit s-1-t).
func (f *Net) switchOf(t, l int) (sw, port int) {
	b := f.stages - 1 - t
	p := f.pow(b)
	lo := l % p
	hi := l / (p * f.k)
	return hi*p + lo, (l / p) % f.k
}

// lineOf is the inverse of switchOf: the line of (stage t, switch sw,
// port).
func (f *Net) lineOf(t, sw, port int) int {
	b := f.stages - 1 - t
	p := f.pow(b)
	lo := sw % p
	hi := sw / p
	return hi*p*f.k + port*p + lo
}

// onTransmit chains a departing cell into the next stage (or seals its
// credit accounting at the last stage).
func (f *Net) onTransmit(t, sw, out int, c *cell.Cell, start int64) {
	fl := f.flights[c.Seq]
	if fl == nil {
		panic(fmt.Sprintf("fabric: transmit of unknown cell seq %d", c.Seq))
	}
	// The cell is leaving stage t: its inbound link's buffer slot frees.
	if t > 0 && f.cfg.Credits > 0 {
		f.credits[t][fl.inbound]++
	}
	if t == f.stages-1 {
		return // ejection to the terminal; Drain verifies it
	}
	m := f.lineOf(t, sw, out)
	if f.cfg.Credits > 0 {
		if f.credits[t+1][m] <= 0 {
			panic(fmt.Sprintf("fabric: credit underflow on stage %d line %d", t+1, m))
		}
		f.credits[t+1][m]--
	}
	nsw, nport := f.switchOf(t+1, m)
	next := c.Clone()
	next.Dst = f.routeDigit(fl.dst, t+1)
	fl.inbound = m
	fl.stage = t + 1
	// Head on the wire at start+1, latched downstream one wire register
	// later: the downstream arrival wave starts at start+2 while the
	// upstream tail is still K-2 cycles from leaving — chained
	// cut-through.
	at := start + 2
	f.pending[at] = append(f.pending[at], injection{stage: t + 1, sw: nsw, port: nport, c: next})
}

// Inject offers a cell at terminal term destined for terminal dst in the
// current cycle. The caller must respect the word-serial spacing (one
// head per K = 2·radix cycles per terminal); core.Switch panics otherwise.
func (f *Net) Inject(term, dst int, seq uint64) {
	c := cell.New(seq, term, dst, f.cellK, f.cfg.WordBits)
	fl := &flight{orig: c.Clone(), dst: dst, inject: f.cycle, inbound: term}
	f.flights[seq] = fl
	hop := c.Clone()
	hop.Dst = f.routeDigit(dst, 0)
	sw, port := f.switchOf(0, term)
	f.pending[f.cycle] = append(f.pending[f.cycle], injection{stage: 0, sw: sw, port: port, c: hop})
	f.injected++
}

// Step advances the whole fabric one clock cycle.
func (f *Net) Step() error {
	// Distribute this cycle's scheduled head arrivals.
	byNode := map[[2]int][]*cell.Cell{}
	for _, inj := range f.pending[f.cycle] {
		key := [2]int{inj.stage, inj.sw}
		hs := byNode[key]
		if hs == nil {
			hs = make([]*cell.Cell, f.k)
		}
		if hs[inj.port] != nil {
			return fmt.Errorf("fabric: two heads on stage %d switch %d port %d in cycle %d",
				inj.stage, inj.sw, inj.port, f.cycle)
		}
		hs[inj.port] = inj.c
		byNode[key] = hs
	}
	delete(f.pending, f.cycle)

	for t := 0; t < f.stages; t++ {
		for i, s := range f.sw[t] {
			s.Tick(byNode[[2]int{t, i}])
			deps := s.Drain()
			if t < f.stages-1 {
				continue // interior departures feed the next stage via hooks
			}
			for _, d := range deps {
				if err := f.eject(i, d); err != nil {
					return err
				}
			}
		}
	}
	f.cycle++
	return nil
}

// eject verifies a cell leaving the last stage.
func (f *Net) eject(sw int, d core.Departure) error {
	fl := f.flights[d.Expected.Seq]
	if fl == nil {
		return fmt.Errorf("fabric: ejection of unknown cell %d", d.Expected.Seq)
	}
	term := f.lineOf(f.stages-1, sw, d.Output)
	if term != fl.dst {
		f.badEject++
		return fmt.Errorf("fabric: cell %d for terminal %d ejected at %d", d.Expected.Seq, fl.dst, term)
	}
	// Payload must match the original end to end (Dst metadata differs
	// per hop by design; compare words and identity).
	if d.Cell.Seq != fl.orig.Seq || len(d.Cell.Words) != len(fl.orig.Words) {
		f.badEject++
		return fmt.Errorf("fabric: cell %d identity mangled", d.Expected.Seq)
	}
	for i := range d.Cell.Words {
		if d.Cell.Words[i] != fl.orig.Words[i] {
			f.badEject++
			return fmt.Errorf("fabric: cell %d corrupted at word %d", d.Expected.Seq, i)
		}
	}
	f.delivered++
	f.latency.Add(d.HeadOut - fl.inject)
	delete(f.flights, d.Expected.Seq)
	return nil
}

// Cycle returns the current global cycle.
func (f *Net) Cycle() int64 { return f.cycle }

// Delivered returns end-to-end delivered cells.
func (f *Net) Delivered() int64 { return f.delivered }

// Injected returns cells offered at the terminals.
func (f *Net) Injected() int64 { return f.injected }

// Latency returns the inject→head-ejection histogram in cycles.
func (f *Net) Latency() *stats.Hist { return f.latency }

// CellWords returns the cell size in words (2·radix).
func (f *Net) CellWords() int { return f.cellK }

// Drops sums overrun drops across all nodes. With credits enabled, only
// stage 0 can drop (terminal injection is not credit-protected; the
// hosts, not the fabric, decide how hard to push).
func (f *Net) Drops() int64 {
	var d int64
	for t := range f.sw {
		for _, s := range f.sw[t] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// InteriorDrops sums overrun drops at stages ≥ 1 — the links protected by
// credit flow control; it must be zero whenever credits are enabled and
// SwitchCells ≥ radix × credits.
func (f *Net) InteriorDrops() int64 {
	var d int64
	for t := 1; t < f.stages; t++ {
		for _, s := range f.sw[t] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// Corrupt sums per-node integrity violations (must be 0).
func (f *Net) Corrupt() int64 {
	var c int64
	for t := range f.sw {
		for _, s := range f.sw[t] {
			c += s.Counters().Get("corrupt")
		}
	}
	return c + f.badEject
}

// Result summarizes a run.
type Result struct {
	Cycles    int64
	Injected  int64
	Delivered int64
	Drops     int64
	// InteriorDrops are drops on credit-protected links (stages ≥ 1);
	// zero whenever flow control is on.
	InteriorDrops int64
	Corrupt       int64
	Throughput    float64 // delivered cell-words per cycle per terminal
	MeanLatency   float64 // inject→ejection head latency, cycles
	MinLatency    int64
}

// Run drives the fabric with the given traffic for warmup+measure cycles.
func Run(f *Net, tcfg traffic.Config, warmup, measure int64) (Result, error) {
	tcfg.N = f.n
	cs, err := traffic.NewCellStream(tcfg, f.cellK)
	if err != nil {
		return Result{}, err
	}
	heads := make([]int, f.n)
	var seq uint64
	drive := func(cycles int64) (int64, error) {
		delivered := int64(0)
		start := f.delivered
		for i := int64(0); i < cycles; i++ {
			cs.Heads(heads)
			for term, dst := range heads {
				if dst != traffic.NoArrival {
					seq++
					f.Inject(term, dst, seq)
				}
			}
			if err := f.Step(); err != nil {
				return 0, err
			}
		}
		delivered = f.delivered - start
		return delivered, nil
	}
	if _, err := drive(warmup); err != nil {
		return Result{}, err
	}
	delivered, err := drive(measure)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Cycles:        measure,
		Injected:      f.injected,
		Delivered:     f.delivered,
		Drops:         f.Drops(),
		InteriorDrops: f.InteriorDrops(),
		Corrupt:       f.Corrupt(),
		Throughput:    float64(delivered*int64(f.cellK)) / float64(measure*int64(f.n)),
		MeanLatency:   f.latency.Mean(),
		MinLatency:    f.latency.Quantile(0),
	}
	return res, nil
}
