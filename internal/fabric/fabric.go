// Package fabric composes pipelined-memory shared-buffer switches into a
// multistage network — the use the paper's introduction claims for its
// building block: "they can be the building blocks for larger,
// multi-stage switches and networks; our discussion applies equally well
// to both uses" (§2).
//
// The topology is a k-ary butterfly: N = k^s terminals, s stages of N/k
// switches of radix k, destination-digit routing. Each node is a full
// cycle-accurate core.Switch; the inter-stage links carry one word per
// cycle with one wire register of delay, and two properties of the
// single-switch design compose across the fabric:
//
//   - cut-through chains: a cell's head can be entering stage t+1's
//     buffer while its tail is still crossing stage t (implemented with
//     the core transmit hook — the downstream arrival wave starts one
//     wire-register after the upstream read wave);
//   - credit-based flow control ([Kate94]/[KVES95]) on every inter-stage
//     link bounds each switch's buffer occupancy and makes the fabric
//     lossless end-to-end.
//
// The package exists for the E2 counterpoint: the same multistage
// topology that collapses to ≈0.4 saturation with input-FIFO wormhole
// nodes (internal/wormhole) sustains far higher throughput when the nodes
// are shared-buffer switches.
//
// The cycle loop itself lives in internal/fabric/engine, which ticks all
// stages in parallel across a worker shard pool while staying
// bit-identical to a sequential sweep; this package contributes only the
// butterfly wiring and digit routing.
package fabric

import (
	"fmt"

	"pipemem/internal/bufmgr"
	"pipemem/internal/core"
	"pipemem/internal/fabric/engine"
	"pipemem/internal/obs"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// Config parameterizes the fabric.
type Config struct {
	// Terminals is N; it must be a power of Radix ≥ Radix².
	Terminals int
	// Radix is k, the port count of each switch node.
	Radix int
	// WordBits is the link width.
	WordBits int
	// SwitchCells is each node's buffer capacity in cells.
	SwitchCells int
	// Credits is the per-inter-stage-link credit allowance (0 disables
	// flow control; switches then drop on buffer exhaustion).
	Credits int
	// CutThrough enables automatic cut-through in every node.
	CutThrough bool
	// Policy optionally names a bufmgr admission policy spec
	// (name:key=val) installed on every node; empty keeps the default
	// complete sharing. Malformed specs fail Validate with an error
	// wrapping bufmgr.ErrBadConfig.
	Policy string
	// Workers is the engine shard count (0 = GOMAXPROCS, 1 = sequential
	// reference). Results are bit-identical across worker counts.
	Workers int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.Radix < 2 {
		return fmt.Errorf("fabric: radix %d", c.Radix)
	}
	n, s := 1, 0
	for n < c.Terminals {
		n *= c.Radix
		s++
	}
	if n != c.Terminals || s < 2 {
		return fmt.Errorf("fabric: terminals %d is not radix^s with s ≥ 2", c.Terminals)
	}
	if c.SwitchCells < 1 {
		return fmt.Errorf("fabric: %d cells per switch", c.SwitchCells)
	}
	if c.Credits < 0 {
		return fmt.Errorf("fabric: negative credits")
	}
	if c.Workers < 0 {
		return fmt.Errorf("fabric: negative workers")
	}
	if c.Policy != "" {
		if _, err := bufmgr.Parse(c.Policy); err != nil {
			return fmt.Errorf("fabric: %w", err)
		}
	}
	return nil
}

// stagesOf returns log_k(n).
func stagesOf(n, k int) int {
	s := 0
	for v := 1; v < n; v *= k {
		s++
	}
	return s
}

// topology is the k-ary butterfly wiring, in the engine's vocabulary.
type topology struct {
	n, k, stages int
}

func (t topology) Stages() int     { return t.stages }
func (t topology) NodesAt(int) int { return t.n / t.k }
func (t topology) Radix() int      { return t.k }
func (t topology) Terminals() int  { return t.n }

// digit returns digit b (base k) of v.
func (t topology) digit(v, b int) int {
	for i := 0; i < b; i++ {
		v /= t.k
	}
	return v % t.k
}

// routeDigit returns the digit of dst examined at stage st.
func (t topology) routeDigit(dst, st int) int { return t.digit(dst, t.stages-1-st) }

// pow returns k^b.
func (t topology) pow(b int) int {
	v := 1
	for i := 0; i < b; i++ {
		v *= t.k
	}
	return v
}

// switchOf returns the switch and port that line l connects to at stage
// st (the switch groups the k lines differing only in digit s-1-st).
func (t topology) switchOf(st, l int) (sw, port int) {
	b := t.stages - 1 - st
	p := t.pow(b)
	lo := l % p
	hi := l / (p * t.k)
	return hi*p + lo, (l / p) % t.k
}

// lineOf is the inverse of switchOf: the line of (stage st, switch sw,
// port).
func (t topology) lineOf(st, sw, port int) int {
	b := t.stages - 1 - st
	p := t.pow(b)
	lo := sw % p
	hi := sw / p
	return hi*p*t.k + port*p + lo
}

// Downstream follows stage st's output line to the next stage's input.
func (t topology) Downstream(st, node, out int) (int, int) {
	return t.switchOf(st+1, t.lineOf(st, node, out))
}

func (t topology) RouteDst(st, dst int) int { return t.routeDigit(dst, st) }

func (t topology) InjectPoint(term int) (int, int) { return t.switchOf(0, term) }

func (t topology) EjectTerminal(node, out int) int {
	return t.lineOf(t.stages-1, node, out)
}

// Net is the multistage fabric.
type Net struct {
	cfg    Config
	n      int // terminals
	k      int // radix
	stages int
	cellK  int // cell length in words (2·radix)
	topo   topology

	eng *engine.Engine
	sw  [][]*core.Switch // [stage][switch] views into the engine's nodes
}

// New builds the fabric. A Net with Workers > 1 owns goroutines; Close it
// when done.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.Radix
	n := cfg.Terminals
	s := stagesOf(n, k)
	f := &Net{
		cfg: cfg, n: n, k: k, stages: s, cellK: 2 * k,
		topo: topology{n: n, k: k, stages: s},
	}
	eng, err := engine.New(engine.Config{
		Topo: f.topo, WordBits: cfg.WordBits, SwitchCells: cfg.SwitchCells,
		Credits: cfg.Credits, CutThrough: cfg.CutThrough,
		Policy: cfg.Policy, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	f.eng = eng
	f.sw = make([][]*core.Switch, s)
	for t := 0; t < s; t++ {
		f.sw[t] = make([]*core.Switch, n/k)
		for i := range f.sw[t] {
			f.sw[t][i] = eng.NodeAt(t, i)
		}
	}
	return f, nil
}

// Thin delegations so tests and callers keep addressing the butterfly
// math through the Net.
func (f *Net) routeDigit(dst, t int) int    { return f.topo.routeDigit(dst, t) }
func (f *Net) switchOf(t, l int) (int, int) { return f.topo.switchOf(t, l) }
func (f *Net) lineOf(t, sw, port int) int   { return f.topo.lineOf(t, sw, port) }

// Inject offers a cell at terminal term destined for terminal dst in the
// current cycle. The caller must respect the word-serial spacing (one
// head per K = 2·radix cycles per terminal); core.Switch panics otherwise.
func (f *Net) Inject(term, dst int, seq uint64) {
	f.eng.Inject(term, dst, seq, f.topo.routeDigit(dst, 0))
}

// Step advances the whole fabric one clock cycle.
func (f *Net) Step() error { return f.eng.Step() }

// Close stops the engine's worker pool (no-op for Workers ≤ 1).
func (f *Net) Close() { f.eng.Close() }

// Cycle returns the current global cycle.
func (f *Net) Cycle() int64 { return f.eng.Cycle() }

// Delivered returns end-to-end delivered cells.
func (f *Net) Delivered() int64 { return f.eng.Delivered() }

// Injected returns cells offered at the terminals.
func (f *Net) Injected() int64 { return f.eng.Injected() }

// Latency returns the inject→head-ejection histogram in cycles.
func (f *Net) Latency() *stats.Hist { return f.eng.Latency() }

// LatencyOverflow returns end-to-end latency samples beyond the
// histogram range (counted but not binned — nonzero means the mean and
// quantiles understate the tail; Audit fails on it).
func (f *Net) LatencyOverflow() int64 { return f.eng.LatencyOverflow() }

// CellWords returns the cell size in words (2·radix).
func (f *Net) CellWords() int { return f.cellK }

// Stages returns the number of switching stages (log_k N).
func (f *Net) Stages() int { return f.stages }

// Engine exposes the underlying fabric engine (metrics registration,
// per-node arrival counts).
func (f *Net) Engine() *engine.Engine { return f.eng }

// RegisterMetrics pre-registers fabric metrics on reg under prefix.
func (f *Net) RegisterMetrics(reg *obs.Registry, prefix string) {
	f.eng.RegisterMetrics(reg, prefix)
}

// SetFlightTrace enables deterministic per-flight span tracing: cells
// whose sequence number is divisible by sample get inject/hop/eject
// records through tr, byte-identical at every worker count (see
// engine.SetFlightTrace). Call before the first Step.
func (f *Net) SetFlightTrace(tr *obs.Tracer, sample int) error {
	return f.eng.SetFlightTrace(tr, sample)
}

// RegisterHopHists pre-registers per-stage hop-latency histograms on reg
// and starts feeding them for every cell.
func (f *Net) RegisterHopHists(reg *obs.Registry, prefix string) {
	f.eng.RegisterHopHists(reg, prefix)
}

// EnableTelemetry attaches a fixed-cadence time-series ring (per-stage
// occupancy, deepest queue, credit levels) sampled every `every` cycles;
// the returned ring exports JSONL via obs.TimeSeries.WriteJSONL.
func (f *Net) EnableTelemetry(ringCap int, every int64) *obs.TimeSeries {
	return f.eng.EnableTelemetry(ringCap, every)
}

// SyncMetrics publishes current fabric state into registered metrics.
func (f *Net) SyncMetrics() { f.eng.SyncMetrics() }

// Audit runs the fabric's conservation-style checks: per-node switch
// invariants, credit bounds, ejection integrity, and a silently
// overflowed latency histogram.
func (f *Net) Audit() error { return f.eng.Audit() }

// Drops sums overrun drops across all nodes. With credits enabled, only
// stage 0 can drop (terminal injection is not credit-protected; the
// hosts, not the fabric, decide how hard to push).
func (f *Net) Drops() int64 {
	var d int64
	for t := range f.sw {
		for _, s := range f.sw[t] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// InteriorDrops sums overrun drops at stages ≥ 1 — the links protected by
// credit flow control; it must be zero whenever credits are enabled and
// SwitchCells ≥ radix × credits.
func (f *Net) InteriorDrops() int64 {
	var d int64
	for t := 1; t < f.stages; t++ {
		for _, s := range f.sw[t] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// Corrupt sums per-node integrity violations (must be 0).
func (f *Net) Corrupt() int64 {
	var c int64
	for t := range f.sw {
		for _, s := range f.sw[t] {
			c += s.Counters().Get("corrupt")
		}
	}
	return c + f.eng.BadEjects()
}

// Result summarizes a run.
type Result struct {
	Cycles    int64
	Injected  int64
	Delivered int64
	Drops     int64
	// InteriorDrops are drops on credit-protected links (stages ≥ 1);
	// zero whenever flow control is on.
	InteriorDrops int64
	Corrupt       int64
	// LatencyOverflow counts latency samples that exceeded the histogram
	// range: nonzero means MeanLatency understates the tail.
	LatencyOverflow int64
	Throughput      float64 // delivered cell-words per cycle per terminal
	MeanLatency     float64 // inject→ejection head latency, cycles
	MinLatency      int64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	s := fmt.Sprintf("cycles=%d injected=%d delivered=%d drops=%d thru=%.4f lat=%.2f minlat=%d",
		r.Cycles, r.Injected, r.Delivered, r.Drops, r.Throughput, r.MeanLatency, r.MinLatency)
	if r.InteriorDrops > 0 {
		s += fmt.Sprintf(" interior-drops=%d", r.InteriorDrops)
	}
	if r.Corrupt > 0 {
		s += fmt.Sprintf(" corrupt=%d", r.Corrupt)
	}
	if r.LatencyOverflow > 0 {
		s += fmt.Sprintf(" latency-overflow=%d", r.LatencyOverflow)
	}
	return s
}

// Run drives the fabric with the given traffic for warmup+measure cycles.
func Run(f *Net, tcfg traffic.Config, warmup, measure int64) (Result, error) {
	tcfg.N = f.n
	cs, err := traffic.NewCellStream(tcfg, f.cellK)
	if err != nil {
		return Result{}, err
	}
	heads := make([]int, f.n)
	var seq uint64
	drive := func(cycles int64) (int64, error) {
		start := f.Delivered()
		for i := int64(0); i < cycles; i++ {
			cs.Heads(heads)
			for term, dst := range heads {
				if dst != traffic.NoArrival {
					seq++
					f.Inject(term, dst, seq)
				}
			}
			if err := f.Step(); err != nil {
				return 0, err
			}
		}
		return f.Delivered() - start, nil
	}
	if _, err := drive(warmup); err != nil {
		return Result{}, err
	}
	delivered, err := drive(measure)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Cycles:          measure,
		Injected:        f.Injected(),
		Delivered:       f.Delivered(),
		Drops:           f.Drops(),
		InteriorDrops:   f.InteriorDrops(),
		Corrupt:         f.Corrupt(),
		LatencyOverflow: f.LatencyOverflow(),
		Throughput:      float64(delivered*int64(f.cellK)) / float64(measure*int64(f.n)),
		MeanLatency:     f.Latency().Mean(),
		MinLatency:      f.Latency().Quantile(0),
	}
	return res, nil
}
