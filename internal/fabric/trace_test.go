package fabric

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pipemem/internal/obs"
	"pipemem/internal/trace"
	"pipemem/internal/traffic"
)

// traceNet attaches a flight tracer writing into a fresh buffer.
func traceNet(t *testing.T, f *Net, sample int) (*bytes.Buffer, *obs.Tracer) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(obs.NewJSONLSink(&buf), 0, 1)
	if err := f.SetFlightTrace(tr, sample); err != nil {
		t.Fatal(err)
	}
	return &buf, tr
}

// TestFlightTraceBitIdentical is the trace arm of the parallel
// determinism proof: the span JSONL stream must be byte-identical at
// every worker count, because sampling keys off the flight sequence
// number and the barrier merge serializes span records in global node
// order regardless of sharding.
func TestFlightTraceBitIdentical(t *testing.T) {
	cfg := Config{
		Terminals: 256, Radix: 2, WordBits: 16, SwitchCells: 16,
		Credits: 4, CutThrough: true,
	}
	tc := traffic.Config{Kind: traffic.Hotspot, Load: 0.8, HotFrac: 0.3, Seed: 910}
	const cycles, sample = 700, 5

	cfg.Workers = 1
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refBuf, refTr := traceNet(t, ref, sample)
	driveCollect(t, ref, tc, cycles)
	if err := refTr.Close(); err != nil {
		t.Fatal(err)
	}
	ref.Close()
	if refBuf.Len() == 0 {
		t.Fatal("reference run produced an empty trace")
	}

	for _, workers := range []int{2, 4} {
		cfg.Workers = workers
		par, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf, tr := traceNet(t, par, sample)
		driveCollect(t, par, tc, cycles)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		par.Close()
		if !bytes.Equal(buf.Bytes(), refBuf.Bytes()) {
			a, b := refBuf.Bytes(), buf.Bytes()
			line := 1
			for i := 0; i < len(a) && i < len(b); i++ {
				if a[i] != b[i] {
					break
				}
				if a[i] == '\n' {
					line++
				}
			}
			t.Fatalf("workers=%d: trace diverges from sequential reference at line %d (%d vs %d bytes)",
				workers, line, len(b), len(a))
		}
	}
}

// TestFlightTraceReconciles ties the span trail back to the engine's own
// latency accounting: at sampling 1 every delivered cell must appear as
// a completed flight whose hop latencies sum (plus one wire cycle per
// stage boundary) to the EvEject end-to-end latency, and the mean over
// those flights must equal Result's MeanLatency.
func TestFlightTraceReconciles(t *testing.T) {
	f, err := New(Config{
		Terminals: 64, Radix: 4, WordBits: 16, SwitchCells: 16,
		Credits: 4, CutThrough: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf, tr := traceNet(t, f, 1)
	res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.7, Seed: 23}, 0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	set, err := trace.Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if set.Skipped != 0 || set.Orphans != 0 {
		t.Fatalf("span stream not clean: %d skipped, %d orphans", set.Skipped, set.Orphans)
	}
	if set.Stages != f.Stages() {
		t.Fatalf("trace shows %d stages, fabric has %d", set.Stages, f.Stages())
	}
	rep := trace.Analyze(set, 0)
	if len(rep.Mismatches) > 0 {
		m := rep.Mismatches[0]
		t.Fatalf("%d flights fail e2e = Σhops + (stages-1); first: seq=%d hopsum=%d e2e=%d",
			len(rep.Mismatches), m.Seq, m.HopSum, m.E2E)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("%d ejected flights are missing hop records", rep.Incomplete)
	}
	if int64(rep.Flights) != res.Injected {
		t.Fatalf("traced %d injects, fabric injected %d", rep.Flights, res.Injected)
	}
	if rep.E2E.Count != res.Delivered {
		t.Fatalf("completed flights %d != delivered %d", rep.E2E.Count, res.Delivered)
	}
	if math.Abs(rep.E2E.Mean-res.MeanLatency) > 1e-9 {
		t.Fatalf("trace mean %.9f != fabric mean %.9f", rep.E2E.Mean, res.MeanLatency)
	}
}

// TestFlightTraceGolden pins the span JSONL schema byte-for-byte: the
// analyzer, external tooling and DESIGN.md §14 all quote these exact
// shapes, so a drift must be a conscious decision. Regenerate with
// PIPEMEM_UPDATE_GOLDEN=1 go test ./internal/fabric -run FlightTraceGolden
func TestFlightTraceGolden(t *testing.T) {
	f, err := New(Config{
		Terminals: 16, Radix: 4, WordBits: 16, SwitchCells: 8,
		Credits: 2, CutThrough: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf, tr := traceNet(t, f, 3)
	if _, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.6, Seed: 7}, 0, 60); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "flight_spans.golden")
	if os.Getenv("PIPEMEM_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with PIPEMEM_UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("span JSONL diverged from %s (%d vs %d bytes) — if the schema change is intended, regenerate with PIPEMEM_UPDATE_GOLDEN=1 and update DESIGN.md §14",
			golden, buf.Len(), len(want))
	}
}

// TestTelemetryRing checks the fixed-cadence sampler end to end on a
// real run: rows land on the cadence, the column set matches the stage
// layout, and the ring holds plausible state (inflight never negative,
// occupancy bounded by capacity).
func TestTelemetryRing(t *testing.T) {
	f, err := New(Config{
		Terminals: 64, Radix: 4, WordBits: 16, SwitchCells: 16,
		Credits: 4, CutThrough: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const every = 16
	ts := f.EnableTelemetry(64, every)
	if _, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.8, Seed: 5}, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 63 { // 1000/16 = 62 full strides + cycle 0, ring cap 64
		t.Fatalf("ring holds %d rows, want 63", ts.Len())
	}
	wantCols := 3*f.Stages() + 1
	if len(ts.Names()) != wantCols {
		t.Fatalf("%d columns, want %d (%v)", len(ts.Names()), wantCols, ts.Names())
	}
	cap64 := int64(16) // SwitchCells per node
	for i := 0; i < ts.Len(); i++ {
		cyc, row := ts.Row(i)
		if cyc%every != 0 {
			t.Fatalf("row %d sampled at cycle %d, not on the %d-cycle cadence", i, cyc, every)
		}
		for st := 0; st < f.Stages(); st++ {
			if b := row[3*st]; b < 0 || b > cap64*16 {
				t.Fatalf("row %d stage %d buffered %d out of range", i, st, b)
			}
			if mq := row[3*st+1]; mq < 0 || mq > cap64 {
				t.Fatalf("row %d stage %d maxq %d out of range", i, st, mq)
			}
		}
		if inf := row[len(row)-1]; inf < 0 {
			t.Fatalf("row %d negative inflight %d", i, inf)
		}
	}
}
