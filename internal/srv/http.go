package srv

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"pipemem/internal/bufmgr"
	"pipemem/internal/ckpt"
	"pipemem/internal/core"
	"pipemem/internal/obs"
)

// HTTPStatus maps a serving-layer error to its status code. The two
// simulation sentinels get distinct codes: ErrBadConfig-shaped errors
// (bad spec, bad policy, bad flag value) are the client's fault — 400 —
// while ckpt.ErrStalled is a wedged simulation the client must resolve
// (restore, fork, delete) — 409, like the other wrong-lifecycle-state
// conflicts.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy), errors.Is(err, ErrFinished), errors.Is(err, ckpt.ErrStalled):
		return http.StatusConflict
	case errors.Is(err, ErrBadSpec), errors.Is(err, ErrNoCheckpointDir),
		errors.Is(err, core.ErrBadConfig), errors.Is(err, bufmgr.ErrBadConfig):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr emits the mapped status with {"error": "..."}.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, HTTPStatus(err), map[string]string{"error": err.Error()})
}

// stepResponse is the body of POST /sessions/{id}/step: cycles actually
// advanced plus the post-step status readout.
type stepResponse struct {
	Advanced int64 `json:"advanced"`
	Status
}

// resultResponse is the body of GET /sessions/{id}/result: the RunResult
// snapshot (final for done/failed sessions, live partial otherwise).
type resultResponse struct {
	ID      string         `json:"id"`
	State   string         `json:"state"`
	Partial bool           `json:"partial"`
	Result  core.RunResult `json:"result"`
	Error   string         `json:"error,omitempty"`
}

// Handler builds the server's HTTP surface on one shared mux: the
// session API under /sessions, and the debug surface promoted from
// obs.ServeDebug — /debug/pprof/ mounted exactly once (obs.NewDebugMux),
// /metrics serving the server registry plus every session registry in a
// single exposition with session="<id>" labels, and per-session scrapes
// at /sessions/{id}/metrics.
func (m *Manager) Handler() http.Handler {
	mux := obs.NewDebugMux()

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = obs.WritePrometheusSet(w, "session", m.namedRegistries())
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		snaps := map[string]obs.Snapshot{"server": m.reg.Snapshot()}
		for _, s := range m.List() {
			snaps[s.id] = s.reg.Snapshot()
		}
		writeJSON(w, http.StatusOK, snaps)
	})

	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, _ *http.Request) {
		list := []Status{} // render [] rather than null when empty
		for _, s := range m.List() {
			list = append(list, s.Status())
		}
		writeJSON(w, http.StatusOK, list)
	})

	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		var cfg SessionConfig
		if err := decodeBody(r, &cfg); err != nil {
			writeErr(w, err)
			return
		}
		s, err := m.Create(cfg)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.Status())
	})

	mux.HandleFunc("GET /sessions/{id}", m.withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		writeJSON(w, http.StatusOK, s.Status())
	}))

	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Delete(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
	})

	mux.HandleFunc("POST /sessions/{id}/step", m.withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		n, err := cyclesParam(r)
		if err != nil {
			writeErr(w, err)
			return
		}
		adv, err := s.Step(n)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, stepResponse{Advanced: adv, Status: s.Status()})
	}))

	mux.HandleFunc("POST /sessions/{id}/run", m.withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		if err := s.Start(); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.Status())
	}))

	mux.HandleFunc("POST /sessions/{id}/pause", m.withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		s.Pause()
		writeJSON(w, http.StatusOK, s.Status())
	}))

	mux.HandleFunc("GET /sessions/{id}/result", m.withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		res, partial, err := s.Result()
		resp := resultResponse{ID: s.id, State: s.State().String(), Partial: partial, Result: res}
		if err != nil {
			resp.Error = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("GET /sessions/{id}/series", m.withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = s.Series().WriteJSONL(w)
	}))

	mux.HandleFunc("GET /sessions/{id}/metrics", m.withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = s.reg.WritePrometheus(w)
	}))

	mux.HandleFunc("POST /sessions/{id}/checkpoint", m.withSession(func(w http.ResponseWriter, _ *http.Request, s *Session) {
		name, err := m.Checkpoint(s.id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": s.id, "checkpoint": name})
	}))

	mux.HandleFunc("POST /sessions/{id}/fork", m.withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		var body struct {
			Name string `json:"name"`
		}
		if err := decodeBody(r, &body); err != nil {
			writeErr(w, err)
			return
		}
		fk, err := m.Fork(s.id, body.Name)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, fk.Status())
	}))

	mux.HandleFunc("POST /sessions/{id}/inject", m.withSession(func(w http.ResponseWriter, r *http.Request, s *Session) {
		var body struct {
			Slots [][]int `json:"slots"`
		}
		if err := decodeBody(r, &body); err != nil {
			writeErr(w, err)
			return
		}
		if err := s.Extend(body.Slots); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": s.id, "slots": len(body.Slots)})
	}))

	return mux
}

// withSession resolves {id} before the handler runs.
func (m *Manager) withSession(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		h(w, r, s)
	}
}

// namedRegistries is the /metrics exposition set: the server registry
// first, then every session's, labeled by id.
func (m *Manager) namedRegistries() []obs.NamedRegistry {
	regs := []obs.NamedRegistry{{Name: "server", Reg: m.reg}}
	for _, s := range m.List() {
		regs = append(regs, obs.NamedRegistry{Name: s.id, Reg: s.reg})
	}
	return regs
}

// decodeBody parses an optional JSON request body (empty body = zero
// value), rejecting trailing garbage and unparseable JSON as 400s.
func decodeBody(r *http.Request, v any) error {
	if r.Body == nil {
		return nil
	}
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		if err.Error() == "EOF" { // empty body: all defaults
			return nil
		}
		return badSpecf("request body: %v", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return badSpecf("request body has trailing data")
	}
	return nil
}

// cyclesParam parses the ?cycles=N step size.
func cyclesParam(r *http.Request) (int64, error) {
	q := r.URL.Query().Get("cycles")
	if q == "" {
		return 0, badSpecf("step needs ?cycles=N")
	}
	n, err := strconv.ParseInt(q, 10, 64)
	if err != nil {
		return 0, badSpecf("cycles %q is not an integer", q)
	}
	return n, nil
}
