// Package srv is the simulation-as-a-service layer: a concurrency-safe
// session manager that wraps ckpt.Session behind an HTTP/JSON API
// (cmd/pmserve). Each session owns one deterministic simulation — switch,
// traffic stream, optional fault plan, buffer policy — created from the
// same spec grammar as batch pmsim; clients advance it in bounded step
// batches or put it in background free-run, stream trace-schedule cells
// in, scrape live RunResult snapshots, per-session Prometheus metrics and
// occupancy telemetry, and checkpoint/fork/restore it through
// internal/ckpt.
//
// # Determinism
//
// The serving layer adds no nondeterminism: all simulation access is
// serialized per session (a mutex held across whole step batches, which
// are ckpt.Session.StepN calls, which are runner Step loops), free-run is
// one goroutine per running session advancing the same StepN primitive at
// batch boundaries, and the observer/telemetry taps never feed back into
// switch state. A served session stepped N cycles — in any mix of batch
// sizes, interleaved with checkpoints and scrapes — is therefore
// bit-identical to the same spec run N cycles in batch pmsim, and its
// checkpoint files are byte-identical to batch checkpoints at the same
// cycle (gated by TestServedBitIdentity and make serve-smoke).
//
// # Shutdown
//
// Drain pauses every free-running session at its next batch boundary (a
// step boundary, so checkpoint-valid by construction) and writes one
// checkpoint per live unfinished session into the checkpoint directory;
// pmserve calls it on SIGTERM/SIGINT, so a restarted server restores the
// fleet with POST /sessions {"restore": "<id>.ckpt"}.
package srv

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"pipemem/internal/ckpt"
	"pipemem/internal/core"
	"pipemem/internal/obs"
)

// Options configures a Manager. The zero value serves with the defaults
// noted per field.
type Options struct {
	// MaxSessions bounds concurrently live sessions (≤ 0 = 16). Creating
	// beyond it fails with ErrTooManySessions (HTTP 429).
	MaxSessions int
	// StepMax caps the cycles of one step request (≤ 0 = 1<<20), keeping
	// requests bounded; free-run covers unbounded advancement.
	StepMax int64
	// CkptDir is where checkpoint requests and the shutdown drain write
	// "<id>.ckpt", and where restores read from ("" = checkpointing
	// refused with ErrNoCheckpointDir).
	CkptDir string
	// TelemetryEvery is the occupancy-sampling cadence in cycles
	// (≤ 0 = 256); TelemetryCap the per-session ring capacity
	// (≤ 0 = 4096).
	TelemetryEvery int64
	TelemetryCap   int
	// FreeRunBatch is the cycles a free-running session advances per
	// mutex hold (≤ 0 = 8192) — the granularity at which pause,
	// checkpoint and scrape requests interleave.
	FreeRunBatch int64
}

// withDefaults resolves the zero-value knobs.
func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.StepMax <= 0 {
		o.StepMax = 1 << 20
	}
	if o.TelemetryEvery <= 0 {
		o.TelemetryEvery = 256
	}
	if o.TelemetryCap <= 0 {
		o.TelemetryCap = 4096
	}
	if o.FreeRunBatch <= 0 {
		o.FreeRunBatch = 8192
	}
	return o
}

// State is a session's lifecycle state.
type State int

const (
	// StateIdle: stepped only by explicit requests.
	StateIdle State = iota
	// StateRunning: a free-run goroutine is advancing the session.
	StateRunning
	// StateDone: the run completed; the final RunResult is frozen.
	StateDone
	// StateFailed: the run aborted (audit violation, watchdog stall);
	// the partial RunResult and the error are frozen.
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Manager owns the session fleet and the server-level metrics registry.
type Manager struct {
	opts Options

	reg      *obs.Registry
	created  *obs.Counter
	restored *obs.Counter
	forked   *obs.Counter
	deleted  *obs.Counter
	active   *obs.Gauge
	cycles   *obs.Counter

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	closed   bool
}

// NewManager builds an empty manager.
func NewManager(opts Options) *Manager {
	reg := obs.NewRegistry()
	return &Manager{
		opts:     opts.withDefaults(),
		reg:      reg,
		created:  reg.Counter("pipemem_srv_sessions_created", "Sessions created (fresh specs)."),
		restored: reg.Counter("pipemem_srv_sessions_restored", "Sessions restored from checkpoints."),
		forked:   reg.Counter("pipemem_srv_sessions_forked", "Sessions forked from live sessions."),
		deleted:  reg.Counter("pipemem_srv_sessions_deleted", "Sessions deleted."),
		active:   reg.Gauge("pipemem_srv_sessions_active", "Currently live sessions."),
		cycles:   reg.Counter("pipemem_srv_cycles_total", "Simulation cycles advanced across all sessions."),
		sessions: map[string]*Session{},
	}
}

// Registry exposes the server-level metrics registry.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Options exposes the resolved options.
func (m *Manager) Options() Options { return m.opts }

// validName rejects ids that would collide with the server's own metric
// label, escape the checkpoint directory, or read ambiguously in URLs.
func validName(name string) error {
	if name == "" || name == "server" || len(name) > 64 {
		return badSpecf("session name %q is reserved or empty (1-64 chars, [a-zA-Z0-9._-], not \"server\")", name)
	}
	for _, r := range name {
		ok := r == '.' || r == '_' || r == '-' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return badSpecf("session name %q contains %q (want [a-zA-Z0-9._-])", name, r)
		}
	}
	if name[0] == '.' {
		return badSpecf("session name %q must not start with a dot", name)
	}
	return nil
}

// register claims an id (caller-chosen or generated) and slot under the
// session bound. Called with m.mu held.
func (m *Manager) registerLocked(name string) (string, error) {
	if m.closed {
		return "", ErrClosed
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		return "", fmt.Errorf("%w (%d live, max %d): delete or drain one first", ErrTooManySessions, len(m.sessions), m.opts.MaxSessions)
	}
	if name == "" {
		for {
			m.nextID++
			name = fmt.Sprintf("s%d", m.nextID)
			if _, dup := m.sessions[name]; !dup {
				break
			}
		}
		return name, nil
	}
	if err := validName(name); err != nil {
		return "", err
	}
	if _, dup := m.sessions[name]; dup {
		return "", badSpecf("session %q already exists", name)
	}
	return name, nil
}

// newSession builds the per-session plumbing (registry, observer,
// telemetry ring) around a ckpt.Session factory and registers it.
func (m *Manager) newSession(name string, ports int, build func(ckpt.Options) (*ckpt.Session, error)) (*Session, error) {
	reg := obs.NewRegistry()
	observer := core.NewObserver(reg, ports)
	sim, err := build(ckpt.Options{Observer: observer})
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id, err := m.registerLocked(name)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:      id,
		m:       m,
		sim:     sim,
		reg:     reg,
		tsEvery: m.opts.TelemetryEvery,
		ts: obs.NewTimeSeries(m.opts.TelemetryCap,
			"buffered", "resident", "offered", "delivered", "dropped"),
	}
	m.sessions[id] = s
	m.active.Set(int64(len(m.sessions)))
	return s, nil
}

// Create builds a session from a config: a fresh spec, or — when
// cfg.Restore names a checkpoint file in the checkpoint directory — a
// restore. The session starts idle at its creation (or checkpoint) cycle.
func (m *Manager) Create(cfg SessionConfig) (*Session, error) {
	if cfg.Restore != "" {
		path, err := m.ckptPathFor(cfg.Restore)
		if err != nil {
			return nil, err
		}
		ck, err := ckpt.Load(path)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		s, err := m.newSession(cfg.Name, ck.Switch.Config.Ports, func(o ckpt.Options) (*ckpt.Session, error) {
			o.AuditEvery, o.WatchdogWindow = cfg.AuditEvery, cfg.Watchdog
			return ckpt.ResumeFrom(ck, o)
		})
		if err == nil {
			m.restored.Inc()
		}
		return s, err
	}
	spec, err := cfg.Spec()
	if err != nil {
		return nil, err
	}
	s, err := m.newSession(cfg.Name, spec.Switch.Ports, func(o ckpt.Options) (*ckpt.Session, error) {
		o.AuditEvery, o.WatchdogWindow = cfg.AuditEvery, cfg.Watchdog
		sim, err := ckpt.New(spec, o)
		if err != nil {
			// ckpt.New validates the switch config; surface it as the
			// 4xx it is.
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		return sim, nil
	})
	if err == nil {
		m.created.Inc()
	}
	return s, err
}

// Fork clones a session at its current cycle into a new session (what-if
// runs): an in-memory checkpoint restored under a fresh id with its own
// registry and telemetry. The source may be idle or free-running; the
// fork point is its next batch boundary.
func (m *Manager) Fork(id, name string) (*Session, error) {
	src, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	src.mu.Lock()
	if src.state == StateDone || src.state == StateFailed {
		src.mu.Unlock()
		return nil, fmt.Errorf("%w: cannot fork a %v session", ErrFinished, src.state)
	}
	ck, err := src.sim.Checkpoint()
	src.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s, err := m.newSession(name, ck.Switch.Config.Ports, func(o ckpt.Options) (*ckpt.Session, error) {
		return ckpt.ResumeFrom(ck, o)
	})
	if err == nil {
		m.forked.Inc()
	}
	return s, err
}

// Get resolves a session id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// List returns the live sessions sorted by id — the stable order every
// aggregate surface (session list, /metrics exposition) uses.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool { return ss[i].id < ss[j].id })
	return ss
}

// Delete pauses (if free-running) and removes a session.
func (m *Manager) Delete(id string) error {
	s, err := m.Get(id)
	if err != nil {
		return err
	}
	s.Pause()
	m.mu.Lock()
	// Guard against a concurrent Delete racing us to the map.
	if _, ok := m.sessions[id]; ok {
		delete(m.sessions, id)
		m.deleted.Inc()
		m.active.Set(int64(len(m.sessions)))
	}
	m.mu.Unlock()
	return nil
}

// ckptPathFor resolves a checkpoint file name inside the checkpoint
// directory. Only base names are accepted: the HTTP surface must not
// offer path traversal over the server's filesystem.
func (m *Manager) ckptPathFor(name string) (string, error) {
	if m.opts.CkptDir == "" {
		return "", ErrNoCheckpointDir
	}
	if name == "" || name != filepath.Base(name) {
		return "", badSpecf("checkpoint name %q must be a plain file name inside the checkpoint directory", name)
	}
	return filepath.Join(m.opts.CkptDir, name), nil
}

// Checkpoint writes session id's state to "<id>.ckpt" in the checkpoint
// directory and returns the file name. Valid while free-running: the
// write lands on the next batch boundary.
func (m *Manager) Checkpoint(id string) (string, error) {
	s, err := m.Get(id)
	if err != nil {
		return "", err
	}
	name := s.id + ".ckpt"
	path, err := m.ckptPathFor(name)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sim.CheckpointTo(path); err != nil {
		return "", err
	}
	return name, nil
}

// Drain is the graceful-shutdown path: refuse new sessions, pause every
// free-running session at its next batch boundary, and checkpoint every
// live unfinished session to the checkpoint directory. It returns the
// written file names (sorted by session id). Sessions that already
// completed or failed have nothing worth freezing and are skipped. With
// no checkpoint directory it only pauses.
func (m *Manager) Drain() ([]string, error) {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	var files []string
	var firstErr error
	for _, s := range m.List() {
		s.Pause()
		s.mu.Lock()
		st := s.state
		s.mu.Unlock()
		if st == StateDone || st == StateFailed || m.opts.CkptDir == "" {
			continue
		}
		if name, err := m.Checkpoint(s.id); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("drain %s: %w", s.id, err)
			}
		} else {
			files = append(files, name)
		}
	}
	return files, firstErr
}

// Session is one served simulation. All simulation access is serialized
// by mu; the free-run goroutine holds it for one FreeRunBatch at a time,
// so every other operation (checkpoint, fork, scrape, pause) interleaves
// at step boundaries and the run stays deterministic.
type Session struct {
	id string
	m  *Manager

	mu  sync.Mutex
	sim *ckpt.Session
	reg *obs.Registry

	ts         *obs.TimeSeries
	tsEvery    int64
	state      State
	runDone    chan struct{} // non-nil while the free-run goroutine lives
	pauseFlag  atomic.Bool
	finalRes   core.RunResult
	finalErr   error
	haveResult bool
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Registry exposes the session's metrics registry (scraped labeled as
// session="<id>" on the shared /metrics, and raw on /sessions/{id}/metrics).
func (s *Session) Registry() *obs.Registry { return s.reg }

// State returns the lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Status is the live session readout.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Cycle is the switch clock; TargetCycles the driven window of the
	// spec (the drain tail follows it).
	Cycle        int64 `json:"cycle"`
	TargetCycles int64 `json:"target_cycles"`
	Offered      int64 `json:"offered"`
	Delivered    int64 `json:"delivered"`
	Dropped      int64 `json:"dropped"`
	// Resident counts cells inside the switch; Buffered the shared-buffer
	// occupancy.
	Resident int    `json:"resident"`
	Buffered int    `json:"buffered"`
	Ports    int    `json:"ports"`
	Policy   string `json:"policy,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Status snapshots the live readout.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.sim.Switch()
	rs := s.sim.Runner().State()
	st := Status{
		ID:           s.id,
		State:        s.state.String(),
		Cycle:        sw.Cycle(),
		TargetCycles: s.sim.Spec().Cycles,
		Offered:      rs.Offered,
		Delivered:    rs.Delivered,
		Dropped:      sw.DroppedCells(),
		Resident:     sw.Resident(),
		Buffered:     sw.Buffered(),
		Ports:        sw.Config().Ports,
		Policy:       s.sim.Spec().Policy,
	}
	if s.finalErr != nil {
		st.Error = s.finalErr.Error()
	}
	return st
}

// sampleLocked appends one telemetry row. Called with mu held.
func (s *Session) sampleLocked() {
	sw := s.sim.Switch()
	row := s.ts.Sample(sw.Cycle())
	if len(row) == 5 {
		rs := s.sim.Runner().State()
		row[0] = int64(sw.Buffered())
		row[1] = int64(sw.Resident())
		row[2] = rs.Offered
		row[3] = rs.Delivered
		row[4] = sw.DroppedCells()
	}
}

// stepLocked advances up to n cycles, sampling telemetry on the cadence
// grid and freezing the outcome when the run ends. Called with mu held;
// returns cycles advanced and whether the session reached a terminal
// state.
func (s *Session) stepLocked(n int64) (int64, bool) {
	var adv int64
	for adv < n {
		chunk := s.tsEvery - s.sim.Switch().Cycle()%s.tsEvery
		if chunk > n-adv {
			chunk = n - adv
		}
		a, done, err := s.sim.StepN(chunk)
		adv += a
		if a > 0 && s.sim.Switch().Cycle()%s.tsEvery == 0 {
			s.sampleLocked()
		}
		if err != nil {
			s.finalRes, s.finalErr = s.sim.Partial(), err
			s.haveResult = true
			s.state = StateFailed
			break
		}
		if done {
			s.finalRes, s.finalErr = s.sim.Finish()
			s.haveResult = true
			if s.finalErr != nil {
				s.state = StateFailed
			} else {
				s.state = StateDone
			}
			break
		}
	}
	s.m.cycles.Add(adv)
	return adv, s.state == StateDone || s.state == StateFailed
}

// Step advances the session by up to n cycles synchronously. A
// free-running session refuses (ErrBusy: pause first); a finished one
// refuses with ErrFinished. The terminal error of a run that ends inside
// the batch (watchdog stall, audit violation) is returned here once and
// stays readable via Result.
func (s *Session) Step(n int64) (int64, error) {
	if n <= 0 {
		return 0, badSpecf("cycles must be positive (got %d)", n)
	}
	if lim := s.m.opts.StepMax; n > lim {
		return 0, badSpecf("cycles %d exceeds the per-request cap %d (use free-run for long advances)", n, lim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateRunning:
		return 0, fmt.Errorf("%w: pause %s first", ErrBusy, s.id)
	case StateDone, StateFailed:
		return 0, fmt.Errorf("%w: %s is %v", ErrFinished, s.id, s.state)
	}
	adv, _ := s.stepLocked(n)
	if s.state == StateFailed {
		return adv, s.finalErr
	}
	return adv, nil
}

// Start puts the session in free-run: one background goroutine advances
// it batch by batch until the run ends or Pause is called. Idempotent on
// an already-running session; a finished session refuses.
func (s *Session) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateRunning:
		return nil
	case StateDone, StateFailed:
		return fmt.Errorf("%w: %s is %v", ErrFinished, s.id, s.state)
	}
	s.pauseFlag.Store(false)
	s.state = StateRunning
	done := make(chan struct{})
	s.runDone = done
	go s.freeRun(done)
	return nil
}

// freeRun is the per-running-session goroutine: advance one batch per
// mutex hold, yield, repeat. It owns the Running→Idle transition on
// pause; terminal transitions happen inside stepLocked.
func (s *Session) freeRun(done chan struct{}) {
	defer close(done)
	batch := s.m.opts.FreeRunBatch
	for {
		if s.pauseFlag.Load() {
			s.mu.Lock()
			if s.state == StateRunning {
				s.state = StateIdle
			}
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		if s.state != StateRunning {
			s.mu.Unlock()
			return
		}
		_, terminal := s.stepLocked(batch)
		s.mu.Unlock()
		if terminal {
			return
		}
	}
}

// Pause stops free-run at the next batch boundary and waits for the
// goroutine to exit. No-op on sessions that are not free-running.
func (s *Session) Pause() {
	s.pauseFlag.Store(true)
	s.mu.Lock()
	done := s.runDone
	s.runDone = nil
	s.mu.Unlock()
	if done != nil {
		<-done
	}
}

// Result returns the session's RunResult: the frozen final (or abort
// partial) result for a finished session, or a live partial snapshot for
// one still in flight. partial reports which; err is the terminal error
// of a failed session.
func (s *Session) Result() (res core.RunResult, partial bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.haveResult {
		return s.finalRes, false, s.finalErr
	}
	return s.sim.Partial(), true, nil
}

// Extend streams injected cells into a trace-traffic session (appended
// schedule rows); see ckpt.Session.ExtendSchedule. Allowed while
// free-running — rows land at the next batch boundary.
func (s *Session) Extend(rows [][]int) error {
	if len(rows) == 0 {
		return badSpecf("inject needs at least one schedule row")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateDone || s.state == StateFailed {
		return fmt.Errorf("%w: %s is %v", ErrFinished, s.id, s.state)
	}
	if err := s.sim.ExtendSchedule(rows); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

// Series snapshots the telemetry ring (cycle-stamped occupancy rows,
// oldest first) while holding the session lock, so rows are consistent
// even mid-free-run.
func (s *Session) Series() *obs.TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Copy under the lock: WriteJSONL on the live ring would race the
	// stepping goroutine.
	cp := obs.NewTimeSeries(s.ts.Cap(), s.ts.Names()...)
	for i, n := 0, s.ts.Len(); i < n; i++ {
		cycle, vals := s.ts.Row(i)
		copy(cp.Sample(cycle), vals)
	}
	return cp
}
