package srv

import (
	"errors"
	"fmt"

	"pipemem/internal/bufmgr"
	"pipemem/internal/ckpt"
	"pipemem/internal/core"
	"pipemem/internal/fault"
	"pipemem/internal/traffic"
)

// Sentinel errors the HTTP layer maps to status codes. ErrBadSpec marks a
// client mistake (malformed session config, out-of-range step, unknown
// traffic kind) — a 4xx, never a retry; the other sentinels cover the
// session lifecycle.
var (
	// ErrBadSpec marks an invalid session configuration or request
	// parameter (HTTP 400), the serving-layer sibling of core.ErrBadConfig.
	ErrBadSpec = errors.New("srv: bad session spec")
	// ErrNotFound marks an unknown session id (HTTP 404).
	ErrNotFound = errors.New("srv: no such session")
	// ErrBusy marks an operation that needs exclusive stepping on a
	// session that is free-running (HTTP 409); pause it first.
	ErrBusy = errors.New("srv: session is free-running")
	// ErrFinished marks a step/run request against a completed or failed
	// session (HTTP 409).
	ErrFinished = errors.New("srv: session has finished")
	// ErrTooManySessions marks the -max-sessions bound (HTTP 429).
	ErrTooManySessions = errors.New("srv: session limit reached")
	// ErrClosed marks requests arriving after shutdown began (HTTP 503).
	ErrClosed = errors.New("srv: server is shutting down")
	// ErrNoCheckpointDir marks checkpoint/restore requests on a server
	// started without -ckpt-dir (HTTP 400).
	ErrNoCheckpointDir = errors.New("srv: server has no checkpoint directory (-ckpt-dir)")
)

// badSpecf builds an ErrBadSpec with detail.
func badSpecf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// SessionConfig is the JSON body of POST /sessions: either a fresh spec
// (the same knobs as batch pmsim, so a served session can be compared bit
// for bit against a CLI run) or a restore from a previously written
// checkpoint. The zero value of every optional field picks the pmsim
// default.
type SessionConfig struct {
	// Name optionally fixes the session id (default: server-assigned
	// "s1", "s2", …). Restore resumes from the named checkpoint file in
	// the server's checkpoint directory instead of building a fresh
	// session; it composes with Name only.
	Name    string `json:"name,omitempty"`
	Restore string `json:"restore,omitempty"`

	// Ports (default 8) and Buf (default 64) size the switch; Cycles
	// (required) is the driven window, after which the switch drains.
	Ports  int   `json:"ports,omitempty"`
	Buf    int   `json:"buf,omitempty"`
	Cycles int64 `json:"cycles,omitempty"`

	// Traffic selects the arrival process: bernoulli (default),
	// saturation, bursty, hotspot, permutation, trace. Load defaults to
	// 0.8 where it applies; Burst is the mean burst length (bursty), Hot
	// the hotspot fraction and HotPort its target, Schedule the initial
	// trace rows (trace sessions accept more via /inject).
	Traffic  string  `json:"traffic,omitempty"`
	Load     float64 `json:"load,omitempty"`
	Burst    float64 `json:"burst,omitempty"`
	Hot      float64 `json:"hot,omitempty"`
	HotPort  int     `json:"hot_port,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Schedule [][]int `json:"schedule,omitempty"`

	// Policy is a bufmgr admission-policy spec ("dt:alpha=2"); empty
	// keeps complete sharing by backpressure.
	Policy string `json:"policy,omitempty"`

	// FaultPlan is a fault-plan text (one "@cycle kind k=v…" event per
	// line); FaultSeed resolves its "any" targets. ECC and Bypass
	// configure the protection the plan is run against.
	FaultPlan string `json:"fault_plan,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	ECC       bool   `json:"ecc,omitempty"`
	Bypass    int    `json:"bypass,omitempty"`

	// AuditEvery and Watchdog arm the session's online invariant auditor
	// and no-progress watchdog (cycles; 0 = off).
	AuditEvery int64 `json:"audit_every,omitempty"`
	Watchdog   int64 `json:"watchdog,omitempty"`
}

// parseKind resolves a traffic-kind name.
func parseKind(s string) (traffic.Kind, error) {
	switch s {
	case "", "bernoulli":
		return traffic.Bernoulli, nil
	case "saturation":
		return traffic.Saturation, nil
	case "bursty":
		return traffic.Bursty, nil
	case "hotspot":
		return traffic.Hotspot, nil
	case "permutation":
		return traffic.Permutation, nil
	case "trace":
		return traffic.Trace, nil
	}
	return 0, badSpecf("unknown traffic kind %q (bernoulli|saturation|bursty|hotspot|permutation|trace)", s)
}

// Spec translates the config into a ckpt.Spec, applying pmsim's defaults
// so a served session and `pmsim -arch rtl` with the same knobs run the
// identical simulation. Every rejection wraps ErrBadSpec (HTTP 400).
func (c SessionConfig) Spec() (ckpt.Spec, error) {
	var spec ckpt.Spec
	if c.Restore != "" {
		return spec, badSpecf("restore does not combine with a fresh session spec")
	}
	ports := c.Ports
	if ports == 0 {
		ports = 8
	}
	buf := c.Buf
	if buf == 0 {
		buf = 64
	}
	if c.Cycles <= 0 {
		return spec, badSpecf("cycles must be positive (got %d)", c.Cycles)
	}
	kind, err := parseKind(c.Traffic)
	if err != nil {
		return spec, err
	}
	load := c.Load
	if load == 0 && (kind == traffic.Bernoulli || kind == traffic.Bursty || kind == traffic.Hotspot) {
		load = 0.8
	}
	tcfg := traffic.Config{
		Kind: kind, N: ports, Load: load, BurstLen: c.Burst,
		HotFrac: c.Hot, HotPort: c.HotPort, Seed: c.Seed, Schedule: c.Schedule,
	}
	if err := tcfg.Validate(); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if c.Policy != "" {
		if _, err := bufmgr.Parse(c.Policy); err != nil {
			return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	spec = ckpt.Spec{
		Switch:  core.Config{Ports: ports, WordBits: 16, Cells: buf, CutThrough: !c.ECC, ECC: c.ECC, BypassThreshold: c.Bypass},
		Traffic: tcfg,
		Cycles:  c.Cycles,
		Policy:  c.Policy,
	}
	if c.FaultPlan != "" {
		plan, err := fault.Parse(c.FaultPlan)
		if err != nil {
			return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		spec.Plan, spec.FaultSeed = plan, c.FaultSeed
	}
	if c.AuditEvery < 0 || c.Watchdog < 0 {
		return spec, badSpecf("audit_every and watchdog must be >= 0")
	}
	return spec, nil
}
