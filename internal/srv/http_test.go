package srv

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pipemem/internal/bufmgr"
	"pipemem/internal/ckpt"
	"pipemem/internal/core"
)

// TestHTTPStatusMapping pins the error → status contract, in particular
// the satellite requirement that ErrBadConfig-shaped errors and
// ckpt.ErrStalled land on distinct codes.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{ErrBadSpec, 400},
		{badSpecf("cycles must be positive"), 400},
		{ErrNoCheckpointDir, 400},
		{fmt.Errorf("ckpt: %w: bad ports", core.ErrBadConfig), 400},
		{fmt.Errorf("%w: unknown policy", bufmgr.ErrBadConfig), 400},
		{ErrNotFound, 404},
		{ErrBusy, 409},
		{ErrFinished, 409},
		{fmt.Errorf("ckpt: %w: no progress", ckpt.ErrStalled), 409},
		{ErrTooManySessions, 429},
		{ErrClosed, 503},
		{errors.New("disk on fire"), 500},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// do issues one request against the test server and decodes the JSON
// response into out (skipped when out is nil), checking the status code.
func do(t *testing.T, client *http.Client, method, url string, body string, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d\nbody: %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v\nbody: %s", method, url, err, raw)
		}
	}
}

// getBody fetches a non-JSON surface (metrics exposition, series JSONL).
func getBody(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d\nbody: %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}

// TestHTTPSessionLifecycle drives the full API surface over a real HTTP
// round trip: create, status, step, inject, fork, checkpoint, free-run,
// pause, result, series, metrics, restore, delete — plus the 4xx/409
// paths for each.
func TestHTTPSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Options{MaxSessions: 4, StepMax: 100000, CkptDir: dir, TelemetryEvery: 32})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	c := ts.Client()

	// Empty fleet renders [] (not null).
	var list []Status
	do(t, c, "GET", ts.URL+"/sessions", "", 200, &list)
	if list == nil || len(list) != 0 {
		t.Fatalf("empty list: %v", list)
	}

	// Bad configs: malformed JSON, missing cycles, unknown traffic, bad
	// policy.
	do(t, c, "POST", ts.URL+"/sessions", `{"cycles":`, 400, nil)
	do(t, c, "POST", ts.URL+"/sessions", `{}`, 400, nil)
	do(t, c, "POST", ts.URL+"/sessions", `{"cycles":100,"traffic":"fractal"}`, 400, nil)
	do(t, c, "POST", ts.URL+"/sessions", `{"cycles":100,"policy":"nonsense"}`, 400, nil)

	// Create a trace session.
	var st Status
	do(t, c, "POST", ts.URL+"/sessions",
		`{"name":"demo","ports":2,"buf":8,"cycles":400,"traffic":"trace","schedule":[[1,0]]}`, 201, &st)
	if st.ID != "demo" || st.State != "idle" || st.Ports != 2 || st.TargetCycles != 400 {
		t.Fatalf("created status: %+v", st)
	}

	// Unknown id → 404 everywhere; duplicate name → 400.
	do(t, c, "GET", ts.URL+"/sessions/ghost", "", 404, nil)
	do(t, c, "POST", ts.URL+"/sessions/ghost/step?cycles=5", "", 404, nil)
	do(t, c, "DELETE", ts.URL+"/sessions/ghost", "", 404, nil)
	do(t, c, "POST", ts.URL+"/sessions", `{"name":"demo","cycles":100}`, 400, nil)

	// Step: missing/bad/over-cap cycles → 400, good → 200 with progress.
	do(t, c, "POST", ts.URL+"/sessions/demo/step", "", 400, nil)
	do(t, c, "POST", ts.URL+"/sessions/demo/step?cycles=nope", "", 400, nil)
	do(t, c, "POST", ts.URL+"/sessions/demo/step?cycles=200000", "", 400, nil)
	var step stepResponse
	do(t, c, "POST", ts.URL+"/sessions/demo/step?cycles=64", "", 200, &step)
	if step.Advanced != 64 || step.Cycle != 64 {
		t.Fatalf("step response: %+v", step)
	}

	// Inject more trace rows; bad rows → 400.
	do(t, c, "POST", ts.URL+"/sessions/demo/inject", `{"slots":[[0,1],[1,0]]}`, 200, nil)
	do(t, c, "POST", ts.URL+"/sessions/demo/inject", `{"slots":[[9,9]]}`, 400, nil)
	do(t, c, "POST", ts.URL+"/sessions/demo/inject", `{}`, 400, nil)

	// Fork (server-assigned id) and checkpoint while idle.
	var fk Status
	do(t, c, "POST", ts.URL+"/sessions/demo/fork", "", 201, &fk)
	if fk.ID == "" || fk.ID == "demo" || fk.Cycle != 64 {
		t.Fatalf("fork status: %+v", fk)
	}
	var ck map[string]string
	do(t, c, "POST", ts.URL+"/sessions/demo/checkpoint", "", 200, &ck)
	if ck["checkpoint"] != "demo.ckpt" {
		t.Fatalf("checkpoint response: %v", ck)
	}

	// Shared /metrics: session labels for the server registry and each
	// live session, one TYPE header per metric name.
	expo := getBody(t, c, ts.URL+"/metrics")
	for _, want := range []string{`session="server"`, `session="demo"`, fmt.Sprintf("session=%q", fk.ID)} {
		if !strings.Contains(expo, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, expo)
		}
	}
	for _, line := range strings.Split(expo, "\n") {
		name, ok := strings.CutPrefix(line, "# TYPE ")
		if !ok {
			continue
		}
		if n := strings.Count(expo, "# TYPE "+name+"\n"); n != 1 {
			t.Fatalf("%d TYPE headers for %q", n, name)
		}
	}
	do(t, c, "GET", ts.URL+"/metrics.json", "", 200, &map[string]json.RawMessage{})

	// Per-session scrape and telemetry.
	if one := getBody(t, c, ts.URL+"/sessions/demo/metrics"); !strings.Contains(one, "# TYPE") {
		t.Fatalf("per-session scrape empty:\n%s", one)
	}
	series := getBody(t, c, ts.URL+"/sessions/demo/series")
	if !strings.Contains(series, `"cycle":`) || !strings.Contains(series, `"buffered":`) {
		t.Fatalf("series JSONL: %s", series)
	}

	// ErrBusy, deterministically: a session with an enormous run cannot
	// finish between requests, so stepping it mid-free-run must 409.
	do(t, c, "POST", ts.URL+"/sessions", `{"name":"long","ports":2,"buf":8,"cycles":2000000000}`, 201, nil)
	do(t, c, "POST", ts.URL+"/sessions/long/run", "", 200, nil)
	do(t, c, "POST", ts.URL+"/sessions/long/run", "", 200, nil) // idempotent
	do(t, c, "POST", ts.URL+"/sessions/long/step?cycles=5", "", 409, nil)
	do(t, c, "POST", ts.URL+"/sessions/long/pause", "", 200, &st)
	if st.State != "idle" {
		t.Fatalf("paused state %q", st.State)
	}
	do(t, c, "DELETE", ts.URL+"/sessions/long", "", 200, nil)

	// Free-run demo to completion (a tiny run: poll briefly), then read
	// the frozen result; further run/step → 409.
	do(t, c, "POST", ts.URL+"/sessions/demo/run", "", 200, nil)
	s, err := m.Get("demo")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.State() == StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("demo free-run did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	var res resultResponse
	do(t, c, "GET", ts.URL+"/sessions/demo/result", "", 200, &res)
	if res.Partial || res.State != "done" || res.Result.Delivered != 6 {
		t.Fatalf("final result: %+v", res)
	}
	do(t, c, "POST", ts.URL+"/sessions/demo/run", "", 409, nil)
	do(t, c, "POST", ts.URL+"/sessions/demo/step?cycles=1", "", 409, nil)
	do(t, c, "POST", ts.URL+"/sessions/demo/inject", `{"slots":[[0,1]]}`, 409, nil)

	// Restore the cycle-64 checkpoint through the API; the revived run
	// must finish bit-identical to the live one (both passed cycle 64 with
	// the same extended schedule).
	do(t, c, "POST", ts.URL+"/sessions", `{"name":"revived","restore":"demo.ckpt"}`, 201, nil)
	do(t, c, "POST", ts.URL+"/sessions/revived/step?cycles=100000", "", 200, nil)
	var res2 resultResponse
	do(t, c, "GET", ts.URL+"/sessions/revived/result", "", 200, &res2)
	got, _ := json.Marshal(res2.Result)
	want, _ := json.Marshal(res.Result)
	if string(got) != string(want) {
		t.Fatalf("restored run diverged:\n got %s\nwant %s", got, want)
	}
	// Restoring a nonexistent checkpoint → 400.
	do(t, c, "POST", ts.URL+"/sessions", `{"restore":"ghost.ckpt"}`, 400, nil)

	// Session cap: demo, fork, revived are live (3 of 4); one more fits,
	// the next → 429.
	do(t, c, "POST", ts.URL+"/sessions", `{"cycles":100}`, 201, nil)
	do(t, c, "POST", ts.URL+"/sessions", `{"cycles":100}`, 429, nil)

	// Delete and verify it is gone from both the API and /metrics.
	do(t, c, "DELETE", ts.URL+"/sessions/demo", "", 200, nil)
	do(t, c, "GET", ts.URL+"/sessions/demo", "", 404, nil)
	if expo := getBody(t, c, ts.URL+"/metrics"); strings.Contains(expo, `session="demo"`) {
		t.Fatal("/metrics still carries the deleted session")
	}
}
