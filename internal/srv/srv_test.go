package srv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pipemem/internal/ckpt"
	"pipemem/internal/traffic"
)

// testConfig is the shared session spec: small enough to finish fast,
// loaded enough to exercise drops and the drain tail.
func testConfig(policy string) SessionConfig {
	return SessionConfig{
		Ports: 4, Buf: 32, Cycles: 2000,
		Load: 0.85, Seed: 7,
		Policy: policy,
	}
}

// batchResult runs a config's spec uninterrupted through the batch path —
// the reference every served run must match bit for bit.
func batchResult(t *testing.T, cfg SessionConfig) []byte {
	t.Helper()
	spec, err := cfg.Spec()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ckpt.New(spec, ckpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServedBitIdentity: the determinism contract. For two buffer
// policies, a session advanced through the server — irregular step
// batches, interleaved checkpoints and scrapes — must produce the same
// RunResult as batch pmsim, and a served checkpoint must be
// byte-identical to a batch checkpoint at the same cycle.
func TestServedBitIdentity(t *testing.T) {
	for _, policy := range []string{"", "dt:alpha=2"} {
		name := policy
		if name == "" {
			name = "unmanaged"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(policy)
			want := batchResult(t, cfg)

			dir := t.TempDir()
			m := NewManager(Options{CkptDir: dir, TelemetryEvery: 64})
			s, err := m.Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The batch reference mirrors the served run exactly — same
			// batch sizes, a checkpoint at the same cycles — because
			// core.Switch.Snapshot normalizes lazily-maintained state
			// (materializeInReg) when it runs, so checkpoint cadence is
			// part of the byte-identity contract even though it never
			// affects behavior.
			spec, err := cfg.Spec()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := ckpt.New(spec, ckpt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			refPath := filepath.Join(dir, "ref.ckpt")

			// Irregular batches with scrapes and checkpoints between them.
			var cycle int64
			for _, n := range []int64{1, 7, 123, 369} {
				adv, err := s.Step(n)
				if err != nil {
					t.Fatal(err)
				}
				cycle += adv
				_ = s.Status()
				_ = s.Series()
				if _, err := m.Checkpoint(s.ID()); err != nil {
					t.Fatal(err)
				}
				if adv, done, err := ref.StepN(n); adv != n || done || err != nil {
					t.Fatalf("reference StepN(%d): adv=%d done=%v err=%v", n, adv, done, err)
				}
				if err := ref.CheckpointTo(refPath); err != nil {
					t.Fatal(err)
				}
			}
			if cycle != 500 {
				t.Fatalf("advanced %d cycles, want 500", cycle)
			}
			served, err := os.ReadFile(filepath.Join(dir, s.ID()+".ckpt"))
			if err != nil {
				t.Fatal(err)
			}
			batch, err := os.ReadFile(refPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(served, batch) {
				t.Fatalf("served checkpoint diverges from batch at cycle 500: %d vs %d bytes", len(served), len(batch))
			}

			// Finish through the step surface and compare results.
			for s.State() == StateIdle {
				if _, err := s.Step(1 << 12); err != nil {
					t.Fatal(err)
				}
			}
			if st := s.State(); st != StateDone {
				t.Fatalf("session ended %v, want done", st)
			}
			res, partial, err := s.Result()
			if err != nil || partial {
				t.Fatalf("result: partial=%v err=%v", partial, err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("served result diverges from batch:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestFreeRunBitIdentity: background free-run is the same StepN primitive
// on a goroutine — the result must still match batch, through a pause and
// resume in the middle.
func TestFreeRunBitIdentity(t *testing.T) {
	cfg := testConfig("dt:alpha=2")
	want := batchResult(t, cfg)

	m := NewManager(Options{FreeRunBatch: 256, TelemetryEvery: 64})
	s, err := m.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil { // idempotent on a running session
		t.Fatal(err)
	}
	s.Pause()
	if st := s.State(); st == StateRunning {
		t.Fatal("still running after Pause")
	}
	if st := s.State(); st == StateIdle {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.State() == StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("free-run did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.State(); st != StateDone {
		t.Fatalf("session ended %v, want done", st)
	}
	res, _, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("free-run result diverges from batch:\n got %s\nwant %s", got, want)
	}
}

// TestForkDiverges: a fork shares history to the fork point and then runs
// independently — finishing both must give the identical result (same
// spec, same RNG state), and deleting the source must not disturb the
// fork.
func TestForkDiverges(t *testing.T) {
	m := NewManager(Options{})
	s, err := m.Create(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(700); err != nil {
		t.Fatal(err)
	}
	f, err := m.Fork(s.ID(), "fork-a")
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != "fork-a" {
		t.Fatalf("fork id %q", f.ID())
	}
	if err := m.Delete(s.ID()); err != nil {
		t.Fatal(err)
	}
	finish := func(sess *Session) []byte {
		t.Helper()
		for sess.State() == StateIdle {
			if _, err := sess.Step(1 << 12); err != nil {
				t.Fatal(err)
			}
		}
		res, _, err := sess.Result()
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(res)
		return b
	}
	got := finish(f)
	want := batchResult(t, testConfig(""))
	if !bytes.Equal(got, want) {
		t.Fatalf("forked run diverges from batch:\n got %s\nwant %s", got, want)
	}
}

// TestDrainRestoreRoundTrip: Drain freezes the fleet; a new manager
// restores each checkpoint and finishes bit-identical to batch.
func TestDrainRestoreRoundTrip(t *testing.T) {
	cfg := testConfig("dt:alpha=2")
	want := batchResult(t, cfg)

	dir := t.TempDir()
	m := NewManager(Options{CkptDir: dir, FreeRunBatch: 128})
	s, err := m.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(137); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	files, err := m.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0] != s.ID()+".ckpt" {
		t.Fatalf("drain wrote %v, want [%s.ckpt]", files, s.ID())
	}
	// The drained manager refuses new sessions.
	if _, err := m.Create(cfg); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after drain: %v, want ErrClosed", err)
	}

	m2 := NewManager(Options{CkptDir: dir})
	r, err := m2.Create(SessionConfig{Name: "revived", Restore: files[0]})
	if err != nil {
		t.Fatal(err)
	}
	for r.State() == StateIdle {
		if _, err := r.Step(1 << 12); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res)
	if !bytes.Equal(got, want) {
		t.Fatalf("restored run diverges from batch:\n got %s\nwant %s", got, want)
	}
}

// TestManagerLimitsAndValidation: session bound, name rules, checkpoint
// path hygiene, step caps.
func TestManagerLimitsAndValidation(t *testing.T) {
	m := NewManager(Options{MaxSessions: 2, StepMax: 100})
	a, err := m.Create(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != "s1" {
		t.Fatalf("generated id %q, want s1", a.ID())
	}
	if _, err := m.Create(SessionConfig{Name: "named", Cycles: 100, Ports: 2, Buf: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(testConfig("")); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over the bound: %v, want ErrTooManySessions", err)
	}
	if err := m.Delete("named"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("named"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}

	for _, bad := range []string{"server", "has space", "../etc", ".hidden", ""} {
		// "" is valid input (server-assigned id) so skip it here.
		if bad == "" {
			continue
		}
		if _, err := m.Create(SessionConfig{Name: bad, Cycles: 100, Ports: 2, Buf: 8}); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("name %q: %v, want ErrBadSpec", bad, err)
		}
	}

	if _, err := a.Step(0); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("Step(0): %v, want ErrBadSpec", err)
	}
	if _, err := a.Step(101); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("Step over cap: %v, want ErrBadSpec", err)
	}

	// No -ckpt-dir: checkpointing refuses; restore names must be plain.
	if _, err := m.Checkpoint(a.ID()); !errors.Is(err, ErrNoCheckpointDir) {
		t.Fatalf("checkpoint without dir: %v, want ErrNoCheckpointDir", err)
	}
	if _, err := m.Create(SessionConfig{Restore: "x.ckpt"}); !errors.Is(err, ErrNoCheckpointDir) {
		t.Fatalf("restore without dir: %v, want ErrNoCheckpointDir", err)
	}
	md := NewManager(Options{CkptDir: t.TempDir()})
	if _, err := md.Create(SessionConfig{Restore: "../../etc/passwd"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("traversal restore: %v, want ErrBadSpec", err)
	}

	// Bad specs map to ErrBadSpec: missing cycles, unknown traffic kind,
	// bad policy, restore+spec mix.
	for _, cfg := range []SessionConfig{
		{},
		{Cycles: 100, Traffic: "fractal"},
		{Cycles: 100, Policy: "nonsense"},
		{Cycles: 100, Restore: "x.ckpt"},
	} {
		if _, err := md.Create(cfg); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("config %+v: %v, want ErrBadSpec", cfg, err)
		}
	}
}

// TestStalledSessionFails wedges a served session's outputs shut: the
// watchdog aborts with ckpt.ErrStalled, which surfaces once from Step,
// lands the session in the failed state with the partial result frozen,
// and maps to 409 — while further stepping refuses with ErrFinished.
func TestStalledSessionFails(t *testing.T) {
	m := NewManager(Options{})
	s, err := m.Create(SessionConfig{Ports: 4, Buf: 32, Cycles: 60, Load: 0.5, Seed: 3, Watchdog: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing may ever depart: once the driven window ends, the drain
	// makes no progress while cells stay resident.
	s.sim.Switch().SetOutputGate(func(out int) bool { return false })

	var stepErr error
	for s.State() == StateIdle {
		if _, stepErr = s.Step(1 << 10); stepErr != nil {
			break
		}
	}
	if !errors.Is(stepErr, ckpt.ErrStalled) {
		t.Fatalf("step error %v, want ErrStalled", stepErr)
	}
	if st := s.State(); st != StateFailed {
		t.Fatalf("state %v, want failed", st)
	}
	if got := HTTPStatus(stepErr); got != 409 {
		t.Fatalf("ErrStalled maps to %d, want 409", got)
	}
	res, partial, err := s.Result()
	if !errors.Is(err, ckpt.ErrStalled) || partial {
		t.Fatalf("result: partial=%v err=%v, want frozen ErrStalled", partial, err)
	}
	if res.Offered == 0 || res.Delivered != 0 {
		t.Fatalf("partial result implausible for a wedged switch: %+v", res)
	}
	if st := s.Status(); st.Error == "" || st.State != "failed" {
		t.Fatalf("status does not surface the failure: %+v", st)
	}
	if _, err := s.Step(1); !errors.Is(err, ErrFinished) {
		t.Fatalf("step after failure: %v, want ErrFinished", err)
	}
	if err := s.Start(); !errors.Is(err, ErrFinished) {
		t.Fatalf("run after failure: %v, want ErrFinished", err)
	}
	if err := s.Extend([][]int{{0, 1, 2, 3}}); !errors.Is(err, ErrFinished) {
		t.Fatalf("inject after failure: %v, want ErrFinished", err)
	}
	if _, err := m.Fork(s.ID(), ""); !errors.Is(err, ErrFinished) {
		t.Fatalf("fork after failure: %v, want ErrFinished", err)
	}
}

// TestInjectIntoServedTrace: cells streamed into a live trace session are
// delivered, including rows injected after the initial schedule ran dry.
func TestInjectIntoServedTrace(t *testing.T) {
	m := NewManager(Options{})
	s, err := m.Create(SessionConfig{
		Ports: 2, Buf: 8, Cycles: 400, Traffic: "trace",
		Schedule: [][]int{{1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(100); err != nil {
		t.Fatal(err)
	}
	if err := s.Extend([][]int{{0, traffic.NoArrival}, {1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Extend(nil); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty inject: %v, want ErrBadSpec", err)
	}
	if err := s.Extend([][]int{{9, 9}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad inject: %v, want ErrBadSpec", err)
	}
	for s.State() == StateIdle {
		if _, err := s.Step(1 << 10); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 5 || res.Delivered != 5 {
		t.Fatalf("offered %d delivered %d, want 5 and 5 (2 initial + 3 injected)", res.Offered, res.Delivered)
	}
}

// TestHammer races the whole session lifecycle: concurrent create, step,
// free-run, pause, checkpoint, fork, scrape, inject and delete against one
// manager. Run under -race (make race / the CI race job); correctness here
// is "no race, no deadlock, no panic" plus conserved session accounting.
func TestHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer is for the race run")
	}
	dir := t.TempDir()
	m := NewManager(Options{MaxSessions: 32, CkptDir: dir, FreeRunBatch: 64, TelemetryEvery: 32})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("h%d-%d", w, i)
				s, err := m.Create(SessionConfig{
					Name: name, Ports: 2, Buf: 8, Cycles: 5000, Seed: uint64(w*100 + i),
				})
				if errors.Is(err, ErrTooManySessions) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				switch i % 4 {
				case 0:
					_, _ = s.Step(512)
					_, _ = m.Checkpoint(name)
				case 1:
					_ = s.Start()
					_ = s.Status()
					_, _ = m.Fork(name, "")
					s.Pause()
				case 2:
					_ = s.Start()
					_, _ = m.Checkpoint(name)
					_ = s.Series()
					s.Pause()
				case 3:
					_, _ = s.Step(256)
					_, _, _ = s.Result()
				}
				// Delete everything this worker made; forks (server-named
				// s1, s2, …) are swept after the join.
				if err := m.Delete(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, s := range m.List() {
		if err := m.Delete(s.ID()); err != nil {
			t.Error(err)
		}
	}
	if n := len(m.List()); n != 0 {
		t.Fatalf("%d sessions leaked", n)
	}
	if got := m.Registry().Snapshot().Gauges["pipemem_srv_sessions_active"]; got != 0 {
		t.Fatalf("active gauge %d after full teardown", got)
	}
}
