package fault

import (
	"fmt"
	"math/rand/v2"

	"pipemem/internal/cell"
	"pipemem/internal/core"
	"pipemem/internal/stats"
)

// Target is what an Engine injects into: the switch's seams, and
// optionally the CRC links in front of its inputs (nil Links skips link
// events).
type Target struct {
	Switch *core.Switch
	Links  []*Link
}

// Engine walks a Plan and fires each event at its cycle. Everything it
// does is deterministic in (plan, seed): "any" targets are resolved with
// its own PCG stream, never the traffic's.
type Engine struct {
	plan *Plan
	idx  int
	// pcg is the concrete source behind rng, retained so checkpointing can
	// reach the PCG's MarshalBinary/UnmarshalBinary.
	pcg     *rand.PCG
	rng     *rand.Rand
	counter stats.Counter
}

// NewEngine returns an engine over plan (which must be cycle-ordered, as
// Parse and Random produce). The seed resolves "any" targets.
func NewEngine(plan *Plan, seed uint64) *Engine {
	pcg := rand.NewPCG(seed, 0xd1342543de82ef95)
	return &Engine{
		plan: plan,
		pcg:  pcg,
		rng:  rand.New(pcg),
	}
}

// Step fires every event scheduled at the given cycle. Call it once per
// cycle, before the switch's Tick for that cycle. Events whose target
// cannot be resolved (no live buffer word, an idle link) are skipped and
// counted; applied and skipped tallies are per kind in Counters.
func (e *Engine) Step(t Target, cycle int64) {
	for e.idx < len(e.plan.Events) && e.plan.Events[e.idx].Cycle <= cycle {
		ev := e.plan.Events[e.idx]
		e.idx++
		if ev.Cycle < cycle {
			continue // scheduled before the run started; unreachable now
		}
		if e.apply(t, ev) {
			e.counter.Inc("applied-"+ev.Kind.String(), 1)
		} else {
			e.counter.Inc("skipped-"+ev.Kind.String(), 1)
		}
	}
}

// Done reports that every event in the plan has been fired or passed over.
func (e *Engine) Done() bool { return e.idx >= len(e.plan.Events) }

// Counters exposes the applied-/skipped- tallies per fault kind.
func (e *Engine) Counters() *stats.Counter { return &e.counter }

// Applied returns how many events of kind k actually hit a target.
func (e *Engine) Applied(k Kind) int64 { return e.counter.Get("applied-" + k.String()) }

// Skipped returns how many events of kind k found no target.
func (e *Engine) Skipped(k Kind) int64 { return e.counter.Get("skipped-" + k.String()) }

func (e *Engine) apply(t Target, ev Event) bool {
	s := t.Switch
	cfg := s.Config()
	bits := ev.Bits
	if bits == 0 {
		bits = cell.Word(1) << uint(e.rng.IntN(cfg.WordBits))
	}
	switch ev.Kind {
	case Mem:
		stage, addr := ev.Stage, ev.Addr
		if stage == Any {
			stage = e.rng.IntN(cfg.Stages)
		}
		if addr == Any {
			// Pick a live target: a word that is fully written, still
			// queued for reading, and currently clean — the regime where
			// SEC-DED corrects the flip exactly once (and the read scrubs
			// it). The random starting offset keeps the choice unbiased.
			addr = -1
			off := e.rng.IntN(cfg.Cells)
			for j := 0; j < cfg.Cells; j++ {
				a := (off + j) % cfg.Cells
				if s.AddrStable(a) && s.MemoryClean(stage, a) {
					addr = a
					break
				}
			}
			if addr < 0 {
				return false
			}
		}
		s.InjectMemoryFault(stage, addr, bits)
		return true
	case Stuck:
		if ev.Stage < 0 || ev.Stage >= cfg.Stages {
			return false
		}
		s.SetStageStuck(ev.Stage, !ev.Off)
		return true
	case Ctrl:
		if ev.Stage < 0 || ev.Stage >= cfg.Stages {
			return false
		}
		s.InjectControlFault(ev.Stage, ev.Op)
		return true
	case InReg:
		if ev.In < 0 || ev.In >= cfg.Ports || ev.Word < 0 || ev.Word >= cfg.Stages {
			return false
		}
		s.InjectInputRegisterFault(ev.In, ev.Word, bits)
		return true
	case LinkDrop:
		if t.Links == nil || ev.In < 0 || ev.In >= len(t.Links) {
			return false
		}
		return t.Links[ev.In].DropWord(ev.Word)
	case LinkCorrupt:
		if t.Links == nil || ev.In < 0 || ev.In >= len(t.Links) {
			return false
		}
		return t.Links[ev.In].CorruptWord(ev.Word, bits)
	}
	return false
}

// EngineState is the exported state of an Engine, sufficient — together
// with the plan and seed it was built from — to resume event delivery bit
// for bit. RNG is the marshaled PCG state.
type EngineState struct {
	Idx      int
	RNG      []byte
	Counters map[string]int64
}

// State exports the engine for checkpointing.
func (e *Engine) State() (*EngineState, error) {
	rngState, err := e.pcg.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("fault: marshal PCG: %w", err)
	}
	return &EngineState{
		Idx:      e.idx,
		RNG:      rngState,
		Counters: e.counter.Snapshot(),
	}, nil
}

// RestoreEngine rebuilds an engine over plan from a checkpointed state.
// The seed argument is unused for randomness (the RNG state overrides it)
// but must still identify the same plan semantics the checkpoint captured.
func RestoreEngine(plan *Plan, st *EngineState) (*Engine, error) {
	e := NewEngine(plan, 0)
	if st.Idx < 0 || st.Idx > len(plan.Events) {
		return nil, fmt.Errorf("fault: engine state index %d out of range for plan with %d events", st.Idx, len(plan.Events))
	}
	if err := e.pcg.UnmarshalBinary(st.RNG); err != nil {
		return nil, fmt.Errorf("fault: restore PCG: %w", err)
	}
	e.idx = st.Idx
	for name, v := range st.Counters {
		e.counter.Set(name, v)
	}
	return e, nil
}
