package fault

import (
	"fmt"
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/core"
)

// These are the ad-hoc white-box fault scenarios that used to live in
// internal/core/faultinject_test.go, migrated onto the fault-plan API so
// the injection logic exists in exactly one place. They validate the
// verification machinery itself: with no defense layers armed (no ECC),
// would the integrity checks notice a misbehaving buffer, control
// pipeline, or input register? The checks must trip.

func mustSwitch(t *testing.T, cfg core.Config) *core.Switch {
	t.Helper()
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPlan(t *testing.T, text string) *Plan {
	t.Helper()
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runOne drives a single cell 0→1 through the switch while the plan
// unfolds, and returns the departures.
func runOne(t *testing.T, s *core.Switch, plan *Plan) []core.Departure {
	t.Helper()
	eng := NewEngine(plan, 1)
	k := s.Config().Stages
	for c := int64(0); c < int64(6*k); c++ {
		eng.Step(Target{Switch: s}, c)
		var heads []*cell.Cell
		if c == 0 {
			heads = []*cell.Cell{cell.New(1, 0, 1, k, s.Config().WordBits), nil}
		}
		s.Tick(heads)
	}
	if !eng.Done() {
		t.Fatal("plan not fully fired within the run window")
	}
	return s.Drain()
}

// TestFaultMemoryBitFlip: flipping one stored bit in an unprotected bank
// must surface as exactly one checksum mismatch — no silent delivery.
// (Migrated: the flip now comes from a "mem" plan event; addr=any makes
// the engine find the single stored cell.)
func TestFaultMemoryBitFlip(t *testing.T) {
	s := mustSwitch(t, core.Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: false})
	k := s.Config().Stages
	// The write wave starts at cycle 1 and finishes at cycle k; the word
	// is stable (and still queued, store-and-forward) at cycle k+1.
	plan := mustPlan(t, fmt.Sprintf("@%d mem stage=2 addr=any bits=0x4", k+1))
	deps := runOne(t, s, plan)
	if len(deps) != 1 {
		t.Fatalf("%d departures, want 1", len(deps))
	}
	if deps[0].Cell.Equal(deps[0].Expected) {
		t.Fatal("bit flip not detected by the integrity check")
	}
	if got := s.Counters().Get("corrupt"); got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
	if deps[0].Cell.Words[2] == deps[0].Expected.Words[2] {
		t.Fatal("the corrupted word should be word 2")
	}
}

// TestFaultMemoryBitFlipECC is the same scenario with the first defense
// layer armed: SEC-DED absorbs the flip, the delivery is clean, and the
// correction is counted.
func TestFaultMemoryBitFlipECC(t *testing.T) {
	s := mustSwitch(t, core.Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: false, ECC: true})
	k := s.Config().Stages
	plan := mustPlan(t, fmt.Sprintf("@%d mem stage=2 addr=any bits=0x4", k+1))
	deps := runOne(t, s, plan)
	if len(deps) != 1 {
		t.Fatalf("%d departures, want 1", len(deps))
	}
	if !deps[0].Cell.Equal(deps[0].Expected) {
		t.Fatal("ECC failed to correct a single-bit upset")
	}
	if got := s.Counters().Get("ecc-corrected"); got != 1 {
		t.Fatalf("ecc-corrected = %d, want 1", got)
	}
	if got := s.Counters().Get("corrupt"); got != 0 {
		t.Fatalf("corrupt = %d, want 0", got)
	}
}

// TestFaultControlPipelineStall: glitching a latched control word (a
// stuck-at fault on the fig. 5 shift path) must be caught by the
// delayed-copy invariant over the trace. (Migrated: the glitch is a
// "ctrl" plan event.)
func TestFaultControlPipelineStall(t *testing.T) {
	s := mustSwitch(t, core.Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	k := s.Config().Stages
	var events []core.TraceEvent
	s.SetTracer(func(e core.TraceEvent) { events = append(events, e) })
	plan := mustPlan(t, "@2 ctrl stage=2 op=W in=1 addr=7")
	eng := NewEngine(plan, 1)
	for c := int64(0); c < 4; c++ {
		eng.Step(Target{Switch: s}, c)
		var heads []*cell.Cell
		if c == 0 {
			heads = []*cell.Cell{cell.New(1, 0, 1, k, 16), nil}
		}
		s.Tick(heads)
	}
	violated := false
	for i := 1; i < len(events); i++ {
		for st := 1; st < k; st++ {
			if events[i].Ctrl[st] != events[i-1].Ctrl[st-1] {
				violated = true
			}
		}
	}
	if !violated {
		t.Fatal("control-pipeline checker failed to notice the glitched stage")
	}
}

// TestFaultInputRegisterCorruption: corrupting an input register between
// the arrival wave and the write wave is detected downstream. (Migrated:
// an "inreg" plan event firing the cycle after the head latched.)
func TestFaultInputRegisterCorruption(t *testing.T) {
	s := mustSwitch(t, core.Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	plan := mustPlan(t, "@1 inreg in=0 word=0 bits=0x8000")
	deps := runOne(t, s, plan)
	if len(deps) != 1 || deps[0].Cell.Equal(deps[0].Expected) {
		t.Fatal("input-register corruption not detected")
	}
}

// TestFaultDetectionUnderLoad: sustained low-rate corruption of an
// unprotected buffer must always be caught by the end-to-end check —
// never more detections than injections, never zero. (Migrated: a seeded
// random mem-only plan through the harness.)
func TestFaultDetectionUnderLoad(t *testing.T) {
	const cycles = 20_000
	plan := Random(55, RandomOptions{Cycles: cycles, Events: 40, Stages: 8, WordBits: 16, Inputs: 4})
	rep, err := Run(Options{
		Config: core.Config{Ports: 4, WordBits: 16, Cells: 32},
		Plan:   plan,
		Seed:   55,
		Cycles: cycles,
		Load:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	applied := rep.Engine["applied-mem"]
	if applied == 0 {
		t.Fatal("no faults applied; test vacuous")
	}
	if rep.Corrupt == 0 {
		t.Fatalf("0 of %d injected faults detected", applied)
	}
	if rep.Corrupt > applied {
		t.Fatalf("%d corruptions reported for %d injected faults", rep.Corrupt, applied)
	}
}
