package fault

import (
	"pipemem/internal/cell"
	"pipemem/internal/obs"
)

// Link models a CRC-protected input link in front of the switch: the third
// defense layer. A cell transfer is word-serial (one word per cycle, K
// cycles per cell) with a CRC-16 trailer; the receiver buffers the whole
// cell and checks the CRC at the tail. On a mismatch — or a word lost
// outright — it NAKs, and the sender retransmits after an exponential
// backoff (2, 4, 8, … cycles), up to MaxRetries retransmissions before the
// cell is abandoned ("link failed"). The validated cell is handed to the
// switch as an ordinary head, so the link adds K cycles of store-and-check
// latency and the switch itself is oblivious to the protocol.
//
// CRC-16 leaves a 2⁻¹⁶ escape probability per corrupted transfer; an
// escaped cell is delivered with its corrupted payload and the end-to-end
// integrity check downstream flags it — corruption is never silent.
type Link struct {
	cellWords  int
	wordBits   int
	maxRetries int

	sending  *cell.Cell  // cell being transferred, nil when idle
	wire     []cell.Word // receiver's buffer of the in-flight copy
	lost     []bool      // words dropped on the wire this attempt
	crc      uint16      // trailer computed over the clean words at send time
	pos      int         // words transferred so far this attempt
	attempts int         // retransmissions used for the current cell
	resumeAt int64       // first cycle of the next (re)transmission

	// Retransmits counts NAK-triggered retransmissions; Failed counts
	// cells abandoned after exhausting MaxRetries; Delivered counts cells
	// handed to the switch.
	Retransmits, Failed, Delivered int64

	// Observability (Observe): mirrored registry counters and the typed
	// event trace, all nil-safe and nil by default.
	obsRetransmits *obs.Counter
	obsFailed      *obs.Counter
	tracer         *obs.Tracer
	input          int32
}

// Observe mirrors the link's protocol activity into registry counters and
// emits EvCRCRetransmit events on tracer (any argument may be nil).
// input labels the events with the link's input index.
func (l *Link) Observe(retransmits, failed *obs.Counter, tracer *obs.Tracer, input int) {
	l.obsRetransmits = retransmits
	l.obsFailed = failed
	l.tracer = tracer
	l.input = int32(input)
}

// NewLink returns an idle link carrying cells of cellWords words of
// wordBits bits, giving each cell maxRetries retransmissions (≥ 0; a
// negative value means 4, a default that outlasts any plausible burst).
func NewLink(cellWords, wordBits, maxRetries int) *Link {
	if maxRetries < 0 {
		maxRetries = 4
	}
	return &Link{
		cellWords:  cellWords,
		wordBits:   wordBits,
		maxRetries: maxRetries,
		wire:       make([]cell.Word, cellWords),
		lost:       make([]bool, cellWords),
	}
}

// Idle reports that no transfer is in progress and a new cell may be
// offered.
func (l *Link) Idle() bool { return l.sending == nil }

// Offer starts transferring c; the first word goes on the wire at the next
// Tick. Offering to a busy link panics: sources must check Idle.
func (l *Link) Offer(c *cell.Cell, cycle int64) {
	if l.sending != nil {
		panic("fault: Offer on a busy link")
	}
	l.sending = c
	l.beginAttempt(cycle)
	l.attempts = 0
}

// beginAttempt resets the wire for a (re)transmission starting at cycle.
func (l *Link) beginAttempt(cycle int64) {
	copy(l.wire, l.sending.Words)
	for i := range l.lost {
		l.lost[i] = false
	}
	l.crc = cell.CRC16(l.sending.Words)
	l.pos = 0
	l.resumeAt = cycle
}

// Tick advances the link one cycle. When the tail word's CRC check passes
// it returns the received cell, to be injected into the switch as this
// cycle's head on the corresponding input; otherwise it returns nil.
func (l *Link) Tick(cycle int64) *cell.Cell {
	if l.sending == nil || cycle < l.resumeAt {
		return nil
	}
	l.pos++
	if l.pos < l.cellWords {
		return nil
	}
	// Tail cycle: the receiver checks the trailer.
	ok := cell.CRC16(l.wire) == l.crc
	for _, lostWord := range l.lost {
		if lostWord {
			ok = false
		}
	}
	if ok {
		// Deliver what the wire carried: if a corruption slipped past the
		// CRC (a 2⁻¹⁶ collision) the corrupted payload goes through and the
		// end-to-end integrity check downstream catches it.
		got := l.sending.Clone()
		copy(got.Words, l.wire)
		l.sending = nil
		l.Delivered++
		return got
	}
	// NAK: retransmit after exponential backoff, or give up.
	l.attempts++
	if l.attempts > l.maxRetries {
		l.sending = nil
		l.Failed++
		l.obsFailed.Inc()
		return nil
	}
	l.Retransmits++
	l.obsRetransmits.Inc()
	l.tracer.Emit(obs.Event{Kind: obs.EvCRCRetransmit, Cycle: cycle,
		In: l.input, Out: -1, Addr: -1, V: int64(l.attempts)})
	backoff := int64(1) << uint(l.attempts)
	l.beginAttempt(cycle + 1 + backoff)
	return nil
}

// active reports that words of the current attempt are on the wire.
func (l *Link) active() bool { return l.sending != nil && l.pos > 0 }

// CorruptWord XORs mask into word `word` of the transfer in flight
// (Any = the word put on the wire this cycle). It reports whether a
// transfer was actually hit.
func (l *Link) CorruptWord(word int, mask cell.Word) bool {
	if !l.active() {
		return false
	}
	if word == Any {
		word = l.pos - 1
	}
	if word < 0 || word >= l.cellWords {
		return false
	}
	if mask == 0 {
		mask = 1
	}
	l.wire[word] ^= mask.Mask(l.wordBits)
	return true
}

// DropWord marks word `word` of the transfer in flight as lost on the wire
// (Any = the word put on the wire this cycle). It reports whether a
// transfer was actually hit.
func (l *Link) DropWord(word int) bool {
	if !l.active() {
		return false
	}
	if word == Any {
		word = l.pos - 1
	}
	if word < 0 || word >= l.cellWords {
		return false
	}
	l.lost[word] = true
	return true
}
