package fault

import (
	"testing"

	"pipemem/internal/core"
)

// An engine restored from State must resolve the remaining "any" targets
// with the same RNG draws as the original — fault placement is part of
// replay equivalence.
func TestEngineStateResume(t *testing.T) {
	plan, err := Parse("@5 mem stage=any addr=any\n@10 mem stage=any addr=any\n@15 inreg in=0 word=1\n@20 mem stage=any addr=any\n")
	if err != nil {
		t.Fatal(err)
	}
	mkSwitch := func() *core.Switch {
		s, err := core.New(core.Config{Ports: 4, WordBits: 16, Cells: 16, ECC: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Drive the reference engine past the first event, snapshot, then let
	// both finish against identical fresh switches and compare tallies.
	ref := NewEngine(plan, 99)
	sw := mkSwitch()
	for c := int64(0); c <= 7; c++ {
		ref.Step(Target{Switch: sw}, c)
	}
	st, err := ref.State()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RestoreEngine(plan, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done() != ref.Done() {
		t.Fatal("Done mismatch after restore")
	}
	sw2 := mkSwitch()
	for c := int64(8); c <= 25; c++ {
		ref.Step(Target{Switch: sw}, c)
		res.Step(Target{Switch: sw2}, c)
	}
	for _, k := range []Kind{Mem, InReg} {
		if ref.Applied(k) != res.Applied(k) || ref.Skipped(k) != res.Skipped(k) {
			t.Fatalf("%v tallies diverged: applied %d/%d skipped %d/%d",
				k, ref.Applied(k), res.Applied(k), ref.Skipped(k), res.Skipped(k))
		}
	}
}

func TestRestoreEngineRejectsBadIndex(t *testing.T) {
	plan, _ := Parse("@5 mem stage=0 addr=0\n")
	if _, err := RestoreEngine(plan, &EngineState{Idx: 7}); err == nil {
		t.Fatal("out-of-range index must be rejected")
	}
}
