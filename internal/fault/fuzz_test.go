package fault

import (
	"errors"
	"testing"
)

// FuzzFaultPlanParse throws arbitrary text at the plan parser. The parser
// must never panic; it either rejects the input with ErrBadPlan or accepts
// it, and every accepted plan must survive a String → Parse round trip
// unchanged (the two representations agree on the grammar).
func FuzzFaultPlanParse(f *testing.F) {
	f.Add("@120 mem stage=3 addr=any bits=0x10")
	f.Add("@200 stuck stage=2\n@400 stuck stage=2 off")
	f.Add("@50 ctrl stage=1 op=R out=0 addr=3\n@55 ctrl stage=1 op=-")
	f.Add("@70 inreg in=0 word=2 bits=4")
	f.Add("@80 linkdrop in=1 word=any\n@90 linkcorrupt in=1 word=3 bits=0x1")
	f.Add("# comment only\n\n")
	f.Add("@5 mem stage=1 volts=3")
	f.Add(Random(11, RandomOptions{
		Cycles: 500, Events: 20, Stages: 8, WordBits: 16, Inputs: 4,
		Kinds: []Kind{Mem, Stuck, Ctrl, InReg, LinkDrop, LinkCorrupt},
	}).String())
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			if !errors.Is(err, ErrBadPlan) {
				t.Fatalf("Parse error %v does not wrap ErrBadPlan", err)
			}
			return
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("round trip rejected: %v\nplan:\n%s", err, p.String())
		}
		if len(q.Events) != len(p.Events) {
			t.Fatalf("round trip changed event count: %d → %d", len(p.Events), len(q.Events))
		}
		for i := range p.Events {
			if p.Events[i] != q.Events[i] {
				t.Fatalf("round trip changed event %d: %+v → %+v", i, p.Events[i], q.Events[i])
			}
		}
	})
}
