package fault

import (
	"errors"
	"strings"
	"testing"

	"pipemem/internal/core"
)

// TestPlanParse pins the text format: every documented kind parses into
// the expected event.
func TestPlanParse(t *testing.T) {
	text := `
# a comment
@120 mem stage=3 addr=any bits=0x10
@200 stuck stage=2
@400 stuck stage=2 off
@50 ctrl stage=1 op=R out=0 addr=3
@55 ctrl stage=1 op=-
@70 inreg in=0 word=2 bits=4
@80 linkdrop in=1 word=any
@90 linkcorrupt in=1 word=3 bits=0x1
`
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Cycle: 50, Kind: Ctrl, Stage: 1, Addr: Any, In: Any, Word: Any, Op: core.Op{Kind: core.OpRead, Out: 0, Addr: 3}},
		{Cycle: 55, Kind: Ctrl, Stage: 1, Addr: Any, In: Any, Word: Any},
		{Cycle: 70, Kind: InReg, Stage: Any, Addr: Any, In: 0, Word: 2, Bits: 4},
		{Cycle: 80, Kind: LinkDrop, Stage: Any, Addr: Any, In: 1, Word: Any},
		{Cycle: 90, Kind: LinkCorrupt, Stage: Any, Addr: Any, In: 1, Word: 3, Bits: 1},
		{Cycle: 120, Kind: Mem, Stage: 3, Addr: Any, In: Any, Word: Any, Bits: 0x10},
		{Cycle: 200, Kind: Stuck, Stage: 2, Addr: Any, In: Any, Word: Any},
		{Cycle: 400, Kind: Stuck, Stage: 2, Addr: Any, In: Any, Word: Any, Off: true},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(p.Events), len(want))
	}
	for i, e := range p.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
}

// TestPlanRoundTrip: String() re-parses to an identical plan.
func TestPlanRoundTrip(t *testing.T) {
	p := Random(7, RandomOptions{
		Cycles: 1000, Events: 50, Stages: 8, WordBits: 16, Inputs: 4,
		Kinds: []Kind{Mem, Stuck, Ctrl, InReg, LinkDrop, LinkCorrupt},
	})
	text := p.String()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(q.Events) != len(p.Events) {
		t.Fatalf("round trip lost events: %d → %d", len(p.Events), len(q.Events))
	}
	for i := range p.Events {
		if p.Events[i] != q.Events[i] {
			t.Errorf("event %d changed: %+v → %+v", i, p.Events[i], q.Events[i])
		}
	}
}

// TestPlanParseErrors: malformed plans are rejected with ErrBadPlan.
func TestPlanParseErrors(t *testing.T) {
	for _, bad := range []string{
		"mem stage=1",            // missing @cycle
		"@x mem stage=1",         // bad cycle
		"@-3 mem stage=1",        // negative cycle
		"@5 quake stage=1",       // unknown kind
		"@5 mem stage=1 volts=3", // unknown key
		"@5 mem bits=zz",         // bad mask
		"@5 stuck",               // stuck needs stage
		"@5 stuck stage=any",     // stuck stage can't be any
		"@5 ctrl stage=1",        // ctrl needs op
		"@5 ctrl stage=1 op=Q",   // bad op
		"@5 inreg in=0",          // inreg needs word
		"@5 linkdrop word=2",     // link needs in
		"@5 mem stage=1 addr",    // not key=value
		"@5 inreg in=0 word=any", // word=any invalid for inreg
	} {
		if _, err := Parse(bad); !errors.Is(err, ErrBadPlan) {
			t.Errorf("Parse(%q) err = %v, want ErrBadPlan", bad, err)
		}
	}
}

// TestPlanRandomDeterministic: same seed, same plan.
func TestPlanRandomDeterministic(t *testing.T) {
	o := RandomOptions{Cycles: 5000, Events: 100, Stages: 8, WordBits: 16, Inputs: 4}
	a, b := Random(42, o), Random(42, o)
	if a.String() != b.String() {
		t.Fatal("Random is not deterministic for a fixed seed")
	}
	if c := Random(43, o); c.String() == a.String() {
		t.Fatal("different seeds produced identical plans")
	}
	if !strings.Contains(a.String(), "mem") {
		t.Fatal("default mix should contain mem events")
	}
}
