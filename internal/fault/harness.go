package fault

import (
	"fmt"
	"math/rand/v2"

	"pipemem/internal/bufmgr"
	"pipemem/internal/cell"
	"pipemem/internal/core"
)

// Options parameterizes a fault-injection run.
type Options struct {
	// Config is the switch under test (canonicalized and validated by
	// core.New).
	Config core.Config
	// Plan is the fault schedule; nil means a fault-free run.
	Plan *Plan
	// Seed drives the traffic source and the engine's "any" resolution.
	Seed uint64
	// Cycles is the driven window; the run then drains in-flight cells.
	Cycles int64
	// Load is the offered load per input link in (0, 1].
	Load float64
	// LinkProtect wraps every input link in the CRC/retransmit protocol
	// (Link); required for LinkDrop/LinkCorrupt events to have a target.
	LinkProtect bool
	// MaxRetries bounds retransmissions per cell (≤ 0 means the default
	// of 4; use the Link type directly for a no-retry protocol).
	MaxRetries int
	// Observer, when non-nil, is installed on the switch under test so
	// the run's wave, drop, ECC and bypass activity lands in its metrics
	// registry and event tracer; the input links mirror their CRC
	// retransmissions and failures into it as well.
	Observer *core.Observer
	// Policy, when non-nil, is installed as the switch's shared-buffer
	// admission policy (bufmgr) before traffic starts; its drops and
	// push-outs are counted under Dropped like any other loss mode.
	Policy bufmgr.Policy
}

// Report is the outcome of a fault-injection run.
type Report struct {
	// Cycles is the total simulated length including the drain tail.
	Cycles int64
	// Offered counts cells handed to the input links; Delivered cells that
	// left the switch; Dropped cells lost for capacity or policy reasons
	// (core.Switch.DroppedCells: overrun, policy drops, push-outs and
	// bypass flushes); LinkFailed cells abandoned by the link
	// protocol; Resident cells still inside at the end (0 after a clean
	// drain).
	Offered, Delivered, Dropped, LinkFailed, Resident int64
	// Corrupt counts delivered cells whose payload differed from the
	// offered payload — the quantity the defense layers exist to keep at
	// zero.
	Corrupt int64
	// LinkRetransmits counts NAK-triggered retransmissions across inputs.
	LinkRetransmits int64
	// Switch is a snapshot of the switch's counters ("ecc-corrected",
	// "ecc-uncorrectable", "stage-bypass", "drop-bypass", …); Engine of
	// the engine's applied-/skipped- tallies per fault kind.
	Switch, Engine map[string]int64
	// Health is the switch's final fault-tolerance state.
	Health core.Health
}

// String renders the one-line summary pmsim prints.
func (r *Report) String() string {
	return fmt.Sprintf(
		"cycles=%d offered=%d delivered=%d dropped=%d linkfailed=%d corrupt=%d ecc-corrected=%d ecc-uncorrectable=%d bypassed=%v retransmits=%d",
		r.Cycles, r.Offered, r.Delivered, r.Dropped, r.LinkFailed, r.Corrupt,
		r.Switch["ecc-corrected"], r.Switch["ecc-uncorrectable"], r.Health.Bypassed, r.LinkRetransmits)
}

// Conserved checks the cell-conservation invariant: every offered cell is
// delivered, dropped by the switch, abandoned by its link, or still
// resident. It returns nil when the books balance.
func (r *Report) Conserved() error {
	if r.Delivered+r.Dropped+r.LinkFailed+r.Resident != r.Offered {
		return fmt.Errorf("fault: conservation violated: offered %d ≠ delivered %d + dropped %d + linkfailed %d + resident %d",
			r.Offered, r.Delivered, r.Dropped, r.LinkFailed, r.Resident)
	}
	return nil
}

// Run drives a switch under traffic while a fault plan unfolds, then
// drains and audits the books. The error reports harness-level failures
// (bad config, drain stall); fault consequences (corruption, drops,
// bypasses) are data in the Report, not errors.
func Run(o Options) (*Report, error) {
	s, err := core.New(o.Config)
	if err != nil {
		return nil, err
	}
	cfg := s.Config()
	n, k := cfg.Ports, cfg.Stages
	if o.Load <= 0 || o.Load > 1 {
		return nil, fmt.Errorf("fault: load %v out of (0,1]", o.Load)
	}
	plan := o.Plan
	if plan == nil {
		plan = &Plan{}
	}
	engine := NewEngine(plan, o.Seed^0x9e3779b97f4a7c15)
	target := Target{Switch: s}
	retries := o.MaxRetries
	if retries <= 0 {
		retries = 4
	}
	if o.Observer != nil {
		s.SetObserver(o.Observer)
	}
	if o.Policy != nil {
		s.SetBufferPolicy(o.Policy)
	}
	var links []*Link
	if o.LinkProtect {
		links = make([]*Link, n)
		for i := range links {
			links[i] = NewLink(k, cfg.WordBits, retries)
			if o.Observer != nil {
				links[i].Observe(o.Observer.LinkRetransmits, o.Observer.LinkFailed, o.Observer.Tracer, i)
			}
		}
		target.Links = links
	}

	rep := &Report{}
	var seq uint64
	sums := make(map[uint64]uint64) // seq → checksum of the offered cell
	collect := func() {
		for _, d := range s.Drain() {
			rep.Delivered++
			want, ok := sums[d.Cell.Seq]
			if !ok || d.Cell.Checksum() != want {
				rep.Corrupt++
			}
			delete(sums, d.Cell.Seq)
		}
	}

	// The source: each idle input link starts a cell with the idle-cycle
	// probability that makes the long-run link utilization equal Load
	// (the same construction as traffic.CellStream's Bernoulli mode).
	rng := rand.New(rand.NewPCG(o.Seed, 0xa0761d6478bd642f))
	q := o.Load / (float64(k)*(1-o.Load) + o.Load)
	busy := make([]int, n) // direct mode: cycles the link stays mid-cell
	heads := make([]*cell.Cell, n)
	offer := func(i int) *cell.Cell {
		if rng.Float64() >= q {
			return nil
		}
		seq++
		c := cell.New(seq, i, rng.IntN(n), k, cfg.WordBits)
		sums[seq] = c.Checksum()
		rep.Offered++
		return c
	}

	for c := int64(0); c < o.Cycles; c++ {
		engine.Step(target, c)
		for i := 0; i < n; i++ {
			if o.LinkProtect {
				heads[i] = links[i].Tick(c)
				if links[i].Idle() {
					if nc := offer(i); nc != nil {
						links[i].Offer(nc, c)
					}
				}
			} else {
				heads[i] = nil
				if busy[i] > 0 {
					busy[i]--
					continue
				}
				if nc := offer(i); nc != nil {
					heads[i] = nc
					busy[i] = k - 1
				}
			}
		}
		s.Tick(heads)
		collect()
	}

	// Drain: stop offering, run the links dry, then let the switch's
	// buffer and egress pipelines empty. The bound covers a full buffer
	// funneled through one output at the degraded half-rate cadence, plus
	// the worst-case link backoff tail.
	linksBusy := func() bool {
		for _, l := range links {
			if !l.Idle() {
				return true
			}
		}
		return false
	}
	drainBound := int64((cfg.Cells+2)*k*4) + 4*int64(k)<<uint(retries+1)
	c := o.Cycles
	for end := o.Cycles + drainBound; c < end && (s.Resident() > 0 || linksBusy()); c++ {
		engine.Step(target, c)
		for i := 0; i < n; i++ {
			heads[i] = nil
			if o.LinkProtect {
				heads[i] = links[i].Tick(c)
			}
		}
		s.Tick(heads)
		collect()
	}

	rep.Cycles = c
	rep.Resident = int64(s.Resident())
	rep.Dropped = s.DroppedCells()
	for _, l := range links {
		rep.LinkRetransmits += l.Retransmits
		rep.LinkFailed += l.Failed
	}
	rep.Switch = s.Counters().Snapshot()
	rep.Engine = engine.Counters().Snapshot()
	rep.Health = s.Health()
	if s.Resident() > 0 || linksBusy() {
		return rep, fmt.Errorf("fault: drain stalled after %d cycles with %d cells resident", drainBound, s.Resident())
	}
	if err := rep.Conserved(); err != nil {
		return rep, err
	}
	return rep, nil
}
