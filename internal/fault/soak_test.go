package fault

import (
	"fmt"
	"testing"

	"pipemem/internal/cell"
	"pipemem/internal/core"
)

// TestChaosSoakECC is the headline robustness run: 1.2·10⁵ cycles of
// Bernoulli traffic on a 4×4 switch while a seeded random plan sprays
// single-bit upsets into the ECC-protected banks. Every flip targets a
// live, clean, fully written word, so SEC-DED must correct each one
// exactly once: zero corrupted deliveries, zero uncorrectable errors, and
// an ecc-corrected count that equals the number of applied faults. Cell
// conservation is audited by Run itself.
func TestChaosSoakECC(t *testing.T) {
	const cycles = 120_000
	plan := Random(1234, RandomOptions{
		Cycles: cycles, Events: 2000, Stages: 8, WordBits: 16, Inputs: 4,
	})
	// Store-and-forward, so every cell is parked in the banks for at least
	// one full wave time — the regime that exposes stored words to upsets.
	rep, err := Run(Options{
		Config: core.Config{Ports: 4, WordBits: 16, Cells: 32, ECC: true},
		Plan:   plan,
		Seed:   1234,
		Cycles: cycles,
		Load:   0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	applied := rep.Engine["applied-mem"]
	if applied < 1000 {
		t.Fatalf("only %d of %d planned faults found a live target; soak too idle", applied, len(plan.Events))
	}
	if rep.Corrupt != 0 {
		t.Fatalf("%d corrupted deliveries; ECC must absorb every single-bit upset", rep.Corrupt)
	}
	if got := rep.Switch["ecc-uncorrectable"]; got != 0 {
		t.Fatalf("ecc-uncorrectable = %d, want 0 under single-bit faults", got)
	}
	if got := rep.Switch["ecc-hard"]; got != 0 {
		t.Fatalf("ecc-hard = %d, want 0: every scrub of a transient upset must verify clean", got)
	}
	if got := rep.Switch["ecc-corrected"]; got != applied {
		t.Fatalf("ecc-corrected = %d, want exactly the %d applied faults", got, applied)
	}
	if rep.Health.Degraded || rep.Health.Failed {
		t.Fatalf("switch degraded under fully correctable faults: %+v", rep.Health)
	}
	if rep.Delivered == 0 || rep.Dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d; soak load should be loss-free", rep.Delivered, rep.Dropped)
	}
}

// TestChaosSoakLinkProtect soaks the third defense layer: random word
// corruption and word drops on CRC-protected input links. Every hit must
// be caught by the CRC and repaired by retransmission — zero corrupted
// deliveries and zero abandoned cells (the fault rate is far below the
// retry budget) — while conservation holds end to end.
func TestChaosSoakLinkProtect(t *testing.T) {
	const cycles = 100_000
	plan := Random(99, RandomOptions{
		Cycles: cycles, Events: 600, Stages: 8, WordBits: 16, Inputs: 4,
		Kinds: []Kind{LinkCorrupt, LinkDrop},
	})
	rep, err := Run(Options{
		Config:      core.Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true},
		Plan:        plan,
		Seed:        99,
		Cycles:      cycles,
		Load:        0.5,
		LinkProtect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := rep.Engine["applied-linkcorrupt"] + rep.Engine["applied-linkdrop"]
	if hits < 100 {
		t.Fatalf("only %d link faults hit a transfer; soak too idle", hits)
	}
	if rep.Corrupt != 0 {
		t.Fatalf("%d corrupted deliveries slipped past the link CRC", rep.Corrupt)
	}
	if rep.LinkRetransmits == 0 {
		t.Fatal("no retransmissions recorded despite applied link faults")
	}
	if rep.LinkFailed != 0 {
		t.Fatalf("%d cells abandoned; isolated faults must be repaired within the retry budget", rep.LinkFailed)
	}
}

// TestStageBypassStuck is the graceful-degradation acceptance run: bank 2
// sticks at cycle 500; the ECC layer sees its reads fail, the bypass
// threshold trips, the bank is mapped out, and the switch keeps delivering
// — at half buffer capacity — with every post-bypass cell intact.
// Switch.Health() must report the whole story.
func TestStageBypassStuck(t *testing.T) {
	const (
		cycles  = 20_000
		stuckAt = 500
	)
	// Store-and-forward: with cut-through and idle outputs every cell
	// would ride the data bus and never read the banks, so the stuck bank
	// would go unnoticed.
	cfg := core.Config{Ports: 2, WordBits: 16, Cells: 8, ECC: true, BypassThreshold: 3}
	s := mustSwitch(t, cfg)
	k := s.Config().Stages
	plan := mustPlan(t, fmt.Sprintf("@%d stuck stage=2", stuckAt))
	eng := NewEngine(plan, 7)

	// Deterministic alternating traffic: input 0 → output 1, input 1 →
	// output 0, a new cell every 2k cycles per input.
	var seq uint64
	sums := make(map[uint64]uint64)
	offeredAt := make(map[uint64]int64)
	var offered, delivered, corrupt int64
	var tripCycle int64 = -1
	var deliveredAfterTrip, corruptAfterTrip int64
	heads := make([]*cell.Cell, 2)
	for c := int64(0); c < cycles; c++ {
		eng.Step(Target{Switch: s}, c)
		for i := range heads {
			heads[i] = nil
			if c%int64(2*k) == 0 {
				seq++
				nc := cell.New(seq, i, 1-i, k, 16)
				sums[seq] = nc.Checksum()
				offeredAt[seq] = c
				heads[i] = nc
				offered++
			}
		}
		s.Tick(heads)
		if tripCycle < 0 && s.Health().StageDown[2] {
			tripCycle = c
		}
		for _, d := range s.Drain() {
			delivered++
			clean := d.Cell.Checksum() == sums[d.Cell.Seq]
			if !clean {
				corrupt++
			}
			if tripCycle >= 0 && offeredAt[d.Cell.Seq] > tripCycle {
				deliveredAfterTrip++
				if !clean {
					corruptAfterTrip++
				}
			}
		}
	}
	for c := 0; c < 8*k*(cfg.Cells+2) && s.Resident() > 0; c++ {
		s.Tick(nil)
		for _, d := range s.Drain() {
			delivered++
			if d.Cell.Checksum() == sums[d.Cell.Seq] {
				if tripCycle >= 0 && offeredAt[d.Cell.Seq] > tripCycle {
					deliveredAfterTrip++
				}
			} else {
				corrupt++
			}
		}
	}

	h := s.Health()
	if tripCycle < 0 || !h.StageDown[2] {
		t.Fatalf("stuck bank 2 never mapped out (health %+v)", h)
	}
	if tripCycle < stuckAt {
		t.Fatalf("bypass tripped at cycle %d, before the fault at %d", tripCycle, stuckAt)
	}
	if !h.Degraded || h.Failed {
		t.Fatalf("health = %+v, want degraded but not failed", h)
	}
	if h.UsableCells != cfg.Cells/2 {
		t.Fatalf("usable capacity %d, want %d (halved)", h.UsableCells, cfg.Cells/2)
	}
	if got := s.FreeCells(); got != cfg.Cells/2 {
		t.Fatalf("free list rebuilt to %d addresses, want %d", got, cfg.Cells/2)
	}
	if len(h.Bypassed) != 1 || h.Bypassed[0] != 2 {
		t.Fatalf("bypassed = %v, want [2]", h.Bypassed)
	}
	if h.ECCUncorrectable+h.ECCHard < int64(cfg.BypassThreshold) {
		t.Fatalf("uncorrectable %d + hard %d below the threshold that supposedly tripped",
			h.ECCUncorrectable, h.ECCHard)
	}
	// Graceful degradation: traffic offered after the bypass still flows,
	// and none of it is corrupted (the stuck bank is out of the data path).
	if deliveredAfterTrip < 100 {
		t.Fatalf("only %d cells delivered after the bypass; switch did not keep running", deliveredAfterTrip)
	}
	if corruptAfterTrip != 0 {
		t.Fatalf("%d post-bypass cells corrupted; the mapped-out bank is still in the data path", corruptAfterTrip)
	}
	// Detection happened at all (pre-bypass reads of the stuck bank).
	if corrupt == 0 {
		t.Fatal("no corruption observed at the fault onset; the stuck model is vacuous")
	}
	// Conservation: every offered cell is accounted for.
	drops := s.Counters().Get("drop-overrun") + s.Counters().Get("drop-bypass")
	if delivered+drops+int64(s.Resident()) != offered {
		t.Fatalf("conservation violated: offered %d ≠ delivered %d + dropped %d + resident %d",
			offered, delivered, drops, s.Resident())
	}
}

// TestManualMapOut: the maintenance path — mapping out a healthy bank by
// hand between ticks — halves capacity immediately and traffic keeps
// flowing intact (nothing was wrong with the data, so nothing is lost but
// the flushed residents).
func TestManualMapOut(t *testing.T) {
	s := mustSwitch(t, core.Config{Ports: 2, WordBits: 16, Cells: 8, CutThrough: true})
	if err := s.MapOutStage(99); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
	if err := s.MapOutStage(1); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if !h.Degraded || !h.StageDown[1] || h.UsableCells != 4 {
		t.Fatalf("health after manual map-out = %+v", h)
	}
	k := s.Config().Stages
	var seq uint64
	var delivered int64
	for c := int64(0); c < int64(60*k); c++ {
		var heads []*cell.Cell
		if c%int64(2*k) == 0 {
			seq++
			heads = []*cell.Cell{cell.New(seq, 0, 1, k, 16), nil}
		}
		s.Tick(heads)
		for _, d := range s.Drain() {
			delivered++
			if !d.Cell.Equal(d.Expected) {
				t.Fatalf("cell %d corrupted through the bypass remap", d.Cell.Seq)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no deliveries through a degraded switch")
	}
	// The second bank of the pair going down is fatal.
	if err := s.MapOutStage(0); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); !h.Failed {
		t.Fatalf("losing both banks of a pair must raise Failed (health %+v)", h)
	}
}
