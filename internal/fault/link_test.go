package fault

import (
	"testing"

	"pipemem/internal/cell"
)

// drive ticks the link until it yields a cell or gives up, returning the
// delivered cell (nil if the transfer failed) and the cycle after the
// last tick.
func drive(l *Link, from int64, bound int) (*cell.Cell, int64) {
	c := from
	for i := 0; i < bound; i++ {
		got := l.Tick(c)
		c++
		if got != nil || l.Idle() {
			return got, c
		}
	}
	return nil, c
}

// TestLinkCleanTransfer: an unperturbed transfer takes exactly K cycles
// and delivers the payload verbatim.
func TestLinkCleanTransfer(t *testing.T) {
	const k = 8
	l := NewLink(k, 16, -1)
	c := cell.New(1, 0, 1, k, 16)
	l.Offer(c, 0)
	got, at := drive(l, 0, 100)
	if got == nil {
		t.Fatal("clean transfer failed")
	}
	if at != k {
		t.Fatalf("delivery after %d cycles, want %d", at, k)
	}
	if !got.Equal(c) {
		t.Fatal("payload mangled on a clean link")
	}
	if l.Retransmits != 0 || l.Failed != 0 || l.Delivered != 1 {
		t.Fatalf("counters: retransmits=%d failed=%d delivered=%d", l.Retransmits, l.Failed, l.Delivered)
	}
}

// TestLinkRetransmitOnCorruption: one corrupted word triggers exactly one
// retransmission and the cell still arrives intact.
func TestLinkRetransmitOnCorruption(t *testing.T) {
	const k = 8
	l := NewLink(k, 16, -1)
	c := cell.New(2, 0, 1, k, 16)
	l.Offer(c, 0)
	l.Tick(0) // word 0 on the wire
	if !l.CorruptWord(Any, 0x10) {
		t.Fatal("corruption found no transfer in flight")
	}
	got, _ := drive(l, 1, 1000)
	if got == nil {
		t.Fatal("transfer failed despite retries available")
	}
	if !got.Equal(c) {
		t.Fatal("delivered payload corrupted — CRC failed to catch the flip")
	}
	if l.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", l.Retransmits)
	}
}

// TestLinkDropRetransmit: a lost word is equivalent to corruption — NAK
// and retransmit.
func TestLinkDropRetransmit(t *testing.T) {
	const k = 4
	l := NewLink(k, 16, -1)
	c := cell.New(3, 0, 1, k, 16)
	l.Offer(c, 0)
	l.Tick(0)
	l.Tick(1)
	if !l.DropWord(1) {
		t.Fatal("drop found no transfer in flight")
	}
	got, _ := drive(l, 2, 1000)
	if got == nil || !got.Equal(c) {
		t.Fatal("cell not recovered after a word drop")
	}
	if l.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", l.Retransmits)
	}
}

// TestLinkBoundedRetries: corrupting every attempt exhausts MaxRetries and
// the cell is abandoned, not delivered corrupted and not retried forever.
func TestLinkBoundedRetries(t *testing.T) {
	const k, retries = 4, 3
	l := NewLink(k, 16, retries)
	c := cell.New(4, 0, 1, k, 16)
	l.Offer(c, 0)
	cyc := int64(0)
	for i := 0; i < 10_000 && !l.Idle(); i++ {
		got := l.Tick(cyc)
		if got != nil {
			t.Fatal("corrupted transfer delivered")
		}
		l.CorruptWord(Any, 1) // hit whatever word is in flight
		cyc++
	}
	if !l.Idle() {
		t.Fatal("link never gave up")
	}
	if l.Failed != 1 {
		t.Fatalf("failed = %d, want 1", l.Failed)
	}
	if l.Retransmits != retries {
		t.Fatalf("retransmits = %d, want %d", l.Retransmits, retries)
	}
}

// TestLinkBackoffSpacing: the gap before retransmission k is 2^k cycles
// (exponential backoff), so a persistent burst on the wire is outwaited.
func TestLinkBackoffSpacing(t *testing.T) {
	const k = 4
	l := NewLink(k, 16, -1)
	c := cell.New(5, 0, 1, k, 16)
	l.Offer(c, 0)
	// First attempt: words at cycles 0..3, corrupted; NAK at cycle 3.
	for cyc := int64(0); cyc < k; cyc++ {
		l.Tick(cyc)
		l.CorruptWord(Any, 1)
	}
	if l.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1 after first NAK", l.Retransmits)
	}
	// Backoff 2^1 = 2: the wire is silent at cycles 4 and 5, the second
	// attempt runs clean at cycles 6..9.
	for cyc := int64(k); cyc < k+2; cyc++ {
		if l.Tick(cyc) != nil || l.active() {
			t.Fatalf("link transmitted during backoff at cycle %d", cyc)
		}
	}
	got, at := drive(l, k+2, 100)
	if got == nil || !got.Equal(c) {
		t.Fatal("second attempt failed")
	}
	if want := int64(k + 2 + k); at != want {
		t.Fatalf("delivery at cycle %d, want %d", at, want)
	}
}
