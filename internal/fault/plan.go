// Package fault is a deterministic, seedable fault-injection engine for
// the pipelined memory switch: it turns a fault plan — a schedule of
// {cycle, site, kind} events — into calls on the injection seams of
// core.Switch and the CRC-protected Link, and it provides the harness that
// drives traffic through a switch while a plan unfolds.
//
// # Fault-plan text format
//
// A plan is a line-oriented text. Blank lines and lines starting with '#'
// are ignored. Every other line schedules one event:
//
//	@<cycle> <kind> key=value ...
//
// with the kinds and their keys:
//
//	@120 mem stage=3 addr=any bits=0x10   # XOR bits into a stored word
//	@200 stuck stage=2                    # bank 2 sticks (writes ignored,
//	@400 stuck stage=2 off                #   reads all-ones); off clears
//	@50  ctrl stage=1 op=R out=0 addr=3   # overwrite a latched control word
//	@55  ctrl stage=1 op=-                # squash a latched control word
//	@70  inreg in=0 word=2 bits=0x4       # flip bits in an input register
//	@80  linkdrop in=1 word=any           # lose a word on input link 1
//	@90  linkcorrupt in=1 word=3 bits=1   # corrupt a word on input link 1
//
// `addr=any` and `word=any` (value Any, -1) let the engine pick a live
// target at fire time: for mem events it selects a stable, clean buffer
// word (so SEC-DED is guaranteed to correct the flip exactly once); for
// link events it targets the word currently on the wire. `bits` accepts
// decimal or 0x-hex; omitted (0) means a random single bit. Cycles need
// not be sorted in the text; the parsed plan is ordered.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"pipemem/internal/cell"
	"pipemem/internal/core"
)

// ErrBadPlan is the sentinel wrapped by every fault-plan parse error.
var ErrBadPlan = errors.New("fault: invalid fault plan")

// Any, as an Event's Addr or Word, asks the engine to choose a live target
// at fire time.
const Any = -1

// Kind enumerates the fault sites.
type Kind uint8

const (
	// Mem XORs Bits into the buffer word at (Stage, Addr) — a single-event
	// upset in a memory bank; the stored check bits are left stale.
	Mem Kind = iota
	// Stuck sets (or, with Off, clears) a stuck-at fault on bank Stage:
	// writes are ignored and reads return all-ones.
	Stuck
	// Ctrl overwrites the control word latched at Stage with Op — a glitch
	// in the shifting control pipeline.
	Ctrl
	// InReg XORs Bits into input In's register for word position Word.
	InReg
	// LinkDrop loses word Word of the transfer in flight on input link In.
	LinkDrop
	// LinkCorrupt XORs Bits into word Word of the transfer in flight on
	// input link In.
	LinkCorrupt
	numKinds = iota
)

var kindNames = [numKinds]string{"mem", "stuck", "ctrl", "inreg", "linkdrop", "linkcorrupt"}

// String implements fmt.Stringer (the plan-format keyword).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// Cycle is the clock cycle the fault fires at (applied before the
	// switch's Tick for that cycle).
	Cycle int64
	Kind  Kind
	// Stage is the memory bank / pipeline stage (Mem, Stuck, Ctrl).
	Stage int
	// Addr is the buffer address (Mem), or Any.
	Addr int
	// In is the input link (InReg, LinkDrop, LinkCorrupt).
	In int
	// Word is the word position (InReg) or in-flight word index
	// (LinkDrop, LinkCorrupt; Any = the word on the wire now).
	Word int
	// Bits is the XOR mask (Mem, InReg, LinkCorrupt); 0 means a random
	// single bit chosen at fire time.
	Bits cell.Word
	// Off clears a Stuck fault instead of setting it.
	Off bool
	// Op is the corrupted control word (Ctrl).
	Op core.Op
}

// String renders the event as one fault-plan line; Parse(e.String()) round-
// trips.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%d %s", e.Cycle, e.Kind)
	anyOr := func(v int) string {
		if v == Any {
			return "any"
		}
		return strconv.Itoa(v)
	}
	switch e.Kind {
	case Mem:
		fmt.Fprintf(&b, " stage=%s addr=%s", anyOr(e.Stage), anyOr(e.Addr))
		if e.Bits != 0 {
			fmt.Fprintf(&b, " bits=%#x", uint64(e.Bits))
		}
	case Stuck:
		fmt.Fprintf(&b, " stage=%d", e.Stage)
		if e.Off {
			b.WriteString(" off")
		}
	case Ctrl:
		fmt.Fprintf(&b, " stage=%d op=%s", e.Stage, e.Op.Kind)
		if e.Op.Kind != core.OpNone {
			fmt.Fprintf(&b, " in=%d out=%d addr=%d", e.Op.In, e.Op.Out, e.Op.Addr)
		}
	case InReg:
		fmt.Fprintf(&b, " in=%d word=%d", e.In, e.Word)
		if e.Bits != 0 {
			fmt.Fprintf(&b, " bits=%#x", uint64(e.Bits))
		}
	case LinkDrop:
		fmt.Fprintf(&b, " in=%d word=%s", e.In, anyOr(e.Word))
	case LinkCorrupt:
		fmt.Fprintf(&b, " in=%d word=%s", e.In, anyOr(e.Word))
		if e.Bits != 0 {
			fmt.Fprintf(&b, " bits=%#x", uint64(e.Bits))
		}
	}
	return b.String()
}

// Plan is a schedule of fault events, ordered by cycle (ties keep their
// textual order).
type Plan struct {
	Events []Event
}

// String renders the plan in the text format; Parse round-trips it.
func (p *Plan) String() string {
	var b strings.Builder
	for _, e := range p.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads a plan from its text format. Every error wraps ErrBadPlan
// and names the offending line.
func Parse(text string) (*Plan, error) {
	p := &Plan{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadPlan, ln+1, err)
		}
		p.Events = append(p.Events, e)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Cycle < p.Events[j].Cycle })
	return p, nil
}

func parseEvent(line string) (Event, error) {
	var e Event
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return e, fmt.Errorf("want \"@cycle kind key=value...\", got %q", line)
	}
	if !strings.HasPrefix(fields[0], "@") {
		return e, fmt.Errorf("event must start with @cycle, got %q", fields[0])
	}
	cyc, err := strconv.ParseInt(fields[0][1:], 10, 64)
	if err != nil || cyc < 0 {
		return e, fmt.Errorf("bad cycle %q", fields[0][1:])
	}
	e.Cycle = cyc
	kind := -1
	for k, name := range kindNames {
		if fields[1] == name {
			kind = k
			break
		}
	}
	if kind < 0 {
		return e, fmt.Errorf("unknown fault kind %q", fields[1])
	}
	e.Kind = Kind(kind)
	e.Stage, e.Addr, e.In, e.Word = Any, Any, Any, Any
	opKind := core.OpKind(255)
	var opIn, opOut, opAddr int
	for _, f := range fields[2:] {
		if f == "off" && e.Kind == Stuck {
			e.Off = true
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return e, fmt.Errorf("want key=value, got %q", f)
		}
		switch key {
		case "stage":
			if e.Stage, err = parseIntOrAny(val, e.Kind == Mem); err != nil {
				return e, fmt.Errorf("stage: %v", err)
			}
		case "addr":
			v, err := parseIntOrAny(val, e.Kind == Mem)
			if err != nil {
				return e, fmt.Errorf("addr: %v", err)
			}
			if e.Kind == Ctrl {
				opAddr = v
			} else {
				e.Addr = v
			}
		case "in":
			v, err := parseIntOrAny(val, false)
			if err != nil {
				return e, fmt.Errorf("in: %v", err)
			}
			if e.Kind == Ctrl {
				opIn = v
			} else {
				e.In = v
			}
		case "out":
			if opOut, err = parseIntOrAny(val, false); err != nil {
				return e, fmt.Errorf("out: %v", err)
			}
		case "word":
			anyOK := e.Kind == LinkDrop || e.Kind == LinkCorrupt
			if e.Word, err = parseIntOrAny(val, anyOK); err != nil {
				return e, fmt.Errorf("word: %v", err)
			}
		case "bits":
			base := 10
			if strings.HasPrefix(val, "0x") {
				base, val = 16, val[2:]
			}
			u, err := strconv.ParseUint(val, base, 64)
			if err != nil {
				return e, fmt.Errorf("bits: bad mask %q", f)
			}
			e.Bits = cell.Word(u)
		case "op":
			switch val {
			case "-", "none":
				opKind = core.OpNone
			case "W", "w":
				opKind = core.OpWrite
			case "R", "r":
				opKind = core.OpRead
			case "T", "t":
				opKind = core.OpWriteThrough
			default:
				return e, fmt.Errorf("op: want one of - W R T, got %q", val)
			}
		default:
			return e, fmt.Errorf("unknown key %q", key)
		}
	}
	// Per-kind required keys (Mem accepts "any" everywhere).
	switch e.Kind {
	case Stuck:
		if e.Stage == Any {
			return e, fmt.Errorf("stuck: stage required")
		}
	case Ctrl:
		if e.Stage == Any {
			return e, fmt.Errorf("ctrl: stage required")
		}
		if opKind == core.OpKind(255) {
			return e, fmt.Errorf("ctrl: op required")
		}
		e.Op = core.Op{Kind: opKind, In: opIn, Out: opOut, Addr: opAddr}
	case InReg:
		if e.In == Any || e.Word == Any {
			return e, fmt.Errorf("inreg: in and word required")
		}
	case LinkDrop, LinkCorrupt:
		if e.In == Any {
			return e, fmt.Errorf("%s: in required", e.Kind)
		}
	}
	return e, nil
}

// parseIntOrAny parses a non-negative integer, or "any" when permitted.
func parseIntOrAny(val string, anyOK bool) (int, error) {
	if val == "any" {
		if !anyOK {
			return 0, fmt.Errorf("\"any\" not allowed here")
		}
		return Any, nil
	}
	v, err := strconv.Atoi(val)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad value %q", val)
	}
	return v, nil
}

// RandomOptions parameterizes Random.
type RandomOptions struct {
	// Cycles is the window faults are scheduled in: every event cycle is
	// uniform over [1, Cycles).
	Cycles int64
	// Events is the number of faults to schedule.
	Events int
	// Stages and WordBits describe the target switch (for stage indices
	// and bit masks).
	Stages, WordBits int
	// Inputs is the port count (link and input-register events).
	Inputs int
	// Kinds restricts the event mix; nil means memory upsets only (the
	// regime SEC-DED fully absorbs).
	Kinds []Kind
}

// Random builds a seeded random plan: deterministic for a given (seed,
// options) pair. Memory events target stage/addr "any" with a random
// single-bit mask, so the engine can pick live words at fire time.
func Random(seed uint64, o RandomOptions) *Plan {
	rng := rand.New(rand.NewPCG(seed, 0x6a09e667f3bcc909))
	kinds := o.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{Mem}
	}
	if o.Cycles < 2 {
		o.Cycles = 2
	}
	p := &Plan{Events: make([]Event, 0, o.Events)}
	for i := 0; i < o.Events; i++ {
		e := Event{
			Cycle: 1 + rng.Int64N(o.Cycles-1),
			Kind:  kinds[rng.IntN(len(kinds))],
			Stage: Any, Addr: Any, In: Any, Word: Any,
		}
		bit := cell.Word(1) << uint(rng.IntN(max(o.WordBits, 1)))
		switch e.Kind {
		case Mem:
			e.Bits = bit
		case Stuck:
			e.Stage = rng.IntN(max(o.Stages, 1))
		case Ctrl:
			e.Stage = rng.IntN(max(o.Stages, 1))
			e.Op = core.Op{} // squash: the least catastrophic glitch
		case InReg:
			e.In = rng.IntN(max(o.Inputs, 1))
			e.Word = rng.IntN(max(o.Stages, 1))
			e.Bits = bit
		case LinkDrop:
			e.In = rng.IntN(max(o.Inputs, 1))
		case LinkCorrupt:
			e.In = rng.IntN(max(o.Inputs, 1))
			e.Bits = bit
		}
		p.Events = append(p.Events, e)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Cycle < p.Events[j].Cycle })
	return p
}
