// Package analytic collects the closed-form results the paper quotes or
// derives, so simulations can be validated against theory:
//
//   - the head-of-line saturation throughput of input queueing ([KaHM87],
//     quoted in §2.1 as "about 60%");
//   - the output-queueing / shared-buffering mean delay (M/D/1-like form
//     from [KaHM87]), used as the reference curve in the latency
//     comparison of §2.2;
//   - the staggered-initiation cut-through latency increase of §3.4,
//     E[delay] = (p/4)·(n-1)/n clock cycles;
//   - the packet-size-quantum and aggregate-throughput arithmetic of §3.5.
package analytic

import "math"

// HOLSaturationAsymptotic is the saturation throughput of FIFO input
// queueing as the switch size grows without bound: 2-√2 ≈ 0.586 [KaHM87].
var HOLSaturationAsymptotic = 2 - math.Sqrt2

// holTable lists the exact saturation throughputs of FIFO input queueing
// for small switches, from Table I of [KaHM87] (fixed-size cells,
// independent uniform destinations, random selection among HOL
// contenders).
var holTable = map[int]float64{
	1: 1.0000,
	2: 0.7500,
	3: 0.6825,
	4: 0.6553,
	5: 0.6399,
	6: 0.6302,
	7: 0.6234,
	8: 0.6184,
}

// HOLSaturation returns the saturation throughput of an n×n FIFO
// input-queued switch: exact for n ≤ 8, the 2-√2 asymptote otherwise.
func HOLSaturation(n int) float64 {
	if v, ok := holTable[n]; ok {
		return v
	}
	return HOLSaturationAsymptotic
}

// MD1Wait returns the mean waiting time (in service times) in an M/D/1
// queue at utilization rho: rho / (2(1-rho)). It diverges as rho → 1.
func MD1Wait(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (2 * (1 - rho))
}

// OutputQueueWait returns the mean waiting time, in cell slots, of a cell
// in an n×n output-queued (equivalently shared-buffer) switch with
// Bernoulli arrivals at load p and uniform destinations — eq. (14) of
// [KaHM87]: W = ((n-1)/n) · p / (2(1-p)). Shared buffering reaches the
// same optimal delay with fewer total buffer bits (§2.2).
func OutputQueueWait(n int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return float64(n-1) / float64(n) * p / (2 * (1 - p))
}

// StaggeredInitiationDelay returns the expected cut-through latency
// increase, in clock cycles, caused by the pipelined memory's one-wave-
// per-cycle restriction (§3.4): (p/4)·(n-1)/n, where p is the link load
// and n the switch fan-in. The derivation: a tagged head arriving in cycle
// c collides with each of the other n-1 links' heads with probability
// p/(2n) each (cells are 2n words), and each collision costs half a cycle
// on average, so E = ½·(n-1)·p/(2n).
func StaggeredInitiationDelay(p float64, n int) float64 {
	return p / 4 * float64(n-1) / float64(n)
}

// SharedBufferOccupancy returns the mean steady-state occupancy, in
// cells, of an n×n shared buffer under Bernoulli load p with uniform
// destinations: n outputs, each an M/D/1-like queue with mean waiting
// cells (n-1)/n · p²/(2(1-p)) plus the cell in service p. This is the
// quantity the [HlKa88] sizing curves integrate; the shared buffer's
// advantage is that only the SUM of the outputs' occupancies must fit.
func SharedBufferOccupancy(n int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	perOutput := OutputQueueWait(n, p)*p + p
	return float64(n) * perOutput
}

// Quantum describes the §3.5 packet-size quantum of a pipelined memory
// shared buffer.
type Quantum struct {
	// Links is n, the number of incoming (= outgoing) links.
	Links int
	// WordBits is w, the link width in bits per cycle.
	WordBits int
	// Halved reports whether the two-memory half-quantum organization is
	// used (cells of n instead of 2n words).
	Halved bool
}

// Words returns the quantum in words: 2n, or n when halved.
func (q Quantum) Words() int {
	if q.Halved {
		return q.Links
	}
	return 2 * q.Links
}

// Bits returns the quantum (total buffer width) in bits.
func (q Quantum) Bits() int { return q.Words() * q.WordBits }

// Bytes returns the quantum in bytes, rounding up.
func (q Quantum) Bytes() int { return (q.Bits() + 7) / 8 }

// AggregateGbps returns the aggregate buffer throughput, in Gbit/s, of a
// shared buffer of the given total width cycled every cycleNs nanoseconds:
// one full-width access per cycle. §3.5's example: 256 to 1024 bits at
// 5 ns give 51.2 to 204.8 Gb/s.
func AggregateGbps(widthBits int, cycleNs float64) float64 {
	return float64(widthBits) / cycleNs
}

// LinkGbps returns the per-link throughput, in Gbit/s, of a w-bit-per-cycle
// link clocked every cycleNs nanoseconds. Telegraphos III: 16 bits every
// 16 ns (worst case) → 1 Gb/s.
func LinkGbps(wordBits int, cycleNs float64) float64 {
	return float64(wordBits) / cycleNs
}

// LinkMbps is LinkGbps scaled to Mbit/s (Telegraphos I: 8 bits at
// 13.3 MHz ≈ 107 Mb/s).
func LinkMbps(wordBits int, cycleNs float64) float64 {
	return LinkGbps(wordBits, cycleNs) * 1000
}
