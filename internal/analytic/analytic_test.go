package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHOLSaturation(t *testing.T) {
	if got := HOLSaturation(2); got != 0.75 {
		t.Fatalf("n=2: %v, want 0.75", got)
	}
	if got := HOLSaturation(8); got != 0.6184 {
		t.Fatalf("n=8: %v", got)
	}
	want := 2 - math.Sqrt2
	if got := HOLSaturation(1000); got != want {
		t.Fatalf("asymptote: %v, want %v", got, want)
	}
	if math.Abs(HOLSaturationAsymptotic-0.5858) > 1e-4 {
		t.Fatalf("asymptote constant = %v", HOLSaturationAsymptotic)
	}
	// Monotone decreasing toward the asymptote.
	prev := HOLSaturation(1)
	for n := 2; n <= 8; n++ {
		cur := HOLSaturation(n)
		if cur >= prev {
			t.Fatalf("saturation not decreasing at n=%d", n)
		}
		prev = cur
	}
	if prev < HOLSaturationAsymptotic {
		t.Fatal("n=8 value below the asymptote")
	}
}

func TestMD1Wait(t *testing.T) {
	if got := MD1Wait(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rho=0.5: %v, want 0.5", got)
	}
	if got := MD1Wait(0); got != 0 {
		t.Fatalf("rho=0: %v", got)
	}
	if !math.IsInf(MD1Wait(1), 1) {
		t.Fatal("rho=1 must diverge")
	}
	// Strictly increasing in rho.
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		if a == b || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return MD1Wait(a) < MD1Wait(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutputQueueWait(t *testing.T) {
	// Large n approaches the plain M/D/1 wait.
	if got, want := OutputQueueWait(1_000_000, 0.8), MD1Wait(0.8); math.Abs(got-want) > 1e-5 {
		t.Fatalf("large-n wait %v, want ≈%v", got, want)
	}
	// The paper's §2.2 latency-comparison regime, loads 0.6–0.9, must be
	// finite and increasing.
	prev := 0.0
	for _, p := range []float64{0.6, 0.7, 0.8, 0.9} {
		w := OutputQueueWait(16, p)
		if math.IsInf(w, 1) || w <= prev {
			t.Fatalf("wait at p=%v is %v", p, w)
		}
		prev = w
	}
}

func TestStaggeredInitiationDelay(t *testing.T) {
	// §3.4's worked example: "for 40% load, this amounts to one tenth of
	// a clock cycle" (with (n-1)/n ≈ 1).
	got := StaggeredInitiationDelay(0.4, 1_000_000)
	if math.Abs(got-0.1) > 1e-6 {
		t.Fatalf("p=0.4 large n: %v, want 0.1", got)
	}
	// Exact form for a finite switch.
	if got := StaggeredInitiationDelay(0.8, 8); math.Abs(got-0.8/4*7/8) > 1e-12 {
		t.Fatalf("p=0.8 n=8: %v", got)
	}
	// Zero load → zero delay; delay < 0.25 cycles always (p ≤ 1).
	if StaggeredInitiationDelay(0, 8) != 0 {
		t.Fatal("zero load should cost nothing")
	}
	f := func(pRaw float64, nRaw uint8) bool {
		p := math.Abs(math.Mod(pRaw, 1))
		n := 2 + int(nRaw%62)
		d := StaggeredInitiationDelay(p, n)
		return d >= 0 && d < 0.25
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantum(t *testing.T) {
	// Telegraphos III: 8 links, 16-bit words → 16 stages, 256-bit cells.
	q := Quantum{Links: 8, WordBits: 16}
	if q.Words() != 16 || q.Bits() != 256 || q.Bytes() != 32 {
		t.Fatalf("T3 quantum: words=%d bits=%d bytes=%d", q.Words(), q.Bits(), q.Bytes())
	}
	// Half-quantum organization: cells of n words (§3.5).
	h := Quantum{Links: 8, WordBits: 16, Halved: true}
	if h.Words() != 8 || h.Bits() != 128 {
		t.Fatalf("halved quantum: words=%d bits=%d", h.Words(), h.Bits())
	}
	// §3.5's scaling example: quantum 32–64 bytes ↔ widths 256–1024 bits
	// for 16 links. 16 links × 2 × 16-bit words = 512 bits = 64 bytes;
	// halved gives 32 bytes.
	q16 := Quantum{Links: 16, WordBits: 16}
	if q16.Bytes() != 64 {
		t.Fatalf("16-link quantum = %d bytes, want 64", q16.Bytes())
	}
	if (Quantum{Links: 16, WordBits: 16, Halved: true}).Bytes() != 32 {
		t.Fatal("halved 16-link quantum should be 32 bytes")
	}
}

func TestThroughputArithmetic(t *testing.T) {
	// §3.5: buffer widths of 256 to 1024 bits at 5 ns → 50 to 200 Gb/s.
	if got := AggregateGbps(256, 5); math.Abs(got-51.2) > 1e-9 {
		t.Fatalf("256b/5ns: %v Gb/s", got)
	}
	if got := AggregateGbps(1024, 5); math.Abs(got-204.8) > 1e-9 {
		t.Fatalf("1024b/5ns: %v Gb/s", got)
	}
	// Telegraphos III link: 16 bits / 16 ns = 1 Gb/s worst case; typical
	// 10 ns → 1.6 Gb/s.
	if got := LinkGbps(16, 16); got != 1.0 {
		t.Fatalf("T3 worst-case link: %v Gb/s", got)
	}
	if got := LinkGbps(16, 10); got != 1.6 {
		t.Fatalf("T3 typical link: %v Gb/s", got)
	}
	// Telegraphos I link: 8 bits at 13.3 MHz (75.19 ns) ≈ 107 Mb/s.
	cycleNs := 1000.0 / 13.3
	if got := LinkMbps(8, cycleNs); math.Abs(got-106.4) > 0.5 {
		t.Fatalf("T1 link: %v Mb/s, want ≈106.4", got)
	}
	// Telegraphos II link: 16 bits / 40 ns = 400 Mb/s.
	if got := LinkMbps(16, 40); got != 400 {
		t.Fatalf("T2 link: %v Mb/s", got)
	}
}

func TestSharedBufferOccupancy(t *testing.T) {
	if SharedBufferOccupancy(16, 0) != 0 {
		t.Fatal("zero load should be empty")
	}
	if !math.IsInf(SharedBufferOccupancy(16, 1), 1) {
		t.Fatal("critical load must diverge")
	}
	// The [HlKa88] operating point: 16×16 at p = 0.8 → mean occupancy
	// 16·(0.8 + 0.8·1.875) = 36.8 cells — comfortably under the 86-cell
	// buffer that achieves 1e-3 loss, as it must be.
	got := SharedBufferOccupancy(16, 0.8)
	want := 16 * (0.8 + 0.8*OutputQueueWait(16, 0.8))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("occupancy %v, want %v", got, want)
	}
	if got < 30 || got > 45 {
		t.Fatalf("occupancy %v implausible for the HlKa88 point", got)
	}
	// Monotone in p.
	prev := 0.0
	for _, p := range []float64{0.2, 0.4, 0.6, 0.8, 0.9} {
		v := SharedBufferOccupancy(16, p)
		if v <= prev {
			t.Fatalf("not monotone at p=%v", p)
		}
		prev = v
	}
}
