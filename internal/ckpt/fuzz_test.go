package ckpt

import (
	"reflect"
	"testing"

	"pipemem/internal/traffic"
)

// FuzzCheckpointCycle drives the replay-equivalence property from
// arbitrary interrupt points: whatever cycle the fuzzer picks, a run
// checkpointed there and resumed must finish bit-identically to the
// uninterrupted run. The seed corpus covers the edges (before the first
// arrival, deep in the drain); the fuzzer explores the middle.
func FuzzCheckpointCycle(f *testing.F) {
	f.Add(uint16(0), uint64(1))
	f.Add(uint16(1), uint64(7))
	f.Add(uint16(250), uint64(42))
	f.Add(uint16(399), uint64(3))
	f.Add(uint16(450), uint64(9)) // inside the drain tail

	f.Fuzz(func(t *testing.T, steps uint16, seed uint64) {
		spec := Spec{
			Switch:  coreConfig(),
			Traffic: traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.9, Seed: seed},
			Cycles:  400,
			Policy:  "dt:alpha=2",
		}
		want := runFull(t, spec)

		s, err := New(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < int(steps); i++ {
			ok, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break // run ended before the interrupt point; still valid
			}
		}
		ck, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		r, err := ResumeFrom(ck, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interrupt after %d steps diverged:\n got  %+v\n want %+v", steps, got, want)
		}
	})
}
