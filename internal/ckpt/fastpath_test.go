package ckpt

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pipemem/internal/core"
	"pipemem/internal/fault"
	"pipemem/internal/traffic"
)

// TestFastPathMemFaultReplayEquivalence covers the one fault kind the
// batched tick engine keeps on its fast path: memory upsets (the seam
// materializes lazily deferred payloads before flipping, so the upset
// lands on real bytes without forcing per-stage stepping). The existing
// replay matrix runs its fault plans against ECC switches, which pin the
// exact path — this run drives a cut-through, non-ECC switch, so the
// checkpoint is taken from (and the resumed run re-enters) the fast-path
// machinery, and every flip surfaces as a counted corrupt delivery.
// The uninterrupted run is the oracle: checkpoint mid-plan through the
// file round trip, resume, and require a bit-identical RunResult and
// identical engine tallies.
func TestFastPathMemFaultReplayEquivalence(t *testing.T) {
	plan, err := fault.Parse(
		"@40 mem stage=any addr=any\n" +
			"@90 mem stage=any addr=any\n" +
			"@130 mem stage=2 addr=any bits=0x44\n" +
			"@300 mem stage=any addr=any\n" +
			"@420 mem stage=0 addr=any\n" +
			"@560 mem stage=any addr=any\n")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Switch:    core.Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true},
		Traffic:   traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.85, Seed: 19},
		Cycles:    700,
		Policy:    "dt:alpha=2",
		Plan:      plan,
		FaultSeed: 5,
	}

	// Without ECC an upset on a live word is delivered corrupt, and the
	// run driver reports that as an error alongside the full tally — the
	// equivalence claim covers both. A clean run would mean the plan never
	// hit live words, making the whole test vacuous.
	runCorrupt := func(s *Session) (core.RunResult, string) {
		t.Helper()
		res, err := s.Run()
		if err == nil || !strings.Contains(err.Error(), "corrupted cells") {
			t.Fatalf("want a corrupted-cells run error, got %v (result %+v)", err, res)
		}
		return res, err.Error()
	}

	ref, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, wantErr := runCorrupt(ref)
	if want.Corrupt == 0 {
		t.Fatalf("no corrupt deliveries in the oracle run: %+v", want)
	}

	s, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Stop between two plan events, so the checkpoint carries an engine
	// mid-plan along with the fast-path switch state.
	for i := 0; i < 333; i++ {
		if ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	path := filepath.Join(t.TempDir(), "fastpath.ckpt")
	if err := s.CheckpointTo(path); err != nil {
		t.Fatal(err)
	}
	// Finish the interrupted run too: its tallies are the complete-run
	// reference for the resumed engine's.
	runCorrupt(s)
	wantFaults := s.Engine().Counters().Snapshot()

	r, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, gotErr := runCorrupt(r)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored run diverged:\n got  %+v\n want %+v", got, want)
	}
	if gotErr != wantErr {
		t.Fatalf("restored run error diverged:\n got  %s\n want %s", gotErr, wantErr)
	}
	if gotFaults := r.Engine().Counters().Snapshot(); !reflect.DeepEqual(gotFaults, wantFaults) {
		t.Fatalf("fault tallies diverged:\n got  %v\n want %v", gotFaults, wantFaults)
	}
}
