package ckpt

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pipemem/internal/traffic"
)

// sessionAt builds a session for the canonical small test spec and steps
// it n times.
func sessionAt(t *testing.T, n int) *Session {
	t.Helper()
	s, err := New(Spec{
		Switch:  coreConfig(),
		Traffic: traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.8, Seed: 11},
		Cycles:  800,
		Policy:  "dt:alpha=2",
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	return s
}

func TestFileRoundTrip(t *testing.T) {
	s := sessionAt(t, 321)
	want, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("checkpoint did not survive the file round trip")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after Save: %v", entries)
	}
}

// TestLoadRejectsDamage damages a valid checkpoint file in each of the
// ways the header guards against and demands a descriptive refusal.
func TestLoadRejectsDamage(t *testing.T) {
	s := sessionAt(t, 100)
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, ck); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, wantSub string) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(p)
		if err == nil {
			t.Fatalf("%s: Load accepted damaged file", name)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	// Flipped body byte: CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-2] ^= 0x20
	check("crc.ckpt", bad, "CRC")

	// Truncated body: length must catch it.
	check("trunc.ckpt", good[:len(good)-10], "truncated")

	// Future format version: actionable refusal naming both versions.
	future := []byte(strings.Replace(string(good), "pmckpt v1 ", "pmckpt v99 ", 1))
	check("future.ckpt", future, "format v99")

	// Not a checkpoint at all.
	check("garbage.ckpt", []byte("hello world\n{}"), "not a pipemem checkpoint")

	// Missing file surfaces the underlying error.
	if _, err := Load(filepath.Join(dir, "nope.ckpt")); err == nil {
		t.Fatal("Load of a missing file must fail")
	}
}
