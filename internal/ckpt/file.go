// Package ckpt provides deterministic checkpoint/restore of a complete
// pipelined-switch simulation — core switch state, traffic and fault RNG
// streams, buffer-policy spec and the run driver's loop-carried tallies —
// plus the Session orchestrator that runs with periodic auto-checkpoints,
// online invariant audits and a no-progress watchdog.
//
// The correctness bar is replay equivalence: a run restored from a
// checkpoint taken at cycle k must produce a bit-identical RunResult (and
// trace-event stream from k onward) to the uninterrupted run.
//
// # File format
//
// A checkpoint file is one ASCII header line followed by a JSON body:
//
//	pmckpt v<version> len=<bytes> crc=<crc32-ieee-hex>\n
//	{ ... Checkpoint JSON ... }
//
// The header carries the format version and a CRC32 (IEEE) of the body, so
// truncation and corruption are detected before any field is trusted.
// Files are written crash-consistently: the body goes to a temp file in
// the destination directory, is fsynced, and is renamed over the target —
// a reader never observes a half-written checkpoint.
//
// # Compatibility policy
//
// The format version is bumped whenever any serialized struct changes
// incompatibly. A build reads exactly the version it writes: restore
// across versions is refused with an actionable error rather than risking
// a silently divergent replay. Old checkpoints are re-creatable by rerunning
// the (deterministic) simulation to the same cycle with the old build.
package ckpt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// FormatVersion is the checkpoint file format this build reads and writes.
const FormatVersion = 1

const magic = "pmckpt"

// Save writes the checkpoint to path atomically: temp file in the same
// directory, fsync, rename. On any error the target file is untouched.
func Save(path string, c *Checkpoint) error {
	body, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("ckpt: marshal: %w", err)
	}
	header := fmt.Sprintf("%s v%d len=%d crc=%08x\n", magic, FormatVersion, len(body), crc32.ChecksumIEEE(body))

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.WriteString(header); err != nil {
		return cleanup(fmt.Errorf("ckpt: write %s: %w", tmp, err))
	}
	if _, err := f.Write(body); err != nil {
		return cleanup(fmt.Errorf("ckpt: write %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("ckpt: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	// Persist the rename itself. Failure here is not fatal to consistency
	// (the rename is atomic either way), so sync errors are ignored.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates a checkpoint file: magic, format version, body
// length and CRC are all checked before the JSON is decoded.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || !strings.HasPrefix(string(data[:nl]), magic+" ") {
		return nil, fmt.Errorf("ckpt: %s is not a pipemem checkpoint (missing %q header)", path, magic)
	}
	var ver, n int
	var crc uint32
	if _, err := fmt.Sscanf(string(data[:nl]), magic+" v%d len=%d crc=%x", &ver, &n, &crc); err != nil {
		return nil, fmt.Errorf("ckpt: %s: malformed header %q", path, data[:nl])
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("ckpt: %s is format v%d but this build reads v%d; re-create the checkpoint with a matching build (deterministic runs reproduce it exactly — see DESIGN.md §11)",
			path, ver, FormatVersion)
	}
	body := data[nl+1:]
	if len(body) != n {
		return nil, fmt.Errorf("ckpt: %s: body is %d bytes, header says %d (truncated or overwritten)", path, len(body), n)
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("ckpt: %s: body CRC %08x does not match header %08x (corrupted)", path, got, crc)
	}
	c := new(Checkpoint)
	if err := json.Unmarshal(body, c); err != nil {
		return nil, fmt.Errorf("ckpt: %s: decode: %w", path, err)
	}
	if c.Format != FormatVersion {
		return nil, fmt.Errorf("ckpt: %s: body declares format v%d, header v%d", path, c.Format, ver)
	}
	return c, nil
}
