package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pipemem/internal/traffic"
)

// stepTo advances a session exactly n cycles through StepN, failing the
// test if the run ends early.
func stepTo(t *testing.T, s *Session, n int64) {
	t.Helper()
	adv, done, err := s.StepN(n)
	if err != nil {
		t.Fatal(err)
	}
	if adv != n || done {
		t.Fatalf("StepN(%d): advanced %d, done=%v", n, adv, done)
	}
}

// TestStepNSplitBitIdentity: the serving layer's invariant — a run
// advanced in any mix of StepN batch sizes finishes bit-identical to the
// uninterrupted run, and checkpoints written at the same cycle from
// differently-batched runs are byte-identical files.
func TestStepNSplitBitIdentity(t *testing.T) {
	spec := specFor(t, "dt:alpha=2", false)
	want := runFull(t, spec)

	s, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Irregular batches summing to 333, with a mid-run checkpoint.
	for _, n := range []int64{1, 7, 100, 225} {
		stepTo(t, s, n)
	}
	dir := t.TempDir()
	split := filepath.Join(dir, "split.ckpt")
	if err := s.CheckpointTo(split); err != nil {
		t.Fatal(err)
	}

	// Reference: one StepN call to the same cycle.
	r, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepTo(t, r, 333)
	whole := filepath.Join(dir, "whole.ckpt")
	if err := r.CheckpointTo(whole); err != nil {
		t.Fatal(err)
	}

	sb, err := os.ReadFile(split)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, wb) {
		t.Fatalf("checkpoints at cycle 333 differ by batching: %d vs %d bytes", len(sb), len(wb))
	}

	// Drive both to completion through the step surface and compare the
	// final result against the uninterrupted Run.
	for _, sess := range []*Session{s, r} {
		for {
			_, done, err := sess.StepN(50)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		got, err := sess.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stepped result diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestExtendScheduleCheckpointRoundTrip: rows appended mid-run must
// survive the checkpoint file round trip — the restored stream plays the
// extended schedule and both runs finish identically.
func TestExtendScheduleCheckpointRoundTrip(t *testing.T) {
	sched := [][]int{
		{1, 2, 3, 0},
		{traffic.NoArrival, 0, traffic.NoArrival, 2},
	}
	spec := Spec{
		Switch:  coreConfig(),
		Traffic: traffic.Config{Kind: traffic.Trace, N: 4, Schedule: sched},
		Cycles:  200,
	}
	s, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepTo(t, s, 40)
	if err := s.ExtendSchedule([][]int{{3, 3, traffic.NoArrival, 1}, {0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Spec().Traffic.Schedule); got != 4 {
		t.Fatalf("spec schedule not synced: %d rows, want 4", got)
	}
	path := filepath.Join(t.TempDir(), "ext.ckpt")
	if err := s.CheckpointTo(path); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Spec().Traffic.Schedule); got != 4 {
		t.Fatalf("restored schedule has %d rows, want 4", got)
	}
	want, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored extended run diverged:\n got %+v\nwant %+v", got, want)
	}
	if want.Offered != 13 {
		t.Fatalf("offered %d cells, want 13 (the 4 schedule rows minus idle slots)", want.Offered)
	}

	// Non-trace sessions refuse.
	b, err := New(specFor(t, "", false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ExtendSchedule([][]int{{0, 1, 2, 3}}); err == nil {
		t.Fatal("ExtendSchedule on a Bernoulli session accepted")
	}
}
