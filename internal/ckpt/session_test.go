package ckpt

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pipemem/internal/core"
	"pipemem/internal/fault"
	"pipemem/internal/obs"
	"pipemem/internal/traffic"
)

func coreConfig() core.Config {
	return core.Config{Ports: 4, WordBits: 16, Cells: 32, CutThrough: true}
}

// faultSpec is a plan of memory upsets against an ECC-protected switch:
// SEC-DED corrects each flip, so delivery stays clean while the engine's
// RNG, cursor and tallies all advance. (Input-register faults corrupt
// delivered cells and link events need the CRC harness; both stay outside
// the equivalence matrix.)
const faultSpec = "@40 mem stage=any addr=any\n" +
	"@90 mem stage=any addr=any\n" +
	"@130 mem stage=any addr=any\n" +
	"@210 mem stage=3 addr=any\n" +
	"@300 mem stage=any addr=any\n" +
	"@420 mem stage=0 addr=any\n"

// specFor builds the test spec for one (policy, fault) combination.
func specFor(t *testing.T, policy string, withFaults bool) Spec {
	t.Helper()
	spec := Spec{
		Switch:  coreConfig(),
		Traffic: traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.85, Seed: 19},
		Cycles:  700,
		Policy:  policy,
	}
	if withFaults {
		// ECC so injected flips are survivable; no cut-through (the ECC
		// pipeline forbids it).
		spec.Switch = core.Config{Ports: 4, WordBits: 16, Cells: 32, ECC: true}
		plan, err := fault.Parse(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Plan = plan
		spec.FaultSeed = 5
	}
	return spec
}

// runFull drives a fresh session to completion.
func runFull(t *testing.T, spec Spec) core.RunResult {
	t.Helper()
	s, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReplayEquivalenceMatrix is the restore-equivalence golden: for every
// buffer-management policy, with and without an active fault plan, a run
// checkpointed mid-flight (through the full file round trip) and resumed
// must finish with a bit-identical RunResult — and, for fault runs,
// identical engine tallies.
func TestReplayEquivalenceMatrix(t *testing.T) {
	policies := []string{"", "share", "static:quota=8", "dt:alpha=2", "dd:target=8", "pushout"}
	for _, pol := range policies {
		for _, withFaults := range []bool{false, true} {
			name := pol
			if name == "" {
				name = "unmanaged"
			}
			if withFaults {
				name += "+faults"
			}
			t.Run(name, func(t *testing.T) {
				spec := specFor(t, pol, withFaults)
				want := runFull(t, spec)

				s, err := New(spec, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 333; i++ {
					if ok, err := s.Step(); err != nil || !ok {
						t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
					}
				}
				path := filepath.Join(t.TempDir(), "mid.ckpt")
				if err := s.CheckpointTo(path); err != nil {
					t.Fatal(err)
				}
				var wantFaults map[string]int64
				if withFaults {
					// Finish the interrupted run too, so its engine tallies are
					// the complete-run reference.
					if _, err := s.Run(); err != nil {
						t.Fatal(err)
					}
					wantFaults = s.Engine().Counters().Snapshot()
				}

				r, err := Resume(path, Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("restored run diverged:\n got  %+v\n want %+v", got, want)
				}
				if withFaults {
					if gotFaults := r.Engine().Counters().Snapshot(); !reflect.DeepEqual(gotFaults, wantFaults) {
						t.Fatalf("fault tallies diverged:\n got  %v\n want %v", gotFaults, wantFaults)
					}
				}
			})
		}
	}
}

// TestAutoCheckpointResume runs with a periodic checkpoint cadence, then
// resumes from whatever file the cadence last wrote and expects the same
// final result.
func TestAutoCheckpointResume(t *testing.T) {
	spec := specFor(t, "pushout", false)
	want := runFull(t, spec)

	path := filepath.Join(t.TempDir(), "auto.ckpt")
	s, err := New(spec, Options{Path: path, Every: 250})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume from auto-checkpoint diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestTraceEquivalenceAfterRestore checks the stronger replay claim: the
// trace events emitted after the restore point are identical to the
// uninterrupted run's events over the same cycles.
func TestTraceEquivalenceAfterRestore(t *testing.T) {
	spec := specFor(t, "dt:alpha=2", false)
	const cut = 400

	observed := func(s *Session, skipTo int64) []obs.Event {
		t.Helper()
		sink := &obs.MemSink{}
		tr := obs.NewTracer(sink, 1<<16, 1)
		s.opts.Observer.Tracer = tr
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var out []obs.Event
		for _, e := range sink.Events {
			if e.Cycle > skipTo {
				out = append(out, e)
			}
		}
		return out
	}

	newObserved := func() *Session {
		s, err := New(spec, Options{Observer: core.NewObserver(obs.NewRegistry(), 4)})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	ref := newObserved()
	want := observed(ref, cut)

	s := newObserved()
	for s.Switch().Cycle() < cut {
		if ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	}
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := ResumeFrom(ck, Options{Observer: core.NewObserver(obs.NewRegistry(), 4)})
	if err != nil {
		t.Fatal(err)
	}
	got := observed(r, cut)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restore trace diverged: %d events vs %d", len(got), len(want))
	}
}

// TestWatchdogTripsOnStall wedges every output shut and expects the
// watchdog to abort the drain with ErrStalled, a partial result, an
// EvWatchdog trace event, and a diagnostic checkpoint that itself loads.
func TestWatchdogTripsOnStall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	sink := &obs.MemSink{}
	observer := core.NewObserver(obs.NewRegistry(), 4)
	observer.Tracer = obs.NewTracer(sink, 0, 1)

	s, err := New(Spec{
		Switch:  coreConfig(),
		Traffic: traffic.Config{Kind: traffic.Bernoulli, N: 4, Load: 0.5, Seed: 3},
		Cycles:  60,
	}, Options{Path: path, WatchdogWindow: 64, Observer: observer})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing may ever depart: once the driven window ends, the drain makes
	// no progress while cells stay resident.
	s.Switch().SetOutputGate(func(out int) bool { return false })

	res, err := s.Run()
	if err == nil {
		t.Fatal("stalled run finished without error")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	if res.Offered == 0 || res.Delivered != 0 {
		t.Fatalf("partial result implausible for a wedged switch: %+v", res)
	}
	if n := sink.Count(obs.EvWatchdog); n != 1 {
		t.Fatalf("want 1 watchdog event, got %d", n)
	}
	if s.Switch().Resident() == 0 {
		t.Fatal("scenario must leave resident cells")
	}
	// The diagnostic checkpoint is a loadable snapshot of the stuck state.
	ck, err := Load(path + ".stuck")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ResumeFrom(ck, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Switch().Resident(); got != s.Switch().Resident() {
		t.Fatalf("diagnostic checkpoint resident=%d, live switch=%d", got, s.Switch().Resident())
	}
}

// TestWatchdogQuietOnHealthyRun arms a tight watchdog over a healthy run
// and expects no trip.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	spec := specFor(t, "", false)
	s, err := New(spec, Options{WatchdogWindow: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := runFull(t, spec)
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("watchdog perturbed the run:\n got  %+v\n want %+v", got, want)
	}
}

// TestAuditCadenceCatchesCorruption resumes from a checkpoint whose
// occupancy bookkeeping was tampered with and expects the session's audit
// cadence to abort the run with a diagnostic error — the defense layer for
// corrupted (but CRC-valid) state.
func TestAuditCadenceCatchesCorruption(t *testing.T) {
	s := sessionAt(t, 200)
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ck.Switch.OutOcc[0]++
	r, err := ResumeFrom(ck, Options{AuditEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run()
	if err == nil {
		t.Fatal("corruption not caught by the audit cadence")
	}
	if errors.Is(err, ErrStalled) {
		t.Fatalf("want audit error, got watchdog: %v", err)
	}
	if !strings.Contains(err.Error(), "audit") {
		t.Fatalf("error does not identify the audit: %v", err)
	}
}

// TestResumeRejectsBadCheckpoints exercises ResumeFrom's validation.
func TestResumeRejectsBadCheckpoints(t *testing.T) {
	s := sessionAt(t, 50)
	good, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	ck := *good
	ck.Switch = nil
	if _, err := ResumeFrom(&ck, Options{}); err == nil {
		t.Fatal("nil switch state accepted")
	}

	ck = *good
	ck.Policy = "no-such-policy"
	if _, err := ResumeFrom(&ck, Options{}); err == nil {
		t.Fatal("unknown policy spec accepted")
	}

	ck = *good
	ck.Plan = "@5 mem stage=any addr=any\n"
	if _, err := ResumeFrom(&ck, Options{}); err == nil {
		t.Fatal("fault plan without engine state accepted")
	}

	ck = *good
	ck.Runner.Cycles = 12345
	if _, err := ResumeFrom(&ck, Options{}); err == nil {
		t.Fatal("runner/checkpoint cycle mismatch accepted")
	}
}
