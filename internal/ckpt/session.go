package ckpt

import (
	"errors"
	"fmt"

	"pipemem/internal/bufmgr"
	"pipemem/internal/core"
	"pipemem/internal/fault"
	"pipemem/internal/obs"
	"pipemem/internal/traffic"
)

// Checkpoint is the complete serialized state of a simulation session,
// captured at a cycle boundary between run-driver steps. Together the
// fields resume the run bit for bit: the switch snapshot, the run driver's
// loop-carried tallies, the traffic stream (including its RNG), and — for
// fault runs — the plan text plus the engine's cursor and RNG.
type Checkpoint struct {
	// Format echoes the file-format version inside the body as a
	// cross-check against the header.
	Format int
	// Cycles is the driven-window target of the run being checkpointed.
	Cycles int64
	// CellLen is the per-cell word count the traffic stream was built for
	// (the switch's stage count).
	CellLen int
	// Policy is the bufmgr policy spec string ("" = unmanaged); the policy
	// object itself is rebuilt from it on restore.
	Policy string `json:",omitempty"`
	// Plan is the fault plan text ("" = no fault engine).
	Plan string `json:",omitempty"`

	Switch  *core.SwitchState
	Runner  core.RunnerState
	Traffic traffic.Config
	Stream  *traffic.StreamState
	Fault   *fault.EngineState `json:",omitempty"`
}

// Spec describes a simulation to run from cycle zero.
type Spec struct {
	// Switch configures the cycle-accurate switch; Traffic the arrival
	// process (Traffic.N must equal Switch.Ports).
	Switch  core.Config
	Traffic traffic.Config
	// Cycles is the driven window; the drain tail follows automatically.
	Cycles int64
	// Policy optionally installs a shared-buffer admission policy by its
	// bufmgr spec string (e.g. "dt:alpha=2").
	Policy string
	// Plan optionally schedules fault injection (buffer/register/control
	// faults; link-layer events need the CRC link harness and are not
	// routed through a Session). FaultSeed resolves the plan's "any"
	// targets.
	Plan      *fault.Plan
	FaultSeed uint64
}

// Options configures a Session's robustness machinery. The zero value
// disables all of it (plain run).
type Options struct {
	// Path is where auto-checkpoints and the watchdog's diagnostic
	// checkpoint are written ("" disables both).
	Path string
	// Every writes a checkpoint to Path every Every cycles (0 = never).
	Every int64
	// AuditEvery runs the online invariant auditor every AuditEvery cycles
	// (0 = never); a violation aborts the run with a diagnostic error.
	AuditEvery int64
	// WatchdogWindow arms the no-progress watchdog: if no cell is offered,
	// delivered or dropped across a full window while cells are resident,
	// the run aborts with ErrStalled, a partial result, an obs.EvWatchdog
	// trace event and a diagnostic checkpoint at Path+".stuck". Choose a
	// window of at least several cell times (the switch delivers at most
	// one cell per output per k cycles). 0 = disarmed.
	WatchdogWindow int64
	// Observer, when set, is installed on the switch; the watchdog and
	// checkpoint writer also emit trace events through it.
	Observer *core.Observer
}

// ErrStalled marks a run aborted by the no-progress watchdog. The returned
// result is the partial tally up to the stall; errors.Is(err, ErrStalled)
// distinguishes it from invariant or I/O failures.
var ErrStalled = errors.New("no-progress watchdog tripped")

// Session owns one run of the simulation: switch, traffic stream, optional
// fault engine, and the step-wise run driver, plus the checkpoint cadence,
// audit cadence and watchdog configured in Options.
type Session struct {
	spec   Spec
	opts   Options
	sw     *core.Switch
	cs     *traffic.CellStream
	runner *core.Runner
	engine *fault.Engine

	lastProgress int64
	lastCheck    int64 // cycle of the last watchdog evaluation
}

// New builds a session from scratch.
func New(spec Spec, opts Options) (*Session, error) {
	sw, err := core.New(spec.Switch)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if spec.Policy != "" {
		p, err := bufmgr.Parse(spec.Policy)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		sw.SetBufferPolicy(p)
	}
	cs, err := traffic.NewCellStream(spec.Traffic, sw.Config().Stages)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s := &Session{spec: spec, opts: opts, sw: sw, cs: cs}
	if spec.Plan != nil {
		s.engine = fault.NewEngine(spec.Plan, spec.FaultSeed)
	}
	s.install()
	return s, nil
}

// Resume loads the checkpoint at path and rebuilds the session it
// captured. Options are the resuming caller's — cadences and observer are
// not part of the checkpoint.
func Resume(path string, opts Options) (*Session, error) {
	ck, err := Load(path)
	if err != nil {
		return nil, err
	}
	return ResumeFrom(ck, opts)
}

// ResumeFrom rebuilds a session from an in-memory checkpoint.
func ResumeFrom(ck *Checkpoint, opts Options) (*Session, error) {
	if ck.Switch == nil || ck.Stream == nil {
		return nil, errors.New("ckpt: checkpoint is missing switch or stream state")
	}
	sw, err := core.NewFromSnapshot(ck.Switch)
	if err != nil {
		return nil, fmt.Errorf("ckpt: restore switch: %w", err)
	}
	if ck.Policy != "" {
		p, err := bufmgr.Parse(ck.Policy)
		if err != nil {
			return nil, fmt.Errorf("ckpt: restore policy: %w", err)
		}
		sw.SetBufferPolicy(p)
	}
	cs, err := traffic.RestoreCellStream(ck.Traffic, ck.CellLen, ck.Stream)
	if err != nil {
		return nil, fmt.Errorf("ckpt: restore traffic: %w", err)
	}
	s := &Session{
		spec: Spec{Switch: ck.Switch.Config, Traffic: ck.Traffic, Cycles: ck.Cycles, Policy: ck.Policy},
		opts: opts, sw: sw, cs: cs,
	}
	if ck.Plan != "" {
		plan, err := fault.Parse(ck.Plan)
		if err != nil {
			return nil, fmt.Errorf("ckpt: restore fault plan: %w", err)
		}
		if ck.Fault == nil {
			return nil, errors.New("ckpt: checkpoint has a fault plan but no engine state")
		}
		s.spec.Plan = plan
		if s.engine, err = fault.RestoreEngine(plan, ck.Fault); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
	}
	s.install()
	if err := s.runner.RestoreState(ck.Runner); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	// The watchdog baseline starts at the restore point, not at zero.
	s.lastProgress = s.runner.Progress()
	s.lastCheck = sw.Cycle()
	return s, nil
}

// install wires observer, runner and fault engine together. Shared tail of
// New and ResumeFrom.
func (s *Session) install() {
	if s.opts.Observer != nil {
		s.sw.SetObserver(s.opts.Observer)
	}
	s.runner = core.NewRunner(s.sw, s.cs, s.spec.Cycles)
	if s.engine != nil {
		eng, sw := s.engine, s.sw
		s.runner.PreTick = func(cycle int64) {
			eng.Step(fault.Target{Switch: sw}, cycle)
		}
	}
}

// Switch exposes the switch under simulation (tests and tooling).
func (s *Session) Switch() *core.Switch { return s.sw }

// Spec returns the spec the session runs (a restored session reports the
// spec rebuilt from its checkpoint). The session server uses it to fork
// what-if copies and to report session configuration.
func (s *Session) Spec() Spec { return s.spec }

// Done reports whether the run has completed (driven window plus drain).
func (s *Session) Done() bool { return s.runner.Done() }

// StepN advances the run by up to n cycles through Step — so the audit,
// watchdog and auto-checkpoint cadences all apply — stopping early when
// the run completes or aborts. It returns the number of cycles actually
// advanced and whether the run is over (completed or aborted); after
// done with a nil error, Finish returns the outcome. This is the serving
// layer's batch-advance primitive: a session stepped in any mix of batch
// sizes is bit-identical to the same spec run in one piece.
func (s *Session) StepN(n int64) (advanced int64, done bool, err error) {
	for advanced < n {
		ok, err := s.Step()
		if err != nil {
			return advanced, true, err
		}
		if !ok {
			return advanced, true, nil
		}
		advanced++
	}
	return advanced, s.runner.Done(), nil
}

// Finish completes the run (driving any remaining cycles) and returns the
// final RunResult with the usual conservation and integrity checks. Call
// it once, after StepN reports done or instead of further stepping.
func (s *Session) Finish() (core.RunResult, error) { return s.runner.Result() }

// Partial returns the tallies accumulated so far without completing the
// run — the live readout surface for a session still in flight, and the
// degraded result after an abort.
func (s *Session) Partial() core.RunResult { return s.runner.Partial() }

// ExtendSchedule streams externally injected cells into a Trace-traffic
// session: each row is one appended cell time (row[i] the destination
// arriving at input i, or traffic.NoArrival). The spec's schedule is kept
// in sync so a checkpoint taken after an extension restores the extended
// stream bit for bit. Non-trace sessions refuse.
func (s *Session) ExtendSchedule(rows [][]int) error {
	if err := s.cs.Extend(rows); err != nil {
		return err
	}
	s.spec.Traffic.Schedule = s.cs.Schedule()
	return nil
}

// Runner exposes the step-wise run driver.
func (s *Session) Runner() *core.Runner { return s.runner }

// Engine exposes the fault engine (nil when the spec had no plan).
func (s *Session) Engine() *fault.Engine { return s.engine }

// Checkpoint captures the session's complete state. Valid between runner
// Steps (Run only checkpoints there; external callers must not call it
// mid-Tick, which cannot happen from the public API).
func (s *Session) Checkpoint() (*Checkpoint, error) {
	swState, err := s.sw.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	stState, err := s.cs.State()
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	ck := &Checkpoint{
		Format:  FormatVersion,
		Cycles:  s.spec.Cycles,
		CellLen: s.sw.Config().Stages,
		Policy:  s.spec.Policy,
		Switch:  swState,
		Runner:  s.runner.State(),
		Traffic: s.spec.Traffic,
		Stream:  stState,
	}
	if s.engine != nil {
		ck.Plan = s.spec.Plan.String()
		if ck.Fault, err = s.engine.State(); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
	}
	return ck, nil
}

// CheckpointTo captures the session's state and writes it to path.
func (s *Session) CheckpointTo(path string) error {
	return s.writeCheckpoint(path, 1)
}

func (s *Session) writeCheckpoint(path string, kind int64) error {
	ck, err := s.Checkpoint()
	if err != nil {
		return err
	}
	if err := Save(path, ck); err != nil {
		return err
	}
	if s.opts.Observer != nil {
		s.opts.Observer.Tracer.Emit(obs.Event{
			Kind: obs.EvCheckpoint, Cycle: s.sw.Cycle(), In: -1, Out: -1, Addr: -1, V: kind,
		})
	}
	return nil
}

// Step advances the run one cycle and applies the between-step machinery:
// invariant audit, watchdog, auto-checkpoint. It reports false when the
// run is complete or aborted; after false, Finish returns the outcome.
func (s *Session) Step() (bool, error) {
	if !s.runner.Step() {
		return false, nil
	}
	c := s.sw.Cycle()
	if n := s.opts.AuditEvery; n > 0 && c%n == 0 {
		if err := s.sw.AuditInvariants(); err != nil {
			return false, fmt.Errorf("ckpt: invariant audit failed at cycle %d: %w", c, err)
		}
	}
	if w := s.opts.WatchdogWindow; w > 0 && c-s.lastCheck >= w {
		p := s.runner.Progress()
		if p == s.lastProgress && s.sw.Resident() > 0 {
			return false, s.stall(c)
		}
		s.lastProgress, s.lastCheck = p, c
	}
	if n := s.opts.Every; n > 0 && s.opts.Path != "" && c%n == 0 {
		if err := s.writeCheckpoint(s.opts.Path, 1); err != nil {
			return false, err
		}
	}
	return true, nil
}

// stall handles a tripped watchdog: emit the trace event, write the
// diagnostic checkpoint (best effort), and build the ErrStalled error.
func (s *Session) stall(cycle int64) error {
	resident := s.sw.Resident()
	if s.opts.Observer != nil {
		s.opts.Observer.Tracer.Emit(obs.Event{
			Kind: obs.EvWatchdog, Cycle: cycle, In: -1, Out: -1, Addr: -1, V: int64(resident),
		})
	}
	err := fmt.Errorf("ckpt: %w: no progress over %d cycles (at cycle %d, %d cells resident)",
		ErrStalled, s.opts.WatchdogWindow, cycle, resident)
	if s.opts.Path != "" {
		diag := s.opts.Path + ".stuck"
		if werr := s.writeCheckpoint(diag, 2); werr != nil {
			err = fmt.Errorf("%w; diagnostic checkpoint failed: %v", err, werr)
		} else {
			err = fmt.Errorf("%w; diagnostic checkpoint: %s", err, diag)
		}
	}
	return err
}

// Run drives the session to completion and returns the final result. On a
// watchdog stall or audit failure it degrades gracefully: the partial
// result accumulated so far is returned alongside the error instead of
// hanging or discarding the run.
func (s *Session) Run() (core.RunResult, error) {
	for {
		ok, err := s.Step()
		if err != nil {
			return s.runner.Partial(), err
		}
		if !ok {
			return s.runner.Result()
		}
	}
}
