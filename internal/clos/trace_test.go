package clos

import (
	"bytes"
	"math"
	"testing"

	"pipemem/internal/obs"
	"pipemem/internal/trace"
	"pipemem/internal/traffic"
)

// TestClosFlightTraceReconciles is the Clos arm of the hop/e2e identity:
// at sampling 1 every delivered cell must appear as a completed
// three-hop flight whose hop latencies sum (plus the two wire cycles)
// to the EvEject latency, with the traced mean equal to
// Result.MeanLatency. The middle-stage round-robin makes the Clos path
// spread, so this also exercises hop records across all populated
// middles.
func TestClosFlightTraceReconciles(t *testing.T) {
	f, err := New(Config{
		Radix: 6, Middles: 4, WordBits: 16, SwitchCells: 16,
		Credits: 4, CutThrough: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf bytes.Buffer
	tr := obs.NewTracer(obs.NewJSONLSink(&buf), 0, 1)
	if err := f.SetFlightTrace(tr, 1); err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.6, Seed: 41}, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	set, err := trace.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if set.Stages != 3 {
		t.Fatalf("trace shows %d stages, want 3", set.Stages)
	}
	rep := trace.Analyze(set, 0)
	if len(rep.Mismatches) > 0 {
		m := rep.Mismatches[0]
		t.Fatalf("%d flights fail e2e = Σhops + 2; first: seq=%d hopsum=%d e2e=%d",
			len(rep.Mismatches), m.Seq, m.HopSum, m.E2E)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("%d ejected flights missing hop records", rep.Incomplete)
	}
	if rep.E2E.Count != res.Delivered {
		t.Fatalf("completed flights %d != delivered %d", rep.E2E.Count, res.Delivered)
	}
	if math.Abs(rep.E2E.Mean-res.MeanLatency) > 1e-9 {
		t.Fatalf("trace mean %.9f != clos mean %.9f", rep.E2E.Mean, res.MeanLatency)
	}
	// Traced middle-stage hops must land on every populated middle —
	// the round-robin freedom is visible in the span stream.
	seen := map[int]bool{}
	for _, fl := range set.Flights {
		for _, h := range fl.Hops {
			if h.Stage == 1 {
				seen[h.Node] = true
			}
		}
	}
	if len(seen) != f.m {
		t.Fatalf("middle hops landed on %d of %d middles", len(seen), f.m)
	}
}
