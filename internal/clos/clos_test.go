package clos

import (
	"testing"

	"pipemem/internal/traffic"
)

func mustNet(t *testing.T, cfg Config) *Net {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidate(t *testing.T) {
	good := Config{Radix: 4, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, c := range []Config{
		{Radix: 1, SwitchCells: 8},
		{Radix: 4, Middles: 5, SwitchCells: 8},
		{Radix: 4, SwitchCells: 0},
		{Radix: 4, SwitchCells: 8, Credits: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestAllPairsDelivery: every terminal reaches every terminal through the
// three stages (Step errors on any misrouting or corruption).
func TestAllPairsDelivery(t *testing.T) {
	f := mustNet(t, Config{Radix: 4, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true})
	n := f.Terminals() // 16
	var seq uint64
	for dst := 0; dst < n; dst++ {
		for term := 0; term < n; term++ {
			seq++
			f.Inject(term, dst, seq)
			for i := 0; i < 4*f.CellWords(); i++ {
				if err := f.Step(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 300; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Delivered() != int64(n*n) {
		t.Fatalf("delivered %d of %d", f.Delivered(), n*n)
	}
	if f.Corrupt() != 0 || f.Drops() != 0 {
		t.Fatalf("corrupt=%d drops=%d", f.Corrupt(), f.Drops())
	}
}

// TestMiddleLoadBalance: round-robin middle selection spreads uniform
// traffic evenly across the populated middles.
func TestMiddleLoadBalance(t *testing.T) {
	f := mustNet(t, Config{Radix: 4, WordBits: 16, SwitchCells: 32, Credits: 4, CutThrough: true})
	res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.5, Seed: 3}, 2_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 0 {
		t.Fatalf("corrupt=%d", res.Corrupt)
	}
	loads := f.MiddleLoad()
	var minL, maxL int64 = 1 << 62, 0
	for _, l := range loads {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if minL == 0 {
		t.Fatalf("a middle switch carried nothing: %v", loads)
	}
	if float64(maxL-minL)/float64(maxL) > 0.05 {
		t.Fatalf("middle load imbalance: %v", loads)
	}
}

// TestThroughputGrowsWithMiddles is the classic Clos sizing curve: with
// only 1 of 4 middles populated the fabric bottlenecks at ~1/4 capacity;
// each added middle buys a proportional slice back.
func TestThroughputGrowsWithMiddles(t *testing.T) {
	var prev float64
	for _, m := range []int{1, 2, 4} {
		f := mustNet(t, Config{Radix: 4, Middles: m, WordBits: 16, SwitchCells: 32, Credits: 4, CutThrough: true})
		res, err := Run(f, traffic.Config{Kind: traffic.Saturation, Seed: 7}, 5_000, 40_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.InteriorDrops != 0 || res.Corrupt != 0 {
			t.Fatalf("m=%d: interior drops %d, corrupt %d", m, res.InteriorDrops, res.Corrupt)
		}
		if m == 1 && res.Throughput > 0.35 {
			t.Fatalf("1 middle: throughput %.3f, should bottleneck near 1/4", res.Throughput)
		}
		if res.Throughput <= prev {
			t.Fatalf("m=%d: throughput %.3f not above m=%d's %.3f", m, res.Throughput, m/2, prev)
		}
		prev = res.Throughput
	}
	if prev < 0.5 {
		t.Fatalf("full middle stage saturates at %.3f, implausibly low", prev)
	}
}

// TestChainedCutThroughAcrossThreeStages: light load, head latency ≈
// 3 hops × ~3 cycles.
func TestChainedCutThroughAcrossThreeStages(t *testing.T) {
	f := mustNet(t, Config{Radix: 4, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true})
	f.Inject(1, 14, 1)
	for i := 0; i < 300; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Delivered() != 1 {
		t.Fatalf("delivered %d", f.Delivered())
	}
	lat := f.Latency().Mean()
	sf := float64(3 * (f.CellWords() + 2))
	if lat >= sf/2 {
		t.Fatalf("head latency %.1f: not chained cut-through (SF ≈ %.0f)", lat, sf)
	}
}

// TestLosslessUnderLoadWithCredits.
func TestLosslessUnderLoadWithCredits(t *testing.T) {
	f := mustNet(t, Config{Radix: 4, WordBits: 16, SwitchCells: 32, Credits: 4, CutThrough: true})
	res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.6, Seed: 11}, 2_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 || res.Corrupt != 0 {
		t.Fatalf("drops=%d corrupt=%d", res.Drops, res.Corrupt)
	}
	if res.Throughput < 0.55 {
		t.Fatalf("throughput %.3f at offered 0.6", res.Throughput)
	}
}

// TestDeterminism.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		f := mustNet(t, Config{Radix: 4, WordBits: 16, SwitchCells: 16, Credits: 2, CutThrough: true})
		res, err := Run(f, traffic.Config{Kind: traffic.Bernoulli, Load: 0.4, Seed: 13}, 1_000, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
