// Package clos composes pipelined-memory switches into a three-stage
// Clos network — alongside internal/fabric's butterfly, the other classic
// way §2's "building blocks for larger, multi-stage switches" are
// assembled.
//
// The symmetric C(n, n, n) instance is built here: n² terminals, n
// ingress switches (n×n), up to n middle switches (n×n), n egress
// switches (n×n). The ingress stage's choice of middle switch is the
// Clos routing freedom; Config.Middles restricts how many middles are
// populated, exposing the classic sizing trade — the network is
// rearrangeably non-blocking with all n middles and degrades gracefully
// below that.
//
// As in internal/fabric, each node is a full cycle-accurate core.Switch,
// cut-through chains across stages via the transmit hook, and inter-stage
// links run credit-based flow control. The cycle loop is the shared
// sharded engine (internal/fabric/engine); this package contributes the
// Clos wiring and the round-robin middle selection.
package clos

import (
	"fmt"

	"pipemem/internal/bufmgr"
	"pipemem/internal/core"
	"pipemem/internal/fabric/engine"
	"pipemem/internal/obs"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// Config parameterizes the Clos network.
type Config struct {
	// Radix is n: switch port count, ingress/egress switch count, and
	// the maximum middle count. Terminals = n².
	Radix int
	// Middles is m ≤ n, the populated middle switches (0 means n).
	Middles int
	// WordBits is the link width.
	WordBits int
	// SwitchCells is each node's buffer capacity in cells.
	SwitchCells int
	// Credits is the per-inter-stage-link credit allowance (0 disables).
	Credits int
	// CutThrough enables automatic cut-through in every node.
	CutThrough bool
	// Policy optionally names a bufmgr admission policy spec
	// (name:key=val) installed on every node. Malformed specs fail
	// Validate with an error wrapping bufmgr.ErrBadConfig.
	Policy string
	// Workers is the engine shard count (0 = GOMAXPROCS, 1 = sequential
	// reference). Results are bit-identical across worker counts.
	Workers int
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.Radix < 2 {
		return fmt.Errorf("clos: radix %d", c.Radix)
	}
	if c.Middles < 0 || c.Middles > c.Radix {
		return fmt.Errorf("clos: %d middles for radix %d", c.Middles, c.Radix)
	}
	if c.SwitchCells < 1 {
		return fmt.Errorf("clos: %d cells per switch", c.SwitchCells)
	}
	if c.Credits < 0 {
		return fmt.Errorf("clos: negative credits")
	}
	if c.Workers < 0 {
		return fmt.Errorf("clos: negative workers")
	}
	if c.Policy != "" {
		if _, err := bufmgr.Parse(c.Policy); err != nil {
			return fmt.Errorf("clos: %w", err)
		}
	}
	return nil
}

// topology is the C(n, n, n) wiring in the engine's vocabulary: stage 0
// output j uplinks to middle j's port i (the ingress index); middle j's
// output e goes to egress e's port j; outputs into unpopulated middles
// (j ≥ m) are unroutable and gated off by the engine.
type topology struct {
	n, m int
}

func (t topology) Stages() int    { return 3 }
func (t topology) Radix() int     { return t.n }
func (t topology) Terminals() int { return t.n * t.n }

func (t topology) NodesAt(stage int) int {
	if stage == 1 {
		return t.m
	}
	return t.n
}

func (t topology) Downstream(stage, sw, out int) (int, int) {
	if stage == 0 && out >= t.m {
		return -1, -1
	}
	return out, sw
}

// RouteDst: the middle routes on the egress-switch digit, the egress on
// the terminal's port digit. (Stage 0's output — the middle choice — is
// the injector's routing freedom, not a function of dst.)
func (t topology) RouteDst(stage, dst int) int {
	if stage == 1 {
		return dst / t.n
	}
	return dst % t.n
}

func (t topology) InjectPoint(term int) (int, int) { return term / t.n, term % t.n }

func (t topology) EjectTerminal(esw, out int) int { return esw*t.n + out }

// Net is the three-stage Clos network.
type Net struct {
	cfg   Config
	n     int // radix
	m     int // populated middles
	terms int
	cellK int

	// midRR per ingress switch: round-robin middle selection pointer.
	midRR []int

	eng *engine.Engine
	// sw[0][i]: ingress i; sw[1][j]: middle j; sw[2][e]: egress e —
	// views into the engine's nodes.
	sw [3][]*core.Switch
}

// New builds the network. A Net with Workers > 1 owns goroutines; Close
// it when done.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Radix
	m := cfg.Middles
	if m == 0 {
		m = n
	}
	f := &Net{
		cfg: cfg, n: n, m: m, terms: n * n, cellK: 2 * n,
		midRR: make([]int, n),
	}
	eng, err := engine.New(engine.Config{
		Topo: topology{n: n, m: m}, WordBits: cfg.WordBits,
		SwitchCells: cfg.SwitchCells, Credits: cfg.Credits,
		CutThrough: cfg.CutThrough, Policy: cfg.Policy, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	f.eng = eng
	for st := 0; st < 3; st++ {
		count := n
		if st == 1 {
			count = m
		}
		f.sw[st] = make([]*core.Switch, count)
		for i := range f.sw[st] {
			f.sw[st][i] = eng.NodeAt(st, i)
		}
	}
	return f, nil
}

// Inject offers a cell at terminal term (= ingressSwitch·n + port) for
// terminal dst in the current cycle. Middle selection is round-robin per
// ingress switch — the Clos routing freedom, exercised fairly.
func (f *Net) Inject(term, dst int, seq uint64) {
	isw := term / f.n
	mid := f.midRR[isw] % f.m
	f.midRR[isw]++
	f.eng.Inject(term, dst, seq, mid)
}

// Step advances the whole network one clock cycle.
func (f *Net) Step() error { return f.eng.Step() }

// Close stops the engine's worker pool (no-op for Workers ≤ 1).
func (f *Net) Close() { f.eng.Close() }

// Terminals returns n².
func (f *Net) Terminals() int { return f.terms }

// CellWords returns the cell size (2n).
func (f *Net) CellWords() int { return f.cellK }

// Delivered returns end-to-end delivered cells.
func (f *Net) Delivered() int64 { return f.eng.Delivered() }

// Injected returns cells offered at the terminals.
func (f *Net) Injected() int64 { return f.eng.Injected() }

// Latency returns the inject→head-ejection histogram.
func (f *Net) Latency() *stats.Hist { return f.eng.Latency() }

// LatencyOverflow returns latency samples beyond the histogram range
// (counted but not binned — nonzero means the tail is understated; Audit
// fails on it).
func (f *Net) LatencyOverflow() int64 { return f.eng.LatencyOverflow() }

// MiddleLoad returns cells routed through each populated middle switch
// (head arrivals observed at the middle stage).
func (f *Net) MiddleLoad() []int64 { return f.eng.ArrivalsAt(1) }

// Engine exposes the underlying fabric engine.
func (f *Net) Engine() *engine.Engine { return f.eng }

// RegisterMetrics pre-registers network metrics on reg under prefix.
func (f *Net) RegisterMetrics(reg *obs.Registry, prefix string) {
	f.eng.RegisterMetrics(reg, prefix)
}

// SetFlightTrace enables deterministic per-flight span tracing (see
// engine.SetFlightTrace). Call before the first Step.
func (f *Net) SetFlightTrace(tr *obs.Tracer, sample int) error {
	return f.eng.SetFlightTrace(tr, sample)
}

// RegisterHopHists pre-registers per-stage hop-latency histograms on reg
// and starts feeding them for every cell.
func (f *Net) RegisterHopHists(reg *obs.Registry, prefix string) {
	f.eng.RegisterHopHists(reg, prefix)
}

// EnableTelemetry attaches a fixed-cadence time-series ring (per-stage
// occupancy, deepest queue, credit levels) sampled every `every` cycles.
func (f *Net) EnableTelemetry(ringCap int, every int64) *obs.TimeSeries {
	return f.eng.EnableTelemetry(ringCap, every)
}

// SyncMetrics publishes current network state into registered metrics.
func (f *Net) SyncMetrics() { f.eng.SyncMetrics() }

// Audit runs the network's conservation-style checks (per-node switch
// invariants, credit bounds, ejection integrity, latency-histogram
// overflow).
func (f *Net) Audit() error { return f.eng.Audit() }

// Drops sums overrun drops across all nodes.
func (f *Net) Drops() int64 {
	var d int64
	for st := range f.sw {
		for _, s := range f.sw[st] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// InteriorDrops sums drops at credit-protected stages (middle, egress).
func (f *Net) InteriorDrops() int64 {
	var d int64
	for st := 1; st < 3; st++ {
		for _, s := range f.sw[st] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// Corrupt sums integrity violations.
func (f *Net) Corrupt() int64 {
	var c int64
	for st := range f.sw {
		for _, s := range f.sw[st] {
			c += s.Counters().Get("corrupt")
		}
	}
	return c + f.eng.BadEjects()
}

// Result summarizes a run.
type Result struct {
	Cycles        int64
	Injected      int64
	Delivered     int64
	Drops         int64
	InteriorDrops int64
	Corrupt       int64
	// LatencyOverflow counts latency samples that exceeded the histogram
	// range: nonzero means MeanLatency understates the tail.
	LatencyOverflow int64
	Throughput      float64 // delivered cell-words per cycle per terminal
	MeanLatency     float64
	MinLatency      int64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	s := fmt.Sprintf("cycles=%d injected=%d delivered=%d drops=%d thru=%.4f lat=%.2f minlat=%d",
		r.Cycles, r.Injected, r.Delivered, r.Drops, r.Throughput, r.MeanLatency, r.MinLatency)
	if r.InteriorDrops > 0 {
		s += fmt.Sprintf(" interior-drops=%d", r.InteriorDrops)
	}
	if r.Corrupt > 0 {
		s += fmt.Sprintf(" corrupt=%d", r.Corrupt)
	}
	if r.LatencyOverflow > 0 {
		s += fmt.Sprintf(" latency-overflow=%d", r.LatencyOverflow)
	}
	return s
}

// Run drives the network with terminal traffic for warmup+measure cycles.
func Run(f *Net, tcfg traffic.Config, warmup, measure int64) (Result, error) {
	tcfg.N = f.terms
	cs, err := traffic.NewCellStream(tcfg, f.cellK)
	if err != nil {
		return Result{}, err
	}
	heads := make([]int, f.terms)
	var seq uint64
	drive := func(cycles int64) (int64, error) {
		start := f.Delivered()
		for i := int64(0); i < cycles; i++ {
			cs.Heads(heads)
			for term, dst := range heads {
				if dst != traffic.NoArrival {
					seq++
					f.Inject(term, dst, seq)
				}
			}
			if err := f.Step(); err != nil {
				return 0, err
			}
		}
		return f.Delivered() - start, nil
	}
	if _, err := drive(warmup); err != nil {
		return Result{}, err
	}
	delivered, err := drive(measure)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:          measure,
		Injected:        f.Injected(),
		Delivered:       f.Delivered(),
		Drops:           f.Drops(),
		InteriorDrops:   f.InteriorDrops(),
		Corrupt:         f.Corrupt(),
		LatencyOverflow: f.LatencyOverflow(),
		Throughput:      float64(delivered*int64(f.cellK)) / float64(measure*int64(f.terms)),
		MeanLatency:     f.Latency().Mean(),
		MinLatency:      f.Latency().Quantile(0),
	}, nil
}
