// Package clos composes pipelined-memory switches into a three-stage
// Clos network — alongside internal/fabric's butterfly, the other classic
// way §2's "building blocks for larger, multi-stage switches" are
// assembled.
//
// The symmetric C(n, n, n) instance is built here: n² terminals, n
// ingress switches (n×n), up to n middle switches (n×n), n egress
// switches (n×n). The ingress stage's choice of middle switch is the
// Clos routing freedom; Config.Middles restricts how many middles are
// populated, exposing the classic sizing trade — the network is
// rearrangeably non-blocking with all n middles and degrades gracefully
// below that.
//
// As in internal/fabric, each node is a full cycle-accurate core.Switch,
// cut-through chains across stages via the transmit hook, and inter-stage
// links run credit-based flow control.
package clos

import (
	"fmt"

	"pipemem/internal/cell"
	"pipemem/internal/core"
	"pipemem/internal/stats"
	"pipemem/internal/traffic"
)

// Config parameterizes the Clos network.
type Config struct {
	// Radix is n: switch port count, ingress/egress switch count, and
	// the maximum middle count. Terminals = n².
	Radix int
	// Middles is m ≤ n, the populated middle switches (0 means n).
	Middles int
	// WordBits is the link width.
	WordBits int
	// SwitchCells is each node's buffer capacity in cells.
	SwitchCells int
	// Credits is the per-inter-stage-link credit allowance (0 disables).
	Credits int
	// CutThrough enables automatic cut-through in every node.
	CutThrough bool
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.Radix < 2 {
		return fmt.Errorf("clos: radix %d", c.Radix)
	}
	if c.Middles < 0 || c.Middles > c.Radix {
		return fmt.Errorf("clos: %d middles for radix %d", c.Middles, c.Radix)
	}
	if c.SwitchCells < 1 {
		return fmt.Errorf("clos: %d cells per switch", c.SwitchCells)
	}
	if c.Credits < 0 {
		return fmt.Errorf("clos: negative credits")
	}
	return nil
}

// flight tracks one cell crossing the network.
type flight struct {
	orig    *cell.Cell
	dst     int // terminal
	inject  int64
	stage   int
	inbound int // port index on the current stage's switch (for credits)
	sw      int // current switch index within its stage
}

type injection struct {
	stage, sw, port int
	c               *cell.Cell
}

// Net is the three-stage Clos network.
type Net struct {
	cfg   Config
	n     int // radix
	m     int // populated middles
	terms int
	cellK int

	cycle int64

	// sw[0][i]: ingress i; sw[1][j]: middle j; sw[2][e]: egress e.
	sw [3][]*core.Switch

	pending map[int64][]injection
	// credits[stage][sw][port]: allowance on the link INTO (stage, sw,
	// port) for stage ∈ {1, 2}.
	credits [3][][]int

	// midRR per ingress switch: round-robin middle selection pointer.
	midRR []int

	flights map[uint64]*flight

	injected, delivered, badEject int64
	midLoad                       []int64 // cells routed via each middle
	latency                       *stats.Hist
}

// New builds the network.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Radix
	m := cfg.Middles
	if m == 0 {
		m = n
	}
	net := &Net{
		cfg: cfg, n: n, m: m, terms: n * n, cellK: 2 * n,
		pending: make(map[int64][]injection),
		midRR:   make([]int, n),
		flights: make(map[uint64]*flight),
		midLoad: make([]int64, m),
		latency: stats.NewHist(1 << 14),
	}
	for st := 0; st < 3; st++ {
		count := n
		if st == 1 {
			count = m
		}
		net.sw[st] = make([]*core.Switch, count)
		net.credits[st] = make([][]int, count)
		for i := range net.sw[st] {
			swc, err := core.New(core.Config{
				Ports: n, WordBits: cfg.WordBits, Cells: cfg.SwitchCells,
				CutThrough: cfg.CutThrough,
			})
			if err != nil {
				return nil, err
			}
			net.credits[st][i] = make([]int, n)
			for p := range net.credits[st][i] {
				net.credits[st][i][p] = cfg.Credits
			}
			st, i := st, i
			if cfg.Credits > 0 && st < 2 {
				swc.SetOutputGate(func(out int) bool {
					dsw, dport := net.downstream(st, i, out)
					if dsw < 0 {
						return false // unpopulated middle
					}
					return net.credits[st+1][dsw][dport] > 0
				})
			}
			if st == 0 && cfg.Credits == 0 {
				// Even without credits, never route into an
				// unpopulated middle.
				swc.SetOutputGate(func(out int) bool { return out < net.m })
			}
			swc.SetTransmitCellHook(func(out int, c *cell.Cell, start int64) {
				net.onTransmit(st, i, out, c, start)
			})
			net.sw[st][i] = swc
		}
	}
	return net, nil
}

// downstream maps (stage, switch, output port) to the next stage's
// (switch, input port). Stage 0 output j goes to middle j's port
// (ingress index); middle j's output e goes to egress e's port j.
func (f *Net) downstream(stage, sw, out int) (dsw, dport int) {
	switch stage {
	case 0:
		if out >= f.m {
			return -1, -1
		}
		return out, sw
	case 1:
		return out, sw
	default:
		return -1, -1
	}
}

// onTransmit chains a departing cell to the next stage.
func (f *Net) onTransmit(stage, sw, out int, c *cell.Cell, start int64) {
	fl := f.flights[c.Seq]
	if fl == nil {
		panic(fmt.Sprintf("clos: transmit of unknown cell %d", c.Seq))
	}
	if stage > 0 && f.cfg.Credits > 0 {
		f.credits[stage][sw][fl.inbound]++
	}
	if stage == 2 {
		return // ejection
	}
	dsw, dport := f.downstream(stage, sw, out)
	if dsw < 0 {
		panic(fmt.Sprintf("clos: transmit into unpopulated middle %d", out))
	}
	if f.cfg.Credits > 0 {
		if f.credits[stage+1][dsw][dport] <= 0 {
			panic("clos: credit underflow")
		}
		f.credits[stage+1][dsw][dport]--
	}
	if stage == 0 {
		f.midLoad[dsw]++
	}
	next := c.Clone()
	switch stage {
	case 0: // at the middle, route to the egress switch
		next.Dst = fl.dst / f.n
	case 1: // at the egress, route to the terminal's port
		next.Dst = fl.dst % f.n
	}
	fl.stage = stage + 1
	fl.sw = dsw
	fl.inbound = dport
	at := start + 2
	f.pending[at] = append(f.pending[at], injection{stage: stage + 1, sw: dsw, port: dport, c: next})
}

// Inject offers a cell at terminal term (= ingressSwitch·n + port) for
// terminal dst in the current cycle. Middle selection is round-robin per
// ingress switch — the Clos routing freedom, exercised fairly.
func (f *Net) Inject(term, dst int, seq uint64) {
	isw, iport := term/f.n, term%f.n
	c := cell.New(seq, term, dst, f.cellK, f.cfg.WordBits)
	fl := &flight{orig: c.Clone(), dst: dst, inject: f.cycle, sw: isw, inbound: iport}
	f.flights[seq] = fl
	hop := c.Clone()
	hop.Dst = f.midRR[isw] % f.m // chosen middle (uplink port index)
	f.midRR[isw]++
	f.pending[f.cycle] = append(f.pending[f.cycle], injection{stage: 0, sw: isw, port: iport, c: hop})
	f.injected++
}

// Step advances the whole network one clock cycle.
func (f *Net) Step() error {
	byNode := map[[2]int][]*cell.Cell{}
	for _, inj := range f.pending[f.cycle] {
		key := [2]int{inj.stage, inj.sw}
		hs := byNode[key]
		if hs == nil {
			hs = make([]*cell.Cell, f.n)
		}
		if hs[inj.port] != nil {
			return fmt.Errorf("clos: two heads on stage %d switch %d port %d", inj.stage, inj.sw, inj.port)
		}
		hs[inj.port] = inj.c
		byNode[key] = hs
	}
	delete(f.pending, f.cycle)

	for st := 0; st < 3; st++ {
		for i, s := range f.sw[st] {
			s.Tick(byNode[[2]int{st, i}])
			deps := s.Drain()
			if st < 2 {
				continue
			}
			for _, d := range deps {
				if err := f.eject(i, d); err != nil {
					return err
				}
			}
		}
	}
	f.cycle++
	return nil
}

// eject verifies a cell leaving an egress switch.
func (f *Net) eject(esw int, d core.Departure) error {
	fl := f.flights[d.Expected.Seq]
	if fl == nil {
		return fmt.Errorf("clos: ejection of unknown cell %d", d.Expected.Seq)
	}
	term := esw*f.n + d.Output
	if term != fl.dst {
		f.badEject++
		return fmt.Errorf("clos: cell %d for terminal %d ejected at %d", d.Expected.Seq, fl.dst, term)
	}
	for i := range d.Cell.Words {
		if d.Cell.Words[i] != fl.orig.Words[i] {
			f.badEject++
			return fmt.Errorf("clos: cell %d corrupted", d.Expected.Seq)
		}
	}
	f.delivered++
	f.latency.Add(d.HeadOut - fl.inject)
	delete(f.flights, d.Expected.Seq)
	return nil
}

// Terminals returns n².
func (f *Net) Terminals() int { return f.terms }

// CellWords returns the cell size (2n).
func (f *Net) CellWords() int { return f.cellK }

// Delivered returns end-to-end delivered cells.
func (f *Net) Delivered() int64 { return f.delivered }

// Latency returns the inject→head-ejection histogram.
func (f *Net) Latency() *stats.Hist { return f.latency }

// MiddleLoad returns cells routed through each populated middle switch.
func (f *Net) MiddleLoad() []int64 {
	return append([]int64(nil), f.midLoad...)
}

// Drops sums overrun drops across all nodes.
func (f *Net) Drops() int64 {
	var d int64
	for st := range f.sw {
		for _, s := range f.sw[st] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// InteriorDrops sums drops at credit-protected stages (middle, egress).
func (f *Net) InteriorDrops() int64 {
	var d int64
	for st := 1; st < 3; st++ {
		for _, s := range f.sw[st] {
			d += s.Counters().Get("drop-overrun")
		}
	}
	return d
}

// Corrupt sums integrity violations.
func (f *Net) Corrupt() int64 {
	var c int64
	for st := range f.sw {
		for _, s := range f.sw[st] {
			c += s.Counters().Get("corrupt")
		}
	}
	return c + f.badEject
}

// Result summarizes a run.
type Result struct {
	Cycles        int64
	Injected      int64
	Delivered     int64
	Drops         int64
	InteriorDrops int64
	Corrupt       int64
	Throughput    float64 // delivered cell-words per cycle per terminal
	MeanLatency   float64
	MinLatency    int64
}

// Run drives the network with terminal traffic for warmup+measure cycles.
func Run(f *Net, tcfg traffic.Config, warmup, measure int64) (Result, error) {
	tcfg.N = f.terms
	cs, err := traffic.NewCellStream(tcfg, f.cellK)
	if err != nil {
		return Result{}, err
	}
	heads := make([]int, f.terms)
	var seq uint64
	drive := func(cycles int64) (int64, error) {
		start := f.delivered
		for i := int64(0); i < cycles; i++ {
			cs.Heads(heads)
			for term, dst := range heads {
				if dst != traffic.NoArrival {
					seq++
					f.Inject(term, dst, seq)
				}
			}
			if err := f.Step(); err != nil {
				return 0, err
			}
		}
		return f.delivered - start, nil
	}
	if _, err := drive(warmup); err != nil {
		return Result{}, err
	}
	delivered, err := drive(measure)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:        measure,
		Injected:      f.injected,
		Delivered:     f.delivered,
		Drops:         f.Drops(),
		InteriorDrops: f.InteriorDrops(),
		Corrupt:       f.Corrupt(),
		Throughput:    float64(delivered*int64(f.cellK)) / float64(measure*int64(f.terms)),
		MeanLatency:   f.latency.Mean(),
		MinLatency:    f.latency.Quantile(0),
	}, nil
}
